#!/usr/bin/env python3
"""Checks that relative markdown links in the repo's docs resolve.

Scans every tracked-looking *.md file (repo root, docs/, bench/, examples/)
for [text](target) links and verifies that relative targets exist on disk.
External links (http/https/mailto) and pure in-page anchors (#...) are
skipped; a target's #fragment is stripped before the existence check.

Exit status: 0 when every link resolves, 1 otherwise (one line per broken
link). No dependencies beyond the standard library, so CI and developers
run it the same way:

    python3 tools/check_markdown_links.py
"""

import os
import re
import sys

# [text](target) with no nested parens in the target; images share the form.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

SCAN_DIRS = [".", "docs", "bench", "examples", ".github"]
SKIP_PREFIXES = ("http://", "https://", "mailto:")


def find_markdown_files(root):
    seen = set()
    for rel in SCAN_DIRS:
        base = os.path.join(root, rel)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames[:] = [
                d for d in dirnames
                if not d.startswith(".") and d not in {"build", "build-bench",
                                                       "build-review"}
            ]
            for name in filenames:
                if name.endswith(".md"):
                    path = os.path.normpath(os.path.join(dirpath, name))
                    if path not in seen:
                        seen.add(path)
                        yield path


def check_file(path, root):
    broken = []
    in_fence = False
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            # Fenced code blocks quote code verbatim (snippets, shell
            # output); whatever looks like a link there is not one.
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                    continue
                target_path = target.split("#", 1)[0]
                if not target_path:
                    continue
                if target_path.startswith("/"):
                    resolved = os.path.join(root, target_path.lstrip("/"))
                else:
                    resolved = os.path.join(os.path.dirname(path), target_path)
                if not os.path.exists(resolved):
                    broken.append((lineno, target))
    return broken


def main():
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    total_links_broken = 0
    files = 0
    for path in find_markdown_files(root):
        files += 1
        for lineno, target in check_file(path, root):
            rel = os.path.relpath(path, root)
            print(f"{rel}:{lineno}: broken link -> {target}")
            total_links_broken += 1
    if total_links_broken:
        print(f"{total_links_broken} broken link(s)")
        return 1
    print(f"ok: all relative links resolve across {files} markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
