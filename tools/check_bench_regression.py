#!/usr/bin/env python3
"""Compare a fresh google-benchmark JSON run against the committed baseline.

The committed BENCH_micro.json is the perf-trajectory yardstick every PR is
measured against (see bench/README.md). This tool diffs a fresh run — in CI
a short `--benchmark_min_time` smoke run — against it and reports every
benchmark whose real_time grew beyond a threshold.

Warn-only by default: CI containers drift +-15% in absolute speed, so a
smoke-run slowdown is a prompt to re-measure interleaved (build the old and
new binaries side by side and alternate runs), not an automatic failure.
Pass --strict to turn regressions into a non-zero exit, e.g. on a dedicated
perf runner.

Thread-scaling benchmarks ("threads:N" in the name, e.g.
BM_ChurnSweep/threads:4) are only comparable when both machines can actually
run N workers: a baseline recorded on a 1-core VM serializes every thread
count, so its threads:4 number would flag a healthy multicore run (or mask a
real regression). Entries whose N exceeds the *smaller* of the two runs'
num_cpus are skipped with a note instead of compared.

Usage:
  tools/check_bench_regression.py --fresh fresh.json \
      [--baseline BENCH_micro.json] [--threshold 1.5] [--strict]

Benchmarks present in only one file (added or retired since the baseline)
are listed informationally and never fail the check.
"""

import argparse
import json
import re
import sys


def load_benchmarks(path):
    """Returns (name -> (real_time, time_unit), context_num_cpus)."""
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for bench in doc.get("benchmarks", []):
        # Skip aggregate rows (mean/median/stddev of repetition runs).
        if bench.get("run_type") == "aggregate":
            continue
        out[bench["name"]] = (float(bench["real_time"]),
                              bench.get("time_unit", "ns"))
    num_cpus = doc.get("context", {}).get("num_cpus", 0)
    return out, int(num_cpus) if num_cpus else 0


UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

THREADS_ARG_RE = re.compile(r"(?:^|/)threads:(\d+)(?:/|$)")


def to_ns(value, unit):
    return value * UNIT_NS.get(unit, 1.0)


def benchmark_threads(name):
    """The N of a "threads:N" name component, or None."""
    match = THREADS_ARG_RE.search(name)
    return int(match.group(1)) if match else None


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="BENCH_micro.json",
                        help="committed baseline JSON (default: %(default)s)")
    parser.add_argument("--fresh", required=True,
                        help="freshly recorded benchmark JSON")
    parser.add_argument("--threshold", type=float, default=1.5,
                        help="flag fresh/baseline real_time ratios above "
                             "this (default: %(default)s)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero when regressions are found")
    args = parser.parse_args()

    baseline, base_cpus = load_benchmarks(args.baseline)
    fresh, fresh_cpus = load_benchmarks(args.fresh)

    # A thread count both machines can truly parallelize; 0 = unknown
    # context, compare everything (old-format JSONs).
    comparable_cpus = 0
    if base_cpus and fresh_cpus:
        comparable_cpus = min(base_cpus, fresh_cpus)

    regressions = []
    improvements = []
    skipped_threads = []
    common = sorted(set(baseline) & set(fresh))
    for name in common:
        threads = benchmark_threads(name)
        if threads is not None and comparable_cpus and \
                threads > comparable_cpus:
            skipped_threads.append((name, threads))
            continue
        base_ns = to_ns(*baseline[name])
        fresh_ns = to_ns(*fresh[name])
        if base_ns <= 0:
            continue
        ratio = fresh_ns / base_ns
        if ratio > args.threshold:
            regressions.append((name, ratio, base_ns, fresh_ns))
        elif ratio < 1.0 / args.threshold:
            improvements.append((name, ratio))

    only_base = sorted(set(baseline) - set(fresh))
    only_fresh = sorted(set(fresh) - set(baseline))

    print(f"compared {len(common) - len(skipped_threads)} benchmarks "
          f"(threshold {args.threshold:.2f}x)")
    if skipped_threads:
        names = ", ".join(name for name, _ in skipped_threads)
        print(f"skipped (threads exceed min(num_cpus)={comparable_cpus}, "
              f"not comparable across machines): {names}")
    if only_fresh:
        print(f"new since baseline (ignored): {', '.join(only_fresh)}")
    if only_base:
        print(f"missing from fresh run (ignored): {', '.join(only_base)}")
    for name, ratio in improvements:
        print(f"  IMPROVED  {name}: {ratio:.2f}x of baseline")
    for name, ratio, base_ns, fresh_ns in regressions:
        print(f"  SLOWER    {name}: {ratio:.2f}x of baseline "
              f"({base_ns:.0f} ns -> {fresh_ns:.0f} ns)")

    if regressions:
        print(f"{len(regressions)} benchmark(s) exceeded the threshold. "
              "Re-measure interleaved before trusting an absolute smoke "
              "number (bench/README.md).")
        return 1 if args.strict else 0
    print("no benchmark exceeded the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
