"""libclang engine for the determinism lint.

Preferred engine when the clang Python bindings and a loadable libclang
are present (`pip install libclang` or a distro python3-clang package).
It shares the rule semantics — and most of the implementation — with the
regex engine in lint_determinism.py, upgrading the parts where real type
information beats text matching:

  * unordered names are collected from VAR_DECL/FIELD_DECL canonical
    types instead of declaration-text pattern matching, so a vector that
    happens to share a name with an unordered member elsewhere no longer
    aliases into a false positive;
  * range-for statements are classified by the range expression's
    canonical type, catching iteration over temporaries and function
    results the text engine cannot see;
  * static-state uses the AST: namespace-scope VAR_DECLs and
    function-local statics, with const-ness read off the type (a
    `const char*` is correctly mutable — the pointer reseats).

Import of this module must only succeed when libclang is actually
usable: lint_determinism.make_engine treats any exception here as "fall
back to regex".
"""

import os
import re

from clang import cindex

# Fail fast at import time if the shared library cannot be loaded, so the
# driver falls back to the regex engine instead of dying mid-scan.
_PROBE_INDEX = cindex.Index.create()

from lint_determinism import (  # noqa: E402  (import order is deliberate)
    Finding,
    ITERATION_SCOPE,
    RegexEngine,
    STATIC_SCOPE,
    in_scope,
    line_of,
)

_UNORDERED_TYPE_RE = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\b")


def _include_dirs(path):
    """The file's own directory plus the nearest ancestor named src/."""
    dirs = [os.path.dirname(os.path.abspath(path)) or "."]
    probe = dirs[0]
    while True:
        parent = os.path.dirname(probe)
        if os.path.basename(probe) == "src":
            dirs.append(probe)
            break
        if parent == probe:
            break
        probe = parent
    return dirs


class ClangEngine(RegexEngine):
    name = "clang"

    def __init__(self, paths_and_text):
        super().__init__(paths_and_text)
        self.index = _PROBE_INDEX
        self.tus = {}
        typed_names = set()
        for path, text in paths_and_text:
            tu = self._parse(path, text)
            if tu is None:
                continue
            self.tus[path] = tu
            for cursor in self._main_file_cursors(tu, path):
                if cursor.kind in (cindex.CursorKind.VAR_DECL,
                                   cindex.CursorKind.FIELD_DECL):
                    spelling = cursor.type.get_canonical().spelling
                    if _UNORDERED_TYPE_RE.search(spelling):
                        typed_names.add(cursor.spelling)
        if typed_names:
            # Typed names replace the text-collected set for every parsed
            # file; files that failed to parse keep matching against the
            # union so nothing is silently unchecked.
            self.unordered_names = typed_names | {
                n for p, _ in paths_and_text if p not in self.tus
                for n in self.unordered_names}

    # ------------------------------------------------------------------
    def _parse(self, path, text):
        args = ["-std=c++20", "-xc++"]
        for inc in _include_dirs(path):
            args += ["-I", inc]
        try:
            tu = self.index.parse(path, args=args,
                                  unsaved_files=[(path, text)])
        except cindex.TranslationUnitLoadError:
            return None
        # Hard parse failures (missing headers etc.) degrade that file to
        # the regex rules rather than producing a half-seen AST.
        for diag in tu.diagnostics:
            if diag.severity >= cindex.Diagnostic.Fatal:
                return None
        return tu

    @staticmethod
    def _main_file_cursors(tu, path):
        base = os.path.abspath(path)
        for cursor in tu.cursor.walk_preorder():
            loc = cursor.location
            if loc.file is not None and \
                    os.path.abspath(loc.file.name) == base:
                yield cursor

    # -- rule: unordered-iteration (AST range classification) ----------
    def _rule_unordered_iteration(self, path, text):
        tu = self.tus.get(path)
        if tu is None:
            return super()._rule_unordered_iteration(path, text)
        if not in_scope(path, ITERATION_SCOPE):
            return []
        out = []
        for cursor in self._main_file_cursors(tu, path):
            if cursor.kind != cindex.CursorKind.CXX_FOR_RANGE_STMT:
                continue
            children = list(cursor.get_children())
            if len(children) < 2:
                continue
            range_expr = children[-2]
            spelling = range_expr.type.get_canonical().spelling
            if _UNORDERED_TYPE_RE.search(spelling):
                out.append(Finding(
                    path, cursor.location.line, "unordered-iteration",
                    "range-for over unordered container (%s): iteration "
                    "order is implementation-defined and leaks into "
                    "results" % (range_expr.spelling or "expression")))
        # begin() on known unordered names: reuse the shared text rule,
        # excluding the range-for lines the AST already claimed.
        ast_lines = {f.line for f in out}
        for f in super()._rule_unordered_iteration(path, text):
            if f.line not in ast_lines or "iterator over" in f.message:
                out.append(f)
        return out

    # -- rule: static-state (AST scopes and const-ness) -----------------
    def _rule_static_state(self, path, text):
        tu = self.tus.get(path)
        if tu is None:
            return super()._rule_static_state(path, text)
        if not path.endswith((".cc", ".cpp")):
            return []
        if not in_scope(path, STATIC_SCOPE):
            return []
        out = []
        for cursor in self._main_file_cursors(tu, path):
            if cursor.kind != cindex.CursorKind.VAR_DECL:
                continue
            parent = cursor.semantic_parent
            at_ns_scope = parent is not None and parent.kind in (
                cindex.CursorKind.NAMESPACE,
                cindex.CursorKind.TRANSLATION_UNIT)
            is_local_static = (not at_ns_scope and
                               cursor.storage_class ==
                               cindex.StorageClass.STATIC)
            if not at_ns_scope and not is_local_static:
                continue
            ctype = cursor.type.get_canonical()
            if ctype.is_const_qualified():
                continue  # const object; pointee-const stays flagged
            if ctype.spelling.startswith(("const ",)) and \
                    "*" not in ctype.spelling:
                continue
            kind = ("function-local static"
                    if is_local_static else
                    "mutable namespace-scope state '%s'" % cursor.spelling)
            out.append(Finding(
                path, cursor.location.line, "static-state",
                "%s in a simulation translation unit: cross-query/"
                "cross-thread state bypasses the session reset contract"
                % kind))
        return out
