#!/usr/bin/env python3
"""Unit tests for the determinism lint (tools/lint/lint_determinism.py).

Per rule: a positive fixture (the pattern is flagged), a negative fixture
(near-miss code stays clean), and a suppressed fixture (the annotation is
honoured and audited). Plus the suppression machinery's own contract:
reasons are mandatory, rules must exist, stale suppressions are flagged.

Runs against every engine available in the environment: the regex engine
always, the libclang engine when the clang bindings import (the fixtures
pin identical verdicts for both).

Registered in ctest as lint_determinism_py (see CMakeLists.txt).
"""

import io
import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import lint_determinism  # noqa: E402

try:
    import clang_engine  # noqa: E402,F401
    HAVE_CLANG = True
except Exception:
    HAVE_CLANG = False


class RegexEngineTest(unittest.TestCase):
    engine = "regex"

    # ------------------------------------------------------------------
    def lint(self, files):
        """Writes `files` {relpath: content} into a temp tree, lints it.

        Returns (exit_code, output_text)."""
        with tempfile.TemporaryDirectory() as root:
            for rel, content in files.items():
                path = os.path.join(root, rel)
                os.makedirs(os.path.dirname(path), exist_ok=True)
                with open(path, "w", encoding="utf-8") as f:
                    f.write(content)
            out = io.StringIO()
            code = lint_determinism.run(
                [root], engine_kind=self.engine, show_suppressed=True,
                out=out)
            return code, out.getvalue()

    def assertClean(self, files):
        code, out = self.lint(files)
        self.assertEqual(code, 0, "expected clean, got:\n" + out)
        return out

    def assertFlagged(self, files, rule, count=None):
        code, out = self.lint(files)
        self.assertEqual(code, 1, "expected findings, got:\n" + out)
        hits = [l for l in out.splitlines() if "[%s]" % rule in l
                and "suppressed" not in l]
        self.assertTrue(hits, "no [%s] finding in:\n%s" % (rule, out))
        if count is not None:
            self.assertEqual(len(hits), count, out)
        return out

    def assertSuppressed(self, files, rule):
        code, out = self.lint(files)
        self.assertEqual(code, 0,
                         "expected suppressed-clean, got:\n" + out)
        self.assertIn("(suppressed:", out)
        self.assertIn("[%s]" % rule, out)
        return out

    # -- unordered-container -------------------------------------------
    def test_unordered_container_positive(self):
        self.assertFlagged(
            {"core/a.h": "#include <unordered_map>\n"
                         "struct S { std::unordered_map<int, int> m_; };\n"},
            "unordered-container", count=1)

    def test_unordered_container_negative_ordered_map(self):
        self.assertClean(
            {"core/a.h": "#include <map>\n"
                         "struct S { std::map<int, int> m_; };\n"})

    def test_unordered_container_suppressed(self):
        self.assertSuppressed(
            {"core/a.h":
                "#include <unordered_set>\n"
                "struct S {\n"
                "  // NOLINT-DETERMINISM(unordered-container): membership\n"
                "  // lookups only; order never observed.\n"
                "  std::unordered_set<int> seen_;\n"
                "};\n"},
            "unordered-container")

    # -- unordered-iteration -------------------------------------------
    def test_unordered_iteration_range_for_cross_file(self):
        files = {
            "sim/a.h": "#include <unordered_map>\n"
                       "struct S {\n"
                       "  // NOLINT-DETERMINISM(unordered-container): x\n"
                       "  std::unordered_map<int, int> table_;\n"
                       "  int Sum();\n"
                       "};\n",
            "sim/a.cc": '#include "a.h"\n'
                        "int S::Sum() {\n"
                        "  int s = 0;\n"
                        "  for (auto& kv : table_) s += kv.second;\n"
                        "  return s;\n"
                        "}\n",
        }
        out = self.assertFlagged(files, "unordered-iteration", count=1)
        self.assertIn("a.cc:4", out)

    def test_unordered_iteration_begin(self):
        files = {
            "protocols/b.cc":
                "#include <unordered_set>\n"
                "// NOLINT-DETERMINISM(unordered-container): fixture\n"
                "std::unordered_set<int> live;\n"
                "int F() {\n"
                "  int n = 0;\n"
                "  for (auto it = live.begin(); it != live.end(); ++it)\n"
                "    ++n;\n"
                "  return n;\n"
                "}\n",
        }
        self.assertFlagged(files, "unordered-iteration", count=1)

    def test_unordered_iteration_negative_lookup_only(self):
        files = {
            "core/c.cc":
                "#include <unordered_map>\n"
                "// NOLINT-DETERMINISM(unordered-container): fixture\n"
                "std::unordered_map<int, int> cache;\n"
                "bool Has(int k) {\n"
                "  return cache.find(k) != cache.end() &&\n"
                "         cache.count(k) > 0;\n"
                "}\n",
        }
        self.assertClean(files)

    def test_unordered_iteration_negative_out_of_scope_dir(self):
        # The iteration ban covers sim/core/protocols; a utility dir only
        # has the container-audit obligation.
        files = {
            "util/d.cc":
                "#include <unordered_set>\n"
                "// NOLINT-DETERMINISM(unordered-container): fixture\n"
                "std::unordered_set<int> bag;\n"
                "int F() {\n"
                "  int n = 0;\n"
                "  for (int v : bag) n += v;\n"
                "  return n;\n"
                "}\n",
        }
        self.assertClean(files)

    def test_unordered_iteration_suppressed(self):
        files = {
            "core/e.cc":
                "#include <unordered_map>\n"
                "// NOLINT-DETERMINISM(unordered-container): fixture\n"
                "std::unordered_map<int, int> m;\n"
                "void Teardown() {\n"
                "  // NOLINT-DETERMINISM(unordered-iteration): teardown is\n"
                "  // order-independent; every entry is dropped.\n"
                "  for (auto& kv : m) kv.second = 0;\n"
                "}\n",
        }
        self.assertSuppressed(files, "unordered-iteration")

    # -- banned-randomness ---------------------------------------------
    def test_banned_randomness_positive_tokens(self):
        out = self.assertFlagged(
            {"sim/r.cc":
                "#include <random>\n"
                "#include <ctime>\n"
                "int F() {\n"
                "  std::random_device rd;\n"
                "  int a = std::rand();\n"
                "  long b = time(nullptr);\n"
                "  auto t = std::chrono::system_clock::now();\n"
                "  (void)t;\n"
                "  return a + (int)b + (int)rd();\n"
                "}\n"},
            "banned-randomness")
        for token in ("std::rand", "random_device", "time()",
                      "system_clock"):
            self.assertIn(token, out)

    def test_banned_randomness_unseeded_engine(self):
        self.assertFlagged(
            {"common/r.cc": "#include <random>\n"
                            "std::mt19937 gen;\n"},
            "banned-randomness", count=1)

    def test_banned_randomness_negative(self):
        # Seeded engines, accessor names ending in `time`, and member
        # calls named time() are all fine.
        self.assertClean(
            {"sim/ok.cc":
                "#include <random>\n"
                "struct M { double time() const { return t; } double t; };\n"
                "double F(unsigned long seed, const M& m) {\n"
                "  std::mt19937 gen(seed);\n"
                "  double last_send_time = m.time();\n"
                "  return last_send_time + (double)gen();\n"
                "}\n"})

    def test_banned_randomness_suppressed(self):
        self.assertSuppressed(
            {"common/clock.cc":
                "#include <chrono>\n"
                "double WallSeconds() {\n"
                "  // NOLINT-DETERMINISM(banned-randomness): wall-clock\n"
                "  // telemetry only; never feeds simulation state.\n"
                "  auto n = std::chrono::steady_clock::now();\n"
                "  return n.time_since_epoch().count() * 1e-9;\n"
                "}\n"},
            "banned-randomness")

    # -- pointer-key ----------------------------------------------------
    def test_pointer_key_positive(self):
        self.assertFlagged(
            {"core/p.h": "#include <map>\n"
                         "struct Node;\n"
                         "struct S { std::map<const Node*, int> idx_; };\n"},
            "pointer-key", count=1)

    def test_pointer_key_unordered_positive(self):
        out = self.assertFlagged(
            {"core/p2.h":
                "#include <unordered_map>\n"
                "struct Node;\n"
                "// NOLINT-DETERMINISM(unordered-container): fixture\n"
                "struct S { std::unordered_map<Node*, int> idx_; };\n"},
            "pointer-key")
        self.assertIn("pointer", out)

    def test_pointer_key_negative_pointer_value(self):
        self.assertClean(
            {"core/p3.h": "#include <map>\n"
                          "struct Node;\n"
                          "struct S { std::map<int, Node*> by_id_; };\n"})

    def test_pointer_key_suppressed(self):
        self.assertSuppressed(
            {"core/p4.h":
                "#include <map>\n"
                "struct Node;\n"
                "struct S {\n"
                "  // NOLINT-DETERMINISM(pointer-key): diagnostics-only\n"
                "  // index; never iterated, never serialized.\n"
                "  std::map<const Node*, int> debug_names_;\n"
                "};\n"},
            "pointer-key")

    # -- static-state ---------------------------------------------------
    def test_static_state_namespace_scope(self):
        self.assertFlagged(
            {"sim/s.cc": "namespace v {\n"
                         "int g_count = 0;\n"
                         "}  // namespace v\n"},
            "static-state", count=1)

    def test_static_state_mutable_pointer_to_const(self):
        # `const char*` is a *mutable* pointer: reseating it is state.
        self.assertFlagged(
            {"sketch/s2.cc": "namespace {\n"
                             "const char* g_name = \"scalar\";\n"
                             "}\n"},
            "static-state", count=1)

    def test_static_state_function_local(self):
        self.assertFlagged(
            {"protocols/s3.cc": "int F() {\n"
                                "  static int calls = 0;\n"
                                "  return ++calls;\n"
                                "}\n"},
            "static-state", count=1)

    def test_static_state_negative(self):
        self.assertClean(
            {"sim/ok.cc":
                "namespace v {\n"
                "constexpr int kBlock = 256;\n"
                "const int kWindow = 16;\n"
                "static int Helper(int x);\n"
                "static int Helper2(int x) { int local = x; return local; }\n"
                "int Use() { return Helper2(kBlock) + kWindow; }\n"
                "static int Helper(int x) { return x; }\n"
                "}  // namespace v\n"})

    def test_static_state_negative_out_of_scope(self):
        # Headers and non-simulation dirs are outside this rule.
        self.assertClean(
            {"topology/t.cc": "namespace v {\nint g_mutable = 1;\n}\n",
             "sim/h.h": "namespace v {\nextern int g_declared;\n}\n"})

    def test_static_state_suppressed(self):
        self.assertSuppressed(
            {"sketch/k.cc":
                "namespace {\n"
                "using Fn = int (*)(int);\n"
                "int Scalar(int x) { return x; }\n"
                "// NOLINT-DETERMINISM(static-state): cpuid kernel select,\n"
                "// written once at startup; both kernels bit-identical.\n"
                "Fn g_kernel = &Scalar;\n"
                "}  // namespace\n"},
            "static-state")

    # -- float-accumulation --------------------------------------------
    def test_float_accumulation_over_unordered(self):
        self.assertFlagged(
            {"common/f.cc":
                "#include <unordered_map>\n"
                "// NOLINT-DETERMINISM(unordered-container): fixture\n"
                "std::unordered_map<int, double> w;\n"
                "double Total() {\n"
                "  double total = 0.0;\n"
                "  for (auto& kv : w) total += kv.second;\n"
                "  return total;\n"
                "}\n"},
            "float-accumulation", count=1)

    def test_float_accumulation_parallel_for(self):
        self.assertFlagged(
            {"core/f2.cc":
                '#include "core/sweep.h"\n'
                "double F(int n) {\n"
                "  double sum = 0.0;\n"
                "  validity::core::ParallelFor(n, 0, [&](size_t i) {\n"
                "    sum += static_cast<double>(i);\n"
                "  });\n"
                "  return sum;\n"
                "}\n"},
            "float-accumulation", count=1)

    def test_float_accumulation_negative_slot_indexed(self):
        # The sanctioned ParallelMap idiom: per-index slots, serial merge.
        self.assertClean(
            {"core/f3.cc":
                '#include "core/sweep.h"\n'
                "#include <vector>\n"
                "double F(int n) {\n"
                "  std::vector<double> slots(n);\n"
                "  validity::core::ParallelFor(n, 0, [&](size_t i) {\n"
                "    slots[i] += static_cast<double>(i);\n"
                "  });\n"
                "  double total = 0.0;\n"
                "  for (double v : slots) total += v;\n"
                "  return total;\n"
                "}\n"})

    def test_float_accumulation_negative_integer(self):
        # Integer accumulation commutes exactly; only FP order matters.
        self.assertClean(
            {"common/f4.cc":
                "#include <unordered_set>\n"
                "// NOLINT-DETERMINISM(unordered-container): fixture\n"
                "std::unordered_set<int> bag;\n"
                "int Count() {\n"
                "  int n = 0;\n"
                "  for (int v : bag) n += v;\n"
                "  return n;\n"
                "}\n"})

    def test_float_accumulation_par_execution(self):
        self.assertFlagged(
            {"common/f5.cc":
                "#include <execution>\n"
                "#include <numeric>\n"
                "#include <vector>\n"
                "double F(const std::vector<double>& v) {\n"
                "  return std::reduce(std::execution::par, v.begin(),\n"
                "                     v.end());\n"
                "}\n"},
            "float-accumulation", count=1)

    def test_float_accumulation_suppressed(self):
        self.assertSuppressed(
            {"common/f6.cc":
                "#include <unordered_map>\n"
                "// NOLINT-DETERMINISM(unordered-container): fixture\n"
                "std::unordered_map<int, double> w;\n"
                "double Total() {\n"
                "  double total = 0.0;\n"
                "  // NOLINT-DETERMINISM(float-accumulation): debug-only\n"
                "  // stat, never compared bit-for-bit.\n"
                "  for (auto& kv : w) total += kv.second;\n"
                "  return total;\n"
                "}\n"},
            "float-accumulation")

    # -- suppression machinery -----------------------------------------
    def test_suppression_requires_reason(self):
        code, out = self.lint(
            {"core/m.h":
                "#include <unordered_map>\n"
                "// NOLINT-DETERMINISM(unordered-container)\n"
                "struct S { std::unordered_map<int, int> m_; };\n"})
        self.assertEqual(code, 1)
        self.assertIn("bad-suppression", out)
        self.assertIn("no reason", out)

    def test_suppression_unknown_rule(self):
        code, out = self.lint(
            {"core/m2.h":
                "struct S {};  // NOLINT-DETERMINISM(no-such-rule): x\n"})
        self.assertEqual(code, 1)
        self.assertIn("unknown rule", out)

    def test_suppression_unused_is_flagged(self):
        code, out = self.lint(
            {"core/m3.h":
                "// NOLINT-DETERMINISM(pointer-key): stale annotation\n"
                "struct S { int x = 0; };\n"})
        self.assertEqual(code, 1)
        self.assertIn("suppresses nothing", out)

    def test_suppression_same_line(self):
        self.assertSuppressed(
            {"core/m4.h":
                "#include <unordered_set>\n"
                "struct S {\n"
                "  std::unordered_set<int> s_;  "
                "// NOLINT-DETERMINISM(unordered-container): lookup only\n"
                "};\n"},
            "unordered-container")

    def test_strings_and_comments_are_not_code(self):
        self.assertClean(
            {"sim/str.cc":
                "// std::rand() in a comment is fine\n"
                "/* so is std::unordered_map<int,int> here */\n"
                "const char* const kDoc = \"call time(nullptr) for fun\";\n"
                "int Use() { return kDoc[0]; }\n"})

    def test_list_rules(self):
        self.assertEqual(
            set(lint_determinism.RULES),
            {"unordered-container", "unordered-iteration",
             "banned-randomness", "pointer-key", "static-state",
             "float-accumulation"})


@unittest.skipUnless(HAVE_CLANG, "clang python bindings not available")
class ClangEngineTest(RegexEngineTest):
    engine = "clang"


if __name__ == "__main__":
    unittest.main()
