#!/usr/bin/env python3
"""Determinism lint: statically enforce the bit-reproducibility contract.

Every result in this repo rests on one contract: fresh == session-reused ==
concurrent == service, bit for bit, at any thread count, under churn and
faults (docs/DETERMINISM.md). The fingerprint matrix and the differential
fuzzer catch violations after the fact; this tool rejects the source
patterns that cause them before they build.

Rules (ids are what NOLINT-DETERMINISM suppressions name):

  unordered-container   Declaring a std::unordered_{map,set,multimap,
                        multiset} anywhere in src/ requires an audited
                        suppression proving the use is lookup-only.
                        Hash-table lookups are deterministic; everything
                        observable about *order* is not portable.
  unordered-iteration   Iterating an unordered container (range-for,
                        begin()/end()) in src/sim, src/core, or
                        src/protocols. Iteration order depends on libc++
                        vs libstdc++ bucket layout and leaks into results.
  banned-randomness     std::rand, random_device, time(), system_clock,
                        drand48 & friends, getrandom, or an un-seeded
                        <random> engine. All randomness must flow through
                        the explicitly seeded common/rng.h Mix64 path.
  pointer-key           std::map/std::set (or unordered) keyed on a
                        pointer type: ASLR makes address order differ run
                        to run, and hashed addresses differ too.
  static-state          Mutable static/namespace-scope state in a
                        simulation translation unit (src/{sim,core,
                        protocols,sketch}/*.cc). Cross-query state that
                        bypasses the session reset contract breaks
                        fresh == reused; cross-thread state breaks sweeps.
  float-accumulation    Floating-point accumulation whose order is not
                        pinned: compound-assign into an FP accumulator
                        inside a loop over an unordered container, a
                        non-slot-indexed FP accumulation inside a
                        ParallelFor/ParallelForWorker body, or a
                        std::execution::par reduction. FP addition is not
                        associative; use the ParallelMap + serial-merge
                        idiom core/sweep.h pins.

Suppressions:

    code;  // NOLINT-DETERMINISM(rule): reason

or, on its own line (attaches to the next code line, skipping further
comment lines so reasons can wrap):

    // NOLINT-DETERMINISM(rule1,rule2): reason
    // (continued reason...)
    code;

A suppression without a written reason is itself a finding
(bad-suppression) and cannot be suppressed: every exemption is an audit
record, not an escape hatch.

Engines: the libclang engine (tools/lint/clang_engine.py) is preferred
when the clang Python bindings and a loadable libclang are present; the
regex engine runs everywhere else (and is the reference for rule
semantics — the fixtures in lint_determinism_test.py pin both). Use
--engine to force one.

Exit status: 0 = no unsuppressed findings, 1 = findings, 2 = usage error.
"""

import argparse
import os
import re
import sys

RULES = (
    "unordered-container",
    "unordered-iteration",
    "banned-randomness",
    "pointer-key",
    "static-state",
    "float-accumulation",
)
# bad-suppression is reported but is not a rule you can name (or suppress).
META_RULES = ("bad-suppression",)

# Directories (path components) where unordered iteration is banned: these
# hold the code whose outputs the fingerprint matrix pins.
ITERATION_SCOPE = {"sim", "core", "protocols"}
# Translation units audited for mutable static state ("simulation code").
STATIC_SCOPE = {"sim", "core", "protocols", "sketch"}

SOURCE_SUFFIXES = (".cc", ".h", ".cpp", ".hpp")


class Finding:
    __slots__ = ("path", "line", "rule", "message", "suppressed", "reason")

    def __init__(self, path, line, rule, message, suppressed=False,
                 reason=""):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message
        self.suppressed = suppressed
        self.reason = reason

    def format(self):
        tag = " (suppressed: %s)" % self.reason if self.suppressed else ""
        return "%s:%d: [%s] %s%s" % (self.path, self.line, self.rule,
                                     self.message, tag)


# --------------------------------------------------------------------------
# Suppression parsing (shared by both engines).

NOLINT_RE = re.compile(
    r"//\s*NOLINT-DETERMINISM\(([^)]*)\)\s*(?::\s*(.*))?")
PURE_COMMENT_RE = re.compile(r"^\s*(//|/\*|\*)")


class Suppressions:
    """Maps (line, rule) -> reason for one file, plus malformed entries."""

    def __init__(self, lines):
        self.by_line = {}  # line number -> {rule: reason}
        self.malformed = []  # [(line, message)]
        self.used = set()  # (line, rule) consumed by a finding
        for idx, raw in enumerate(lines, start=1):
            m = NOLINT_RE.search(raw)
            if not m:
                continue
            rules = [r.strip() for r in m.group(1).split(",") if r.strip()]
            reason = (m.group(2) or "").strip()
            if not rules:
                self.malformed.append(
                    (idx, "NOLINT-DETERMINISM names no rule"))
                continue
            unknown = [r for r in rules if r not in RULES]
            if unknown:
                self.malformed.append(
                    (idx, "NOLINT-DETERMINISM names unknown rule(s): %s"
                     % ", ".join(unknown)))
                continue
            if not reason:
                self.malformed.append(
                    (idx, "NOLINT-DETERMINISM(%s) has no reason; every "
                     "suppression must say why the use is deterministic"
                     % ",".join(rules)))
                continue
            target = idx
            # A pure-comment NOLINT line attaches to the next code line
            # (skipping the rest of its comment block so reasons wrap).
            if PURE_COMMENT_RE.match(raw):
                j = idx  # 0-based index of the line after the NOLINT line
                while j < len(lines) and PURE_COMMENT_RE.match(lines[j]):
                    j += 1
                if j < len(lines) and lines[j].strip():
                    target = j + 1
            entry = self.by_line.setdefault(target, {})
            for rule in rules:
                entry[rule] = reason

    def lookup(self, line, rule):
        reason = self.by_line.get(line, {}).get(rule)
        if reason is not None:
            self.used.add((line, rule))
        return reason

    def unused(self):
        out = []
        for line, entry in sorted(self.by_line.items()):
            for rule, _ in sorted(entry.items()):
                if (line, rule) not in self.used:
                    out.append((line, rule))
        return out


# --------------------------------------------------------------------------
# C++ text preparation for the regex engine: blank out comments and string
# literals while preserving line structure, so patterns never match inside
# either.

def strip_comments_and_strings(text):
    out = []
    i = 0
    n = len(text)
    mode = "code"  # code | line_comment | block_comment | string | char
    raw_delim = None
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if mode == "code":
            if c == "/" and nxt == "/":
                mode = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                mode = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                # Raw string literal: R"delim( ... )delim"
                if i >= 1 and text[i - 1] == "R" and (
                        i < 2 or not text[i - 2].isalnum()):
                    m = re.match(r'"([^ ()\\\t\v\f\n]*)\(', text[i:])
                    if m:
                        raw_delim = ")" + m.group(1) + '"'
                        mode = "raw_string"
                        out.append(" ")
                        i += 1
                        continue
                mode = "string"
                out.append(" ")
                i += 1
                continue
            if c == "'":
                mode = "char"
                out.append(" ")
                i += 1
                continue
            out.append(c)
            i += 1
        elif mode == "line_comment":
            if c == "\n":
                mode = "code"
                out.append(c)
            else:
                out.append(" ")
            i += 1
        elif mode == "block_comment":
            if c == "*" and nxt == "/":
                mode = "code"
                out.append("  ")
                i += 2
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif mode == "raw_string":
            if text.startswith(raw_delim, i):
                out.append(" " * len(raw_delim))
                i += len(raw_delim)
                mode = "code"
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif mode == "string":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == '"':
                mode = "code"
                out.append(" ")
                i += 1
            else:
                out.append(c if c == "\n" else " ")
                i += 1
        elif mode == "char":
            if c == "\\":
                out.append("  ")
                i += 2
            elif c == "'":
                mode = "code"
                out.append(" ")
                i += 1
            else:
                out.append(" ")
                i += 1
    return "".join(out)


def line_of(text, pos):
    return text.count("\n", 0, pos) + 1


def balanced_span(text, open_pos, open_ch="(", close_ch=")"):
    """Returns (start, end) of the balanced region starting at open_pos
    (which must index open_ch), end exclusive of the closer; or None."""
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == open_ch:
            depth += 1
        elif text[i] == close_ch:
            depth -= 1
            if depth == 0:
                return (open_pos + 1, i)
    return None


def split_top_level(s, sep=","):
    """Splits s at top-level sep (ignoring <>, (), [] nesting)."""
    parts = []
    depth = 0
    start = 0
    for i, c in enumerate(s):
        if c in "<([":
            depth += 1
        elif c in ">)]":
            depth -= 1
        elif c == sep and depth == 0:
            parts.append(s[start:i])
            start = i + 1
    parts.append(s[start:])
    return parts


# --------------------------------------------------------------------------
# Regex engine.

UNORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*unordered_(?:map|set|multimap|multiset)\s*<")
ORDERED_DECL_RE = re.compile(
    r"\bstd\s*::\s*(?:map|set|multimap|multiset)\s*<")
RANGE_FOR_RE = re.compile(r"\bfor\s*\(")
# Only begin() starts an iteration; a bare end() is the sentinel of the
# find()/count() lookup idiom, which is order-independent and fine.
BEGIN_END_RE_TMPL = r"\b%s\s*(?:\.|->)\s*(?:c?r?begin)\s*\("

BANNED_TOKEN_PATTERNS = (
    (re.compile(r"\bstd\s*::\s*rand\b"), "std::rand"),
    (re.compile(r"(?<![\w.:>])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\brandom_device\b"), "std::random_device"),
    (re.compile(r"\bstd\s*::\s*time\s*\("), "std::time()"),
    # libc time() always takes an argument (time_t* or null), which
    # distinguishes calls from declarations of methods named time().
    (re.compile(r"(?<![\w.:>])time\s*\(\s*(?:nullptr|NULL|0\b|&)"),
     "time()"),
    (re.compile(r"\bgettimeofday\b"), "gettimeofday"),
    (re.compile(r"\bclock_gettime\b"), "clock_gettime"),
    (re.compile(r"(?<![\w.:>_])clock\s*\(\s*\)"), "clock()"),
    (re.compile(r"\b(?:d|e|l|m|n|j)rand48\b|\bsrand48\b|\bseed48\b"),
     "*rand48"),
    (re.compile(r"\barc4random\w*\b"), "arc4random"),
    (re.compile(r"\bgetrandom\b|\bgetentropy\b"), "getrandom/getentropy"),
    (re.compile(r"\bsystem_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bhigh_resolution_clock\b"),
     "std::chrono::high_resolution_clock"),
    (re.compile(r"\bsteady_clock\b"), "std::chrono::steady_clock"),
)

RANDOM_ENGINE_RE = re.compile(
    r"\bstd\s*::\s*(mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
    r"ranlux(?:24|48)(?:_base)?|knuth_b)\b")

FP_DECL_RE = re.compile(r"\b(?:double|float)\s+(\w+)\s*[=;{(,)]")
COMPOUND_ASSIGN_RE = re.compile(
    r"([\w.\->\[\]]+)\s*([+\-*/]=)(?!=)")
PARALLEL_FOR_RE = re.compile(r"\bParallelFor(?:Worker)?\s*\(")
PAR_EXEC_RE = re.compile(
    r"\bstd\s*::\s*execution\s*::\s*par(?:_unseq)?\b")


def in_scope(path, scope_dirs):
    parts = os.path.normpath(path).split(os.sep)
    return any(p in scope_dirs for p in parts)


def collect_unordered_names(stripped_by_path):
    """Repo-wide pre-pass: names declared with an unordered container type.

    Members declared in a header are iterated in a .cc, so the name set is
    shared across every scanned file. Best-effort by construction: a
    same-named vector elsewhere would alias (suppress if that ever
    happens); the libclang engine resolves real types instead.
    """
    names = set()
    for _, stripped in stripped_by_path.items():
        for m in UNORDERED_DECL_RE.finditer(stripped):
            span = stripped.find("<", m.start())
            close = _matching_angle(stripped, span)
            if close is None:
                continue
            tail = stripped[close + 1:close + 160]
            dm = re.match(r"\s*&?\s*(\w+)\s*[;={(,)]", tail)
            if dm:
                names.add(dm.group(1))
    return names


def _matching_angle(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                return i
    return None


class RegexEngine:
    name = "regex"

    def __init__(self, paths_and_text):
        # [(path, raw_text)] for every scanned file.
        self.raw = dict(paths_and_text)
        self.stripped = {
            p: strip_comments_and_strings(t) for p, t in paths_and_text}
        self.unordered_names = collect_unordered_names(self.stripped)

    def scan(self, path):
        text = self.stripped[path]
        findings = []
        findings += self._rule_unordered_container(path, text)
        findings += self._rule_unordered_iteration(path, text)
        findings += self._rule_banned_randomness(path, text)
        findings += self._rule_pointer_key(path, text)
        findings += self._rule_static_state(path, text)
        findings += self._rule_float_accumulation(path, text)
        return findings

    # -- rule: unordered-container ----------------------------------------
    def _rule_unordered_container(self, path, text):
        out = []
        for m in UNORDERED_DECL_RE.finditer(text):
            line = line_of(text, m.start())
            out.append(Finding(
                path, line, "unordered-container",
                "std::unordered container declared; prove the use is "
                "lookup-only and annotate, or switch to a deterministic "
                "structure"))
        return out

    # -- rule: unordered-iteration ----------------------------------------
    def _rule_unordered_iteration(self, path, text):
        if not in_scope(path, ITERATION_SCOPE):
            return []
        out = []
        # Range-for whose range expression names a known unordered var.
        for m in RANGE_FOR_RE.finditer(text):
            span = balanced_span(text, text.find("(", m.start()))
            if span is None:
                continue
            head = text[span[0]:span[1]]
            if ":" not in head:
                continue
            range_expr = head.rsplit(":", 1)[1].strip()
            base = re.match(r"[*&]*\s*([A-Za-z_]\w*)", range_expr)
            if base and base.group(1) in self.unordered_names:
                out.append(Finding(
                    path, line_of(text, m.start()), "unordered-iteration",
                    "range-for over unordered container '%s': iteration "
                    "order is implementation-defined and leaks into "
                    "results" % base.group(1)))
        # Explicit begin()/end() on a known unordered name.
        for name in self.unordered_names:
            for m in re.finditer(BEGIN_END_RE_TMPL % re.escape(name), text):
                out.append(Finding(
                    path, line_of(text, m.start()), "unordered-iteration",
                    "iterator over unordered container '%s': iteration "
                    "order is implementation-defined" % name))
        return out

    # -- rule: banned-randomness ------------------------------------------
    def _rule_banned_randomness(self, path, text):
        out = []
        claimed = set()
        for pattern, label in BANNED_TOKEN_PATTERNS:
            for m in pattern.finditer(text):
                line = line_of(text, m.start())
                if (line, m.start()) in claimed:
                    continue
                claimed.add((line, m.start()))
                out.append(Finding(
                    path, line, "banned-randomness",
                    "%s is banned: all randomness/time must flow through "
                    "the seeded common/rng.h Mix64 path" % label))
        for m in RANDOM_ENGINE_RE.finditer(text):
            tail = text[m.end():m.end() + 120]
            # `std::mt19937 gen;` / `gen{}` / `gen()` are un-seeded (the
            # default seed is fixed, but hides the seeding contract); a
            # parenthesised non-empty argument is an explicit seed.
            dm = re.match(r"\s+(\w+)\s*(;|\{\s*\}|\(\s*\))", tail)
            if dm:
                out.append(Finding(
                    path, line_of(text, m.start()), "banned-randomness",
                    "un-seeded std::%s '%s': seed explicitly from the "
                    "common/rng.h path or use validity::Rng" %
                    (m.group(1), dm.group(1))))
        return out

    # -- rule: pointer-key ------------------------------------------------
    def _rule_pointer_key(self, path, text):
        out = []
        for decl_re in (ORDERED_DECL_RE, UNORDERED_DECL_RE):
            for m in decl_re.finditer(text):
                open_pos = text.find("<", m.start())
                close = _matching_angle(text, open_pos)
                if close is None:
                    continue
                args = text[open_pos + 1:close]
                key = split_top_level(args)[0]
                if "*" in re.sub(r"\boperator\b.*", "", key):
                    out.append(Finding(
                        path, line_of(text, m.start()), "pointer-key",
                        "container keyed on a pointer type (%s): address "
                        "order/hash differs per run under ASLR" %
                        " ".join(key.split())))
        return out

    # -- rule: static-state -----------------------------------------------
    def _rule_static_state(self, path, text):
        if not path.endswith((".cc", ".cpp")):
            return []
        if not in_scope(path, STATIC_SCOPE):
            return []
        out = []
        out += self._namespace_scope_mutables(path, text)
        out += self._function_local_statics(path, text)
        return out

    def _namespace_scope_mutables(self, path, text):
        """Flags mutable variable definitions at namespace/file scope."""
        out = []
        # Tokenize braces while remembering which ones open namespaces.
        ns_stack = []  # True if the brace at this depth is a namespace
        stmt_start = 0
        i = 0
        n = len(text)
        while i < n:
            c = text[i]
            if c == "{":
                head = text[stmt_start:i]
                is_ns = re.search(r"\bnamespace\b[^;{}()]*$", head) is not None
                if ns_stack and not all(ns_stack):
                    is_ns = False  # nested inside a function/class body
                ns_stack.append(is_ns)
                i += 1
                stmt_start = i
                continue
            if c == "}":
                if ns_stack:
                    ns_stack.pop()
                i += 1
                stmt_start = i
                continue
            if c == ";":
                if all(ns_stack):  # at namespace (or file) scope
                    stmt = text[stmt_start:i]
                    f = self._classify_namespace_stmt(path, text,
                                                      stmt_start, stmt)
                    if f:
                        out.append(f)
                i += 1
                stmt_start = i
                continue
            i += 1
        return out

    _NS_SKIP_RE = re.compile(
        r"^\s*(?:\[\[[^\]]*\]\]\s*)*"
        r"(?:using\b|typedef\b|namespace\b|struct\b|class\b|enum\b|"
        r"template\b|extern\b|friend\b|static_assert\b|#|$)")

    def _classify_namespace_stmt(self, path, text, stmt_pos, stmt):
        if self._NS_SKIP_RE.match(stmt.strip()):
            return None
        body = re.sub(r"\[\[[^\]]*\]\]", " ", stmt)
        eq = None
        depth = 0
        for i, ch in enumerate(body):
            if ch in "<([":
                depth += 1
            elif ch in ">)]":
                depth -= 1
            elif ch == "=" and depth == 0 and (
                    i + 1 >= len(body) or body[i + 1] != "=") and (
                    i == 0 or body[i - 1] not in "!<>=+-*/&|^"):
                eq = i
                break
        decl = body[:eq] if eq is not None else body
        if eq is None and "(" in decl:
            return None  # function prototype / definition header
        if eq is not None and "(" in decl:
            return None  # e.g. `int f(int) = delete;` or fn-ptr decl w/ parens
        words = decl.split()
        if not words:
            return None
        if "constexpr" in words or "consteval" in words or "constinit" in \
                words:
            return None
        # `const T x` is immutable; `const T* x` is a mutable pointer to
        # const (the pointer itself can be reseated — g_kernel_name).
        if "const" in words:
            after_const = decl[decl.rindex("const") + len("const"):]
            if "*" not in after_const:
                return None
        line = line_of(text, stmt_pos + (len(stmt) - len(stmt.lstrip())))
        name_m = re.search(r"(\w+)\s*$", decl)
        name = name_m.group(1) if name_m else "?"
        return Finding(
            path, line, "static-state",
            "mutable namespace-scope state '%s' in a simulation "
            "translation unit: cross-query/cross-thread state bypasses "
            "the session reset contract" % name)

    def _function_local_statics(self, path, text):
        out = []
        for m in re.finditer(r"^\s+static\s+(?!const\b|constexpr\b)",
                             text, re.MULTILINE):
            # Indented static that is not a member declaration: headers are
            # excluded from this rule, and .cc class definitions are rare;
            # remaining hits are function-local statics.
            tail = text[m.end():m.end() + 200]
            if re.match(r"[\w:<>,\s*&]+\(", tail) and \
                    not re.match(r"[\w:<>,\s*&]+\([^)]*\)\s*(?:;|\s*=)",
                                 tail):
                continue  # local function declaration (illegal w/ static)
            out.append(Finding(
                path, line_of(text, m.start()), "static-state",
                "function-local static in a simulation translation unit: "
                "initialization order and lifetime outlive the query and "
                "bypass session reset"))
        return out

    # -- rule: float-accumulation -----------------------------------------
    def _rule_float_accumulation(self, path, text):
        out = []
        fp_names = set(FP_DECL_RE.findall(text))
        # (a) std::execution::par reductions are unordered by construction.
        for m in PAR_EXEC_RE.finditer(text):
            out.append(Finding(
                path, line_of(text, m.start()), "float-accumulation",
                "std::execution::par reduction: combination order is "
                "unspecified; use ParallelMap + serial merge "
                "(core/sweep.h)"))
        # (b) FP compound-assign inside a range-for over an unordered name.
        for m in RANGE_FOR_RE.finditer(text):
            open_pos = text.find("(", m.start())
            span = balanced_span(text, open_pos)
            if span is None:
                continue
            head = text[span[0]:span[1]]
            if ":" not in head:
                continue
            range_expr = head.rsplit(":", 1)[1].strip()
            base = re.match(r"[*&]*\s*([A-Za-z_]\w*)", range_expr)
            if not base or base.group(1) not in self.unordered_names:
                continue
            body = self._loop_body(text, span[1] + 1)
            for am in COMPOUND_ASSIGN_RE.finditer(body):
                lhs = am.group(1)
                if self._is_fp_lhs(lhs, fp_names):
                    out.append(Finding(
                        path, line_of(text, span[1] + 1 + am.start()),
                        "float-accumulation",
                        "floating-point accumulation over an unordered "
                        "range ('%s' in a loop over '%s'): FP addition is "
                        "not associative, so hash order changes the "
                        "result" % (lhs, base.group(1))))
        # (c) Non-slot-indexed FP accumulation inside a ParallelFor body.
        for m in PARALLEL_FOR_RE.finditer(text):
            open_pos = text.find("(", m.start())
            span = balanced_span(text, open_pos)
            if span is None:
                continue
            body = text[span[0]:span[1]]
            for am in COMPOUND_ASSIGN_RE.finditer(body):
                lhs = am.group(1)
                if "[" in lhs:
                    continue  # slot-indexed write: the sanctioned idiom
                if self._is_fp_lhs(lhs, fp_names):
                    out.append(Finding(
                        path, line_of(text, span[0] + am.start()),
                        "float-accumulation",
                        "shared floating-point accumulator '%s' inside a "
                        "ParallelFor body: claim order is nondeterministic;"
                        " write per-index slots and merge serially "
                        "(ParallelMap idiom, core/sweep.h)" % lhs))
        return out

    @staticmethod
    def _loop_body(text, after_paren):
        m = re.match(r"\s*\{", text[after_paren:])
        if m:
            span = balanced_span(text, after_paren + m.end() - 1, "{", "}")
            if span:
                return text[span[0]:span[1]]
        stmt_end = text.find(";", after_paren)
        return text[after_paren:stmt_end if stmt_end >= 0 else len(text)]

    @staticmethod
    def _is_fp_lhs(lhs, fp_names):
        base = re.split(r"[.\->\[]", lhs)[0]
        return base in fp_names or lhs in fp_names


# --------------------------------------------------------------------------
# Driver.

def gather_files(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            for root, _, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith(SOURCE_SUFFIXES):
                        files.append(os.path.join(root, name))
        elif os.path.isfile(p):
            files.append(p)
        else:
            raise FileNotFoundError(p)
    return sorted(set(files))


def make_engine(kind, paths_and_text):
    if kind in ("auto", "clang"):
        try:
            from clang_engine import ClangEngine  # noqa: deferred import
            return ClangEngine(paths_and_text)
        except Exception as exc:  # libclang genuinely unavailable
            if kind == "clang":
                raise SystemExit(
                    "libclang engine unavailable: %s" % exc)
    return RegexEngine(paths_and_text)


def run(paths, engine_kind="auto", show_suppressed=False, out=sys.stdout):
    files = gather_files(paths)
    paths_and_text = []
    for path in files:
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            paths_and_text.append((path, f.read()))
    engine = make_engine(engine_kind, paths_and_text)

    unsuppressed = []
    suppressed = []
    for path, raw in paths_and_text:
        lines = raw.split("\n")
        supp = Suppressions(lines)
        for finding in engine.scan(path):
            reason = supp.lookup(finding.line, finding.rule)
            if reason is not None:
                finding.suppressed = True
                finding.reason = reason
                suppressed.append(finding)
            else:
                unsuppressed.append(finding)
        for line, msg in supp.malformed:
            unsuppressed.append(
                Finding(path, line, "bad-suppression", msg))
        for line, rule in supp.unused():
            unsuppressed.append(Finding(
                path, line, "bad-suppression",
                "NOLINT-DETERMINISM(%s) suppresses nothing (no %s finding "
                "on its target line); remove or fix the annotation"
                % (rule, rule)))

    unsuppressed.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in unsuppressed:
        print(f.format(), file=out)
    if show_suppressed:
        for f in sorted(suppressed, key=lambda f: (f.path, f.line)):
            print(f.format(), file=out)
    print("determinism lint [%s engine]: %d file(s), %d finding(s), "
          "%d audited suppression(s)" %
          (engine.name, len(files), len(unsuppressed), len(suppressed)),
          file=out)
    return 1 if unsuppressed else 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Determinism lint for the validity repo (see module "
                    "docstring and docs/DETERMINISM.md).")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to scan (default: src)")
    parser.add_argument("--engine", choices=("auto", "clang", "regex"),
                        default="auto")
    parser.add_argument("--show-suppressed", action="store_true",
                        help="also list audited suppressions")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)
    if args.list_rules:
        for rule in RULES:
            print(rule)
        return 0
    try:
        return run(args.paths or ["src"], args.engine,
                   args.show_suppressed)
    except FileNotFoundError as exc:
        print("no such path: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    sys.exit(main())
