#!/usr/bin/env python3
"""Object-level backstop for the determinism contract (docs/DETERMINISM.md).

The source lint (tools/lint/lint_determinism.py) cannot see through
macros, templates expanded from third-party headers, or code generated at
build time. This tool scans *built* objects with `nm --undefined-only`
and fails if any banned libc randomness/time symbol is referenced: if one
of these names appears as an undefined symbol in libvalidity.a, some
translation unit calls it, whatever the source looked like.

Banned symbols are matched exactly (C-level names, optionally with a
@GLIBC version suffix), never as substrings — the repo's own mangled
C++ names legitimately contain "Random" and "Timer".

Usage:
    tools/check_banned_symbols.py build/libvalidity.a [more objects...]
        [--allow SYM ...] [--nm NM]

Exit status: 0 = clean, 1 = banned reference found, 2 = usage/tool error.
"""

import argparse
import subprocess
import sys

# Nondeterministic randomness: anything here produces different bits per
# run/machine; all simulation randomness must flow through the seeded
# common/rng.h Mix64 path.
BANNED_RANDOM = {
    "rand", "rand_r", "srand", "random", "random_r", "srandom",
    "srandom_r", "initstate", "setstate",
    "drand48", "erand48", "lrand48", "nrand48", "mrand48", "jrand48",
    "srand48", "seed48", "lcong48", "drand48_r", "lrand48_r",
    "mrand48_r", "srand48_r",
    "getrandom", "getentropy",
    "arc4random", "arc4random_buf", "arc4random_uniform",
}

# Wall-clock time: results must depend only on simulated time and seeds.
# (clock_gettime stays off this list: libstdc++'s std::thread /
# condition_variable internals may reference it from inlined header code
# without any repo source naming a clock; the source lint bans the
# std::chrono clock types directly instead.)
BANNED_TIME = {
    "time", "gettimeofday", "ftime", "clock", "timespec_get",
}

BANNED = BANNED_RANDOM | BANNED_TIME


def undefined_symbols(nm, path):
    """Yields (member, symbol) for every undefined symbol in `path`."""
    try:
        out = subprocess.run(
            [nm, "--undefined-only", "--format=posix", path],
            capture_output=True, text=True, check=True).stdout
    except FileNotFoundError:
        raise SystemExit("nm not found (%r); pass --nm" % nm)
    except subprocess.CalledProcessError as exc:
        raise SystemExit("nm failed on %s: %s" % (path, exc.stderr.strip()))
    member = path
    for line in out.splitlines():
        line = line.strip()
        if not line:
            continue
        if line.endswith(":"):  # archive member header, e.g. "foo.cc.o:"
            member = "%s(%s)" % (path, line[:-1].split("[")[-1].rstrip("]"))
            continue
        symbol = line.split()[0]
        yield member, symbol


def base_name(symbol):
    """Strips a @GLIBC_x / @@GLIBC_x version suffix."""
    return symbol.split("@", 1)[0]


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="Fail if built objects reference banned libc "
                    "randomness/time symbols.")
    parser.add_argument("objects", nargs="+",
                        help="archives (.a) or object files (.o) to scan")
    parser.add_argument("--allow", action="append", default=[],
                        metavar="SYM",
                        help="symbol to exempt (repeatable); use only "
                             "with a reviewed justification")
    parser.add_argument("--nm", default="nm",
                        help="nm binary to use (default: nm)")
    args = parser.parse_args(argv)

    allowed = set(args.allow)
    violations = []
    scanned = 0
    for path in args.objects:
        scanned += 1
        for member, symbol in undefined_symbols(args.nm, path):
            name = base_name(symbol)
            if name in BANNED and name not in allowed:
                violations.append((member, name))

    for member, name in sorted(set(violations)):
        print("%s: references banned symbol '%s' — all randomness/time "
              "must flow through the seeded common/rng.h path "
              "(docs/DETERMINISM.md)" % (member, name))
    print("check_banned_symbols: %d object(s), %d banned reference(s)"
          % (scanned, len(set(violations))))
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main())
