#!/usr/bin/env python3
"""Unit tests for check_bench_regression.py (wired into ctest by CMake).

Covers the pieces CI actually leans on: unit normalization, the
"threads:N" skip logic for cross-machine thread-scaling entries,
aggregate-row filtering, added/retired benchmark handling, and the
--strict exit-code contract.
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_bench_regression as cbr

TOOL = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "check_bench_regression.py")


def bench_doc(entries, num_cpus=8):
    """Builds a google-benchmark JSON document from (name, real_time,
    time_unit[, run_type]) tuples."""
    benchmarks = []
    for entry in entries:
        bench = {"name": entry[0], "real_time": entry[1],
                 "time_unit": entry[2]}
        if len(entry) > 3:
            bench["run_type"] = entry[3]
        benchmarks.append(bench)
    return {"context": {"num_cpus": num_cpus}, "benchmarks": benchmarks}


class UnitTests(unittest.TestCase):
    def test_to_ns_normalizes_every_unit(self):
        self.assertEqual(cbr.to_ns(2.0, "ns"), 2.0)
        self.assertEqual(cbr.to_ns(2.0, "us"), 2000.0)
        self.assertEqual(cbr.to_ns(2.0, "ms"), 2e6)
        self.assertEqual(cbr.to_ns(2.0, "s"), 2e9)
        # Unknown units pass through rather than crash (forward compat).
        self.assertEqual(cbr.to_ns(2.0, "fortnights"), 2.0)

    def test_benchmark_threads_parses_name_components(self):
        self.assertEqual(cbr.benchmark_threads("BM_Sweep/threads:4"), 4)
        self.assertEqual(cbr.benchmark_threads("BM_Sweep/100/threads:16"), 16)
        self.assertIsNone(cbr.benchmark_threads("BM_Sweep/100"))
        # "threads:" must be its own path component, not a substring.
        self.assertIsNone(cbr.benchmark_threads("BM_threads:4x"))

    def test_load_benchmarks_skips_aggregates_and_reads_cpus(self):
        doc = bench_doc([("BM_A", 10.0, "ns"),
                         ("BM_A_mean", 11.0, "ns", "aggregate"),
                         ("BM_B", 5.0, "ms")], num_cpus=4)
        with tempfile.NamedTemporaryFile("w", suffix=".json",
                                         delete=False) as f:
            json.dump(doc, f)
            path = f.name
        try:
            benches, cpus = cbr.load_benchmarks(path)
        finally:
            os.unlink(path)
        self.assertEqual(cpus, 4)
        self.assertEqual(set(benches), {"BM_A", "BM_B"})
        self.assertEqual(benches["BM_B"], (5.0, "ms"))


class CliTests(unittest.TestCase):
    def run_tool(self, baseline_doc, fresh_doc, *extra_args):
        """Runs the CLI on two temp JSONs; returns (exit_code, stdout)."""
        files = []
        for doc in (baseline_doc, fresh_doc):
            f = tempfile.NamedTemporaryFile("w", suffix=".json",
                                            delete=False)
            json.dump(doc, f)
            f.close()
            files.append(f.name)
        try:
            proc = subprocess.run(
                [sys.executable, TOOL, "--baseline", files[0],
                 "--fresh", files[1], *extra_args],
                capture_output=True, text=True)
        finally:
            for path in files:
                os.unlink(path)
        return proc.returncode, proc.stdout

    def test_clean_run_exits_zero(self):
        base = bench_doc([("BM_A", 100.0, "ns")])
        fresh = bench_doc([("BM_A", 110.0, "ns")])
        code, out = self.run_tool(base, fresh, "--strict")
        self.assertEqual(code, 0)
        self.assertIn("no benchmark exceeded the threshold", out)

    def test_regression_warns_without_strict(self):
        base = bench_doc([("BM_A", 100.0, "ns")])
        fresh = bench_doc([("BM_A", 300.0, "ns")])
        code, out = self.run_tool(base, fresh)
        self.assertEqual(code, 0)  # warn-only by default
        self.assertIn("SLOWER", out)

    def test_regression_fails_with_strict(self):
        base = bench_doc([("BM_A", 100.0, "ns")])
        fresh = bench_doc([("BM_A", 300.0, "ns")])
        code, out = self.run_tool(base, fresh, "--strict")
        self.assertEqual(code, 1)
        self.assertIn("SLOWER", out)

    def test_units_normalized_before_comparing(self):
        # 0.1 ms == 100000 ns: same speed despite different units.
        base = bench_doc([("BM_A", 100000.0, "ns")])
        fresh = bench_doc([("BM_A", 0.1, "ms")])
        code, out = self.run_tool(base, fresh, "--strict")
        self.assertEqual(code, 0)
        self.assertIn("no benchmark exceeded the threshold", out)

    def test_threads_beyond_min_cpus_skipped(self):
        # Baseline machine had 2 CPUs: its threads:4 row serialized, so a
        # 3x "regression" on an 8-CPU fresh machine must be skipped.
        base = bench_doc([("BM_Sweep/threads:4", 100.0, "ns"),
                          ("BM_A", 100.0, "ns")], num_cpus=2)
        fresh = bench_doc([("BM_Sweep/threads:4", 300.0, "ns"),
                           ("BM_A", 100.0, "ns")], num_cpus=8)
        code, out = self.run_tool(base, fresh, "--strict")
        self.assertEqual(code, 0)
        self.assertIn("skipped", out)
        self.assertIn("BM_Sweep/threads:4", out)

    def test_threads_within_min_cpus_compared(self):
        base = bench_doc([("BM_Sweep/threads:4", 100.0, "ns")], num_cpus=8)
        fresh = bench_doc([("BM_Sweep/threads:4", 300.0, "ns")], num_cpus=8)
        code, out = self.run_tool(base, fresh, "--strict")
        self.assertEqual(code, 1)
        self.assertIn("SLOWER", out)

    def test_threads_compared_when_cpus_unknown(self):
        # Old-format JSONs without context.num_cpus compare everything.
        base = bench_doc([("BM_Sweep/threads:16", 100.0, "ns")], num_cpus=0)
        fresh = bench_doc([("BM_Sweep/threads:16", 300.0, "ns")], num_cpus=0)
        code, out = self.run_tool(base, fresh, "--strict")
        self.assertEqual(code, 1)

    def test_added_and_retired_benchmarks_never_fail(self):
        base = bench_doc([("BM_Old", 100.0, "ns")])
        fresh = bench_doc([("BM_New", 100.0, "ns")])
        code, out = self.run_tool(base, fresh, "--strict")
        self.assertEqual(code, 0)
        self.assertIn("new since baseline (ignored): BM_New", out)
        self.assertIn("missing from fresh run (ignored): BM_Old", out)

    def test_custom_threshold(self):
        base = bench_doc([("BM_A", 100.0, "ns")])
        fresh = bench_doc([("BM_A", 130.0, "ns")])
        code, _ = self.run_tool(base, fresh, "--strict",
                                "--threshold", "1.2")
        self.assertEqual(code, 1)
        code, _ = self.run_tool(base, fresh, "--strict",
                                "--threshold", "1.5")
        self.assertEqual(code, 0)

    def test_improvement_reported_not_failed(self):
        base = bench_doc([("BM_A", 300.0, "ns")])
        fresh = bench_doc([("BM_A", 100.0, "ns")])
        code, out = self.run_tool(base, fresh, "--strict")
        self.assertEqual(code, 0)
        self.assertIn("IMPROVED", out)


if __name__ == "__main__":
    unittest.main()
