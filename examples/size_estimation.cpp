// Network-size tracking (§5.4): "how many peers are online right now?"
// answered continuously and cheaply, two ways:
//
//   1. Capture-recapture (Jolly-Seber): the monitoring peer keeps a set of
//      marked hosts and estimates |H| = |M|*|N|/recaptures per interval.
//   2. DHT-ring segments: on ring-structured overlays, s lookups routed to
//      uniform ring identifiers land on length-biased segments x_i; the
//      mean reciprocal (1/s) * sum 1/x_i is unbiased for the alive count.
//
// A full WILDFIRE count costs O(|E|) messages; these cost O(samples).

#include <cmath>
#include <cstdio>

#include "protocols/capture_recapture.h"
#include "protocols/ring_estimator.h"
#include "sim/churn.h"
#include "topology/generators.h"

int main() {
  using namespace validity;
  using namespace validity::protocols;

  constexpr uint32_t kHosts = 8000;
  auto overlay = topology::MakeRandom(kHosts, 6.0, /*seed=*/41);
  if (!overlay.ok()) return 1;

  sim::Simulator simulator(*overlay, sim::SimOptions{});
  // Flash crowd in reverse: 55% of the network leaves over the run.
  Rng churn_rng(42);
  sim::ScheduleChurn(&simulator,
                     sim::MakeUniformChurn(kHosts, 0, kHosts * 55 / 100, 0.0,
                                           120.0, &churn_rng));

  CaptureRecaptureOptions options;
  options.sample_size = 500;
  options.interval = 12.0;
  options.num_intervals = 10;
  options.sampler = SamplerKind::kRandomWalk;  // the §5.4 black box
  CaptureRecaptureEstimator capture(&simulator, options, /*seed=*/43);
  if (!capture.Start(/*hq=*/0).ok()) return 1;

  RingSizeEstimator ring(&simulator, /*ring_seed=*/44);
  Rng ring_rng(45);

  std::printf("tracking a shrinking overlay (%u -> %u hosts)\n\n", kHosts,
              kHosts - kHosts * 55 / 100);
  std::printf("%6s %12s %18s %14s\n", "time", "true alive",
              "capture-recapture", "ring segments");

  // Interleave: pump the simulation to each sampling instant, read both
  // estimators.
  for (uint32_t k = 1; k <= options.num_intervals; ++k) {
    double t = k * options.interval;
    simulator.RunUntil(t + 0.5);
    auto ring_estimate = ring.EstimateSize(250, &ring_rng);
    const auto& estimates = capture.estimates();
    double cr = estimates.empty() ? std::nan("") : estimates.back().estimate;
    std::printf("%6.0f %12u %18.0f %14.0f\n", t, simulator.alive_count(), cr,
                ring_estimate.ok() ? *ring_estimate : std::nan(""));
  }
  std::printf(
      "\nboth estimators track the decline at a tiny fraction of the cost\n"
      "of a full valid count; their guarantees are the Approximate\n"
      "Single-Site Validity of paper §4.3/§5.4.\n");
  return 0;
}
