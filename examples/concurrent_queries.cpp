// Simulator sessions and multi-query concurrency.
//
// A monitoring station over a P2P network rarely asks one question once: it
// issues a stream of aggregate queries — often several at a time, from
// different vantage points — over the same (changing) topology. Building a
// fresh simulator per query makes every query pay the O(network) CSR +
// liveness construction; a sim::SimulatorSession pays it once and resets
// between queries in O(touched).
//
// This program demonstrates the three execution modes and the determinism
// contract tying them together (docs/SESSIONS.md):
//   1. cold:       QueryEngine::Run(spec, config, hq) — fresh simulator;
//   2. warm:       QueryEngine::Run(&session, ...)    — cached simulator,
//                  epoch reset between queries;
//   3. concurrent: QueryEngine::RunConcurrent(...)    — N queries sharing
//                  one session and one simulated timeline, kept apart by
//                  instance-tagged messages and per-query metrics lanes.
// Every mode produces bit-identical per-query results, which the program
// checks as it goes.

#include <chrono>
#include <cstdio>
#include <vector>

#include "core/engine.h"
#include "sim/session.h"
#include "topology/generators.h"

namespace {

using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

bool Identical(const validity::core::QueryResult& a,
               const validity::core::QueryResult& b) {
  return a.value == b.value && a.declared == b.declared &&
         a.cost.messages == b.cost.messages &&
         a.cost.bytes == b.cost.bytes &&
         a.cost.max_processed == b.cost.max_processed &&
         a.cost.declared_at == b.cost.declared_at &&
         a.validity.q_low == b.validity.q_low &&
         a.validity.q_high == b.validity.q_high;
}

}  // namespace

int main() {
  using namespace validity;

  const uint32_t kHosts = 20000;
  topology::Graph graph = *topology::MakeGnutellaLike(kHosts, 7);
  core::QueryEngine engine(&graph, core::MakeZipfValues(kHosts, 7));

  std::printf("Gnutella-like network, %u hosts, %u edges\n\n",
              graph.num_hosts(), graph.num_edges());

  core::QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.fm_vectors = 16;
  core::RunConfig config;  // WILDFIRE, no churn

  // --- 1. cold vs warm: the session amortizes the simulator build --------
  auto t0 = Clock::now();
  auto cold = *engine.Run(spec, config, 0);
  double cold_ms = MsSince(t0);

  sim::SimulatorSession session(&graph, config.sim_options);
  t0 = Clock::now();
  auto first = *engine.Run(&session, spec, config, 0);
  double first_ms = MsSince(t0);  // pays the page/pool warm-up once
  t0 = Clock::now();
  auto second = *engine.Run(&session, spec, config, 0);
  double second_ms = MsSince(t0);  // epoch reset + query only

  std::printf("cold (fresh simulator):       %7.2f ms\n", cold_ms);
  std::printf("session, first query:         %7.2f ms\n", first_ms);
  std::printf("session, second query:        %7.2f ms\n", second_ms);
  std::printf("cold == warm, bit for bit:    %s\n\n",
              Identical(cold, second) ? "yes" : "NO (bug!)");

  // --- 2. concurrent: four queries, one timeline ------------------------
  std::vector<core::QueryEngine::ConcurrentQuery> batch(4);
  batch[0].spec.aggregate = AggregateKind::kCount;
  batch[0].hq = 0;
  batch[1].spec.aggregate = AggregateKind::kSum;
  batch[1].hq = 500;
  batch[2].spec.aggregate = AggregateKind::kMax;
  batch[2].hq = 1500;
  batch[3].spec.aggregate = AggregateKind::kCount;
  batch[3].config.protocol = protocols::ProtocolKind::kSpanningTree;
  batch[3].spec.exact_combiners = true;
  batch[3].hq = 2500;

  t0 = Clock::now();
  auto concurrent = *engine.RunConcurrent(&session, batch);
  double batch_ms = MsSince(t0);

  std::printf("4 concurrent queries in one timeline: %7.2f ms total\n",
              batch_ms);
  std::printf("%-14s %-6s %12s %10s %12s %s\n", "protocol", "agg", "value",
              "messages", "declared_at", "matches solo?");
  for (size_t i = 0; i < batch.size(); ++i) {
    auto solo = *engine.Run(batch[i].spec, batch[i].config, batch[i].hq);
    std::printf("%-14s %-6s %12.1f %10llu %12.1f %s\n",
                protocols::ProtocolKindName(batch[i].config.protocol),
                AggregateKindName(batch[i].spec.aggregate),
                concurrent[i].value,
                static_cast<unsigned long long>(concurrent[i].cost.messages),
                concurrent[i].cost.declared_at,
                Identical(solo, concurrent[i]) ? "yes" : "NO (bug!)");
  }

  std::printf(
      "\nsession epochs used: %llu (one simulator build for everything "
      "above)\n",
      static_cast<unsigned long long>(session.epoch()));
  return 0;
}
