// P2P monitoring scenario (§4.2 continuous queries): a monitoring peer
// registers a continuous "average load" query over a churning file-sharing
// overlay and receives one Single-Site-Valid answer per window.
//
// Shows: ContinuousWildfire with windowed Continuous SSV semantics, exact
// union combiners (they make window-level validity crisp), and the
// per-window oracle check.

#include <cstdio>

#include "common/zipf.h"
#include "protocols/continuous.h"
#include "protocols/oracle.h"
#include "sim/churn.h"
#include "topology/generators.h"

int main() {
  using namespace validity;
  using namespace validity::protocols;

  constexpr uint32_t kHosts = 4000;
  constexpr double kDHat = 12;
  constexpr double kWindow = 30;    // >= 2 * d_hat * delta
  constexpr uint32_t kWindows = 6;

  auto overlay = topology::MakeGnutellaLike(kHosts, /*seed=*/31);
  if (!overlay.ok()) return 1;

  // Per-peer "load" metric (queued uploads, say): Zipf-heavy.
  std::vector<double> load;
  {
    auto zipf = ZipfGenerator::Make(0, 100, 0.8);
    Rng rng(32);
    for (uint32_t h = 0; h < kHosts; ++h) {
      load.push_back(static_cast<double>(zipf->Sample(&rng)));
    }
  }

  sim::Simulator simulator(*overlay, sim::SimOptions{});
  // Session churn: exponential lifetimes, mean 2 windows, fed straight to
  // the calendar heap (no materialized, sorted event list).
  Rng churn_rng(33);
  sim::ScheduleExponentialLifetimeChurn(&simulator, /*protect=*/0,
                                        /*mean_lifetime=*/2 * kWindow,
                                        /*horizon=*/kWindows * kWindow,
                                        &churn_rng);

  QueryContext ctx;
  ctx.aggregate = AggregateKind::kAverage;
  ctx.combiner = CombinerKind::kUnionAverage;  // exact duplicate-insensitive
  ctx.d_hat = kDHat;
  ctx.values = &load;

  ContinuousWildfire monitor(&simulator, ctx,
                             ContinuousOptions{kWindow, kWindows});
  Status st = monitor.Start(/*hq=*/0);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  simulator.Run();

  std::printf("continuous avg-load query, window W = %.0f, %u windows\n\n",
              kWindow, kWindows);
  std::printf("%8s %12s %14s %22s %8s\n", "window", "avg load", "alive hosts",
              "oracle bounds", "valid?");
  for (uint32_t w = 0; w < kWindows; ++w) {
    const WindowResult& res = monitor.results()[w];
    if (!res.declared) {
      std::printf("%8u (monitoring host left the network)\n", w);
      continue;
    }
    OracleReport oracle = ComputeOracle(
        simulator, 0, res.issued_at, res.issued_at + 2 * kDHat,
        AggregateKind::kAverage, load);
    std::printf("%8u %12.2f %14zu [%9.2f, %9.2f] %8s\n", w, res.value,
                oracle.hu.size(), oracle.q_low, oracle.q_high,
                oracle.Contains(res.value) ? "yes" : "NO");
  }
  std::printf(
      "\neach window's answer is q(H) for some HC <= H <= HU *of that\n"
      "window* — Continuous Single-Site Validity (paper §4.2).\n");
  return 0;
}
