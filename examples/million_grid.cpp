// Million-host wireless grid: the ROADMAP's 10^6-host scenario, runnable on
// a laptop because *everything* per-host is demand-driven.
//
// A 1000 x 1000 sensor grid is queried for COUNT from its center with a
// deliberately small D-hat: the broadcast disc covers only the hosts within
// 2 * D-hat hops of the querying mote, a few percent of the million-host
// field. The grid is an implicit topology (topology::Topology::Grid):
// neighbors are computed arithmetically, liveness and metrics pages
// materialize on first touch, and protocol state is paged — so the cold
// path (simulator construction included) is proportional to the disc.
//
// The run demonstrates — and checks, exiting non-zero on violation — two
// contracts:
//  1. protocol-state paging: resident protocol state tracks the ACTIVATED
//     hosts, not the network (a fully-covered small grid is the yardstick);
//  2. simulator-table paging: the implicit simulator's resident tables are
//     >= 5x smaller than the same query over a materialized CSR
//     (SimOptions::materialize_adjacency re-creates the old eager layout).
//
// Validity/oracle ground-truth passes are O(network); the big run turns
// them off (RunConfig::compute_validity = false) so the query's cost tracks
// the touched disc end to end.

#include <cinttypes>
#include <cstdio>

#include "core/engine.h"
#include "sim/session.h"
#include "topology/generators.h"
#include "topology/topology.h"

namespace {

struct RunOutcome {
  validity::core::QueryResult result;
  size_t simulator_table_bytes = 0;
};

RunOutcome RunCountQuery(const validity::topology::Topology& topo,
                         validity::HostId hq, double d_hat,
                         bool materialize_adjacency) {
  using namespace validity;
  std::vector<double> values(topo.num_hosts(), 1.0);  // presence count
  core::QueryEngine engine(topo, std::move(values));
  core::QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.fm_vectors = 16;
  spec.d_hat = d_hat;
  core::RunConfig config;
  config.sim_options.medium = sim::MediumKind::kWireless;
  config.sim_options.materialize_adjacency = materialize_adjacency;
  config.compute_validity = false;  // skip the O(network) oracle pass
  // Run on a session so the simulator outlives the query and its resident
  // tables can be inspected.
  sim::SimulatorSession session(topo, config.sim_options);
  auto result = engine.Run(&session, spec, config, hq);
  VALIDITY_CHECK(result.ok(), "%s", result.status().ToString().c_str());
  return RunOutcome{*std::move(result),
                    session.simulator().ResidentTableBytes()};
}

}  // namespace

int main() {
  using namespace validity;

  constexpr uint32_t kSide = 1000;  // 10^6 hosts
  constexpr double kDhat = 40;      // broadcast disc radius: 2 * D-hat hops
  topology::Topology grid = *topology::Topology::Grid(kSide);
  const uint32_t n = grid.num_hosts();
  const HostId hq = (kSide / 2) * kSide + kSide / 2;  // center mote

  // Yardstick: a small grid whose query disc covers EVERY host gives the
  // per-host cost of fully-materialized protocol state.
  constexpr uint32_t kControlSide = 64;
  topology::Topology control_grid = *topology::Topology::Grid(kControlSide);
  auto control = RunCountQuery(control_grid, /*hq=*/0,
                               /*d_hat=*/2.0 * kControlSide,
                               /*materialize_adjacency=*/false);
  const double bytes_per_active_host =
      static_cast<double>(control.result.resident_state_bytes) /
      control_grid.num_hosts();

  std::printf("wireless grid: %u x %u = %u hosts (implicit topology), COUNT "
              "at the center, D-hat = %.0f\n", kSide, kSide, n, kDhat);

  auto implicit_run = RunCountQuery(grid, hq, kDhat,
                                    /*materialize_adjacency=*/false);
  const core::QueryResult& result = implicit_run.result;

  // The disc the query touched: hosts within 2*D-hat grid hops activate
  // (one hop per delta until the horizon closes).
  const double disc_side = 2.0 * (2.0 * kDhat) + 1.0;
  const double disc_hosts = disc_side * disc_side;
  const double eager_bytes = bytes_per_active_host * n;

  std::printf("\nestimated count (FM, c=16): %.0f  (disc holds <= %.0f "
              "hosts)\n", result.value, disc_hosts);
  std::printf("declared at t=%.0f after %" PRIu64 " radio transmissions "
              "(%.2f MB)\n", result.cost.declared_at, result.cost.messages,
              static_cast<double>(result.cost.bytes) / 1e6);
  std::printf("resident protocol state: %.2f MB paged vs ~%.0f MB for the "
              "eager per-host layout\n",
              static_cast<double>(result.resident_state_bytes) / 1e6,
              eager_bytes / 1e6);

  // --- contract 1: protocol-state paging, checked ------------------------
  // Resident state must be bounded by the touched disc (pages round to
  // 256-host granularity and every grid row of the disc lands on its own
  // page neighborhood, so allow 4x slack) and must be a small fraction of
  // the eager layout.
  const double allowed = 4.0 * bytes_per_active_host * disc_hosts;
  if (result.resident_state_bytes == 0 ||
      static_cast<double>(result.resident_state_bytes) > allowed ||
      static_cast<double>(result.resident_state_bytes) > 0.10 * eager_bytes) {
    std::fprintf(stderr,
                 "PAGING VIOLATION: resident %zu bytes, allowed %.0f "
                 "(yardstick %.1f B/host, eager %.0f)\n",
                 result.resident_state_bytes, allowed, bytes_per_active_host,
                 eager_bytes);
    return 1;
  }
  std::printf("paging check passed: resident state tracks the %.1f%% disc, "
              "not the %u-host network\n", 100.0 * disc_hosts / n, n);

  // --- contract 2: simulator tables are disc-proportional too ------------
  // Same query, same engine semantics, but with the adjacency materialized
  // into a CSR — the pre-implicit world. The implicit simulator's tables
  // must come in at least 5x smaller.
  auto csr_run = RunCountQuery(grid, hq, kDhat,
                               /*materialize_adjacency=*/true);
  const double table_ratio =
      static_cast<double>(csr_run.simulator_table_bytes) /
      static_cast<double>(implicit_run.simulator_table_bytes);
  std::printf("\nsimulator tables: %.2f MB implicit vs %.2f MB materialized "
              "CSR (%.1fx)\n",
              static_cast<double>(implicit_run.simulator_table_bytes) / 1e6,
              static_cast<double>(csr_run.simulator_table_bytes) / 1e6,
              table_ratio);
  if (csr_run.result.value != result.value ||
      csr_run.result.cost.messages != result.cost.messages) {
    std::fprintf(stderr, "DETERMINISM VIOLATION: implicit and materialized "
                 "runs disagree\n");
    return 1;
  }
  if (table_ratio < 5.0) {
    std::fprintf(stderr,
                 "TABLE VIOLATION: implicit simulator tables %zu bytes are "
                 "only %.1fx smaller than the %zu-byte CSR layout "
                 "(need >= 5x)\n",
                 implicit_run.simulator_table_bytes, table_ratio,
                 csr_run.simulator_table_bytes);
    return 1;
  }
  std::printf("table check passed: implicit simulator tables are %.1fx "
              "smaller than the materialized layout\n", table_ratio);
  return 0;
}
