// Million-host wireless grid: the ROADMAP's 10^6-host scenario, runnable on
// a laptop because per-host protocol state is paged lazily.
//
// A 1000 x 1000 sensor grid is queried for COUNT from its center with a
// deliberately small D-hat: the broadcast disc covers only the hosts within
// 2 * D-hat hops of the querying mote, a few percent of the million-host
// field. The run demonstrates — and checks, exiting non-zero on violation —
// the paging contract: resident protocol state is proportional to the
// ACTIVATED hosts, not to the million-host network. A fully-covered small
// grid provides the per-host state yardstick for that check.
//
// Validity/oracle ground-truth passes are O(network); the big run turns
// them off (RunConfig::compute_validity = false) so the query's cost tracks
// the touched disc end to end.

#include <cinttypes>
#include <cstdio>

#include "core/engine.h"
#include "topology/generators.h"

namespace {

validity::core::QueryResult RunCountQuery(const validity::topology::Graph& g,
                                          validity::HostId hq, double d_hat) {
  using namespace validity;
  std::vector<double> values(g.num_hosts(), 1.0);  // presence count
  core::QueryEngine engine(&g, std::move(values));
  core::QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.fm_vectors = 16;
  spec.d_hat = d_hat;
  core::RunConfig config;
  config.sim_options.medium = sim::MediumKind::kWireless;
  config.compute_validity = false;  // skip the O(network) oracle pass
  auto result = engine.Run(spec, config, hq);
  VALIDITY_CHECK(result.ok(), "%s", result.status().ToString().c_str());
  return *std::move(result);
}

}  // namespace

int main() {
  using namespace validity;

  constexpr uint32_t kSide = 1000;  // 10^6 hosts
  constexpr double kDhat = 40;      // broadcast disc radius: 2 * D-hat hops
  auto grid = topology::MakeGrid(kSide);
  if (!grid.ok()) {
    std::fprintf(stderr, "grid: %s\n", grid.status().ToString().c_str());
    return 1;
  }
  const uint32_t n = grid->num_hosts();
  const HostId hq = (kSide / 2) * kSide + kSide / 2;  // center mote

  // Yardstick: a small grid whose query disc covers EVERY host gives the
  // per-host cost of fully-materialized protocol state.
  constexpr uint32_t kControlSide = 64;
  auto control_grid = topology::MakeGrid(kControlSide);
  VALIDITY_CHECK(control_grid.ok(), "control grid");
  auto control = RunCountQuery(*control_grid, /*hq=*/0,
                               /*d_hat=*/2.0 * kControlSide);
  const double bytes_per_active_host =
      static_cast<double>(control.resident_state_bytes) /
      control_grid->num_hosts();

  std::printf("wireless grid: %u x %u = %u hosts, COUNT at the center, "
              "D-hat = %.0f\n", kSide, kSide, n, kDhat);

  auto result = RunCountQuery(*grid, hq, kDhat);

  // The disc the query touched: hosts within 2*D-hat grid hops activate
  // (one hop per delta until the horizon closes).
  const double disc_side = 2.0 * (2.0 * kDhat) + 1.0;
  const double disc_hosts = disc_side * disc_side;
  const double eager_bytes = bytes_per_active_host * n;

  std::printf("\nestimated count (FM, c=16): %.0f  (disc holds <= %.0f "
              "hosts)\n", result.value, disc_hosts);
  std::printf("declared at t=%.0f after %" PRIu64 " radio transmissions "
              "(%.2f MB)\n", result.cost.declared_at, result.cost.messages,
              static_cast<double>(result.cost.bytes) / 1e6);
  std::printf("resident protocol state: %.2f MB paged vs ~%.0f MB for the "
              "eager per-host layout\n",
              static_cast<double>(result.resident_state_bytes) / 1e6,
              eager_bytes / 1e6);

  // --- the paging contract, checked -------------------------------------
  // Resident state must be bounded by the touched disc (pages round to
  // 256-host granularity and every grid row of the disc lands on its own
  // page neighborhood, so allow 4x slack) and must be a small fraction of
  // the eager layout.
  const double allowed = 4.0 * bytes_per_active_host * disc_hosts;
  if (result.resident_state_bytes == 0 ||
      static_cast<double>(result.resident_state_bytes) > allowed ||
      static_cast<double>(result.resident_state_bytes) > 0.10 * eager_bytes) {
    std::fprintf(stderr,
                 "PAGING VIOLATION: resident %zu bytes, allowed %.0f "
                 "(yardstick %.1f B/host, eager %.0f)\n",
                 result.resident_state_bytes, allowed, bytes_per_active_host,
                 eager_bytes);
    return 1;
  }
  std::printf("paging check passed: resident state tracks the %.1f%% disc, "
              "not the %u-host network\n", 100.0 * disc_hosts / n, n);
  return 0;
}
