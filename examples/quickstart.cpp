// Quickstart: run one Single-Site-Valid aggregate query over a dynamic
// network in ~30 lines of API.
//
//   $ ./quickstart
//
// Builds a 5,000-host P2P-style overlay, issues a count query with the
// WILDFIRE protocol while 500 hosts churn away mid-query, and prints the
// answer next to the ORACLE validity interval and the run's costs.

#include <cstdio>

#include "core/engine.h"
#include "topology/generators.h"

int main() {
  using namespace validity;

  // 1. A network: 5,000 hosts, Gnutella-like heavy-tailed overlay.
  auto graph = topology::MakeGnutellaLike(5000, /*seed=*/7);
  if (!graph.ok()) {
    std::fprintf(stderr, "topology: %s\n", graph.status().ToString().c_str());
    return 1;
  }

  // 2. A workload: each host holds a Zipf [10, 500] attribute value.
  core::QueryEngine engine(&*graph, core::MakeZipfValues(5000, /*seed=*/8));

  // 3. A query: approximate count (Flajolet-Martin, c = 16 repetitions).
  core::QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.fm_vectors = 16;

  // 4. Dynamism: 500 hosts (10%) leave at a uniform rate during the query.
  core::RunConfig config;
  config.protocol = protocols::ProtocolKind::kWildfire;
  config.churn_removals = 500;
  config.churn_seed = 9;

  auto result = engine.Run(spec, config, /*hq=*/0);
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("count estimate        : %.0f\n", result->value);
  std::printf("oracle validity bounds: [%.0f, %.0f]  (|HC|=%llu, |HU|=%llu)\n",
              result->validity.q_low, result->validity.q_high,
              static_cast<unsigned long long>(result->validity.hc_size),
              static_cast<unsigned long long>(result->validity.hu_size));
  std::printf("single-site valid     : %s (within sketch slack: %s)\n",
              result->validity.within ? "yes" : "no",
              result->validity.within_slack ? "yes" : "no");
  std::printf("communication cost    : %llu messages (%llu bytes)\n",
              static_cast<unsigned long long>(result->cost.messages),
              static_cast<unsigned long long>(result->cost.bytes));
  std::printf("computation cost      : %llu messages at the busiest host\n",
              static_cast<unsigned long long>(result->cost.max_processed));
  std::printf("time cost             : declared at t = %.0f (D-hat = %.0f)\n",
              result->cost.declared_at, result->d_hat_used);
  return 0;
}
