// Sensor-network scenario: a 60 x 60 grid of battery-powered motes with a
// wireless broadcast radio, queried for min / max / sum temperature while
// motes die mid-query.
//
// Shows: the wireless medium accounting (one transmission reaches all 8
// neighbors), the price of validity per aggregate (min is nearly free —
// early aggregation suppresses hopeless values; count/sum pay the sketch
// flood), and the best-effort tree's failure mode on deep grid trees.

#include <cstdio>

#include "core/engine.h"
#include "topology/generators.h"

namespace {

struct RunRow {
  const char* label;
  double value;
  double low;
  double high;
  unsigned long long messages;
};

}  // namespace

int main() {
  using namespace validity;

  constexpr uint32_t kSide = 60;
  auto grid = topology::MakeGrid(kSide);
  if (!grid.ok()) return 1;
  const uint32_t n = grid->num_hosts();

  // "Temperature" readings: Zipf-distributed in [10, 500] (tenths of a
  // degree above a baseline, say).
  core::QueryEngine engine(&*grid, core::MakeZipfValues(n, /*seed=*/21));

  std::printf("sensor field: %u x %u = %u motes, wireless medium\n", kSide,
              kSide, n);
  std::printf("mid-query failures: %u motes\n\n", n / 10);

  auto run = [&](AggregateKind agg, protocols::ProtocolKind proto) {
    core::QuerySpec spec;
    spec.aggregate = agg;
    spec.fm_vectors = 16;
    core::RunConfig config;
    config.protocol = proto;
    config.sim_options.medium = sim::MediumKind::kWireless;
    config.churn_removals = n / 10;
    config.churn_seed = 22;
    auto result = engine.Run(spec, config, /*hq=*/0);
    VALIDITY_CHECK(result.ok(), "%s", result.status().ToString().c_str());
    return *std::move(result);
  };

  std::printf("%-28s %10s %22s %12s\n", "query", "answer", "oracle bounds",
              "radio msgs");
  for (AggregateKind agg : {AggregateKind::kMin, AggregateKind::kMax,
                            AggregateKind::kSum, AggregateKind::kCount}) {
    auto wf = run(agg, protocols::ProtocolKind::kWildfire);
    std::printf("wildfire %-19s %10.0f [%8.0f, %8.0f] %12llu\n",
                AggregateKindName(agg), wf.value, wf.validity.q_low,
                wf.validity.q_high,
                static_cast<unsigned long long>(wf.cost.messages));
  }
  auto tree = run(AggregateKind::kCount, protocols::ProtocolKind::kSpanningTree);
  std::printf("spanning-tree count          %10.0f [%8.0f, %8.0f] %12llu\n",
              tree.value, tree.validity.q_low, tree.validity.q_high,
              static_cast<unsigned long long>(tree.cost.messages));
  std::printf(
      "\nnote how the best-effort tree undercounts (%0.0f << %0.0f = |HC|)\n"
      "while wildfire min/max answers sit exactly inside their validity\n"
      "interval and count/sum land within Flajolet-Martin sketch error of\n"
      "it; and how wildfire-min costs barely more radio traffic than the\n"
      "tree (early aggregation, paper Fig. 11).\n",
      tree.value, tree.validity.q_low);
  return 0;
}
