// Churn study: how does each protocol's answer degrade as the departure
// rate climbs from 0% to 40%? A miniature, self-contained version of the
// paper's Fig. 7 experiment — good starting point for custom studies.

#include <cstdio>

#include "core/experiment.h"
#include "topology/generators.h"

int main() {
  using namespace validity;

  constexpr uint32_t kHosts = 3000;
  auto overlay = topology::MakeGnutellaLike(kHosts, /*seed=*/51);
  if (!overlay.ok()) return 1;

  core::QueryEngine engine(&*overlay, core::MakeZipfValues(kHosts, 52));
  core::QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.fm_vectors = 16;

  core::ChurnSweepOptions sweep;
  sweep.trials = 5;
  // threads defaults to 0 = all hardware threads; the (R, trial, protocol)
  // grid runs in parallel and the printed cells are bit-identical to a
  // serial sweep (set sweep.threads = 1 to check).
  std::vector<uint32_t> removals{0, 150, 300, 600, 1200};
  auto cells = core::RunChurnSweep(engine, spec, /*hq=*/0,
                                   core::StandardLineup(), removals, sweep);

  std::printf("count query on a %u-host overlay, 5 trials per level\n\n",
              kHosts);
  std::printf("%6s %-14s %10s %8s %22s %7s\n", "R", "protocol", "answer",
              "ci95", "oracle bounds", "valid%");
  for (const auto& cell : cells) {
    std::printf("%6u %-14s %10.0f %8.0f [%9.0f, %9.0f] %6.0f%%\n",
                cell.removals, cell.protocol.c_str(), cell.value.mean,
                cell.value.ci95, cell.oracle_low.mean, cell.oracle_high.mean,
                100 * cell.within_slack_fraction);
  }
  std::printf(
      "\nreading guide: as R grows, spanning-tree (and then dag) drop below\n"
      "the oracle lower bound — invalid answers with no warning attached.\n"
      "wildfire keeps every trial inside the interval: that is Single-Site\n"
      "Validity, and the extra messages it sends are its price.\n");
  return 0;
}
