// SimulatorSession correctness: the session/determinism contract
// (docs/SESSIONS.md).
//
//  (a) Fresh-construction QueryEngine::Run and session-reusing Run produce
//      field-for-field identical QueryResults across a 34-case
//      (spec, config, hq) fingerprint matrix covering every protocol, both
//      combiner families, churn, option ablations, and both media — with
//      every session case running on a simulator warmed (and dirtied) by
//      all previous cases.
//  (b) Concurrent queries sharing one session each match their solo runs
//      bit-for-bit, including their per-lane cost metrics.
//  (c) ResidentStateBytes returns to a touched-proportional baseline after
//      a session reset (epoch reuse does not accumulate resident state).
//  Plus simulator-level reset coverage: failures, runtime joins, and
//  pending events are all rewound in O(touched).

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <tuple>
#include <vector>

#include "core/engine.h"
#include "core/query_service.h"
#include "fingerprint_matrix.h"
#include "sim/session.h"
#include "topology/generators.h"

namespace validity::core {
namespace {

using protocols::ProtocolKind;

class SessionTest : public ::testing::Test {
 protected:
  SessionTest()
      : graph_(*topology::MakeGnutellaLike(500, 91)),
        engine_(&graph_, MakeZipfValues(500, 91)) {}

  topology::Graph graph_;
  QueryEngine engine_;
};

TEST_F(SessionTest, FreshAndReusedRunsAreBitIdenticalAcrossTheMatrix) {
  std::vector<Case> cases = FingerprintMatrix();
  ASSERT_EQ(cases.size(), 34u);
  // One session per structural sim-option set (here: per medium), so every
  // case after the first runs on a simulator the previous cases dirtied.
  // The service column borrows a second session the same way: each case's
  // QueryService runs on a timeline warmed (and dirtied) by all previous
  // service cases.
  std::map<int, std::unique_ptr<sim::SimulatorSession>> sessions;
  std::map<int, std::unique_ptr<sim::SimulatorSession>> service_sessions;
  for (const Case& c : cases) {
    auto fresh = engine_.Run(c.spec, c.config, c.hq);
    ASSERT_TRUE(fresh.ok()) << c.label;
    const int medium = static_cast<int>(c.config.sim_options.medium);
    auto& session = sessions[medium];
    if (session == nullptr) {
      session = std::make_unique<sim::SimulatorSession>(&graph_,
                                                        c.config.sim_options);
    }
    auto reused = engine_.Run(session.get(), c.spec, c.config, c.hq);
    ASSERT_TRUE(reused.ok()) << c.label;
    ExpectIdentical(*fresh, *reused, c.label);

    // Fourth column: the open query-arrival service. Submitted at t=0 on a
    // service timeline configured from the query's own config.
    auto& service_session = service_sessions[medium];
    if (service_session == nullptr) {
      service_session = std::make_unique<sim::SimulatorSession>(
          &graph_, c.config.sim_options);
    }
    QueryService service(&engine_, service_session.get(),
                         ServiceOptionsFor(c.spec, c.config, c.hq));
    auto id = service.Submit(0.0, c.spec, c.config, c.hq);
    ASSERT_TRUE(id.ok()) << c.label << ": " << id.status().message();
    service.Drain();
    QueryService::Completion done;
    ASSERT_TRUE(service.Poll(&done)) << c.label;
    ExpectIdentical(*fresh, done.result, c.label);
  }
  // The point-to-point sessions served the bulk of the matrix on one
  // simulator build each.
  EXPECT_GT(sessions[0]->epoch(), 25u);
  EXPECT_GT(service_sessions[0]->epoch(), 25u);
}

TEST_F(SessionTest, ConcurrentQueriesMatchTheirSoloRuns) {
  // Two protocols, two aggregates, two querying hosts — one shared,
  // failure-free timeline.
  std::vector<QueryEngine::ConcurrentQuery> queries(3);
  queries[0].spec.aggregate = AggregateKind::kCount;
  queries[0].config.protocol = ProtocolKind::kWildfire;
  queries[0].hq = 0;
  queries[1].spec.aggregate = AggregateKind::kSum;
  queries[1].spec.exact_combiners = true;
  queries[1].config.protocol = ProtocolKind::kSpanningTree;
  queries[1].hq = 13;
  queries[2].spec.aggregate = AggregateKind::kMax;
  queries[2].config.protocol = ProtocolKind::kWildfire;
  queries[2].config.sketch_seed = 5;
  queries[2].hq = 42;

  sim::SimulatorSession session(&graph_, sim::SimOptions{});
  auto concurrent = engine_.RunConcurrent(&session, queries);
  ASSERT_TRUE(concurrent.ok());
  ASSERT_EQ(concurrent->size(), 3u);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto solo = engine_.Run(queries[i].spec, queries[i].config, queries[i].hq);
    ASSERT_TRUE(solo.ok());
    ExpectIdentical(*solo, (*concurrent)[i], "concurrent-vs-solo");
  }
}

TEST_F(SessionTest, ChurnedConcurrentQueriesMatchTheirSoloRuns) {
  // Same hq and D-hat (required: the churn window and the protected host
  // derive from them), different protocols and sketch seeds.
  std::vector<QueryEngine::ConcurrentQuery> queries(2);
  for (auto& q : queries) {
    q.spec.aggregate = AggregateKind::kCount;
    q.config.churn_removals = 120;
    q.config.churn_seed = 9;
    q.hq = 0;
  }
  queries[0].config.protocol = ProtocolKind::kWildfire;
  queries[0].config.sketch_seed = 21;
  queries[1].config.protocol = ProtocolKind::kDag;
  queries[1].config.sketch_seed = 22;

  sim::SimulatorSession session(&graph_, sim::SimOptions{});
  auto concurrent = engine_.RunConcurrent(&session, queries);
  ASSERT_TRUE(concurrent.ok());
  for (size_t i = 0; i < queries.size(); ++i) {
    auto solo = engine_.Run(queries[i].spec, queries[i].config, queries[i].hq);
    ASSERT_TRUE(solo.ok());
    ExpectIdentical(*solo, (*concurrent)[i], "churned-concurrent-vs-solo");
  }
}

TEST_F(SessionTest, StaggeredConcurrentQueriesMatchTheirSoloRuns) {
  // Queries issued at distinct mid-timeline times on one session — the
  // continuous-query shape. Each staggered query must be bit-identical to
  // running it alone at the same start time on the same session, and a
  // start_at of 0 must remain bit-identical to the plain (t=0) solo path.
  std::vector<QueryEngine::ConcurrentQuery> queries(3);
  queries[0].spec.aggregate = AggregateKind::kCount;
  queries[0].config.protocol = ProtocolKind::kWildfire;
  queries[0].hq = 0;
  queries[0].start_at = 0.0;
  queries[1].spec.aggregate = AggregateKind::kSum;
  queries[1].spec.exact_combiners = true;
  queries[1].config.protocol = ProtocolKind::kSpanningTree;
  queries[1].hq = 13;
  queries[1].start_at = 5.0;
  queries[2].spec.aggregate = AggregateKind::kMax;
  queries[2].config.protocol = ProtocolKind::kWildfire;
  queries[2].config.sketch_seed = 5;
  queries[2].hq = 42;
  queries[2].start_at = 11.5;  // fractional: staggered off the tick comb

  sim::SimulatorSession session(&graph_, sim::SimOptions{});
  auto staggered = engine_.RunConcurrent(&session, queries);
  ASSERT_TRUE(staggered.ok());
  ASSERT_EQ(staggered->size(), 3u);

  // Solo reference: each query alone, at its own start time, on a session
  // of its own.
  for (size_t i = 0; i < queries.size(); ++i) {
    sim::SimulatorSession solo_session(&graph_, sim::SimOptions{});
    auto solo = engine_.RunConcurrent(
        &solo_session, {queries[i]});
    ASSERT_TRUE(solo.ok());
    ASSERT_EQ(solo->size(), 1u);
    ExpectIdentical((*solo)[0], (*staggered)[i], "staggered-vs-solo");
  }

  // The t=0 lane also matches the classic single-query entry point.
  auto plain = engine_.Run(queries[0].spec, queries[0].config, queries[0].hq);
  ASSERT_TRUE(plain.ok());
  ExpectIdentical(*plain, (*staggered)[0], "staggered-t0-vs-plain");

  // A staggered query's timing anchors at its start: the mid-timeline sum
  // query declared after (not at) its issue instant.
  EXPECT_GT((*staggered)[1].cost.declared_at, queries[1].start_at);

  // Invalid start times are rejected.
  queries[2].start_at = -1.0;
  EXPECT_EQ(engine_.RunConcurrent(&session, queries).status().code(),
            StatusCode::kInvalidArgument);
  queries[2].start_at = std::numeric_limits<double>::infinity();
  EXPECT_EQ(engine_.RunConcurrent(&session, queries).status().code(),
            StatusCode::kInvalidArgument);
  queries[2].start_at = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(engine_.RunConcurrent(&session, queries).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SessionTest, StaggeredChurnedQueryObservesItsOwnValidityWindow) {
  // Churn removes hosts inside the first query's window; a second query
  // staggered past the churn tail must still match its solo run — its
  // oracle interval anchors at its own start, when the failures have
  // already happened.
  std::vector<QueryEngine::ConcurrentQuery> queries(2);
  for (auto& q : queries) {
    q.spec.aggregate = AggregateKind::kCount;
    q.config.churn_removals = 80;
    q.config.churn_seed = 9;
    q.hq = 0;
  }
  queries[0].config.protocol = ProtocolKind::kWildfire;
  queries[0].config.sketch_seed = 21;
  queries[1].config.protocol = ProtocolKind::kWildfire;
  queries[1].config.sketch_seed = 22;
  queries[1].start_at = 4.0;

  sim::SimulatorSession session(&graph_, sim::SimOptions{});
  auto staggered = engine_.RunConcurrent(&session, queries);
  ASSERT_TRUE(staggered.ok());
  sim::SimulatorSession solo_session(&graph_, sim::SimOptions{});
  auto solo = engine_.RunConcurrent(&solo_session, {queries[1]});
  ASSERT_TRUE(solo.ok());
  ExpectIdentical((*solo)[0], (*staggered)[1], "staggered-churned-vs-solo");
  // Hosts churned out before the late query started are outside its HU.
  EXPECT_LT((*staggered)[1].validity.hu_size,
            (*staggered)[0].validity.hu_size);
}

TEST_F(SessionTest, ConcurrentRequiresASharedTimeline) {
  std::vector<QueryEngine::ConcurrentQuery> queries(2);
  queries[0].config.churn_removals = 50;
  queries[1].config.churn_removals = 60;  // different schedule: rejected
  sim::SimulatorSession session(&graph_, sim::SimOptions{});
  EXPECT_EQ(engine_.RunConcurrent(&session, queries).status().code(),
            StatusCode::kInvalidArgument);
  // Different hq under churn: the protected host would differ.
  queries[1].config.churn_removals = 50;
  queries[1].hq = 3;
  EXPECT_EQ(engine_.RunConcurrent(&session, queries).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(SessionTest, SessionRejectsMismatchedGraphAndOptions) {
  topology::Graph other = *topology::MakeGnutellaLike(200, 17);
  sim::SimulatorSession wrong_graph(&other, sim::SimOptions{});
  EXPECT_EQ(engine_.Run(&wrong_graph, QuerySpec{}, RunConfig{}, 0)
                .status()
                .code(),
            StatusCode::kInvalidArgument);

  sim::SimulatorSession session(&graph_, sim::SimOptions{});
  RunConfig wireless;
  wireless.sim_options.medium = sim::MediumKind::kWireless;
  EXPECT_EQ(engine_.Run(&session, QuerySpec{}, wireless, 0).status().code(),
            StatusCode::kInvalidArgument);
  // Invalid queries are rejected without corrupting the session.
  EXPECT_EQ(engine_.Run(&session, QuerySpec{}, RunConfig{}, 5000)
                .status()
                .code(),
            StatusCode::kOutOfRange);
  auto ok = engine_.Run(&session, QuerySpec{}, RunConfig{}, 0);
  EXPECT_TRUE(ok.ok());
}

TEST(SessionResidencyTest, ResidentStateReturnsToBaselineAfterReset) {
  // A grid, where a small disc occupies few 256-id pages (row-major ids):
  // page-granular residency needs id locality the Gnutella graph's random
  // ids cannot give.
  topology::Graph grid = *topology::MakeGrid(100);  // 10^4 hosts
  QueryEngine engine(&grid, std::vector<double>(grid.num_hosts(), 1.0));
  const HostId hq = 50 * 100 + 50;

  QuerySpec wide;  // default D-hat: the flood covers the whole grid
  QuerySpec narrow;
  narrow.d_hat = 2.0;  // the flood only reaches hq's neighborhood
  sim::SimulatorSession session(&grid, sim::SimOptions{});

  auto first = engine.Run(&session, wide, RunConfig{}, hq);
  ASSERT_TRUE(first.ok());
  auto warm_narrow = engine.Run(&session, narrow, RunConfig{}, hq);
  ASSERT_TRUE(warm_narrow.ok());
  auto fresh_narrow = engine.Run(narrow, RunConfig{}, hq);
  ASSERT_TRUE(fresh_narrow.ok());

  // The narrow query's resident state must reflect what *it* touched, not
  // what the wide query before it touched — and must equal the fresh run's.
  EXPECT_EQ(warm_narrow->resident_state_bytes,
            fresh_narrow->resident_state_bytes);
  EXPECT_LT(warm_narrow->resident_state_bytes,
            first->resident_state_bytes / 4);
}

TEST(SimulatorResetTest, RewindsFailuresJoinsAndPendingEvents) {
  topology::Graph g = *topology::MakeRandom(300, 4.0, 5);
  sim::Simulator sim(g, sim::SimOptions{});

  // A well-connected host to exercise fan-out and the reverse-slot index.
  HostId hub = 0;
  for (HostId h = 0; h < 300; ++h) {
    if (g.Neighbors(h).size() > g.Neighbors(hub).size()) hub = h;
  }
  ASSERT_GE(g.Neighbors(hub).size(), 2u);
  HostId hub_nb = g.Neighbors(hub)[1];

  // Dirty everything resettable: failures, a runtime join, pending events.
  sim.FailHost(3);
  sim.FailHost(250);
  auto joined = sim.AddHost({hub});
  ASSERT_TRUE(joined.ok());
  EXPECT_EQ(sim.num_hosts(), 301u);
  uint32_t slot_before = sim.NeighborSlotOf(hub, hub_nb);
  sim.ScheduleFailure(5.0, 7);
  sim::Message msg;
  msg.kind = 1;
  sim.SendToNeighbors(hub, msg);
  sim.RunUntil(0.5);
  EXPECT_GT(sim.metrics().messages_sent(), 0u);

  sim.Reset();

  EXPECT_EQ(sim.num_hosts(), 300u);
  EXPECT_EQ(sim.alive_count(), 300u);
  EXPECT_TRUE(sim.IsAlive(3));
  EXPECT_TRUE(sim.IsAlive(250));
  EXPECT_TRUE(sim.IsAlive(7));
  EXPECT_EQ(sim.Now(), 0.0);
  EXPECT_EQ(sim.events_executed(), 0u);
  EXPECT_EQ(sim.metrics().messages_sent(), 0u);
  EXPECT_EQ(sim.metrics().MaxProcessed(), 0u);
  // Adjacency is back to the base graph: the joined host's reverse edges
  // are gone and the reverse-slot lookup still answers correctly.
  EXPECT_EQ(sim.NeighborsOf(hub).size(), g.Neighbors(hub).size());
  EXPECT_EQ(sim.NeighborSlotOf(hub, hub_nb), slot_before);
  // The pending failure at t=5 was discarded with the queue.
  sim.RunUntil(10.0);
  EXPECT_TRUE(sim.IsAlive(7));

  // The reset simulator behaves exactly like a fresh one.
  sim::Simulator fresh(g, sim::SimOptions{});
  sim::Message again;
  again.kind = 1;
  fresh.SendToNeighbors(hub, again);
  fresh.Run();
  sim::Message replay;
  replay.kind = 1;
  sim.SendToNeighbors(hub, replay);
  sim.Run();
  EXPECT_EQ(sim.metrics().messages_sent(), fresh.metrics().messages_sent());
  EXPECT_EQ(sim.metrics().messages_delivered(),
            fresh.metrics().messages_delivered());
}

}  // namespace
}  // namespace validity::core
