// PagedStates unit tests: lazy page materialization, value-initialized
// records, reference stability, Reset semantics, and the
// resident-proportional-to-touched property the million-host scenario
// relies on.

#include <gtest/gtest.h>

#include <vector>

#include "common/paged_state.h"

namespace validity {
namespace {

struct Record {
  int value = 7;  // non-zero default: proves value-initialization runs
  std::vector<int> payload;
};

TEST(PagedStatesTest, FindReturnsNullUntilTouched) {
  PagedStates<Record> states;
  states.Reset(100000);
  EXPECT_EQ(states.pages_touched(), 0u);
  EXPECT_EQ(states.Find(0), nullptr);
  EXPECT_EQ(states.Find(99999), nullptr);

  Record& r = states.Touch(4321);
  EXPECT_EQ(r.value, 7);  // freshly value-initialized
  r.value = 11;
  EXPECT_EQ(states.pages_touched(), 1u);
  ASSERT_NE(states.Find(4321), nullptr);
  EXPECT_EQ(states.Find(4321)->value, 11);
  // Same page, different record: default-initialized, not garbage.
  HostId sibling = (4321 & ~(PagedStates<Record>::kPageSize - 1));
  EXPECT_EQ(states.Touch(sibling).value, 7);
}

TEST(PagedStatesTest, ResidencyTracksTouchedHostsNotNetworkSize) {
  PagedStates<Record> states;
  states.Reset(1 << 20);  // a million hosts
  size_t empty_bytes = states.ResidentBytes();
  // Touch 1% of the hosts, clustered (the broadcast-disc pattern).
  uint32_t touched = (1 << 20) / 100;
  for (HostId h = 0; h < touched; ++h) states.Touch(h);
  size_t disc_bytes = states.ResidentBytes();
  size_t eager_bytes = sizeof(Record) << 20;
  EXPECT_LT(disc_bytes - empty_bytes, eager_bytes / 50)
      << "resident state must scale with touched hosts, not num_hosts";
  uint32_t page_size = PagedStates<Record>::kPageSize;
  EXPECT_EQ(states.pages_touched(), (touched + page_size - 1) / page_size);
}

TEST(PagedStatesTest, ReferencesSurviveLaterTouches) {
  PagedStates<Record> states;
  states.Reset(1 << 18);
  Record& early = states.Touch(5);
  early.value = 99;
  // Touch every page; the early reference must stay valid (page storage is
  // stable; only the page directory grows).
  for (HostId h = 0; h < (1 << 18); h += PagedStates<Record>::kPageSize) {
    states.Touch(h);
  }
  EXPECT_EQ(early.value, 99);
  EXPECT_EQ(states.Find(5), &early);
}

TEST(PagedStatesTest, ResetDropsStateAndTouchGrowsPastBound) {
  PagedStates<Record> states;
  states.Reset(1000);
  states.Touch(10).value = 55;
  states.Reset(1000);
  EXPECT_EQ(states.pages_touched(), 0u);
  EXPECT_EQ(states.Find(10), nullptr);
  EXPECT_EQ(states.Touch(10).value, 7);
  // Hosts joining past the Reset bound (runtime AddHost) grow the directory.
  states.Touch(5000).value = 1;
  EXPECT_EQ(states.Find(5000)->value, 1);
}

}  // namespace
}  // namespace validity
