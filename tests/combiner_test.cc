// Tests for PartialAggregate: initialization, combine semantics (semilattice
// laws per kind), equality, estimation, and identity elements.

#include <gtest/gtest.h>

#include <limits>

#include "protocols/combiner.h"

namespace validity::protocols {
namespace {

sketch::FmParams Params() { return sketch::FmParams{8}; }

PartialAggregate Make(CombinerKind kind, HostId h, double value,
                      uint64_t seed = 1) {
  Rng rng(seed + h);
  return PartialAggregate::Initial(kind, h, value, Params(), &rng);
}

TEST(CombinerTest, CombinerForMapsAggregates) {
  EXPECT_EQ(CombinerFor(AggregateKind::kMin, false), CombinerKind::kMin);
  EXPECT_EQ(CombinerFor(AggregateKind::kMax, false), CombinerKind::kMax);
  EXPECT_EQ(CombinerFor(AggregateKind::kCount, false), CombinerKind::kFmCount);
  EXPECT_EQ(CombinerFor(AggregateKind::kSum, false), CombinerKind::kFmSum);
  EXPECT_EQ(CombinerFor(AggregateKind::kAverage, false),
            CombinerKind::kFmAverage);
  EXPECT_EQ(CombinerFor(AggregateKind::kCount, true),
            CombinerKind::kUnionCount);
  EXPECT_EQ(CombinerFor(AggregateKind::kSum, true), CombinerKind::kUnionSum);
  EXPECT_EQ(CombinerFor(AggregateKind::kAverage, true),
            CombinerKind::kUnionAverage);
}

TEST(CombinerTest, MinMaxCombine) {
  PartialAggregate lo = Make(CombinerKind::kMin, 0, 5);
  PartialAggregate hi = Make(CombinerKind::kMin, 1, 9);
  EXPECT_FALSE(lo.CombineFrom(hi)) << "9 does not lower a min of 5";
  EXPECT_TRUE(hi.CombineFrom(lo));
  EXPECT_DOUBLE_EQ(hi.Estimate(), 5);

  PartialAggregate mx = Make(CombinerKind::kMax, 0, 5);
  EXPECT_TRUE(mx.CombineFrom(Make(CombinerKind::kMax, 1, 9)));
  EXPECT_DOUBLE_EQ(mx.Estimate(), 9);
  EXPECT_FALSE(mx.CombineFrom(Make(CombinerKind::kMax, 2, 7)));
}

TEST(CombinerTest, UnionCountIsExactAndDuplicateInsensitive) {
  PartialAggregate a = Make(CombinerKind::kUnionCount, 0, 1);
  PartialAggregate b = Make(CombinerKind::kUnionCount, 1, 1);
  PartialAggregate c = Make(CombinerKind::kUnionCount, 2, 1);
  EXPECT_TRUE(a.CombineFrom(b));
  EXPECT_TRUE(a.CombineFrom(c));
  EXPECT_FALSE(a.CombineFrom(b)) << "duplicate merge must be a no-op";
  EXPECT_DOUBLE_EQ(a.Estimate(), 3);
}

TEST(CombinerTest, UnionSumAndAverageAreExact) {
  PartialAggregate sum = Make(CombinerKind::kUnionSum, 0, 10);
  sum.CombineFrom(Make(CombinerKind::kUnionSum, 1, 20));
  sum.CombineFrom(Make(CombinerKind::kUnionSum, 2, 30));
  EXPECT_DOUBLE_EQ(sum.Estimate(), 60);

  PartialAggregate avg = Make(CombinerKind::kUnionAverage, 0, 10);
  avg.CombineFrom(Make(CombinerKind::kUnionAverage, 1, 20));
  EXPECT_DOUBLE_EQ(avg.Estimate(), 15);
}

TEST(CombinerTest, FmCountEstimatesSetSize) {
  // 256 hosts' one-element sketches OR-ed together.
  PartialAggregate acc = Make(CombinerKind::kFmCount, 0, 1);
  for (HostId h = 1; h < 256; ++h) {
    acc.CombineFrom(Make(CombinerKind::kFmCount, h, 1));
  }
  double est = acc.Estimate();
  EXPECT_GT(est, 256 / 3.0);
  EXPECT_LT(est, 256 * 3.0);
}

TEST(CombinerTest, FmAverageCombinesBothSketches) {
  PartialAggregate acc = Make(CombinerKind::kFmAverage, 0, 100);
  for (HostId h = 1; h < 128; ++h) {
    acc.CombineFrom(Make(CombinerKind::kFmAverage, h, 100));
  }
  // All values 100 => average estimate should be within sketch error of 100.
  double est = acc.Estimate();
  EXPECT_GT(est, 100 / 4.0);
  EXPECT_LT(est, 100 * 4.0);
}

TEST(CombinerTest, SameAsIsStructural) {
  PartialAggregate a = Make(CombinerKind::kUnionSum, 0, 5);
  PartialAggregate b = Make(CombinerKind::kUnionSum, 0, 5);
  EXPECT_TRUE(a.SameAs(b));
  b.CombineFrom(Make(CombinerKind::kUnionSum, 1, 6));
  EXPECT_FALSE(a.SameAs(b));
  a.CombineFrom(Make(CombinerKind::kUnionSum, 1, 6));
  EXPECT_TRUE(a.SameAs(b));
}

TEST(CombinerTest, CombineCompareMatchesCombineFromPlusSameAs) {
  // The fused path WILDFIRE uses must be indistinguishable from the
  // two-pass reference across every combiner kind and value relation.
  sketch::FmParams params{8};
  std::vector<CombinerKind> kinds{
      CombinerKind::kMin,        CombinerKind::kMax,
      CombinerKind::kFmCount,    CombinerKind::kFmSum,
      CombinerKind::kFmAverage,  CombinerKind::kUnionCount,
      CombinerKind::kUnionSum,   CombinerKind::kUnionAverage};
  for (CombinerKind kind : kinds) {
    for (int trial = 0; trial < 60; ++trial) {
      // Host values are a function of host id, as in a real query (the
      // combine invariant: duplicate contributions are identical).
      HostId ha = trial % 5;
      HostId hb = trial % 4 == 0 ? ha : 100 + trial;
      Rng ra(1000 + ha), rb(1000 + hb);
      PartialAggregate a =
          PartialAggregate::Initial(kind, ha, 10 + ha % 7, params, &ra);
      PartialAggregate b =
          PartialAggregate::Initial(kind, hb, 10 + hb % 7, params, &rb);
      PartialAggregate fused = a;
      PartialAggregate reference = a;
      bool ref_changed = reference.CombineFrom(b);
      auto outcome = fused.CombineCompare(b);
      EXPECT_EQ(outcome.changed, ref_changed)
          << CombinerKindName(kind) << " trial " << trial;
      EXPECT_TRUE(fused.SameAs(reference))
          << CombinerKindName(kind) << " trial " << trial;
      EXPECT_EQ(outcome.same_as_other, reference.SameAs(b))
          << CombinerKindName(kind) << " trial " << trial;
    }
  }
}

TEST(CombinerTest, FromScalarMatchesInitial) {
  sketch::FmParams params;
  Rng rng(3);
  PartialAggregate from_init =
      PartialAggregate::Initial(CombinerKind::kMax, 0, 41.5, params, &rng);
  PartialAggregate from_scalar =
      PartialAggregate::FromScalar(CombinerKind::kMax, 41.5);
  EXPECT_TRUE(from_scalar.SameAs(from_init));
  EXPECT_DOUBLE_EQ(from_scalar.scalar_value(), 41.5);
  EXPECT_DOUBLE_EQ(from_scalar.Estimate(), 41.5);
}

TEST(CombinerTest, IdentityIsNeutral) {
  for (CombinerKind kind :
       {CombinerKind::kMin, CombinerKind::kMax, CombinerKind::kFmCount,
        CombinerKind::kFmSum, CombinerKind::kFmAverage,
        CombinerKind::kUnionCount, CombinerKind::kUnionSum,
        CombinerKind::kUnionAverage}) {
    PartialAggregate value = Make(kind, 3, 42);
    PartialAggregate combined = value;
    EXPECT_FALSE(
        combined.CombineFrom(PartialAggregate::Identity(kind, Params())))
        << CombinerKindName(kind);
    EXPECT_TRUE(combined.SameAs(value)) << CombinerKindName(kind);

    PartialAggregate id = PartialAggregate::Identity(kind, Params());
    id.CombineFrom(value);
    EXPECT_DOUBLE_EQ(id.Estimate(), value.Estimate())
        << CombinerKindName(kind);
  }
}

TEST(CombinerTest, CombineIsIdempotentAndCommutativeAcrossKinds) {
  for (CombinerKind kind :
       {CombinerKind::kMin, CombinerKind::kMax, CombinerKind::kFmCount,
        CombinerKind::kFmSum, CombinerKind::kFmAverage,
        CombinerKind::kUnionCount, CombinerKind::kUnionSum}) {
    PartialAggregate a = Make(kind, 0, 17);
    PartialAggregate b = Make(kind, 1, 99);
    PartialAggregate ab = a;
    ab.CombineFrom(b);
    PartialAggregate ba = b;
    ba.CombineFrom(a);
    EXPECT_TRUE(ab.SameAs(ba)) << CombinerKindName(kind);
    PartialAggregate twice = ab;
    EXPECT_FALSE(twice.CombineFrom(ab)) << CombinerKindName(kind);
    EXPECT_FALSE(twice.CombineFrom(a)) << CombinerKindName(kind);
    EXPECT_FALSE(twice.CombineFrom(b)) << CombinerKindName(kind);
  }
}

TEST(CombinerTest, SizeBytesScalesWithContent) {
  EXPECT_EQ(Make(CombinerKind::kMin, 0, 1).SizeBytes(), sizeof(double));
  EXPECT_EQ(Make(CombinerKind::kFmCount, 0, 1).SizeBytes(),
            8 * sizeof(uint64_t));
  EXPECT_EQ(Make(CombinerKind::kFmAverage, 0, 1).SizeBytes(),
            2 * 8 * sizeof(uint64_t));
  PartialAggregate u = Make(CombinerKind::kUnionSum, 0, 1);
  size_t one = u.SizeBytes();
  u.CombineFrom(Make(CombinerKind::kUnionSum, 1, 2));
  EXPECT_EQ(u.SizeBytes(), 2 * one);
}

}  // namespace
}  // namespace validity::protocols
