// ALLREPORT / RANDOMIZEDREPORT tests: the Theorem 4.3 construction
// (direct delivery always satisfies SSV), reverse-path relaying, and the
// §4.3 sampling estimator.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "protocols/all_report.h"
#include "protocols/oracle.h"
#include "protocols/randomized_report.h"
#include "sim/churn.h"
#include "topology/generators.h"

namespace validity::protocols {
namespace {

QueryContext MakeContext(AggregateKind agg, const std::vector<double>* values,
                         double d_hat) {
  QueryContext ctx;
  ctx.aggregate = agg;
  ctx.values = values;
  ctx.d_hat = d_hat;
  return ctx;
}

TEST(AllReportTest, FailureFreeExactBothRoutings) {
  topology::Graph g = *topology::MakeRandom(300, 5.0, 51);
  std::vector<double> values = core::MakeZipfValues(300, 51);
  std::vector<HostId> all(300);
  for (HostId h = 0; h < 300; ++h) all[h] = h;
  for (ReportRouting routing :
       {ReportRouting::kDirect, ReportRouting::kReversePath}) {
    for (AggregateKind agg : {AggregateKind::kCount, AggregateKind::kSum,
                              AggregateKind::kMin, AggregateKind::kAverage}) {
      sim::Simulator sim(g, sim::SimOptions{});
      AllReportOptions opts;
      opts.routing = routing;
      AllReportProtocol proto(&sim, MakeContext(agg, &values, 10), opts);
      sim.AttachProgram(&proto);
      proto.Start(0);
      sim.Run();
      ASSERT_TRUE(proto.result().declared);
      EXPECT_DOUBLE_EQ(proto.result().value, ExactAggregate(agg, values, all))
          << AggregateKindName(agg) << " routing "
          << static_cast<int>(routing);
      EXPECT_EQ(proto.reports_collected(), 300u);
    }
  }
}

TEST(AllReportTest, DirectDeliverySatisfiesSsvUnderChurn) {
  // The Theorem 4.3 argument: every host in HC receives the flood along its
  // stable path and its direct report cannot be lost.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    topology::Graph g = *topology::MakeGnutellaLike(500, seed);
    std::vector<double> values = core::MakeZipfValues(500, seed);
    double d_hat = 14;
    sim::Simulator sim(g, sim::SimOptions{});
    Rng churn_rng(seed);
    sim::ScheduleChurn(
        &sim, sim::MakeUniformChurn(500, 0, 150, 0.0, 2 * d_hat, &churn_rng));
    AllReportProtocol proto(
        &sim, MakeContext(AggregateKind::kCount, &values, d_hat),
        AllReportOptions{ReportRouting::kDirect});
    sim.AttachProgram(&proto);
    proto.Start(0);
    sim.Run();
    OracleReport oracle =
        ComputeOracle(sim, 0, 0, 2 * d_hat, AggregateKind::kCount, values);
    ASSERT_TRUE(proto.result().declared);
    EXPECT_TRUE(oracle.Contains(proto.result().value))
        << "seed " << seed << " value " << proto.result().value << " in ["
        << oracle.q_low << "," << oracle.q_high << "]";
  }
}

TEST(AllReportTest, ReversePathCostsScaleWithDepth) {
  // On a chain, host at depth d pays d messages to relay its report:
  // total = sum d = n(n-1)/2, plus the n-1 broadcast forwards ... the
  // quadratic term is what makes Direct Delivery expensive (paper §4.4).
  constexpr uint32_t n = 20;
  topology::Graph g = *topology::MakeChain(n);
  std::vector<double> values(n, 1.0);
  sim::Simulator sim(g, sim::SimOptions{});
  AllReportProtocol proto(
      &sim, MakeContext(AggregateKind::kCount, &values, n + 1),
      AllReportOptions{ReportRouting::kReversePath});
  sim.AttachProgram(&proto);
  proto.Start(0);
  sim.Run();
  EXPECT_DOUBLE_EQ(proto.result().value, n);
  // Chain flood: end hosts send 1 forward, interior hosts 2 (every host
  // forwards to all neighbors) = 2n - 2 messages.
  uint64_t broadcast_msgs = 2 * n - 2;
  uint64_t report_msgs = n * (n - 1) / 2;  // host at depth d relays d hops
  EXPECT_EQ(sim.metrics().messages_sent(), broadcast_msgs + report_msgs);
}

TEST(AllReportTest, DirectCostsLinearInHosts) {
  constexpr uint32_t n = 20;
  topology::Graph g = *topology::MakeChain(n);
  std::vector<double> values(n, 1.0);
  sim::Simulator sim(g, sim::SimOptions{});
  AllReportProtocol proto(&sim,
                          MakeContext(AggregateKind::kCount, &values, n + 1),
                          AllReportOptions{ReportRouting::kDirect});
  sim.AttachProgram(&proto);
  proto.Start(0);
  sim.Run();
  uint64_t broadcast_msgs = 2 * n - 2;
  EXPECT_EQ(sim.metrics().messages_sent(), broadcast_msgs + (n - 1));
}

TEST(RandomizedReportTest, DerivesChernoffProbability) {
  topology::Graph g = *topology::MakeRandom(1000, 5.0, 53);
  std::vector<double> values(1000, 1.0);
  sim::Simulator sim(g, sim::SimOptions{});
  RandomizedReportOptions opts;
  opts.epsilon = 0.2;
  opts.zeta = 0.1;
  opts.n_estimate = 1000;
  RandomizedReportProtocol proto(
      &sim, MakeContext(AggregateKind::kCount, &values, 10), opts);
  double expected_p = 4.0 / (0.2 * 0.2 * 1000) * std::log(2.0 / 0.1);
  EXPECT_NEAR(proto.report_probability(), expected_p, 1e-12);
}

TEST(RandomizedReportTest, EstimatesCountWithinEpsilonBand) {
  // eps = 0.3, zeta = 0.05: p ~ 0.164 at n = 1000; the estimate must land
  // within the (loose) 2*eps band around n with overwhelming probability.
  topology::Graph g = *topology::MakeRandom(1000, 5.0, 54);
  std::vector<double> values(1000, 1.0);
  sim::Simulator sim(g, sim::SimOptions{});
  RandomizedReportOptions opts;
  opts.epsilon = 0.3;
  opts.zeta = 0.05;
  opts.n_estimate = 1000;
  opts.coin_seed = 4242;
  RandomizedReportProtocol proto(
      &sim, MakeContext(AggregateKind::kCount, &values, 10), opts);
  sim.AttachProgram(&proto);
  proto.Start(0);
  sim.Run();
  ASSERT_TRUE(proto.result().declared);
  EXPECT_NEAR(proto.result().value, 1000, 2 * 0.3 * 1000);
  // Sampling saves messages: ~p*n reports instead of n.
  EXPECT_LT(proto.reports_collected(), 400u);
}

TEST(RandomizedReportTest, SumEstimateScalesSampleSum) {
  topology::Graph g = *topology::MakeRandom(2000, 5.0, 55);
  std::vector<double> values = core::MakeZipfValues(2000, 55);
  double truth = 0;
  for (double v : values) truth += v;
  sim::Simulator sim(g, sim::SimOptions{});
  RandomizedReportOptions opts;
  opts.p_override = 0.25;
  RandomizedReportProtocol proto(
      &sim, MakeContext(AggregateKind::kSum, &values, 10), opts);
  sim.AttachProgram(&proto);
  proto.Start(0);
  sim.Run();
  ASSERT_TRUE(proto.result().declared);
  EXPECT_NEAR(proto.result().value / truth, 1.0, 0.35);
}

TEST(RandomizedReportTest, RejectsNonCountAggregates) {
  topology::Graph g = *topology::MakeChain(3);
  std::vector<double> values(3, 1.0);
  sim::Simulator sim(g, sim::SimOptions{});
  EXPECT_DEATH(
      {
        RandomizedReportProtocol proto(
            &sim, MakeContext(AggregateKind::kMin, &values, 4),
            RandomizedReportOptions{});
      },
      "count");
}

}  // namespace
}  // namespace validity::protocols
