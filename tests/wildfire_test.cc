// WILDFIRE protocol tests: the Example 5.1 walk-through, failure-free
// exactness, Single-Site Validity under churn (the Theorem 5.1 property,
// checked against the ORACLE across topologies/aggregates/seeds), the §5.3
// optimizations, and wireless-medium behaviour.

#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "core/engine.h"
#include "protocols/oracle.h"
#include "protocols/wildfire.h"
#include "sim/churn.h"
#include "sim/simulator.h"
#include "topology/algorithms.h"
#include "topology/generators.h"

namespace validity::protocols {
namespace {

/// The Fig. 5 network: w(5) - x(15), w - y(1), x - z(25), y - z.
topology::Graph Example51Graph() {
  topology::Graph g(4);
  EXPECT_TRUE(g.AddEdge(0, 1).ok());  // w - x
  EXPECT_TRUE(g.AddEdge(0, 2).ok());  // w - y
  EXPECT_TRUE(g.AddEdge(1, 3).ok());  // x - z
  EXPECT_TRUE(g.AddEdge(2, 3).ok());  // y - z
  return g;
}

QueryContext MakeContext(AggregateKind agg, CombinerKind combiner,
                         const std::vector<double>* values, double d_hat) {
  QueryContext ctx;
  ctx.aggregate = agg;
  ctx.combiner = combiner;
  ctx.values = values;
  ctx.d_hat = d_hat;
  ctx.fm.num_vectors = 16;
  ctx.sketch_seed = 99;
  return ctx;
}

TEST(WildfireTest, Example51MaxTrace) {
  topology::Graph g = Example51Graph();
  std::vector<double> values{5, 15, 1, 25};
  sim::Simulator sim(g, sim::SimOptions{});
  WildfireProtocol wf(
      &sim, MakeContext(AggregateKind::kMax, CombinerKind::kMax, &values, 3));
  sim.AttachProgram(&wf);
  wf.Start(0);
  sim.Run();

  ASSERT_TRUE(wf.result().declared);
  EXPECT_DOUBLE_EQ(wf.result().value, 25);
  // "at time T = 2 * D-hat = 6, w declares v = 25".
  EXPECT_DOUBLE_EQ(wf.result().declared_at, 6.0);
  // Activation levels: w=0; x,y=1; z=2.
  EXPECT_EQ(wf.ActivationLevel(0), 0);
  EXPECT_EQ(wf.ActivationLevel(1), 1);
  EXPECT_EQ(wf.ActivationLevel(2), 1);
  EXPECT_EQ(wf.ActivationLevel(3), 2);

  // Message timeline of Example 5.1: t=0: w->x, w->y. t=1: x->z, x->w,
  // y->z. t=2: z->x, z->y, w->y. t=3: x->w, y->w. t=4 on: silence.
  const auto& ticks = sim.metrics().SendsPerTick();
  ASSERT_GE(ticks.size(), 4u);
  EXPECT_EQ(ticks[0], 2u);
  EXPECT_EQ(ticks[1], 3u);
  EXPECT_EQ(ticks[2], 3u);
  EXPECT_EQ(ticks[3], 2u);
  for (size_t t = 4; t < ticks.size(); ++t) EXPECT_EQ(ticks[t], 0u);
  EXPECT_EQ(sim.metrics().messages_sent(), 10u);
}

TEST(WildfireTest, Example51SurvivesRelayFailure) {
  // "if either x or y had failed, w would still obtain z's value".
  for (HostId victim : {HostId{1}, HostId{2}}) {
    topology::Graph g = Example51Graph();
    std::vector<double> values{5, 15, 1, 25};
    sim::Simulator sim(g, sim::SimOptions{});
    WildfireProtocol wf(&sim, MakeContext(AggregateKind::kMax,
                                          CombinerKind::kMax, &values, 3));
    sim.AttachProgram(&wf);
    wf.Start(0);
    sim.ScheduleFailure(1.25, victim);  // right after Broadcast passes
    sim.Run();
    ASSERT_TRUE(wf.result().declared);
    EXPECT_DOUBLE_EQ(wf.result().value, 25) << "victim " << victim;
  }
}

TEST(WildfireTest, Example51BothRelaysFailing) {
  // "If both x and y had failed, w would output v = 5, acceptable as
  // HC = {w}".
  topology::Graph g = Example51Graph();
  std::vector<double> values{5, 15, 1, 25};
  sim::Simulator sim(g, sim::SimOptions{});
  WildfireProtocol wf(
      &sim, MakeContext(AggregateKind::kMax, CombinerKind::kMax, &values, 3));
  sim.AttachProgram(&wf);
  wf.Start(0);
  sim.ScheduleFailure(0.5, 1);
  sim.ScheduleFailure(0.5, 2);
  sim.Run();
  ASSERT_TRUE(wf.result().declared);
  EXPECT_DOUBLE_EQ(wf.result().value, 5);
  OracleReport oracle = ComputeOracle(sim, 0, 0, 6, AggregateKind::kMax,
                                      values);
  EXPECT_EQ(oracle.hc.size(), 1u);
  EXPECT_TRUE(oracle.Contains(wf.result().value));
}

TEST(WildfireTest, FailureFreeExactCountViaUnionCombiner) {
  for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    topology::Graph g = *topology::MakeRandom(300, 5.0, seed);
    std::vector<double> values(300, 1.0);
    sim::Simulator sim(g, sim::SimOptions{});
    WildfireProtocol wf(
        &sim, MakeContext(AggregateKind::kCount, CombinerKind::kUnionCount,
                          &values, 12));
    sim.AttachProgram(&wf);
    wf.Start(0);
    sim.Run();
    ASSERT_TRUE(wf.result().declared);
    EXPECT_DOUBLE_EQ(wf.result().value, 300) << "seed " << seed;
  }
}

TEST(WildfireTest, FailureFreeExactSumAndAvgViaUnionCombiner) {
  topology::Graph g = *topology::MakeGrid(12);
  std::vector<double> values = core::MakeZipfValues(g.num_hosts(), 5);
  double truth_sum = 0;
  for (double v : values) truth_sum += v;

  sim::Simulator sim(g, sim::SimOptions{});
  WildfireProtocol wf(
      &sim,
      MakeContext(AggregateKind::kSum, CombinerKind::kUnionSum, &values, 13));
  sim.AttachProgram(&wf);
  wf.Start(0);
  sim.Run();
  EXPECT_DOUBLE_EQ(wf.result().value, truth_sum);

  sim::Simulator sim2(g, sim::SimOptions{});
  WildfireProtocol wf2(
      &sim2, MakeContext(AggregateKind::kAverage, CombinerKind::kUnionAverage,
                         &values, 13));
  sim2.AttachProgram(&wf2);
  wf2.Start(0);
  sim2.Run();
  EXPECT_DOUBLE_EQ(wf2.result().value,
                   truth_sum / static_cast<double>(g.num_hosts()));
}

TEST(WildfireTest, MinEqualsGlobalMinFailureFree) {
  topology::Graph g = *topology::MakePowerLaw(500, 2.9, 7);
  std::vector<double> values = core::MakeZipfValues(500, 11);
  double truth = *std::min_element(values.begin(), values.end());
  sim::Simulator sim(g, sim::SimOptions{});
  WildfireProtocol wf(
      &sim, MakeContext(AggregateKind::kMin, CombinerKind::kMin, &values, 14));
  sim.AttachProgram(&wf);
  wf.Start(3);
  sim.Run();
  EXPECT_DOUBLE_EQ(wf.result().value, truth);
}

// ---- Theorem 5.1 property: Single-Site Validity under churn -------------
//
// Parameterized across (topology, aggregate, churn level, seed). Exact
// union combiners isolate the protocol property from sketch error: the
// declared value must lie inside the ORACLE interval in every run.

enum class Topo { kRandom, kPowerLaw, kGrid, kGnutellaLike };

class WildfireValidityTest
    : public ::testing::TestWithParam<std::tuple<Topo, AggregateKind, int>> {};

TEST_P(WildfireValidityTest, DeclaredValueWithinOracleBounds) {
  auto [topo, agg, removals] = GetParam();
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    topology::Graph g = [&] {
      switch (topo) {
        case Topo::kRandom:
          return *topology::MakeRandom(400, 5.0, seed);
        case Topo::kPowerLaw:
          return *topology::MakePowerLaw(400, 2.9, seed);
        case Topo::kGrid:
          return *topology::MakeGrid(20);
        case Topo::kGnutellaLike:
          return *topology::MakeGnutellaLike(400, seed);
      }
      return *topology::MakeRandom(400, 5.0, seed);
    }();
    std::vector<double> values = core::MakeZipfValues(g.num_hosts(), seed);
    CombinerKind combiner = CombinerFor(agg, /*exact=*/true);
    // D-hat must overestimate the *stable* diameter, which churn can
    // stretch well past the static one; 2*D + 4 is a comfortable margin.
    Rng diam_rng(7);
    double d_hat =
        2.0 * topology::EstimateDiameter(g, 3, &diam_rng) + 4.0;

    sim::SimOptions opts;
    sim::Simulator sim(g, opts);
    Rng churn_rng(seed * 1000 + removals);
    auto events =
        sim::MakeUniformChurn(g.num_hosts(), 0, removals, 0.0,
                              2.0 * d_hat, &churn_rng);
    sim::ScheduleChurn(&sim, events);

    WildfireProtocol wf(&sim, MakeContext(agg, combiner, &values, d_hat));
    sim.AttachProgram(&wf);
    wf.Start(0);
    sim.Run();

    ASSERT_TRUE(wf.result().declared);
    OracleReport oracle =
        ComputeOracle(sim, 0, 0.0, 2.0 * d_hat, agg, values);
    EXPECT_TRUE(oracle.Contains(wf.result().value))
        << "topo=" << static_cast<int>(topo) << " agg="
        << AggregateKindName(agg) << " removals=" << removals << " seed="
        << seed << " value=" << wf.result().value << " bounds=["
        << oracle.q_low << "," << oracle.q_high << "]";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WildfireValidityTest,
    ::testing::Combine(::testing::Values(Topo::kRandom, Topo::kPowerLaw,
                                         Topo::kGrid, Topo::kGnutellaLike),
                       ::testing::Values(AggregateKind::kMin,
                                         AggregateKind::kMax,
                                         AggregateKind::kCount,
                                         AggregateKind::kSum),
                       ::testing::Values(0, 40, 120)));

// ---- Optimizations -------------------------------------------------------

TEST(WildfireTest, OptimizationsPreserveTheAnswer) {
  topology::Graph g = *topology::MakeRandom(120, 5.0, 21);
  std::vector<double> values = core::MakeZipfValues(120, 21);
  double expected = -1;
  for (bool piggyback : {true, false}) {
    for (bool early : {true, false}) {
      for (bool coalesce : {true, false}) {
        sim::Simulator sim(g, sim::SimOptions{});
        WildfireOptions wopts;
        wopts.piggyback_broadcast = piggyback;
        wopts.early_termination = early;
        wopts.coalesce_floods = coalesce;
        WildfireProtocol wf(
            &sim, MakeContext(AggregateKind::kCount, CombinerKind::kUnionCount,
                              &values, 12),
            wopts);
        sim.AttachProgram(&wf);
        wf.Start(0);
        sim.Run();
        ASSERT_TRUE(wf.result().declared);
        if (expected < 0) expected = wf.result().value;
        EXPECT_DOUBLE_EQ(wf.result().value, expected)
            << "piggyback=" << piggyback << " early=" << early
            << " coalesce=" << coalesce;
      }
    }
  }
  EXPECT_DOUBLE_EQ(expected, 120);
}

TEST(WildfireTest, PiggybackSavesMessages) {
  topology::Graph g = *topology::MakeRandom(300, 5.0, 22);
  std::vector<double> values = core::MakeZipfValues(300, 22);
  uint64_t with = 0;
  uint64_t without = 0;
  for (bool piggyback : {true, false}) {
    sim::Simulator sim(g, sim::SimOptions{});
    WildfireOptions wopts;
    wopts.piggyback_broadcast = piggyback;
    WildfireProtocol wf(
        &sim, MakeContext(AggregateKind::kMax, CombinerKind::kMax, &values, 12),
        wopts);
    sim.AttachProgram(&wf);
    wf.Start(0);
    sim.Run();
    (piggyback ? with : without) = sim.metrics().messages_sent();
  }
  EXPECT_LT(with, without);
}

TEST(WildfireTest, WirelessGridCostsLessThanPointToPoint) {
  // On the sensor grid a transmission reaches all 8 neighbors at once
  // (paper §5.3: worst case drops from 2*Dh*|E| to 2*Dh*|H|).
  topology::Graph g = *topology::MakeGrid(15);
  std::vector<double> values = core::MakeZipfValues(g.num_hosts(), 3);
  uint64_t wireless_cost = 0;
  uint64_t p2p_cost = 0;
  for (auto medium :
       {sim::MediumKind::kWireless, sim::MediumKind::kPointToPoint}) {
    sim::SimOptions opts;
    opts.medium = medium;
    sim::Simulator sim(g, opts);
    WildfireProtocol wf(
        &sim, MakeContext(AggregateKind::kCount, CombinerKind::kUnionCount,
                          &values, 16));
    sim.AttachProgram(&wf);
    wf.Start(0);
    sim.Run();
    EXPECT_DOUBLE_EQ(wf.result().value, g.num_hosts());
    (medium == sim::MediumKind::kWireless ? wireless_cost : p2p_cost) =
        sim.metrics().messages_sent();
  }
  EXPECT_LT(wireless_cost, p2p_cost / 2);
}

// ---- Deadline boundary & duplicate-broadcast piggyback semantics --------
//
// These pin down two behaviours the message-path refactors must preserve:
// an aggregate arriving at EXACTLY a host's early-termination deadline is
// still processed (the participation test is strictly `now > DeadlineFor`),
// and a duplicate broadcast at an active host contributes its piggybacked
// aggregate even though the flood itself is dropped.

TEST(WildfireTest, AggregateArrivingExactlyAtDeadlineIsProcessed) {
  // Chain 0-1-2-3-4 with d_hat = 3.5: host 1 (level 1) participates until
  // (2*3.5 - 1 + 1) * delta = 7. Host 4's contribution propagates one hop
  // per tick and reaches host 1 at t = 7 — exactly the deadline. Current
  // semantics accept it, so host 1 re-floods at t = 7 (the final send of
  // the run); a `>=` deadline test would silence t = 7 entirely.
  topology::Graph g(5);
  for (HostId h = 0; h + 1 < 5; ++h) ASSERT_TRUE(g.AddEdge(h, h + 1).ok());
  std::vector<double> values(5, 1.0);
  sim::Simulator sim(g, sim::SimOptions{});
  WildfireProtocol wf(
      &sim, MakeContext(AggregateKind::kCount, CombinerKind::kUnionCount,
                        &values, 3.5));
  sim.AttachProgram(&wf);
  wf.Start(0);
  sim.Run();

  ASSERT_TRUE(wf.result().declared);
  // hq declares at the horizon (t = 7) having folded in hosts 0..3; host
  // 4's value reaches host 1 at t = 7 but hq only at t = 8 (> horizon).
  EXPECT_DOUBLE_EQ(wf.result().declared_at, 7.0);
  EXPECT_DOUBLE_EQ(wf.result().value, 4.0);
  // The exact-deadline acceptance at host 1 produces the run's last send.
  EXPECT_DOUBLE_EQ(sim.metrics().last_send_time(), 7.0);
}

TEST(WildfireTest, AggregateArrivingAfterDeadlineIsDropped) {
  // Same chain, d_hat = 3: host 1's deadline is (6 - 1 + 1) = 6, and host
  // 4's contribution arrives at host 1 at t = 7 > 6 — dropped, so host 1
  // never re-floods it and the network is silent after t = 6.
  topology::Graph g(5);
  for (HostId h = 0; h + 1 < 5; ++h) ASSERT_TRUE(g.AddEdge(h, h + 1).ok());
  std::vector<double> values(5, 1.0);
  sim::Simulator sim(g, sim::SimOptions{});
  WildfireProtocol wf(
      &sim, MakeContext(AggregateKind::kCount, CombinerKind::kUnionCount,
                        &values, 3.0));
  sim.AttachProgram(&wf);
  wf.Start(0);
  sim.Run();

  ASSERT_TRUE(wf.result().declared);
  EXPECT_DOUBLE_EQ(wf.result().declared_at, 6.0);
  // Hosts 0..2 reach hq in time; host 3's merge at its own deadline does
  // propagate, but host 4's contribution dies at host 3 (t = 5 > 4).
  EXPECT_DOUBLE_EQ(wf.result().value, 3.0);
  EXPECT_LE(sim.metrics().last_send_time(), 6.0);
}

TEST(WildfireTest, DuplicateBroadcastPiggybackFeedsActiveHosts) {
  // Triangle 0-1, 0-2, 1-2 with piggybacking: at t = 2, hosts 1 and 2 each
  // receive the other's broadcast as a *duplicate* (both are already
  // active). The flood is dropped but the piggybacked aggregate is not:
  // each host merges the other's contribution a full tick before host 0's
  // re-flood could deliver it. Locked via hq's last-update time and the
  // exact message budget of the 3-host run.
  topology::Graph g(3);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(0, 2).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  std::vector<double> values{5, 15, 25};

  for (bool exact : {true, false}) {
    // kUnionCount exercises the pooled-body piggyback decode; kMax the
    // inline-scalar one.
    sim::Simulator sim(g, sim::SimOptions{});
    WildfireProtocol wf(
        &sim,
        exact ? MakeContext(AggregateKind::kCount, CombinerKind::kUnionCount,
                            &values, 3)
              : MakeContext(AggregateKind::kMax, CombinerKind::kMax, &values,
                            3));
    sim.AttachProgram(&wf);
    wf.Start(0);
    sim.Run();
    ASSERT_TRUE(wf.result().declared);
    EXPECT_DOUBLE_EQ(wf.result().value, exact ? 3.0 : 25.0);
    // hq's answer is complete at t = 2 (both replies landed); the duplicate
    // broadcasts' piggybacked payloads settle 1 and 2 by t = 2 as well, so
    // no aggregate changes anywhere after t = 2.
    EXPECT_LE(wf.result().last_update_at, 2.0);
  }
}

TEST(WildfireTest, HonorsHorizonNoTrafficAfter2DhatDelta) {
  topology::Graph g = *topology::MakeRandom(200, 5.0, 25);
  std::vector<double> values = core::MakeZipfValues(200, 25);
  sim::Simulator sim(g, sim::SimOptions{});
  WildfireProtocol wf(
      &sim,
      MakeContext(AggregateKind::kCount, CombinerKind::kFmCount, &values, 20));
  sim.AttachProgram(&wf);
  wf.Start(0);
  sim.Run();
  EXPECT_LE(sim.metrics().last_send_time(), 40.0);
  EXPECT_DOUBLE_EQ(wf.result().declared_at, 40.0);
}

TEST(WildfireTest, MessageTimelinePeaksNearDiameterAndDiesBy2D) {
  // The Fig. 13(b) shape: traffic peaks around D*delta and is ~0 by
  // 2*D*delta even with a larger D-hat.
  topology::Graph g = *topology::MakeRandom(2000, 5.0, 26);
  std::vector<double> values = core::MakeZipfValues(2000, 26);
  Rng rng(1);
  uint32_t diameter = topology::EstimateDiameter(g, 3, &rng);
  double d_hat = 2.0 * diameter;  // deliberate overestimate
  sim::Simulator sim(g, sim::SimOptions{});
  WildfireProtocol wf(
      &sim, MakeContext(AggregateKind::kCount, CombinerKind::kFmCount, &values,
                        d_hat));
  sim.AttachProgram(&wf);
  wf.Start(0);
  sim.Run();
  const auto& ticks = sim.metrics().SendsPerTick();
  size_t peak_tick = 0;
  for (size_t t = 0; t < ticks.size(); ++t) {
    if (ticks[t] > ticks[peak_tick]) peak_tick = t;
  }
  EXPECT_LE(peak_tick, 2 * diameter);
  // All traffic dead well before the (overestimated) horizon.
  EXPECT_LE(sim.metrics().last_send_time(), 2.0 * diameter + 4);
}

}  // namespace
}  // namespace validity::protocols
