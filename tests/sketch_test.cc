// Tests for the Flajolet-Martin sketch library: distributional properties,
// semilattice laws of the OR-merge, estimation accuracy (Fig. 6 / Theorem
// 5.2 shapes), and the exactness of the fast sum initialization.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "common/rng.h"
#include "sketch/fm_sketch.h"

namespace validity::sketch {
namespace {

TEST(FmSketchTest, EmptySketchEstimatesSmall) {
  FmSketch s(FmParams{8});
  EXPECT_TRUE(s.IsEmpty());
  EXPECT_EQ(s.LowestZeroBit(0), 0);
  EXPECT_NEAR(s.Estimate(), 1.0 / kFmPhi, 1e-9);
}

TEST(FmSketchTest, SingleElementSetsOneBitPerVector) {
  Rng rng(1);
  FmSketch s = FmSketch::ForDistinctElement(FmParams{16}, &rng);
  for (uint32_t i = 0; i < s.num_vectors(); ++i) {
    EXPECT_EQ(__builtin_popcountll(s.word(i)), 1);
  }
}

TEST(FmSketchTest, MergeOrIsIdempotentCommutativeAssociative) {
  Rng rng(2);
  FmParams params{8};
  for (int trial = 0; trial < 50; ++trial) {
    FmSketch a = FmSketch::ForMagnitude(params, rng.NextBelow(100), &rng);
    FmSketch b = FmSketch::ForMagnitude(params, rng.NextBelow(100), &rng);
    FmSketch c = FmSketch::ForMagnitude(params, rng.NextBelow(100), &rng);

    FmSketch aa = a;
    aa.MergeOr(a);
    EXPECT_EQ(aa, a) << "idempotent";

    FmSketch ab = a;
    ab.MergeOr(b);
    FmSketch ba = b;
    ba.MergeOr(a);
    EXPECT_EQ(ab, ba) << "commutative";

    FmSketch ab_c = ab;
    ab_c.MergeOr(c);
    FmSketch bc = b;
    bc.MergeOr(c);
    FmSketch a_bc = a;
    a_bc.MergeOr(bc);
    EXPECT_EQ(ab_c, a_bc) << "associative";
  }
}

TEST(FmSketchTest, MergeOrReportsChangeExactly) {
  Rng rng(3);
  FmParams params{4};
  FmSketch a = FmSketch::ForDistinctElement(params, &rng);
  FmSketch b = FmSketch::ForDistinctElement(params, &rng);
  FmSketch merged = a;
  bool changed_first = merged.MergeOr(b);
  bool changed_second = merged.MergeOr(b);
  EXPECT_TRUE(changed_first || merged == a);
  EXPECT_FALSE(changed_second) << "re-merging the same sketch cannot change";
  EXPECT_FALSE(merged.MergeOr(a));
}

TEST(FmSketchTest, MergeOrCompareMatchesTwoPassSemantics) {
  // The fused pass must agree with MergeOr + operator== on every pair:
  // changed == "this gained bits", same_as_other == "merged equals other".
  FmParams params{8};
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    FmSketch a = FmSketch::ForMagnitude(params, rng.NextBelow(50), &rng);
    FmSketch b = trial % 3 == 0 ? a  // force the equal / subset cases too
                                : FmSketch::ForMagnitude(
                                      params, rng.NextBelow(50), &rng);
    FmSketch fused = a;
    FmSketch reference = a;
    bool ref_changed = reference.MergeOr(b);
    auto outcome = fused.MergeOrCompare(b);
    EXPECT_EQ(fused, reference);
    EXPECT_EQ(outcome.changed, ref_changed);
    EXPECT_EQ(outcome.same_as_other, reference == b);
  }
}

TEST(FmSketchTest, DefaultConstructedSketchIsUnset) {
  FmSketch s;
  EXPECT_EQ(s.num_vectors(), 0u);
  EXPECT_TRUE(s.IsEmpty());
  EXPECT_EQ(s.SizeBytes(), 0u);
  FmSketch shaped(FmParams{4});
  s = shaped;  // assignable into shape
  EXPECT_EQ(s.num_vectors(), 4u);
}

TEST(FmSketchTest, DuplicateInsensitivity) {
  // The same host's sketch merged many times must not inflate the estimate:
  // the core property WILDFIRE relies on (paper §5.2).
  Rng rng(4);
  FmParams params{16};
  FmSketch base = FmSketch::ForDistinctElement(params, &rng);
  FmSketch merged = base;
  for (int i = 0; i < 100; ++i) merged.MergeOr(base);
  EXPECT_EQ(merged, base);
}

TEST(FmSketchTest, EstimateGrowsWithDistinctElements) {
  Rng rng(5);
  FmParams params{32};
  FmSketch small(params);
  FmSketch large(params);
  for (int i = 0; i < 10; ++i) small.InsertDistinctElement(&rng);
  for (int i = 0; i < 10000; ++i) large.InsertDistinctElement(&rng);
  EXPECT_LT(small.Estimate(), large.Estimate());
}

// Accuracy sweep, the Fig. 6 property: the mean ratio estimate/truth over
// repeated runs approaches 1 as c grows. Parameterized over set sizes
// (|M| in {2^10, 2^12, 2^14}) like the paper.
class FmAccuracyTest : public ::testing::TestWithParam<int> {};

TEST_P(FmAccuracyTest, MeanRatioNearOneForModerateC) {
  const uint64_t set_size = 1ULL << GetParam();
  FmParams params{16};
  Rng rng(100 + GetParam());
  double ratio_sum = 0.0;
  constexpr int kTrials = 12;
  for (int t = 0; t < kTrials; ++t) {
    FmSketch s(params);
    for (uint64_t i = 0; i < set_size; ++i) s.InsertDistinctElement(&rng);
    ratio_sum += s.Estimate() / static_cast<double>(set_size);
  }
  double mean_ratio = ratio_sum / kTrials;
  EXPECT_GT(mean_ratio, 0.75);
  EXPECT_LT(mean_ratio, 1.35);
}

INSTANTIATE_TEST_SUITE_P(SetSizes, FmAccuracyTest,
                         ::testing::Values(10, 12, 14));

TEST(FmSketchTest, Theorem52FactorCBound) {
  // Pr[ 1/c <= est/true <= c ] >= 1 - 2/c. Test at c = 8 with margin.
  constexpr uint32_t c = 8;
  constexpr int kTrials = 60;
  constexpr uint64_t kTruth = 4096;
  int within = 0;
  Rng rng(6);
  for (int t = 0; t < kTrials; ++t) {
    FmSketch s(FmParams{c});
    for (uint64_t i = 0; i < kTruth; ++i) s.InsertDistinctElement(&rng);
    double ratio = s.Estimate() / static_cast<double>(kTruth);
    if (ratio >= 1.0 / c && ratio <= c) ++within;
  }
  // Bound guarantees >= 75%; in practice nearly all trials pass.
  EXPECT_GE(within, kTrials * 3 / 4);
}

TEST(FmSketchTest, ForMagnitudeMatchesNaiveInsertionDistribution) {
  // The binomial-halving fast path must draw from the same distribution as
  // m explicit insertions. Compare mean lowest-zero-bit across many trials.
  constexpr uint64_t kMagnitude = 300;
  constexpr int kTrials = 300;
  FmParams params{4};
  Rng rng_fast(7);
  Rng rng_naive(8);
  double z_fast = 0;
  double z_naive = 0;
  for (int t = 0; t < kTrials; ++t) {
    FmSketch fast = FmSketch::ForMagnitude(params, kMagnitude, &rng_fast);
    FmSketch naive(params);
    for (uint64_t i = 0; i < kMagnitude; ++i) {
      naive.InsertDistinctElement(&rng_naive);
    }
    for (uint32_t v = 0; v < params.num_vectors; ++v) {
      z_fast += fast.LowestZeroBit(v);
      z_naive += naive.LowestZeroBit(v);
    }
  }
  z_fast /= kTrials * params.num_vectors;
  z_naive /= kTrials * params.num_vectors;
  EXPECT_NEAR(z_fast, z_naive, 0.15);
}

TEST(FmSketchTest, ForMagnitudeZeroIsEmpty) {
  Rng rng(9);
  FmSketch s = FmSketch::ForMagnitude(FmParams{8}, 0, &rng);
  EXPECT_TRUE(s.IsEmpty());
}

TEST(FmSketchTest, SizeBytesMatchesVectors) {
  FmSketch s(FmParams{12});
  EXPECT_EQ(s.SizeBytes(), 12 * sizeof(uint64_t));
}

TEST(FmSketchTest, EstimateSetCountAndSum) {
  // A Zipf-ish value set: count estimates |M|, sum estimates the total.
  Rng rng(10);
  std::vector<int64_t> values;
  int64_t truth_sum = 0;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = 10 + static_cast<int64_t>(rng.NextBelow(491));
    values.push_back(v);
    truth_sum += v;
  }
  FmSetEstimate est = EstimateSet(FmParams{24}, values, &rng);
  EXPECT_NEAR(est.count / 2000.0, 1.0, 0.5);
  EXPECT_NEAR(est.sum / static_cast<double>(truth_sum), 1.0, 0.5);
}

TEST(FmSketchTest, MergedShardsEqualUnionSketch) {
  // Sum sketch semantics: host values sketched independently then OR-ed
  // estimate the total sum, exactly the distributed procedure of §5.2.
  Rng rng(11);
  FmParams params{24};
  constexpr int kHosts = 500;
  FmSketch combined(params);
  uint64_t truth = 0;
  for (int h = 0; h < kHosts; ++h) {
    uint64_t value = 10 + rng.NextBelow(200);
    truth += value;
    FmSketch host_sketch = FmSketch::ForMagnitude(params, value, &rng);
    combined.MergeOr(host_sketch);
  }
  double ratio = combined.Estimate() / static_cast<double>(truth);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(FmSketchKernelTest, SimdAndScalarKernelsAreBitIdentical) {
  // The runtime-selected word kernel (AVX2 where available) must produce
  // exactly the sketch bits and outcome flags of the portable scalar loop,
  // across vector counts that exercise full 4-word blocks, tails, and the
  // empty sketch.
  Rng rng(123);
  for (uint32_t c : {1u, 3u, 4u, 7u, 8u, 16u, 33u}) {
    FmParams params{c};
    for (int trial = 0; trial < 50; ++trial) {
      FmSketch a = FmSketch::ForMagnitude(params, 1 + rng.NextBelow(5000),
                                          &rng);
      FmSketch b = FmSketch::ForMagnitude(params, 1 + rng.NextBelow(5000),
                                          &rng);
      FmSketch a_scalar = a;

      ForceScalarSketchKernels(false);  // runtime-selected (maybe AVX2)
      FmSketch::MergeOutcome fast = a.MergeOrCompare(b);
      ForceScalarSketchKernels(true);
      FmSketch::MergeOutcome slow = a_scalar.MergeOrCompare(b);
      ForceScalarSketchKernels(false);

      EXPECT_TRUE(a == a_scalar);
      EXPECT_EQ(fast.changed, slow.changed);
      EXPECT_EQ(fast.same_as_other, slow.same_as_other);

      // MergeOr flavor over fresh copies.
      FmSketch x = FmSketch::ForMagnitude(params, 1 + rng.NextBelow(5000),
                                          &rng);
      FmSketch x_scalar = x;
      bool fast_changed = x.MergeOr(b);
      ForceScalarSketchKernels(true);
      bool slow_changed = x_scalar.MergeOr(b);
      ForceScalarSketchKernels(false);
      EXPECT_TRUE(x == x_scalar);
      EXPECT_EQ(fast_changed, slow_changed);
    }
  }
}

TEST(FmSketchKernelTest, ForceScalarRoundTrips) {
  EXPECT_STREQ(ForceScalarSketchKernels(true), "scalar");
  const char* restored = ForceScalarSketchKernels(false);
  // Whatever the hardware offers, restoring must land back on the startup
  // selection.
  EXPECT_STREQ(restored, ActiveSketchKernel());
}

}  // namespace
}  // namespace validity::sketch
