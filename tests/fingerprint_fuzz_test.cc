// Randomized differential fingerprint harness: N seeded cases drawn over
// (topology kind and size, protocol, aggregate, combiner family, churn,
// fault spec, start time, querying host), each executed four ways —
//
//   fresh          one-shot QueryEngine::Run (or a single staggered
//                  RunConcurrent when the start time is nonzero),
//   session        the same query re-run on a session the first run
//                  dirtied (warm pages, parked protocols),
//   concurrent     the same query sharing a timeline with a companion
//                  query on the same session,
//   service        the same query submitted to a QueryService at the same
//                  arrival time and drained —
//
// and all four results compared field for field (the determinism contract,
// docs/SERVICE.md). A failing case prints a self-contained repro recipe:
// its generator seed and every drawn parameter.
//
// Case count: VALIDITY_FUZZ_DEFAULT_CASES at compile time (the
// VALIDITY_FUZZ_CASES CMake cache variable, default 200; CI's nightly mode
// raises it to 2000), overridable at runtime via the VALIDITY_FUZZ_CASES
// environment variable. VALIDITY_FUZZ_SEED re-bases the generator and
// VALIDITY_FUZZ_CASE reruns a single case by index.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/query_service.h"
#include "fingerprint_matrix.h"
#include "sim/session.h"
#include "topology/generators.h"
#include "topology/topology.h"

#ifndef VALIDITY_FUZZ_DEFAULT_CASES
#define VALIDITY_FUZZ_DEFAULT_CASES 200
#endif

namespace validity::core {
namespace {

using protocols::ProtocolKind;

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  return value != nullptr ? std::strtoull(value, nullptr, 10) : fallback;
}

struct FuzzCase {
  std::string topology_label;
  // The engine owns the topology handle; graph-backed kinds keep the graph
  // alive here.
  std::unique_ptr<topology::Graph> graph;
  std::unique_ptr<QueryEngine> engine;
  uint32_t num_hosts = 0;
  QuerySpec spec;
  RunConfig config;
  HostId hq = 0;
  SimTime start_at = 0.0;
};

const char* ProtocolName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kAllReport: return "all_report";
    case ProtocolKind::kRandomizedReport: return "randomized_report";
    case ProtocolKind::kSpanningTree: return "spanning_tree";
    case ProtocolKind::kDag: return "dag";
    case ProtocolKind::kWildfire: return "wildfire";
    case ProtocolKind::kGossip: return "gossip";
  }
  return "?";
}

const char* AggregateName(AggregateKind agg) {
  switch (agg) {
    case AggregateKind::kCount: return "count";
    case AggregateKind::kSum: return "sum";
    case AggregateKind::kMin: return "min";
    case AggregateKind::kMax: return "max";
    case AggregateKind::kAverage: return "average";
  }
  return "?";
}

/// Draws one case. Pure function of `seed` — the repro contract.
FuzzCase DrawCase(uint64_t seed) {
  std::mt19937_64 rng(seed);
  auto uniform = [&rng](double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(rng);
  };
  auto pick = [&rng](uint32_t lo, uint32_t hi) {  // inclusive
    return std::uniform_int_distribution<uint32_t>(lo, hi)(rng);
  };

  FuzzCase c;
  // Topology: two graph families, three implicit families.
  const uint32_t topo_kind = pick(0, 4);
  switch (topo_kind) {
    case 0: {
      const uint32_t n = pick(64, 300);
      c.graph = std::make_unique<topology::Graph>(
          *topology::MakeGnutellaLike(n, rng()));
      c.num_hosts = n;
      c.topology_label = "gnutella(" + std::to_string(n) + ")";
      break;
    }
    case 1: {
      const uint32_t n = pick(64, 300);
      const double degree = uniform(3.0, 6.0);
      c.graph = std::make_unique<topology::Graph>(
          *topology::MakeRandom(n, degree, rng()));
      c.num_hosts = n;
      c.topology_label = "random(" + std::to_string(n) + ")";
      break;
    }
    case 2: {
      const uint32_t side = pick(8, 17);
      c.num_hosts = side * side;
      c.topology_label = "grid(" + std::to_string(side) + ")";
      break;
    }
    case 3: {
      const uint32_t n = pick(64, 160);
      c.num_hosts = n;
      c.topology_label = "ring(" + std::to_string(n) + ")";
      break;
    }
    default: {
      const uint32_t side = pick(8, 14);
      c.num_hosts = side * side;
      c.topology_label = "torus(" + std::to_string(side) + ")";
      break;
    }
  }
  const uint64_t value_seed = rng();
  std::vector<double> values = MakeZipfValues(c.num_hosts, value_seed);
  if (c.graph != nullptr) {
    c.engine = std::make_unique<QueryEngine>(c.graph.get(), std::move(values));
  } else if (topo_kind == 2) {
    const uint32_t side = static_cast<uint32_t>(std::sqrt(c.num_hosts));
    c.engine = std::make_unique<QueryEngine>(*topology::Topology::Grid(side),
                                             std::move(values));
  } else if (topo_kind == 3) {
    c.engine = std::make_unique<QueryEngine>(
        *topology::Topology::Ring(c.num_hosts), std::move(values));
  } else {
    const uint32_t side = static_cast<uint32_t>(std::sqrt(c.num_hosts));
    c.engine = std::make_unique<QueryEngine>(*topology::Topology::Torus(side),
                                             std::move(values));
  }

  // Protocol + aggregate, respecting protocol vocabularies.
  const ProtocolKind kinds[] = {
      ProtocolKind::kAllReport,    ProtocolKind::kRandomizedReport,
      ProtocolKind::kSpanningTree, ProtocolKind::kDag,
      ProtocolKind::kWildfire,     ProtocolKind::kGossip};
  c.config.protocol = kinds[pick(0, 5)];
  const AggregateKind aggs[] = {AggregateKind::kCount, AggregateKind::kSum,
                                AggregateKind::kMin, AggregateKind::kMax,
                                AggregateKind::kAverage};
  c.spec.aggregate = aggs[pick(0, 4)];
  c.spec.exact_combiners = pick(0, 1) == 1;
  if (c.config.protocol == ProtocolKind::kRandomizedReport ||
      c.config.protocol == ProtocolKind::kGossip) {
    c.spec.aggregate = pick(0, 1) == 0 ? AggregateKind::kCount
                                       : AggregateKind::kSum;
  }
  if (c.config.protocol == ProtocolKind::kGossip) {
    c.spec.exact_combiners = false;
    c.config.protocol_options.gossip.rounds = pick(8, 16);
  }
  c.spec.fm_vectors = 8u << pick(0, 2);  // 8, 16, or 32
  c.config.sketch_seed = rng();

  // Wireless medium: wildfire on graph-backed topologies only.
  if (c.config.protocol == ProtocolKind::kWildfire && c.graph != nullptr &&
      pick(0, 9) == 0) {
    c.config.sim_options.medium = sim::MediumKind::kWireless;
  }

  // Churn on half the cases.
  if (pick(0, 1) == 1) {
    c.config.churn_removals = pick(1, c.num_hosts / 3);
    c.config.churn_seed = rng();
    if (pick(0, 3) == 0) {
      c.config.churn_start_frac = 0.25;
      c.config.churn_end_frac = 0.75;
    }
  }

  // Link faults on ~40% of cases, byzantine hosts on ~20%.
  if (pick(0, 4) < 2) {
    c.config.fault.seed = rng();
    if (pick(0, 1) == 1) c.config.fault.drop_rate = uniform(0.01, 0.12);
    if (pick(0, 1) == 1) c.config.fault.duplicate_rate = uniform(0.01, 0.1);
    if (pick(0, 1) == 1) c.config.fault.delay_rate = uniform(0.01, 0.12);
    c.config.fault.max_delay_hops = pick(1, 3);
  }
  if (pick(0, 4) == 0) {
    c.config.fault.seed = c.config.fault.seed != 0 ? c.config.fault.seed
                                                   : rng();
    const sim::ByzantineMode modes[] = {sim::ByzantineMode::kInflate,
                                        sim::ByzantineMode::kDeadenReplies,
                                        sim::ByzantineMode::kStaleReplay};
    c.config.fault.byzantine_mode = modes[pick(0, 2)];
    c.config.fault.byzantine_fraction = uniform(0.03, 0.15);
  }

  c.hq = pick(0, c.num_hosts - 1);
  // Half the cases arrive mid-timeline, staggered off the tick comb.
  c.start_at = pick(0, 1) == 1 ? uniform(0.25, 20.0) : 0.0;
  return c;
}

std::string DescribeCase(const FuzzCase& c, uint64_t seed, uint64_t index) {
  std::ostringstream out;
  out << "fuzz case #" << index << " (generator seed " << seed
      << ")\n  repro: VALIDITY_FUZZ_SEED="
      << EnvOr("VALIDITY_FUZZ_SEED", 0x5eed4002) << " VALIDITY_FUZZ_CASE="
      << index << " ./fingerprint_fuzz_test"
      << "\n  topology=" << c.topology_label
      << " protocol=" << ProtocolName(c.config.protocol)
      << " aggregate=" << AggregateName(c.spec.aggregate)
      << (c.spec.exact_combiners ? " exact" : " fm")
      << " fm_vectors=" << c.spec.fm_vectors
      << "\n  sketch_seed=" << c.config.sketch_seed << " hq=" << c.hq
      << " start_at=" << c.start_at
      << " medium=" << (c.config.sim_options.medium ==
                        sim::MediumKind::kWireless ? "wireless" : "p2p")
      << "\n  churn_removals=" << c.config.churn_removals
      << " churn_seed=" << c.config.churn_seed
      << " churn_window=[" << c.config.churn_start_frac << ","
      << c.config.churn_end_frac << "]"
      << "\n  fault={seed=" << c.config.fault.seed
      << " drop=" << c.config.fault.drop_rate
      << " dup=" << c.config.fault.duplicate_rate
      << " delay=" << c.config.fault.delay_rate
      << " max_delay_hops=" << c.config.fault.max_delay_hops
      << " byz=" << sim::ByzantineModeName(c.config.fault.byzantine_mode)
      << " byz_frac=" << c.config.fault.byzantine_fraction << "}";
  return out.str();
}

TEST(FingerprintFuzzTest, FourColumnsAgreeAcrossRandomCases) {
  const uint64_t base_seed = EnvOr("VALIDITY_FUZZ_SEED", 0x5eed4002);
  const uint64_t num_cases =
      EnvOr("VALIDITY_FUZZ_CASES", VALIDITY_FUZZ_DEFAULT_CASES);
  const uint64_t only_case = EnvOr("VALIDITY_FUZZ_CASE", ~0ull);

  for (uint64_t i = 0; i < num_cases; ++i) {
    if (only_case != ~0ull && i != only_case) continue;
    const uint64_t case_seed = base_seed + 0xF1F2F3F5ull * i;
    FuzzCase c = DrawCase(case_seed);
    SCOPED_TRACE(DescribeCase(c, case_seed, i));
    QueryEngine& engine = *c.engine;

    QueryEngine::ConcurrentQuery q;
    q.spec = c.spec;
    q.config = c.config;
    q.hq = c.hq;
    q.start_at = c.start_at;

    // Column A: fresh.
    QueryResult fresh;
    if (c.start_at == 0.0) {
      auto r = engine.Run(c.spec, c.config, c.hq);
      ASSERT_TRUE(r.ok()) << r.status().message();
      fresh = *r;
    } else {
      sim::SimulatorSession session(engine.topology(), c.config.sim_options);
      auto r = engine.RunConcurrent(&session, {q});
      ASSERT_TRUE(r.ok()) << r.status().message();
      fresh = (*r)[0];
    }

    // Column B: the same query on a session its first run dirtied.
    sim::SimulatorSession session(engine.topology(), c.config.sim_options);
    {
      auto warmup = engine.RunConcurrent(&session, {q});
      ASSERT_TRUE(warmup.ok()) << warmup.status().message();
    }
    auto reused = engine.RunConcurrent(&session, {q});
    ASSERT_TRUE(reused.ok()) << reused.status().message();
    ExpectIdentical(fresh, (*reused)[0], "fresh-vs-session");

    // Column C: sharing the timeline with a companion query (same spec,
    // different sketch stream, issued at t=0).
    QueryEngine::ConcurrentQuery companion = q;
    companion.config.sketch_seed = c.config.sketch_seed + 1;
    companion.start_at = 0.0;
    auto concurrent = engine.RunConcurrent(&session, {q, companion});
    ASSERT_TRUE(concurrent.ok()) << concurrent.status().message();
    ExpectIdentical(fresh, (*concurrent)[0], "fresh-vs-concurrent");

    // Column D: submitted to a QueryService at the same arrival time.
    QueryService service(&engine, ServiceOptionsFor(c.spec, c.config, c.hq));
    auto id = service.Submit(c.start_at, c.spec, c.config, c.hq);
    ASSERT_TRUE(id.ok()) << id.status().message();
    service.Drain();
    QueryService::Completion done;
    ASSERT_TRUE(service.Poll(&done));
    EXPECT_EQ(done.started_at, c.start_at);
    ExpectIdentical(fresh, done.result, "fresh-vs-service");
  }
}

}  // namespace
}  // namespace validity::core
