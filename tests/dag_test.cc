// DIRECTEDACYCLICGRAPH baseline tests: structure (<= k parents, level
// discipline), failure-free exactness, and the redundancy benefit over the
// single-parent tree.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "protocols/dag.h"
#include "protocols/oracle.h"
#include "protocols/spanning_tree.h"
#include "sim/churn.h"
#include "topology/algorithms.h"
#include "topology/generators.h"

namespace validity::protocols {
namespace {

QueryContext MakeContext(AggregateKind agg, const std::vector<double>* values,
                         double d_hat) {
  QueryContext ctx;
  ctx.aggregate = agg;
  ctx.combiner = CombinerFor(agg, /*exact=*/true);
  ctx.values = values;
  ctx.d_hat = d_hat;
  return ctx;
}

/// Diamond with a redundant middle: 0 - {1,2} - 3 (3 adjacent to both 1
/// and 2), plus a deeper host 4 under 3.
topology::Graph DiamondGraph() {
  topology::Graph g(5);
  EXPECT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_TRUE(g.AddEdge(0, 2).ok());
  EXPECT_TRUE(g.AddEdge(1, 3).ok());
  EXPECT_TRUE(g.AddEdge(2, 3).ok());
  EXPECT_TRUE(g.AddEdge(3, 4).ok());
  return g;
}

TEST(DagTest, FailureFreeExactCount) {
  topology::Graph g = *topology::MakeRandom(400, 5.0, 41);
  std::vector<double> values(400, 1.0);
  sim::SimOptions opts;
  opts.failure_detection = true;
  sim::Simulator sim(g, opts);
  DagOptions dopts;
  dopts.max_parents = 2;
  DagProtocol dag(&sim, MakeContext(AggregateKind::kCount, &values, 12),
                  dopts);
  sim.AttachProgram(&dag);
  dag.Start(0);
  sim.Run();
  ASSERT_TRUE(dag.result().declared);
  EXPECT_DOUBLE_EQ(dag.result().value, 400);
}

TEST(DagTest, ParentsRespectLevelAndCap) {
  topology::Graph g = *topology::MakeGrid(12);
  std::vector<double> values(g.num_hosts(), 1.0);
  for (uint32_t k : {1u, 2u, 3u}) {
    sim::SimOptions opts;
    opts.failure_detection = true;
    sim::Simulator sim(g, opts);
    DagOptions dopts;
    dopts.max_parents = k;
    DagProtocol dag(&sim, MakeContext(AggregateKind::kCount, &values, 13),
                    dopts);
    sim.AttachProgram(&dag);
    dag.Start(0);
    sim.Run();
    EXPECT_DOUBLE_EQ(dag.result().value, g.num_hosts());
    auto dist = topology::BfsDistances(g, 0);
    for (HostId h = 1; h < g.num_hosts(); ++h) {
      const auto& parents = dag.ParentsOf(h);
      ASSERT_GE(parents.size(), 1u);
      EXPECT_LE(parents.size(), k);
      EXPECT_EQ(dag.DepthOf(h), dist[h]);
      for (HostId p : parents) {
        EXPECT_EQ(dag.DepthOf(p), dist[h] - 1) << "level discipline";
        EXPECT_TRUE(g.HasEdge(h, p));
      }
    }
  }
}

TEST(DagTest, SurvivesSingleRelayFailureWhereTreeLoses) {
  // Kill host 1 after broadcast: host 3 reports to both 1 and 2 under DAG,
  // so its value (and host 4's) still reaches the root; the tree loses
  // whatever hung under host 1.
  topology::Graph g = DiamondGraph();
  std::vector<double> values(5, 1.0);
  std::vector<sim::ChurnEvent> churn{{4.4, 1}};

  auto run = [&](bool use_dag) {
    sim::SimOptions opts;
    opts.failure_detection = true;
    sim::Simulator sim(g, opts);
    sim::ScheduleChurn(&sim, churn);
    std::unique_ptr<ProtocolBase> proto;
    if (use_dag) {
      DagOptions dopts;
      dopts.max_parents = 2;
      proto = std::make_unique<DagProtocol>(
          &sim, MakeContext(AggregateKind::kCount, &values, 6), dopts);
    } else {
      proto = std::make_unique<SpanningTreeProtocol>(
          &sim, MakeContext(AggregateKind::kCount, &values, 6));
    }
    sim.AttachProgram(proto.get());
    proto->Start(0);
    sim.Run();
    EXPECT_TRUE(proto->result().declared);
    return proto->result().value;
  };

  double dag_value = run(true);
  double tree_value = run(false);
  EXPECT_DOUBLE_EQ(dag_value, 4) << "all survivors counted";
  EXPECT_LE(tree_value, dag_value);
}

TEST(DagTest, DuplicatePathsDoNotInflateTheCount) {
  // The whole point of using duplicate-insensitive combiners: host 3's
  // subtree reaches the root twice (via 1 and 2) yet counts once.
  topology::Graph g = DiamondGraph();
  std::vector<double> values(5, 1.0);
  sim::SimOptions opts;
  opts.failure_detection = true;
  sim::Simulator sim(g, opts);
  DagOptions dopts;
  dopts.max_parents = 2;
  DagProtocol dag(&sim, MakeContext(AggregateKind::kCount, &values, 6), dopts);
  sim.AttachProgram(&dag);
  dag.Start(0);
  sim.Run();
  EXPECT_DOUBLE_EQ(dag.result().value, 5);
}

TEST(DagTest, HigherKSendsMoreReports) {
  topology::Graph g = *topology::MakeGrid(10);
  std::vector<double> values(g.num_hosts(), 1.0);
  uint64_t msgs_k1 = 0;
  uint64_t msgs_k3 = 0;
  for (uint32_t k : {1u, 3u}) {
    sim::SimOptions opts;
    opts.failure_detection = true;
    sim::Simulator sim(g, opts);
    DagOptions dopts;
    dopts.max_parents = k;
    DagProtocol dag(&sim, MakeContext(AggregateKind::kCount, &values, 11),
                    dopts);
    sim.AttachProgram(&dag);
    dag.Start(0);
    sim.Run();
    (k == 1 ? msgs_k1 : msgs_k3) = sim.metrics().messages_sent();
  }
  EXPECT_GT(msgs_k3, msgs_k1);
}

TEST(DagTest, WirelessReportCostIndependentOfK) {
  // Paper §6.6 (Fig. 11): on the broadcast medium, reporting to k parents
  // costs one transmission regardless of k.
  topology::Graph g = *topology::MakeGrid(10);
  std::vector<double> values(g.num_hosts(), 1.0);
  uint64_t msgs_k1 = 0;
  uint64_t msgs_k3 = 0;
  for (uint32_t k : {1u, 3u}) {
    sim::SimOptions opts;
    opts.failure_detection = true;
    opts.medium = sim::MediumKind::kWireless;
    sim::Simulator sim(g, opts);
    DagOptions dopts;
    dopts.max_parents = k;
    DagProtocol dag(&sim, MakeContext(AggregateKind::kCount, &values, 11),
                    dopts);
    sim.AttachProgram(&dag);
    dag.Start(0);
    sim.Run();
    EXPECT_DOUBLE_EQ(dag.result().value, g.num_hosts());
    (k == 1 ? msgs_k1 : msgs_k3) = sim.metrics().messages_sent();
  }
  EXPECT_EQ(msgs_k1, msgs_k3);
}

}  // namespace
}  // namespace validity::protocols
