// Gossip (push-sum) baseline tests: mass conservation, convergence on a
// static network, eventual-consistency-only semantics under churn (the
// §2.2 contrast with Single-Site Validity).

#include <gtest/gtest.h>

#include <cmath>

#include "core/engine.h"
#include "protocols/gossip.h"
#include "protocols/oracle.h"
#include "sim/churn.h"
#include "topology/generators.h"

namespace validity::protocols {
namespace {

QueryContext MakeContext(AggregateKind agg, const std::vector<double>* values,
                         double d_hat) {
  QueryContext ctx;
  ctx.aggregate = agg;
  ctx.values = values;
  ctx.d_hat = d_hat;
  return ctx;
}

ProtocolRunResult RunGossip(const topology::Graph& g, AggregateKind agg,
                            const std::vector<double>& values, uint32_t rounds,
                            const std::vector<sim::ChurnEvent>& churn = {}) {
  sim::Simulator sim(g, sim::SimOptions{});
  sim::ScheduleChurn(&sim, churn);
  GossipOptions opts;
  opts.rounds = rounds;
  GossipProtocol gossip(&sim, MakeContext(agg, &values, 12), opts);
  sim.AttachProgram(&gossip);
  gossip.Start(0);
  sim.Run();
  return gossip.result();
}

TEST(GossipTest, PushSumConvergesToAverage) {
  topology::Graph g = *topology::MakeRandom(300, 6.0, 61);
  std::vector<double> values = core::MakeZipfValues(300, 61);
  double truth = 0;
  for (double v : values) truth += v;
  truth /= 300;
  ProtocolRunResult r = RunGossip(g, AggregateKind::kAverage, values, 60);
  ASSERT_TRUE(r.declared);
  EXPECT_NEAR(r.value / truth, 1.0, 0.02);
}

TEST(GossipTest, PushSumConvergesToSumAndCount) {
  topology::Graph g = *topology::MakeRandom(400, 6.0, 62);
  std::vector<double> values = core::MakeZipfValues(400, 62);
  double truth_sum = 0;
  for (double v : values) truth_sum += v;

  ProtocolRunResult sum = RunGossip(g, AggregateKind::kSum, values, 80);
  ASSERT_TRUE(sum.declared);
  EXPECT_NEAR(sum.value / truth_sum, 1.0, 0.05);

  ProtocolRunResult count = RunGossip(g, AggregateKind::kCount, values, 80);
  ASSERT_TRUE(count.declared);
  EXPECT_NEAR(count.value / 400.0, 1.0, 0.05);
}

TEST(GossipTest, ExtremaSpreadEpidemically) {
  topology::Graph g = *topology::MakeGnutellaLike(500, 63);
  std::vector<double> values = core::MakeZipfValues(500, 63);
  double truth = *std::max_element(values.begin(), values.end());
  ProtocolRunResult r = RunGossip(g, AggregateKind::kMax, values, 60);
  ASSERT_TRUE(r.declared);
  EXPECT_DOUBLE_EQ(r.value, truth);
}

TEST(GossipTest, MoreRoundsTightenTheEstimate) {
  topology::Graph g = *topology::MakeRandom(500, 6.0, 64);
  std::vector<double> values(500, 1.0);
  double err_short = std::fabs(
      RunGossip(g, AggregateKind::kCount, values, 10).value / 500.0 - 1.0);
  double err_long = std::fabs(
      RunGossip(g, AggregateKind::kCount, values, 100).value / 500.0 - 1.0);
  EXPECT_LT(err_long, err_short);
  EXPECT_LT(err_long, 0.02);
}

TEST(GossipTest, ChurnDestroysMassAndValidity) {
  // The §2.2 point: under churn, a crashing host destroys the (value,
  // weight) mass it holds; gossip's answer carries no validity interval and
  // can drift outside the ORACLE bounds with no warning. We run several
  // churn seeds and require that at least one produces an invalid answer
  // (deterministic given the fixed seeds).
  topology::Graph g = *topology::MakeRandom(600, 6.0, 65);
  std::vector<double> values(600, 1.0);
  const uint32_t rounds = 60;
  int invalid = 0;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    sim::Simulator sim(g, sim::SimOptions{});
    Rng churn_rng(seed);
    sim::ScheduleChurn(
        &sim, sim::MakeUniformChurn(600, 0, 200, 0.0, rounds, &churn_rng));
    GossipOptions opts;
    opts.rounds = rounds;
    GossipProtocol gossip(&sim, MakeContext(AggregateKind::kCount, &values, 12),
                          opts);
    sim.AttachProgram(&gossip);
    gossip.Start(0);
    sim.Run();
    OracleReport oracle = ComputeOracle(sim, 0, 0, rounds + 2,
                                        AggregateKind::kCount, values);
    if (!oracle.Contains(gossip.result().value)) ++invalid;
  }
  EXPECT_GT(invalid, 0)
      << "gossip offered validity under churn it cannot guarantee";
}

TEST(GossipTest, MessageCostIsRoundsTimesHosts) {
  topology::Graph g = *topology::MakeRandom(200, 6.0, 66);
  std::vector<double> values(200, 1.0);
  sim::Simulator sim(g, sim::SimOptions{});
  GossipOptions opts;
  opts.rounds = 30;
  GossipProtocol gossip(&sim, MakeContext(AggregateKind::kCount, &values, 10),
                        opts);
  sim.AttachProgram(&gossip);
  gossip.Start(0);
  sim.Run();
  // Activation flood ~2|E| plus one push per host per round.
  uint64_t flood = 2 * g.num_edges();
  uint64_t pushes = 30ULL * 200;
  uint64_t total = sim.metrics().messages_sent();
  EXPECT_GE(total, pushes);
  EXPECT_LE(total, flood + pushes + 200);
}

}  // namespace
}  // namespace validity::protocols
