// §5.4 extension tests: capture-recapture (Jolly-Seber) network-size
// estimation and the DHT-ring segment-length estimator.

#include <gtest/gtest.h>

#include <cmath>

#include "protocols/capture_recapture.h"
#include "protocols/ring_estimator.h"
#include "sim/churn.h"
#include "topology/generators.h"

namespace validity::protocols {
namespace {

TEST(CaptureRecaptureTest, StartValidatesOptions) {
  topology::Graph g = *topology::MakeChain(4);
  sim::Simulator sim(g, sim::SimOptions{});
  {
    CaptureRecaptureOptions opts;
    opts.sample_size = 0;
    CaptureRecaptureEstimator est(&sim, opts, 1);
    EXPECT_FALSE(est.Start(0).ok());
  }
  {
    CaptureRecaptureOptions opts;
    opts.interval = 0;
    CaptureRecaptureEstimator est(&sim, opts, 1);
    EXPECT_FALSE(est.Start(0).ok());
  }
}

TEST(CaptureRecaptureTest, UniformSamplerEstimatesStaticSize) {
  topology::Graph g = *topology::MakeRandom(2000, 5.0, 81);
  sim::Simulator sim(g, sim::SimOptions{});
  CaptureRecaptureOptions opts;
  opts.sample_size = 300;  // ~ 6.7 * sqrt(n): comfortably enough recaptures
  opts.interval = 5.0;
  opts.num_intervals = 8;
  opts.sampler = SamplerKind::kUniform;
  CaptureRecaptureEstimator est(&sim, opts, 81);
  ASSERT_TRUE(est.Start(0).ok());
  sim.Run();
  ASSERT_GE(est.estimates().size(), 6u);
  double mean = 0;
  int n = 0;
  for (const auto& e : est.estimates()) {
    if (std::isnan(e.estimate)) continue;
    mean += e.estimate;
    ++n;
    EXPECT_EQ(e.true_alive, 2000u);
  }
  ASSERT_GT(n, 3);
  mean /= n;
  EXPECT_NEAR(mean / 2000.0, 1.0, 0.25);
}

TEST(CaptureRecaptureTest, TracksDecliningPopulation) {
  topology::Graph g = *topology::MakeRandom(2000, 6.0, 82);
  sim::Simulator sim(g, sim::SimOptions{});
  Rng churn_rng(82);
  // Halve the network over the sampling horizon.
  sim::ScheduleChurn(&sim,
                     sim::MakeUniformChurn(2000, 0, 1000, 0.0, 60.0,
                                           &churn_rng));
  CaptureRecaptureOptions opts;
  opts.sample_size = 300;
  opts.interval = 6.0;
  opts.num_intervals = 10;
  opts.sampler = SamplerKind::kUniform;
  CaptureRecaptureEstimator est(&sim, opts, 82);
  ASSERT_TRUE(est.Start(0).ok());
  sim.Run();
  ASSERT_GE(est.estimates().size(), 8u);
  // Estimates decline roughly in step with the truth.
  const auto& first = est.estimates().front();
  const auto& last = est.estimates().back();
  ASSERT_FALSE(std::isnan(first.estimate));
  ASSERT_FALSE(std::isnan(last.estimate));
  EXPECT_LT(last.estimate, first.estimate);
  EXPECT_NEAR(last.estimate / last.true_alive, 1.0, 0.45);
}

TEST(CaptureRecaptureTest, MarkedSetRespectsCapAndPrunesDead) {
  topology::Graph g = *topology::MakeRandom(500, 5.0, 83);
  sim::Simulator sim(g, sim::SimOptions{});
  Rng churn_rng(83);
  sim::ScheduleChurn(&sim,
                     sim::MakeUniformChurn(500, 0, 250, 0.0, 50.0, &churn_rng));
  CaptureRecaptureOptions opts;
  opts.sample_size = 100;
  opts.interval = 5.0;
  opts.num_intervals = 10;
  opts.max_marked = 60;
  opts.sampler = SamplerKind::kUniform;
  CaptureRecaptureEstimator est(&sim, opts, 83);
  ASSERT_TRUE(est.Start(0).ok());
  sim.Run();
  for (const auto& e : est.estimates()) {
    EXPECT_LE(e.marked, 60u);
    EXPECT_LE(e.recaptured, e.sampled);
  }
}

TEST(CaptureRecaptureTest, RandomWalkSamplerWorksOnExpanderLikeOverlay) {
  // The paper's suggestion: random-walk endpoints on a well-connected
  // overlay approximate uniform samples. Accuracy is looser than the
  // uniform sampler but the estimate stays in a sane band.
  topology::Graph g = *topology::MakeRandom(1500, 8.0, 84);
  sim::Simulator sim(g, sim::SimOptions{});
  CaptureRecaptureOptions opts;
  opts.sample_size = 250;
  opts.interval = 5.0;
  opts.num_intervals = 8;
  opts.sampler = SamplerKind::kRandomWalk;
  CaptureRecaptureEstimator est(&sim, opts, 84);
  ASSERT_TRUE(est.Start(0).ok());
  sim.Run();
  double mean = 0;
  int n = 0;
  for (const auto& e : est.estimates()) {
    if (std::isnan(e.estimate)) continue;
    mean += e.estimate;
    ++n;
  }
  ASSERT_GT(n, 3);
  mean /= n;
  EXPECT_GT(mean / 1500.0, 0.55);
  EXPECT_LT(mean / 1500.0, 1.8);
}

// ------------------------------------------------------------------- Ring

TEST(RingEstimatorTest, PositionsAreDeterministicAndUniform) {
  topology::Graph g = *topology::MakeRandom(1000, 5.0, 85);
  sim::Simulator sim(g, sim::SimOptions{});
  RingSizeEstimator ring_a(&sim, 7);
  RingSizeEstimator ring_b(&sim, 7);
  double below_half = 0;
  for (HostId h = 0; h < 1000; ++h) {
    double p = ring_a.PositionOf(h);
    EXPECT_EQ(p, ring_b.PositionOf(h));
    EXPECT_GE(p, 0.0);
    EXPECT_LT(p, 1.0);
    if (p < 0.5) ++below_half;
  }
  EXPECT_NEAR(below_half / 1000.0, 0.5, 0.06);
}

TEST(RingEstimatorTest, SegmentsPartitionTheRing) {
  topology::Graph g = *topology::MakeRandom(200, 5.0, 86);
  sim::Simulator sim(g, sim::SimOptions{});
  RingSizeEstimator ring(&sim, 11);
  double total = 0;
  for (HostId h = 0; h < 200; ++h) total += ring.SegmentOf(h);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(RingEstimatorTest, EstimatesStaticSize) {
  topology::Graph g = *topology::MakeRandom(5000, 5.0, 87);
  sim::Simulator sim(g, sim::SimOptions{});
  RingSizeEstimator ring(&sim, 13);
  Rng rng(87);
  // Average several estimates (s/X_s is noisy for one draw).
  double mean = 0;
  constexpr int kReps = 20;
  for (int i = 0; i < kReps; ++i) {
    auto est = ring.EstimateSize(200, &rng);
    ASSERT_TRUE(est.ok());
    mean += *est;
  }
  mean /= kReps;
  EXPECT_NEAR(mean / 5000.0, 1.0, 0.25);
}

TEST(RingEstimatorTest, TracksChurnedPopulation) {
  topology::Graph g = *topology::MakeRandom(3000, 5.0, 88);
  sim::Simulator sim(g, sim::SimOptions{});
  Rng churn_rng(88);
  sim::ScheduleChurn(&sim,
                     sim::MakeUniformChurn(3000, 0, 1500, 0.0, 10.0,
                                           &churn_rng));
  sim.Run();  // all failures applied
  RingSizeEstimator ring(&sim, 17);
  Rng rng(88);
  double mean = 0;
  constexpr int kReps = 20;
  for (int i = 0; i < kReps; ++i) {
    auto est = ring.EstimateSize(150, &rng);
    ASSERT_TRUE(est.ok());
    mean += *est;
  }
  mean /= kReps;
  EXPECT_NEAR(mean / 1500.0, 1.0, 0.3);
}

TEST(RingEstimatorTest, PositionSamplingIsUnbiasedWhereIndexSamplingIsNot) {
  // The statistical contract of the fix: lookups routed to uniform ring
  // *positions* hit segments with probability proportional to length, and
  // the mean-reciprocal estimator is then exactly unbiased for the alive
  // count (E[1/x] = sum_i seg_i * 1/seg_i = n). The pre-fix sampling drew
  // segments uniformly *by host index*; pushed through the same estimator
  // it averages E[1/seg] over all segments, which blows up with the tiny
  // spacings (order n^2) every random ring contains. The corrected mean
  // must sit in a tight band around alive_count over many seeds; the
  // index-uniform reference must land far outside it.
  constexpr uint32_t kHosts = 2000;
  topology::Graph g = *topology::MakeRandom(kHosts, 5.0, 90);
  sim::Simulator sim(g, sim::SimOptions{});
  constexpr int kSeeds = 30;
  constexpr uint32_t kSamples = 100;
  double corrected_mean = 0.0;
  double index_mean = 0.0;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    RingSizeEstimator ring(&sim, /*ring_seed=*/100 + seed);
    Rng rng(seed);
    auto est = ring.EstimateSize(kSamples, &rng);
    ASSERT_TRUE(est.ok());
    corrected_mean += *est;

    // Reference implementation of the old sampling: hosts uniform by index,
    // same mean-reciprocal estimator over their full segments.
    Rng old_rng(seed);
    double inv_sum = 0.0;
    for (uint32_t i = 0; i < kSamples; ++i) {
      inv_sum += 1.0 / ring.SegmentOf(
                           static_cast<HostId>(old_rng.NextBelow(kHosts)));
    }
    index_mean += inv_sum / kSamples;
  }
  corrected_mean /= kSeeds;
  index_mean /= kSeeds;
  EXPECT_NEAR(corrected_mean / kHosts, 1.0, 0.12)
      << "position-based sampling must be unbiased for the alive count";
  EXPECT_GT(index_mean / kHosts, 2.0)
      << "uniform-by-index sampling must fail this estimator (if this "
         "triggers, the sampling was reverted to the pre-fix scheme)";
}

TEST(RingEstimatorTest, ErrorsOnEmptyOrZeroSample) {
  topology::Graph g = *topology::MakeChain(2);
  sim::Simulator sim(g, sim::SimOptions{});
  RingSizeEstimator ring(&sim, 3);
  Rng rng(1);
  EXPECT_FALSE(ring.EstimateSize(0, &rng).ok());
  sim.FailHost(0);
  sim.FailHost(1);
  EXPECT_FALSE(ring.EstimateSize(5, &rng).ok());
}

}  // namespace
}  // namespace validity::protocols
