// ORACLE tests: HC/HU computation on scripted failure scenarios and the
// validity-interval arithmetic per aggregate (including the greedy extreme
// averages).

#include <gtest/gtest.h>

#include "protocols/oracle.h"
#include "sim/simulator.h"
#include "topology/generators.h"

namespace validity::protocols {
namespace {

TEST(OracleTest, NoFailuresEveryoneStableEverywhere) {
  topology::Graph g = *topology::MakeRandom(100, 5.0, 61);
  sim::Simulator sim(g, sim::SimOptions{});
  sim.Run();
  std::vector<double> values(100, 2.0);
  OracleReport r =
      ComputeOracle(sim, 0, 0, 10, AggregateKind::kCount, values);
  EXPECT_EQ(r.hc.size(), 100u);
  EXPECT_EQ(r.hu.size(), 100u);
  EXPECT_DOUBLE_EQ(r.q_low, 100);
  EXPECT_DOUBLE_EQ(r.q_high, 100);
}

TEST(OracleTest, ChainCutSplitsHcButNotHu) {
  // 0-1-2-3-4: host 2 dies mid-query. HC = {0,1}; HU = everyone.
  topology::Graph g = *topology::MakeChain(5);
  sim::Simulator sim(g, sim::SimOptions{});
  sim.ScheduleFailure(3.0, 2);
  sim.Run();
  std::vector<double> values{1, 2, 3, 4, 5};
  OracleReport r = ComputeOracle(sim, 0, 0, 10, AggregateKind::kCount, values);
  EXPECT_EQ(r.hc, (std::vector<HostId>{0, 1}));
  EXPECT_EQ(r.hu.size(), 5u);
  EXPECT_DOUBLE_EQ(r.q_low, 2);
  EXPECT_DOUBLE_EQ(r.q_high, 5);
}

TEST(OracleTest, FailureAfterIntervalDoesNotCut) {
  topology::Graph g = *topology::MakeChain(3);
  sim::Simulator sim(g, sim::SimOptions{});
  sim.ScheduleFailure(20.0, 1);
  sim.Run();
  std::vector<double> values{1, 1, 1};
  OracleReport r = ComputeOracle(sim, 0, 0, 10, AggregateKind::kCount, values);
  EXPECT_EQ(r.hc.size(), 3u) << "failure at t=20 is outside [0,10]";
}

TEST(OracleTest, WindowedIntervalsSeeDifferentWorlds) {
  topology::Graph g = *topology::MakeChain(3);
  sim::Simulator sim(g, sim::SimOptions{});
  sim.ScheduleFailure(15.0, 2);
  sim.Run();
  std::vector<double> values{1, 1, 1};
  // Window [0,10]: host 2 alive throughout => in HC.
  OracleReport early =
      ComputeOracle(sim, 0, 0, 10, AggregateKind::kCount, values);
  EXPECT_EQ(early.hc.size(), 3u);
  // Window [12,22]: host 2 dies inside => only in HU.
  OracleReport late =
      ComputeOracle(sim, 0, 12, 22, AggregateKind::kCount, values);
  EXPECT_EQ(late.hc.size(), 2u);
  EXPECT_EQ(late.hu.size(), 3u);
  // Window [16,26]: host 2 never alive => gone from HU too.
  OracleReport gone =
      ComputeOracle(sim, 0, 16, 26, AggregateKind::kCount, values);
  EXPECT_EQ(gone.hu.size(), 2u);
}

TEST(OracleTest, MinMaxBoundsAreDirectional) {
  // Chain 0-1-2; values 5, 1, 9; host 1 fails => HC={0}, HU=all.
  topology::Graph g = *topology::MakeChain(3);
  sim::Simulator sim(g, sim::SimOptions{});
  sim.ScheduleFailure(1.0, 1);
  sim.Run();
  std::vector<double> values{5, 1, 9};

  OracleReport mn = ComputeOracle(sim, 0, 0, 10, AggregateKind::kMin, values);
  // min over HU = 1 (low), min over HC = 5 (high).
  EXPECT_DOUBLE_EQ(mn.q_low, 1);
  EXPECT_DOUBLE_EQ(mn.q_high, 5);
  EXPECT_TRUE(mn.Contains(5));
  EXPECT_TRUE(mn.Contains(1));
  EXPECT_FALSE(mn.Contains(0.5));

  OracleReport mx = ComputeOracle(sim, 0, 0, 10, AggregateKind::kMax, values);
  EXPECT_DOUBLE_EQ(mx.q_low, 5);
  EXPECT_DOUBLE_EQ(mx.q_high, 9);
}

TEST(OracleTest, SumBoundsHandleNegativeValues) {
  topology::Graph g = *topology::MakeChain(4);
  sim::Simulator sim(g, sim::SimOptions{});
  sim.ScheduleFailure(1.0, 1);  // cuts hosts 2,3 from HC
  sim.Run();
  std::vector<double> values{10, 4, -3, 7};
  OracleReport r = ComputeOracle(sim, 0, 0, 10, AggregateKind::kSum, values);
  // HC = {0}: base 10. Optional: 4 (host1, in HU), -3, 7.
  EXPECT_DOUBLE_EQ(r.q_low, 10 - 3);
  EXPECT_DOUBLE_EQ(r.q_high, 10 + 4 + 7);
}

TEST(OracleTest, ContainsWithinGrantsMultiplicativeSlack) {
  OracleReport r;
  r.q_low = 100;
  r.q_high = 200;
  EXPECT_FALSE(r.Contains(90));
  EXPECT_TRUE(r.ContainsWithin(90, 2.0));
  EXPECT_TRUE(r.ContainsWithin(390, 2.0));
  EXPECT_FALSE(r.ContainsWithin(450, 2.0));
}

// ------------------------------------------------------- ExtremeAverages

TEST(ExtremeAveragesTest, NoOptionalsIsJustTheMean) {
  AvgBounds b = ExtremeAverages({2, 4}, {});
  EXPECT_DOUBLE_EQ(b.low, 3);
  EXPECT_DOUBLE_EQ(b.high, 3);
}

TEST(ExtremeAveragesTest, GreedyPicksHelpfulValuesOnly) {
  // Mandatory {10}; optional {1, 20}.
  // Max: add 20 -> mean 15 (adding 1 would lower it).
  // Min: add 1 -> mean 5.5 (adding 20 would raise it).
  AvgBounds b = ExtremeAverages({10}, {1, 20});
  EXPECT_DOUBLE_EQ(b.high, 15);
  EXPECT_DOUBLE_EQ(b.low, 5.5);
}

TEST(ExtremeAveragesTest, TakesMultipleWhileImproving) {
  // Max from {0}: 30 -> 15; 20 > 15 -> (0+30+20)/3 = 16.66..; 10 < 16.66
  // stops.
  AvgBounds b = ExtremeAverages({0}, {10, 20, 30});
  EXPECT_NEAR(b.high, 50.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(b.low, 0);
}

TEST(ExtremeAveragesTest, EmptyMandatorySeedsFromExtremes) {
  AvgBounds b = ExtremeAverages({}, {1, 5, 9});
  EXPECT_DOUBLE_EQ(b.high, 9 /* then 5,1 would lower it */);
  EXPECT_DOUBLE_EQ(b.low, 1);
}

TEST(ExtremeAveragesTest, AllEqualValuesCollapse) {
  AvgBounds b = ExtremeAverages({7, 7}, {7, 7, 7});
  EXPECT_DOUBLE_EQ(b.low, 7);
  EXPECT_DOUBLE_EQ(b.high, 7);
}

TEST(OracleTest, AverageBoundsContainTruthUnderChurn) {
  topology::Graph g = *topology::MakeRandom(200, 5.0, 67);
  sim::Simulator sim(g, sim::SimOptions{});
  for (HostId h = 10; h < 50; ++h) {
    sim.ScheduleFailure(2.0 + h * 0.1, h);
  }
  sim.Run();
  std::vector<double> values(200);
  Rng rng(67);
  for (auto& v : values) v = static_cast<double>(10 + rng.NextBelow(490));
  OracleReport r =
      ComputeOracle(sim, 0, 0, 30, AggregateKind::kAverage, values);
  // The average over HC and over HU both lie inside the bounds.
  double hc_avg = ExactAggregate(AggregateKind::kAverage, values, r.hc);
  double hu_avg = ExactAggregate(AggregateKind::kAverage, values, r.hu);
  EXPECT_LE(r.q_low, hc_avg);
  EXPECT_GE(r.q_high, hc_avg);
  EXPECT_LE(r.q_low, hu_avg);
  EXPECT_GE(r.q_high, hu_avg);
  EXPECT_LT(r.q_low, r.q_high);
}

}  // namespace
}  // namespace validity::protocols
