// Tests for the topology substrate: graph invariants, the paper's four
// evaluation topologies, graph algorithms, and edge-list IO.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <utility>

#include "common/rng.h"
#include "topology/algorithms.h"
#include "topology/edge_list_io.h"
#include "topology/generators.h"
#include "topology/graph.h"
#include "topology/topology.h"

namespace validity::topology {
namespace {

// ---------------------------------------------------------------- Graph

TEST(GraphTest, AddEdgeMaintainsSymmetry) {
  Graph g(4);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.Degree(1), 2u);
  EXPECT_TRUE(g.Validate().ok());
}

TEST(GraphTest, RejectsSelfLoopsDuplicatesAndOutOfRange) {
  Graph g(3);
  EXPECT_EQ(g.AddEdge(1, 1).code(), StatusCode::kInvalidArgument);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  EXPECT_EQ(g.AddEdge(1, 0).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(g.AddEdge(0, 3).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphTest, DegreeStatistics) {
  Graph g = *MakeStar(5);
  EXPECT_EQ(g.MaxDegree(), 4u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 2.0 * 4 / 5);
}

// ----------------------------------------------------------- Generators

TEST(GeneratorTest, RandomHasRequestedAverageDegreeAndIsConnected) {
  Graph g = *MakeRandom(4000, 5.0, 7);
  EXPECT_EQ(g.num_hosts(), 4000u);
  EXPECT_NEAR(g.AverageDegree(), 5.0, 0.35);
  EXPECT_TRUE(g.Validate().ok());
  Components comps = ConnectedComponents(g);
  EXPECT_EQ(comps.count, 1u);
}

TEST(GeneratorTest, RandomIsDeterministicInSeed) {
  auto edge_set = [](const Graph& g) {
    std::set<std::pair<HostId, HostId>> edges;
    for (HostId a = 0; a < g.num_hosts(); ++a) {
      for (HostId b : g.Neighbors(a)) {
        edges.emplace(std::min(a, b), std::max(a, b));
      }
    }
    return edges;
  };
  Graph a = *MakeRandom(500, 5.0, 11);
  Graph b = *MakeRandom(500, 5.0, 11);
  Graph c = *MakeRandom(500, 5.0, 12);
  EXPECT_EQ(edge_set(a), edge_set(b));
  EXPECT_NE(edge_set(a), edge_set(c));
}

TEST(GeneratorTest, PowerLawHasHeavyTailAndIsConnected) {
  Graph g = *MakePowerLaw(8000, 2.9, 13);
  EXPECT_EQ(g.num_hosts(), 8000u);
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_EQ(ConnectedComponents(g).count, 1u);
  // Heavy tail: some host far above the average degree.
  EXPECT_GT(g.MaxDegree(), 8 * g.AverageDegree());
  // Tail exponent in the vicinity of the requested gamma = 2.9.
  double gamma = EstimatePowerLawExponent(g, 3);
  EXPECT_GT(gamma, 2.0);
  EXPECT_LT(gamma, 4.0);
}

TEST(GeneratorTest, BarabasiAlbertDegreesAndConnectivity) {
  Graph g = *MakeBarabasiAlbert(2000, 2, 17);
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_EQ(ConnectedComponents(g).count, 1u);
  // Every non-seed host attaches with ~m edges => average degree ~2m.
  EXPECT_NEAR(g.AverageDegree(), 4.0, 0.5);
  EXPECT_GT(g.MaxDegree(), 20u);
}

TEST(GeneratorTest, GridMooreNeighborhood) {
  Graph g = *MakeGrid(10);
  EXPECT_EQ(g.num_hosts(), 100u);
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_EQ(ConnectedComponents(g).count, 1u);
  // Corner host: 3 neighbors; edge host: 5; interior host: 8.
  EXPECT_EQ(g.Degree(0), 3u);
  EXPECT_EQ(g.Degree(5), 5u);
  EXPECT_EQ(g.Degree(5 * 10 + 5), 8u);
  // Moore grid edge count: 2*s*(s-1) rook edges + 2*(s-1)^2 diagonals.
  EXPECT_EQ(g.num_edges(), 2u * 10 * 9 + 2u * 9 * 9);
}

TEST(GeneratorTest, GnutellaLikeMatchesCrawlShape) {
  // Substitution check (DESIGN.md): heavy-tailed degrees, average degree
  // near the published ~3.4, small diameter, connected.
  Graph g = *MakeGnutellaLike(20000, 19);
  EXPECT_TRUE(g.Validate().ok());
  EXPECT_EQ(ConnectedComponents(g).count, 1u);
  EXPECT_GT(g.AverageDegree(), 2.5);
  EXPECT_LT(g.AverageDegree(), 4.5);
  EXPECT_GT(g.MaxDegree(), 50u);
  Rng rng(1);
  uint32_t diameter = EstimateDiameter(g, 2, &rng);
  EXPECT_LE(diameter, 20u);
  EXPECT_GE(diameter, 5u);
}

TEST(GeneratorTest, RegularShapes) {
  Graph chain = *MakeChain(5);
  EXPECT_EQ(chain.num_edges(), 4u);
  EXPECT_EQ(chain.Degree(0), 1u);
  EXPECT_EQ(chain.Degree(2), 2u);

  Graph cycle = *MakeCycle(6);
  EXPECT_EQ(cycle.num_edges(), 6u);
  for (HostId h = 0; h < 6; ++h) EXPECT_EQ(cycle.Degree(h), 2u);

  Graph star = *MakeStar(7);
  EXPECT_EQ(star.num_edges(), 6u);
  EXPECT_EQ(star.Degree(0), 6u);

  EXPECT_FALSE(MakeCycle(2).ok());
  EXPECT_FALSE(MakeChain(0).ok());
}

TEST(GeneratorTest, Theorem44InstanceShape) {
  // Cycle of 2n+2 hosts plus a tail attached at h_{n+1}.
  constexpr uint32_t n = 5;
  Graph g = *MakeTheorem44Instance(n);
  EXPECT_EQ(g.num_hosts(), 2 * n + 3);
  EXPECT_EQ(g.num_edges(), 2 * n + 3);  // cycle edges + 1 tail edge
  EXPECT_EQ(g.Degree(2 * n + 2), 1u);
  EXPECT_EQ(g.Degree(n + 1), 3u);
  EXPECT_TRUE(g.Validate().ok());
}

// ----------------------------------------------------------- Algorithms

TEST(AlgorithmsTest, BfsDistancesOnChain) {
  Graph g = *MakeChain(6);
  auto dist = BfsDistances(g, 0);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(dist[i], i);
}

TEST(AlgorithmsTest, BfsFilteredRespectsAliveness) {
  Graph g = *MakeChain(6);
  // Kill host 3: hosts 4,5 become unreachable from 0.
  auto dist = BfsDistancesFiltered(g, 0, [](HostId h) { return h != 3; });
  EXPECT_EQ(dist[2], 2);
  EXPECT_EQ(dist[3], kUnreachable);
  EXPECT_EQ(dist[4], kUnreachable);
}

TEST(AlgorithmsTest, ComponentsOnDisconnectedGraph) {
  Graph g(7);
  ASSERT_TRUE(g.AddEdge(0, 1).ok());
  ASSERT_TRUE(g.AddEdge(1, 2).ok());
  ASSERT_TRUE(g.AddEdge(3, 4).ok());
  Components comps = ConnectedComponents(g);
  EXPECT_EQ(comps.count, 4u);  // {0,1,2}, {3,4}, {5}, {6}
  EXPECT_EQ(comps.sizes[comps.largest], 3u);
  EXPECT_EQ(comps.component_of[0], comps.component_of[2]);
  EXPECT_NE(comps.component_of[0], comps.component_of[3]);
}

TEST(AlgorithmsTest, DiametersOfRegularShapes) {
  EXPECT_EQ(ExactDiameter(*MakeChain(10)), 9u);
  EXPECT_EQ(ExactDiameter(*MakeCycle(10)), 5u);
  EXPECT_EQ(ExactDiameter(*MakeStar(10)), 2u);
  // Moore grid: Chebyshev metric => diameter = side - 1.
  EXPECT_EQ(ExactDiameter(*MakeGrid(7)), 6u);
}

TEST(AlgorithmsTest, EstimateDiameterLowerBoundsAndOftenMatches) {
  Rng rng(3);
  Graph g = *MakeChain(30);
  uint32_t est = EstimateDiameter(g, 3, &rng);
  EXPECT_EQ(est, 29u);  // double sweep is exact on a path
  Graph grid = *MakeGrid(8);
  uint32_t est2 = EstimateDiameter(grid, 4, &rng);
  EXPECT_LE(est2, 7u);
  EXPECT_GE(est2, 6u);
}

TEST(AlgorithmsTest, DegreeStatsMatchGraph) {
  Graph g = *MakeStar(5);
  DegreeStats stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.min, 1u);
  EXPECT_EQ(stats.max, 4u);
  EXPECT_DOUBLE_EQ(stats.average, g.AverageDegree());
  EXPECT_EQ(stats.histogram.CountAt(1), 4);
  EXPECT_EQ(stats.histogram.CountAt(4), 1);
}

// ------------------------------------------------------------------- IO

TEST(EdgeListIoTest, RoundTrip) {
  Graph g = *MakeRandom(200, 4.0, 23);
  std::string path = testing::TempDir() + "/graph_roundtrip.txt";
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_hosts(), g.num_hosts());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  for (HostId h = 0; h < g.num_hosts(); ++h) {
    EXPECT_EQ(loaded->Degree(h), g.Degree(h));
  }
  std::remove(path.c_str());
}

TEST(EdgeListIoTest, LoadRejectsMissingAndMalformed) {
  EXPECT_EQ(LoadEdgeList("/nonexistent/graph.txt").status().code(),
            StatusCode::kNotFound);
  std::string path = testing::TempDir() + "/bad_graph.txt";
  {
    FILE* f = fopen(path.c_str(), "w");
    fputs("3 1\n0 7\n", f);  // endpoint out of range
    fclose(f);
  }
  EXPECT_FALSE(LoadEdgeList(path).ok());
  std::remove(path.c_str());
}

TEST(ImplicitTopologyTest, GridMatchesMakeGridNeighborForNeighbor) {
  // The implicit grid must reproduce MakeGrid's adjacency lists exactly —
  // same neighbors in the same order — for every host, including the four
  // corners and all edge rows/columns. Order matters: it is what makes
  // implicit and materialized runs bit-identical.
  for (uint32_t side : {1u, 2u, 3u, 5u, 17u}) {
    SCOPED_TRACE(side);
    Graph g = *MakeGrid(side);
    Topology topo = *Topology::Grid(side);
    ASSERT_EQ(topo.num_hosts(), g.num_hosts());
    EXPECT_EQ(topo.MaxDegree(), g.MaxDegree());
    HostId buf[Topology::kMaxImplicitDegree];
    for (HostId h = 0; h < g.num_hosts(); ++h) {
      auto expected = g.Neighbors(h);
      ASSERT_EQ(topo.Degree(h), expected.size()) << "host " << h;
      uint32_t count = topo.CopyNeighbors(h, buf);
      ASSERT_EQ(count, expected.size()) << "host " << h;
      for (uint32_t i = 0; i < count; ++i) {
        EXPECT_EQ(buf[i], expected[i]) << "host " << h << " slot " << i;
      }
    }
  }
}

TEST(ImplicitTopologyTest, GridCornerAndEdgeDegrees) {
  Topology topo = *Topology::Grid(10);
  // Corners see a 2x2 square minus themselves.
  for (HostId corner : {0u, 9u, 90u, 99u}) {
    EXPECT_EQ(topo.Degree(corner), 3u);
  }
  // Edge (non-corner) hosts see a 2x3 block minus themselves.
  EXPECT_EQ(topo.Degree(4), 5u);       // top row
  EXPECT_EQ(topo.Degree(90 + 4), 5u);  // bottom row
  EXPECT_EQ(topo.Degree(40), 5u);      // left column
  EXPECT_EQ(topo.Degree(49), 5u);      // right column
  // Interior: full Moore neighborhood.
  EXPECT_EQ(topo.Degree(55), 8u);
  EXPECT_EQ(topo.ImplicitDiameter(), 9u);
}

TEST(ImplicitTopologyTest, RingMatchesMakeCycleIncludingWrapHosts) {
  for (uint32_t n : {3u, 4u, 257u}) {
    SCOPED_TRACE(n);
    Graph g = *MakeCycle(n);
    Topology topo = *Topology::Ring(n);
    HostId buf[Topology::kMaxImplicitDegree];
    for (HostId h = 0; h < n; ++h) {
      auto expected = g.Neighbors(h);
      ASSERT_EQ(topo.Degree(h), 2u);
      ASSERT_EQ(topo.CopyNeighbors(h, buf), expected.size());
      EXPECT_EQ(buf[0], expected[0]) << "host " << h;
      EXPECT_EQ(buf[1], expected[1]) << "host " << h;
    }
    EXPECT_EQ(topo.ImplicitDiameter(), n / 2);
  }
}

TEST(ImplicitTopologyTest, TorusWrapsEveryBoundary) {
  constexpr uint32_t kSide = 5;
  Topology topo = *Topology::Torus(kSide);
  HostId buf[Topology::kMaxImplicitDegree];
  // Every host — corners included — has the full wrapped Moore
  // neighborhood.
  for (HostId h = 0; h < topo.num_hosts(); ++h) {
    EXPECT_EQ(topo.Degree(h), 8u);
    ASSERT_EQ(topo.CopyNeighbors(h, buf), 8u);
    std::set<HostId> distinct(buf, buf + 8);
    EXPECT_EQ(distinct.size(), 8u) << "host " << h;
    EXPECT_EQ(distinct.count(h), 0u) << "host " << h;
  }
  // The (0, 0) corner wraps to the far row and column in row-major offset
  // order.
  ASSERT_EQ(topo.CopyNeighbors(0, buf), 8u);
  const HostId expected[8] = {4 * kSide + 4, 4 * kSide + 0, 4 * kSide + 1,
                              4,             1,             kSide + 4,
                              kSide + 0,     kSide + 1};
  for (int i = 0; i < 8; ++i) EXPECT_EQ(buf[i], expected[i]) << "slot " << i;
  // Symmetry: the materialized edge set validates as a simple undirected
  // graph with 4n edges.
  auto materialized = topo.Materialize();
  ASSERT_TRUE(materialized.ok());
  EXPECT_TRUE(materialized->Validate().ok());
  EXPECT_EQ(materialized->num_edges(), 4ull * topo.num_hosts());
}

TEST(ImplicitTopologyTest, MaterializeReproducesTheGridEdgeSet) {
  Topology topo = *Topology::Grid(6);
  auto materialized = topo.Materialize();
  ASSERT_TRUE(materialized.ok());
  Graph reference = *MakeGrid(6);
  ASSERT_EQ(materialized->num_edges(), reference.num_edges());
  for (HostId h = 0; h < reference.num_hosts(); ++h) {
    for (HostId nb : reference.Neighbors(h)) {
      EXPECT_TRUE(materialized->HasEdge(h, nb));
    }
  }
}

TEST(ImplicitTopologyTest, ValidatesParameters) {
  EXPECT_FALSE(Topology::Grid(0).ok());
  EXPECT_FALSE(Topology::Ring(2).ok());
  EXPECT_FALSE(Topology::Torus(2).ok());
  Graph g(4);
  Topology from_graph = Topology::FromGraph(&g);
  EXPECT_FALSE(from_graph.implicit());
  EXPECT_TRUE(Topology::Grid(3)->implicit());
  EXPECT_TRUE(from_graph.SameAs(Topology::FromGraph(&g)));
  EXPECT_FALSE(from_graph.SameAs(*Topology::Grid(2)));
  EXPECT_FALSE(Topology::Grid(3)->SameAs(*Topology::Grid(4)));
  EXPECT_FALSE(Topology::Grid(3)->SameAs(*Topology::Torus(3)));
}

}  // namespace
}  // namespace validity::topology
