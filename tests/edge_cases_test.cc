// Edge cases and theory demonstrations: the Theorem 4.1 / 4.2 impossibility
// constructions replayed as executable scenarios, degenerate networks,
// runaway-protocol guards, tracing, and small-world topology properties.

#include <gtest/gtest.h>

#include <sstream>

#include "core/engine.h"
#include "protocols/continuous.h"
#include "protocols/oracle.h"
#include "protocols/wildfire.h"
#include "sim/churn.h"
#include "sim/trace.h"
#include "topology/algorithms.h"
#include "topology/generators.h"

namespace validity {
namespace {

using protocols::CombinerKind;
using protocols::QueryContext;
using protocols::WildfireProtocol;

QueryContext MakeContext(AggregateKind agg, CombinerKind combiner,
                         const std::vector<double>* values, double d_hat) {
  QueryContext ctx;
  ctx.aggregate = agg;
  ctx.combiner = combiner;
  ctx.values = values;
  ctx.d_hat = d_hat;
  return ctx;
}

// ---- Theorem 4.1: Snapshot Validity is unattainable ---------------------
//
// A chain h0..hk is queried; at time t a fresh chain of hosts joins at h1.
// No algorithm can reflect the joiners' values "as of time t" — here we
// show the executable consequence: the joiners are invisible to the
// completed query even though they were present from t onward, so no
// returned value corresponds to any network snapshot after t.

TEST(TheoremDemos, SnapshotValidityCounterexample) {
  topology::Graph g = *topology::MakeChain(5);
  std::vector<double> values(10, 1.0);  // room for joiners
  sim::Simulator sim(g, sim::SimOptions{});
  WildfireProtocol wf(&sim, MakeContext(AggregateKind::kCount,
                                        CombinerKind::kUnionCount, &values,
                                        12));
  sim.AttachProgram(&wf);
  wf.Start(0);
  // At t = 20 (mid-query: horizon 24), five hosts join in a chain at h1.
  sim.ScheduleAt(20.0, [&sim] {
    HostId anchor = 1;
    for (int i = 0; i < 5; ++i) {
      auto id = sim.AddHost({anchor});
      ASSERT_TRUE(id.ok());
      anchor = *id;
    }
  });
  sim.Run();
  ASSERT_TRUE(wf.result().declared);
  // Any snapshot taken in [20, 24] has 10 hosts; the query answers 5:
  // v != q(H_t) for every t in the latter part of the interval, and the
  // pre-join snapshots are equally unrepresentable for queries that
  // complete after joins in general.
  EXPECT_DOUBLE_EQ(wf.result().value, 5);
  EXPECT_EQ(sim.num_hosts(), 10u);
}

// ---- Theorem 4.2: Interval Validity is unattainable ----------------------
//
// Host h is 1-connected to hq through cut vertex h'; h' fails during the
// broadcast, before the query reaches it. h stays alive through the whole
// interval — h is in HI (and HU) — yet no algorithm can include its value.
// Single-Site Validity accepts this answer because h has no *stable path*:
// h is outside HC.

TEST(TheoremDemos, IntervalValidityCounterexampleAndSsvResolution) {
  // Chain: hq=0 - 1(h') - 2(h).
  topology::Graph g = *topology::MakeChain(3);
  std::vector<double> values{1, 1, 1};
  sim::Simulator sim(g, sim::SimOptions{});
  WildfireProtocol wf(&sim, MakeContext(AggregateKind::kCount,
                                        CombinerKind::kUnionCount, &values, 4));
  sim.AttachProgram(&wf);
  wf.Start(0);
  sim.ScheduleFailure(0.5, 1);  // h' dies before the query crosses it
  sim.Run();
  ASSERT_TRUE(wf.result().declared);
  EXPECT_DOUBLE_EQ(wf.result().value, 1);  // only hq itself

  // Interval Validity would demand v >= |HI| = 2 (hosts 0 and 2 lived the
  // whole interval) — impossible. The SSV oracle instead puts host 2
  // outside HC, so v = 1 is valid.
  protocols::OracleReport oracle = protocols::ComputeOracle(
      sim, 0, 0, 8, AggregateKind::kCount, values);
  EXPECT_EQ(oracle.hc.size(), 1u);
  EXPECT_TRUE(oracle.Contains(wf.result().value));
  EXPECT_TRUE(sim.AliveThroughout(2, 0, 8)) << "h was alive throughout";
}

// ---- Degenerate networks -------------------------------------------------

TEST(EdgeCases, SingleHostNetwork) {
  topology::Graph g(1);
  std::vector<double> values{42};
  sim::Simulator sim(g, sim::SimOptions{});
  WildfireProtocol wf(
      &sim, MakeContext(AggregateKind::kSum, CombinerKind::kUnionSum, &values,
                        1));
  sim.AttachProgram(&wf);
  wf.Start(0);
  sim.Run();
  ASSERT_TRUE(wf.result().declared);
  EXPECT_DOUBLE_EQ(wf.result().value, 42);
  EXPECT_EQ(sim.metrics().messages_sent(), 0u);
}

TEST(EdgeCases, QueryingHostWithAllNeighborsDead) {
  topology::Graph g = *topology::MakeStar(4);
  std::vector<double> values{7, 1, 2, 3};
  sim::Simulator sim(g, sim::SimOptions{});
  sim.FailHost(1);
  sim.FailHost(2);
  sim.FailHost(3);
  WildfireProtocol wf(&sim, MakeContext(AggregateKind::kMax, CombinerKind::kMax,
                                        &values, 2));
  sim.AttachProgram(&wf);
  wf.Start(0);
  sim.Run();
  EXPECT_DOUBLE_EQ(wf.result().value, 7);
}

TEST(EdgeCases, MaxEventsGuardTripsOnRunawayLoad) {
  topology::Graph g = *topology::MakeCycle(3);
  sim::SimOptions opts;
  opts.max_events = 100;
  sim::Simulator sim(g, opts);
  // A self-perpetuating event chain.
  std::function<void()> spin = [&] { sim.ScheduleAfter(1.0, spin); };
  sim.ScheduleAfter(1.0, spin);
  EXPECT_DEATH(sim.Run(), "event budget");
}

TEST(EdgeCases, ContinuousQuerySurvivesQuerierDeathGracefully) {
  topology::Graph g = *topology::MakeRandom(100, 5.0, 71);
  std::vector<double> values(100, 1.0);
  sim::Simulator sim(g, sim::SimOptions{});
  protocols::ContinuousWildfire cont(
      &sim, MakeContext(AggregateKind::kCount, CombinerKind::kUnionCount,
                        &values, 8),
      protocols::ContinuousOptions{/*window=*/20.0, /*num_windows=*/4});
  ASSERT_TRUE(cont.Start(0).ok());
  sim.ScheduleFailure(45.0, 0);  // the monitor dies during window 2
  sim.Run();
  EXPECT_TRUE(cont.results()[0].declared);
  EXPECT_TRUE(cont.results()[1].declared);
  EXPECT_FALSE(cont.results()[3].declared) << "no ghost answers after death";
}

// ---- Tracing --------------------------------------------------------------

TEST(TraceTest, RecordsSendsDeliveriesAndFailures) {
  topology::Graph g = *topology::MakeChain(3);
  std::vector<double> values{1, 1, 1};
  sim::Simulator sim(g, sim::SimOptions{});
  sim::TraceRecorder trace;
  sim.AttachTrace(&trace);
  WildfireProtocol wf(&sim, MakeContext(AggregateKind::kMax, CombinerKind::kMax,
                                        &values, 3));
  sim.AttachProgram(&wf);
  wf.Start(0);
  sim.ScheduleFailure(3.5, 2);
  sim.Run();

  EXPECT_GT(trace.CountOf(sim::TraceEventKind::kSend), 0u);
  EXPECT_GT(trace.CountOf(sim::TraceEventKind::kDeliver), 0u);
  EXPECT_EQ(trace.CountOf(sim::TraceEventKind::kFail), 1u);
  // Sends equal the metric; deliveries + drops account for each unicast.
  EXPECT_EQ(trace.CountOf(sim::TraceEventKind::kSend),
            sim.metrics().messages_sent());
  auto to_host1 = trace.Filter([](const sim::TraceEvent& e) {
    return e.kind == sim::TraceEventKind::kDeliver && e.dst == 1;
  });
  EXPECT_EQ(to_host1.size(), sim.metrics().ProcessedBy(1));

  std::ostringstream dump;
  trace.Dump(dump);
  EXPECT_NE(dump.str().find("fail"), std::string::npos);
}

TEST(TraceTest, CapacityBoundsMemory) {
  sim::TraceRecorder trace(/*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    trace.Record(sim::TraceEvent{sim::TraceEventKind::kSend, 0.0, 0, 1, 0});
  }
  EXPECT_EQ(trace.events().size(), 4u);
  EXPECT_EQ(trace.overflowed(), 6u);
  trace.Clear();
  EXPECT_TRUE(trace.events().empty());
}

// ---- Small-world generator -------------------------------------------------

TEST(SmallWorldTest, LatticeAndRewiredProperties) {
  // beta = 0: pure ring lattice, diameter ~ n/k.
  topology::Graph lattice = *topology::MakeSmallWorld(200, 4, 0.0, 81);
  EXPECT_TRUE(lattice.Validate().ok());
  EXPECT_EQ(topology::ConnectedComponents(lattice).count, 1u);
  uint32_t lattice_diameter = topology::ExactDiameter(lattice);
  EXPECT_GE(lattice_diameter, 40u);

  // beta = 0.2: a few shortcuts collapse the diameter (the small-world
  // effect the paper's §3.2 relies on).
  topology::Graph rewired = *topology::MakeSmallWorld(200, 4, 0.2, 81);
  EXPECT_TRUE(rewired.Validate().ok());
  EXPECT_EQ(topology::ConnectedComponents(rewired).count, 1u);
  uint32_t rewired_diameter = topology::ExactDiameter(rewired);
  EXPECT_LT(rewired_diameter, lattice_diameter / 2);

  EXPECT_FALSE(topology::MakeSmallWorld(100, 3, 0.1, 1).ok());  // odd k
  EXPECT_FALSE(topology::MakeSmallWorld(100, 4, 1.5, 1).ok());  // bad beta
}

TEST(SmallWorldTest, WildfireValidOnSmallWorld) {
  topology::Graph g = *topology::MakeSmallWorld(400, 6, 0.1, 82);
  std::vector<double> values(400, 1.0);
  Rng diam_rng(1);
  double d_hat = 2.0 * topology::EstimateDiameter(g, 3, &diam_rng) + 4;
  sim::Simulator sim(g, sim::SimOptions{});
  Rng churn_rng(82);
  sim::ScheduleChurn(&sim, sim::MakeUniformChurn(400, 0, 80, 0.0,
                                                 2 * d_hat, &churn_rng));
  WildfireProtocol wf(
      &sim, MakeContext(AggregateKind::kCount, CombinerKind::kUnionCount,
                        &values, d_hat));
  sim.AttachProgram(&wf);
  wf.Start(0);
  sim.Run();
  protocols::OracleReport oracle = protocols::ComputeOracle(
      sim, 0, 0, 2 * d_hat, AggregateKind::kCount, values);
  EXPECT_TRUE(oracle.Contains(wf.result().value));
}

}  // namespace
}  // namespace validity
