// QueryEngine public-API tests: end-to-end runs for every protocol, cost
// and validity reporting, error paths, determinism, and workload helpers.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/experiment.h"
#include "topology/generators.h"

namespace validity::core {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest()
      : graph_(*topology::MakeGnutellaLike(800, 91)),
        engine_(&graph_, MakeZipfValues(800, 91)) {}

  topology::Graph graph_;
  QueryEngine engine_;
};

TEST_F(EngineTest, AllProtocolsAnswerFailureFreeCount) {
  QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.exact_combiners = true;  // isolate protocol behaviour
  for (auto kind : {protocols::ProtocolKind::kAllReport,
                    protocols::ProtocolKind::kSpanningTree,
                    protocols::ProtocolKind::kDag,
                    protocols::ProtocolKind::kWildfire}) {
    RunConfig config;
    config.protocol = kind;
    auto result = engine_.Run(spec, config, 0);
    ASSERT_TRUE(result.ok()) << protocols::ProtocolKindName(kind);
    EXPECT_TRUE(result->declared);
    EXPECT_DOUBLE_EQ(result->value, 800) << protocols::ProtocolKindName(kind);
    EXPECT_TRUE(result->validity.within);
    EXPECT_GT(result->cost.messages, 0u);
    EXPECT_GT(result->cost.declared_at, 0.0);
    EXPECT_EQ(result->validity.hc_size, 800u);
    EXPECT_EQ(result->validity.hu_size, 800u);
  }
}

TEST_F(EngineTest, FmWildfireCountIsApproximatelyRight) {
  QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.fm_vectors = 32;
  RunConfig config;
  auto result = engine_.Run(spec, config, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->value / 800.0, 1.0, 0.6);
  EXPECT_TRUE(result->validity.within_slack);
}

TEST_F(EngineTest, DeterministicGivenSeeds) {
  QuerySpec spec;
  spec.aggregate = AggregateKind::kSum;
  RunConfig config;
  config.churn_removals = 100;
  config.churn_seed = 7;
  config.sketch_seed = 9;
  auto a = engine_.Run(spec, config, 0);
  auto b = engine_.Run(spec, config, 0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->value, b->value);
  EXPECT_EQ(a->cost.messages, b->cost.messages);
  EXPECT_EQ(a->validity.hc_size, b->validity.hc_size);
  config.churn_seed = 8;
  auto c = engine_.Run(spec, config, 0);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->validity.hc_size, c->validity.hc_size);
}

TEST_F(EngineTest, DHatDefaultsToDiameterPlusMargin) {
  QuerySpec spec;
  auto result = engine_.Run(spec, RunConfig{}, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->d_hat_used,
                   engine_.EstimatedDiameter() + kDefaultDiameterMargin);
  spec.d_hat = 30;
  auto manual = engine_.Run(spec, RunConfig{}, 0);
  ASSERT_TRUE(manual.ok());
  EXPECT_DOUBLE_EQ(manual->d_hat_used, 30);
  EXPECT_DOUBLE_EQ(manual->cost.declared_at, 60);
}

TEST_F(EngineTest, ErrorPaths) {
  QuerySpec spec;
  EXPECT_EQ(engine_.Run(spec, RunConfig{}, 5000).status().code(),
            StatusCode::kOutOfRange);
  spec.fm_vectors = 0;
  EXPECT_EQ(engine_.Run(spec, RunConfig{}, 0).status().code(),
            StatusCode::kInvalidArgument);
  spec.fm_vectors = 8;
  RunConfig config;
  config.churn_removals = 800;
  EXPECT_EQ(engine_.Run(spec, config, 0).status().code(),
            StatusCode::kInvalidArgument);
  config.churn_removals = 0;
  config.protocol = protocols::ProtocolKind::kRandomizedReport;
  spec.aggregate = AggregateKind::kMin;
  EXPECT_EQ(engine_.Run(spec, config, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(EngineTest, ChurnShrinksOracleLowerBound) {
  QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.exact_combiners = true;
  RunConfig config;
  config.churn_removals = 200;
  auto result = engine_.Run(spec, config, 0);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->validity.hc_size, 800u);
  EXPECT_EQ(result->validity.hu_size, 800u);
  EXPECT_TRUE(result->validity.within)
      << "wildfire with exact combiners must remain valid";
  EXPECT_LE(result->validity.q_low, result->value);
}

TEST_F(EngineTest, ExactFullMatchesWorkload) {
  QuerySpec spec;
  spec.aggregate = AggregateKind::kSum;
  auto result = engine_.Run(spec, RunConfig{}, 0);
  ASSERT_TRUE(result.ok());
  double sum = 0;
  for (double v : engine_.values()) sum += v;
  EXPECT_DOUBLE_EQ(result->exact_full, sum);
}

TEST(MakeZipfValuesTest, RangeAndDeterminism) {
  auto a = MakeZipfValues(1000, 5);
  auto b = MakeZipfValues(1000, 5);
  EXPECT_EQ(a, b);
  for (double v : a) {
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 500);
    EXPECT_EQ(v, std::floor(v));
  }
}

TEST(ExperimentTest, StandardLineupShape) {
  auto lineup = StandardLineup();
  ASSERT_EQ(lineup.size(), 4u);
  EXPECT_EQ(lineup[0].label, "spanning-tree");
  EXPECT_EQ(lineup[1].options.dag.max_parents, 2u);
  EXPECT_EQ(lineup[2].options.dag.max_parents, 3u);
  EXPECT_EQ(lineup[3].label, "wildfire");
}

TEST(ExperimentTest, ChurnSweepProducesConsistentCells) {
  topology::Graph g = *topology::MakeGnutellaLike(600, 92);
  QueryEngine engine(&g, MakeZipfValues(600, 92));
  QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.exact_combiners = true;
  ChurnSweepOptions opts;
  opts.trials = 3;
  auto cells = RunChurnSweep(engine, spec, 0, StandardLineup(), {0, 150},
                             opts);
  ASSERT_EQ(cells.size(), 8u);
  for (const auto& cell : cells) {
    EXPECT_EQ(cell.value.n, 3u);
    if (cell.removals == 0) {
      EXPECT_DOUBLE_EQ(cell.value.mean, 600);
      EXPECT_DOUBLE_EQ(cell.within_fraction, 1.0);
    } else {
      EXPECT_LE(cell.value.mean, 600);
      EXPECT_GT(cell.oracle_high.mean, cell.oracle_low.mean);
    }
    if (cell.protocol == "wildfire") {
      EXPECT_DOUBLE_EQ(cell.within_fraction, 1.0)
          << "wildfire (exact combiners) is valid at R=" << cell.removals;
    }
  }
  // Wildfire pays more messages than the tree (the price of validity).
  double tree_msgs = 0;
  double wf_msgs = 0;
  for (const auto& cell : cells) {
    if (cell.removals != 0) continue;
    if (cell.protocol == "spanning-tree") tree_msgs = cell.messages.mean;
    if (cell.protocol == "wildfire") wf_msgs = cell.messages.mean;
  }
  EXPECT_GT(wf_msgs, tree_msgs);
}

}  // namespace
}  // namespace validity::core
