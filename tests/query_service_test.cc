// QueryService correctness: the open-arrival determinism contract
// (docs/SERVICE.md).
//
//  (a) A 24-arrival trace of staggered queries (every protocol including
//      gossip, both combiner families, deferred admissions) completes with
//      every result bit-identical to (1) a solo run of the same query
//      issued at the same effective start time and (2) the trace replayed
//      into a fresh service.
//  (b) Admission: lanes never exceed max_in_flight, deferred queries start
//      strictly in arrival order, and a deferred query still matches its
//      solo run at the (later) time it actually started.
//  (c) Cancel and Reset mid-flight: surviving lanes stay byte-identical to
//      their solo runs while others are torn down around them, and a Reset
//      timeline serves fresh queries bit-identically (the EventQueue::Clear
//      / Simulator::Reset drain path under a live service workload).
//  (d) Submit validation mirrors RunConcurrent's shared-timeline rules.
//  (e) SessionPool lanes serve concurrent per-thread services whose results
//      all match the solo reference.

#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/query_service.h"
#include "fingerprint_matrix.h"
#include "sim/session.h"
#include "topology/generators.h"

namespace validity::core {
namespace {

using protocols::ProtocolKind;

class QueryServiceTest : public ::testing::Test {
 protected:
  QueryServiceTest()
      : graph_(*topology::MakeGnutellaLike(300, 7)),
        engine_(&graph_, MakeZipfValues(300, 7)) {}

  /// The solo column: the query alone on a fresh session, issued at
  /// `start_at` on an otherwise identical timeline.
  QueryResult Solo(const Arrival& a, SimTime start_at) {
    sim::SimulatorSession session(&graph_, a.config.sim_options);
    QueryEngine::ConcurrentQuery q;
    q.spec = a.spec;
    q.config = a.config;
    q.hq = a.hq;
    q.start_at = start_at;
    auto solo = engine_.RunConcurrent(&session, {q});
    EXPECT_TRUE(solo.ok()) << solo.status().message();
    return (*solo)[0];
  }

  topology::Graph graph_;
  QueryEngine engine_;
};

/// 24 arrivals covering every protocol (gossip at 10 rounds), both combiner
/// families, all aggregates, distinct sketch seeds and querying hosts, and
/// submit times that collide, interleave, and stagger off the tick comb.
std::vector<Arrival> MixedArrivals() {
  const ProtocolKind kinds[] = {
      ProtocolKind::kWildfire,   ProtocolKind::kAllReport,
      ProtocolKind::kSpanningTree, ProtocolKind::kDag,
      ProtocolKind::kRandomizedReport, ProtocolKind::kGossip};
  const AggregateKind aggs[] = {AggregateKind::kCount, AggregateKind::kSum,
                                AggregateKind::kMax, AggregateKind::kCount};
  std::vector<Arrival> arrivals;
  for (int i = 0; i < 24; ++i) {
    Arrival a;
    a.config.protocol = kinds[i % 6];
    a.spec.aggregate = aggs[(i / 6) % 4];
    // RANDOMIZED-REPORT only serves count/sum; min/max ride the others.
    if (a.config.protocol == ProtocolKind::kRandomizedReport &&
        a.spec.aggregate == AggregateKind::kMax) {
      a.spec.aggregate = AggregateKind::kSum;
    }
    a.spec.exact_combiners = (i % 3 == 0);
    a.config.protocol_options.gossip.rounds = 10;
    a.config.sketch_seed = 100 + i;
    a.hq = static_cast<HostId>((i * 37) % 300);
    // Ties at 0 and 6.0, fractional staggering elsewhere.
    a.submit_time = (i < 4) ? 0.0 : (i % 5 == 0 ? 6.0 : i * 1.75);
    arrivals.push_back(a);
  }
  return arrivals;
}

TEST_F(QueryServiceTest, LiveReplayAndSoloAreBitIdenticalAcrossTheTrace) {
  std::vector<Arrival> arrivals = MixedArrivals();
  ASSERT_GE(arrivals.size(), 20u);

  ServiceOptions options;  // failure-free shared timeline
  options.max_in_flight = 3;  // forces deferrals among the t=0 burst
  QueryService service(&engine_, options);
  std::vector<QueryService::QueryId> ids;
  for (const Arrival& a : arrivals) {
    auto id = service.Submit(a.submit_time, a.spec, a.config, a.hq);
    ASSERT_TRUE(id.ok()) << id.status().message();
    ids.push_back(id.value());
  }
  service.Drain();
  EXPECT_EQ(service.completed(), arrivals.size());
  EXPECT_LE(service.peak_in_flight(), options.max_in_flight);

  std::map<QueryService::QueryId, QueryService::Completion> live;
  QueryService::Completion done;
  while (service.Poll(&done)) live[done.id] = done;
  ASSERT_EQ(live.size(), arrivals.size());

  // Column 1: solo at the effective start time (== submit_time unless the
  // query waited in the deferred queue).
  for (size_t i = 0; i < arrivals.size(); ++i) {
    const QueryService::Completion& c = live[ids[i]];
    EXPECT_EQ(c.submitted_at, arrivals[i].submit_time);
    EXPECT_GE(c.started_at, c.submitted_at);
    ExpectIdentical(Solo(arrivals[i], c.started_at), c.result,
                    "service-vs-solo");
  }

  // Column 2: the recorded trace replayed into a fresh service.
  ASSERT_EQ(service.trace().arrivals.size(), arrivals.size());
  auto replayed = QueryService::Replay(engine_, options, service.trace());
  ASSERT_TRUE(replayed.ok()) << replayed.status().message();
  ASSERT_EQ(replayed->size(), arrivals.size());
  for (size_t i = 0; i < arrivals.size(); ++i) {
    const QueryService::Completion& r = (*replayed)[i];
    const QueryService::Completion& c = live[ids[i]];
    EXPECT_EQ(r.started_at, c.started_at) << "replay changed admission";
    EXPECT_EQ(r.retired_at, c.retired_at);
    ExpectIdentical(c.result, r.result, "service-vs-replay");
  }
}

TEST_F(QueryServiceTest, ChurnedTimelineMatchesSoloAndReplay) {
  // One churning timeline shared by queries arriving before, during, and
  // after the churn window. Everything must agree on hq and D-hat (Submit
  // enforces it), exactly like a churned concurrent batch.
  Arrival base;
  base.spec.aggregate = AggregateKind::kCount;
  base.config.churn_removals = 60;
  base.config.churn_seed = 9;
  base.hq = 0;

  ServiceOptions options = ServiceOptionsFor(base.spec, base.config, base.hq);
  QueryService service(&engine_, options);
  const double horizon = 2.0 * service.churn_d_hat();

  std::vector<Arrival> arrivals;
  const ProtocolKind kinds[] = {ProtocolKind::kWildfire, ProtocolKind::kDag,
                                ProtocolKind::kSpanningTree,
                                ProtocolKind::kWildfire,
                                ProtocolKind::kAllReport};
  const double times[] = {0.0, 0.0, horizon * 0.4, horizon + 3.0,
                          horizon * 2.5};
  for (int i = 0; i < 5; ++i) {
    Arrival a = base;
    a.config.protocol = kinds[i];
    a.config.sketch_seed = 40 + i;
    a.submit_time = times[i];
    arrivals.push_back(a);
  }

  std::vector<QueryService::QueryId> ids;
  for (const Arrival& a : arrivals) {
    auto id = service.Submit(a.submit_time, a.spec, a.config, a.hq);
    ASSERT_TRUE(id.ok()) << id.status().message();
    ids.push_back(id.value());
  }
  service.Drain();

  std::map<QueryService::QueryId, QueryService::Completion> live;
  QueryService::Completion done;
  while (service.Poll(&done)) live[done.id] = done;
  ASSERT_EQ(live.size(), arrivals.size());
  for (size_t i = 0; i < arrivals.size(); ++i) {
    ExpectIdentical(Solo(arrivals[i], live[ids[i]].started_at),
                    live[ids[i]].result, "churned-service-vs-solo");
  }

  auto replayed = QueryService::Replay(engine_, options, service.trace());
  ASSERT_TRUE(replayed.ok()) << replayed.status().message();
  for (size_t i = 0; i < arrivals.size(); ++i) {
    ExpectIdentical(live[ids[i]].result, (*replayed)[i].result,
                    "churned-service-vs-replay");
  }
  // A query started after the churn tail sees fewer unreachable hosts than
  // the t=0 ones (its validity window anchors at its own start).
  EXPECT_LT(live[ids[3]].result.validity.hu_size,
            live[ids[0]].result.validity.hu_size);
}

TEST_F(QueryServiceTest, AdmissionCapsLanesAndDefersInArrivalOrder) {
  ServiceOptions options;
  options.max_in_flight = 2;
  QueryService service(&engine_, options);

  std::vector<QueryService::QueryId> ids;
  for (int i = 0; i < 6; ++i) {
    QuerySpec spec;
    spec.aggregate = AggregateKind::kCount;
    RunConfig config;
    config.sketch_seed = 10 + i;
    auto id = service.Submit(0.0, spec, config, 0);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  // The t=0 burst admits two lanes synchronously; the rest defer.
  EXPECT_EQ(service.in_flight(), 2u);
  EXPECT_EQ(service.deferred(), 4u);

  service.Drain();
  EXPECT_EQ(service.peak_in_flight(), 2u);
  EXPECT_EQ(service.deferred(), 0u);
  EXPECT_EQ(service.completed(), 6u);

  std::map<QueryService::QueryId, QueryService::Completion> live;
  QueryService::Completion done;
  while (service.Poll(&done)) live[done.id] = done;
  // Deferred queries started strictly in arrival order, each when a lane
  // retired, and each still matches its solo run at that later start.
  for (size_t i = 1; i < ids.size(); ++i) {
    EXPECT_GE(live[ids[i]].started_at, live[ids[i - 1]].started_at);
  }
  EXPECT_GT(live[ids[5]].started_at, 0.0);
  for (size_t i = 0; i < ids.size(); ++i) {
    Arrival a;
    a.spec.aggregate = AggregateKind::kCount;
    a.config.sketch_seed = 10 + static_cast<uint64_t>(i);
    a.hq = 0;
    ExpectIdentical(Solo(a, live[ids[i]].started_at), live[ids[i]].result,
                    "deferred-vs-solo");
  }
}

TEST_F(QueryServiceTest, CancelTearsDownLanesWithoutDisturbingSurvivors) {
  ServiceOptions options;
  options.max_in_flight = 4;
  QueryService service(&engine_, options);

  QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  RunConfig config;
  std::vector<QueryService::QueryId> ids;
  for (int i = 0; i < 3; ++i) {
    config.sketch_seed = 60 + i;
    auto id = service.Submit(0.0, spec, config, 0);
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value());
  }
  // A fourth query scheduled for later, cancelled before it arrives.
  config.sketch_seed = 99;
  auto scheduled = service.Submit(50.0, spec, config, 0);
  ASSERT_TRUE(scheduled.ok());

  // Cancel one running lane mid-flight (its traffic is dropped from here
  // on) and the scheduled query; the other lanes keep running around the
  // teardown.
  service.RunUntil(2.0);
  ASSERT_TRUE(service.Cancel(ids[1]).ok());
  ASSERT_TRUE(service.Cancel(scheduled.value()).ok());
  EXPECT_EQ(service.Cancel(ids[1]).code(), StatusCode::kFailedPrecondition);
  service.Drain();

  EXPECT_EQ(service.completed(), 2u);
  EXPECT_EQ(service.cancelled(), 2u);
  std::map<QueryService::QueryId, QueryService::Completion> live;
  QueryService::Completion done;
  while (service.Poll(&done)) live[done.id] = done;
  ASSERT_EQ(live.count(ids[0]), 1u);
  ASSERT_EQ(live.count(ids[2]), 1u);
  EXPECT_EQ(live.count(ids[1]), 0u);
  // Survivors are byte-identical to their solo runs.
  Arrival a0;
  a0.spec = spec;
  a0.config.sketch_seed = 60;
  ExpectIdentical(Solo(a0, 0.0), live[ids[0]].result, "survivor-0");
  Arrival a2;
  a2.spec = spec;
  a2.config.sketch_seed = 62;
  ExpectIdentical(Solo(a2, 0.0), live[ids[2]].result, "survivor-2");

  EXPECT_EQ(service.Cancel(12345).code(), StatusCode::kNotFound);
}

TEST_F(QueryServiceTest, ResetMidFlightRewindsTheTimelineForFreshQueries) {
  // The EventQueue::Clear / Simulator::Reset drain path under a live
  // service workload: pending arrivals, running lanes with in-flight slab
  // messages, and scheduled retirements are all abandoned mid-flight.
  ServiceOptions options;
  options.max_in_flight = 4;
  QueryService service(&engine_, options);

  QuerySpec spec;
  spec.aggregate = AggregateKind::kSum;
  RunConfig config;
  for (int i = 0; i < 4; ++i) {
    config.sketch_seed = 70 + i;
    ASSERT_TRUE(service.Submit(i * 1.5, spec, config, 0).ok());
  }
  service.RunUntil(3.25);  // lanes mid-flight, arrivals still pending
  EXPECT_GT(service.in_flight(), 0u);
  const uint64_t epoch_before = service.session().epoch();

  service.Reset();
  EXPECT_EQ(service.Now(), 0.0);
  EXPECT_EQ(service.in_flight(), 0u);
  EXPECT_EQ(service.deferred(), 0u);
  EXPECT_TRUE(service.trace().arrivals.empty());
  EXPECT_GT(service.session().epoch(), epoch_before);

  // The rewound timeline serves a fresh query bit-identically to a fresh
  // engine run (warm parked protocols and metrics lanes notwithstanding).
  config.sketch_seed = 5;
  auto id = service.Submit(0.0, spec, config, 0);
  ASSERT_TRUE(id.ok());
  service.Drain();
  QueryService::Completion done;
  ASSERT_TRUE(service.Poll(&done));
  auto fresh = engine_.Run(spec, config, 0);
  ASSERT_TRUE(fresh.ok());
  ExpectIdentical(*fresh, done.result, "post-reset-vs-fresh");
}

TEST_F(QueryServiceTest, SubmitValidatesTheSharedTimeline) {
  ServiceOptions options;
  options.churn_removals = 50;
  options.max_events = 100000;
  QueryService service(&engine_, options);

  QuerySpec spec;
  RunConfig good;
  good.churn_removals = 50;
  ASSERT_TRUE(service.Submit(0.0, spec, good, 0).ok());

  RunConfig wrong_churn = good;
  wrong_churn.churn_removals = 60;
  EXPECT_EQ(service.Submit(1.0, spec, wrong_churn, 0).status().code(),
            StatusCode::kInvalidArgument);
  RunConfig wrong_seed = good;
  wrong_seed.churn_seed = 2;
  EXPECT_EQ(service.Submit(1.0, spec, wrong_seed, 0).status().code(),
            StatusCode::kInvalidArgument);
  RunConfig wrong_fault = good;
  wrong_fault.fault.drop_rate = 0.1;
  EXPECT_EQ(service.Submit(1.0, spec, wrong_fault, 0).status().code(),
            StatusCode::kInvalidArgument);
  // Churned queries must share the timeline's protected host...
  EXPECT_EQ(service.Submit(1.0, spec, good, 7).status().code(),
            StatusCode::kInvalidArgument);
  // ...and its D-hat.
  QuerySpec wrong_dhat = spec;
  wrong_dhat.d_hat = 3.0;
  EXPECT_EQ(service.Submit(1.0, wrong_dhat, good, 0).status().code(),
            StatusCode::kInvalidArgument);
  // The timeline owns the event budget: equal or unset passes, else reject.
  RunConfig budget = good;
  budget.sim_options.max_events = 100000;
  EXPECT_TRUE(service.Submit(1.0, spec, budget, 0).ok());
  budget.sim_options.max_events = 7;
  EXPECT_EQ(service.Submit(1.0, spec, budget, 0).status().code(),
            StatusCode::kInvalidArgument);
  // Structural mismatch against the session (wireless vs point-to-point).
  RunConfig wireless = good;
  wireless.sim_options.medium = sim::MediumKind::kWireless;
  EXPECT_EQ(service.Submit(1.0, spec, wireless, 0).status().code(),
            StatusCode::kInvalidArgument);
  // Submissions cannot arrive in the past.
  service.RunUntil(10.0);
  EXPECT_EQ(service.Submit(9.0, spec, good, 0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(QueryServiceTest, CompletionCallbackFiresBeforePollAndMayChain) {
  ServiceOptions options;
  QueryService service(&engine_, options);
  QuerySpec spec;
  RunConfig config;

  std::vector<QueryService::QueryId> callback_order;
  bool chained = false;
  service.set_on_completion([&](const QueryService::Completion& c) {
    callback_order.push_back(c.id);
    if (!chained) {
      chained = true;
      RunConfig follow = config;
      follow.sketch_seed = 123;
      auto id = service.Submit(service.Now(), spec, follow, 0);
      EXPECT_TRUE(id.ok()) << id.status().message();
    }
  });
  ASSERT_TRUE(service.Submit(0.0, spec, config, 0).ok());
  service.Drain();

  // The chained follow-up ran to completion on the same timeline.
  ASSERT_EQ(callback_order.size(), 2u);
  EXPECT_EQ(service.completed(), 2u);
  QueryService::Completion first, second;
  ASSERT_TRUE(service.Poll(&first));
  ASSERT_TRUE(service.Poll(&second));
  EXPECT_EQ(first.id, callback_order[0]);
  EXPECT_EQ(second.id, callback_order[1]);
  // The follow-up matches its solo run at the time it started.
  Arrival follow;
  follow.spec = spec;
  follow.config = config;
  follow.config.sketch_seed = 123;
  follow.hq = 0;
  ExpectIdentical(Solo(follow, second.started_at), second.result,
                  "chained-vs-solo");
}

TEST_F(QueryServiceTest, SessionPoolLanesServeConcurrentServices) {
  // One pool, four worker threads, each borrowing a lane for its own
  // service. All results must match the solo reference — no cross-lane
  // interference, no shared mutable state beyond the pool's handout mutex.
  sim::SessionPool pool(&graph_, sim::SimOptions{});
  QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;

  auto fresh = engine_.Run(spec, RunConfig{}, 0);
  ASSERT_TRUE(fresh.ok());

  constexpr int kWorkers = 4;
  constexpr int kRounds = 3;
  std::vector<QueryResult> results(kWorkers * kRounds);
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      for (int r = 0; r < kRounds; ++r) {
        sim::SessionLease lease(&pool);
        ServiceOptions options;
        QueryService service(&engine_, lease.get(), options);
        auto id = service.Submit(0.0, spec, RunConfig{}, 0);
        ASSERT_TRUE(id.ok());
        service.Drain();
        QueryService::Completion done;
        ASSERT_TRUE(service.Poll(&done));
        results[w * kRounds + r] = done.result;
      }
    });
  }
  for (auto& t : workers) t.join();
  // Lanes were shared across rounds, never across concurrent borrowers.
  EXPECT_LE(pool.size(), static_cast<size_t>(kWorkers));
  for (const QueryResult& r : results) {
    ExpectIdentical(*fresh, r, "pool-service-vs-fresh");
  }
}

TEST_F(QueryServiceTest, ServiceOptionsForDerivesTheTimelineProfile) {
  QuerySpec spec;
  spec.d_hat = 9.0;
  RunConfig config;
  config.churn_removals = 30;
  config.churn_seed = 4;
  config.fault.drop_rate = 0.2;
  config.sim_options.max_events = 500;
  ServiceOptions options = ServiceOptionsFor(spec, config, 11);
  EXPECT_EQ(options.churn_removals, 30u);
  EXPECT_EQ(options.churn_seed, 4u);
  EXPECT_EQ(options.churn_d_hat, 9.0);
  EXPECT_EQ(options.churn_hq, 11u);
  EXPECT_EQ(options.max_events, 500u);
  EXPECT_TRUE(options.fault == config.fault);
}

}  // namespace
}  // namespace validity::core
