// Locks the tentpole property of the send path: once a query's pools and
// calendar have warmed up, WILDFIRE and GOSSIP steady-state message traffic
// performs ZERO heap allocations — bodies are recycled through typed pools,
// small payloads travel inline in the message word, deliveries are typed
// slab events.
//
// Mechanism: this test binary overrides global operator new/delete with
// counting versions. Each scenario runs the first part of a query to warm
// every free list (state pages, pool bodies, slab slots, calendar buckets),
// snapshots the allocation counter, runs the remaining traffic, and
// requires the counter to be unchanged while asserting that traffic did
// flow in the measured window.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "protocols/gossip.h"
#include "protocols/wildfire.h"
#include "sim/simulator.h"
#include "topology/generators.h"

namespace {
std::atomic<uint64_t> g_allocations{0};
}  // namespace

void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void* operator new[](size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace validity::protocols {
namespace {

QueryContext MakeContext(AggregateKind agg, CombinerKind combiner,
                         const std::vector<double>* values, double d_hat) {
  QueryContext ctx;
  ctx.aggregate = agg;
  ctx.combiner = combiner;
  ctx.values = values;
  ctx.d_hat = d_hat;
  ctx.fm.num_vectors = 16;
  ctx.sketch_seed = 7;
  return ctx;
}

TEST(AllocFreeTest, WildfireFmSteadyStateSendsAreAllocationFree) {
  topology::Graph g = *topology::MakeRandom(600, 5.0, 11);
  std::vector<double> values(600, 1.0);
  sim::Simulator sim(g, sim::SimOptions{});
  WildfireProtocol wf(&sim, MakeContext(AggregateKind::kCount,
                                        CombinerKind::kFmCount, &values, 12));
  sim.AttachProgram(&wf);
  wf.Start(0);
  // Warm-up: the broadcast wave (diameter ~5 ticks) activates every host
  // (state pages, known-version vectors) and the convergecast's busiest
  // tick (t = 9 for this seed) sizes the body pool, message slab, and
  // calendar skeleton. Several thousand sketch floods remain after.
  sim.RunUntil(9.5);
  uint64_t sent_before = sim.metrics().messages_sent();
  size_t bodies_before = wf.aggregate_bodies_allocated();
  uint64_t allocs_before = g_allocations.load(std::memory_order_relaxed);

  sim.Run();

  uint64_t allocs_after = g_allocations.load(std::memory_order_relaxed);
  uint64_t sent_after = sim.metrics().messages_sent();
  ASSERT_TRUE(wf.result().declared);
  EXPECT_GT(sent_after, sent_before + 100)
      << "steady-state window carried too little traffic to be meaningful";
  EXPECT_EQ(allocs_after, allocs_before)
      << "steady-state sends touched the allocator";
  EXPECT_EQ(wf.aggregate_bodies_allocated(), bodies_before)
      << "the body pool grew past its warm-up high-water mark";
}

TEST(AllocFreeTest, WildfireScalarSendsCarryAggregatesInline) {
  topology::Graph g = *topology::MakeRandom(400, 5.0, 12);
  std::vector<double> values(400);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>((i * 37) % 500);
  }
  sim::Simulator sim(g, sim::SimOptions{});
  WildfireProtocol wf(
      &sim, MakeContext(AggregateKind::kMax, CombinerKind::kMax, &values, 16));
  sim.AttachProgram(&wf);
  wf.Start(0);
  sim.Run();
  ASSERT_TRUE(wf.result().declared);
  // Scalar aggregates ride the inline payload: no convergecast body is ever
  // allocated, warm or cold.
  EXPECT_EQ(wf.aggregate_bodies_allocated(), 0u);
}

TEST(AllocFreeTest, GridActivationKeepsKnownVersionsInline) {
  // Moore-grid degree (8) fits KnownVersionArray's inline capacity, and a
  // scalar (kMax) combiner needs no sketch buffer — so after a first query
  // warmed the pages, slab, and calendar, a *whole* second query on a reset
  // simulator performs zero heap allocations, activations included. Before
  // the known-version fold-in, every activated host allocated one
  // per-neighbor version vector.
  static_assert(KnownVersionArray::kInlineSlots >= 8,
                "Moore-grid degree must fit inline");
  topology::Graph g = *topology::MakeGrid(40);  // 1600 hosts, degree <= 8
  std::vector<double> values(g.num_hosts());
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>((i * 41) % 500);
  }
  sim::Simulator sim(g, sim::SimOptions{});
  QueryContext ctx =
      MakeContext(AggregateKind::kMax, CombinerKind::kMax, &values, 60);
  WildfireProtocol wf(&sim, ctx);
  sim.AttachProgram(&wf);
  wf.Start(0);
  sim.Run();
  ASSERT_TRUE(wf.result().declared);
  EXPECT_EQ(wf.aggregate_bodies_allocated(), 0u);

  // Session-style second query: epoch reset + re-arm, then the identical
  // query end to end with the allocator off limits.
  sim.Reset();
  wf.ResetForQuery(ctx, WildfireOptions{});
  sim.AttachProgram(&wf);
  uint64_t allocs_before = g_allocations.load(std::memory_order_relaxed);
  wf.Start(0);
  sim.Run();
  uint64_t allocs = g_allocations.load(std::memory_order_relaxed) -
                    allocs_before;
  ASSERT_TRUE(wf.result().declared);
  EXPECT_GT(sim.metrics().messages_sent(), 1000u);
  // ~1600 activations, tens of thousands of sends: nothing per host or per
  // message may allocate. A handful of recycled calendar buckets regrowing
  // their capacity is the same O(1) slack the gossip drain-phase bound
  // allows.
  EXPECT_LE(allocs, 16u)
      << "a warmed session query (scalar combiner, inline degree) must not "
         "allocate per activated host";
}

TEST(AllocFreeTest, GossipSteadyStateRoundsAreAllocationFree) {
  topology::Graph g = *topology::MakeRandom(500, 5.0, 13);
  std::vector<double> values(500, 2.0);
  sim::Simulator sim(g, sim::SimOptions{});
  GossipOptions gopts;
  gopts.rounds = 60;
  GossipProtocol gossip(
      &sim,
      MakeContext(AggregateKind::kCount, CombinerKind::kFmCount, &values, 10),
      gopts);
  sim.AttachProgram(&gossip);
  gossip.Start(0);
  // Warm-up: the activation flood plus enough rounds for every calendar
  // bucket in the two-bucket steady-state rotation to reach full capacity.
  sim.RunUntil(15.0);
  uint64_t sent_before = sim.metrics().messages_sent();
  uint64_t allocs_before = g_allocations.load(std::memory_order_relaxed);

  // Steady state proper: rounds 15..59, tens of thousands of pushes. (The
  // very tail of the run — declaration, stragglers' final rounds draining
  // into a shrinking calendar — is measured separately below.)
  sim.RunUntil(59.75);

  uint64_t allocs_after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_GT(sim.metrics().messages_sent(), sent_before + 10000)
      << "steady-state window carried too little traffic to be meaningful";
  EXPECT_EQ(allocs_after, allocs_before)
      << "steady-state gossip rounds touched the allocator";

  // The drain phase may recycle a small calendar bucket into a large slot
  // once, but must stay O(1) — nothing per send.
  uint64_t tail_before = g_allocations.load(std::memory_order_relaxed);
  sim.Run();
  uint64_t tail_allocs =
      g_allocations.load(std::memory_order_relaxed) - tail_before;
  ASSERT_TRUE(gossip.result().declared);
  EXPECT_LE(tail_allocs, 16u) << "drain phase allocations must be O(1)";
}

}  // namespace
}  // namespace validity::protocols
