// Service stress: 1,000 query arrivals on a ~10^5-host implicit grid with
// timeline churn and lossy links (ISSUE satellite):
//
//  - admission never exceeds the lane cap (peak_in_flight == max_in_flight),
//  - deferred queries run strictly in arrival order,
//  - every query completes and declares,
//  - resident simulator bytes stay O(touched): proportional to the queried
//    disc + churn pages, not to the 1,000 arrivals and not to the network.

#include <gtest/gtest.h>

#include <vector>

#include "core/engine.h"
#include "core/query_service.h"
#include "topology/topology.h"

namespace validity::core {
namespace {

constexpr uint32_t kSide = 316;  // 99,856 hosts
constexpr HostId kCenter = (kSide / 2) * kSide + kSide / 2;

ServiceOptions StressOptions() {
  ServiceOptions options;
  options.max_in_flight = 8;
  options.churn_removals = 64;
  options.churn_seed = 17;
  options.churn_d_hat = 6.0;
  options.churn_hq = kCenter;
  options.fault.seed = 3;
  options.fault.drop_rate = 0.05;
  return options;
}

Arrival StressArrival(uint64_t i) {
  Arrival a;
  a.spec.aggregate = AggregateKind::kCount;
  a.spec.d_hat = 6.0;  // disc-bounded: the flood stays near the center
  a.config.protocol = protocols::ProtocolKind::kWildfire;
  a.config.compute_validity = false;  // the oracle is O(network); skip it
  a.config.churn_removals = 64;
  a.config.churn_seed = 17;
  a.config.fault.seed = 3;
  a.config.fault.drop_rate = 0.05;
  a.config.sketch_seed = 1000 + i;
  a.hq = kCenter;
  // A 100-arrival burst at t=0 (12.5x the lane cap), then a steady trickle.
  a.submit_time = i < 100 ? 0.0 : (i - 100) * 0.5;
  return a;
}

/// Runs `n` stress arrivals through a fresh service; returns (service
/// resident bytes after drain) through `resident` and asserts the
/// admission/ordering invariants.
void RunStress(const QueryEngine& engine, uint64_t n, size_t* resident) {
  QueryService service(&engine, StressOptions());
  std::vector<QueryService::QueryId> ids;
  ids.reserve(n);
  uint64_t burst = 0;
  for (uint64_t i = 0; i < n; ++i) {
    Arrival a = StressArrival(i);
    if (a.submit_time == 0.0) ++burst;
    auto id = service.Submit(a.submit_time, a.spec, a.config, a.hq);
    ASSERT_TRUE(id.ok()) << id.status().message();
    ids.push_back(id.value());
  }
  // The t=0 burst: the cap admitted exactly max_in_flight lanes, the rest
  // of the burst deferred.
  EXPECT_EQ(service.in_flight(), 8u);
  EXPECT_EQ(service.deferred(), burst - 8);

  service.Drain();
  EXPECT_EQ(service.completed(), n);
  EXPECT_EQ(service.peak_in_flight(), 8u);
  EXPECT_EQ(service.deferred(), 0u);
  EXPECT_EQ(service.in_flight(), 0u);

  std::vector<SimTime> started(n, -1.0);
  QueryService::Completion done;
  uint64_t polled = 0;
  while (service.Poll(&done)) {
    ++polled;
    EXPECT_TRUE(done.result.declared);
    EXPECT_GT(done.result.value, 0.0);
    for (uint64_t i = 0; i < n; ++i) {
      if (ids[i] == done.id) {
        started[i] = done.started_at;
        break;
      }
    }
  }
  EXPECT_EQ(polled, n);
  // Deferred queries were admitted strictly in arrival order.
  for (uint64_t i = 1; i < n; ++i) {
    ASSERT_GE(started[i], 0.0) << "query " << i << " never completed";
    EXPECT_GE(started[i], started[i - 1]) << "admission out of order at " << i;
  }
  *resident = service.session().simulator().ResidentTableBytes();
}

TEST(ServiceStressTest, ThousandArrivalsOnAHundredThousandHostGrid) {
  QueryEngine engine(*topology::Topology::Grid(kSide),
                     std::vector<double>(kSide * kSide, 1.0));

  // Baseline: the same timeline serving only a handful of arrivals. The
  // full run touches the same disc and the same churn pages, so its
  // resident footprint must stay within a small factor of the baseline —
  // O(touched), not O(arrivals) and not O(network).
  size_t baseline_resident = 0;
  RunStress(engine, 10, &baseline_resident);
  ASSERT_GT(baseline_resident, 0u);

  size_t full_resident = 0;
  RunStress(engine, 1000, &full_resident);
  EXPECT_LT(full_resident, baseline_resident * 5 + (512u << 10))
      << "resident tables grew with arrival count: " << full_resident
      << " bytes vs baseline " << baseline_resident;
}

}  // namespace
}  // namespace validity::core
