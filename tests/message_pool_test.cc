// Unit tests for the message-body pool, BodyRef refcounting, the inline
// payload area, and the pool-orphaning lifetime contract (bodies in flight
// when their owning protocol dies must stay valid until the simulator
// releases them).

#include <gtest/gtest.h>

#include <memory>

#include "protocols/wildfire.h"
#include "sim/message.h"
#include "sim/simulator.h"
#include "topology/generators.h"

namespace validity::sim {
namespace {

struct PooledTestBody : MessageBody {
  size_t SizeBytes() const override { return 8; }
  int tag = 0;
  static int live;
  PooledTestBody() { ++live; }
  ~PooledTestBody() override { --live; }
};
int PooledTestBody::live = 0;

TEST(BodyPoolTest, AcquireRecyclesAfterLastRefDrops) {
  BodyPool<PooledTestBody> pool;
  PooledTestBody* a = pool.Acquire();
  a->tag = 1;
  {
    BodyRef ref(a);
    BodyRef copy = ref;  // two refs on the same body
    EXPECT_EQ(pool.total_allocated(), 1u);
  }
  // Both refs dropped: the body is back on the free list and Acquire must
  // hand out the same object instead of allocating.
  PooledTestBody* b = pool.Acquire();
  EXPECT_EQ(a, b);
  EXPECT_EQ(pool.total_allocated(), 1u);
  BodyRef hold(b);
}

TEST(BodyPoolTest, DistinctBodiesWhileRefsOutstanding) {
  BodyPool<PooledTestBody> pool;
  PooledTestBody* a = pool.Acquire();
  BodyRef ra(a);
  PooledTestBody* b = pool.Acquire();
  BodyRef rb(b);
  EXPECT_NE(a, b);
  EXPECT_EQ(pool.total_allocated(), 2u);
}

TEST(BodyPoolTest, OrphanedPoolKeepsInFlightBodiesAlive) {
  // A protocol can be destroyed while its bodies still sit in undelivered
  // messages (tests stop simulators mid-run). The pool core must outlive
  // the handle until the last ref drops, then free everything.
  BodyRef survivor;
  {
    BodyPool<PooledTestBody> pool;
    PooledTestBody* body = pool.Acquire();
    body->tag = 42;
    survivor = BodyRef(body);
  }  // pool handle gone; body still referenced
  EXPECT_EQ(static_cast<const PooledTestBody&>(*survivor).tag, 42);
  EXPECT_GE(PooledTestBody::live, 1);
  survivor.reset();  // last ref: recycled into the orphaned core -> freed
  EXPECT_EQ(PooledTestBody::live, 0);
}

TEST(BodyRefTest, HeapBodiesDeleteOnLastRelease) {
  int live_before = PooledTestBody::live;
  {
    BodyRef ref = MakeHeapBody<PooledTestBody>();
    BodyRef copy = ref;
    EXPECT_EQ(PooledTestBody::live, live_before + 1);
  }
  EXPECT_EQ(PooledTestBody::live, live_before);
}

TEST(MessageInlineTest, StoreLoadRoundTripsAndCountsWireBytes) {
  struct Payload {
    int32_t a;
    double b;
  };
  Message msg;
  EXPECT_EQ(msg.SizeBytes(), 16u);  // bare header
  msg.StoreInline(Payload{7, 2.5}, 12);
  EXPECT_EQ(msg.SizeBytes(), 28u);  // header + logical payload size
  Payload out = msg.LoadInline<Payload>();
  EXPECT_EQ(out.a, 7);
  EXPECT_DOUBLE_EQ(out.b, 2.5);
  // Copies carry the payload along.
  Message copy = msg;
  EXPECT_EQ(copy.LoadInline<Payload>().a, 7);
}

TEST(MessagePoolLifetimeTest, ProtocolDestroyedBeforeSimulatorIsSafe) {
  // End-to-end orphan check: stop a WILDFIRE run mid-flight so the slab
  // still holds refs to pooled bodies, destroy the protocol, then keep
  // using and destroying the simulator. ASan (CI) turns any lifetime
  // mistake here into a hard failure.
  topology::Graph g = *topology::MakeRandom(200, 5.0, 3);
  std::vector<double> values(200, 1.0);
  auto sim = std::make_unique<Simulator>(g, SimOptions{});
  {
    protocols::QueryContext ctx;
    ctx.aggregate = AggregateKind::kCount;
    ctx.combiner = protocols::CombinerKind::kFmCount;
    ctx.values = &values;
    ctx.d_hat = 10;
    auto wf = std::make_unique<protocols::WildfireProtocol>(sim.get(), ctx);
    sim->AttachProgram(wf.get());
    wf->Start(0);
    sim->RunUntil(3.0);  // convergecast bodies are in flight right now
    EXPECT_GT(sim->metrics().messages_sent(), 0u);
    sim->AttachProgram(nullptr);
  }  // protocol (and its pools) destroyed; slab still holds body refs
  sim->RunUntil(4.0);  // deliveries of orphaned bodies: dropped by kind tag
  sim.reset();         // releases remaining refs into the orphaned core
}

}  // namespace
}  // namespace validity::sim
