// Shared fingerprint fixtures for the determinism-contract tests: the
// 34-case (spec, config, hq) matrix and the field-for-field QueryResult
// comparison. Used by tests/session_test.cc (fresh == session-reused ==
// concurrent), tests/query_service_test.cc (the fourth column: the open
// query-arrival service), and tests/fingerprint_fuzz_test.cc (the
// randomized differential harness over the same comparator).

#ifndef VALIDITY_TESTS_FINGERPRINT_MATRIX_H_
#define VALIDITY_TESTS_FINGERPRINT_MATRIX_H_

#include <gtest/gtest.h>

#include <vector>

#include "core/engine.h"

namespace validity::core {

struct Case {
  const char* label;
  QuerySpec spec;
  RunConfig config;
  HostId hq = 0;
};

/// The 34-case (spec, config, hq) matrix: every protocol, exact and FM
/// combiners, all five aggregates, churn, the WILDFIRE option ablations,
/// report routing, DAG fan-in, tree pacing, and the wireless medium.
inline std::vector<Case> FingerprintMatrix() {
  using protocols::ProtocolKind;
  std::vector<Case> cases;
  auto add = [&cases](const char* label, ProtocolKind kind, AggregateKind agg,
                      bool exact, uint32_t removals, HostId hq) {
    Case c;
    c.label = label;
    c.spec.aggregate = agg;
    c.spec.exact_combiners = exact;
    c.config.protocol = kind;
    c.config.churn_removals = removals;
    c.hq = hq;
    cases.push_back(c);
  };

  // Every protocol: failure-free count, exact and FM combiners. (10)
  for (auto kind :
       {ProtocolKind::kAllReport, ProtocolKind::kRandomizedReport,
        ProtocolKind::kSpanningTree, ProtocolKind::kDag,
        ProtocolKind::kWildfire}) {
    add("count-exact", kind, AggregateKind::kCount, true, 0, 0);
    add("count-fm", kind, AggregateKind::kCount, false, 0, 0);
  }
  // Every protocol under churn. (5)
  for (auto kind :
       {ProtocolKind::kAllReport, ProtocolKind::kRandomizedReport,
        ProtocolKind::kSpanningTree, ProtocolKind::kDag,
        ProtocolKind::kWildfire}) {
    add("count-churn", kind, AggregateKind::kCount, true, 100, 0);
  }
  // WILDFIRE across the aggregate vocabulary (min/max ride inline). (4)
  add("wf-sum", ProtocolKind::kWildfire, AggregateKind::kSum, false, 0, 0);
  add("wf-min", ProtocolKind::kWildfire, AggregateKind::kMin, false, 0, 0);
  add("wf-max", ProtocolKind::kWildfire, AggregateKind::kMax, false, 0, 0);
  add("wf-avg", ProtocolKind::kWildfire, AggregateKind::kAverage, false, 0, 0);
  // DAG and SPANNINGTREE aggregate coverage. (4)
  add("dag-sum", ProtocolKind::kDag, AggregateKind::kSum, false, 0, 0);
  add("dag-min", ProtocolKind::kDag, AggregateKind::kMin, true, 0, 0);
  add("tree-sum", ProtocolKind::kSpanningTree, AggregateKind::kSum, true, 0,
      0);
  add("tree-avg", ProtocolKind::kSpanningTree, AggregateKind::kAverage, true,
      0, 0);
  // ALL-REPORT sum + reverse-path routing under churn. (2)
  add("ar-sum", ProtocolKind::kAllReport, AggregateKind::kSum, true, 0, 0);
  add("ar-reverse", ProtocolKind::kAllReport, AggregateKind::kCount, true, 60,
      0);
  cases.back().config.protocol_options.all_report.routing =
      protocols::ReportRouting::kReversePath;
  // WILDFIRE option ablations. (3)
  add("wf-no-piggyback", ProtocolKind::kWildfire, AggregateKind::kCount,
      false, 0, 0);
  cases.back().config.protocol_options.wildfire.piggyback_broadcast = false;
  add("wf-no-early-term", ProtocolKind::kWildfire, AggregateKind::kCount,
      false, 50, 0);
  cases.back().config.protocol_options.wildfire.early_termination = false;
  add("wf-no-coalesce", ProtocolKind::kWildfire, AggregateKind::kCount, false,
      0, 0);
  cases.back().config.protocol_options.wildfire.coalesce_floods = false;
  // DAG k=3 and eager tree pacing. (2)
  add("dag-k3", ProtocolKind::kDag, AggregateKind::kCount, true, 80, 0);
  cases.back().config.protocol_options.dag.max_parents = 3;
  add("tree-eager", ProtocolKind::kSpanningTree, AggregateKind::kCount, true,
      80, 0);
  cases.back().config.protocol_options.spanning_tree.pacing =
      protocols::TreePacing::kEager;
  // Wireless medium. (1)
  add("wf-wireless", ProtocolKind::kWildfire, AggregateKind::kCount, false, 0,
      0);
  cases.back().config.sim_options.medium = sim::MediumKind::kWireless;
  // Churned FM sum + distinct seeds. (1)
  add("wf-churn-sum", ProtocolKind::kWildfire, AggregateKind::kSum, false,
      150, 0);
  cases.back().config.churn_seed = 77;
  cases.back().config.sketch_seed = 78;
  // Randomized sum under churn. (1)
  add("rr-churn-sum", ProtocolKind::kRandomizedReport, AggregateKind::kSum,
      false, 90, 0);
  // A different querying host. (1)
  add("wf-hq7", ProtocolKind::kWildfire, AggregateKind::kCount, false, 40, 7);
  return cases;
}

/// The determinism contract's comparator: every QueryResult field, exact.
inline void ExpectIdentical(const QueryResult& a, const QueryResult& b,
                            const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.declared, b.declared);
  EXPECT_EQ(a.d_hat_used, b.d_hat_used);
  EXPECT_EQ(a.exact_full, b.exact_full);
  EXPECT_EQ(a.cost.messages, b.cost.messages);
  EXPECT_EQ(a.cost.bytes, b.cost.bytes);
  EXPECT_EQ(a.cost.max_processed, b.cost.max_processed);
  EXPECT_EQ(a.cost.declared_at, b.cost.declared_at);
  EXPECT_EQ(a.cost.last_update_at, b.cost.last_update_at);
  EXPECT_EQ(a.cost.sends_per_tick, b.cost.sends_per_tick);
  EXPECT_EQ(a.cost.computation_histogram.Items(),
            b.cost.computation_histogram.Items());
  EXPECT_EQ(a.validity.q_low, b.validity.q_low);
  EXPECT_EQ(a.validity.q_high, b.validity.q_high);
  EXPECT_EQ(a.validity.hc_size, b.validity.hc_size);
  EXPECT_EQ(a.validity.hu_size, b.validity.hu_size);
  EXPECT_EQ(a.validity.within, b.validity.within);
  EXPECT_EQ(a.validity.within_slack, b.validity.within_slack);
  EXPECT_EQ(a.resident_state_bytes, b.resident_state_bytes);
}

}  // namespace validity::core

#endif  // VALIDITY_TESTS_FINGERPRINT_MATRIX_H_
