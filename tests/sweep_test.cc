// Parallel sweep driver tests: ParallelFor correctness (coverage, dynamic
// balancing, inline serial path, exception propagation) and the load-bearing
// property of the experiment layer — RunChurnSweep output is bit-identical
// at any thread count.

#include <algorithm>
#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "core/experiment.h"
#include "core/sweep.h"
#include "topology/generators.h"

namespace validity::core {
namespace {

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  for (uint32_t threads : {1u, 2u, 8u}) {
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h.store(0);
    ParallelFor(hits.size(), threads,
                [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ParallelForTest, HandlesEmptyAndMoreThreadsThanWork) {
  ParallelFor(0, 8, [](size_t) { FAIL() << "body ran for n = 0"; });
  std::atomic<int> ran{0};
  ParallelFor(3, 64, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 3);
}

TEST(ParallelForTest, ZeroThreadsMeansHardware) {
  EXPECT_GE(HardwareThreads(), 1u);
  EXPECT_EQ(ResolveThreads(0),
            std::min(HardwareThreads(), kMaxSweepThreads));
  EXPECT_EQ(ResolveThreads(5), 5u);
  // Huge (or wrapped-negative) requests clamp instead of spawning n-1
  // threads.
  EXPECT_EQ(ResolveThreads(0xffffffffu), kMaxSweepThreads);
  std::atomic<int> ran{0};
  ParallelFor(10, 0, [&](size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 10);
}

TEST(ParallelForTest, PropagatesBodyExceptionAndCancelsUnstartedWork) {
  for (uint32_t threads : {1u, 4u}) {
    std::atomic<int> ran{0};
    EXPECT_THROW(
        ParallelFor(20, threads,
                    [&](size_t i) {
                      ran.fetch_add(1);
                      if (i == 7) throw std::runtime_error("boom");
                    }),
        std::runtime_error);
    // Fail fast: the throwing index ran, unclaimed indices are cancelled
    // (how many slipped through before the cancel is scheduling-dependent),
    // and every started body finished before the rethrow.
    EXPECT_GE(ran.load(), 1);
    EXPECT_LE(ran.load(), 20);
  }
}

TEST(ParallelMapTest, ReturnsResultsInIndexOrder) {
  auto squares = ParallelMap<size_t>(100, 8, [](size_t i) { return i * i; });
  ASSERT_EQ(squares.size(), 100u);
  for (size_t i = 0; i < squares.size(); ++i) EXPECT_EQ(squares[i], i * i);
}

// --- RunChurnSweep thread-count invariance -------------------------------

void ExpectCellsIdentical(const std::vector<SweepCell>& a,
                          const std::vector<SweepCell>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE(a[i].protocol + " R=" + std::to_string(a[i].removals));
    EXPECT_EQ(a[i].protocol, b[i].protocol);
    EXPECT_EQ(a[i].removals, b[i].removals);
    // Bit-identical, not approximately equal: the parallel driver merges
    // per-run results in the serial iteration order.
    EXPECT_EQ(a[i].value.mean, b[i].value.mean);
    EXPECT_EQ(a[i].value.ci95, b[i].value.ci95);
    EXPECT_EQ(a[i].value.n, b[i].value.n);
    EXPECT_EQ(a[i].messages.mean, b[i].messages.mean);
    EXPECT_EQ(a[i].messages.ci95, b[i].messages.ci95);
    EXPECT_EQ(a[i].time_cost.mean, b[i].time_cost.mean);
    EXPECT_EQ(a[i].time_cost.ci95, b[i].time_cost.ci95);
    EXPECT_EQ(a[i].max_processed.mean, b[i].max_processed.mean);
    EXPECT_EQ(a[i].max_processed.ci95, b[i].max_processed.ci95);
    EXPECT_EQ(a[i].oracle_low.mean, b[i].oracle_low.mean);
    EXPECT_EQ(a[i].oracle_low.ci95, b[i].oracle_low.ci95);
    EXPECT_EQ(a[i].oracle_high.mean, b[i].oracle_high.mean);
    EXPECT_EQ(a[i].oracle_high.ci95, b[i].oracle_high.ci95);
    EXPECT_EQ(a[i].within_fraction, b[i].within_fraction);
    EXPECT_EQ(a[i].within_slack_fraction, b[i].within_slack_fraction);
  }
}

TEST(ChurnSweepTest, ParallelOutputBitIdenticalToSerial) {
  topology::Graph graph = *topology::MakeGnutellaLike(400, 7);
  QueryEngine engine(&graph, MakeZipfValues(400, 8));
  QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.fm_vectors = 8;

  std::vector<ProtocolSpec> lineup;
  lineup.push_back({"wildfire", protocols::ProtocolKind::kWildfire,
                    protocols::ProtocolOptions{}});
  protocols::ProtocolOptions dag2;
  dag2.dag.max_parents = 2;
  lineup.push_back({"dag-k2", protocols::ProtocolKind::kDag, dag2});

  const std::vector<uint32_t> removals{0, 40, 80};
  ChurnSweepOptions serial;
  serial.trials = 3;
  serial.base_seed = 99;
  serial.threads = 1;
  ChurnSweepOptions parallel = serial;
  parallel.threads = 8;

  auto cells_serial =
      RunChurnSweep(engine, spec, /*hq=*/0, lineup, removals, serial);
  auto cells_parallel =
      RunChurnSweep(engine, spec, /*hq=*/0, lineup, removals, parallel);

  ASSERT_EQ(cells_serial.size(), removals.size() * lineup.size());
  ExpectCellsIdentical(cells_serial, cells_parallel);

  // Sanity: the sweep measured something real (non-degenerate answers).
  for (const auto& cell : cells_serial) {
    EXPECT_GT(cell.value.mean, 0.0);
    EXPECT_GT(cell.messages.mean, 0.0);
  }
}

TEST(ChurnSweepTest, RepeatedParallelRunsAreStable) {
  // Same thread count twice: guards against any hidden run-order dependence
  // (e.g. unsynchronized caches) surviving inside the engine.
  topology::Graph graph = *topology::MakeRandom(300, 4.0, 21);
  QueryEngine engine(&graph, MakeZipfValues(300, 22));
  QuerySpec spec;
  spec.aggregate = AggregateKind::kSum;
  spec.fm_vectors = 8;
  ChurnSweepOptions options;
  options.trials = 2;
  options.threads = 4;
  auto a = RunChurnSweep(engine, spec, 0, StandardLineup(), {0, 30}, options);
  auto b = RunChurnSweep(engine, spec, 0, StandardLineup(), {0, 30}, options);
  ExpectCellsIdentical(a, b);
}

}  // namespace
}  // namespace validity::core
