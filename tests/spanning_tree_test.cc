// SPANNINGTREE baseline tests: failure-free exactness, tree structure,
// early completion (Fig. 13a), subtree loss under failures, and the
// Theorem 4.4 arbitrarily-bad construction.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "protocols/oracle.h"
#include "protocols/spanning_tree.h"
#include "sim/churn.h"
#include "topology/algorithms.h"
#include "topology/generators.h"

namespace validity::protocols {
namespace {

QueryContext MakeContext(AggregateKind agg, const std::vector<double>* values,
                         double d_hat) {
  QueryContext ctx;
  ctx.aggregate = agg;
  ctx.combiner = CombinerFor(agg, /*exact=*/true);  // unused by the tree
  ctx.values = values;
  ctx.d_hat = d_hat;
  return ctx;
}

struct RunOutput {
  ProtocolRunResult result;
  uint64_t messages = 0;
};

RunOutput RunTree(const topology::Graph& g, AggregateKind agg,
                  const std::vector<double>& values, double d_hat, HostId hq,
                  const std::vector<sim::ChurnEvent>& churn = {},
                  sim::MediumKind medium = sim::MediumKind::kPointToPoint,
                  TreePacing pacing = TreePacing::kSlotted) {
  sim::SimOptions opts;
  opts.failure_detection = true;
  opts.medium = medium;
  sim::Simulator sim(g, opts);
  sim::ScheduleChurn(&sim, churn);
  SpanningTreeProtocol tree(&sim, MakeContext(agg, &values, d_hat),
                            SpanningTreeOptions{pacing});
  sim.AttachProgram(&tree);
  tree.Start(hq);
  sim.Run();
  return {tree.result(), sim.metrics().messages_sent()};
}

TEST(SpanningTreeTest, FailureFreeExactAllAggregates) {
  topology::Graph g = *topology::MakeRandom(400, 5.0, 31);
  std::vector<double> values = core::MakeZipfValues(400, 31);
  std::vector<HostId> all(400);
  for (HostId h = 0; h < 400; ++h) all[h] = h;
  for (AggregateKind agg :
       {AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
        AggregateKind::kMax, AggregateKind::kAverage}) {
    RunOutput out = RunTree(g, agg, values, 12, 0);
    ASSERT_TRUE(out.result.declared);
    EXPECT_DOUBLE_EQ(out.result.value, ExactAggregate(agg, values, all))
        << AggregateKindName(agg);
  }
}

TEST(SpanningTreeTest, FailureFreeExactOnDeepGrid) {
  topology::Graph g = *topology::MakeGrid(20);  // depth up to 19
  std::vector<double> values(g.num_hosts(), 1.0);
  RunOutput out = RunTree(g, AggregateKind::kCount, values, 21, 0);
  ASSERT_TRUE(out.result.declared);
  EXPECT_DOUBLE_EQ(out.result.value, g.num_hosts());
}

TEST(SpanningTreeTest, TreeStructureIsValid) {
  topology::Graph g = *topology::MakeRandom(300, 5.0, 33);
  std::vector<double> values(300, 1.0);
  sim::SimOptions opts;
  opts.failure_detection = true;
  sim::Simulator sim(g, opts);
  SpanningTreeProtocol tree(&sim,
                            MakeContext(AggregateKind::kCount, &values, 12));
  sim.AttachProgram(&tree);
  tree.Start(5);
  sim.Run();
  auto dist = topology::BfsDistances(g, 5);
  EXPECT_EQ(tree.ParentOf(5), kInvalidHost);
  EXPECT_EQ(tree.DepthOf(5), 0);
  for (HostId h = 0; h < 300; ++h) {
    if (h == 5) continue;
    ASSERT_NE(tree.ParentOf(h), kInvalidHost) << h;
    // Tree depth equals BFS distance (broadcast explores in waves) and the
    // parent sits one level up.
    EXPECT_EQ(tree.DepthOf(h), dist[h]);
    EXPECT_EQ(tree.DepthOf(tree.ParentOf(h)), dist[h] - 1);
    EXPECT_TRUE(g.HasEdge(h, tree.ParentOf(h)));
  }
}

TEST(SpanningTreeTest, EagerPacingDeclaresBeforeWildfireHorizon) {
  // Fig. 13(a): SPANNINGTREE has the least latency. With eager completion
  // the root declares at about 2 * depth * delta, well before the
  // 2 * D-hat * delta horizon for D-hat >> D.
  topology::Graph g = *topology::MakeRandom(1000, 5.0, 34);
  std::vector<double> values(1000, 1.0);
  double d_hat = 30;  // deliberate overestimate (true diameter ~6)
  RunOutput out =
      RunTree(g, AggregateKind::kCount, values, d_hat, 0, {},
              sim::MediumKind::kPointToPoint, TreePacing::kEager);
  ASSERT_TRUE(out.result.declared);
  EXPECT_DOUBLE_EQ(out.result.value, 1000);
  EXPECT_LT(out.result.declared_at, 2 * d_hat);  // beat the horizon
  EXPECT_LT(out.result.declared_at, 25);
}

TEST(SpanningTreeTest, SlottedPacingInformationFlowEndsEarly) {
  // Slotted convergecast declares at the horizon, but the last causal
  // message chain (the §6.3 time-cost metric) ends when the final root
  // child's slot report arrives, 0.5 delta before the horizon.
  topology::Graph g = *topology::MakeRandom(1000, 5.0, 34);
  std::vector<double> values(1000, 1.0);
  double d_hat = 30;
  RunOutput out = RunTree(g, AggregateKind::kCount, values, d_hat, 0);
  ASSERT_TRUE(out.result.declared);
  EXPECT_DOUBLE_EQ(out.result.value, 1000);
  EXPECT_DOUBLE_EQ(out.result.declared_at, 2 * d_hat);
  EXPECT_DOUBLE_EQ(out.result.last_update_at, 2 * d_hat - 0.5);
}

TEST(SpanningTreeTest, SingleFailureDropsWholeSubtree) {
  // A chain rooted at 0: killing host 1 after broadcast loses hosts 2..n-1.
  topology::Graph g = *topology::MakeChain(10);
  std::vector<double> values(10, 1.0);
  std::vector<sim::ChurnEvent> churn{{9.25, 1}};  // after broadcast reaches 9
  RunOutput out = RunTree(g, AggregateKind::kCount, values, 11, 0, churn);
  ASSERT_TRUE(out.result.declared);
  EXPECT_DOUBLE_EQ(out.result.value, 1)
      << "only the root survives the cut: everything beyond host 1 is lost";
}

TEST(SpanningTreeTest, Theorem44ArbitrarilyBadOnCycleInstance) {
  // Cycle of 2n+2 with a tail; killing the root's longer-chain neighbor h1
  // after Broadcast loses at least half of HC.
  constexpr uint32_t n = 8;
  topology::Graph g = *topology::MakeTheorem44Instance(n);
  uint32_t hosts = g.num_hosts();  // 2n+3
  std::vector<double> values(hosts, 1.0);
  double d_hat = static_cast<double>(hosts);

  // Fail h1 right after the broadcast has swept the cycle.
  std::vector<sim::ChurnEvent> churn{{static_cast<double>(n + 2) + 0.25, 1}};
  sim::SimOptions opts;
  opts.failure_detection = true;
  sim::Simulator sim(g, opts);
  sim::ScheduleChurn(&sim, churn);
  SpanningTreeProtocol tree(&sim,
                            MakeContext(AggregateKind::kCount, &values, d_hat));
  sim.AttachProgram(&tree);
  tree.Start(0);
  sim.Run();

  OracleReport oracle = ComputeOracle(sim, 0, 0, 2 * d_hat,
                                      AggregateKind::kCount, values);
  ASSERT_TRUE(tree.result().declared);
  // h1 is the only failure, so HC = everyone else.
  EXPECT_EQ(oracle.hc.size(), hosts - 1);
  // Theorem 4.4: the returned count is at most |HC| / 2 + O(1) — the whole
  // longer chain hangs off h1.
  EXPECT_LE(tree.result().value, oracle.q_low / 2 + 2);
  EXPECT_FALSE(oracle.Contains(tree.result().value))
      << "the best-effort tree violates Single-Site Validity here";
}

TEST(SpanningTreeTest, WirelessGridUsesOneTransmissionPerHost) {
  topology::Graph g = *topology::MakeGrid(10);
  std::vector<double> values(g.num_hosts(), 1.0);
  RunOutput out = RunTree(g, AggregateKind::kCount, values, 11, 0, {},
                          sim::MediumKind::kWireless);
  ASSERT_TRUE(out.result.declared);
  EXPECT_DOUBLE_EQ(out.result.value, g.num_hosts());
  // Broadcast: one transmission per host; report: one per non-root host.
  EXPECT_LE(out.messages, 2ULL * g.num_hosts());
  EXPECT_GE(out.messages, 2ULL * g.num_hosts() - 2);
}

TEST(SpanningTreeTest, EagerChildFailureDetectedViaHeartbeatStillCompletes) {
  // A star under eager pacing: kill one leaf before it reports; the root
  // learns via heartbeat, stops waiting, and completes without it.
  topology::Graph g = *topology::MakeStar(6);
  std::vector<double> values(6, 1.0);
  std::vector<sim::ChurnEvent> churn{{1.25, 3}};  // dies before reporting
  RunOutput out = RunTree(g, AggregateKind::kCount, values, 4, 0, churn,
                          sim::MediumKind::kPointToPoint, TreePacing::kEager);
  ASSERT_TRUE(out.result.declared);
  EXPECT_DOUBLE_EQ(out.result.value, 5);  // everyone but the dead leaf
  EXPECT_LT(out.result.declared_at, 8);   // completed, not horizon-timed
}

TEST(SpanningTreeTest, SlottedIsMoreChurnFragileThanEager) {
  // The ablation behind the pacing default: holding data until the slot
  // (TAG-style, what the paper evaluates) exposes whole collected subtrees
  // to churn; eager completion drains data early and loses far less.
  // Root at the grid center; totals over several churn schedules.
  topology::Graph g = *topology::MakeGrid(18);
  HostId center = 9 * 18 + 9;
  std::vector<double> values(g.num_hosts(), 1.0);
  double slotted_total = 0;
  double eager_total = 0;
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Rng churn_rng(seed);
    auto churn = sim::MakeUniformChurn(g.num_hosts(), center, 30, 0.0,
                                       2.0 * 12, &churn_rng);
    RunOutput slotted =
        RunTree(g, AggregateKind::kCount, values, 12, center, churn);
    RunOutput eager =
        RunTree(g, AggregateKind::kCount, values, 12, center, churn,
                sim::MediumKind::kPointToPoint, TreePacing::kEager);
    ASSERT_TRUE(slotted.result.declared);
    ASSERT_TRUE(eager.result.declared);
    slotted_total += slotted.result.value;
    eager_total += eager.result.value;
  }
  EXPECT_LT(slotted_total, eager_total);
}

}  // namespace
}  // namespace validity::protocols
