// Tests for the discrete-event simulator: deterministic ordering, delivery
// and failure semantics, media accounting, heartbeat detection, churn.

#include <gtest/gtest.h>

#include <vector>

#include "sim/churn.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "topology/generators.h"

namespace validity::sim {
namespace {

// ------------------------------------------------------------ EventQueue

TEST(EventQueueTest, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(2.0, [&] { order.push_back(2); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.Now(), 3.0);
  EXPECT_EQ(q.executed(), 3u);
}

TEST(EventQueueTest, TiesBreakByScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    q.ScheduleAt(5.0, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, RunUntilStopsAtBoundaryInclusive) {
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(2.0, [&] { order.push_back(2); });
  q.ScheduleAt(3.0, [&] { order.push_back(3); });
  q.RunUntil(2.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.Now(), 2.0);
  q.RunAll();
  EXPECT_EQ(order.size(), 3u);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int fired = 0;
  q.ScheduleAt(1.0, [&] {
    ++fired;
    q.ScheduleAt(2.0, [&] { ++fired; });
  });
  q.RunAll();
  EXPECT_EQ(fired, 2);
}

// -------------------------------------------------------------- Programs

/// Records every delivery; optionally echoes messages back once.
class RecordingProgram : public HostProgram {
 public:
  struct Delivery {
    HostId self;
    HostId src;
    uint32_t kind;
    SimTime at;
  };

  void OnMessage(HostId self, const Message& msg) override {
    deliveries.push_back({self, msg.src, msg.kind, now_fn()});
  }
  void OnNeighborFailure(HostId self, HostId failed) override {
    failures.push_back({self, failed, 0, now_fn()});
  }

  std::function<SimTime()> now_fn = [] { return 0.0; };
  std::vector<Delivery> deliveries;
  std::vector<Delivery> failures;
};

Message Msg(uint32_t kind) {
  Message m;
  m.kind = kind;
  return m;
}

// -------------------------------------------------------------- Delivery

TEST(SimulatorTest, UnicastArrivesAfterDelta) {
  topology::Graph g = *topology::MakeChain(3);
  SimOptions opts;
  opts.delta = 2.0;
  Simulator sim(g, opts);
  RecordingProgram prog;
  prog.now_fn = [&] { return sim.Now(); };
  sim.AttachProgram(&prog);
  sim.ScheduleAt(1.0, [&] { sim.SendTo(0, 1, Msg(7)); });
  sim.Run();
  ASSERT_EQ(prog.deliveries.size(), 1u);
  EXPECT_EQ(prog.deliveries[0].self, 1u);
  EXPECT_EQ(prog.deliveries[0].src, 0u);
  EXPECT_EQ(prog.deliveries[0].kind, 7u);
  EXPECT_DOUBLE_EQ(prog.deliveries[0].at, 3.0);
  EXPECT_EQ(sim.metrics().messages_sent(), 1u);
}

TEST(SimulatorTest, FailedHostSendsNothing) {
  topology::Graph g = *topology::MakeChain(2);
  Simulator sim(g, SimOptions{});
  RecordingProgram prog;
  sim.AttachProgram(&prog);
  sim.ScheduleAt(0.5, [&] { sim.FailHost(0); });
  sim.ScheduleAt(1.0, [&] { sim.SendTo(0, 1, Msg(1)); });
  sim.Run();
  EXPECT_TRUE(prog.deliveries.empty());
  EXPECT_EQ(sim.metrics().messages_sent(), 0u);
}

TEST(SimulatorTest, InFlightMessageToFailedHostIsLost) {
  topology::Graph g = *topology::MakeChain(2);
  Simulator sim(g, SimOptions{});
  RecordingProgram prog;
  sim.AttachProgram(&prog);
  sim.ScheduleAt(1.0, [&] { sim.SendTo(0, 1, Msg(1)); });
  sim.ScheduleAt(1.5, [&] { sim.FailHost(1); });  // dies before delivery at 2
  sim.Run();
  EXPECT_TRUE(prog.deliveries.empty());
  EXPECT_EQ(sim.metrics().messages_sent(), 1u);  // charged but undelivered
  EXPECT_EQ(sim.metrics().messages_delivered(), 0u);
}

TEST(SimulatorTest, InFlightMessageFromFailedSenderStillArrives) {
  // Paper §3.2: the message was sent while the sender was alive.
  topology::Graph g = *topology::MakeChain(2);
  Simulator sim(g, SimOptions{});
  RecordingProgram prog;
  sim.AttachProgram(&prog);
  sim.ScheduleAt(1.0, [&] { sim.SendTo(0, 1, Msg(1)); });
  sim.ScheduleAt(1.5, [&] { sim.FailHost(0); });
  sim.Run();
  EXPECT_EQ(prog.deliveries.size(), 1u);
}

TEST(SimulatorTest, PointToPointNeighborsChargesPerNeighbor) {
  topology::Graph g = *topology::MakeStar(5);  // host 0 has 4 neighbors
  Simulator sim(g, SimOptions{});
  RecordingProgram prog;
  sim.AttachProgram(&prog);
  sim.ScheduleAt(0.0, [&] { sim.SendToNeighbors(0, Msg(1)); });
  sim.Run();
  EXPECT_EQ(sim.metrics().messages_sent(), 4u);
  EXPECT_EQ(prog.deliveries.size(), 4u);
}

TEST(SimulatorTest, WirelessBroadcastChargesOnce) {
  topology::Graph g = *topology::MakeStar(5);
  SimOptions opts;
  opts.medium = MediumKind::kWireless;
  Simulator sim(g, opts);
  RecordingProgram prog;
  sim.AttachProgram(&prog);
  sim.ScheduleAt(0.0, [&] { sim.SendToNeighbors(0, Msg(1)); });
  sim.Run();
  EXPECT_EQ(sim.metrics().messages_sent(), 1u);   // one transmission
  EXPECT_EQ(prog.deliveries.size(), 4u);          // everyone hears it
  EXPECT_EQ(sim.metrics().messages_delivered(), 4u);
}

TEST(SimulatorTest, SendDirectReachesNonNeighbors) {
  topology::Graph g = *topology::MakeChain(5);
  Simulator sim(g, SimOptions{});
  RecordingProgram prog;
  sim.AttachProgram(&prog);
  sim.ScheduleAt(0.0, [&] { sim.SendDirect(4, 0, Msg(9)); });
  sim.Run();
  ASSERT_EQ(prog.deliveries.size(), 1u);
  EXPECT_EQ(prog.deliveries[0].self, 0u);
  EXPECT_EQ(sim.metrics().messages_sent(), 1u);
}

// -------------------------------------------------------------- Failures

TEST(SimulatorTest, FailureBookkeeping) {
  topology::Graph g = *topology::MakeChain(3);
  Simulator sim(g, SimOptions{});
  EXPECT_EQ(sim.alive_count(), 3u);
  sim.ScheduleFailure(2.0, 1);
  sim.Run();
  EXPECT_FALSE(sim.IsAlive(1));
  EXPECT_EQ(sim.alive_count(), 2u);
  EXPECT_DOUBLE_EQ(sim.FailureTime(1), 2.0);
  EXPECT_TRUE(sim.AliveThroughout(0, 0.0, 10.0));
  EXPECT_FALSE(sim.AliveThroughout(1, 0.0, 10.0));
  EXPECT_TRUE(sim.AliveThroughout(1, 0.0, 1.5));
  EXPECT_TRUE(sim.AliveSometimeIn(1, 0.0, 10.0));
  EXPECT_FALSE(sim.AliveSometimeIn(1, 3.0, 10.0));
}

TEST(SimulatorTest, HeartbeatDetectionFiresAfterThbPlusDelta) {
  topology::Graph g = *topology::MakeChain(3);
  SimOptions opts;
  opts.failure_detection = true;
  opts.heartbeat_interval = 2.0;
  opts.delta = 1.0;
  Simulator sim(g, opts);
  RecordingProgram prog;
  prog.now_fn = [&] { return sim.Now(); };
  sim.AttachProgram(&prog);
  sim.ScheduleFailure(5.0, 1);
  sim.Run();
  // Both neighbors (0 and 2) learn at 5 + 2 + 1 = 8.
  ASSERT_EQ(prog.failures.size(), 2u);
  for (const auto& f : prog.failures) {
    EXPECT_EQ(f.src, 1u);
    EXPECT_DOUBLE_EQ(f.at, 8.0);
  }
}

TEST(SimulatorTest, AddHostJoinsAndDelivers) {
  topology::Graph g = *topology::MakeChain(2);
  Simulator sim(g, SimOptions{});
  RecordingProgram prog;
  sim.AttachProgram(&prog);
  sim.ScheduleAt(1.0, [&] {
    auto id = sim.AddHost({1});
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(*id, 2u);
    sim.SendTo(*id, 1, Msg(4));
  });
  sim.Run();
  EXPECT_EQ(sim.num_hosts(), 3u);
  EXPECT_DOUBLE_EQ(sim.JoinTime(2), 1.0);
  ASSERT_EQ(prog.deliveries.size(), 1u);
  EXPECT_EQ(prog.deliveries[0].src, 2u);
}

TEST(SimulatorTest, AddHostRejectsDeadNeighbor) {
  topology::Graph g = *topology::MakeChain(2);
  Simulator sim(g, SimOptions{});
  sim.ScheduleAt(1.0, [&] {
    sim.FailHost(1);
    EXPECT_EQ(sim.AddHost({1}).status().code(),
              StatusCode::kFailedPrecondition);
  });
  sim.Run();
}

// ----------------------------------------------------------------- Churn

TEST(ChurnTest, UniformChurnProtectsAndSpacesUniformly) {
  Rng rng(5);
  auto events = MakeUniformChurn(100, /*protect=*/7, /*removals=*/10,
                                 /*start=*/0.0, /*end=*/20.0, &rng);
  ASSERT_EQ(events.size(), 10u);
  std::set<HostId> victims;
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_NE(events[i].host, 7u);
    victims.insert(events[i].host);
    EXPECT_DOUBLE_EQ(events[i].time, (static_cast<double>(i) + 0.5) * 2.0);
  }
  EXPECT_EQ(victims.size(), 10u);  // distinct victims
}

TEST(ChurnTest, ScheduledChurnActuallyFails) {
  topology::Graph g = *topology::MakeRandom(50, 4.0, 3);
  Simulator sim(g, SimOptions{});
  Rng rng(9);
  auto events = MakeUniformChurn(50, 0, 20, 0.0, 10.0, &rng);
  ScheduleChurn(&sim, events);
  sim.Run();
  EXPECT_EQ(sim.alive_count(), 30u);
  EXPECT_TRUE(sim.IsAlive(0));
}

TEST(ChurnTest, ExponentialLifetimesRespectHorizonAndProtect) {
  Rng rng(4);
  auto events = MakeExponentialLifetimeChurn(500, 3, 10.0, 30.0, &rng);
  EXPECT_GT(events.size(), 300u);  // most die within 3 mean lifetimes
  for (const auto& e : events) {
    EXPECT_NE(e.host, 3u);
    EXPECT_LE(e.time, 30.0);
    EXPECT_GT(e.time, 0.0);
  }
  // Sorted by time.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time, events[i].time);
  }
}

TEST(ChurnTest, DirectScheduleMatchesMaterializedExponentialChurn) {
  // ScheduleExponentialLifetimeChurn consumes the RNG exactly like
  // MakeExponentialLifetimeChurn, so under one seed both paths fail the
  // same hosts at the same instants.
  topology::Graph g = *topology::MakeRandom(300, 4.0, 11);
  Simulator via_vector(g, SimOptions{});
  Simulator direct(g, SimOptions{});
  Rng rng_a(17);
  Rng rng_b(17);
  auto events = MakeExponentialLifetimeChurn(300, 5, 8.0, 25.0, &rng_a);
  ScheduleChurn(&via_vector, events);
  uint32_t scheduled =
      ScheduleExponentialLifetimeChurn(&direct, 5, 8.0, 25.0, &rng_b);
  EXPECT_EQ(scheduled, events.size());
  via_vector.Run();
  direct.Run();
  EXPECT_EQ(via_vector.alive_count(), direct.alive_count());
  for (HostId h = 0; h < 300; ++h) {
    EXPECT_EQ(via_vector.FailureTime(h), direct.FailureTime(h)) << h;
  }
}

// --------------------------------------------------------------- Metrics

TEST(MetricsTest, SendsPerTickBucketsByFloor) {
  topology::Graph g = *topology::MakeChain(3);
  Simulator sim(g, SimOptions{});
  RecordingProgram prog;
  sim.AttachProgram(&prog);
  sim.ScheduleAt(0.0, [&] { sim.SendTo(0, 1, Msg(1)); });
  sim.ScheduleAt(0.5, [&] { sim.SendTo(0, 1, Msg(1)); });
  sim.ScheduleAt(2.0, [&] { sim.SendTo(1, 2, Msg(1)); });
  sim.Run();
  const auto& ticks = sim.metrics().SendsPerTick();
  ASSERT_GE(ticks.size(), 3u);
  EXPECT_EQ(ticks[0], 2u);
  EXPECT_EQ(ticks[1], 0u);
  EXPECT_EQ(ticks[2], 1u);
}

TEST(MetricsTest, ComputationDistributionCountsReceptions) {
  topology::Graph g = *topology::MakeStar(4);
  Simulator sim(g, SimOptions{});
  RecordingProgram prog;
  sim.AttachProgram(&prog);
  sim.ScheduleAt(0.0, [&] {
    sim.SendTo(1, 0, Msg(1));
    sim.SendTo(2, 0, Msg(1));
    sim.SendTo(3, 0, Msg(1));
  });
  sim.Run();
  EXPECT_EQ(sim.metrics().ProcessedBy(0), 3u);
  EXPECT_EQ(sim.metrics().MaxProcessed(), 3u);
  Histogram h = sim.metrics().ComputationCostDistribution();
  EXPECT_EQ(h.CountAt(0), 3);  // the three spokes processed nothing
  EXPECT_EQ(h.CountAt(3), 1);
}

TEST(SimulatorCountsTest, ImplicitDefaultsStayExactUnderChurnAndJoins) {
  // num_hosts()/alive_count() are maintained as counters over the
  // implicit-liveness representation (untouched hosts are alive but
  // unpaged). Churn hard, join, churn the joined hosts, reset, churn again
  // — after every step the counters must agree with a dense rebuild from
  // the per-host liveness predicates.
  topology::Topology topo = *topology::Topology::Grid(40);  // 1600 hosts
  Simulator sim(topo, SimOptions{});
  Rng rng(99);

  auto check_against_dense_oracle = [&sim](uint32_t expected_hosts) {
    ASSERT_EQ(sim.num_hosts(), expected_hosts);
    uint32_t alive = 0;
    for (HostId h = 0; h < sim.num_hosts(); ++h) {
      if (sim.IsAlive(h)) ++alive;
      // The predicates themselves must agree with each other.
      EXPECT_EQ(sim.IsAlive(h), sim.FailureTime(h) == kNeverFails);
    }
    EXPECT_EQ(sim.alive_count(), alive);
  };

  check_against_dense_oracle(1600);

  // Random failures, including repeats (FailHost must not double-count).
  for (int i = 0; i < 400; ++i) {
    sim.FailHost(static_cast<HostId>(rng.NextBelow(1600)));
  }
  check_against_dense_oracle(1600);

  // Joins attach to alive hosts; some joined hosts fail again.
  std::vector<HostId> joined;
  for (int i = 0; i < 50; ++i) {
    HostId nb;
    do {
      nb = static_cast<HostId>(rng.NextBelow(1600));
    } while (!sim.IsAlive(nb));
    auto id = sim.AddHost({nb});
    ASSERT_TRUE(id.ok());
    joined.push_back(*id);
  }
  for (int i = 0; i < 20; ++i) {
    sim.FailHost(joined[rng.NextBelow(joined.size())]);
  }
  check_against_dense_oracle(1650);

  // Reset restores the base population exactly.
  sim.Reset();
  check_against_dense_oracle(1600);
  EXPECT_EQ(sim.alive_count(), 1600u);

  // And the next epoch accounts failures from a clean slate.
  sim.FailHost(7);
  sim.FailHost(7);
  sim.FailHost(1599);
  check_against_dense_oracle(1600);
  EXPECT_EQ(sim.alive_count(), 1598u);

  // A fresh simulator over the same topology agrees host for host.
  Simulator fresh(topo, SimOptions{});
  fresh.FailHost(7);
  fresh.FailHost(1599);
  for (HostId h = 0; h < 1600; ++h) {
    EXPECT_EQ(sim.IsAlive(h), fresh.IsAlive(h));
  }
}

TEST(SimulatorCountsTest, ResidentTableBytesTracksTheTouchedDisc) {
  // An implicit million-ish grid: constructing the simulator materializes
  // no per-host tables, and failing a handful of hosts pages in only their
  // neighborhoods.
  topology::Topology topo = *topology::Topology::Grid(1000);
  Simulator sim(topo, SimOptions{});
  size_t fresh_bytes = sim.ResidentTableBytes();
  // The fresh footprint is bounded by fixed skeleton storage (event queue
  // reserve, directories), far below one byte per host.
  EXPECT_LT(fresh_bytes, topo.num_hosts() / 2);
  sim.FailHost(12345);
  sim.FailHost(987654);
  // Two touched liveness pages plus the (O(n / page-size)) directory growth
  // the far host forces — still hundreds of KB under the ~17 MB the dense
  // alive/failure/join tables used to cost.
  EXPECT_LT(sim.ResidentTableBytes(), fresh_bytes + 256 * 1024);
  EXPECT_EQ(sim.alive_count(), topo.num_hosts() - 2);
}

}  // namespace
}  // namespace validity::sim
