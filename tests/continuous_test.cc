// Continuous Single-Site Validity tests (§4.2): windowed WILDFIRE rounds on
// a churning network, each within its per-window oracle interval.

#include <gtest/gtest.h>

#include "core/engine.h"
#include "protocols/continuous.h"
#include "protocols/oracle.h"
#include "sim/churn.h"
#include "topology/generators.h"

namespace validity::protocols {
namespace {

QueryContext MakeContext(AggregateKind agg, CombinerKind combiner,
                         const std::vector<double>* values, double d_hat) {
  QueryContext ctx;
  ctx.aggregate = agg;
  ctx.combiner = combiner;
  ctx.values = values;
  ctx.d_hat = d_hat;
  ctx.fm.num_vectors = 16;
  return ctx;
}

TEST(ContinuousTest, RejectsWindowShorterThanARound) {
  topology::Graph g = *topology::MakeChain(4);
  std::vector<double> values(4, 1.0);
  sim::Simulator sim(g, sim::SimOptions{});
  ContinuousWildfire cont(
      &sim,
      MakeContext(AggregateKind::kCount, CombinerKind::kUnionCount, &values, 5),
      ContinuousOptions{/*window=*/8.0, /*num_windows=*/2});
  EXPECT_EQ(cont.Start(0).code(), StatusCode::kInvalidArgument);
}

TEST(ContinuousTest, StaticNetworkEveryWindowExact) {
  topology::Graph g = *topology::MakeRandom(200, 5.0, 71);
  std::vector<double> values(200, 1.0);
  sim::Simulator sim(g, sim::SimOptions{});
  ContinuousWildfire cont(
      &sim, MakeContext(AggregateKind::kCount, CombinerKind::kUnionCount,
                        &values, 10),
      ContinuousOptions{/*window=*/25.0, /*num_windows=*/4});
  ASSERT_TRUE(cont.Start(0).ok());
  sim.Run();
  ASSERT_EQ(cont.results().size(), 4u);
  for (const auto& w : cont.results()) {
    ASSERT_TRUE(w.declared);
    EXPECT_DOUBLE_EQ(w.value, 200);
  }
}

TEST(ContinuousTest, WindowsTrackShrinkingNetwork) {
  // Continuous churn: every window's count must fall within that window's
  // oracle interval, and the sequence must trend downward.
  topology::Graph g = *topology::MakeGnutellaLike(600, 72);
  std::vector<double> values(600, 1.0);
  const double d_hat = 12;
  const double window = 30;
  const uint32_t num_windows = 5;

  sim::Simulator sim(g, sim::SimOptions{});
  Rng churn_rng(72);
  // Remove 300 hosts spread over the whole run.
  sim::ScheduleChurn(&sim, sim::MakeUniformChurn(600, 0, 300, 0.0,
                                                 window * num_windows,
                                                 &churn_rng));
  ContinuousWildfire cont(
      &sim, MakeContext(AggregateKind::kCount, CombinerKind::kUnionCount,
                        &values, d_hat),
      ContinuousOptions{window, num_windows});
  ASSERT_TRUE(cont.Start(0).ok());
  sim.Run();

  ASSERT_EQ(cont.results().size(), num_windows);
  double previous = 1e18;
  for (uint32_t w = 0; w < num_windows; ++w) {
    const WindowResult& res = cont.results()[w];
    ASSERT_TRUE(res.declared) << "window " << w;
    SimTime begin = res.issued_at;
    SimTime end = begin + 2 * d_hat;
    OracleReport oracle =
        ComputeOracle(sim, 0, begin, end, AggregateKind::kCount, values);
    EXPECT_TRUE(oracle.Contains(res.value))
        << "window " << w << ": " << res.value << " not in ["
        << oracle.q_low << ", " << oracle.q_high << "]";
    EXPECT_LE(res.value, previous + 1e-9) << "churn only removes hosts";
    previous = res.value;
  }
  EXPECT_LT(cont.results().back().value, cont.results().front().value);
}

TEST(ContinuousTest, StaleMessagesFromPreviousRoundAreIgnored) {
  // Back-to-back windows (W exactly one round): stragglers from round k
  // arriving during round k+1 must not corrupt it. Exactness of every
  // window is the witness.
  topology::Graph g = *topology::MakeGrid(8);
  std::vector<double> values(g.num_hosts(), 1.0);
  sim::Simulator sim(g, sim::SimOptions{});
  double d_hat = 8;
  ContinuousWildfire cont(
      &sim, MakeContext(AggregateKind::kCount, CombinerKind::kUnionCount,
                        &values, d_hat),
      ContinuousOptions{/*window=*/2 * d_hat, /*num_windows=*/3});
  ASSERT_TRUE(cont.Start(0).ok());
  sim.Run();
  for (const auto& w : cont.results()) {
    ASSERT_TRUE(w.declared);
    EXPECT_DOUBLE_EQ(w.value, g.num_hosts());
  }
}

TEST(ContinuousTest, FreshSketchesPerWindowDecorrelateEstimates) {
  // FM-based rounds must not reuse coin flips across windows: on a static
  // network the per-window estimates differ (almost surely) while staying
  // in a sane band.
  topology::Graph g = *topology::MakeRandom(500, 5.0, 73);
  std::vector<double> values(500, 1.0);
  sim::Simulator sim(g, sim::SimOptions{});
  ContinuousWildfire cont(
      &sim, MakeContext(AggregateKind::kCount, CombinerKind::kFmCount,
                        &values, 10),
      ContinuousOptions{/*window=*/25.0, /*num_windows=*/3});
  ASSERT_TRUE(cont.Start(0).ok());
  sim.Run();
  std::set<double> distinct;
  for (const auto& w : cont.results()) {
    ASSERT_TRUE(w.declared);
    EXPECT_GT(w.value, 500 / 4.0);
    EXPECT_LT(w.value, 500 * 4.0);
    distinct.insert(w.value);
  }
  EXPECT_GT(distinct.size(), 1u);
}

}  // namespace
}  // namespace validity::protocols
