// End-to-end integration tests reproducing the paper's headline findings at
// reduced scale: the Fig. 7/9 validity gap between best-effort protocols
// and WILDFIRE, and the Fig. 10/11 cost ordering ("the price of validity").

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/experiment.h"
#include "topology/generators.h"

namespace validity::core {
namespace {

TEST(IntegrationTest, MiniFig7CountUnderChurnOnGnutellaLike) {
  topology::Graph g = *topology::MakeGnutellaLike(1500, 101);
  QueryEngine engine(&g, MakeZipfValues(1500, 101));
  QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.exact_combiners = true;  // isolate protocol validity from FM noise

  ChurnSweepOptions opts;
  opts.trials = 5;
  // 10% and 30% churn, the paper's "high dynamism" territory.
  auto cells = RunChurnSweep(engine, spec, 0, StandardLineup(),
                             {150, 450}, opts);

  double tree_value = 0;
  double dag3_value = 0;
  double wf_value = 0;
  double oracle_low = 0;
  for (const auto& cell : cells) {
    if (cell.removals != 450) continue;
    if (cell.protocol == "spanning-tree") tree_value = cell.value.mean;
    if (cell.protocol == "dag-k3") dag3_value = cell.value.mean;
    if (cell.protocol == "wildfire") {
      wf_value = cell.value.mean;
      oracle_low = cell.oracle_low.mean;
    }
  }
  // The paper's Fig. 7 ordering: tree <= dag <= wildfire, and wildfire
  // stays above the oracle lower bound while the tree falls below it.
  EXPECT_LE(tree_value, dag3_value * 1.02);
  EXPECT_LE(dag3_value, wf_value * 1.02);
  EXPECT_GE(wf_value, oracle_low);
  EXPECT_LT(tree_value, oracle_low)
      << "best-effort tree should violate validity under 30% churn";

  for (const auto& cell : cells) {
    if (cell.protocol == "wildfire") {
      EXPECT_DOUBLE_EQ(cell.within_fraction, 1.0)
          << "Theorem 5.1 at R=" << cell.removals;
    }
  }
}

TEST(IntegrationTest, MiniFig9SpanningTreeCollapsesOnGrid) {
  // Deep trees on Grid lose whole subtrees per failure (paper: "a removal
  // of any interior host causes the non-inclusion of the entire sub-tree").
  topology::Graph g = *topology::MakeGrid(25);  // 625 hosts, deep tree
  QueryEngine engine(&g, MakeZipfValues(g.num_hosts(), 102));
  QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.exact_combiners = true;

  ChurnSweepOptions opts;
  opts.trials = 5;
  auto cells = RunChurnSweep(engine, spec, 0, StandardLineup(), {60}, opts);

  double tree_value = 0;
  double wf_value = 0;
  double oracle_low = 0;
  for (const auto& cell : cells) {
    if (cell.protocol == "spanning-tree") tree_value = cell.value.mean;
    if (cell.protocol == "wildfire") {
      wf_value = cell.value.mean;
      oracle_low = cell.oracle_low.mean;
    }
  }
  EXPECT_GE(wf_value, oracle_low);
  // ~10% failures on the grid should cost the tree far more than 10% of
  // hosts (interior cuts), dropping it clearly below the oracle bound.
  EXPECT_LT(tree_value, oracle_low * 0.98);
  EXPECT_LT(tree_value, wf_value * 0.9);
}

TEST(IntegrationTest, PriceOfValidityCostOrdering) {
  // Fig. 10/11: ST ~ DAG << WILDFIRE-count (~4-5x); WILDFIRE-min close to
  // (or below) the baselines thanks to early aggregation.
  topology::Graph g = *topology::MakeRandom(2000, 5.0, 103);
  QueryEngine engine(&g, MakeZipfValues(2000, 103));

  auto run_messages = [&](protocols::ProtocolKind kind, AggregateKind agg) {
    QuerySpec spec;
    spec.aggregate = agg;
    spec.fm_vectors = 8;
    RunConfig config;
    config.protocol = kind;
    auto result = engine.Run(spec, config, 0);
    EXPECT_TRUE(result.ok());
    return static_cast<double>(result->cost.messages);
  };

  double tree = run_messages(protocols::ProtocolKind::kSpanningTree,
                             AggregateKind::kCount);
  double dag = run_messages(protocols::ProtocolKind::kDag,
                            AggregateKind::kCount);
  double wf_count = run_messages(protocols::ProtocolKind::kWildfire,
                                 AggregateKind::kCount);
  double wf_min = run_messages(protocols::ProtocolKind::kWildfire,
                               AggregateKind::kMin);

  EXPECT_LT(tree, wf_count);
  EXPECT_LT(dag, 1.5 * tree) << "DAG roughly overlaps the tree (Fig. 10)";
  double price = wf_count / tree;
  EXPECT_GT(price, 1.5) << "validity is not free";
  EXPECT_LT(price, 12.0) << "but it is a constant factor, not a blowup";
  EXPECT_LT(wf_min, wf_count)
      << "early aggregation makes min cheaper than count (Fig. 11)";
}

TEST(IntegrationTest, WildfireCommCostInsensitiveToDHat) {
  // Fig. 10: the WILDFIRE curves for different D-hat overlap; Fig. 13(a):
  // its time cost is exactly 2 * D-hat * delta.
  topology::Graph g = *topology::MakeRandom(1500, 5.0, 104);
  QueryEngine engine(&g, MakeZipfValues(1500, 104));
  uint32_t diameter = engine.EstimatedDiameter();

  std::vector<double> d_hats{static_cast<double>(diameter + 2),
                             static_cast<double>(2 * diameter),
                             static_cast<double>(4 * diameter)};
  std::vector<double> messages;
  for (double d_hat : d_hats) {
    QuerySpec spec;
    spec.aggregate = AggregateKind::kCount;
    spec.d_hat = d_hat;
    auto result = engine.Run(spec, RunConfig{}, 0);
    ASSERT_TRUE(result.ok());
    messages.push_back(static_cast<double>(result->cost.messages));
    EXPECT_DOUBLE_EQ(result->cost.declared_at, 2 * d_hat);
  }
  EXPECT_NEAR(messages[1] / messages[0], 1.0, 0.02);
  EXPECT_NEAR(messages[2] / messages[0], 1.0, 0.02);
}

TEST(IntegrationTest, Fig8SumShapesWithFmSketches) {
  // Sum under churn with real FM sketches: wildfire's estimate should stay
  // within the slack-adjusted oracle interval while the tree undercounts.
  topology::Graph g = *topology::MakeGnutellaLike(1200, 105);
  QueryEngine engine(&g, MakeZipfValues(1200, 105));
  QuerySpec spec;
  spec.aggregate = AggregateKind::kSum;
  spec.fm_vectors = 32;

  RunConfig wf_config;
  wf_config.churn_removals = 360;
  wf_config.churn_seed = 17;
  auto wf = engine.Run(spec, wf_config, 0);
  ASSERT_TRUE(wf.ok());
  EXPECT_TRUE(wf->validity.within_slack)
      << "value " << wf->value << " vs [" << wf->validity.q_low << ","
      << wf->validity.q_high << "]";

  RunConfig tree_config = wf_config;
  tree_config.protocol = protocols::ProtocolKind::kSpanningTree;
  auto tree = engine.Run(spec, tree_config, 0);
  ASSERT_TRUE(tree.ok());
  EXPECT_LT(tree->value, wf->value);
}

}  // namespace
}  // namespace validity::core
