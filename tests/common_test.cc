// Unit tests for the common substrate: Status, Rng, Zipf, stats, histogram,
// table printing, and flags.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "common/aggregate.h"
#include "common/flags.h"
#include "common/histogram.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/table.h"
#include "common/zipf.h"

namespace validity {
namespace {

// --------------------------------------------------------------- Status

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad knob");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad knob");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad knob");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(7), 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("nope");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(v.value_or(7), 7);
}

TEST(StatusOrTest, MoveOnlyTypesWork) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 5);
}

// ------------------------------------------------------------------ Rng

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(5);
  for (uint64_t n : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.NextBelow(n), n);
  }
}

TEST(RngTest, NextBelowIsRoughlyUniform) {
  Rng rng(17);
  constexpr int kBuckets = 10;
  constexpr int kDraws = 100000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.NextBelow(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(-2, 2));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), -2);
  EXPECT_EQ(*seen.rbegin(), 2);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(11);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(kDraws), 0.3, 0.01);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, GeometricBitIndexIsExponential) {
  // P(index = k) = 2^-(k+1): the Flajolet-Martin requirement (paper §5.2).
  Rng rng(23);
  constexpr int kDraws = 200000;
  int counts[8] = {0};
  for (int i = 0; i < kDraws; ++i) {
    int k = rng.GeometricBitIndex();
    if (k < 8) ++counts[k];
  }
  for (int k = 0; k < 5; ++k) {
    double expected = kDraws * std::pow(2.0, -(k + 1));
    EXPECT_NEAR(counts[k], expected, expected * 0.08 + 30)
        << "bit index " << k;
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(31);
  for (uint32_t n : {10u, 100u, 5000u}) {
    for (uint32_t k : {0u, 1u, n / 2, n}) {
      auto sample = rng.SampleWithoutReplacement(n, k);
      EXPECT_EQ(sample.size(), k);
      std::set<uint32_t> uniq(sample.begin(), sample.end());
      EXPECT_EQ(uniq.size(), k);
      for (uint32_t v : sample) EXPECT_LT(v, n);
    }
  }
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng parent(77);
  Rng a = parent.Fork(1);
  Rng b = parent.Fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(13);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

// ----------------------------------------------------------------- Zipf

TEST(ZipfTest, RejectsBadParameters) {
  EXPECT_FALSE(ZipfGenerator::Make(10, 5, 1.0).ok());
  EXPECT_FALSE(ZipfGenerator::Make(0, 10, -1.0).ok());
}

TEST(ZipfTest, SamplesStayInRange) {
  auto zipf = ZipfGenerator::Make(10, 500, 1.0);
  ASSERT_TRUE(zipf.ok());
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    int64_t v = zipf->Sample(&rng);
    EXPECT_GE(v, 10);
    EXPECT_LE(v, 500);
  }
}

TEST(ZipfTest, RankProbabilitiesFollowPowerLaw) {
  // With theta = 1, P(rank 1) / P(rank 2) = 2.
  auto zipf = ZipfGenerator::Make(0, 99, 1.0);
  ASSERT_TRUE(zipf.ok());
  Rng rng(2);
  int first = 0;
  int second = 0;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    int64_t v = zipf->Sample(&rng);
    if (v == 0) ++first;
    if (v == 1) ++second;
  }
  EXPECT_NEAR(static_cast<double>(first) / second, 2.0, 0.15);
}

TEST(ZipfTest, ThetaZeroIsUniform) {
  auto zipf = ZipfGenerator::Make(1, 4, 0.0);
  ASSERT_TRUE(zipf.ok());
  Rng rng(3);
  int counts[5] = {0};
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) ++counts[zipf->Sample(&rng)];
  for (int v = 1; v <= 4; ++v) {
    EXPECT_NEAR(counts[v], kDraws / 4, kDraws / 4 * 0.1);
  }
}

TEST(ZipfTest, EmpiricalMeanMatchesAnalyticMean) {
  auto zipf = ZipfGenerator::Make(10, 500, 1.0);
  ASSERT_TRUE(zipf.ok());
  Rng rng(4);
  auto values = zipf->SampleMany(&rng, 50000);
  double mean = 0;
  for (int64_t v : values) mean += static_cast<double>(v);
  mean /= static_cast<double>(values.size());
  EXPECT_NEAR(mean, zipf->Mean(), zipf->Mean() * 0.05);
}

// ---------------------------------------------------------------- Stats

TEST(StatsTest, RunningStatBasics) {
  RunningStat rs;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) rs.Add(x);
  EXPECT_EQ(rs.count(), 8u);
  EXPECT_DOUBLE_EQ(rs.mean(), 5.0);
  EXPECT_NEAR(rs.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(rs.min(), 2.0);
  EXPECT_EQ(rs.max(), 9.0);
  EXPECT_EQ(rs.sum(), 40.0);
}

TEST(StatsTest, CiShrinksWithSamples) {
  RunningStat small;
  RunningStat large;
  Rng rng(5);
  for (int i = 0; i < 10; ++i) small.Add(rng.NextDouble());
  for (int i = 0; i < 1000; ++i) large.Add(rng.NextDouble());
  EXPECT_GT(small.ci95_half_width(), large.ci95_half_width());
}

TEST(StatsTest, SummarizeMatchesRunningStat) {
  std::vector<double> xs{1, 2, 3, 4, 5};
  MeanCi s = Summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_EQ(s.n, 5u);
}

TEST(StatsTest, PercentileInterpolates) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(Percentile(xs, 0), 10);
  EXPECT_DOUBLE_EQ(Percentile(xs, 100), 40);
  EXPECT_DOUBLE_EQ(Percentile(xs, 50), 25);
  EXPECT_DOUBLE_EQ(Percentile({}, 50), 0);
}

// ------------------------------------------------------------ Histogram

TEST(HistogramTest, CountsAndMean) {
  Histogram h;
  h.Add(1, 2);
  h.Add(3);
  EXPECT_EQ(h.total(), 3);
  EXPECT_EQ(h.CountAt(1), 2);
  EXPECT_EQ(h.CountAt(3), 1);
  EXPECT_EQ(h.CountAt(2), 0);
  EXPECT_EQ(h.MaxValue(), 3);
  EXPECT_NEAR(h.Mean(), 5.0 / 3.0, 1e-12);
}

TEST(HistogramTest, Log2Buckets) {
  Histogram h;
  h.Add(0);
  h.Add(1);
  h.Add(2);
  h.Add(3);
  h.Add(4);
  h.Add(7);
  auto buckets = h.Log2Buckets();
  // buckets: [0]=1, [1]=1, [2,3]=2, [4,7]=2
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], std::make_pair(int64_t{0}, int64_t{1}));
  EXPECT_EQ(buckets[1], std::make_pair(int64_t{1}, int64_t{1}));
  EXPECT_EQ(buckets[2], std::make_pair(int64_t{2}, int64_t{2}));
  EXPECT_EQ(buckets[3], std::make_pair(int64_t{4}, int64_t{2}));
}

// ---------------------------------------------------------------- Table

TEST(TableTest, AlignedAndCsvOutput) {
  TablePrinter table({"name", "n"});
  table.NewRow().Cell("alpha").Cell(int64_t{5});
  table.NewRow().Cell("b").Cell(12.5, 1);
  std::ostringstream aligned;
  table.Print(aligned);
  EXPECT_NE(aligned.str().find("alpha"), std::string::npos);
  EXPECT_NE(aligned.str().find("12.5"), std::string::npos);
  std::ostringstream csv;
  table.PrintCsv(csv);
  EXPECT_EQ(csv.str(), "name,n\nalpha,5\nb,12.5\n");
}

TEST(TableTest, FormatDoubleIntegersRenderWithoutDecimals) {
  EXPECT_EQ(FormatDouble(39046.0), "39046");
  EXPECT_EQ(FormatDouble(0.125, 3), "0.125");
  EXPECT_EQ(FormatDouble(std::nan(""), 3), "nan");
}

// ---------------------------------------------------------------- Flags

TEST(FlagsTest, ParsesAllTypes) {
  FlagSet flags;
  flags.DefineInt("n", 10, "count");
  flags.DefineDouble("rate", 0.5, "rate");
  flags.DefineBool("fast", false, "speed");
  flags.DefineString("topo", "grid", "topology");
  const char* argv[] = {"prog", "--n=20", "--rate", "0.25", "--fast",
                        "--topo=random"};
  ASSERT_TRUE(flags.Parse(6, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt("n"), 20);
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.25);
  EXPECT_TRUE(flags.GetBool("fast"));
  EXPECT_EQ(flags.GetString("topo"), "random");
}

TEST(FlagsTest, RejectsUnknownAndMalformed) {
  FlagSet flags;
  flags.DefineInt("n", 1, "count");
  {
    const char* argv[] = {"prog", "--mystery=1"};
    EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
  }
  {
    const char* argv[] = {"prog", "--n=zebra"};
    EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
  }
}

// ------------------------------------------------------------ Aggregate

TEST(AggregateTest, ExactAggregateAllKinds) {
  std::vector<double> values{5, 1, 9, 3};
  std::vector<HostId> members{0, 1, 2, 3};
  EXPECT_DOUBLE_EQ(ExactAggregate(AggregateKind::kCount, values, members), 4);
  EXPECT_DOUBLE_EQ(ExactAggregate(AggregateKind::kMin, values, members), 1);
  EXPECT_DOUBLE_EQ(ExactAggregate(AggregateKind::kMax, values, members), 9);
  EXPECT_DOUBLE_EQ(ExactAggregate(AggregateKind::kSum, values, members), 18);
  EXPECT_DOUBLE_EQ(ExactAggregate(AggregateKind::kAverage, values, members),
                   4.5);
  EXPECT_DOUBLE_EQ(ExactAggregate(AggregateKind::kSum, values, {}), 0);
}

TEST(AggregateTest, DuplicateSensitivity) {
  EXPECT_TRUE(IsDuplicateSensitive(AggregateKind::kCount));
  EXPECT_TRUE(IsDuplicateSensitive(AggregateKind::kSum));
  EXPECT_TRUE(IsDuplicateSensitive(AggregateKind::kAverage));
  EXPECT_FALSE(IsDuplicateSensitive(AggregateKind::kMin));
  EXPECT_FALSE(IsDuplicateSensitive(AggregateKind::kMax));
}

}  // namespace
}  // namespace validity
