// Tests for the typed calendar-heap event queue: the (time,
// insertion-sequence) ordering contract across typed and generic events,
// RunUntil boundary semantics, executed() accounting, bucket recycling
// under stress, and a WILDFIRE determinism regression (two identical runs
// must produce identical traces).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "protocols/wildfire.h"
#include "sim/churn.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "sim/trace.h"
#include "topology/generators.h"

namespace validity::sim {
namespace {

/// Collects typed events in dispatch order.
struct TypedSink {
  std::vector<Event> events;
  static void Handle(void* ctx, const Event& e) {
    static_cast<TypedSink*>(ctx)->events.push_back(e);
  }
};

// ------------------------------------------------ ordering contract

TEST(EventQueueTest, SameTimestampRunsInScheduleOrderAcrossKinds) {
  // Typed and generic events at one instant must interleave exactly in the
  // order they were scheduled, not grouped by kind.
  EventQueue q;
  TypedSink sink;
  q.SetTypedHandler(&TypedSink::Handle, &sink);
  std::vector<int> order;
  q.ScheduleTyped(5.0, EventTag::kTimer, 0, kInvalidHost, 0, /*payload=*/100);
  q.ScheduleAt(5.0, [&] { order.push_back(static_cast<int>(sink.events.size())); });
  q.ScheduleTyped(5.0, EventTag::kTimer, 0, kInvalidHost, 0, /*payload=*/101);
  q.ScheduleAt(5.0, [&] { order.push_back(static_cast<int>(sink.events.size())); });
  q.RunAll();
  ASSERT_EQ(sink.events.size(), 2u);
  EXPECT_EQ(sink.events[0].payload, 100u);
  EXPECT_EQ(sink.events[1].payload, 101u);
  // First closure ran after exactly one typed event, second after both.
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueueTest, FifoWithinTimestampSurvivesBucketRecycling) {
  // Drain a timestamp, then schedule a new burst at a later instant that
  // reuses the recycled bucket; FIFO order must hold in both.
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 16; ++i) {
    q.ScheduleAt(1.0, [&order, i] { order.push_back(i); });
  }
  q.RunAll();
  for (int i = 0; i < 16; ++i) {
    q.ScheduleAt(2.0, [&order, i] { order.push_back(16 + i); });
  }
  q.RunAll();
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueueTest, ManyDistinctTimesPopInSortedOrder) {
  // Stress the calendar: a pseudo-random schedule over many distinct
  // timestamps (every event its own bucket) plus repeated collisions.
  EventQueue q;
  std::vector<double> popped;
  uint64_t state = 0x9e3779b97f4a7c15ULL;
  for (int i = 0; i < 2000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    double t = static_cast<double>(state % 1000) +
               (i % 3 == 0 ? 0.5 : 0.0);  // collisions and fresh times
    q.ScheduleAt(t, [&popped, &q] { popped.push_back(q.Now()); });
  }
  q.RunAll();
  ASSERT_EQ(popped.size(), 2000u);
  for (size_t i = 1; i < popped.size(); ++i) {
    EXPECT_LE(popped[i - 1], popped[i]);
  }
}

TEST(EventQueueTest, EventsScheduledMidRunAtCurrentInstantRunThisInstant) {
  // An action scheduling at Now() lands behind every event already queued
  // for this instant — the coalesced-flood pattern protocols rely on.
  EventQueue q;
  std::vector<int> order;
  q.ScheduleAt(1.0, [&] {
    order.push_back(0);
    q.ScheduleAt(1.0, [&] { order.push_back(2); });
  });
  q.ScheduleAt(1.0, [&] { order.push_back(1); });
  q.ScheduleAt(2.0, [&] { order.push_back(3); });
  q.RunAll();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// ------------------------------------------------ RunUntil boundary

TEST(EventQueueTest, RunUntilIncludesExactBoundaryAndAdvancesNow) {
  EventQueue q;
  std::vector<int> fired;
  q.ScheduleAt(1.0, [&] { fired.push_back(1); });
  q.ScheduleAt(2.0, [&] { fired.push_back(2); });
  q.ScheduleAt(2.0, [&] { fired.push_back(22); });
  q.ScheduleAt(2.5, [&] { fired.push_back(25); });
  q.RunUntil(2.0);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 22}));  // boundary inclusive
  EXPECT_EQ(q.Now(), 2.0);
  EXPECT_EQ(q.size(), 1u);
  q.RunUntil(2.25);  // no event in (2.0, 2.25]: Now still advances
  EXPECT_EQ(q.Now(), 2.25);
  EXPECT_EQ(fired.size(), 3u);
  q.RunAll();
  EXPECT_EQ(fired.back(), 25);
}

// ------------------------------------------------ executed() accounting

TEST(EventQueueTest, ExecutedCountsEveryKindOfEvent) {
  EventQueue q;
  TypedSink sink;
  q.SetTypedHandler(&TypedSink::Handle, &sink);
  q.ScheduleAt(1.0, [] {});
  q.ScheduleTyped(1.5, EventTag::kTimer, 0, kInvalidHost, 0, 0);
  q.ScheduleAt(2.0, [] {});
  EXPECT_EQ(q.executed(), 0u);
  q.RunOne();
  EXPECT_EQ(q.executed(), 1u);
  q.RunAll();
  EXPECT_EQ(q.executed(), 3u);
  EXPECT_TRUE(q.empty());
  // executed() is cumulative across bursts (the simulator's event budget
  // counts lifetime work, not queue occupancy).
  q.ScheduleAt(3.0, [] {});
  q.RunAll();
  EXPECT_EQ(q.executed(), 4u);
}

TEST(SimulatorBudgetTest, EventsExecutedMatchesQueueAccounting) {
  topology::Graph g = *topology::MakeStar(5);
  Simulator sim(g, SimOptions{});
  sim.ScheduleAt(0.0, [&] {
    Message m;
    m.kind = 1;
    sim.SendToNeighbors(0, m);  // 4 typed deliveries
  });
  sim.Run();
  // 1 generic action + 4 deliveries.
  EXPECT_EQ(sim.events_executed(), 5u);
}

// ------------------------------------------------ determinism regression

/// One WILDFIRE count query over a churned random graph, traced.
void RunTracedWildfire(TraceRecorder* trace, double* declared_value) {
  topology::Graph g = *topology::MakeRandom(300, 5.0, 17);
  std::vector<double> values(g.num_hosts(), 1.0);
  SimOptions opts;
  Simulator sim(g, opts);
  sim.AttachTrace(trace);
  Rng churn_rng(23);
  ScheduleChurn(&sim,
                MakeUniformChurn(g.num_hosts(), 0, 60, 0.0, 16.0, &churn_rng));
  protocols::QueryContext ctx;
  ctx.aggregate = AggregateKind::kCount;
  ctx.combiner = protocols::CombinerKind::kUnionCount;
  ctx.values = &values;
  ctx.d_hat = 8.0;
  protocols::WildfireProtocol wf(&sim, ctx);
  sim.AttachProgram(&wf);
  wf.Start(0);
  sim.Run();
  ASSERT_TRUE(wf.result().declared);
  *declared_value = wf.result().value;
}

TEST(DeterminismTest, IdenticalWildfireRunsProduceIdenticalTraces) {
  TraceRecorder first(1 << 22);
  TraceRecorder second(1 << 22);
  double v1 = 0, v2 = 0;
  RunTracedWildfire(&first, &v1);
  RunTracedWildfire(&second, &v2);
  EXPECT_DOUBLE_EQ(v1, v2);
  ASSERT_EQ(first.events().size(), second.events().size());
  ASSERT_GT(first.events().size(), 0u);
  for (size_t i = 0; i < first.events().size(); ++i) {
    const TraceEvent& a = first.events()[i];
    const TraceEvent& b = second.events()[i];
    ASSERT_EQ(a.kind, b.kind) << "event " << i;
    ASSERT_EQ(a.time, b.time) << "event " << i;
    ASSERT_EQ(a.src, b.src) << "event " << i;
    ASSERT_EQ(a.dst, b.dst) << "event " << i;
    // The upper bits of message_kind carry the process-global protocol
    // instance id (fresh per run by design); the protocol-local kind must
    // match exactly.
    ASSERT_EQ(a.message_kind & 0xffu, b.message_kind & 0xffu) << "event " << i;
  }
}

}  // namespace
}  // namespace validity::sim
