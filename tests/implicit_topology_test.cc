// Implicit-topology determinism: a query run over an arithmetic adjacency
// provider (topology::Topology::Grid/Ring/Torus — no CSR, no per-host
// simulator tables) is bit-identical, field for field, to the same query
// over the materialized representation:
//
//  (a) implicit grid engine vs MakeGrid-graph engine across the 34-case
//      (spec, config, hq) fingerprint matrix;
//  (b) implicit ring/torus vs the same topology with
//      SimOptions::materialize_adjacency (the CSR built from the provider's
//      own enumeration) — covers shapes with no order-matched generator;
//  (c) fresh vs session-reused vs concurrent execution on an implicit
//      topology, so the O(touched) cold-start path honors the session
//      determinism contract of docs/SESSIONS.md too.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/engine.h"
#include "sim/session.h"
#include "topology/generators.h"
#include "topology/topology.h"

namespace validity::core {
namespace {

using protocols::ProtocolKind;

struct Case {
  const char* label;
  QuerySpec spec;
  RunConfig config;
  HostId hq = 0;
};

/// The session_test 34-case matrix, with one twist: D-hat is pinned
/// explicitly. An implicit topology derives its auto D-hat from the exact
/// diameter while a graph engine estimates it heuristically; pinning keeps
/// the comparison about the adjacency path, not the diameter oracle.
std::vector<Case> FingerprintMatrix(double d_hat) {
  std::vector<Case> cases;
  auto add = [&cases, d_hat](const char* label, ProtocolKind kind,
                             AggregateKind agg, bool exact, uint32_t removals,
                             HostId hq) {
    Case c;
    c.label = label;
    c.spec.aggregate = agg;
    c.spec.exact_combiners = exact;
    c.spec.d_hat = d_hat;
    c.config.protocol = kind;
    c.config.churn_removals = removals;
    c.hq = hq;
    cases.push_back(c);
  };

  for (auto kind :
       {ProtocolKind::kAllReport, ProtocolKind::kRandomizedReport,
        ProtocolKind::kSpanningTree, ProtocolKind::kDag,
        ProtocolKind::kWildfire}) {
    add("count-exact", kind, AggregateKind::kCount, true, 0, 0);
    add("count-fm", kind, AggregateKind::kCount, false, 0, 0);
  }
  for (auto kind :
       {ProtocolKind::kAllReport, ProtocolKind::kRandomizedReport,
        ProtocolKind::kSpanningTree, ProtocolKind::kDag,
        ProtocolKind::kWildfire}) {
    add("count-churn", kind, AggregateKind::kCount, true, 60, 0);
  }
  add("wf-sum", ProtocolKind::kWildfire, AggregateKind::kSum, false, 0, 0);
  add("wf-min", ProtocolKind::kWildfire, AggregateKind::kMin, false, 0, 0);
  add("wf-max", ProtocolKind::kWildfire, AggregateKind::kMax, false, 0, 0);
  add("wf-avg", ProtocolKind::kWildfire, AggregateKind::kAverage, false, 0, 0);
  add("dag-sum", ProtocolKind::kDag, AggregateKind::kSum, false, 0, 0);
  add("dag-min", ProtocolKind::kDag, AggregateKind::kMin, true, 0, 0);
  add("tree-sum", ProtocolKind::kSpanningTree, AggregateKind::kSum, true, 0,
      0);
  add("tree-avg", ProtocolKind::kSpanningTree, AggregateKind::kAverage, true,
      0, 0);
  add("ar-sum", ProtocolKind::kAllReport, AggregateKind::kSum, true, 0, 0);
  add("ar-reverse", ProtocolKind::kAllReport, AggregateKind::kCount, true, 40,
      0);
  cases.back().config.protocol_options.all_report.routing =
      protocols::ReportRouting::kReversePath;
  add("wf-no-piggyback", ProtocolKind::kWildfire, AggregateKind::kCount,
      false, 0, 0);
  cases.back().config.protocol_options.wildfire.piggyback_broadcast = false;
  add("wf-no-early-term", ProtocolKind::kWildfire, AggregateKind::kCount,
      false, 30, 0);
  cases.back().config.protocol_options.wildfire.early_termination = false;
  add("wf-no-coalesce", ProtocolKind::kWildfire, AggregateKind::kCount, false,
      0, 0);
  cases.back().config.protocol_options.wildfire.coalesce_floods = false;
  add("dag-k3", ProtocolKind::kDag, AggregateKind::kCount, true, 50, 0);
  cases.back().config.protocol_options.dag.max_parents = 3;
  add("tree-eager", ProtocolKind::kSpanningTree, AggregateKind::kCount, true,
      50, 0);
  cases.back().config.protocol_options.spanning_tree.pacing =
      protocols::TreePacing::kEager;
  add("wf-wireless", ProtocolKind::kWildfire, AggregateKind::kCount, false, 0,
      0);
  cases.back().config.sim_options.medium = sim::MediumKind::kWireless;
  add("wf-churn-sum", ProtocolKind::kWildfire, AggregateKind::kSum, false,
      90, 0);
  cases.back().config.churn_seed = 77;
  cases.back().config.sketch_seed = 78;
  add("rr-churn-sum", ProtocolKind::kRandomizedReport, AggregateKind::kSum,
      false, 55, 0);
  add("wf-hq7", ProtocolKind::kWildfire, AggregateKind::kCount, false, 25, 7);
  return cases;
}

void ExpectIdentical(const QueryResult& a, const QueryResult& b,
                     const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.declared, b.declared);
  EXPECT_EQ(a.d_hat_used, b.d_hat_used);
  EXPECT_EQ(a.exact_full, b.exact_full);
  EXPECT_EQ(a.cost.messages, b.cost.messages);
  EXPECT_EQ(a.cost.bytes, b.cost.bytes);
  EXPECT_EQ(a.cost.max_processed, b.cost.max_processed);
  EXPECT_EQ(a.cost.declared_at, b.cost.declared_at);
  EXPECT_EQ(a.cost.last_update_at, b.cost.last_update_at);
  EXPECT_EQ(a.cost.sends_per_tick, b.cost.sends_per_tick);
  EXPECT_EQ(a.cost.computation_histogram.Items(),
            b.cost.computation_histogram.Items());
  EXPECT_EQ(a.validity.q_low, b.validity.q_low);
  EXPECT_EQ(a.validity.q_high, b.validity.q_high);
  EXPECT_EQ(a.validity.hc_size, b.validity.hc_size);
  EXPECT_EQ(a.validity.hu_size, b.validity.hu_size);
  EXPECT_EQ(a.validity.within, b.validity.within);
  EXPECT_EQ(a.validity.within_slack, b.validity.within_slack);
  EXPECT_EQ(a.resident_state_bytes, b.resident_state_bytes);
}

constexpr uint32_t kSide = 20;  // 400-host grid
constexpr double kDhat = 25.0;  // covers the 19-hop diameter with margin

TEST(ImplicitTopologyQueryTest, GridMatchesMaterializedGraphAcrossTheMatrix) {
  topology::Graph graph = *topology::MakeGrid(kSide);
  topology::Topology implicit = *topology::Topology::Grid(kSide);
  std::vector<double> values = MakeZipfValues(graph.num_hosts(), 91);
  QueryEngine graph_engine(&graph, values);
  QueryEngine implicit_engine(implicit, values);

  std::vector<Case> cases = FingerprintMatrix(kDhat);
  ASSERT_EQ(cases.size(), 34u);
  for (const Case& c : cases) {
    auto materialized = graph_engine.Run(c.spec, c.config, c.hq);
    ASSERT_TRUE(materialized.ok()) << c.label;
    auto arithmetic = implicit_engine.Run(c.spec, c.config, c.hq);
    ASSERT_TRUE(arithmetic.ok()) << c.label;
    ExpectIdentical(*materialized, *arithmetic, c.label);
  }
}

TEST(ImplicitTopologyQueryTest, RingAndTorusMatchTheirMaterializedCsr) {
  // Ring and torus have no order-matched Graph generator, so compare the
  // arithmetic neighbor path against a CSR materialized from the provider's
  // own enumeration (SimOptions::materialize_adjacency) — same engine, same
  // auto D-hat, only the adjacency representation differs.
  std::vector<topology::Topology> topologies{
      *topology::Topology::Ring(300), *topology::Topology::Torus(15)};
  for (const topology::Topology& topo : topologies) {
    SCOPED_TRACE(topo.KindName());
    QueryEngine engine(topo, MakeZipfValues(topo.num_hosts(), 17));
    std::vector<Case> cases = FingerprintMatrix(/*d_hat=*/0.0);
    for (const Case& c : cases) {
      RunConfig csr_config = c.config;
      csr_config.sim_options.materialize_adjacency = true;
      auto arithmetic = engine.Run(c.spec, c.config, c.hq);
      ASSERT_TRUE(arithmetic.ok()) << c.label;
      auto materialized = engine.Run(c.spec, csr_config, c.hq);
      ASSERT_TRUE(materialized.ok()) << c.label;
      ExpectIdentical(*arithmetic, *materialized, c.label);
    }
  }
}

TEST(ImplicitTopologyQueryTest, SessionReuseMatchesFreshOnImplicitGrid) {
  topology::Topology implicit = *topology::Topology::Grid(kSide);
  QueryEngine engine(implicit, MakeZipfValues(implicit.num_hosts(), 91));
  std::vector<Case> cases = FingerprintMatrix(kDhat);
  // One long-lived session per medium, dirtied by every previous case.
  std::unique_ptr<sim::SimulatorSession> sessions[2];
  for (const Case& c : cases) {
    auto fresh = engine.Run(c.spec, c.config, c.hq);
    ASSERT_TRUE(fresh.ok()) << c.label;
    auto& session = sessions[static_cast<int>(c.config.sim_options.medium)];
    if (session == nullptr) {
      session = std::make_unique<sim::SimulatorSession>(
          implicit, c.config.sim_options);
    }
    auto reused = engine.Run(session.get(), c.spec, c.config, c.hq);
    ASSERT_TRUE(reused.ok()) << c.label;
    ExpectIdentical(*fresh, *reused, c.label);
  }
}

TEST(ImplicitTopologyQueryTest, ConcurrentQueriesMatchSoloOnImplicitGrid) {
  topology::Topology implicit = *topology::Topology::Grid(kSide);
  QueryEngine engine(implicit, MakeZipfValues(implicit.num_hosts(), 91));

  std::vector<QueryEngine::ConcurrentQuery> queries(3);
  queries[0].spec.aggregate = AggregateKind::kCount;
  queries[0].spec.d_hat = kDhat;
  queries[0].config.protocol = ProtocolKind::kWildfire;
  queries[0].hq = 0;
  queries[1].spec.aggregate = AggregateKind::kSum;
  queries[1].spec.exact_combiners = true;
  queries[1].spec.d_hat = kDhat;
  queries[1].config.protocol = ProtocolKind::kSpanningTree;
  queries[1].hq = 13;
  queries[2].spec.aggregate = AggregateKind::kMax;
  queries[2].spec.d_hat = kDhat;
  queries[2].config.protocol = ProtocolKind::kWildfire;
  queries[2].config.sketch_seed = 5;
  queries[2].hq = 42;

  sim::SimulatorSession session(implicit, sim::SimOptions{});
  auto concurrent = engine.RunConcurrent(&session, queries);
  ASSERT_TRUE(concurrent.ok());
  ASSERT_EQ(concurrent->size(), 3u);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto solo = engine.Run(queries[i].spec, queries[i].config, queries[i].hq);
    ASSERT_TRUE(solo.ok());
    ExpectIdentical(*solo, (*concurrent)[i], "implicit-concurrent-vs-solo");
  }
}

TEST(ImplicitTopologyQueryTest, EngineRejectsSessionOverOtherTopology) {
  topology::Topology grid = *topology::Topology::Grid(kSide);
  QueryEngine engine(grid, std::vector<double>(grid.num_hosts(), 1.0));
  sim::SimulatorSession torus_session(*topology::Topology::Torus(kSide),
                                      sim::SimOptions{});
  EXPECT_EQ(engine.Run(&torus_session, QuerySpec{}, RunConfig{}, 0)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace validity::core
