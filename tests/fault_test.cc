// Deterministic fault plane tests (sim/fault.h): the determinism contract
// under active faults, the degradation semantics of each fault mode, and
// the session/reset story mid-fault-storm.
//
//  (a) DecideLinkFate is a pure function of (spec, link, instant, channel):
//      bit-repeatable, statistically faithful to the configured rates, and
//      insensitive to the sign of a zero send time (the event queue
//      normalizes -0.0 the same way).
//  (b) Fresh-construction runs, session-reused runs, concurrent lanes, and
//      sweeps at any thread count all produce bit-identical QueryResults
//      for the same (seed, FaultSpec) — faults are part of the reproducible
//      timeline, not noise.
//  (c) Each fault mode degrades the answer the way the combiner theory
//      says it must: drops shrink a monotone OR-merge, duplicates leave it
//      untouched while double-counting push-sum mass, byzantine inflation
//      overshoots the oracle interval, deadened replies undercount.
//  (d) A session reset mid-fault-storm (delayed + duplicated deliveries
//      still pending) releases every message slot and leaves the session
//      bit-compatible with a fresh simulator (run under ASan in CI).
//  (e) Hosts joining at runtime under a continuous query on a long-lived
//      session converge to the same answers as a fresh run with the same
//      join script, and the joins rewind with the next session reset.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "core/experiment.h"
#include "protocols/continuous.h"
#include "sim/fault.h"
#include "sim/session.h"
#include "topology/generators.h"

namespace validity::core {
namespace {

using protocols::ProtocolKind;
using sim::ByzantineMode;
using sim::DecideLinkFate;
using sim::FaultSpec;
using sim::IsByzantineHost;
using sim::LinkFate;

TEST(LinkFateTest, IsAPureFunctionOfItsArguments) {
  FaultSpec spec;
  spec.seed = 7;
  spec.drop_rate = 0.3;
  spec.duplicate_rate = 0.2;
  spec.delay_rate = 0.25;
  spec.max_delay_hops = 3;
  for (HostId from = 0; from < 20; ++from) {
    for (uint32_t k = 0; k < 4; ++k) {
      SimTime t = 0.25 * k;
      LinkFate a = DecideLinkFate(spec, from, from + 1, t, /*channel=*/1);
      LinkFate b = DecideLinkFate(spec, from, from + 1, t, /*channel=*/1);
      EXPECT_EQ(a.drop, b.drop);
      EXPECT_EQ(a.duplicate, b.duplicate);
      EXPECT_EQ(a.delay_hops, b.delay_hops);
      EXPECT_EQ(a.duplicate_delay_hops, b.duplicate_delay_hops);
    }
  }
  // Direction, instant, and channel all matter: the fates across a sample
  // of links are not all identical.
  LinkFate fwd = DecideLinkFate(spec, 1, 2, 0.0, 1);
  bool any_differs = false;
  for (HostId from = 0; from < 64 && !any_differs; ++from) {
    LinkFate other = DecideLinkFate(spec, from, from + 1, 0.0, 1);
    any_differs = other.drop != fwd.drop || other.duplicate != fwd.duplicate;
  }
  EXPECT_TRUE(any_differs);
}

TEST(LinkFateTest, RespectsConfiguredRates) {
  FaultSpec spec;
  spec.seed = 11;
  spec.drop_rate = 0.3;
  spec.duplicate_rate = 0.1;
  spec.delay_rate = 0.2;
  spec.max_delay_hops = 4;
  int drops = 0, duplicates = 0, delays = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    HostId from = static_cast<HostId>(i % 500);
    HostId to = static_cast<HostId>((i * 7 + 1) % 500);
    SimTime t = static_cast<SimTime>(i / 500);
    LinkFate fate = DecideLinkFate(spec, from, to, t, 1);
    if (fate.drop) ++drops;
    if (fate.duplicate) ++duplicates;
    if (fate.delay_hops > 0) ++delays;
    EXPECT_LE(fate.delay_hops, spec.max_delay_hops);
    EXPECT_LE(fate.duplicate_delay_hops, spec.max_delay_hops);
  }
  EXPECT_NEAR(drops / static_cast<double>(kSamples), 0.3, 0.02);
  // Duplication and delay are only observable on messages that survived the
  // drop draw, so their observed rates scale by (1 - drop_rate).
  EXPECT_NEAR(duplicates / static_cast<double>(kSamples), 0.1 * 0.7, 0.02);
  EXPECT_NEAR(delays / static_cast<double>(kSamples), 0.2 * 0.7, 0.02);
}

TEST(LinkFateTest, DisabledSpecNeverFaults) {
  FaultSpec spec;  // all rates zero
  for (int i = 0; i < 1000; ++i) {
    LinkFate fate =
        DecideLinkFate(spec, i, i + 1, static_cast<SimTime>(i), 1);
    EXPECT_FALSE(fate.drop);
    EXPECT_FALSE(fate.duplicate);
    EXPECT_EQ(fate.delay_hops, 0u);
  }
}

TEST(LinkFateTest, NegativeZeroSendTimeMatchesPositiveZero) {
  // EventQueue::TimeKey normalizes -0.0 to +0.0; the fate hash must agree
  // or the first tick's faults would depend on how t=0 was computed.
  FaultSpec spec;
  spec.seed = 3;
  spec.drop_rate = 0.5;
  spec.duplicate_rate = 0.5;
  for (HostId from = 0; from < 32; ++from) {
    LinkFate pos = DecideLinkFate(spec, from, from + 1, 0.0, 1);
    LinkFate neg = DecideLinkFate(spec, from, from + 1, -0.0, 1);
    EXPECT_EQ(pos.drop, neg.drop);
    EXPECT_EQ(pos.duplicate, neg.duplicate);
    EXPECT_EQ(pos.delay_hops, neg.delay_hops);
  }
}

TEST(ByzantineMembershipTest, FractionBoundsAndDeterminism) {
  FaultSpec none;
  none.byzantine_mode = ByzantineMode::kInflate;
  none.byzantine_fraction = 0.0;
  FaultSpec all = none;
  all.byzantine_fraction = 1.0;
  FaultSpec some = none;
  some.byzantine_fraction = 0.25;
  some.seed = 5;
  int members = 0;
  for (HostId h = 0; h < 4000; ++h) {
    EXPECT_FALSE(IsByzantineHost(none, h));
    EXPECT_TRUE(IsByzantineHost(all, h));
    bool first = IsByzantineHost(some, h);
    EXPECT_EQ(first, IsByzantineHost(some, h));
    if (first) ++members;
  }
  EXPECT_NEAR(members / 4000.0, 0.25, 0.03);
}

// --- Determinism contract under active faults -----------------------------

void ExpectIdentical(const QueryResult& a, const QueryResult& b,
                     const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.value, b.value);
  EXPECT_EQ(a.declared, b.declared);
  EXPECT_EQ(a.d_hat_used, b.d_hat_used);
  EXPECT_EQ(a.exact_full, b.exact_full);
  EXPECT_EQ(a.cost.messages, b.cost.messages);
  EXPECT_EQ(a.cost.bytes, b.cost.bytes);
  EXPECT_EQ(a.cost.max_processed, b.cost.max_processed);
  EXPECT_EQ(a.cost.declared_at, b.cost.declared_at);
  EXPECT_EQ(a.cost.last_update_at, b.cost.last_update_at);
  EXPECT_EQ(a.cost.sends_per_tick, b.cost.sends_per_tick);
  EXPECT_EQ(a.cost.computation_histogram.Items(),
            b.cost.computation_histogram.Items());
  EXPECT_EQ(a.validity.q_low, b.validity.q_low);
  EXPECT_EQ(a.validity.q_high, b.validity.q_high);
  EXPECT_EQ(a.validity.hc_size, b.validity.hc_size);
  EXPECT_EQ(a.validity.hu_size, b.validity.hu_size);
  EXPECT_EQ(a.validity.within, b.validity.within);
  EXPECT_EQ(a.validity.within_slack, b.validity.within_slack);
  EXPECT_EQ(a.resident_state_bytes, b.resident_state_bytes);
}

/// One level per fault mode, plus mixed weather and faults-under-churn.
std::vector<std::pair<const char*, FaultSpec>> FaultMatrix() {
  std::vector<std::pair<const char*, FaultSpec>> specs;
  FaultSpec drop;
  drop.seed = 7;
  drop.drop_rate = 0.15;
  specs.emplace_back("drop", drop);
  FaultSpec dup;
  dup.seed = 8;
  dup.duplicate_rate = 0.2;
  dup.delay_rate = 0.25;
  dup.max_delay_hops = 3;
  specs.emplace_back("dup+delay", dup);
  FaultSpec inflate;
  inflate.seed = 10;
  inflate.byzantine_mode = ByzantineMode::kInflate;
  inflate.byzantine_fraction = 0.15;
  specs.emplace_back("byz-inflate", inflate);
  FaultSpec deaden;
  deaden.seed = 11;
  deaden.byzantine_mode = ByzantineMode::kDeadenReplies;
  deaden.byzantine_fraction = 0.25;
  specs.emplace_back("byz-deaden", deaden);
  FaultSpec stale;
  stale.seed = 12;
  stale.byzantine_mode = ByzantineMode::kStaleReplay;
  stale.byzantine_fraction = 0.25;
  specs.emplace_back("byz-stale", stale);
  FaultSpec weather;
  weather.seed = 13;
  weather.drop_rate = 0.08;
  weather.duplicate_rate = 0.05;
  weather.delay_rate = 0.1;
  weather.max_delay_hops = 2;
  weather.byzantine_mode = ByzantineMode::kInflate;
  weather.byzantine_fraction = 0.1;
  specs.emplace_back("weather", weather);
  return specs;
}

class FaultFingerprintTest : public ::testing::Test {
 protected:
  FaultFingerprintTest()
      : graph_(*topology::MakeGnutellaLike(400, 91)),
        engine_(&graph_, MakeZipfValues(400, 91)) {}

  topology::Graph graph_;
  QueryEngine engine_;
};

TEST_F(FaultFingerprintTest, FreshAndReusedRunsAreBitIdenticalUnderFaults) {
  // Per fault level: WILDFIRE/FM, WILDFIRE/exact under churn (faults and
  // churn composed), SPANNINGTREE/exact, GOSSIP, DAG — body-path, inline
  // wire, and mass-based traffic all covered. Every session case runs on a
  // simulator dirtied by all previous cases.
  struct ProtoCase {
    const char* label;
    ProtocolKind kind;
    AggregateKind agg;
    bool exact;
    uint32_t removals;
  };
  const std::vector<ProtoCase> protos = {
      {"wf-fm", ProtocolKind::kWildfire, AggregateKind::kCount, false, 0},
      {"wf-churn", ProtocolKind::kWildfire, AggregateKind::kSum, true, 60},
      {"tree", ProtocolKind::kSpanningTree, AggregateKind::kCount, true, 0},
      {"gossip", ProtocolKind::kGossip, AggregateKind::kCount, false, 0},
      {"dag", ProtocolKind::kDag, AggregateKind::kCount, false, 0},
  };
  sim::SimulatorSession session(&graph_, sim::SimOptions{});
  for (const auto& [fault_label, fault] : FaultMatrix()) {
    for (const ProtoCase& pc : protos) {
      SCOPED_TRACE(fault_label);
      QuerySpec spec;
      spec.aggregate = pc.agg;
      spec.exact_combiners = pc.exact;
      RunConfig config;
      config.protocol = pc.kind;
      config.churn_removals = pc.removals;
      config.fault = fault;
      auto fresh = engine_.Run(spec, config, 0);
      ASSERT_TRUE(fresh.ok()) << pc.label;
      auto reused = engine_.Run(&session, spec, config, 0);
      ASSERT_TRUE(reused.ok()) << pc.label;
      ExpectIdentical(*fresh, *reused, pc.label);
    }
  }
  EXPECT_GT(session.epoch(), 25u);
}

TEST_F(FaultFingerprintTest, ConcurrentLanesMatchTheirSoloRunsUnderFaults) {
  FaultSpec fault;
  fault.seed = 21;
  fault.drop_rate = 0.1;
  fault.duplicate_rate = 0.1;
  fault.max_delay_hops = 2;
  fault.delay_rate = 0.15;
  fault.byzantine_mode = ByzantineMode::kInflate;
  fault.byzantine_fraction = 0.1;

  std::vector<QueryEngine::ConcurrentQuery> queries(3);
  queries[0].spec.aggregate = AggregateKind::kCount;
  queries[0].config.protocol = ProtocolKind::kWildfire;
  queries[0].hq = 0;
  queries[1].spec.aggregate = AggregateKind::kSum;
  queries[1].spec.exact_combiners = true;
  queries[1].config.protocol = ProtocolKind::kSpanningTree;
  queries[1].hq = 13;
  queries[2].spec.aggregate = AggregateKind::kCount;
  queries[2].config.protocol = ProtocolKind::kWildfire;
  queries[2].config.sketch_seed = 5;
  queries[2].hq = 42;
  for (auto& q : queries) q.config.fault = fault;

  sim::SimulatorSession session(&graph_, sim::SimOptions{});
  auto concurrent = engine_.RunConcurrent(&session, queries);
  ASSERT_TRUE(concurrent.ok());
  ASSERT_EQ(concurrent->size(), 3u);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto solo = engine_.Run(queries[i].spec, queries[i].config, queries[i].hq);
    ASSERT_TRUE(solo.ok());
    ExpectIdentical(*solo, (*concurrent)[i], "faulted-concurrent-vs-solo");
  }
}

TEST_F(FaultFingerprintTest, ConcurrentLanesMustAgreeOnTheFaultPlane) {
  std::vector<QueryEngine::ConcurrentQuery> queries(2);
  queries[0].config.fault.drop_rate = 0.1;
  queries[1].config.fault.drop_rate = 0.2;  // different weather: rejected
  sim::SimulatorSession session(&graph_, sim::SimOptions{});
  EXPECT_EQ(engine_.RunConcurrent(&session, queries).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FaultSweepTest, SweepWithFaultAxisIsThreadCountInvariant) {
  topology::Graph g = *topology::MakeRandom(300, 5.0, 42);
  QueryEngine engine(&g, MakeZipfValues(300, 43));
  QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;

  std::vector<ProtocolSpec> lineup;
  lineup.push_back({"wildfire", ProtocolKind::kWildfire,
                    protocols::ProtocolOptions{}});
  lineup.push_back({"gossip", ProtocolKind::kGossip,
                    protocols::ProtocolOptions{}});

  ChurnSweepOptions options;
  options.trials = 3;
  FaultSpec drop;
  drop.drop_rate = 0.1;
  FaultSpec inflate;
  inflate.byzantine_mode = ByzantineMode::kInflate;
  inflate.byzantine_fraction = 0.1;
  options.fault_levels = {FaultSpec{}, drop, inflate};
  const std::vector<uint32_t> removals{0, 40};

  options.threads = 1;
  auto serial = RunChurnSweep(engine, spec, 0, lineup, removals, options);
  options.threads = 4;
  auto parallel = RunChurnSweep(engine, spec, 0, lineup, removals, options);

  ASSERT_EQ(serial.size(),
            options.fault_levels.size() * removals.size() * lineup.size());
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i].protocol, parallel[i].protocol);
    EXPECT_EQ(serial[i].fault, parallel[i].fault);
    EXPECT_EQ(serial[i].removals, parallel[i].removals);
    EXPECT_EQ(serial[i].value.mean, parallel[i].value.mean);
    EXPECT_EQ(serial[i].value.ci95, parallel[i].value.ci95);
    EXPECT_EQ(serial[i].messages.mean, parallel[i].messages.mean);
    EXPECT_EQ(serial[i].within_fraction, parallel[i].within_fraction);
  }
  // The fault label is part of the row, and the clean level is labeled so.
  EXPECT_EQ(serial[0].fault, "none");
  EXPECT_NE(serial[removals.size() * lineup.size()].fault, "none");
}

// --- Degradation semantics ------------------------------------------------

class FaultEffectsTest : public ::testing::Test {
 protected:
  FaultEffectsTest()
      : graph_(*topology::MakeRandom(300, 5.0, 17)),
        engine_(&graph_, std::vector<double>(300, 1.0)) {}

  QueryResult RunWith(const FaultSpec& fault, ProtocolKind kind,
                      bool exact = true, bool piggyback = true) {
    QuerySpec spec;
    spec.aggregate = AggregateKind::kCount;
    spec.exact_combiners = exact;
    RunConfig config;
    config.protocol = kind;
    config.fault = fault;
    config.protocol_options.wildfire.piggyback_broadcast = piggyback;
    auto result = engine_.Run(spec, config, 0);
    VALIDITY_CHECK(result.ok(), "%s", result.status().ToString().c_str());
    return *result;
  }

  topology::Graph graph_;
  QueryEngine engine_;
};

TEST_F(FaultEffectsTest, DropsShrinkTheMonotoneOrMergeAnswer) {
  QueryResult clean = RunWith(FaultSpec{}, ProtocolKind::kWildfire);
  EXPECT_EQ(clean.value, 300.0);
  FaultSpec lossy;
  lossy.seed = 4;
  lossy.drop_rate = 0.5;
  QueryResult dropped = RunWith(lossy, ProtocolKind::kWildfire);
  // Exact union combiner: hq's set is a subset of the clean run's, never
  // more. At 50% loss it is almost surely a strict subset.
  EXPECT_LE(dropped.value, clean.value);
  EXPECT_LT(dropped.value, clean.value);
  EXPECT_GT(dropped.value, 0.0);
}

TEST_F(FaultEffectsTest, DuplicatesAreInvisibleToOrMergeButMoveGossipMass) {
  FaultSpec dup;
  dup.seed = 6;
  dup.duplicate_rate = 0.35;
  dup.max_delay_hops = 0;  // duplicates land at the original instant
  QueryResult wf_clean = RunWith(FaultSpec{}, ProtocolKind::kWildfire);
  QueryResult wf_dup = RunWith(dup, ProtocolKind::kWildfire);
  // FM/union OR-merge is duplicate-insensitive: the answer is EXACTLY the
  // clean one, even though more messages were delivered.
  EXPECT_EQ(wf_dup.value, wf_clean.value);
  EXPECT_GT(wf_dup.cost.messages, wf_clean.cost.messages);

  QueryResult go_clean = RunWith(FaultSpec{}, ProtocolKind::kGossip, false);
  QueryResult go_dup = RunWith(dup, ProtocolKind::kGossip, false);
  // Push-sum conservation is violated by replayed mass: the estimate moves.
  EXPECT_NE(go_dup.value, go_clean.value);
}

TEST_F(FaultEffectsTest, ByzantineInflationOvershootsTheOracle) {
  FaultSpec byz;
  byz.seed = 9;
  byz.byzantine_mode = ByzantineMode::kInflate;
  byz.byzantine_fraction = 0.2;
  // 5x the network: default phantoms (= num_hosts) would land exactly on
  // the 2x approximation-slack boundary.
  byz.inflate_phantoms = 1500;
  QueryResult clean = RunWith(FaultSpec{}, ProtocolKind::kWildfire);
  QueryResult inflated = RunWith(byz, ProtocolKind::kWildfire);
  // Phantom members inflate the union beyond any honest network state.
  EXPECT_GT(inflated.value, clean.value);
  EXPECT_FALSE(inflated.validity.within_slack);
}

TEST_F(FaultEffectsTest, DeadenedRepliesUndercount) {
  FaultSpec byz;
  byz.seed = 14;
  byz.byzantine_mode = ByzantineMode::kDeadenReplies;
  byz.byzantine_fraction = 0.3;
  // Piggyback off: aggregates travel only on reply channels, so a deadened
  // host's subtree contributions genuinely vanish.
  QueryResult clean =
      RunWith(FaultSpec{}, ProtocolKind::kWildfire, true, false);
  QueryResult deadened = RunWith(byz, ProtocolKind::kWildfire, true, false);
  EXPECT_LE(deadened.value, clean.value);
  EXPECT_LT(deadened.value, clean.value);
}

TEST_F(FaultEffectsTest, StaleReplayIsDeterministicAndBounded) {
  FaultSpec byz;
  byz.seed = 15;
  byz.byzantine_mode = ByzantineMode::kStaleReplay;
  byz.byzantine_fraction = 0.3;
  QueryResult a = RunWith(byz, ProtocolKind::kWildfire);
  QueryResult b = RunWith(byz, ProtocolKind::kWildfire);
  ExpectIdentical(a, b, "stale-replay-repeat");
  // Replaying a host's own earlier (honest) state can stall convergence but
  // cannot invent members: the union stays within the true count.
  EXPECT_GT(a.value, 0.0);
  EXPECT_LE(a.value, 300.0);
}

// --- Reset mid-fault-storm ------------------------------------------------

/// Hop-limited flood with no duplicate suppression: under heavy duplicate
/// and delay faults the queue holds a deep backlog of slab-referencing
/// deliveries at any instant.
class FloodProgram : public sim::HostProgram {
 public:
  explicit FloodProgram(sim::Simulator* sim) : sim_(sim) {}
  void OnMessage(HostId self, const sim::Message& msg) override {
    int32_t hop = msg.LoadInline<int32_t>();
    if (hop >= 4) return;
    sim::Message next;
    next.kind = 1;
    next.StoreInline<int32_t>(hop + 1, sizeof(int32_t));
    sim_->SendToNeighbors(self, next);
  }

 private:
  sim::Simulator* sim_;
};

TEST(FaultStormResetTest, SessionResetMidStormReleasesEveryMessageSlot) {
  topology::Graph g = *topology::MakeRandom(300, 5.0, 5);
  QueryEngine engine(&g, std::vector<double>(300, 1.0));
  sim::SimulatorSession session(&g, sim::SimOptions{});

  auto fresh = engine.Run(QuerySpec{}, RunConfig{}, 0);
  ASSERT_TRUE(fresh.ok());

  // Storm: a fanning flood under heavy duplication and delay, abandoned
  // mid-flight with delayed/duplicated deliveries still pending. The reset
  // must release every slab reference they hold (Simulator::Reset DCHECKs
  // refs == 0; ASan in CI catches anything the slab loop missed).
  sim::FaultSpec storm;
  storm.seed = 99;
  storm.drop_rate = 0.2;
  storm.duplicate_rate = 0.4;
  storm.delay_rate = 0.4;
  storm.max_delay_hops = 4;
  sim::Simulator& sim = session.simulator();
  sim.InstallFaults(&storm);
  FloodProgram flood(&sim);
  sim.AttachProgram(&flood);
  sim::Message msg;
  msg.kind = 1;
  msg.StoreInline<int32_t>(0, sizeof(int32_t));
  sim.SendToNeighbors(0, msg);
  sim.RunUntil(2.0);
  EXPECT_GT(sim.metrics().messages_sent(), 0u);
  sim.AttachProgram(nullptr);
  session.Reset();

  // The storm left nothing behind: the next query on the session is
  // bit-identical to the pre-storm fresh run, and the fault plane is gone.
  EXPECT_EQ(sim.faults(), nullptr);
  auto after = engine.Run(&session, QuerySpec{}, RunConfig{}, 0);
  ASSERT_TRUE(after.ok());
  ExpectIdentical(*fresh, *after, "post-storm-session-vs-fresh");
}

// --- Runtime joins under a continuous query on a long-lived session -------

TEST(FaultSessionTest, RuntimeJoinsUnderContinuousQueryMatchFreshRun) {
  topology::Graph g = *topology::MakeRandom(200, 5.0, 71);
  // Values sized past the base network so joined hosts have attributes.
  std::vector<double> values(210, 1.0);
  QueryEngine engine(&g, std::vector<double>(200, 1.0));

  // Long-lived session, dirtied by a normal query first.
  sim::SimulatorSession session(&g, sim::SimOptions{});
  ASSERT_TRUE(engine.Run(&session, QuerySpec{}, RunConfig{}, 0).ok());
  session.Reset();

  const double d_hat = 10;
  const double window = 25;
  const uint32_t num_windows = 4;
  auto make_ctx = [&values, d_hat] {
    protocols::QueryContext ctx;
    ctx.aggregate = AggregateKind::kCount;
    ctx.combiner = protocols::CombinerKind::kUnionCount;
    ctx.values = &values;
    ctx.d_hat = d_hat;
    ctx.fm.num_vectors = 16;
    return ctx;
  };
  // The same join script on both runs: five hosts join mid-window-2, each
  // wired to well-known anchors near hq.
  auto schedule_joins = [](sim::Simulator* sim) {
    for (uint32_t j = 0; j < 5; ++j) {
      sim->ScheduleAt(30.0 + 0.5 * j, [sim, j] {
        auto joined = sim->AddHost({j, j + 1, j + 2});
        VALIDITY_CHECK(joined.ok(), "join failed");
      });
    }
  };

  sim::Simulator& warm = session.simulator();
  protocols::ContinuousWildfire on_session(
      &warm, make_ctx(), protocols::ContinuousOptions{window, num_windows});
  schedule_joins(&warm);
  ASSERT_TRUE(on_session.Start(0).ok());
  warm.Run();

  sim::Simulator fresh(g, sim::SimOptions{});
  protocols::ContinuousWildfire on_fresh(
      &fresh, make_ctx(), protocols::ContinuousOptions{window, num_windows});
  schedule_joins(&fresh);
  ASSERT_TRUE(on_fresh.Start(0).ok());
  fresh.Run();

  ASSERT_EQ(on_session.results().size(), num_windows);
  ASSERT_EQ(on_fresh.results().size(), num_windows);
  for (uint32_t w = 0; w < num_windows; ++w) {
    const auto& a = on_session.results()[w];
    const auto& b = on_fresh.results()[w];
    ASSERT_TRUE(a.declared) << "window " << w;
    EXPECT_EQ(a.issued_at, b.issued_at);
    EXPECT_EQ(a.declared_at, b.declared_at);
    EXPECT_EQ(a.value, b.value);
  }
  // Windows before the joins count the base network; windows after count
  // the joined hosts too (exact union combiner).
  EXPECT_EQ(on_session.results().front().value, 200.0);
  EXPECT_EQ(on_session.results().back().value, 205.0);

  // The joins rewind with the session: the next epoch sees the base graph.
  warm.AttachProgram(nullptr);
  session.Reset();
  EXPECT_EQ(warm.num_hosts(), 200u);
  auto plain = engine.Run(QuerySpec{}, RunConfig{}, 0);
  auto reused = engine.Run(&session, QuerySpec{}, RunConfig{}, 0);
  ASSERT_TRUE(plain.ok());
  ASSERT_TRUE(reused.ok());
  ExpectIdentical(*plain, *reused, "post-join-session-vs-fresh");
}

}  // namespace
}  // namespace validity::core
