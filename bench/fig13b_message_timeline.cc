// Figure 13(b): messages sent by WILDFIRE at each time instant.
//
// Paper setup (§6.6.2): count query; plot messages per tick for each
// topology. Expected shape: the curve peaks close to D*delta and falls to
// zero by 2*D*delta, which is why overestimating D-hat costs latency but
// no messages.

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/engine.h"

namespace validity {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineInt("hosts", 40000, "network size for synthetic topologies");
  flags.DefineInt("grid_side", 100, "grid side");
  flags.DefineInt("seed", 42, "base seed");
  bench::DefineThreadsFlag(&flags);
  ParseFlagsOrDie(&flags, argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const uint32_t hosts = static_cast<uint32_t>(flags.GetInt("hosts"));

  bench::PrintHeader(
      "Fig. 13(b) - WILDFIRE messages per time instant (count)",
      "traffic peaks near D*delta (arrow) and dies by 2*D*delta");

  const std::vector<std::string> topologies{"random", "power-law", "grid",
                                            "gnutella"};
  struct Point {
    uint32_t hosts;
    uint32_t diameter;
    core::QueryResult result;
  };
  auto points = core::ParallelMap<Point>(
      topologies.size(), bench::GetThreads(flags), [&](size_t i) {
        const std::string& topo = topologies[i];
        uint32_t n = topo == "grid"
                         ? static_cast<uint32_t>(flags.GetInt("grid_side")) *
                               static_cast<uint32_t>(flags.GetInt("grid_side"))
                         : hosts;
        auto graph = bench::MakeTopology(topo, n, seed);
        VALIDITY_CHECK(graph.ok());
        core::QueryEngine engine(&*graph,
                                 core::MakeZipfValues(graph->num_hosts(),
                                                      seed + 1));
        uint32_t diameter = engine.EstimatedDiameter();

        core::QuerySpec spec;
        spec.aggregate = AggregateKind::kCount;
        spec.fm_vectors = 16;
        spec.d_hat = 2.0 * diameter;  // deliberate overestimate
        core::RunConfig config;
        config.sketch_seed = seed;
        if (topo == "grid") {
          config.sim_options.medium = sim::MediumKind::kWireless;
        }
        auto result = engine.Run(spec, config, 0);
        VALIDITY_CHECK(result.ok());
        return Point{graph->num_hosts(), diameter, *std::move(result)};
      });

  for (size_t i = 0; i < topologies.size(); ++i) {
    const Point& point = points[i];
    const auto& ticks = point.result.cost.sends_per_tick;
    size_t peak = 0;
    for (size_t t = 0; t < ticks.size(); ++t) {
      if (ticks[t] > ticks[peak]) peak = t;
    }
    std::printf("--- %s: |H|=%u, D~%u, peak at t=%zu (D*delta marker: %u), "
                "silent from t=%.0f (2*D marker: %u) ---\n",
                topologies[i].c_str(), point.hosts, point.diameter, peak,
                point.diameter, point.result.cost.last_update_at,
                2 * point.diameter);

    TablePrinter table({"tick", "messages"});
    for (size_t t = 0; t < ticks.size(); ++t) {
      table.NewRow().Cell(static_cast<int64_t>(t)).Cell(
          static_cast<int64_t>(ticks[t]));
    }
    bench::EmitTable(table);
  }
  return 0;
}

}  // namespace
}  // namespace validity

int main(int argc, char** argv) { return validity::Main(argc, argv); }
