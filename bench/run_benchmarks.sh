#!/usr/bin/env bash
# Runs the google-benchmark micro suite and refreshes BENCH_micro.json at
# the repo root — the perf-trajectory baseline future PRs are measured
# against.
#
# Usage:
#   bench/run_benchmarks.sh                 # full suite -> BENCH_micro.json
#   BENCH_FILTER='BM_EventQueue.*' bench/run_benchmarks.sh
#       # subset -> BENCH_micro.filtered.json (never clobbers the baseline)
#   BUILD_DIR=/tmp/vb bench/run_benchmarks.sh
#
# The figure-reproduction benches (fig06..fig13b, ablations, price_summary)
# are plain programs built alongside; run them directly from $BUILD_DIR.

set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$ROOT/build-bench}"

cmake -B "$BUILD_DIR" -S "$ROOT" \
  -DCMAKE_BUILD_TYPE=Release \
  -DVALIDITY_BUILD_BENCHMARKS=ON
cmake --build "$BUILD_DIR" -j"$(nproc)" --target micro_benchmarks

# A filtered run must not overwrite the committed full-suite baseline.
OUT="$ROOT/BENCH_micro.json"
if [[ -n "${BENCH_FILTER:-}" ]]; then
  OUT="$ROOT/BENCH_micro.filtered.json"
fi

"$BUILD_DIR/micro_benchmarks" \
  ${BENCH_FILTER:+--benchmark_filter="$BENCH_FILTER"} \
  --benchmark_format=json \
  --benchmark_out="$OUT" \
  --benchmark_out_format=json

echo "wrote $OUT"
