// Figure 13(a): time cost on Random topologies.
//
// Paper setup (§6.6.2): time cost vs |H|. Expected shapes: SPANNINGTREE
// provides the least latency (its information flow finishes with the last
// causal report chain, ~2*D*delta); WILDFIRE declares at exactly
// t0 + 2*D-hat*delta — constant in |H|, linear in the D-hat overestimate.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"

namespace validity {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineString("sizes", "5000,10000,20000,40000",
                     "comma-separated network sizes");
  flags.DefineInt("seed", 42, "base seed");
  bench::DefineThreadsFlag(&flags);
  ParseFlagsOrDie(&flags, argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  std::vector<uint32_t> sizes = bench::ParseUint32List(flags.GetString("sizes"));

  bench::PrintHeader(
      "Fig. 13(a) - time cost on Random topologies",
      "ST last causal chain ~2D*delta (least); WILDFIRE exactly "
      "2*D-hat*delta, growing with the overestimate");

  struct Row {
    uint32_t hosts;
    double diameter, st_time, wf1, wf2, wf4;
  };
  auto rows = core::ParallelMap<Row>(
      sizes.size(), bench::GetThreads(flags), [&](size_t i) {
        const uint32_t n = sizes[i];
        auto graph = bench::MakeTopology("random", n, seed);
        VALIDITY_CHECK(graph.ok());
        core::QueryEngine engine(&*graph,
                                 core::MakeZipfValues(graph->num_hosts(),
                                                      seed + 1));
        double diameter = engine.EstimatedDiameter();

        auto run = [&](protocols::ProtocolKind kind, double d_hat) {
          core::QuerySpec spec;
          spec.aggregate = AggregateKind::kCount;
          spec.fm_vectors = 16;
          spec.d_hat = d_hat;
          core::RunConfig config;
          config.protocol = kind;
          config.sketch_seed = seed;
          auto result = engine.Run(spec, config, 0);
          VALIDITY_CHECK(result.ok());
          return *std::move(result);
        };

        // SPANNINGTREE: the §6.3 chain metric — when the root's answer
        // stopped changing (the declaration timer adds no message chain).
        auto st = run(protocols::ProtocolKind::kSpanningTree, diameter + 2);
        auto wf1 = run(protocols::ProtocolKind::kWildfire, diameter + 2);
        auto wf2 = run(protocols::ProtocolKind::kWildfire, 2 * diameter);
        auto wf4 = run(protocols::ProtocolKind::kWildfire, 4 * diameter);
        return Row{n, diameter, st.cost.last_update_at,
                   wf1.cost.declared_at, wf2.cost.declared_at,
                   wf4.cost.declared_at};
      });

  TablePrinter table({"hosts", "diam", "st_time", "wf_dhat=D+2", "wf_dhat=2D",
                      "wf_dhat=4D"});
  for (const Row& row : rows) {
    table.NewRow()
        .Cell(static_cast<int64_t>(row.hosts))
        .Cell(row.diameter, 0)
        .Cell(row.st_time, 1)
        .Cell(row.wf1, 1)
        .Cell(row.wf2, 1)
        .Cell(row.wf4, 1);
  }
  bench::EmitTable(table);
  return 0;
}

}  // namespace
}  // namespace validity

int main(int argc, char** argv) { return validity::Main(argc, argv); }
