// The headline numbers (§1.1, §6.6, §7): "WILDFIRE incurs similar costs as
// best-effort algorithms for min and max queries, but has to pay ~5 times
// higher communication cost for count and sum queries."
//
// One table: WILDFIRE/SPANNINGTREE message-cost ratio per (topology,
// aggregate).

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "core/engine.h"

namespace validity {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineInt("hosts", 20000, "synthetic topology size");
  flags.DefineInt("seed", 42, "base seed");
  bench::DefineThreadsFlag(&flags);
  ParseFlagsOrDie(&flags, argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const uint32_t hosts = static_cast<uint32_t>(flags.GetInt("hosts"));

  bench::PrintHeader(
      "Price of validity - WILDFIRE vs SPANNINGTREE message cost",
      "count/sum ~4-5x, min/max ~1x (below 1 on Grid: early aggregation)");

  const std::vector<std::string> topologies{"gnutella", "random", "power-law",
                                            "grid"};
  const std::vector<AggregateKind> aggregates{
      AggregateKind::kCount, AggregateKind::kSum, AggregateKind::kMin,
      AggregateKind::kMax};
  struct Cell {
    uint64_t st = 0;
    uint64_t wf = 0;
  };
  // One task per (topology, aggregate) cell on shared per-topology engines;
  // graphs build up front so tasks only run queries.
  std::vector<StatusOr<topology::Graph>> graphs;
  graphs.reserve(topologies.size());  // engines keep pointers into graphs
  std::vector<std::unique_ptr<core::QueryEngine>> engines;
  for (const std::string& topo : topologies) {
    uint32_t n = topo == "grid" ? 10000 : hosts;
    if (topo == "gnutella") n = topology::kGnutellaCrawlSize;
    graphs.push_back(bench::MakeTopology(topo, n, seed));
    VALIDITY_CHECK(graphs.back().ok());
    engines.push_back(std::make_unique<core::QueryEngine>(
        &*graphs.back(),
        core::MakeZipfValues(graphs.back()->num_hosts(), seed + 1)));
  }
  auto cells = core::ParallelMap<Cell>(
      topologies.size() * aggregates.size(), bench::GetThreads(flags),
      [&](size_t i) {
        const size_t ti = i / aggregates.size();
        const AggregateKind agg = aggregates[i % aggregates.size()];
        auto run = [&](protocols::ProtocolKind kind) {
          core::QuerySpec spec;
          spec.aggregate = agg;
          spec.fm_vectors = 16;
          core::RunConfig config;
          config.protocol = kind;
          config.sketch_seed = seed;
          if (topologies[ti] == "grid") {
            config.sim_options.medium = sim::MediumKind::kWireless;
          }
          auto result = engines[ti]->Run(spec, config, 0);
          VALIDITY_CHECK(result.ok());
          return result->cost.messages;
        };
        return Cell{run(protocols::ProtocolKind::kSpanningTree),
                    run(protocols::ProtocolKind::kWildfire)};
      });

  TablePrinter table({"topology", "aggregate", "st_msgs", "wf_msgs",
                      "price(wf/st)"});
  for (size_t i = 0; i < cells.size(); ++i) {
    table.NewRow()
        .Cell(topologies[i / aggregates.size()])
        .Cell(AggregateKindName(aggregates[i % aggregates.size()]))
        .Cell(static_cast<int64_t>(cells[i].st))
        .Cell(static_cast<int64_t>(cells[i].wf))
        .Cell(static_cast<double>(cells[i].wf) /
                  static_cast<double>(cells[i].st), 2);
  }
  bench::EmitTable(table);
  return 0;
}

}  // namespace
}  // namespace validity

int main(int argc, char** argv) { return validity::Main(argc, argv); }
