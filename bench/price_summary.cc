// The headline numbers (§1.1, §6.6, §7): "WILDFIRE incurs similar costs as
// best-effort algorithms for min and max queries, but has to pay ~5 times
// higher communication cost for count and sum queries."
//
// One table: WILDFIRE/SPANNINGTREE message-cost ratio per (topology,
// aggregate).

#include <cstdio>

#include "bench_util.h"
#include "core/engine.h"

namespace validity {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineInt("hosts", 20000, "synthetic topology size");
  flags.DefineInt("seed", 42, "base seed");
  ParseFlagsOrDie(&flags, argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));
  const uint32_t hosts = static_cast<uint32_t>(flags.GetInt("hosts"));

  bench::PrintHeader(
      "Price of validity - WILDFIRE vs SPANNINGTREE message cost",
      "count/sum ~4-5x, min/max ~1x (below 1 on Grid: early aggregation)");

  TablePrinter table({"topology", "aggregate", "st_msgs", "wf_msgs",
                      "price(wf/st)"});
  for (const std::string& topo : {std::string("gnutella"),
                                  std::string("random"),
                                  std::string("power-law"),
                                  std::string("grid")}) {
    uint32_t n = topo == "grid" ? 10000 : hosts;
    if (topo == "gnutella") n = topology::kGnutellaCrawlSize;
    auto graph = bench::MakeTopology(topo, n, seed);
    VALIDITY_CHECK(graph.ok());
    core::QueryEngine engine(&*graph,
                             core::MakeZipfValues(graph->num_hosts(),
                                                  seed + 1));
    for (AggregateKind agg : {AggregateKind::kCount, AggregateKind::kSum,
                              AggregateKind::kMin, AggregateKind::kMax}) {
      auto run = [&](protocols::ProtocolKind kind) {
        core::QuerySpec spec;
        spec.aggregate = agg;
        spec.fm_vectors = 16;
        core::RunConfig config;
        config.protocol = kind;
        config.sketch_seed = seed;
        if (topo == "grid") {
          config.sim_options.medium = sim::MediumKind::kWireless;
        }
        auto result = engine.Run(spec, config, 0);
        VALIDITY_CHECK(result.ok());
        return result->cost.messages;
      };
      uint64_t st = run(protocols::ProtocolKind::kSpanningTree);
      uint64_t wf = run(protocols::ProtocolKind::kWildfire);
      table.NewRow()
          .Cell(topo)
          .Cell(AggregateKindName(agg))
          .Cell(static_cast<int64_t>(st))
          .Cell(static_cast<int64_t>(wf))
          .Cell(static_cast<double>(wf) / static_cast<double>(st), 2);
    }
  }
  bench::EmitTable(table);
  return 0;
}

}  // namespace
}  // namespace validity

int main(int argc, char** argv) { return validity::Main(argc, argv); }
