// Shared driver for the churn figures (Figs. 7, 8, 9): query result vs the
// number R of host departures, for SPANNINGTREE / DAG(k=2) / DAG(k=3) /
// WILDFIRE against the ORACLE Single-Site Validity bounds, averaged over
// trials with a 95% confidence interval — exactly the series the paper
// plots.

#ifndef VALIDITY_BENCH_CHURN_FIGURE_H_
#define VALIDITY_BENCH_CHURN_FIGURE_H_

#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/experiment.h"

namespace validity::bench {

struct ChurnFigureConfig {
  std::string topology = "gnutella";
  uint32_t hosts = topology::kGnutellaCrawlSize;
  AggregateKind aggregate = AggregateKind::kCount;
  std::vector<uint32_t> removals{256, 512, 1024, 2048, 4096};
  /// The paper averages 10 trials; 5 keeps the default suite fast while the
  /// CIs stay tight. Pass --trials=10 for the paper-exact setting.
  uint32_t trials = 5;
  uint32_t fm_vectors = 16;
  uint64_t seed = 42;
  /// Workers for the (R, trial, protocol) grid; 0 = hardware threads.
  /// Output is bit-identical at any thread count.
  uint32_t threads = 0;
};

inline void RunChurnFigure(const ChurnFigureConfig& config) {
  auto graph = MakeTopology(config.topology, config.hosts, config.seed);
  VALIDITY_CHECK(graph.ok(), "%s", graph.status().ToString().c_str());
  std::printf("topology: %s, |H| = %u, |E| = %llu, avg degree %.2f\n",
              config.topology.c_str(), graph->num_hosts(),
              static_cast<unsigned long long>(graph->num_edges()),
              graph->AverageDegree());

  core::QueryEngine engine(&*graph,
                           core::MakeZipfValues(graph->num_hosts(),
                                                config.seed + 1));
  std::printf("estimated diameter: %u\n\n", engine.EstimatedDiameter());

  core::QuerySpec spec;
  spec.aggregate = config.aggregate;
  spec.fm_vectors = config.fm_vectors;

  core::ChurnSweepOptions sweep;
  sweep.trials = config.trials;
  sweep.base_seed = config.seed;
  sweep.threads = config.threads;
  // stderr, not stdout: the resolved count is machine-dependent and stdout
  // must stay bit-identical across hosts and thread counts.
  std::fprintf(stderr, "sweep threads: %u\n",
               core::ResolveThreads(config.threads));

  auto cells = core::RunChurnSweep(engine, spec, /*hq=*/0,
                                   core::StandardLineup(), config.removals,
                                   sweep);

  // Pivot: one row per R, protocols as columns, oracle bounds on the right.
  TablePrinter table({"R", "spanning-tree", "dag-k2", "dag-k3", "wildfire",
                      "wf_ci95", "oracle_low", "oracle_high", "wf_within"});
  std::map<uint32_t, std::map<std::string, core::SweepCell>> by_r;
  for (const auto& cell : cells) by_r[cell.removals][cell.protocol] = cell;
  for (const auto& [r, row] : by_r) {
    const auto& wf = row.at("wildfire");
    table.NewRow()
        .Cell(static_cast<int64_t>(r))
        .Cell(row.at("spanning-tree").value.mean, 1)
        .Cell(row.at("dag-k2").value.mean, 1)
        .Cell(row.at("dag-k3").value.mean, 1)
        .Cell(wf.value.mean, 1)
        .Cell(wf.value.ci95, 1)
        .Cell(wf.oracle_low.mean, 1)
        .Cell(wf.oracle_high.mean, 1)
        .Cell(wf.within_slack_fraction, 2);
  }
  EmitTable(table);

  std::printf(
      "expected shape: spanning-tree (and, more slowly, dag) fall below\n"
      "oracle_low as R grows; wildfire stays within the oracle interval\n"
      "(within_slack ~ 1.0, up to FM sketch noise).\n");
}

inline ChurnFigureConfig ParseChurnFlags(int argc, char** argv,
                                         ChurnFigureConfig config) {
  FlagSet flags;
  flags.DefineString("topology", config.topology, "gnutella|random|power-law|grid");
  flags.DefineInt("hosts", config.hosts, "network size");
  flags.DefineInt("trials", config.trials, "trials per churn level");
  flags.DefineInt("fm_vectors", config.fm_vectors, "FM repetitions c");
  flags.DefineInt("seed", static_cast<int64_t>(config.seed), "base seed");
  flags.DefineString("removals", "", "comma-separated R values (override)");
  DefineThreadsFlag(&flags);
  ParseFlagsOrDie(&flags, argc, argv);
  config.topology = flags.GetString("topology");
  config.hosts = static_cast<uint32_t>(flags.GetInt("hosts"));
  config.trials = static_cast<uint32_t>(flags.GetInt("trials"));
  config.fm_vectors = static_cast<uint32_t>(flags.GetInt("fm_vectors"));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  config.threads = GetThreads(flags);
  const std::string& removals = flags.GetString("removals");
  if (!removals.empty()) config.removals = ParseUint32List(removals);
  return config;
}

}  // namespace validity::bench

#endif  // VALIDITY_BENCH_CHURN_FIGURE_H_
