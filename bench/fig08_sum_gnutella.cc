// Figure 8: sum query on the Gnutella topology under increasing churn.
// Same grid as Fig. 7 with q = sum of Zipf [10,500] attribute values; the
// paper observes "the protocols behave similarly for v = sum(H) queries".

#include "churn_figure.h"

int main(int argc, char** argv) {
  validity::bench::ChurnFigureConfig config;
  config.aggregate = validity::AggregateKind::kSum;
  config = validity::bench::ParseChurnFlags(argc, argv, config);
  validity::bench::PrintHeader(
      "Fig. 8 - sum query on the Gnutella topology",
      "sum vs departures R; same shapes as the count figure");
  validity::bench::RunChurnFigure(config);
  return 0;
}
