// Figure 10: communication cost on Random topologies (count query).
//
// Paper setup (§6.6): messages sent vs network size |H| for SPANNINGTREE,
// DAG and WILDFIRE, with WILDFIRE run at several D-hat overestimates, plus
// the Gnutella topology as a reference point. Expected shape: the WILDFIRE
// curves for different D-hat overlap exactly (cost is D-hat-insensitive);
// DAG almost overlaps SPANNINGTREE (broadcast cost dominates); WILDFIRE
// pays ~4-5x SPANNINGTREE — the price of validity.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"

namespace validity {
namespace {

uint64_t Messages(const core::QueryEngine& engine,
                  protocols::ProtocolKind kind, double d_hat, uint32_t k,
                  uint64_t seed) {
  core::QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.fm_vectors = 16;
  spec.d_hat = d_hat;
  core::RunConfig config;
  config.protocol = kind;
  config.protocol_options.dag.max_parents = k;
  config.sketch_seed = seed;
  auto result = engine.Run(spec, config, 0);
  VALIDITY_CHECK(result.ok(), "%s", result.status().ToString().c_str());
  return result->cost.messages;
}

int Main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineString("sizes", "5000,10000,20000,40000",
                     "comma-separated network sizes");
  flags.DefineInt("seed", 42, "base seed");
  flags.DefineBool("gnutella_point", true,
                   "also measure the Gnutella reference topology");
  bench::DefineThreadsFlag(&flags);
  ParseFlagsOrDie(&flags, argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  std::vector<uint32_t> sizes = bench::ParseUint32List(flags.GetString("sizes"));

  bench::PrintHeader(
      "Fig. 10 - communication cost on Random topologies (count)",
      "messages vs |H|; WILDFIRE D-hat curves overlap; ST ~ DAG; WILDFIRE "
      "~4-5x ST");

  // One figure point per (topology, size); each builds its own graph and
  // engine, so points run concurrently and emit in order.
  std::vector<std::pair<std::string, uint32_t>> points;
  for (uint32_t n : sizes) points.emplace_back("random", n);
  if (flags.GetBool("gnutella_point")) {
    points.emplace_back("gnutella", topology::kGnutellaCrawlSize);
  }

  struct Row {
    std::string topo;
    uint32_t hosts;
    double diameter;
    uint64_t st, dag, wf1, wf2, wf4;
  };
  auto rows = core::ParallelMap<Row>(
      points.size(), bench::GetThreads(flags), [&](size_t i) {
        const auto& [topo, n] = points[i];
        auto graph = bench::MakeTopology(topo, n, seed);
        VALIDITY_CHECK(graph.ok());
        core::QueryEngine engine(&*graph,
                                 core::MakeZipfValues(graph->num_hosts(),
                                                      seed + 1));
        double diameter = engine.EstimatedDiameter();
        Row row;
        row.topo = topo;
        row.hosts = graph->num_hosts();
        row.diameter = diameter;
        row.st = Messages(engine, protocols::ProtocolKind::kSpanningTree,
                          diameter + 2, 2, seed);
        row.dag = Messages(engine, protocols::ProtocolKind::kDag,
                           diameter + 2, 2, seed);
        row.wf1 = Messages(engine, protocols::ProtocolKind::kWildfire,
                           diameter + 2, 2, seed);
        row.wf2 = Messages(engine, protocols::ProtocolKind::kWildfire,
                           2 * diameter, 2, seed);
        row.wf4 = Messages(engine, protocols::ProtocolKind::kWildfire,
                           4 * diameter, 2, seed);
        return row;
      });

  TablePrinter table({"topology", "hosts", "diam", "spanning-tree", "dag-k2",
                      "wf_dhat=D+2", "wf_dhat=2D", "wf_dhat=4D",
                      "wf/st_ratio"});
  for (const Row& row : rows) {
    table.NewRow()
        .Cell(row.topo)
        .Cell(static_cast<int64_t>(row.hosts))
        .Cell(row.diameter, 0)
        .Cell(static_cast<int64_t>(row.st))
        .Cell(static_cast<int64_t>(row.dag))
        .Cell(static_cast<int64_t>(row.wf1))
        .Cell(static_cast<int64_t>(row.wf2))
        .Cell(static_cast<int64_t>(row.wf4))
        .Cell(static_cast<double>(row.wf1) / static_cast<double>(row.st), 2);
  }
  bench::EmitTable(table);
  return 0;
}

}  // namespace
}  // namespace validity

int main(int argc, char** argv) { return validity::Main(argc, argv); }
