// §2.2 comparison: eventual-consistency gossip (push-sum) vs the validity-
// guaranteeing WILDFIRE, under increasing churn.
//
// Gossip converges beautifully on a static network at comparable message
// cost — but under churn the mass a crashed host holds is destroyed, and
// the answer drifts with *no attached guarantee*. WILDFIRE's answer always
// comes with the ORACLE-checkable SSV interval. The table quantifies the
// semantics gap the paper's related-work section describes.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "common/stats.h"
#include "core/engine.h"
#include "protocols/gossip.h"
#include "protocols/oracle.h"
#include "sim/churn.h"

namespace validity {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineInt("hosts", 4000, "network size");
  flags.DefineInt("rounds", 250,
                  "gossip rounds (push-sum count needs ~O(mixing*log n) "
                  "rounds for the weight mass to diffuse from hq)");
  flags.DefineInt("trials", 5, "trials per churn level");
  flags.DefineInt("seed", 42, "base seed");
  bench::DefineThreadsFlag(&flags);
  ParseFlagsOrDie(&flags, argc, argv);
  const uint32_t hosts = static_cast<uint32_t>(flags.GetInt("hosts"));
  const uint32_t rounds = static_cast<uint32_t>(flags.GetInt("rounds"));
  const uint32_t trials = static_cast<uint32_t>(flags.GetInt("trials"));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  bench::PrintHeader(
      "§2.2 comparison - gossip (push-sum) vs WILDFIRE (count under churn)",
      "gossip: eventual consistency only; wildfire: Single-Site Validity");

  auto graph = topology::MakeRandom(hosts, 6.0, seed);
  VALIDITY_CHECK(graph.ok());
  std::vector<double> values(hosts, 1.0);
  core::QueryEngine engine(&*graph, values);

  // Every (churn level, trial) pair is one independent task running both
  // systems under the same churn seed; results merge per level in trial
  // order, so the table is thread-count-invariant.
  const std::vector<uint32_t> levels{0u, hosts / 20, hosts / 10, hosts / 5};
  struct TrialRun {
    double gossip_value = 0.0;
    double gossip_msgs = 0.0;
    bool gossip_invalid = false;
    double truth_err = 0.0;
    double wf_value = 0.0;
    double wf_msgs = 0.0;
    bool wf_invalid = false;
  };
  auto runs = core::ParallelMap<TrialRun>(
      levels.size() * trials, bench::GetThreads(flags), [&](size_t i) {
        const uint32_t removals = levels[i / trials];
        const uint32_t t = static_cast<uint32_t>(i % trials);
        uint64_t churn_seed = Mix64(seed + removals * 131 + t);
        TrialRun run;
        // Gossip run.
        {
          sim::Simulator sim(*graph, sim::SimOptions{});
          Rng churn_rng(churn_seed);
          if (removals > 0) {
            sim::ScheduleChurn(&sim,
                               sim::MakeUniformChurn(hosts, 0, removals, 0.0,
                                                     rounds, &churn_rng));
          }
          protocols::QueryContext ctx;
          ctx.aggregate = AggregateKind::kCount;
          ctx.values = &values;
          ctx.d_hat = engine.EstimatedDiameter() + 2.0;
          protocols::GossipOptions gopts;
          gopts.rounds = rounds;
          gopts.partner_seed = churn_seed;
          protocols::GossipProtocol gossip(&sim, ctx, gopts);
          sim.AttachProgram(&gossip);
          gossip.Start(0);
          sim.Run();
          run.gossip_value = gossip.result().value;
          run.gossip_msgs =
              static_cast<double>(sim.metrics().messages_sent());
          protocols::OracleReport oracle = protocols::ComputeOracle(
              sim, 0, 0, rounds + 2, AggregateKind::kCount, values);
          // 2% tolerance so float noise on a converged static run does not
          // read as invalidity; churn-induced drift is far larger.
          run.gossip_invalid =
              !oracle.ContainsWithin(gossip.result().value, 1.02);
          run.truth_err = std::fabs(gossip.result().value /
                                        static_cast<double>(hosts - removals) -
                                    1.0);
        }
        // Wildfire run under the same churn seed.
        {
          core::QuerySpec spec;
          spec.aggregate = AggregateKind::kCount;
          spec.fm_vectors = 16;
          core::RunConfig config;
          config.churn_removals = removals;
          config.churn_seed = churn_seed;
          config.sketch_seed = churn_seed + 1;
          auto result = engine.Run(spec, config, 0);
          VALIDITY_CHECK(result.ok());
          run.wf_value = result->value;
          run.wf_msgs = static_cast<double>(result->cost.messages);
          run.wf_invalid = !result->validity.within_slack;
        }
        return run;
      });

  TablePrinter table({"R", "gossip_mean", "gossip_err%", "gossip_invalid%(2%slack)",
                      "wf_mean", "wf_invalid%", "gossip_msgs", "wf_msgs"});
  for (size_t li = 0; li < levels.size(); ++li) {
    RunningStat gossip_value;
    RunningStat wf_value;
    RunningStat gossip_msgs;
    RunningStat wf_msgs;
    uint32_t gossip_invalid = 0;
    uint32_t wf_invalid = 0;
    double truth_err = 0;
    for (uint32_t t = 0; t < trials; ++t) {
      const TrialRun& run = runs[li * trials + t];
      gossip_value.Add(run.gossip_value);
      gossip_msgs.Add(run.gossip_msgs);
      if (run.gossip_invalid) ++gossip_invalid;
      truth_err += run.truth_err;
      wf_value.Add(run.wf_value);
      wf_msgs.Add(run.wf_msgs);
      if (run.wf_invalid) ++wf_invalid;
    }
    table.NewRow()
        .Cell(static_cast<int64_t>(levels[li]))
        .Cell(gossip_value.mean(), 1)
        .Cell(100.0 * truth_err / trials, 1)
        .Cell(100.0 * gossip_invalid / trials, 0)
        .Cell(wf_value.mean(), 1)
        .Cell(100.0 * wf_invalid / trials, 0)
        .Cell(gossip_msgs.mean(), 0)
        .Cell(wf_msgs.mean(), 0);
  }
  bench::EmitTable(table);
  return 0;
}

}  // namespace
}  // namespace validity

int main(int argc, char** argv) { return validity::Main(argc, argv); }
