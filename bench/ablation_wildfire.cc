// Ablation: the §5.3 WILDFIRE engineering optimizations.
//
// Toggles piggyback-on-broadcast, per-distance early termination,
// known-value send suppression, and same-instant flood coalescing, and
// reports message cost per configuration. Validity is never affected (the
// tests prove answer equality); cost is.

#include <cstdio>

#include "bench_util.h"
#include "core/engine.h"

namespace validity {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineInt("hosts", 20000, "network size");
  flags.DefineString("topology", "random", "topology name");
  flags.DefineInt("seed", 42, "base seed");
  ParseFlagsOrDie(&flags, argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  bench::PrintHeader(
      "Ablation - WILDFIRE optimizations (count query, message cost)",
      "paper §5.3: piggybacking and early aggregation curb the 2*Dh*|E| "
      "worst case");

  auto graph = bench::MakeTopology(
      flags.GetString("topology"),
      static_cast<uint32_t>(flags.GetInt("hosts")), seed);
  VALIDITY_CHECK(graph.ok());
  core::QueryEngine engine(&*graph,
                           core::MakeZipfValues(graph->num_hosts(), seed + 1));

  TablePrinter table({"piggyback", "skip_known", "coalesce", "messages",
                      "bytes", "vs_full_opt"});
  uint64_t baseline = 0;
  for (bool piggyback : {true, false}) {
    for (bool skip_known : {true, false}) {
      for (bool coalesce : {true, false}) {
        core::QuerySpec spec;
        spec.aggregate = AggregateKind::kCount;
        spec.fm_vectors = 16;
        core::RunConfig config;
        config.protocol = protocols::ProtocolKind::kWildfire;
        config.protocol_options.wildfire.piggyback_broadcast = piggyback;
        config.protocol_options.wildfire.skip_known_neighbors = skip_known;
        config.protocol_options.wildfire.coalesce_floods = coalesce;
        config.sketch_seed = seed;
        auto result = engine.Run(spec, config, 0);
        VALIDITY_CHECK(result.ok());
        if (baseline == 0) baseline = result->cost.messages;
        table.NewRow()
            .Cell(piggyback ? "on" : "off")
            .Cell(skip_known ? "on" : "off")
            .Cell(coalesce ? "on" : "off")
            .Cell(static_cast<int64_t>(result->cost.messages))
            .Cell(static_cast<int64_t>(result->cost.bytes))
            .Cell(static_cast<double>(result->cost.messages) /
                      static_cast<double>(baseline),
                  2);
      }
    }
  }
  bench::EmitTable(table);
  return 0;
}

}  // namespace
}  // namespace validity

int main(int argc, char** argv) { return validity::Main(argc, argv); }
