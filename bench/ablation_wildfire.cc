// Ablation: the §5.3 WILDFIRE engineering optimizations.
//
// Toggles piggyback-on-broadcast, per-distance early termination,
// known-value send suppression, and same-instant flood coalescing, and
// reports message cost per configuration. Validity is never affected (the
// tests prove answer equality); cost is.

#include <cstdio>

#include "bench_util.h"
#include "core/engine.h"

namespace validity {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineInt("hosts", 20000, "network size");
  flags.DefineString("topology", "random", "topology name");
  flags.DefineInt("seed", 42, "base seed");
  bench::DefineThreadsFlag(&flags);
  ParseFlagsOrDie(&flags, argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  bench::PrintHeader(
      "Ablation - WILDFIRE optimizations (count query, message cost)",
      "paper §5.3: piggybacking and early aggregation curb the 2*Dh*|E| "
      "worst case");

  auto graph = bench::MakeTopology(
      flags.GetString("topology"),
      static_cast<uint32_t>(flags.GetInt("hosts")), seed);
  VALIDITY_CHECK(graph.ok());
  core::QueryEngine engine(&*graph,
                           core::MakeZipfValues(graph->num_hosts(), seed + 1));

  // The 8 toggle combinations, index-decoded once so the run configuration
  // and the printed row can never disagree; order follows the serial
  // nesting (piggyback outermost), so combo 0 is fully optimized.
  struct Combo {
    bool piggyback, skip_known, coalesce;
  };
  std::vector<Combo> combos;
  for (bool piggyback : {true, false}) {
    for (bool skip_known : {true, false}) {
      for (bool coalesce : {true, false}) {
        combos.push_back({piggyback, skip_known, coalesce});
      }
    }
  }
  auto results = core::ParallelMap<core::QueryResult>(
      combos.size(), bench::GetThreads(flags), [&](size_t i) {
        core::QuerySpec spec;
        spec.aggregate = AggregateKind::kCount;
        spec.fm_vectors = 16;
        core::RunConfig config;
        config.protocol = protocols::ProtocolKind::kWildfire;
        config.protocol_options.wildfire.piggyback_broadcast =
            combos[i].piggyback;
        config.protocol_options.wildfire.skip_known_neighbors =
            combos[i].skip_known;
        config.protocol_options.wildfire.coalesce_floods = combos[i].coalesce;
        config.sketch_seed = seed;
        auto result = engine.Run(spec, config, 0);
        VALIDITY_CHECK(result.ok());
        return *std::move(result);
      });

  TablePrinter table({"piggyback", "skip_known", "coalesce", "messages",
                      "bytes", "vs_full_opt"});
  const uint64_t baseline = results[0].cost.messages;  // fully optimized
  for (size_t i = 0; i < results.size(); ++i) {
    table.NewRow()
        .Cell(combos[i].piggyback ? "on" : "off")
        .Cell(combos[i].skip_known ? "on" : "off")
        .Cell(combos[i].coalesce ? "on" : "off")
        .Cell(static_cast<int64_t>(results[i].cost.messages))
        .Cell(static_cast<int64_t>(results[i].cost.bytes))
        .Cell(static_cast<double>(results[i].cost.messages) /
                  static_cast<double>(baseline),
              2);
  }
  bench::EmitTable(table);
  return 0;
}

}  // namespace
}  // namespace validity

int main(int argc, char** argv) { return validity::Main(argc, argv); }
