// Ablation: slotted (TAG-style, paper-faithful) vs eager-completion
// convergecast pacing for the SPANNINGTREE baseline.
//
// The paper's tree holds partial aggregates in interior hosts until their
// depth slot, exposing whole collected subtrees to churn; an eager tree
// drains data upward as soon as children complete and is markedly more
// robust (and lower latency) — quantifying why the reproduction defaults
// to slotted pacing to match the published Fig. 7-9 curves.

#include <cstdio>

#include "bench_util.h"
#include "core/engine.h"
#include "core/experiment.h"

namespace validity {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineInt("hosts", 10000, "grid hosts (side = sqrt)");
  flags.DefineInt("trials", 5, "trials per churn level");
  flags.DefineInt("seed", 42, "base seed");
  bench::DefineThreadsFlag(&flags);
  ParseFlagsOrDie(&flags, argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  bench::PrintHeader(
      "Ablation - SPANNINGTREE convergecast pacing under churn (Grid count)",
      "slotted = paper-faithful TAG slots; eager = complete-and-forward");

  auto graph = bench::MakeTopology(
      "grid", static_cast<uint32_t>(flags.GetInt("hosts")), seed);
  VALIDITY_CHECK(graph.ok());
  core::QueryEngine engine(&*graph,
                           core::MakeZipfValues(graph->num_hosts(), seed + 1));

  core::QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.fm_vectors = 16;

  std::vector<core::ProtocolSpec> lineup;
  {
    core::ProtocolSpec slotted{"tree-slotted",
                               protocols::ProtocolKind::kSpanningTree,
                               protocols::ProtocolOptions{}};
    slotted.options.spanning_tree.pacing = protocols::TreePacing::kSlotted;
    core::ProtocolSpec eager{"tree-eager",
                             protocols::ProtocolKind::kSpanningTree,
                             protocols::ProtocolOptions{}};
    eager.options.spanning_tree.pacing = protocols::TreePacing::kEager;
    lineup.push_back(slotted);
    lineup.push_back(eager);
  }

  core::ChurnSweepOptions sweep;
  sweep.trials = static_cast<uint32_t>(flags.GetInt("trials"));
  sweep.base_seed = seed;
  sweep.threads = bench::GetThreads(flags);

  auto cells = core::RunChurnSweep(engine, spec, /*hq=*/0, lineup,
                                   {0, 256, 1024, 2048}, sweep);

  TablePrinter table({"R", "pacing", "count_mean", "count_ci95", "oracle_low",
                      "declared_at", "last_update_at_is_lower"});
  for (const auto& cell : cells) {
    table.NewRow()
        .Cell(static_cast<int64_t>(cell.removals))
        .Cell(cell.protocol)
        .Cell(cell.value.mean, 1)
        .Cell(cell.value.ci95, 1)
        .Cell(cell.oracle_low.mean, 1)
        .Cell(cell.time_cost.mean, 1)
        .Cell(cell.protocol == "tree-eager" ? "yes" : "n/a");
  }
  bench::EmitTable(table);
  return 0;
}

}  // namespace
}  // namespace validity

int main(int argc, char** argv) { return validity::Main(argc, argv); }
