// Google-benchmark micro benchmarks for the hot substrate paths: FM sketch
// operations, partial-aggregate combines, event-queue throughput, topology
// generation, and a full small WILDFIRE query as an end-to-end unit.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/zipf.h"
#include "core/engine.h"
#include "core/experiment.h"
#include "core/query_service.h"
#include "core/sweep.h"
#include "protocols/combiner.h"
#include "sim/churn.h"
#include "sim/event_queue.h"
#include "sim/session.h"
#include "sketch/fm_sketch.h"
#include "topology/generators.h"

namespace validity {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Next());
}
BENCHMARK(BM_RngNext);

void BM_ZipfSample(benchmark::State& state) {
  auto zipf = ZipfGenerator::Make(10, 500, 1.0);
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(zipf->Sample(&rng));
}
BENCHMARK(BM_ZipfSample);

void BM_FmInsertDistinct(benchmark::State& state) {
  sketch::FmSketch s(sketch::FmParams{16});
  Rng rng(1);
  for (auto _ : state) s.InsertDistinctElement(&rng);
}
BENCHMARK(BM_FmInsertDistinct);

void BM_FmForMagnitude(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch::FmSketch::ForMagnitude(
        sketch::FmParams{16}, static_cast<uint64_t>(state.range(0)), &rng));
  }
}
BENCHMARK(BM_FmForMagnitude)->Arg(10)->Arg(500)->Arg(100000);

void BM_FmMergeOr(benchmark::State& state) {
  Rng rng(1);
  sketch::FmSketch a =
      sketch::FmSketch::ForMagnitude(sketch::FmParams{16}, 1000, &rng);
  sketch::FmSketch b =
      sketch::FmSketch::ForMagnitude(sketch::FmParams{16}, 2000, &rng);
  for (auto _ : state) benchmark::DoNotOptimize(a.MergeOr(b));
  state.SetLabel(sketch::ActiveSketchKernel());
}
BENCHMARK(BM_FmMergeOr);

void BM_FmMergeOrScalar(benchmark::State& state) {
  // The portable word loop, pinned: the gap to BM_FmMergeOr is the SIMD
  // kernel's win on this machine (zero on hardware without AVX2).
  Rng rng(1);
  sketch::FmSketch a =
      sketch::FmSketch::ForMagnitude(sketch::FmParams{16}, 1000, &rng);
  sketch::FmSketch b =
      sketch::FmSketch::ForMagnitude(sketch::FmParams{16}, 2000, &rng);
  sketch::ForceScalarSketchKernels(true);
  for (auto _ : state) benchmark::DoNotOptimize(a.MergeOr(b));
  sketch::ForceScalarSketchKernels(false);
}
BENCHMARK(BM_FmMergeOrScalar);

void BM_CombinerCombineFm(benchmark::State& state) {
  Rng rng(1);
  protocols::PartialAggregate a = protocols::PartialAggregate::Initial(
      protocols::CombinerKind::kFmSum, 0, 250, sketch::FmParams{16}, &rng);
  protocols::PartialAggregate b = protocols::PartialAggregate::Initial(
      protocols::CombinerKind::kFmSum, 1, 400, sketch::FmParams{16}, &rng);
  for (auto _ : state) {
    protocols::PartialAggregate c = a;
    benchmark::DoNotOptimize(c.CombineFrom(b));
  }
}
BENCHMARK(BM_CombinerCombineFm);

void BM_EventQueueScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    int64_t sink = 0;
    for (int i = 0; i < state.range(0); ++i) {
      q.ScheduleAt(static_cast<double>(i % 97), [&sink] { ++sink; });
    }
    q.RunAll();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void BM_EventQueueTypedScheduleRun(benchmark::State& state) {
  // The allocation-free protocol path: tagged POD events dispatched through
  // the installed handler, no closures anywhere.
  struct Counter {
    int64_t fired = 0;
    static void Handle(void* ctx, const sim::Event& event) {
      static_cast<Counter*>(ctx)->fired += static_cast<int64_t>(event.payload);
    }
  };
  for (auto _ : state) {
    sim::EventQueue q;
    Counter counter;
    q.SetTypedHandler(&Counter::Handle, &counter);
    for (int i = 0; i < state.range(0); ++i) {
      q.ScheduleTyped(static_cast<double>(i % 97), sim::EventTag::kTimer, 0,
                      kInvalidHost, 0, 1);
    }
    q.RunAll();
    benchmark::DoNotOptimize(counter.fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueTypedScheduleRun)->Arg(1000)->Arg(100000);

void BM_SimulatorBroadcastFanout(benchmark::State& state) {
  // Hub broadcast on a star: one message slab slot shared by N-1 typed
  // deliveries (includes simulator construction, so this tracks the CSR
  // build as well).
  auto graph = topology::MakeStar(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    sim::Simulator simulator(*graph, sim::SimOptions{});
    sim::Message msg;
    msg.kind = 1;
    simulator.SendToNeighbors(0, msg);
    simulator.Run();
    benchmark::DoNotOptimize(simulator.metrics().messages_delivered());
  }
  state.SetItemsProcessed(state.iterations() * (state.range(0) - 1));
}
BENCHMARK(BM_SimulatorBroadcastFanout)->Arg(1000)->Arg(100000);

void BM_MakeRandomTopology(benchmark::State& state) {
  for (auto _ : state) {
    auto g = topology::MakeRandom(static_cast<uint32_t>(state.range(0)), 5.0,
                                  42);
    benchmark::DoNotOptimize(g->num_edges());
  }
}
BENCHMARK(BM_MakeRandomTopology)->Arg(1000)->Arg(10000);

void BM_WildfireCountQuery(benchmark::State& state) {
  auto graph =
      topology::MakeRandom(static_cast<uint32_t>(state.range(0)), 5.0, 42);
  core::QueryEngine engine(&*graph, core::MakeZipfValues(graph->num_hosts(),
                                                         43));
  core::QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.fm_vectors = 16;
  for (auto _ : state) {
    auto result = engine.Run(spec, core::RunConfig{}, 0);
    benchmark::DoNotOptimize(result->value);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WildfireCountQuery)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_WildfireCountQueryFaultIdle(benchmark::State& state) {
  // BM_WildfireCountQuery with the fault plane installed but idle (all
  // rates zero): the price of the per-send null-spec branch. Pinned
  // against the plain benchmark to keep the disabled path under 1%
  // (docs/FAULTS.md); the hot loop itself stays allocation-free either
  // way (alloc_free_test).
  auto graph =
      topology::MakeRandom(static_cast<uint32_t>(state.range(0)), 5.0, 42);
  core::QueryEngine engine(&*graph, core::MakeZipfValues(graph->num_hosts(),
                                                         43));
  core::QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.fm_vectors = 16;
  core::RunConfig config;
  config.fault.install_idle = true;
  for (auto _ : state) {
    auto result = engine.Run(spec, config, 0);
    benchmark::DoNotOptimize(result->value);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WildfireCountQueryFaultIdle)
    ->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_WildfireCountQueryFaulted(benchmark::State& state) {
  // The active fault path for scale: drops, duplicates, and delays all
  // firing. Not a regression gate (the workload legitimately differs) —
  // recorded so fault-plane changes have a yardstick.
  auto graph =
      topology::MakeRandom(static_cast<uint32_t>(state.range(0)), 5.0, 42);
  core::QueryEngine engine(&*graph, core::MakeZipfValues(graph->num_hosts(),
                                                         43));
  core::QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.fm_vectors = 16;
  core::RunConfig config;
  config.fault.drop_rate = 0.1;
  config.fault.duplicate_rate = 0.1;
  config.fault.delay_rate = 0.1;
  config.fault.max_delay_hops = 2;
  for (auto _ : state) {
    auto result = engine.Run(spec, config, 0);
    benchmark::DoNotOptimize(result->value);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WildfireCountQueryFaulted)
    ->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_SpanningTreeCountQuery(benchmark::State& state) {
  auto graph =
      topology::MakeRandom(static_cast<uint32_t>(state.range(0)), 5.0, 42);
  core::QueryEngine engine(&*graph, core::MakeZipfValues(graph->num_hosts(),
                                                         43));
  core::QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  core::RunConfig config;
  config.protocol = protocols::ProtocolKind::kSpanningTree;
  for (auto _ : state) {
    auto result = engine.Run(spec, config, 0);
    benchmark::DoNotOptimize(result->value);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SpanningTreeCountQuery)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_ChurnSweep(benchmark::State& state) {
  // The figure workload in miniature: a (churn level, trial, protocol) grid
  // through the parallel sweep driver. Arg = worker threads; output is
  // bit-identical across thread counts, wall clock scales with the
  // hardware's real parallelism (on a single-core host all thread counts
  // cost the same).
  auto graph = topology::MakeRandom(1500, 5.0, 42);
  core::QueryEngine engine(&*graph, core::MakeZipfValues(graph->num_hosts(),
                                                         43));
  core::QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.fm_vectors = 16;
  std::vector<core::ProtocolSpec> lineup;
  lineup.push_back({"wildfire", protocols::ProtocolKind::kWildfire,
                    protocols::ProtocolOptions{}});
  lineup.push_back({"spanning-tree", protocols::ProtocolKind::kSpanningTree,
                    protocols::ProtocolOptions{}});
  core::ChurnSweepOptions options;
  options.trials = 4;
  options.threads = static_cast<uint32_t>(state.range(0));
  const std::vector<uint32_t> removals{32, 96};
  for (auto _ : state) {
    auto cells = core::RunChurnSweep(engine, spec, 0, lineup, removals,
                                     options);
    benchmark::DoNotOptimize(cells.front().value.mean);
  }
  // cells = levels * trials * protocols engine runs per iteration.
  state.SetItemsProcessed(state.iterations() * removals.size() *
                          options.trials * lineup.size());
}
BENCHMARK(BM_ChurnSweep)->ArgName("threads")->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();

void BM_CombinerCombineCompareFm(benchmark::State& state) {
  // The fused WILDFIRE receive path: combine + same-as-sender in one pass
  // (BM_CombinerCombineFm is the copy + two-pass baseline).
  Rng rng(1);
  protocols::PartialAggregate a = protocols::PartialAggregate::Initial(
      protocols::CombinerKind::kFmSum, 0, 250, sketch::FmParams{16}, &rng);
  protocols::PartialAggregate b = protocols::PartialAggregate::Initial(
      protocols::CombinerKind::kFmSum, 1, 400, sketch::FmParams{16}, &rng);
  for (auto _ : state) {
    auto outcome = a.CombineCompare(b);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_CombinerCombineCompareFm);

void BM_WildfireDenseCountQuery(benchmark::State& state) {
  // Dense-graph regression guard for the O(1) reverse neighbor-slot lookup:
  // every convergecast receive used to pay an O(degree) scan, quadratic per
  // tick at average degree 60.
  auto graph =
      topology::MakeRandom(static_cast<uint32_t>(state.range(0)), 60.0, 42);
  core::QueryEngine engine(&*graph, core::MakeZipfValues(graph->num_hosts(),
                                                         43));
  core::QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.fm_vectors = 16;
  for (auto _ : state) {
    auto result = engine.Run(spec, core::RunConfig{}, 0);
    benchmark::DoNotOptimize(result->value);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WildfireDenseCountQuery)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_MillionHostActivation(benchmark::State& state) {
  // The cold-start scenario: construction + first COUNT query, where the
  // broadcast disc touches a small fraction of a large wireless grid.
  // Arg = D-hat (disc radius is 2 * D-hat hops). The grid is implicit —
  // neighbors are served arithmetically and liveness/metrics pages
  // materialize on first touch — so the *whole* cold path (simulator build
  // included) scales with the disc, not the grid.
  constexpr uint32_t kSide = 1000;  // 10^6 hosts
  topology::Topology grid = *topology::Topology::Grid(kSide);
  static std::vector<double> values(grid.num_hosts(), 1.0);
  core::QueryEngine engine(grid, values);
  core::QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.fm_vectors = 16;
  spec.d_hat = static_cast<double>(state.range(0));
  core::RunConfig config;
  config.sim_options.medium = sim::MediumKind::kWireless;
  config.compute_validity = false;
  const HostId hq = (kSide / 2) * kSide + kSide / 2;
  size_t resident = 0;
  for (auto _ : state) {
    auto result = engine.Run(spec, config, hq);
    resident = result->resident_state_bytes;
    benchmark::DoNotOptimize(result->value);
  }
  state.counters["resident_state_MB"] =
      static_cast<double>(resident) / 1e6;
}
BENCHMARK(BM_MillionHostActivation)
    ->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_MillionHostActivationCsr(benchmark::State& state) {
  // The same cold query over a materialized graph: every iteration pays the
  // O(n) CSR + table build the implicit path eliminates. The gap to
  // BM_MillionHostActivation is the price of materialization.
  constexpr uint32_t kSide = 1000;
  static auto grid = topology::MakeGrid(kSide);
  static std::vector<double> values(grid->num_hosts(), 1.0);
  core::QueryEngine engine(&*grid, values);
  core::QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.fm_vectors = 16;
  spec.d_hat = static_cast<double>(state.range(0));
  core::RunConfig config;
  config.sim_options.medium = sim::MediumKind::kWireless;
  config.compute_validity = false;
  const HostId hq = (kSide / 2) * kSide + kSide / 2;
  for (auto _ : state) {
    auto result = engine.Run(spec, config, hq);
    benchmark::DoNotOptimize(result->value);
  }
}
BENCHMARK(BM_MillionHostActivationCsr)
    ->Arg(10)->Unit(benchmark::kMillisecond);

void BM_SessionReuse(benchmark::State& state) {
  // Same query as BM_WildfireCountQuery, but on a SimulatorSession: the
  // O(n) simulator build/teardown is paid once outside the loop, and every
  // measured iteration is a warm epoch reset + the query itself. The gap to
  // BM_WildfireCountQuery is the per-query construction overhead the
  // session amortizes away.
  auto graph =
      topology::MakeRandom(static_cast<uint32_t>(state.range(0)), 5.0, 42);
  core::QueryEngine engine(&*graph, core::MakeZipfValues(graph->num_hosts(),
                                                         43));
  core::QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.fm_vectors = 16;
  sim::SimulatorSession session(&*graph, sim::SimOptions{});
  for (auto _ : state) {
    auto result = engine.Run(&session, spec, core::RunConfig{}, 0);
    benchmark::DoNotOptimize(result->value);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SessionReuse)->Arg(1000)->Arg(5000)->Unit(benchmark::kMillisecond);

void BM_QueryServiceThroughput(benchmark::State& state) {
  // The open-arrival layer end to end: Arg queries submitted against one
  // churning service timeline (staggered arrivals, lane cap 4) and drained
  // to completion. The gap to Arg x BM_SessionReuse is the service's own
  // overhead: admission, arrival/retirement closures, lane multiplexing,
  // and trace recording. Items/s is queries per second.
  auto graph = topology::MakeRandom(1000, 5.0, 42);
  core::QueryEngine engine(&*graph, core::MakeZipfValues(graph->num_hosts(),
                                                         43));
  core::QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.fm_vectors = 16;
  core::ServiceOptions options;
  options.max_in_flight = 4;
  const uint64_t queries = static_cast<uint64_t>(state.range(0));
  for (auto _ : state) {
    core::QueryService service(&engine, options);
    for (uint64_t i = 0; i < queries; ++i) {
      core::RunConfig config;
      config.sketch_seed = 100 + i;
      auto id = service.Submit(static_cast<SimTime>(i) * 0.5, spec, config,
                               /*hq=*/0);
      benchmark::DoNotOptimize(id.value());
    }
    service.Drain();
    core::QueryService::Completion done;
    while (service.Poll(&done)) benchmark::DoNotOptimize(done.result.value);
  }
  state.SetItemsProcessed(state.iterations() * queries);
}
BENCHMARK(BM_QueryServiceThroughput)
    ->Arg(8)->Arg(32)->Unit(benchmark::kMillisecond);

void BM_MillionHostSecondQuery(benchmark::State& state) {
  // The session payoff at scale: BM_MillionHostActivation measures the
  // *cold* path; here the 10^6-host simulator is cached in a session and
  // warmed by one query, so every measured iteration is the *second*
  // query — epoch reset plus disc-proportional work. With the implicit
  // grid the cold and warm paths now differ only by the warm pages and
  // pools. Arg = D-hat (disc radius is 2 * D-hat hops).
  constexpr uint32_t kSide = 1000;  // 10^6 hosts
  topology::Topology grid = *topology::Topology::Grid(kSide);
  static std::vector<double> values(grid.num_hosts(), 1.0);
  core::QueryEngine engine(grid, values);
  core::QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.fm_vectors = 16;
  spec.d_hat = static_cast<double>(state.range(0));
  core::RunConfig config;
  config.sim_options.medium = sim::MediumKind::kWireless;
  config.compute_validity = false;
  const HostId hq = (kSide / 2) * kSide + kSide / 2;
  sim::SimulatorSession session(grid, config.sim_options);
  {
    auto warm = engine.Run(&session, spec, config, hq);  // first query: cold
    benchmark::DoNotOptimize(warm->value);
  }
  size_t resident = 0;
  for (auto _ : state) {
    auto result = engine.Run(&session, spec, config, hq);
    resident = result->resident_state_bytes;
    benchmark::DoNotOptimize(result->value);
  }
  state.counters["resident_state_MB"] =
      static_cast<double>(resident) / 1e6;
}
BENCHMARK(BM_MillionHostSecondQuery)
    ->Arg(10)->Arg(40)->Unit(benchmark::kMillisecond);

void BM_ExponentialChurnMaterialized(benchmark::State& state) {
  // Baseline: build + sort the event vector, then schedule (the pre-PR-2
  // MakeExponentialLifetimeChurn + ScheduleChurn path).
  auto graph = topology::MakeRandom(static_cast<uint32_t>(state.range(0)),
                                    5.0, 42);
  for (auto _ : state) {
    sim::Simulator simulator(*graph, sim::SimOptions{});
    Rng rng(7);
    auto events = sim::MakeExponentialLifetimeChurn(
        graph->num_hosts(), 0, /*mean_lifetime=*/10.0, /*horizon=*/30.0,
        &rng);
    sim::ScheduleChurn(&simulator, events);
    benchmark::DoNotOptimize(events.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExponentialChurnMaterialized)->Arg(100000);

void BM_ExponentialChurnDirect(benchmark::State& state) {
  // Same lifetimes fed straight to the calendar heap: no vector, no sort.
  auto graph = topology::MakeRandom(static_cast<uint32_t>(state.range(0)),
                                    5.0, 42);
  for (auto _ : state) {
    sim::Simulator simulator(*graph, sim::SimOptions{});
    Rng rng(7);
    uint32_t scheduled = sim::ScheduleExponentialLifetimeChurn(
        &simulator, 0, /*mean_lifetime=*/10.0, /*horizon=*/30.0, &rng);
    benchmark::DoNotOptimize(scheduled);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExponentialChurnDirect)->Arg(100000);

}  // namespace
}  // namespace validity

BENCHMARK_MAIN();
