// Figure 12: computation-cost distribution on Power-Law and Grid.
//
// Paper setup (§6.6.1): for a count query, plot the number of hosts (Y)
// that processed X messages. Expected shapes: on Power-Law, WILDFIRE's
// distribution matches SPANNINGTREE's shape shifted right (~2-4x max); on
// Grid (wireless, 8 neighbors hear every send) WILDFIRE's per-host maximum
// is ~40x the tree's.

#include <cstdio>

#include "bench_util.h"
#include "core/engine.h"

namespace validity {
namespace {

core::QueryResult RunOne(const core::QueryEngine& engine,
                         protocols::ProtocolKind kind, sim::MediumKind medium,
                         uint64_t seed) {
  core::QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.fm_vectors = 16;
  core::RunConfig config;
  config.protocol = kind;
  config.sim_options.medium = medium;
  config.sketch_seed = seed;
  auto result = engine.Run(spec, config, 0);
  VALIDITY_CHECK(result.ok(), "%s", result.status().ToString().c_str());
  return *std::move(result);
}

void EmitDistribution(const std::string& label,
                      const core::QueryResult& tree,
                      const core::QueryResult& wildfire) {
  std::printf("--- %s ---\n", label.c_str());
  std::printf("computation cost (max messages processed by one host): "
              "spanning-tree %llu, wildfire %llu (%.1fx)\n",
              static_cast<unsigned long long>(tree.cost.max_processed),
              static_cast<unsigned long long>(wildfire.cost.max_processed),
              static_cast<double>(wildfire.cost.max_processed) /
                  static_cast<double>(tree.cost.max_processed));
  TablePrinter table({"messages_processed(bucket_low)", "st_hosts",
                      "wf_hosts"});
  auto tree_buckets = tree.cost.computation_histogram.Log2Buckets();
  auto wf_buckets = wildfire.cost.computation_histogram.Log2Buckets();
  size_t rows = std::max(tree_buckets.size(), wf_buckets.size());
  for (size_t i = 0; i < rows; ++i) {
    int64_t low = i < wf_buckets.size() ? wf_buckets[i].first
                                        : tree_buckets[i].first;
    int64_t st_hosts = i < tree_buckets.size() ? tree_buckets[i].second : 0;
    int64_t wf_hosts = i < wf_buckets.size() ? wf_buckets[i].second : 0;
    table.NewRow().Cell(low).Cell(st_hosts).Cell(wf_hosts);
  }
  bench::EmitTable(table);
}

int Main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineInt("powerlaw_hosts", 40000, "power-law network size");
  flags.DefineInt("grid_side", 100, "grid side length");
  flags.DefineInt("seed", 42, "base seed");
  bench::DefineThreadsFlag(&flags);
  ParseFlagsOrDie(&flags, argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  bench::PrintHeader(
      "Fig. 12 - computation cost distribution (count query)",
      "hosts (Y) per processed-message count (X); WILDFIRE ~2-4x ST on "
      "power-law, ~40x on wireless Grid");

  auto powerlaw = bench::MakeTopology(
      "power-law", static_cast<uint32_t>(flags.GetInt("powerlaw_hosts")),
      seed);
  VALIDITY_CHECK(powerlaw.ok());
  core::QueryEngine powerlaw_engine(
      &*powerlaw, core::MakeZipfValues(powerlaw->num_hosts(), seed + 1));
  auto grid = topology::MakeGrid(
      static_cast<uint32_t>(flags.GetInt("grid_side")));
  VALIDITY_CHECK(grid.ok());
  core::QueryEngine grid_engine(
      &*grid, core::MakeZipfValues(grid->num_hosts(), seed + 1));

  // Four independent (engine, protocol, medium) cells; engines are shared
  // across cells but Run is const and thread-safe.
  struct Cell {
    const core::QueryEngine* engine;
    protocols::ProtocolKind kind;
    sim::MediumKind medium;
  };
  const std::vector<Cell> cells{
      {&powerlaw_engine, protocols::ProtocolKind::kSpanningTree,
       sim::MediumKind::kPointToPoint},
      {&powerlaw_engine, protocols::ProtocolKind::kWildfire,
       sim::MediumKind::kPointToPoint},
      {&grid_engine, protocols::ProtocolKind::kSpanningTree,
       sim::MediumKind::kWireless},
      {&grid_engine, protocols::ProtocolKind::kWildfire,
       sim::MediumKind::kWireless},
  };
  auto results = core::ParallelMap<core::QueryResult>(
      cells.size(), bench::GetThreads(flags), [&](size_t i) {
        return RunOne(*cells[i].engine, cells[i].kind, cells[i].medium, seed);
      });

  EmitDistribution("Power-Law (point-to-point)", results[0], results[1]);
  EmitDistribution("Grid (wireless)", results[2], results[3]);
  return 0;
}

}  // namespace
}  // namespace validity

int main(int argc, char** argv) { return validity::Main(argc, argv); }
