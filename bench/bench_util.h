// Shared plumbing for the figure-reproduction bench binaries: topology
// construction by name, common flags, and output conventions. Every bench
// prints (a) an aligned table mirroring the paper figure's series and (b)
// the same rows as CSV for replotting.

#ifndef VALIDITY_BENCH_BENCH_UTIL_H_
#define VALIDITY_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table.h"
#include "core/sweep.h"
#include "topology/algorithms.h"
#include "topology/generators.h"

namespace validity::bench {

/// Registers the standard --threads flag (0 = all hardware threads). Every
/// bench that fans independent runs out through core::ParallelFor takes it;
/// results are bit-identical at any value.
inline void DefineThreadsFlag(FlagSet* flags) {
  flags->DefineInt("threads", 0,
                   "worker threads for independent runs (0 = hardware)");
}

inline uint32_t GetThreads(const FlagSet& flags) {
  int64_t threads = flags.GetInt("threads");
  VALIDITY_CHECK(threads >= 0, "--threads must be >= 0, got %lld",
                 static_cast<long long>(threads));
  // Clamp before the uint32 cast so huge values cannot wrap to 0 ("auto").
  return static_cast<uint32_t>(
      std::min<int64_t>(threads, core::kMaxSweepThreads));
}

/// Parses "5000,10000,20000" into {5000, 10000, 20000}.
inline std::vector<uint32_t> ParseUint32List(const std::string& text) {
  std::vector<uint32_t> values;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    values.push_back(
        static_cast<uint32_t>(std::stoul(text.substr(pos, comma - pos))));
    pos = comma + 1;
  }
  return values;
}

/// Builds one of the paper's §6.1 topologies. `name` is one of
/// "gnutella" (synthetic stand-in for the 39,046-host crawl), "random"
/// (ER, avg degree 5), "power-law" (gamma 2.9), "grid" (sqrt(n) x sqrt(n)
/// Moore sensor field).
inline StatusOr<topology::Graph> MakeTopology(const std::string& name,
                                              uint32_t hosts, uint64_t seed) {
  if (name == "gnutella") return topology::MakeGnutellaLike(hosts, seed);
  if (name == "random") return topology::MakeRandom(hosts, 5.0, seed);
  if (name == "power-law") return topology::MakePowerLaw(hosts, 2.9, seed);
  if (name == "grid") {
    uint32_t side = 1;
    while ((side + 1) * (side + 1) <= hosts) ++side;
    return topology::MakeGrid(side);
  }
  return Status::InvalidArgument("unknown topology '" + name + "'");
}

/// Prints the standard bench banner.
inline void PrintHeader(const std::string& what, const std::string& paper_ref) {
  std::printf("=== %s ===\n", what.c_str());
  std::printf("reproduces: %s\n\n", paper_ref.c_str());
}

/// Prints a table twice: aligned and as CSV.
inline void EmitTable(const TablePrinter& table) {
  table.Print(std::cout);
  std::printf("\n--- csv ---\n");
  table.PrintCsv(std::cout);
  std::printf("\n");
}

}  // namespace validity::bench

#endif  // VALIDITY_BENCH_BENCH_UTIL_H_
