// Shared plumbing for the figure-reproduction bench binaries: topology
// construction by name, common flags, and output conventions. Every bench
// prints (a) an aligned table mirroring the paper figure's series and (b)
// the same rows as CSV for replotting.

#ifndef VALIDITY_BENCH_BENCH_UTIL_H_
#define VALIDITY_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <iostream>
#include <string>

#include "common/flags.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table.h"
#include "topology/algorithms.h"
#include "topology/generators.h"

namespace validity::bench {

/// Builds one of the paper's §6.1 topologies. `name` is one of
/// "gnutella" (synthetic stand-in for the 39,046-host crawl), "random"
/// (ER, avg degree 5), "power-law" (gamma 2.9), "grid" (sqrt(n) x sqrt(n)
/// Moore sensor field).
inline StatusOr<topology::Graph> MakeTopology(const std::string& name,
                                              uint32_t hosts, uint64_t seed) {
  if (name == "gnutella") return topology::MakeGnutellaLike(hosts, seed);
  if (name == "random") return topology::MakeRandom(hosts, 5.0, seed);
  if (name == "power-law") return topology::MakePowerLaw(hosts, 2.9, seed);
  if (name == "grid") {
    uint32_t side = 1;
    while ((side + 1) * (side + 1) <= hosts) ++side;
    return topology::MakeGrid(side);
  }
  return Status::InvalidArgument("unknown topology '" + name + "'");
}

/// Prints the standard bench banner.
inline void PrintHeader(const std::string& what, const std::string& paper_ref) {
  std::printf("=== %s ===\n", what.c_str());
  std::printf("reproduces: %s\n\n", paper_ref.c_str());
}

/// Prints a table twice: aligned and as CSV.
inline void EmitTable(const TablePrinter& table) {
  table.Print(std::cout);
  std::printf("\n--- csv ---\n");
  table.PrintCsv(std::cout);
  std::printf("\n");
}

}  // namespace validity::bench

#endif  // VALIDITY_BENCH_BENCH_UTIL_H_
