// §5.4 extension: continuous approximate network-size estimation.
//
// No figure in the paper evaluates these (the journal version presents them
// analytically); this bench quantifies both schemes on a churning overlay:
//   (a) capture-recapture (Jolly-Seber) with uniform and random-walk
//       sampling black boxes;
//   (b) the DHT-ring segment-length estimator: s lookups routed to uniform
//       ring positions return length-biased segments x_i; the unbiased
//       size estimate is the mean reciprocal (1/s) * sum 1/x_i.
// Series: estimate vs ground-truth alive count per sampling interval.

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "protocols/capture_recapture.h"
#include "protocols/ring_estimator.h"
#include "sim/churn.h"

namespace validity {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineInt("hosts", 10000, "network size");
  flags.DefineInt("removals", 5000, "hosts that churn away");
  flags.DefineInt("sample_size", 600, "hosts sampled per interval");
  flags.DefineInt("intervals", 10, "sampling intervals");
  flags.DefineInt("seed", 42, "base seed");
  bench::DefineThreadsFlag(&flags);
  ParseFlagsOrDie(&flags, argc, argv);
  const uint32_t hosts = static_cast<uint32_t>(flags.GetInt("hosts"));
  const uint32_t removals = static_cast<uint32_t>(flags.GetInt("removals"));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  bench::PrintHeader(
      "§5.4 extension - continuous network-size estimation under churn",
      "capture-recapture |M||N|/m and ring s/X_s track the alive count");

  auto graph = topology::MakeRandom(hosts, 6.0, seed);
  VALIDITY_CHECK(graph.ok());

  const double interval = 10.0;
  const uint32_t intervals =
      static_cast<uint32_t>(flags.GetInt("intervals"));

  TablePrinter table({"time", "true_alive", "cr_uniform", "cr_walk",
                      "ring_seg", "cr_uniform_err", "ring_err"});

  // Run the two capture-recapture samplers on identically churned networks.
  auto make_sim = [&] {
    auto sim = std::make_unique<sim::Simulator>(*graph, sim::SimOptions{});
    Rng churn_rng(seed + 1);
    sim::ScheduleChurn(sim.get(),
                       sim::MakeUniformChurn(hosts, 0, removals, 0.0,
                                             interval * intervals,
                                             &churn_rng));
    return sim;
  };

  protocols::CaptureRecaptureOptions cr;
  cr.sample_size = static_cast<uint32_t>(flags.GetInt("sample_size"));
  cr.interval = interval;
  cr.num_intervals = intervals;

  // The two capture-recapture samplers run on independent, identically
  // churned simulations — one sweep-driver task each.
  auto sim_uniform = make_sim();
  cr.sampler = protocols::SamplerKind::kUniform;
  protocols::CaptureRecaptureEstimator uniform_est(sim_uniform.get(), cr,
                                                   seed + 2);
  VALIDITY_CHECK(uniform_est.Start(0).ok());

  auto sim_walk = make_sim();
  cr.sampler = protocols::SamplerKind::kRandomWalk;
  protocols::CaptureRecaptureEstimator walk_est(sim_walk.get(), cr, seed + 3);
  VALIDITY_CHECK(walk_est.Start(0).ok());

  core::ParallelFor(2, bench::GetThreads(flags), [&](size_t i) {
    (i == 0 ? sim_uniform : sim_walk)->Run();
  });

  // Ring estimator sampled on a third, identically churned network.
  auto sim_ring = make_sim();
  protocols::RingSizeEstimator ring(sim_ring.get(), seed + 4);
  Rng ring_rng(seed + 5);

  const auto& uni = uniform_est.estimates();
  const auto& walk = walk_est.estimates();
  for (size_t i = 0; i < uni.size(); ++i) {
    sim_ring->RunUntil(uni[i].time);
    auto ring_est = ring.EstimateSize(cr.sample_size / 2, &ring_rng);
    double ring_value = ring_est.ok() ? *ring_est : std::nan("");
    double walk_value = i < walk.size() ? walk[i].estimate : std::nan("");
    double truth = uni[i].true_alive;
    table.NewRow()
        .Cell(uni[i].time, 0)
        .Cell(truth, 0)
        .Cell(uni[i].estimate, 0)
        .Cell(walk_value, 0)
        .Cell(ring_value, 0)
        .Cell(std::fabs(uni[i].estimate / truth - 1.0), 3)
        .Cell(std::fabs(ring_value / truth - 1.0), 3);
  }
  bench::EmitTable(table);
  return 0;
}

}  // namespace
}  // namespace validity

int main(int argc, char** argv) { return validity::Main(argc, argv); }
