// Figure 6: accuracy of the duplicate-insensitive count and sum operators.
//
// Paper setup (§6.4): sets M of Zipf-distributed elements in [10, 500] with
// |M| in {2^10, 2^12, 2^14}; plot the ratio estimate/truth against the
// number of FM repetitions c. Expected shape: the ratio converges to 1 as c
// grows, and c ~ 8 already suffices.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "common/stats.h"
#include "common/zipf.h"
#include "sketch/fm_sketch.h"

namespace validity {
namespace {

int Main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineInt("trials", 10, "trials per (|M|, c) cell");
  flags.DefineInt("seed", 42, "base RNG seed");
  bench::DefineThreadsFlag(&flags);
  ParseFlagsOrDie(&flags, argc, argv);
  const int trials = static_cast<int>(flags.GetInt("trials"));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  bench::PrintHeader("Fig. 6 - accuracy of count and sum operators",
                     "ratio m-hat/m vs repetitions c; |M| in {2^10, 2^12, "
                     "2^14}; converges to 1 by c ~ 8");

  auto zipf = ZipfGenerator::Make(10, 500, 1.0);
  VALIDITY_CHECK(zipf.ok());

  // Grid cells are independent (each trial seeds its own Rng from the cell
  // coordinates), so they run on the sweep driver; rows emit in grid order.
  const std::vector<int> log_sizes{10, 12, 14};
  const std::vector<uint32_t> repetitions{2u, 4u, 8u, 16u, 32u, 64u};
  struct Row {
    size_t set_size;
    uint32_t c;
    RunningStat count_ratio;
    RunningStat sum_ratio;
  };
  auto rows = core::ParallelMap<Row>(
      log_sizes.size() * repetitions.size(), bench::GetThreads(flags),
      [&](size_t i) {
        const int log_size = log_sizes[i / repetitions.size()];
        const uint32_t c = repetitions[i % repetitions.size()];
        Row row;
        row.set_size = size_t{1} << log_size;
        row.c = c;
        for (int t = 0; t < trials; ++t) {
          // Bit-packed so no (size, c, t) cells collide at any --trials.
          Rng rng(Mix64(seed ^ (uint64_t{static_cast<uint32_t>(log_size)} << 40) ^
                        (uint64_t{c} << 20) ^ static_cast<uint64_t>(t)));
          std::vector<int64_t> values = zipf->SampleMany(&rng, row.set_size);
          int64_t truth_sum = 0;
          for (int64_t v : values) truth_sum += v;
          sketch::FmSetEstimate est =
              sketch::EstimateSet(sketch::FmParams{c}, values, &rng);
          row.count_ratio.Add(est.count / static_cast<double>(row.set_size));
          row.sum_ratio.Add(est.sum / static_cast<double>(truth_sum));
        }
        return row;
      });

  TablePrinter table({"set_size", "c", "count_ratio_mean", "count_ratio_ci95",
                      "sum_ratio_mean", "sum_ratio_ci95"});
  for (const Row& row : rows) {
    table.NewRow()
        .Cell(static_cast<int64_t>(row.set_size))
        .Cell(static_cast<int64_t>(row.c))
        .Cell(row.count_ratio.mean(), 3)
        .Cell(row.count_ratio.ci95_half_width(), 3)
        .Cell(row.sum_ratio.mean(), 3)
        .Cell(row.sum_ratio.ci95_half_width(), 3);
  }
  bench::EmitTable(table);
  return 0;
}

}  // namespace
}  // namespace validity

int main(int argc, char** argv) { return validity::Main(argc, argv); }
