// Figure 7: count query on the Gnutella topology under increasing churn.
//
// Paper setup (§6.5): |H| = 39,046 Gnutella crawl (here: the documented
// synthetic stand-in), R in {256..4096} hosts removed at a uniform rate
// during the query, 10 trials with 95% CI, ORACLE bounds overlaid.
// Expected shape: SPANNINGTREE and DAG fall below the Single-Site Validity
// lower bound as R grows; WILDFIRE stays within bounds even at ~10% churn.

#include "churn_figure.h"

int main(int argc, char** argv) {
  validity::bench::ChurnFigureConfig config;
  config.aggregate = validity::AggregateKind::kCount;
  config = validity::bench::ParseChurnFlags(argc, argv, config);
  validity::bench::PrintHeader(
      "Fig. 7 - count query on the Gnutella topology",
      "count vs departures R; ST/DAG collapse, WILDFIRE stays valid");
  validity::bench::RunChurnFigure(config);
  return 0;
}
