// Figure 9: count query on the Grid (sensor) topology under churn.
//
// Paper setup (§6.5): 100 x 100 grid, wireless medium. Expected shape:
// SPANNINGTREE performs *extremely* poorly — its tree on the grid is deep,
// most hosts are interior, and each interior failure drops the entire
// collected subtree; WILDFIRE remains within the ORACLE bounds.

#include "churn_figure.h"

int main(int argc, char** argv) {
  validity::bench::ChurnFigureConfig config;
  config.aggregate = validity::AggregateKind::kCount;
  config.topology = "grid";
  config.hosts = 10000;  // 100 x 100
  config = validity::bench::ParseChurnFlags(argc, argv, config);
  validity::bench::PrintHeader(
      "Fig. 9 - count query on the Grid topology",
      "deep trees lose whole subtrees per failure; WILDFIRE stays valid");
  validity::bench::RunChurnFigure(config);
  return 0;
}
