// Validity-degradation surface under the deterministic fault plane: query
// answer vs link loss rate and vs byzantine fraction, for SPANNINGTREE /
// GOSSIP / WILDFIRE. Not a figure from the paper — an extension probing how
// each protocol's validity story (§5) survives faults the paper's model
// excludes: lossy links, duplicating links, and byzantine hosts that
// inflate sketches, deaden replies, or replay stale state.
//
// Expected shape:
//   - drops: WILDFIRE degrades gracefully (FM OR-merge is monotone, so the
//     answer shrinks toward the reachable subset); SPANNINGTREE falls off a
//     cliff once a report link drops (whole subtrees vanish); GOSSIP loses
//     push-sum mass and undershoots.
//   - duplicates: WILDFIRE is bit-identical to clean (OR-merge is
//     duplicate-insensitive); GOSSIP double-counts mass.
//   - byz-inflate: WILDFIRE/SPANNINGTREE overshoot and leave the oracle
//     interval (within -> 0) as the byzantine fraction grows.
//   - stale-replay: bounded skew, protocol-dependent.
//
// Output is bit-identical at any --threads value (see core/experiment.h).

#include "bench_util.h"
#include "churn_figure.h"
#include "sim/fault.h"

namespace validity::bench {
namespace {

struct FaultFigureConfig {
  std::string topology = "random";
  uint32_t hosts = 2000;
  uint32_t trials = 5;
  uint32_t fm_vectors = 16;
  uint64_t seed = 42;
  uint32_t threads = 0;
  /// Host departures per cell; 0 isolates the fault axis from churn.
  uint32_t removals = 0;
};

std::vector<sim::FaultSpec> FaultLevels() {
  std::vector<sim::FaultSpec> levels;
  levels.push_back(sim::FaultSpec{});  // clean baseline
  // Axis 1: link loss.
  for (double rate : {0.02, 0.05, 0.10, 0.20}) {
    sim::FaultSpec spec;
    spec.drop_rate = rate;
    levels.push_back(spec);
  }
  // Axis 2: duplication with bounded extra delay (validity under replayed
  // deliveries; separates duplicate-insensitive combiners from mass-based).
  {
    sim::FaultSpec spec;
    spec.duplicate_rate = 0.10;
    spec.delay_rate = 0.10;
    spec.max_delay_hops = 2;
    levels.push_back(spec);
  }
  // Axis 3: byzantine fractions, one block per mode.
  for (sim::ByzantineMode mode :
       {sim::ByzantineMode::kInflate, sim::ByzantineMode::kDeadenReplies,
        sim::ByzantineMode::kStaleReplay}) {
    for (double fraction : {0.01, 0.05, 0.20}) {
      sim::FaultSpec spec;
      spec.byzantine_mode = mode;
      spec.byzantine_fraction = fraction;
      levels.push_back(spec);
    }
  }
  // Axis 4: combined weather — loss and byzantine inflation together.
  {
    sim::FaultSpec spec;
    spec.drop_rate = 0.05;
    spec.byzantine_mode = sim::ByzantineMode::kInflate;
    spec.byzantine_fraction = 0.05;
    levels.push_back(spec);
  }
  return levels;
}

void RunFaultFigure(const FaultFigureConfig& config) {
  PrintHeader("fault degradation surface",
              "extension of §5-§6: validity vs loss rate vs byzantine "
              "fraction");
  auto graph = MakeTopology(config.topology, config.hosts, config.seed);
  VALIDITY_CHECK(graph.ok(), "%s", graph.status().ToString().c_str());
  std::printf("topology: %s, |H| = %u, |E| = %llu\n\n", config.topology.c_str(),
              graph->num_hosts(),
              static_cast<unsigned long long>(graph->num_edges()));

  core::QueryEngine engine(
      &*graph, core::MakeZipfValues(graph->num_hosts(), config.seed + 1));

  core::QuerySpec spec;
  spec.aggregate = AggregateKind::kCount;
  spec.fm_vectors = config.fm_vectors;

  // WILDFIRE vs GOSSIP vs SPANNINGTREE: the paper's champion, the epidemic
  // alternative, and the fragile baseline.
  std::vector<core::ProtocolSpec> lineup;
  lineup.push_back({"spanning-tree", protocols::ProtocolKind::kSpanningTree,
                    protocols::ProtocolOptions{}});
  lineup.push_back({"gossip", protocols::ProtocolKind::kGossip,
                    protocols::ProtocolOptions{}});
  lineup.push_back({"wildfire", protocols::ProtocolKind::kWildfire,
                    protocols::ProtocolOptions{}});

  core::ChurnSweepOptions sweep;
  sweep.trials = config.trials;
  sweep.base_seed = config.seed;
  sweep.threads = config.threads;
  sweep.fault_levels = FaultLevels();
  std::fprintf(stderr, "sweep threads: %u\n",
               core::ResolveThreads(config.threads));

  auto cells = core::RunChurnSweep(engine, spec, /*hq=*/0, lineup,
                                   {config.removals}, sweep);

  // Pivot: one row per fault level, protocols as columns. Rows keep the
  // FaultLevels() order (cells are fault-major).
  TablePrinter table({"fault", "spanning-tree", "gossip", "wildfire",
                      "wf_ci95", "oracle_low", "oracle_high", "st_within",
                      "go_within", "wf_within"});
  for (size_t i = 0; i + lineup.size() <= cells.size(); i += lineup.size()) {
    const auto& st = cells[i];
    const auto& go = cells[i + 1];
    const auto& wf = cells[i + 2];
    table.NewRow()
        .Cell(st.fault)
        .Cell(st.value.mean, 1)
        .Cell(go.value.mean, 1)
        .Cell(wf.value.mean, 1)
        .Cell(wf.value.ci95, 1)
        .Cell(wf.oracle_low.mean, 1)
        .Cell(wf.oracle_high.mean, 1)
        .Cell(st.within_slack_fraction, 2)
        .Cell(go.within_slack_fraction, 2)
        .Cell(wf.within_slack_fraction, 2);
  }
  EmitTable(table);

  std::printf(
      "expected shape: under drops the redundant wildfire flood barely\n"
      "moves while spanning-tree loses whole subtrees; under duplicates\n"
      "wildfire is unchanged (FM OR-merge) while gossip double-counts\n"
      "mass; byz-inflate pushes every protocol above oracle_high\n"
      "(within -> 0).\n");
}

}  // namespace
}  // namespace validity::bench

int main(int argc, char** argv) {
  using namespace validity;
  bench::FaultFigureConfig config;
  FlagSet flags;
  flags.DefineString("topology", config.topology,
                     "gnutella|random|power-law|grid");
  flags.DefineInt("hosts", config.hosts, "network size");
  flags.DefineInt("trials", config.trials, "trials per fault level");
  flags.DefineInt("fm_vectors", config.fm_vectors, "FM repetitions c");
  flags.DefineInt("seed", static_cast<int64_t>(config.seed), "base seed");
  flags.DefineInt("removals", config.removals,
                  "host departures per cell (0 = faults only)");
  bench::DefineThreadsFlag(&flags);
  ParseFlagsOrDie(&flags, argc, argv);
  config.topology = flags.GetString("topology");
  config.hosts = static_cast<uint32_t>(flags.GetInt("hosts"));
  config.trials = static_cast<uint32_t>(flags.GetInt("trials"));
  config.fm_vectors = static_cast<uint32_t>(flags.GetInt("fm_vectors"));
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  config.removals = static_cast<uint32_t>(flags.GetInt("removals"));
  config.threads = bench::GetThreads(flags);
  bench::RunFaultFigure(config);
  return 0;
}
