// Figure 11: communication cost on Grid topologies (wireless medium).
//
// Paper setup (§6.6): sensor grids with broadcast radios — one transmission
// reaches all 8 neighbors. Expected shapes: DAG overlaps SPANNINGTREE
// exactly (reporting to k parents is one transmission); WILDFIRE pays ~5x
// SPANNINGTREE for count; WILDFIRE's max costs less than its count, and its
// min costs *less than SPANNINGTREE* — early aggregation suppresses hosts
// whose value cannot win.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"

namespace validity {
namespace {

uint64_t Messages(const core::QueryEngine& engine, AggregateKind agg,
                  protocols::ProtocolKind kind, uint32_t k, uint64_t seed) {
  core::QuerySpec spec;
  spec.aggregate = agg;
  spec.fm_vectors = 16;
  core::RunConfig config;
  config.protocol = kind;
  config.protocol_options.dag.max_parents = k;
  config.sim_options.medium = sim::MediumKind::kWireless;
  config.sketch_seed = seed;
  auto result = engine.Run(spec, config, 0);
  VALIDITY_CHECK(result.ok(), "%s", result.status().ToString().c_str());
  return result->cost.messages;
}

int Main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineString("sides", "50,70,100", "comma-separated grid sides");
  flags.DefineInt("seed", 42, "base seed");
  ParseFlagsOrDie(&flags, argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  std::vector<uint32_t> sides;
  {
    const std::string& text = flags.GetString("sides");
    size_t pos = 0;
    while (pos < text.size()) {
      size_t comma = text.find(',', pos);
      if (comma == std::string::npos) comma = text.size();
      sides.push_back(
          static_cast<uint32_t>(std::stoul(text.substr(pos, comma - pos))));
      pos = comma + 1;
    }
  }

  bench::PrintHeader(
      "Fig. 11 - communication cost on Grid (wireless, transmissions)",
      "DAG == ST; WILDFIRE-count ~5x ST; WILDFIRE-min cheaper than ST");

  TablePrinter table({"hosts", "st_count", "dag_k3_count", "wf_count",
                      "wf_max", "wf_min", "wf_count/st", "wf_min/st"});
  for (uint32_t side : sides) {
    auto graph = topology::MakeGrid(side);
    VALIDITY_CHECK(graph.ok());
    core::QueryEngine engine(&*graph,
                             core::MakeZipfValues(graph->num_hosts(),
                                                  seed + 1));
    uint64_t st = Messages(engine, AggregateKind::kCount,
                           protocols::ProtocolKind::kSpanningTree, 2, seed);
    uint64_t dag = Messages(engine, AggregateKind::kCount,
                            protocols::ProtocolKind::kDag, 3, seed);
    uint64_t wf_count = Messages(engine, AggregateKind::kCount,
                                 protocols::ProtocolKind::kWildfire, 2, seed);
    uint64_t wf_max = Messages(engine, AggregateKind::kMax,
                               protocols::ProtocolKind::kWildfire, 2, seed);
    uint64_t wf_min = Messages(engine, AggregateKind::kMin,
                               protocols::ProtocolKind::kWildfire, 2, seed);
    table.NewRow()
        .Cell(static_cast<int64_t>(graph->num_hosts()))
        .Cell(static_cast<int64_t>(st))
        .Cell(static_cast<int64_t>(dag))
        .Cell(static_cast<int64_t>(wf_count))
        .Cell(static_cast<int64_t>(wf_max))
        .Cell(static_cast<int64_t>(wf_min))
        .Cell(static_cast<double>(wf_count) / static_cast<double>(st), 2)
        .Cell(static_cast<double>(wf_min) / static_cast<double>(st), 2);
  }
  bench::EmitTable(table);
  return 0;
}

}  // namespace
}  // namespace validity

int main(int argc, char** argv) { return validity::Main(argc, argv); }
