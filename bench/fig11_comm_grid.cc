// Figure 11: communication cost on Grid topologies (wireless medium).
//
// Paper setup (§6.6): sensor grids with broadcast radios — one transmission
// reaches all 8 neighbors. Expected shapes: DAG overlaps SPANNINGTREE
// exactly (reporting to k parents is one transmission); WILDFIRE pays ~5x
// SPANNINGTREE for count; WILDFIRE's max costs less than its count, and its
// min costs *less than SPANNINGTREE* — early aggregation suppresses hosts
// whose value cannot win.

#include <cstdio>
#include <vector>

#include "bench_util.h"
#include "core/engine.h"

namespace validity {
namespace {

uint64_t Messages(const core::QueryEngine& engine, AggregateKind agg,
                  protocols::ProtocolKind kind, uint32_t k, uint64_t seed) {
  core::QuerySpec spec;
  spec.aggregate = agg;
  spec.fm_vectors = 16;
  core::RunConfig config;
  config.protocol = kind;
  config.protocol_options.dag.max_parents = k;
  config.sim_options.medium = sim::MediumKind::kWireless;
  config.sketch_seed = seed;
  auto result = engine.Run(spec, config, 0);
  VALIDITY_CHECK(result.ok(), "%s", result.status().ToString().c_str());
  return result->cost.messages;
}

int Main(int argc, char** argv) {
  FlagSet flags;
  flags.DefineString("sides", "50,70,100", "comma-separated grid sides");
  flags.DefineInt("seed", 42, "base seed");
  bench::DefineThreadsFlag(&flags);
  ParseFlagsOrDie(&flags, argc, argv);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed"));

  std::vector<uint32_t> sides = bench::ParseUint32List(flags.GetString("sides"));

  bench::PrintHeader(
      "Fig. 11 - communication cost on Grid (wireless, transmissions)",
      "DAG == ST; WILDFIRE-count ~5x ST; WILDFIRE-min cheaper than ST");

  struct Row {
    uint32_t hosts;
    uint64_t st, dag, wf_count, wf_max, wf_min;
  };
  auto rows = core::ParallelMap<Row>(
      sides.size(), bench::GetThreads(flags), [&](size_t i) {
        auto graph = topology::MakeGrid(sides[i]);
        VALIDITY_CHECK(graph.ok());
        core::QueryEngine engine(&*graph,
                                 core::MakeZipfValues(graph->num_hosts(),
                                                      seed + 1));
        Row row;
        row.hosts = graph->num_hosts();
        row.st = Messages(engine, AggregateKind::kCount,
                          protocols::ProtocolKind::kSpanningTree, 2, seed);
        row.dag = Messages(engine, AggregateKind::kCount,
                           protocols::ProtocolKind::kDag, 3, seed);
        row.wf_count = Messages(engine, AggregateKind::kCount,
                                protocols::ProtocolKind::kWildfire, 2, seed);
        row.wf_max = Messages(engine, AggregateKind::kMax,
                              protocols::ProtocolKind::kWildfire, 2, seed);
        row.wf_min = Messages(engine, AggregateKind::kMin,
                              protocols::ProtocolKind::kWildfire, 2, seed);
        return row;
      });

  TablePrinter table({"hosts", "st_count", "dag_k3_count", "wf_count",
                      "wf_max", "wf_min", "wf_count/st", "wf_min/st"});
  for (const Row& row : rows) {
    table.NewRow()
        .Cell(static_cast<int64_t>(row.hosts))
        .Cell(static_cast<int64_t>(row.st))
        .Cell(static_cast<int64_t>(row.dag))
        .Cell(static_cast<int64_t>(row.wf_count))
        .Cell(static_cast<int64_t>(row.wf_max))
        .Cell(static_cast<int64_t>(row.wf_min))
        .Cell(static_cast<double>(row.wf_count) /
                  static_cast<double>(row.st), 2)
        .Cell(static_cast<double>(row.wf_min) /
                  static_cast<double>(row.st), 2);
  }
  bench::EmitTable(table);
  return 0;
}

}  // namespace
}  // namespace validity

int main(int argc, char** argv) { return validity::Main(argc, argv); }
