// Undirected graph G = (H, E): the static initial topology of a network.
//
// Paper §3.1: hosts communicate over an undirected graph whose edges are
// symmetric neighbor relations; messages travel only between neighbors.
// Dynamism (host failure/join) is layered on top by sim::Network — a Graph
// itself is immutable once built.

#ifndef VALIDITY_TOPOLOGY_GRAPH_H_
#define VALIDITY_TOPOLOGY_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "common/types.h"

namespace validity::topology {

/// Incrementally built, then frozen, undirected simple graph.
class Graph {
 public:
  /// An empty graph with `num_hosts` isolated hosts.
  explicit Graph(uint32_t num_hosts);

  /// Adds the undirected edge {a, b}. Self-loops and duplicate edges are
  /// rejected with kInvalidArgument. O(deg) duplicate check.
  Status AddEdge(HostId a, HostId b);

  /// True if {a, b} is an edge.
  bool HasEdge(HostId a, HostId b) const;

  uint32_t num_hosts() const { return static_cast<uint32_t>(adj_.size()); }
  uint64_t num_edges() const { return num_edges_; }

  /// Neighbors of `h` in insertion order.
  std::span<const HostId> Neighbors(HostId h) const {
    VALIDITY_DCHECK(h < adj_.size());
    return adj_[h];
  }

  uint32_t Degree(HostId h) const {
    VALIDITY_DCHECK(h < adj_.size());
    return static_cast<uint32_t>(adj_[h].size());
  }

  /// 2|E| / |H| (0 for an empty graph).
  double AverageDegree() const;

  /// Maximum degree over all hosts.
  uint32_t MaxDegree() const;

  /// Verifies internal symmetry/simplicity invariants (used by tests and
  /// after deserialization).
  Status Validate() const;

 private:
  std::vector<std::vector<HostId>> adj_;
  uint64_t num_edges_ = 0;
};

}  // namespace validity::topology

#endif  // VALIDITY_TOPOLOGY_GRAPH_H_
