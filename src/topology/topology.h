// Adjacency providers: one interface over materialized graphs and implicit
// regular topologies.
//
// The paper's headline scenario is a million-host wireless grid (§6)
// queried over a small disc. A materialized Graph makes even *looking at*
// that network O(n): the CSR arrays alone are tens of MB and must be built
// before the first event fires. But the evaluation's regular topologies —
// the sensor grid, the DHT ring, the torus variants — are arithmetic
// objects: the neighbors of host h are a pure function of h and the shape
// parameters. A Topology describes either case behind one interface, so
// sim::Simulator can serve neighbor queries straight from arithmetic (no
// CSR, no per-host storage of any kind) for implicit kinds while edge-list
// graphs keep the CSR path.
//
// Determinism contract: CopyNeighbors enumerates neighbors in exactly the
// order the matching generator's Graph would store them (row-major Moore
// neighborhood for MakeGrid, ring order for MakeCycle), so a query run over
// an implicit topology is bit-identical to the same query over the
// materialized graph — tests/implicit_topology_test.cc enforces this across
// the full fingerprint matrix.
//
// Topology is a value type (a kind tag plus either a Graph pointer or shape
// parameters); copying is free. A kGraph topology does not own its Graph,
// which must outlive every simulator built over the topology.

#ifndef VALIDITY_TOPOLOGY_TOPOLOGY_H_
#define VALIDITY_TOPOLOGY_TOPOLOGY_H_

#include <cstdint>

#include "common/status.h"
#include "common/types.h"
#include "topology/graph.h"

namespace validity::topology {

class Topology {
 public:
  enum class Kind : uint8_t {
    kGraph,  // materialized edge-list Graph (CSR in the simulator)
    kGrid,   // side x side Moore grid, no wrap (MakeGrid's shape)
    kRing,   // cycle of n hosts (MakeCycle's shape; the DHT ring)
    kTorus,  // side x side Moore grid with wrap-around edges
  };

  /// Largest degree an implicit kind can produce (the Moore neighborhood);
  /// sized for stack buffers on neighbor-enumeration hot paths.
  static constexpr uint32_t kMaxImplicitDegree = 8;

  /// Wraps a materialized graph. `graph` must outlive every simulator and
  /// session built over the returned topology.
  static Topology FromGraph(const Graph* graph);

  /// side x side sensor grid, Moore 8-neighborhood, no wrap. Matches
  /// MakeGrid(side) host-for-host and neighbor-order-for-neighbor-order.
  static StatusOr<Topology> Grid(uint32_t side);

  /// Cycle of n >= 3 hosts. Matches MakeCycle(n) exactly.
  static StatusOr<Topology> Ring(uint32_t n);

  /// side x side Moore grid with wrap-around (every host has degree 8).
  /// side >= 3 so the wrapped neighborhood stays simple (no multi-edges).
  static StatusOr<Topology> Torus(uint32_t side);

  Kind kind() const { return kind_; }
  /// True for the arithmetic kinds that need no materialized adjacency.
  bool implicit() const { return kind_ != Kind::kGraph; }
  /// The wrapped graph (kGraph only; nullptr for implicit kinds).
  const Graph* graph() const { return graph_; }
  /// Shape parameter: grid/torus side, or ring length (implicit kinds).
  uint32_t side() const { return side_; }

  uint32_t num_hosts() const { return num_hosts_; }
  uint32_t Degree(HostId h) const;
  uint32_t MaxDegree() const;

  /// Writes the neighbors of `h` into `out` (which must hold Degree(h)
  /// entries — at most kMaxImplicitDegree for implicit kinds) in the
  /// deterministic enumeration order and returns the count. Pure arithmetic
  /// for implicit kinds; a copy of the adjacency span for kGraph.
  uint32_t CopyNeighbors(HostId h, HostId* out) const;

  /// Exact hop-count diameter, O(1); implicit kinds only (a Moore grid's
  /// metric is Chebyshev distance). Engines over kGraph topologies estimate
  /// instead (topology/algorithms.h).
  uint32_t ImplicitDiameter() const;

  /// Identity: same kind and same underlying object/shape. This is the
  /// session-compatibility test — two distinct Graph objects are different
  /// topologies even if isomorphic.
  bool SameAs(const Topology& other) const {
    return kind_ == other.kind_ && graph_ == other.graph_ &&
           side_ == other.side_ && num_hosts_ == other.num_hosts_;
  }

  const char* KindName() const;

  /// Builds a Graph with this topology's exact vertex and edge set (tests,
  /// and the bridge to Graph-only tooling). For kGrid/kRing the result is
  /// neighbor-order-identical to MakeGrid/MakeCycle; for kTorus the edge
  /// *set* is canonical but per-host order may differ from CopyNeighbors
  /// (use sim::SimOptions::materialize_adjacency for an order-exact CSR).
  StatusOr<Graph> Materialize() const;

 private:
  Topology(Kind kind, const Graph* graph, uint32_t side, uint32_t num_hosts)
      : kind_(kind), graph_(graph), side_(side), num_hosts_(num_hosts) {}

  Kind kind_;
  const Graph* graph_;
  uint32_t side_;
  uint32_t num_hosts_;
};

}  // namespace validity::topology

#endif  // VALIDITY_TOPOLOGY_TOPOLOGY_H_
