// Plain-text edge-list persistence for topologies.
//
// Format:
//   line 1: "<num_hosts> <num_edges>"
//   then one "<a> <b>" line per undirected edge.
// Lines starting with '#' are comments. Used to cache generated topologies
// between bench runs and to import externally crawled overlays.

#ifndef VALIDITY_TOPOLOGY_EDGE_LIST_IO_H_
#define VALIDITY_TOPOLOGY_EDGE_LIST_IO_H_

#include <string>

#include "common/status.h"
#include "topology/graph.h"

namespace validity::topology {

/// Writes `g` to `path`, overwriting any existing file.
Status SaveEdgeList(const Graph& g, const std::string& path);

/// Reads a graph from `path`; validates symmetry/simplicity on load.
StatusOr<Graph> LoadEdgeList(const std::string& path);

}  // namespace validity::topology

#endif  // VALIDITY_TOPOLOGY_EDGE_LIST_IO_H_
