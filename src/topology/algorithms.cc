#include "topology/algorithms.h"

#include <algorithm>
#include <cmath>
#include <deque>

namespace validity::topology {

std::vector<int32_t> BfsDistances(const Graph& g, HostId src) {
  return BfsDistancesFiltered(g, src, [](HostId) { return true; });
}

std::vector<int32_t> BfsDistancesFiltered(
    const Graph& g, HostId src, const std::function<bool(HostId)>& alive) {
  std::vector<int32_t> dist(g.num_hosts(), kUnreachable);
  if (src >= g.num_hosts() || !alive(src)) return dist;
  std::deque<HostId> frontier;
  dist[src] = 0;
  frontier.push_back(src);
  while (!frontier.empty()) {
    HostId u = frontier.front();
    frontier.pop_front();
    for (HostId v : g.Neighbors(u)) {
      if (dist[v] == kUnreachable && alive(v)) {
        dist[v] = dist[u] + 1;
        frontier.push_back(v);
      }
    }
  }
  return dist;
}

Components ConnectedComponents(const Graph& g) {
  Components out;
  out.component_of.assign(g.num_hosts(), UINT32_MAX);
  std::deque<HostId> frontier;
  for (HostId start = 0; start < g.num_hosts(); ++start) {
    if (out.component_of[start] != UINT32_MAX) continue;
    uint32_t id = out.count++;
    out.sizes.push_back(0);
    out.component_of[start] = id;
    frontier.push_back(start);
    while (!frontier.empty()) {
      HostId u = frontier.front();
      frontier.pop_front();
      ++out.sizes[id];
      for (HostId v : g.Neighbors(u)) {
        if (out.component_of[v] == UINT32_MAX) {
          out.component_of[v] = id;
          frontier.push_back(v);
        }
      }
    }
  }
  for (uint32_t id = 0; id < out.count; ++id) {
    if (out.sizes[id] > out.sizes[out.largest]) out.largest = id;
  }
  return out;
}

uint32_t Eccentricity(const Graph& g, HostId src) {
  std::vector<int32_t> dist = BfsDistances(g, src);
  int32_t ecc = 0;
  for (int32_t d : dist) ecc = std::max(ecc, d);
  return static_cast<uint32_t>(ecc);
}

uint32_t ExactDiameter(const Graph& g) {
  uint32_t diameter = 0;
  for (HostId h = 0; h < g.num_hosts(); ++h) {
    diameter = std::max(diameter, Eccentricity(g, h));
  }
  return diameter;
}

uint32_t EstimateDiameter(const Graph& g, int sweeps, Rng* rng) {
  if (g.num_hosts() == 0) return 0;
  uint32_t best = 0;
  for (int s = 0; s < sweeps; ++s) {
    HostId start = static_cast<HostId>(rng->NextBelow(g.num_hosts()));
    // Double sweep: BFS from a random host, then BFS again from the farthest
    // host found; the second eccentricity lower-bounds the diameter and is
    // typically tight on small-world graphs.
    std::vector<int32_t> d1 = BfsDistances(g, start);
    HostId far = start;
    int32_t far_d = 0;
    for (HostId h = 0; h < g.num_hosts(); ++h) {
      if (d1[h] > far_d) {
        far_d = d1[h];
        far = h;
      }
    }
    best = std::max(best, Eccentricity(g, far));
  }
  return best;
}

DegreeStats ComputeDegreeStats(const Graph& g) {
  DegreeStats stats;
  if (g.num_hosts() == 0) return stats;
  stats.min = UINT32_MAX;
  for (HostId h = 0; h < g.num_hosts(); ++h) {
    uint32_t d = g.Degree(h);
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
    stats.histogram.Add(d);
  }
  stats.average = g.AverageDegree();
  return stats;
}

double EstimatePowerLawExponent(const Graph& g, uint32_t d_min) {
  // Discrete MLE approximation: gamma ~= 1 + n / sum(ln(d_i / (d_min - 0.5))).
  double log_sum = 0.0;
  uint32_t n = 0;
  for (HostId h = 0; h < g.num_hosts(); ++h) {
    uint32_t d = g.Degree(h);
    if (d >= d_min) {
      log_sum +=
          std::log(static_cast<double>(d) / (static_cast<double>(d_min) - 0.5));
      ++n;
    }
  }
  if (n < 10 || log_sum <= 0.0) return 0.0;
  return 1.0 + static_cast<double>(n) / log_sum;
}

}  // namespace validity::topology
