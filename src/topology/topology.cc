#include "topology/topology.h"

#include <algorithm>
#include <cstring>

namespace validity::topology {

Topology Topology::FromGraph(const Graph* graph) {
  VALIDITY_CHECK(graph != nullptr);
  return Topology(Kind::kGraph, graph, 0, graph->num_hosts());
}

StatusOr<Topology> Topology::Grid(uint32_t side) {
  if (side == 0) return Status::InvalidArgument("empty grid");
  uint64_t n64 = static_cast<uint64_t>(side) * side;
  if (n64 > UINT32_MAX) return Status::InvalidArgument("grid too large");
  return Topology(Kind::kGrid, nullptr, side, static_cast<uint32_t>(n64));
}

StatusOr<Topology> Topology::Ring(uint32_t n) {
  if (n < 3) return Status::InvalidArgument("ring needs >= 3 hosts");
  return Topology(Kind::kRing, nullptr, n, n);
}

StatusOr<Topology> Topology::Torus(uint32_t side) {
  // side >= 3 keeps wrapped neighbors distinct (side 2 would fold the
  // east and west neighbor onto the same host).
  if (side < 3) return Status::InvalidArgument("torus needs side >= 3");
  uint64_t n64 = static_cast<uint64_t>(side) * side;
  if (n64 > UINT32_MAX) return Status::InvalidArgument("torus too large");
  return Topology(Kind::kTorus, nullptr, side, static_cast<uint32_t>(n64));
}

uint32_t Topology::Degree(HostId h) const {
  VALIDITY_DCHECK(h < num_hosts_);
  switch (kind_) {
    case Kind::kGraph:
      return graph_->Degree(h);
    case Kind::kGrid: {
      // Interior hosts have the full Moore neighborhood; each clamped axis
      // drops one of the three rows/columns.
      uint32_t r = h / side_;
      uint32_t c = h % side_;
      uint32_t rows = (r > 0 ? 1u : 0u) + 1u + (r + 1 < side_ ? 1u : 0u);
      uint32_t cols = (c > 0 ? 1u : 0u) + 1u + (c + 1 < side_ ? 1u : 0u);
      return rows * cols - 1;
    }
    case Kind::kRing:
      return 2;
    case Kind::kTorus:
      return kMaxImplicitDegree;
  }
  return 0;
}

uint32_t Topology::MaxDegree() const {
  switch (kind_) {
    case Kind::kGraph:
      return graph_->MaxDegree();
    case Kind::kGrid:
      if (side_ == 1) return 0;
      return side_ == 2 ? 3 : kMaxImplicitDegree;
    case Kind::kRing:
      return 2;
    case Kind::kTorus:
      return kMaxImplicitDegree;
  }
  return 0;
}

uint32_t Topology::CopyNeighbors(HostId h, HostId* out) const {
  VALIDITY_DCHECK(h < num_hosts_);
  switch (kind_) {
    case Kind::kGraph: {
      auto nbrs = graph_->Neighbors(h);
      std::memcpy(out, nbrs.data(), nbrs.size() * sizeof(HostId));
      return static_cast<uint32_t>(nbrs.size());
    }
    case Kind::kGrid: {
      // Row-major sweep of the Moore square. This is exactly the order
      // MakeGrid's edge-insertion sequence leaves in each adjacency list:
      // the four cells processed before (r, c) contribute NW, N, NE, W in
      // that order, then (r, c) itself appends E, SW, S, SE.
      uint32_t r = h / side_;
      uint32_t c = h % side_;
      uint32_t n = 0;
      for (int32_t dr = -1; dr <= 1; ++dr) {
        int64_t rr = static_cast<int64_t>(r) + dr;
        if (rr < 0 || rr >= side_) continue;
        for (int32_t dc = -1; dc <= 1; ++dc) {
          if (dr == 0 && dc == 0) continue;
          int64_t cc = static_cast<int64_t>(c) + dc;
          if (cc < 0 || cc >= side_) continue;
          out[n++] = static_cast<HostId>(rr * side_ + cc);
        }
      }
      return n;
    }
    case Kind::kRing:
      // MakeCycle's insertion order: edge (h-1, h) lands before (h, h+1)
      // for every h except 0, whose first edge is (0, 1) and whose wrap
      // edge (n-1, 0) arrives last.
      if (h == 0) {
        out[0] = 1;
        out[1] = side_ - 1;
      } else {
        out[0] = h - 1;
        out[1] = (h + 1 == side_) ? 0 : h + 1;
      }
      return 2;
    case Kind::kTorus: {
      uint32_t r = h / side_;
      uint32_t c = h % side_;
      uint32_t up = (r == 0 ? side_ : r) - 1;
      uint32_t down = (r + 1 == side_) ? 0 : r + 1;
      uint32_t left = (c == 0 ? side_ : c) - 1;
      uint32_t right = (c + 1 == side_) ? 0 : c + 1;
      out[0] = up * side_ + left;
      out[1] = up * side_ + c;
      out[2] = up * side_ + right;
      out[3] = r * side_ + left;
      out[4] = r * side_ + right;
      out[5] = down * side_ + left;
      out[6] = down * side_ + c;
      out[7] = down * side_ + right;
      return kMaxImplicitDegree;
    }
  }
  return 0;
}

uint32_t Topology::ImplicitDiameter() const {
  switch (kind_) {
    case Kind::kGraph:
      VALIDITY_CHECK(false, "graph topologies estimate their diameter");
      return 0;
    case Kind::kGrid:
      // Moore moves are king moves: distance is the Chebyshev metric.
      return side_ - 1;
    case Kind::kRing:
      return side_ / 2;
    case Kind::kTorus:
      return side_ / 2;
  }
  return 0;
}

const char* Topology::KindName() const {
  switch (kind_) {
    case Kind::kGraph:
      return "graph";
    case Kind::kGrid:
      return "grid";
    case Kind::kRing:
      return "ring";
    case Kind::kTorus:
      return "torus";
  }
  return "?";
}

StatusOr<Graph> Topology::Materialize() const {
  Graph g(num_hosts_);
  HostId buf[kMaxImplicitDegree];
  for (HostId h = 0; h < num_hosts_; ++h) {
    const HostId* nbrs = buf;
    uint32_t count;
    if (kind_ == Kind::kGraph) {
      auto span = graph_->Neighbors(h);
      nbrs = span.data();
      count = static_cast<uint32_t>(span.size());
    } else {
      count = CopyNeighbors(h, buf);
    }
    for (uint32_t i = 0; i < count; ++i) {
      if (nbrs[i] > h) {
        if (Status st = g.AddEdge(h, nbrs[i]); !st.ok()) return st;
      }
    }
  }
  return g;
}

}  // namespace validity::topology
