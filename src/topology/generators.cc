#include "topology/generators.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "topology/algorithms.h"

namespace validity::topology {

namespace {

/// Connects every component to the largest one with a single random edge
/// each, so the generated network is usable as one overlay. The number of
/// stitched edges is reported by tests to confirm the perturbation is tiny.
void StitchComponents(Graph* g, Rng* rng) {
  Components comps = ConnectedComponents(*g);
  if (comps.count <= 1) return;
  // Collect one random representative per component and all hosts of the
  // largest component for random anchor selection.
  std::vector<std::vector<HostId>> members(comps.count);
  for (HostId h = 0; h < g->num_hosts(); ++h) {
    members[comps.component_of[h]].push_back(h);
  }
  const auto& giant = members[comps.largest];
  for (uint32_t c = 0; c < comps.count; ++c) {
    if (c == comps.largest) continue;
    const auto& comp = members[c];
    for (int attempt = 0; attempt < 16; ++attempt) {
      HostId a = comp[rng->NextBelow(comp.size())];
      HostId b = giant[rng->NextBelow(giant.size())];
      if (g->AddEdge(a, b).ok()) break;
    }
  }
}

/// Weighted pick of the attachment fan-out used by MakeGnutellaLike:
/// favors 1-2 links (leaf-like peers) with a small heavy tail, yielding an
/// average degree around 3.5, as measured for Gnutella in 2001.
uint32_t GnutellaFanout(Rng* rng) {
  double u = rng->NextDouble();
  if (u < 0.55) return 1;
  if (u < 0.80) return 2;
  if (u < 0.92) return 3;
  if (u < 0.97) return 4;
  return 5;
}

}  // namespace

StatusOr<Graph> MakeRandom(uint32_t n, double avg_degree, uint64_t seed) {
  if (n == 0) return Status::InvalidArgument("empty network");
  if (avg_degree < 0.0 || avg_degree > static_cast<double>(n - 1)) {
    return Status::InvalidArgument("average degree out of range");
  }
  Graph g(n);
  if (n == 1) return g;
  Rng rng(seed);
  double p = avg_degree / static_cast<double>(n - 1);
  if (p > 0.0) {
    // O(n + m) G(n,p): geometric skips through the strictly-upper-triangular
    // pair sequence.
    const double log1mp = std::log1p(-std::min(p, 1.0 - 1e-12));
    uint64_t total_pairs = static_cast<uint64_t>(n) * (n - 1) / 2;
    uint64_t idx = 0;
    while (true) {
      double u = rng.NextDouble();
      uint64_t skip =
          p >= 1.0 ? 0
                   : static_cast<uint64_t>(std::floor(std::log1p(-u) / log1mp));
      idx += skip;
      if (idx >= total_pairs) break;
      // Map linear pair index -> (row a, col b) of the upper triangle.
      uint64_t a = static_cast<uint64_t>(
          (2.0 * static_cast<double>(n) - 1.0 -
           std::sqrt((2.0 * n - 1.0) * (2.0 * n - 1.0) -
                     8.0 * static_cast<double>(idx))) /
          2.0);
      // Guard against floating point drift at block boundaries.
      auto row_start = [&](uint64_t r) {
        return r * (2 * n - r - 1) / 2;
      };
      while (a > 0 && row_start(a) > idx) --a;
      while (row_start(a + 1) <= idx) ++a;
      uint64_t b = a + 1 + (idx - row_start(a));
      Status st = g.AddEdge(static_cast<HostId>(a), static_cast<HostId>(b));
      VALIDITY_CHECK(st.ok(), "G(n,p) pair enumeration produced a bad edge");
      ++idx;
    }
  }
  StitchComponents(&g, &rng);
  return g;
}

StatusOr<Graph> MakePowerLaw(uint32_t n, double gamma, uint64_t seed) {
  if (n < 2) return Status::InvalidArgument("power-law graph needs >= 2 hosts");
  if (gamma <= 1.0) {
    return Status::InvalidArgument("power-law exponent must exceed 1");
  }
  Rng rng(seed);
  // Natural cutoff n^(1/(gamma-1)) keeps the expected maximum degree scale
  // correct for a finite network.
  uint32_t d_max = std::max<uint32_t>(
      2, static_cast<uint32_t>(
             std::pow(static_cast<double>(n), 1.0 / (gamma - 1.0))));
  d_max = std::min(d_max, n - 1);
  // CDF of P(d) ~ d^-gamma over [1, d_max].
  std::vector<double> cdf(d_max);
  double total = 0.0;
  for (uint32_t d = 1; d <= d_max; ++d) {
    total += std::pow(static_cast<double>(d), -gamma);
    cdf[d - 1] = total;
  }
  for (double& c : cdf) c /= total;
  cdf.back() = 1.0;

  std::vector<uint32_t> degree(n);
  uint64_t stub_count = 0;
  for (uint32_t i = 0; i < n; ++i) {
    double u = rng.NextDouble();
    uint32_t d = static_cast<uint32_t>(
                     std::upper_bound(cdf.begin(), cdf.end(), u) - cdf.begin()) +
                 1;
    degree[i] = d;
    stub_count += d;
  }
  if (stub_count % 2 == 1) {
    ++degree[rng.NextBelow(n)];
    ++stub_count;
  }
  std::vector<HostId> stubs;
  stubs.reserve(stub_count);
  for (HostId i = 0; i < n; ++i) {
    for (uint32_t k = 0; k < degree[i]; ++k) stubs.push_back(i);
  }
  rng.Shuffle(&stubs);
  Graph g(n);
  for (size_t i = 0; i + 1 < stubs.size(); i += 2) {
    // Configuration model simplification: self-loops and duplicate pairings
    // are silently discarded.
    (void)g.AddEdge(stubs[i], stubs[i + 1]);
  }
  StitchComponents(&g, &rng);
  return g;
}

StatusOr<Graph> MakeBarabasiAlbert(uint32_t n, uint32_t m, uint64_t seed) {
  if (m == 0) return Status::InvalidArgument("attachment count must be >= 1");
  if (n < m + 1) {
    return Status::InvalidArgument("need at least m+1 hosts");
  }
  Rng rng(seed);
  Graph g(n);
  // Seed clique on the first m+1 hosts.
  for (HostId a = 0; a <= m; ++a) {
    for (HostId b = a + 1; b <= m; ++b) {
      VALIDITY_CHECK(g.AddEdge(a, b).ok());
    }
  }
  // Endpoint multiset: each host appears once per incident edge, so a
  // uniform draw implements preferential attachment.
  std::vector<HostId> endpoints;
  endpoints.reserve(2 * static_cast<size_t>(n) * m);
  for (HostId a = 0; a <= m; ++a) {
    for (HostId b = a + 1; b <= m; ++b) {
      endpoints.push_back(a);
      endpoints.push_back(b);
    }
  }
  for (HostId v = m + 1; v < n; ++v) {
    uint32_t added = 0;
    uint32_t attempts = 0;
    while (added < m && attempts < 64 * m) {
      ++attempts;
      HostId target = endpoints[rng.NextBelow(endpoints.size())];
      if (g.AddEdge(v, target).ok()) {
        endpoints.push_back(v);
        endpoints.push_back(target);
        ++added;
      }
    }
    VALIDITY_CHECK(added > 0, "BA attachment starved");
  }
  return g;
}

StatusOr<Graph> MakeGrid(uint32_t side) {
  if (side == 0) return Status::InvalidArgument("empty grid");
  uint64_t n64 = static_cast<uint64_t>(side) * side;
  if (n64 > UINT32_MAX) return Status::InvalidArgument("grid too large");
  Graph g(static_cast<uint32_t>(n64));
  auto id = [side](uint32_t r, uint32_t c) {
    return static_cast<HostId>(r * side + c);
  };
  for (uint32_t r = 0; r < side; ++r) {
    for (uint32_t c = 0; c < side; ++c) {
      // Moore neighborhood, adding each undirected edge once: E, SW, S, SE.
      if (c + 1 < side) VALIDITY_CHECK(g.AddEdge(id(r, c), id(r, c + 1)).ok());
      if (r + 1 < side) {
        if (c > 0) VALIDITY_CHECK(g.AddEdge(id(r, c), id(r + 1, c - 1)).ok());
        VALIDITY_CHECK(g.AddEdge(id(r, c), id(r + 1, c)).ok());
        if (c + 1 < side) {
          VALIDITY_CHECK(g.AddEdge(id(r, c), id(r + 1, c + 1)).ok());
        }
      }
    }
  }
  return g;
}

StatusOr<Graph> MakeGnutellaLike(uint32_t n, uint64_t seed) {
  if (n < 8) return Status::InvalidArgument("gnutella-like needs >= 8 hosts");
  Rng rng(seed);
  Graph g(n);
  // Small seed ring so early hosts are not all mutually adjacent.
  constexpr HostId kSeedHosts = 6;
  for (HostId a = 0; a < kSeedHosts; ++a) {
    VALIDITY_CHECK(g.AddEdge(a, (a + 1) % kSeedHosts).ok());
  }
  std::vector<HostId> endpoints;
  endpoints.reserve(4 * static_cast<size_t>(n));
  for (HostId a = 0; a < kSeedHosts; ++a) {
    endpoints.push_back(a);
    endpoints.push_back((a + 1) % kSeedHosts);
  }
  for (HostId v = kSeedHosts; v < n; ++v) {
    uint32_t fanout = std::min<uint32_t>(GnutellaFanout(&rng), v);
    uint32_t added = 0;
    uint32_t attempts = 0;
    while (added < fanout && attempts < 64 * fanout) {
      ++attempts;
      // 85% preferential attachment (hubs / ultrapeer-like core), 15%
      // uniform (fresh peers bootstrap off random host caches).
      HostId target = rng.Bernoulli(0.85)
                          ? endpoints[rng.NextBelow(endpoints.size())]
                          : static_cast<HostId>(rng.NextBelow(v));
      if (g.AddEdge(v, target).ok()) {
        endpoints.push_back(v);
        endpoints.push_back(target);
        ++added;
      }
    }
    VALIDITY_CHECK(added > 0, "gnutella-like attachment starved");
  }
  StitchComponents(&g, &rng);
  return g;
}

StatusOr<Graph> MakeSmallWorld(uint32_t n, uint32_t k, double beta,
                               uint64_t seed) {
  if (k == 0 || k % 2 != 0) {
    return Status::InvalidArgument("small world needs even k >= 2");
  }
  if (n < k + 2) return Status::InvalidArgument("need n > k + 1 hosts");
  if (beta < 0.0 || beta > 1.0) {
    return Status::InvalidArgument("rewire probability must be in [0,1]");
  }
  Rng rng(seed);
  Graph g(n);
  // Ring lattice with rewiring: each clockwise edge (i, i+j) survives with
  // probability 1 - beta, otherwise i is re-linked to a uniform host.
  for (HostId i = 0; i < n; ++i) {
    for (uint32_t j = 1; j <= k / 2; ++j) {
      HostId lattice = static_cast<HostId>((i + j) % n);
      if (!rng.Bernoulli(beta)) {
        (void)g.AddEdge(i, lattice);  // duplicate after a rewire: skip
        continue;
      }
      for (int attempt = 0; attempt < 16; ++attempt) {
        HostId target = static_cast<HostId>(rng.NextBelow(n));
        if (target != i && g.AddEdge(i, target).ok()) break;
      }
    }
  }
  StitchComponents(&g, &rng);
  return g;
}

StatusOr<Graph> MakeChain(uint32_t n) {
  if (n == 0) return Status::InvalidArgument("empty chain");
  Graph g(n);
  for (HostId i = 0; i + 1 < n; ++i) {
    VALIDITY_CHECK(g.AddEdge(i, i + 1).ok());
  }
  return g;
}

StatusOr<Graph> MakeCycle(uint32_t n) {
  if (n < 3) return Status::InvalidArgument("cycle needs >= 3 hosts");
  Graph g(n);
  for (HostId i = 0; i < n; ++i) {
    VALIDITY_CHECK(g.AddEdge(i, (i + 1) % n).ok());
  }
  return g;
}

StatusOr<Graph> MakeStar(uint32_t n) {
  if (n < 2) return Status::InvalidArgument("star needs >= 2 hosts");
  Graph g(n);
  for (HostId i = 1; i < n; ++i) {
    VALIDITY_CHECK(g.AddEdge(0, i).ok());
  }
  return g;
}

StatusOr<Graph> MakeTheorem44Instance(uint32_t n) {
  if (n < 1) return Status::InvalidArgument("need n >= 1");
  uint32_t cycle = 2 * n + 2;
  Graph g(cycle + 1);
  for (HostId i = 0; i < cycle; ++i) {
    VALIDITY_CHECK(g.AddEdge(i, (i + 1) % cycle).ok());
  }
  VALIDITY_CHECK(g.AddEdge(cycle, n + 1).ok());  // tail host h_{2n+2}
  return g;
}

}  // namespace validity::topology
