// Graph algorithms used across the library: BFS, connected components,
// diameter estimation, degree statistics, and filtered reachability (the
// ORACLE building block for stable-path computation).

#ifndef VALIDITY_TOPOLOGY_ALGORITHMS_H_
#define VALIDITY_TOPOLOGY_ALGORITHMS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "topology/graph.h"

namespace validity::topology {

/// Hop distances from `src`; kUnreachable for hosts with no path.
inline constexpr int32_t kUnreachable = -1;
std::vector<int32_t> BfsDistances(const Graph& g, HostId src);

/// Hop distances from `src` restricted to hosts for which `alive(h)` is
/// true (edges incident to a non-alive host are ignored). If `alive(src)`
/// is false every host is unreachable.
std::vector<int32_t> BfsDistancesFiltered(
    const Graph& g, HostId src, const std::function<bool(HostId)>& alive);

/// Component id per host (components numbered from 0 in discovery order)
/// plus the number of components.
struct Components {
  std::vector<uint32_t> component_of;
  uint32_t count = 0;
  /// Hosts per component.
  std::vector<uint32_t> sizes;
  /// Index of the largest component.
  uint32_t largest = 0;
};
Components ConnectedComponents(const Graph& g);

/// Eccentricity of `src` (max finite BFS distance). Hosts unreachable from
/// `src` are ignored; returns 0 for an isolated host.
uint32_t Eccentricity(const Graph& g, HostId src);

/// Exact diameter via all-pairs BFS. O(|H| * |E|): intended for graphs up to
/// a few thousand hosts (tests, small experiments).
uint32_t ExactDiameter(const Graph& g);

/// Diameter lower bound by the double-sweep heuristic repeated from
/// `sweeps` random seeds. On the topologies used here the bound is tight or
/// within 1-2 hops of the true diameter, which matches how the paper treats
/// D: as a quantity that is only ever overestimated (D-hat).
uint32_t EstimateDiameter(const Graph& g, int sweeps, Rng* rng);

/// Degree distribution summary.
struct DegreeStats {
  double average = 0.0;
  uint32_t min = 0;
  uint32_t max = 0;
  Histogram histogram;
};
DegreeStats ComputeDegreeStats(const Graph& g);

/// Fits the tail exponent gamma of a power-law degree distribution by the
/// discrete maximum-likelihood estimator (Clauset et al.) over degrees
/// >= d_min. Returns 0 if fewer than 10 hosts qualify.
double EstimatePowerLawExponent(const Graph& g, uint32_t d_min);

}  // namespace validity::topology

#endif  // VALIDITY_TOPOLOGY_ALGORITHMS_H_
