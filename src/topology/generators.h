// Topology generators for the paper's four evaluation networks (§6.1) plus
// regular/adversarial shapes used by proofs and tests.
//
// Evaluation topologies:
//   (A) Gnutella  — real-life crawl in the paper (|H| = 39,046; the DSS
//                   Clip2 dataset is not publicly archived). Substituted by
//                   MakeGnutellaLike: a preferential-attachment overlay
//                   matching the published 2001 crawl measurements (heavy
//                   tailed degrees, avg degree ~3.4, diameter ~12).
//   (B) Random    — G(n, p) with average degree 5.
//   (C) Power-law — configuration model with exponent gamma = 2.9.
//   (D) Grid      — sqrt(n) x sqrt(n) sensor field; neighbors are the hosts
//                   in the enclosing 2-unit square (Moore 8-neighborhood).
//
// All generators return connected graphs (components are stitched to the
// giant component with single random edges, a negligible perturbation that
// the tests quantify) and are deterministic in (parameters, seed).

#ifndef VALIDITY_TOPOLOGY_GENERATORS_H_
#define VALIDITY_TOPOLOGY_GENERATORS_H_

#include <cstdint>

#include "common/rng.h"
#include "common/status.h"
#include "topology/graph.h"

namespace validity::topology {

/// Erdős–Rényi G(n, p) with p chosen so the expected average degree is
/// `avg_degree`; stitched to be connected.
StatusOr<Graph> MakeRandom(uint32_t n, double avg_degree, uint64_t seed);

/// Configuration-model graph whose degree distribution has a power-law tail
/// with exponent `gamma` (paper uses 2.9). Self-loops and multi-edges from
/// the stub pairing are dropped; the result is stitched to be connected.
StatusOr<Graph> MakePowerLaw(uint32_t n, double gamma, uint64_t seed);

/// Barabási–Albert preferential attachment, `m` edges per arriving host.
StatusOr<Graph> MakeBarabasiAlbert(uint32_t n, uint32_t m, uint64_t seed);

/// side x side sensor grid; each host is adjacent to every host in the
/// enclosing 2-unit square (up to 8 neighbors).
StatusOr<Graph> MakeGrid(uint32_t side);

/// Synthetic stand-in for the paper's Gnutella crawl: preferential
/// attachment with a mixed out-degree (many 1-2 link leaves, a heavy-tailed
/// hub core) plus a sprinkle of random "rewire" edges, reproducing the
/// published avg degree ~3.4 and diameter ~12 at n = 39,046.
StatusOr<Graph> MakeGnutellaLike(uint32_t n, uint64_t seed);

/// Watts–Strogatz small world: a ring lattice where every host links to its
/// k nearest ring neighbors (k even), each edge rewired to a random
/// endpoint with probability beta. The paper leans on the small-world
/// property of information networks (§3.2) for its "D grows extremely
/// slowly with |H|" assumption; this generator lets experiments dial the
/// lattice-to-expander spectrum explicitly.
StatusOr<Graph> MakeSmallWorld(uint32_t n, uint32_t k, double beta,
                               uint64_t seed);

/// Path h0 - h1 - ... - h(n-1).
StatusOr<Graph> MakeChain(uint32_t n);

/// Cycle of n hosts.
StatusOr<Graph> MakeCycle(uint32_t n);

/// Star: host 0 adjacent to all others.
StatusOr<Graph> MakeStar(uint32_t n);

/// The Theorem 4.4 counterexample: a cycle of 2n+2 hosts (h0..h(2n+1)) with
/// an extra host h(2n+2) attached to h(n+1). SPANNINGTREE from h0 loses half
/// of HC when h1 fails after Broadcast.
StatusOr<Graph> MakeTheorem44Instance(uint32_t n);

/// The number of hosts used by the paper's Gnutella crawl.
inline constexpr uint32_t kGnutellaCrawlSize = 39046;

}  // namespace validity::topology

#endif  // VALIDITY_TOPOLOGY_GENERATORS_H_
