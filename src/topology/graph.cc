#include "topology/graph.h"

#include <algorithm>

namespace validity::topology {

Graph::Graph(uint32_t num_hosts) : adj_(num_hosts) {}

Status Graph::AddEdge(HostId a, HostId b) {
  if (a >= adj_.size() || b >= adj_.size()) {
    return Status::OutOfRange("edge endpoint out of range");
  }
  if (a == b) return Status::InvalidArgument("self-loop rejected");
  if (HasEdge(a, b)) return Status::InvalidArgument("duplicate edge rejected");
  adj_[a].push_back(b);
  adj_[b].push_back(a);
  ++num_edges_;
  return Status::Ok();
}

bool Graph::HasEdge(HostId a, HostId b) const {
  if (a >= adj_.size() || b >= adj_.size()) return false;
  // Scan the smaller adjacency list.
  const auto& list = adj_[a].size() <= adj_[b].size() ? adj_[a] : adj_[b];
  HostId needle = adj_[a].size() <= adj_[b].size() ? b : a;
  return std::find(list.begin(), list.end(), needle) != list.end();
}

double Graph::AverageDegree() const {
  if (adj_.empty()) return 0.0;
  return 2.0 * static_cast<double>(num_edges_) /
         static_cast<double>(adj_.size());
}

uint32_t Graph::MaxDegree() const {
  uint32_t max_deg = 0;
  for (const auto& list : adj_) {
    max_deg = std::max(max_deg, static_cast<uint32_t>(list.size()));
  }
  return max_deg;
}

Status Graph::Validate() const {
  uint64_t directed = 0;
  for (HostId a = 0; a < adj_.size(); ++a) {
    for (HostId b : adj_[a]) {
      if (b >= adj_.size()) return Status::Internal("neighbor out of range");
      if (b == a) return Status::Internal("self-loop present");
      const auto& back = adj_[b];
      if (std::find(back.begin(), back.end(), a) == back.end()) {
        return Status::Internal("asymmetric adjacency");
      }
      ++directed;
    }
    std::vector<HostId> sorted(adj_[a].begin(), adj_[a].end());
    std::sort(sorted.begin(), sorted.end());
    if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
      return Status::Internal("duplicate edge present");
    }
  }
  if (directed != 2 * num_edges_) {
    return Status::Internal("edge count inconsistent with adjacency");
  }
  return Status::Ok();
}

}  // namespace validity::topology
