#include "topology/edge_list_io.h"

#include <fstream>
#include <sstream>

namespace validity::topology {

Status SaveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::Unavailable("cannot open " + path + " for write");
  out << "# validity edge list\n";
  out << g.num_hosts() << ' ' << g.num_edges() << '\n';
  for (HostId a = 0; a < g.num_hosts(); ++a) {
    for (HostId b : g.Neighbors(a)) {
      if (a < b) out << a << ' ' << b << '\n';
    }
  }
  out.flush();
  if (!out) return Status::Unavailable("write to " + path + " failed");
  return Status::Ok();
}

StatusOr<Graph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::string line;
  uint64_t num_hosts = 0;
  uint64_t num_edges = 0;
  bool header_seen = false;
  Graph g(0);
  uint64_t edges_read = 0;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    if (!header_seen) {
      if (!(ss >> num_hosts >> num_edges) || num_hosts > UINT32_MAX) {
        return Status::InvalidArgument("bad header in " + path);
      }
      g = Graph(static_cast<uint32_t>(num_hosts));
      header_seen = true;
      continue;
    }
    uint64_t a = 0;
    uint64_t b = 0;
    if (!(ss >> a >> b)) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": malformed edge line");
    }
    if (a >= num_hosts || b >= num_hosts) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": endpoint out of range");
    }
    Status st = g.AddEdge(static_cast<HostId>(a), static_cast<HostId>(b));
    if (!st.ok()) {
      return Status::InvalidArgument(path + ":" + std::to_string(line_no) +
                                     ": " + st.ToString());
    }
    ++edges_read;
  }
  if (!header_seen) return Status::InvalidArgument("empty edge list " + path);
  if (edges_read != num_edges) {
    return Status::InvalidArgument("edge count mismatch in " + path);
  }
  VALIDITY_RETURN_IF_ERROR(g.Validate());
  return g;
}

}  // namespace validity::topology
