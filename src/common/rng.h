// Deterministic pseudo-random number generation.
//
// All stochastic behaviour in the library (topology construction, attribute
// values, churn schedules, sketch coin flips, sampling) flows through Rng
// instances that are explicitly seeded and explicitly threaded through the
// code. Two runs with equal seeds produce bit-identical results, which the
// simulator relies on for replayable experiments.
//
// The engine is xoshiro256**, seeded via splitmix64 (the construction
// recommended by the xoshiro authors).
//
// "Flows through" is enforced statically: the determinism lint
// (tools/lint/lint_determinism.py, rule banned-randomness) rejects
// std::rand, std::random_device, wall-clock reads, and un-seeded <random>
// engines anywhere in src/, and tools/check_banned_symbols.py verifies the
// built library references no libc entropy/time symbols. See
// docs/DETERMINISM.md.

#ifndef VALIDITY_COMMON_RNG_H_
#define VALIDITY_COMMON_RNG_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/logging.h"

namespace validity {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
uint64_t SplitMix64(uint64_t* state);

/// Stateless 64-bit mix of a value (finalizer of splitmix64). Useful as a
/// deterministic hash for sketch mapping functions.
uint64_t Mix64(uint64_t x);

/// Deterministic xoshiro256** random generator.
///
/// Satisfies UniformRandomBitGenerator, so it can also be handed to
/// <random> distributions where convenient.
class Rng {
 public:
  using result_type = uint64_t;

  /// Constructs a generator from a 64-bit seed. Any seed (including 0) is
  /// valid; the internal state is expanded with splitmix64.
  explicit Rng(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<uint64_t>::max();
  }

  /// Next raw 64 bits.
  uint64_t Next();
  result_type operator()() { return Next(); }

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, n), n > 0. Unbiased (Lemire rejection).
  uint64_t NextBelow(uint64_t n);

  /// Uniform integer in [lo, hi], inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Number of fair-coin tails before the first head: P(k) = 2^-(k+1).
  ///
  /// This is the Flajolet–Martin bit index distribution (paper §5.2: half
  /// the hosts draw 0, a quarter 1, an eighth 2, ...). Bounded by 63.
  int GeometricBitIndex();

  /// Derives an independent child generator; `stream` distinguishes children
  /// of the same parent deterministically.
  Rng Fork(uint64_t stream);

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(NextBelow(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// k distinct values drawn uniformly from [0, n). Requires k <= n.
  /// Deterministic given the generator state; O(n) when k is a large
  /// fraction of n, O(k) expected otherwise.
  std::vector<uint32_t> SampleWithoutReplacement(uint32_t n, uint32_t k);

 private:
  uint64_t s_[4];
};

}  // namespace validity

#endif  // VALIDITY_COMMON_RNG_H_
