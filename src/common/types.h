// Shared vocabulary types.

#ifndef VALIDITY_COMMON_TYPES_H_
#define VALIDITY_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace validity {

/// Dense host identifier: hosts of an n-host network are numbered [0, n).
using HostId = uint32_t;

/// Sentinel for "no host".
inline constexpr HostId kInvalidHost = std::numeric_limits<HostId>::max();

/// Simulated time. The universal per-hop message delay delta (paper §3.1)
/// defaults to 1.0, so times are usually small integers ("ticks").
using SimTime = double;

}  // namespace validity

#endif  // VALIDITY_COMMON_TYPES_H_
