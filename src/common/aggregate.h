// Aggregate query vocabulary shared by every layer.
//
// The paper's query class (§1, §5): minimum, maximum, count, sum, average.

#ifndef VALIDITY_COMMON_AGGREGATE_H_
#define VALIDITY_COMMON_AGGREGATE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace validity {

enum class AggregateKind : uint8_t { kMin, kMax, kCount, kSum, kAverage };

/// Stable display name ("min", "max", "count", "sum", "avg").
const char* AggregateKindName(AggregateKind kind);

/// Exact value of the aggregate over the hosts listed in `members`, using
/// `values[h]` as host h's attribute value. `count` ignores values. Returns
/// 0 for an empty member set (avg of the empty set is defined as 0 here;
/// callers that care distinguish the empty case themselves).
double ExactAggregate(AggregateKind kind, const std::vector<double>& values,
                      const std::vector<HostId>& members);

/// ExactAggregate over the member set {0, ..., num_hosts - 1} without
/// materializing it (the ground-truth pass over a whole network).
double ExactAggregateOverAll(AggregateKind kind,
                             const std::vector<double>& values,
                             uint32_t num_hosts);

/// True for aggregates where combining duplicate contributions changes the
/// result (count/sum/avg); min/max are naturally duplicate-insensitive.
bool IsDuplicateSensitive(AggregateKind kind);

}  // namespace validity

#endif  // VALIDITY_COMMON_AGGREGATE_H_
