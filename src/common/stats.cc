#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace validity {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::ci95_half_width() const {
  if (count_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(count_));
}

MeanCi Summarize(const std::vector<double>& xs) {
  RunningStat rs;
  for (double x : xs) rs.Add(x);
  return MeanCi{rs.mean(), rs.ci95_half_width(), rs.count()};
}

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  p = std::clamp(p, 0.0, 100.0);
  double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  size_t lo = static_cast<size_t>(rank);
  size_t hi = std::min(lo + 1, xs.size() - 1);
  double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

}  // namespace validity
