#include "common/rng.h"

#include <algorithm>
#include <bit>
#include <unordered_set>

namespace validity {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t x) {
  uint64_t s = x;
  return SplitMix64(&s);
}

namespace {

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(&sm);
  // All-zero state is unreachable from splitmix64 expansion of any seed, but
  // guard anyway: xoshiro256** must not start at zero.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 0x9e3779b97f4a7c15ULL;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> [0,1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

uint64_t Rng::NextBelow(uint64_t n) {
  VALIDITY_DCHECK(n > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = Next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
  uint64_t l = static_cast<uint64_t>(m);
  if (l < n) {
    uint64_t t = -n % n;
    while (l < t) {
      x = Next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(n);
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  VALIDITY_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

int Rng::GeometricBitIndex() {
  uint64_t x = Next();
  if (x == 0) return 63;
  return std::countr_zero(x);
}

Rng Rng::Fork(uint64_t stream) {
  // Mix the parent's next output with the stream id so that distinct streams
  // (and successive forks) are decorrelated.
  return Rng(Mix64(Next() ^ Mix64(stream ^ 0xd1b54a32d192ed03ULL)));
}

std::vector<uint32_t> Rng::SampleWithoutReplacement(uint32_t n, uint32_t k) {
  VALIDITY_CHECK(k <= n, "cannot sample %u from %u", k, n);
  std::vector<uint32_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3 >= n) {
    // Dense case: partial Fisher–Yates over the full index range.
    std::vector<uint32_t> idx(n);
    for (uint32_t i = 0; i < n; ++i) idx[i] = i;
    for (uint32_t i = 0; i < k; ++i) {
      uint32_t j = i + static_cast<uint32_t>(NextBelow(n - i));
      std::swap(idx[i], idx[j]);
      out.push_back(idx[i]);
    }
    return out;
  }
  // Sparse case: rejection sampling into a set. The set answers
  // membership queries only; output order comes from the draw sequence.
  // NOLINT-DETERMINISM(unordered-container): lookup-only rejection set;
  // iteration order is never observed.
  std::unordered_set<uint32_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    uint32_t candidate = static_cast<uint32_t>(NextBelow(n));
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

}  // namespace validity
