// Status and StatusOr: lightweight error propagation for fallible public APIs.
//
// The library does not throw exceptions on its hot paths; operations that can
// fail for reasons a caller should handle (bad configuration, missing host,
// disconnected topology, ...) return Status / StatusOr<T>. Programming errors
// are caught by VALIDITY_CHECK (see logging.h) instead.

#ifndef VALIDITY_COMMON_STATUS_H_
#define VALIDITY_COMMON_STATUS_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

#include "common/logging.h"

namespace validity {

/// Canonical error space, modeled on the small subset of codes this library
/// actually needs.
enum class StatusCode : uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kFailedPrecondition = 3,
  kOutOfRange = 4,
  kUnavailable = 5,
  kInternal = 6,
};

/// Returns a stable, human-readable name for a status code ("Ok",
/// "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A success-or-error result. Cheap to copy in the success case.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "Ok" or "InvalidArgument: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Either a value of type T or an error Status. Dereferencing a non-OK
/// StatusOr is a fatal programming error.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (success).
  StatusOr(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  StatusOr(Status status) : rep_(std::move(status)) {  // NOLINT
    VALIDITY_CHECK(!std::get<Status>(rep_).ok(),
                   "StatusOr may not hold an OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// Returns the error (Ok if a value is held).
  Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(rep_);
  }

  const T& value() const& {
    VALIDITY_CHECK(ok(), "value() called on error StatusOr: %s",
                   std::get<Status>(rep_).ToString().c_str());
    return std::get<T>(rep_);
  }
  T& value() & {
    VALIDITY_CHECK(ok(), "value() called on error StatusOr: %s",
                   std::get<Status>(rep_).ToString().c_str());
    return std::get<T>(rep_);
  }
  T&& value() && {
    VALIDITY_CHECK(ok(), "value() called on error StatusOr: %s",
                   std::get<Status>(rep_).ToString().c_str());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<T, Status> rep_;
};

/// Propagates a non-OK status to the caller.
#define VALIDITY_RETURN_IF_ERROR(expr)               \
  do {                                               \
    ::validity::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                       \
  } while (0)

}  // namespace validity

#endif  // VALIDITY_COMMON_STATUS_H_
