#include "common/status.h"

namespace validity {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace validity
