// Minimal command-line flag parsing for bench and example binaries.
//
// Flags take the form --name=value (or --name value). Unknown flags are an
// error; --help prints registered flags with defaults and exits.

#ifndef VALIDITY_COMMON_FLAGS_H_
#define VALIDITY_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"

namespace validity {

class FlagSet {
 public:
  /// Registers a flag with its default value and help text. Registering the
  /// same name twice is a programming error.
  void DefineInt(const std::string& name, int64_t def, const std::string& help);
  void DefineDouble(const std::string& name, double def,
                    const std::string& help);
  void DefineBool(const std::string& name, bool def, const std::string& help);
  void DefineString(const std::string& name, const std::string& def,
                    const std::string& help);

  /// Parses argv. On "--help", prints usage to stdout and returns a status
  /// with code kUnavailable so the caller can exit(0).
  Status Parse(int argc, char** argv);

  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;

  void PrintHelp(const std::string& program) const;

 private:
  enum class Kind { kInt, kDouble, kBool, kString };
  struct Flag {
    Kind kind;
    std::string help;
    std::string value;  // canonical textual value
  };

  Status SetFromText(const std::string& name, const std::string& text);
  const Flag& Lookup(const std::string& name, Kind kind) const;

  std::map<std::string, Flag> flags_;
};

/// Parses flags and exits the process on error or --help. Convenience used
/// by every bench/example main().
void ParseFlagsOrDie(FlagSet* flags, int argc, char** argv);

}  // namespace validity

#endif  // VALIDITY_COMMON_FLAGS_H_
