#include "common/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/logging.h"

namespace validity {

std::string FormatDouble(double value, int precision) {
  char buf[64];
  if (std::isnan(value)) return "nan";
  // Integral values up to 2^53 print without a decimal point for readability.
  if (std::fabs(value) < 9.0e15 && value == std::floor(value) &&
      std::fabs(value) >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  }
  return buf;
}

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  VALIDITY_CHECK(!header_.empty());
}

TablePrinter& TablePrinter::NewRow() {
  rows_.emplace_back();
  rows_.back().reserve(header_.size());
  return *this;
}

TablePrinter& TablePrinter::Cell(const std::string& value) {
  VALIDITY_CHECK(!rows_.empty(), "Cell() before NewRow()");
  rows_.back().push_back(value);
  return *this;
}

TablePrinter& TablePrinter::Cell(const char* value) {
  return Cell(std::string(value));
}
TablePrinter& TablePrinter::Cell(int64_t value) {
  return Cell(std::to_string(value));
}
TablePrinter& TablePrinter::Cell(uint64_t value) {
  return Cell(std::to_string(value));
}
TablePrinter& TablePrinter::Cell(int value) {
  return Cell(std::to_string(value));
}
TablePrinter& TablePrinter::Cell(double value, int precision) {
  return Cell(FormatDouble(value, precision));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << cell;
      if (c + 1 < widths.size()) {
        os << std::string(widths[c] - cell.size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(header_);
  size_t rule = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(rule, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << ',';
      os << cells[c];
    }
    os << '\n';
  };
  print_row(header_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace validity
