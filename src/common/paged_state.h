// Lazily-paged per-host state.
//
// Used by every protocol for its per-host records and by the simulator for
// its reverse neighbor-slot index. Every protocol keeps one state record
// per host. Allocating that eagerly
// (states_.assign(num_hosts, {})) makes query cost proportional to the
// *network* size, not the *touched* size — the blocker for million-host
// scenarios where a query's broadcast disc covers a few percent of the
// graph. PagedStates allocates fixed-size pages on first touch instead: a
// query that activates 1% of a 10M-host graph pays (roughly) for 1%.
//
// Records on an allocated page are value-initialized, exactly like the
// elements of the eager vector they replace, and page storage is stable:
// references returned by Touch()/Find() survive later Touch() calls (the
// eager vector invalidated references on resize — a bug class this removes).
//
// Not thread-safe; one instance per owner per simulator thread.

#ifndef VALIDITY_COMMON_PAGED_STATE_H_
#define VALIDITY_COMMON_PAGED_STATE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"

namespace validity {

template <typename T>
class PagedStates {
 public:
  // 256-record pages: fine enough that a broadcast disc crossing many rows
  // of a row-major grid stays near-proportional to the disc, coarse enough
  // that the page directory for 10M hosts is a few hundred KB.
  static constexpr uint32_t kPageShift = 8;
  static constexpr uint32_t kPageSize = 1u << kPageShift;  // records per page

  /// Drops every page and re-arms the directory for `num_hosts` hosts.
  /// O(pages previously touched), not O(num_hosts).
  void Reset(uint32_t num_hosts) {
    pages_.clear();
    pages_.resize((static_cast<size_t>(num_hosts) + kPageSize - 1) >>
                  kPageShift);
    pages_touched_ = 0;
  }

  /// The record for host `h`, allocating (and value-initializing) its page
  /// on first touch. Hosts beyond the Reset() bound (runtime joins) grow the
  /// page directory transparently.
  T& Touch(HostId h) {
    size_t p = h >> kPageShift;
    if (p >= pages_.size()) pages_.resize(p + 1);
    if (pages_[p] == nullptr) {
      pages_[p].reset(new T[kPageSize]());
      ++pages_touched_;
    }
    return pages_[p][h & (kPageSize - 1)];
  }

  /// The record for host `h`, or nullptr if its page was never touched
  /// (equivalent to the eager vector's value-initialized default — callers
  /// treat "no page" as "default state").
  const T* Find(HostId h) const {
    size_t p = h >> kPageShift;
    if (p >= pages_.size() || pages_[p] == nullptr) return nullptr;
    return &pages_[p][h & (kPageSize - 1)];
  }
  T* Find(HostId h) {
    return const_cast<T*>(static_cast<const PagedStates*>(this)->Find(h));
  }

  /// Pages currently resident.
  uint32_t pages_touched() const { return pages_touched_; }
  /// Bytes of record storage currently resident (the paging win: compare
  /// against num_hosts * sizeof(T) for the eager layout).
  size_t ResidentBytes() const {
    return static_cast<size_t>(pages_touched_) * kPageSize * sizeof(T) +
           pages_.capacity() * sizeof(pages_[0]);
  }

 private:
  std::vector<std::unique_ptr<T[]>> pages_;
  uint32_t pages_touched_ = 0;
};

}  // namespace validity

#endif  // VALIDITY_COMMON_PAGED_STATE_H_
