// Lazily-paged per-host state with epoch-based O(1) reset.
//
// The backbone of the library's O(touched) memory model (see the
// memory-model section of docs/ARCHITECTURE.md): every protocol keeps its
// per-host records here, and the simulator uses it for its own per-host
// tables — liveness (failure/join times), metrics tallies, the reverse
// neighbor-slot index, and runtime-join overflow edges. Allocating any of
// those eagerly (states_.assign(num_hosts, {})) makes query cost
// proportional to the *network* size, not the *touched* size — the blocker
// for million-host scenarios where a query's broadcast disc covers a few
// percent of the graph. PagedStates allocates fixed-size pages on first
// touch instead: a query that activates 1% of a 10M-host graph pays
// (roughly) for 1%. Records whose value-initialized state is meaningful
// ("alive since 0, never failed", count 0) get their implicit default for
// free — Find() returning nullptr *is* the default.
//
// Reset() starts a new *epoch* rather than freeing pages: each page carries
// the epoch that last initialized it, so after a Reset every page reads as
// untouched (Find returns nullptr) and is re-value-initialized lazily on
// its first Touch of the new epoch. Untouched pages are therefore free to
// "reset", and a session running many queries over one graph recycles page
// storage instead of bouncing it through the allocator — the property the
// SimulatorSession inter-query reset (sim/session.h) is built on.
//
// Records on a live page are value-initialized, exactly like the elements
// of the eager vector they replace, and page storage is stable: references
// returned by Touch()/Find() survive later Touch() calls within an epoch
// (the eager vector invalidated references on resize — a bug class this
// removes). A reference from a previous epoch may observe its record being
// re-initialized; callers must not hold references across Reset().
//
// Not thread-safe; one instance per owner per simulator thread.

#ifndef VALIDITY_COMMON_PAGED_STATE_H_
#define VALIDITY_COMMON_PAGED_STATE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"

namespace validity {

template <typename T>
class PagedStates {
 public:
  // 256-record pages: fine enough that a broadcast disc crossing many rows
  // of a row-major grid stays near-proportional to the disc, coarse enough
  // that the page directory for 10M hosts is a few hundred KB.
  static constexpr uint32_t kPageShift = 8;
  static constexpr uint32_t kPageSize = 1u << kPageShift;  // records per page

  /// Re-arms the directory for `num_hosts` hosts and starts a new epoch:
  /// every record reads as freshly value-initialized again. O(1) beyond
  /// one-time directory growth — pages stay cached and are scrubbed lazily
  /// on their first Touch of the new epoch, so resetting costs nothing for
  /// pages the next query never visits.
  void Reset(uint32_t num_hosts) {
    size_t dir = (static_cast<size_t>(num_hosts) + kPageSize - 1) >>
                 kPageShift;
    if (pages_.size() < dir) pages_.resize(dir);
    ++epoch_;
    live_pages_ = 0;
  }

  /// The record for host `h`, allocating (or re-initializing) its page on
  /// first touch of the current epoch. Hosts beyond the Reset() bound
  /// (runtime joins) grow the page directory transparently.
  T& Touch(HostId h) {
    size_t p = h >> kPageShift;
    if (p >= pages_.size()) pages_.resize(p + 1);
    Page& page = pages_[p];
    if (page.epoch != epoch_) {
      if (page.records == nullptr) {
        page.records.reset(new T[kPageSize]());
      } else {
        // Cached from an earlier epoch: restore every record to its
        // value-initialized state (runs destructors of whatever the last
        // epoch left behind).
        for (uint32_t i = 0; i < kPageSize; ++i) page.records[i] = T();
      }
      page.epoch = epoch_;
      ++live_pages_;
    }
    return page.records[h & (kPageSize - 1)];
  }

  /// The record for host `h`, or nullptr if its page was never touched this
  /// epoch (equivalent to the eager vector's value-initialized default —
  /// callers treat "no page" as "default state").
  const T* Find(HostId h) const {
    size_t p = h >> kPageShift;
    if (p >= pages_.size()) return nullptr;
    const Page& page = pages_[p];
    if (page.epoch != epoch_) return nullptr;
    return &page.records[h & (kPageSize - 1)];
  }
  T* Find(HostId h) {
    return const_cast<T*>(static_cast<const PagedStates*>(this)->Find(h));
  }

  /// Pages resident in the current epoch (what this query touched).
  uint32_t pages_touched() const { return live_pages_; }
  /// Bytes of record storage live in the current epoch (the paging win:
  /// compare against num_hosts * sizeof(T) for the eager layout). Pages
  /// cached from earlier epochs are warm capacity, not resident query
  /// state, and are not counted.
  size_t ResidentBytes() const {
    return static_cast<size_t>(live_pages_) * kPageSize * sizeof(T) +
           pages_.capacity() * sizeof(Page);
  }

 private:
  struct Page {
    std::unique_ptr<T[]> records;  // null until first touched ever
    uint64_t epoch = 0;            // epoch that last initialized records
  };

  std::vector<Page> pages_;
  uint64_t epoch_ = 1;  // page.epoch == 0 is never current
  uint32_t live_pages_ = 0;
};

}  // namespace validity

#endif  // VALIDITY_COMMON_PAGED_STATE_H_
