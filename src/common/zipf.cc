#include "common/zipf.h"

#include <algorithm>
#include <cmath>

namespace validity {

StatusOr<ZipfGenerator> ZipfGenerator::Make(int64_t low, int64_t high,
                                            double theta) {
  if (low > high) {
    return Status::InvalidArgument("zipf range is empty (low > high)");
  }
  if (theta < 0.0 || !std::isfinite(theta)) {
    return Status::InvalidArgument("zipf exponent must be finite and >= 0");
  }
  size_t n = static_cast<size_t>(high - low + 1);
  std::vector<double> cdf(n);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf[i] = total;
  }
  for (double& c : cdf) c /= total;
  cdf.back() = 1.0;  // defend against rounding at the top end
  return ZipfGenerator(low, high, theta, std::move(cdf));
}

ZipfGenerator::ZipfGenerator(int64_t low, int64_t high, double theta,
                             std::vector<double> cdf)
    : low_(low), high_(high), theta_(theta), cdf_(std::move(cdf)) {}

int64_t ZipfGenerator::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return low_ + static_cast<int64_t>(it - cdf_.begin());
}

std::vector<int64_t> ZipfGenerator::SampleMany(Rng* rng, size_t n) const {
  std::vector<int64_t> out(n);
  for (auto& v : out) v = Sample(rng);
  return out;
}

double ZipfGenerator::Mean() const {
  double mean = 0.0;
  double prev = 0.0;
  for (size_t i = 0; i < cdf_.size(); ++i) {
    double p = cdf_[i] - prev;
    prev = cdf_[i];
    mean += p * static_cast<double>(low_ + static_cast<int64_t>(i));
  }
  return mean;
}

}  // namespace validity
