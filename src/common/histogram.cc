#include "common/histogram.h"

#include <bit>

#include "common/logging.h"

namespace validity {

void Histogram::Add(int64_t value, int64_t weight) {
  VALIDITY_DCHECK(weight >= 0);
  if (weight == 0) return;
  counts_[value] += weight;
  total_ += weight;
}

int64_t Histogram::CountAt(int64_t value) const {
  auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

int64_t Histogram::MaxValue() const {
  return counts_.empty() ? 0 : counts_.rbegin()->first;
}

double Histogram::Mean() const {
  if (total_ == 0) return 0.0;
  double weighted = 0.0;
  for (const auto& [value, count] : counts_) {
    weighted += static_cast<double>(value) * static_cast<double>(count);
  }
  return weighted / static_cast<double>(total_);
}

std::vector<std::pair<int64_t, int64_t>> Histogram::Items() const {
  return {counts_.begin(), counts_.end()};
}

std::vector<std::pair<int64_t, int64_t>> Histogram::Log2Buckets() const {
  // bucket index 0 holds value 0; bucket i>=1 holds values [2^(i-1), 2^i).
  std::vector<int64_t> buckets;
  for (const auto& [value, count] : counts_) {
    VALIDITY_DCHECK(value >= 0, "Log2Buckets requires non-negative values");
    size_t idx =
        value == 0
            ? 0
            : 1 + static_cast<size_t>(
                      std::bit_width(static_cast<uint64_t>(value)) - 1);
    if (buckets.size() <= idx) buckets.resize(idx + 1, 0);
    buckets[idx] += count;
  }
  std::vector<std::pair<int64_t, int64_t>> out;
  out.reserve(buckets.size());
  for (size_t i = 0; i < buckets.size(); ++i) {
    int64_t lower = i == 0 ? 0 : (int64_t{1} << (i - 1));
    out.emplace_back(lower, buckets[i]);
  }
  return out;
}

}  // namespace validity
