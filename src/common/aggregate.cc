#include "common/aggregate.h"

#include <algorithm>

#include "common/logging.h"

namespace validity {

const char* AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kMin:
      return "min";
    case AggregateKind::kMax:
      return "max";
    case AggregateKind::kCount:
      return "count";
    case AggregateKind::kSum:
      return "sum";
    case AggregateKind::kAverage:
      return "avg";
  }
  return "?";
}

double ExactAggregate(AggregateKind kind, const std::vector<double>& values,
                      const std::vector<HostId>& members) {
  if (members.empty()) return 0.0;
  switch (kind) {
    case AggregateKind::kCount:
      return static_cast<double>(members.size());
    case AggregateKind::kMin: {
      double best = values[members[0]];
      for (HostId h : members) best = std::min(best, values[h]);
      return best;
    }
    case AggregateKind::kMax: {
      double best = values[members[0]];
      for (HostId h : members) best = std::max(best, values[h]);
      return best;
    }
    case AggregateKind::kSum: {
      double total = 0.0;
      for (HostId h : members) total += values[h];
      return total;
    }
    case AggregateKind::kAverage: {
      double total = 0.0;
      for (HostId h : members) total += values[h];
      return total / static_cast<double>(members.size());
    }
  }
  VALIDITY_CHECK(false, "unknown aggregate kind");
  return 0.0;
}

double ExactAggregateOverAll(AggregateKind kind,
                             const std::vector<double>& values,
                             uint32_t num_hosts) {
  VALIDITY_CHECK(values.size() >= num_hosts, "values must cover all hosts");
  if (num_hosts == 0) return 0.0;
  switch (kind) {
    case AggregateKind::kCount:
      return static_cast<double>(num_hosts);
    case AggregateKind::kMin: {
      double best = values[0];
      for (HostId h = 1; h < num_hosts; ++h) best = std::min(best, values[h]);
      return best;
    }
    case AggregateKind::kMax: {
      double best = values[0];
      for (HostId h = 1; h < num_hosts; ++h) best = std::max(best, values[h]);
      return best;
    }
    case AggregateKind::kSum:
    case AggregateKind::kAverage: {
      double total = 0.0;
      for (HostId h = 0; h < num_hosts; ++h) total += values[h];
      return kind == AggregateKind::kSum
                 ? total
                 : total / static_cast<double>(num_hosts);
    }
  }
  VALIDITY_CHECK(false, "unknown aggregate kind");
  return 0.0;
}

bool IsDuplicateSensitive(AggregateKind kind) {
  return kind == AggregateKind::kCount || kind == AggregateKind::kSum ||
         kind == AggregateKind::kAverage;
}

}  // namespace validity
