// Zipfian value generator for host attribute values.
//
// The paper's workload (§6.1): "Each host possesses an attribute value that
// is drawn from a Zipfian distribution in the range [10, 500]". Rank r
// (1-based, mapped onto the integer range low..high) is drawn with
// probability proportional to 1 / r^theta.

#ifndef VALIDITY_COMMON_ZIPF_H_
#define VALIDITY_COMMON_ZIPF_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace validity {

/// Samples integers in [low(), high()] with Zipfian rank probabilities.
/// Sampling is O(log n) via binary search over the precomputed CDF; the
/// support of the paper's workload (491 values) makes the table trivial.
class ZipfGenerator {
 public:
  /// Creates a generator over the inclusive integer range [low, high] with
  /// exponent `theta` >= 0 (theta == 0 degenerates to uniform).
  static StatusOr<ZipfGenerator> Make(int64_t low, int64_t high, double theta);

  /// Draws one value.
  int64_t Sample(Rng* rng) const;

  /// Fills `n` values.
  std::vector<int64_t> SampleMany(Rng* rng, size_t n) const;

  int64_t low() const { return low_; }
  int64_t high() const { return high_; }
  double theta() const { return theta_; }

  /// Expected value of the distribution (exact, from the probability table).
  double Mean() const;

 private:
  ZipfGenerator(int64_t low, int64_t high, double theta,
                std::vector<double> cdf);

  int64_t low_;
  int64_t high_;
  double theta_;
  std::vector<double> cdf_;  // cdf_[i] = P(value <= low_ + i)
};

}  // namespace validity

#endif  // VALIDITY_COMMON_ZIPF_H_
