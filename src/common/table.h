// Aligned table and CSV emission for bench harnesses.
//
// Every bench binary prints (a) a human-readable aligned table mirroring the
// corresponding paper figure and (b) machine-readable CSV for replotting.

#ifndef VALIDITY_COMMON_TABLE_H_
#define VALIDITY_COMMON_TABLE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace validity {

/// Collects rows of stringified cells and prints them column-aligned.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Starts a new row.
  TablePrinter& NewRow();

  /// Appends one cell to the current row.
  TablePrinter& Cell(const std::string& value);
  TablePrinter& Cell(const char* value);
  TablePrinter& Cell(int64_t value);
  TablePrinter& Cell(uint64_t value);
  TablePrinter& Cell(int value);
  /// Doubles are rendered with `precision` significant decimal digits.
  TablePrinter& Cell(double value, int precision = 3);

  /// Prints the aligned table (header, rule, rows).
  void Print(std::ostream& os) const;

  /// Prints the same content as CSV (comma-separated, one header line).
  void PrintCsv(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with benches).
std::string FormatDouble(double value, int precision = 3);

}  // namespace validity

#endif  // VALIDITY_COMMON_TABLE_H_
