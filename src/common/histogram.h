// Exact integer histogram (value -> count).
//
// Used for the computation-cost distributions of Fig. 12: "number of hosts
// (Y) for each value of per-host computation cost (X)".

#ifndef VALIDITY_COMMON_HISTOGRAM_H_
#define VALIDITY_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <map>
#include <vector>

namespace validity {

class Histogram {
 public:
  /// Adds one observation of `value` (weight 1 by default).
  void Add(int64_t value, int64_t weight = 1);

  /// Total number of observations.
  int64_t total() const { return total_; }

  /// Count recorded for `value` (0 if never seen).
  int64_t CountAt(int64_t value) const;

  /// Largest observed value with non-zero count; 0 if empty.
  int64_t MaxValue() const;

  /// Mean of the observations.
  double Mean() const;

  /// Sorted (value, count) pairs.
  std::vector<std::pair<int64_t, int64_t>> Items() const;

  /// Collapses observations into power-of-two buckets
  /// ([1], [2,3], [4,7], ...); bucket i covers [2^i, 2^(i+1)).
  /// Value 0 lands in a dedicated leading bucket.
  std::vector<std::pair<int64_t, int64_t>> Log2Buckets() const;

  bool empty() const { return total_ == 0; }

 private:
  std::map<int64_t, int64_t> counts_;
  int64_t total_ = 0;
};

}  // namespace validity

#endif  // VALIDITY_COMMON_HISTOGRAM_H_
