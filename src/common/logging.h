// Assertion and logging macros.
//
// VALIDITY_CHECK is always on (programming-error guard, aborts with context);
// VALIDITY_DCHECK compiles out in NDEBUG builds and is used on hot paths.

#ifndef VALIDITY_COMMON_LOGGING_H_
#define VALIDITY_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace validity {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "[validity] CHECK failed at %s:%d: %s\n", file, line,
               expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace validity

/// Aborts with file/line context when `cond` is false. The optional printf
/// style message arguments are emitted before aborting.
#define VALIDITY_CHECK(cond, ...)                                        \
  do {                                                                   \
    if (!(cond)) {                                                       \
      std::fprintf(stderr, "[validity] CHECK failed at %s:%d: %s\n",     \
                   __FILE__, __LINE__, #cond);                           \
      ::validity::internal::LogCheckMessage("" __VA_ARGS__);             \
      std::fflush(stderr);                                               \
      std::abort();                                                      \
    }                                                                    \
  } while (0)

namespace validity {
namespace internal {

inline void LogCheckMessage() {}

template <typename... Args>
inline void LogCheckMessage(const char* fmt, Args... args) {
  if (fmt[0] == '\0') return;
#if defined(__GNUC__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wformat-security"
#endif
  std::fprintf(stderr, "[validity]   ");
  std::fprintf(stderr, fmt, args...);
  std::fprintf(stderr, "\n");
#if defined(__GNUC__)
#pragma GCC diagnostic pop
#endif
}

}  // namespace internal
}  // namespace validity

#ifdef NDEBUG
#define VALIDITY_DCHECK(cond, ...) \
  do {                             \
  } while (0)
#else
#define VALIDITY_DCHECK(cond, ...) VALIDITY_CHECK(cond, ##__VA_ARGS__)
#endif

#endif  // VALIDITY_COMMON_LOGGING_H_
