#include "common/flags.h"

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"

namespace validity {

namespace {

const char* KindName(int kind) {
  switch (kind) {
    case 0:
      return "int";
    case 1:
      return "double";
    case 2:
      return "bool";
    default:
      return "string";
  }
}

}  // namespace

void FlagSet::DefineInt(const std::string& name, int64_t def,
                        const std::string& help) {
  auto [it, inserted] =
      flags_.emplace(name, Flag{Kind::kInt, help, std::to_string(def)});
  VALIDITY_CHECK(inserted, "duplicate flag --%s", name.c_str());
  (void)it;
}

void FlagSet::DefineDouble(const std::string& name, double def,
                           const std::string& help) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", def);
  auto [it, inserted] = flags_.emplace(name, Flag{Kind::kDouble, help, buf});
  VALIDITY_CHECK(inserted, "duplicate flag --%s", name.c_str());
  (void)it;
}

void FlagSet::DefineBool(const std::string& name, bool def,
                         const std::string& help) {
  auto [it, inserted] =
      flags_.emplace(name, Flag{Kind::kBool, help, def ? "true" : "false"});
  VALIDITY_CHECK(inserted, "duplicate flag --%s", name.c_str());
  (void)it;
}

void FlagSet::DefineString(const std::string& name, const std::string& def,
                           const std::string& help) {
  auto [it, inserted] = flags_.emplace(name, Flag{Kind::kString, help, def});
  VALIDITY_CHECK(inserted, "duplicate flag --%s", name.c_str());
  (void)it;
}

Status FlagSet::SetFromText(const std::string& name, const std::string& text) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  Flag& flag = it->second;
  switch (flag.kind) {
    case Kind::kInt: {
      char* end = nullptr;
      errno = 0;
      long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno != 0 || end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("--" + name + " expects an integer, got '" +
                                       text + "'");
      }
      flag.value = std::to_string(v);
      return Status::Ok();
    }
    case Kind::kDouble: {
      char* end = nullptr;
      errno = 0;
      double v = std::strtod(text.c_str(), &end);
      if (errno != 0 || end == text.c_str() || *end != '\0') {
        return Status::InvalidArgument("--" + name + " expects a number, got '" +
                                       text + "'");
      }
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      flag.value = buf;
      return Status::Ok();
    }
    case Kind::kBool: {
      if (text == "true" || text == "1" || text.empty()) {
        flag.value = "true";
      } else if (text == "false" || text == "0") {
        flag.value = "false";
      } else {
        return Status::InvalidArgument("--" + name +
                                       " expects true/false, got '" + text +
                                       "'");
      }
      return Status::Ok();
    }
    case Kind::kString:
      flag.value = text;
      return Status::Ok();
  }
  return Status::Internal("unreachable");
}

Status FlagSet::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintHelp(argv[0]);
      return Status::Unavailable("help requested");
    }
    if (arg.rfind("--", 0) != 0) {
      return Status::InvalidArgument("unexpected positional argument '" + arg +
                                     "'");
    }
    std::string body = arg.substr(2);
    std::string name;
    std::string text;
    auto eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      text = body.substr(eq + 1);
    } else {
      name = body;
      auto it = flags_.find(name);
      bool is_bool = it != flags_.end() && it->second.kind == Kind::kBool;
      if (!is_bool) {
        if (i + 1 >= argc) {
          return Status::InvalidArgument("flag --" + name + " missing a value");
        }
        text = argv[++i];
      }
    }
    VALIDITY_RETURN_IF_ERROR(SetFromText(name, text));
  }
  return Status::Ok();
}

const FlagSet::Flag& FlagSet::Lookup(const std::string& name,
                                     Kind kind) const {
  auto it = flags_.find(name);
  VALIDITY_CHECK(it != flags_.end(), "flag --%s was never defined",
                 name.c_str());
  VALIDITY_CHECK(it->second.kind == kind, "flag --%s read with wrong type %s",
                 name.c_str(), KindName(static_cast<int>(kind)));
  return it->second;
}

int64_t FlagSet::GetInt(const std::string& name) const {
  return std::strtoll(Lookup(name, Kind::kInt).value.c_str(), nullptr, 10);
}

double FlagSet::GetDouble(const std::string& name) const {
  return std::strtod(Lookup(name, Kind::kDouble).value.c_str(), nullptr);
}

bool FlagSet::GetBool(const std::string& name) const {
  return Lookup(name, Kind::kBool).value == "true";
}

const std::string& FlagSet::GetString(const std::string& name) const {
  return Lookup(name, Kind::kString).value;
}

void FlagSet::PrintHelp(const std::string& program) const {
  std::printf("usage: %s [--flag=value ...]\n", program.c_str());
  for (const auto& [name, flag] : flags_) {
    std::printf("  --%-24s %s (%s, default: %s)\n", name.c_str(),
                flag.help.c_str(), KindName(static_cast<int>(flag.kind)),
                flag.value.c_str());
  }
}

void ParseFlagsOrDie(FlagSet* flags, int argc, char** argv) {
  Status st = flags->Parse(argc, argv);
  if (st.ok()) return;
  if (st.code() == StatusCode::kUnavailable) std::exit(0);  // --help
  std::fprintf(stderr, "%s\n", st.ToString().c_str());
  std::exit(2);
}

}  // namespace validity
