// Streaming statistics and confidence intervals for experiment reporting.

#ifndef VALIDITY_COMMON_STATS_H_
#define VALIDITY_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace validity {

/// Welford-style streaming mean/variance accumulator.
class RunningStat {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance (0 for fewer than two samples).
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

  /// Half-width of the 95% normal-approximation confidence interval
  /// (1.96 * s / sqrt(n)); 0 for fewer than two samples. The paper plots
  /// "average answers over 10 trials with a 95% confidence interval" —
  /// this is the matching interval.
  double ci95_half_width() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean and 95% CI of a sample, for table rows.
struct MeanCi {
  double mean = 0.0;
  double ci95 = 0.0;
  size_t n = 0;
};

/// Computes mean and 95% CI of `xs`.
MeanCi Summarize(const std::vector<double>& xs);

/// p-th percentile (p in [0,100]) by linear interpolation over a copy of
/// `xs`. Returns 0 for empty input.
double Percentile(std::vector<double> xs, double p);

}  // namespace validity

#endif  // VALIDITY_COMMON_STATS_H_
