#include "core/sweep.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace validity::core {

uint32_t HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

uint32_t ResolveThreads(uint32_t requested) {
  if (requested == 0) return std::min(HardwareThreads(), kMaxSweepThreads);
  return std::min(requested, kMaxSweepThreads);
}

void ParallelForWorker(
    size_t n, uint32_t threads,
    const std::function<void(uint32_t worker, size_t i)>& body) {
  if (n == 0) return;
  uint32_t workers = static_cast<uint32_t>(
      std::min<size_t>(ResolveThreads(threads), n));

  if (workers == 1) {
    for (size_t i = 0; i < n; ++i) body(0, i);
    return;
  }

  std::atomic<size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto work = [&](uint32_t worker) {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(worker, i);
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!first_error) first_error = std::current_exception();
        }
        // Fail fast: cancel indices nobody has claimed yet. In-flight
        // bodies on other workers still finish (join below), so the caller
        // never unwinds under a running body.
        next.store(n, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  try {
    for (uint32_t w = 1; w < workers; ++w) pool.emplace_back(work, w);
    work(0);  // The calling thread is worker 0.
  } catch (...) {
    // Thread spawn failed (e.g. process/thread limit): cancel unclaimed
    // indices, join whatever did start, and report the failure instead of
    // letting joinable-thread destructors call std::terminate.
    std::lock_guard<std::mutex> lock(error_mutex);
    if (!first_error) first_error = std::current_exception();
    next.store(n, std::memory_order_relaxed);
  }
  for (std::thread& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void ParallelFor(size_t n, uint32_t threads,
                 const std::function<void(size_t)>& body) {
  ParallelForWorker(n, threads, [&body](uint32_t, size_t i) { body(i); });
}

}  // namespace validity::core
