#include "core/query_service.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace validity::core {

ServiceOptions ServiceOptionsFor(const QuerySpec& spec,
                                 const RunConfig& config, HostId hq) {
  ServiceOptions options;
  options.sim_options = config.sim_options;
  options.max_events = config.sim_options.max_events;
  options.churn_removals = config.churn_removals;
  options.churn_start_frac = config.churn_start_frac;
  options.churn_end_frac = config.churn_end_frac;
  options.churn_seed = config.churn_seed;
  options.churn_d_hat = spec.d_hat;
  options.churn_hq = hq;
  options.fault = config.fault;
  return options;
}

QueryService::QueryService(const QueryEngine* engine,
                           const ServiceOptions& options)
    : engine_(engine),
      owned_session_(std::make_unique<sim::SimulatorSession>(
          engine->topology(), options.sim_options)),
      session_(owned_session_.get()),
      options_(options) {
  ArmTimeline();
}

QueryService::QueryService(const QueryEngine* engine,
                           sim::SimulatorSession* session,
                           const ServiceOptions& options)
    : engine_(engine), session_(session), options_(options) {
  VALIDITY_CHECK(session != nullptr);
  VALIDITY_CHECK(session->topology().SameAs(engine->topology()),
                 "service session must be built over the engine's topology");
  const sim::SimOptions& built = session->simulator().options();
  VALIDITY_CHECK(
      built.delta == options_.sim_options.delta &&
          built.medium == options_.sim_options.medium &&
          built.heartbeat_interval == options_.sim_options.heartbeat_interval,
      "service structural sim options must match the borrowed session's");
  session_->Reset();
  ArmTimeline();
}

QueryService::~QueryService() {
  // NOLINT-DETERMINISM(unordered-iteration): destructor teardown; each
  // running lane is detached independently and nothing observable
  // survives, so visit order cannot leak into results.
  for (auto& [id, q] : queries_) {
    if (q->phase == Phase::kRunning) DetachLane(q.get());
  }
  sim::Simulator& sim = session_->simulator();
  sim.AttachProgram(nullptr);
  sim.InstallFaults(nullptr);
}

void QueryService::ArmTimeline() {
  VALIDITY_CHECK(options_.max_in_flight >= 1,
                 "the service needs at least one lane");
  VALIDITY_CHECK(options_.churn_removals == 0 ||
                     options_.churn_hq < session_->simulator().num_hosts(),
                 "churn-protected host out of range");
  churn_d_hat_ = options_.churn_d_hat > 0.0
                     ? options_.churn_d_hat
                     : static_cast<double>(engine_->EstimatedDiameter()) +
                           kDefaultDiameterMargin;
  churn_end_time_ =
      options_.churn_removals > 0
          ? options_.churn_end_frac * 2.0 * churn_d_hat_ *
                options_.sim_options.delta
          : 0.0;

  sim::Simulator& sim = session_->simulator();
  // Always on: detect events are uncharged and ignored by protocols that do
  // not subscribe, so a lane whose solo run had detection off still matches
  // bit-for-bit — and lanes that need it (tree/DAG) can arrive at any time,
  // long after the churn events were scheduled.
  sim.set_failure_detection(true);
  sim.set_max_events(options_.max_events);
  if (internal::ShouldInstallLinkFaults(options_.fault)) {
    sim.InstallFaults(&options_.fault);
  }
  RunConfig churn_config;
  churn_config.churn_removals = options_.churn_removals;
  churn_config.churn_start_frac = options_.churn_start_frac;
  churn_config.churn_end_frac = options_.churn_end_frac;
  churn_config.churn_seed = options_.churn_seed;
  engine_->ScheduleConfiguredChurn(&sim, churn_config, churn_d_hat_,
                                   options_.churn_hq);
  sim.AttachProgram(&session_->mux());
}

SimTime QueryService::Now() const { return session_->simulator().Now(); }

StatusOr<QueryService::QueryId> QueryService::Submit(SimTime submit_time,
                                                     const QuerySpec& spec,
                                                     const RunConfig& config,
                                                     HostId hq) {
  if (Status s = engine_->CheckSession(*session_, config); !s.ok()) return s;
  if (!std::isfinite(submit_time) || submit_time < Now()) {
    return Status::InvalidArgument(
        "submit time must be finite and >= the timeline's current time");
  }
  QueryEngine::RunPlan plan;
  if (Status s = engine_->PlanRun(spec, config, hq, &plan); !s.ok()) return s;
  if (config.sim_options.max_events != 0 &&
      config.sim_options.max_events != options_.max_events) {
    return Status::InvalidArgument(
        "the service timeline owns the event budget; set "
        "ServiceOptions.max_events instead of a per-query one");
  }
  // One shared timeline: the same agreement RunConcurrent demands of a
  // batch, checked against the ServiceOptions the timeline was armed with.
  if (config.churn_removals != options_.churn_removals ||
      config.churn_seed != options_.churn_seed ||
      config.churn_start_frac != options_.churn_start_frac ||
      config.churn_end_frac != options_.churn_end_frac) {
    return Status::InvalidArgument(
        "queries share the service timeline and must carry its churn "
        "schedule");
  }
  if (!(config.fault == options_.fault)) {
    return Status::InvalidArgument(
        "queries share the service timeline and must carry its fault plane");
  }
  if (options_.churn_removals > 0 &&
      (plan.d_hat != churn_d_hat_ || hq != options_.churn_hq)) {
    return Status::InvalidArgument(
        "churned queries must share the timeline's D-hat and querying host "
        "(the churn window and the protected host derive from them)");
  }

  QueryId id = next_id_++;
  auto state = std::make_unique<QueryState>();
  state->id = id;
  state->arrival = Arrival{submit_time, spec, config, hq};
  state->plan = plan;
  trace_.arrivals.push_back(state->arrival);
  queries_.emplace(id, std::move(state));
  ++submitted_;
  if (submit_time == 0.0 && Now() == 0.0 && !timeline_started_) {
    // Mirror RunConcurrent's t=0 path: Start runs before any event of the
    // t=0 bucket executes, exactly like the pre-loop Start of a batch.
    OnArrival(id);
  } else {
    session_->simulator().ScheduleAt(submit_time,
                                     [this, id] { OnArrival(id); });
  }
  return id;
}

void QueryService::OnArrival(QueryId id) {
  auto it = queries_.find(id);
  VALIDITY_DCHECK(it != queries_.end());
  QueryState* q = it->second.get();
  if (q->phase == Phase::kCancelled) {
    queries_.erase(it);
    return;
  }
  if (in_flight_ < options_.max_in_flight) {
    StartLane(q);
  } else {
    q->phase = Phase::kDeferred;
    deferred_.push_back(id);
  }
}

void QueryService::StartLane(QueryState* q) {
  sim::Simulator& sim = session_->simulator();
  q->phase = Phase::kRunning;
  q->started_at = sim.Now();
  q->retire_at = RetireTimeFor(*q, q->started_at);
  q->protocol = engine_->AcquireSessionProtocol(
      session_, q->arrival.config.protocol, q->plan);
  q->metrics = session_->AcquireMetrics();
  session_->mux().Register(
      q->protocol->instance_id(),
      internal::MaybeInterpose(q->arrival.config.protocol,
                               q->arrival.config.fault, q->plan.ctx.combiner,
                               q->plan.ctx.fm, sim.num_hosts(),
                               q->protocol.get(), q->arrival.hq, &q->rig));
  sim.AttachInstanceMetrics(q->protocol->instance_id(), q->metrics);
  ++in_flight_;
  peak_in_flight_ = std::max(peak_in_flight_, in_flight_);
  q->protocol->Start(q->arrival.hq);
  sim.ScheduleAt(q->retire_at, [this, id = q->id] { OnRetire(id); });
}

void QueryService::OnRetire(QueryId id) {
  auto it = queries_.find(id);
  VALIDITY_DCHECK(it != queries_.end());
  // Detach from the map first: the completion callback may Submit follow-up
  // queries, which would invalidate `it`.
  std::unique_ptr<QueryState> q = std::move(it->second);
  queries_.erase(it);
  VALIDITY_DCHECK(in_flight_ > 0);
  --in_flight_;
  if (q->phase == Phase::kRunning) {
    Completion done;
    done.id = id;
    done.submitted_at = q->arrival.submit_time;
    done.started_at = q->started_at;
    done.retired_at = session_->simulator().Now();
    done.result = engine_->HarvestResult(
        session_->simulator(), *q->metrics, *q->protocol, q->arrival.spec,
        q->arrival.config, q->plan.d_hat, q->arrival.hq, q->started_at);
    DetachLane(q.get());
    ++completed_;
    if (on_completion_) on_completion_(done);
    completions_.push_back(std::move(done));
  }
  // A retirement frees exactly one lane slot (cancelled lanes keep theirs
  // occupied until here, so admission transitions stay on scheduled
  // events); deferred queries start strictly in arrival order.
  while (in_flight_ < options_.max_in_flight && !deferred_.empty()) {
    QueryId next_id = deferred_.front();
    deferred_.pop_front();
    StartLane(queries_.at(next_id).get());
  }
}

void QueryService::DetachLane(QueryState* q) {
  sim::Simulator& sim = session_->simulator();
  const uint32_t instance_id = q->protocol->instance_id();
  sim.DetachInstanceMetrics(instance_id);
  session_->mux().Unregister(instance_id);
  session_->ReleaseMetrics(q->metrics);
  q->metrics = nullptr;
  session_->ParkProgram(static_cast<uint32_t>(q->arrival.config.protocol),
                        std::move(q->protocol));
  // Unreachable from the mux now; any in-flight traffic of this instance is
  // dropped on delivery, exactly like a stale epoch's.
  q->rig = {};
}

SimTime QueryService::RetireTimeFor(const QueryState& q,
                                    SimTime started) const {
  const sim::SimOptions& so = session_->simulator().options();
  const double delta = so.delta;
  const sim::FaultSpec& fault = options_.fault;
  const bool delayed = fault.delay_rate > 0.0 || fault.duplicate_rate > 0.0;
  const double hop =
      delta * (1.0 + (delayed ? static_cast<double>(fault.max_delay_hops)
                              : 0.0));
  const double d_hat = q.plan.d_hat;
  const double horizon = 2.0 * d_hat * delta;
  // No protocol sends after its horizon; the last delivery lands within one
  // (possibly fault-delayed) hop of it.
  SimTime quiet = started + horizon + hop;
  // Tree/DAG eager convergecast: a churn failure detected late (at
  // t_fail + T_hb + delta) can trigger a report cascade of up to one hop
  // per tree level.
  if (q.plan.failure_detection && options_.churn_removals > 0) {
    SimTime detect = churn_end_time_ + so.heartbeat_interval + delta;
    quiet = std::max(quiet, std::max(started + horizon, detect) +
                                (2.0 * d_hat + 2.0) * hop);
  }
  // Gossip's round ladder outlives the 2*D-hat horizon: hosts activated any
  // time before it still run their full round count, and hq declares at
  // start + (rounds + 2) * delta.
  if (q.arrival.config.protocol == protocols::ProtocolKind::kGossip) {
    const double rounds =
        static_cast<double>(q.plan.protocol_options.gossip.rounds);
    quiet = std::max(quiet, started + horizon + (rounds + 2.0) * delta + hop);
  }
  // Strict margin: the retirement event must execute after every event this
  // lane can generate. A generous bound only delays lane recycling; it can
  // never change a result.
  return quiet + 2.0 * delta;
}

Status QueryService::Cancel(QueryId id) {
  auto it = queries_.find(id);
  if (it == queries_.end()) {
    return Status::NotFound("unknown or already-completed query id");
  }
  QueryState* q = it->second.get();
  switch (q->phase) {
    case Phase::kScheduled:
      q->phase = Phase::kCancelled;  // the arrival event discards it
      ++cancelled_;
      return Status::Ok();
    case Phase::kDeferred:
      deferred_.erase(std::find(deferred_.begin(), deferred_.end(), id));
      queries_.erase(it);
      ++cancelled_;
      return Status::Ok();
    case Phase::kRunning:
      // Routing and accounting detach now (in-flight traffic drops at the
      // mux); the lane slot frees at the original retirement instant so
      // admission stays on scheduled events.
      DetachLane(q);
      q->phase = Phase::kCancelled;
      ++cancelled_;
      return Status::Ok();
    case Phase::kCancelled:
      return Status::FailedPrecondition("query already cancelled");
  }
  return Status::Internal("unreachable");
}

void QueryService::RunUntil(SimTime t) {
  timeline_started_ = true;
  session_->simulator().RunUntil(t);
}

void QueryService::Drain() {
  timeline_started_ = true;
  session_->simulator().Run();
}

bool QueryService::Poll(Completion* out) {
  if (completions_.empty()) return false;
  *out = std::move(completions_.front());
  completions_.pop_front();
  return true;
}

void QueryService::set_on_completion(
    std::function<void(const Completion&)> callback) {
  on_completion_ = std::move(callback);
}

void QueryService::Reset() {
  // NOLINT-DETERMINISM(unordered-iteration): reset teardown; every lane
  // is detached and the whole table cleared below, so visit order is
  // unobservable (the rebuilt timeline starts from nothing).
  for (auto& [id, q] : queries_) {
    if (q->phase == Phase::kRunning) DetachLane(q.get());
  }
  queries_.clear();
  deferred_.clear();
  completions_.clear();
  trace_.arrivals.clear();
  in_flight_ = 0;
  peak_in_flight_ = 0;
  timeline_started_ = false;
  // Rewinds the timeline (pending arrival/retire closures and message slab
  // references drain through EventQueue::Clear) and drops the mux, fault,
  // and instance-metrics attachments; warm parked protocols and metrics
  // lanes survive for the next epoch.
  session_->Reset();
  ArmTimeline();
}

StatusOr<std::vector<QueryService::Completion>> QueryService::Replay(
    const QueryEngine& engine, const ServiceOptions& options,
    const ArrivalTrace& trace) {
  QueryService service(&engine, options);
  std::vector<QueryId> ids;
  ids.reserve(trace.arrivals.size());
  for (const Arrival& a : trace.arrivals) {
    StatusOr<QueryId> id = service.Submit(a.submit_time, a.spec, a.config,
                                          a.hq);
    if (!id.ok()) return id.status();
    ids.push_back(id.value());
  }
  service.Drain();
  // NOLINT-DETERMINISM(unordered-container): lookup-only index; results
  // are emitted in the trace's arrival order below, never in map order.
  std::unordered_map<QueryId, Completion> by_id;
  Completion done;
  while (service.Poll(&done)) by_id.emplace(done.id, std::move(done));
  std::vector<Completion> in_arrival_order;
  in_arrival_order.reserve(ids.size());
  for (QueryId id : ids) {
    auto it = by_id.find(id);
    if (it == by_id.end()) {
      return Status::Internal("replayed query did not complete");
    }
    in_arrival_order.push_back(std::move(it->second));
  }
  return in_arrival_order;
}

}  // namespace validity::core
