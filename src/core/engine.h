// QueryEngine: the library's main entry point.
//
// Owns a topology and per-host attribute values, runs one-shot aggregate
// queries under configurable protocols/churn, and returns the declared value
// together with the paper's three cost measures (§6.3) and the ORACLE
// validity interval (§6.2).
//
//   topology::Graph g = *topology::MakeRandom(10'000, 5.0, seed);
//   core::QueryEngine engine(&g, core::MakeZipfValues(10'000, seed));
//   auto result = engine.Run(spec, run_config, /*hq=*/0);
//   // result->value, result->cost.messages, result->validity.within ...

#ifndef VALIDITY_CORE_ENGINE_H_
#define VALIDITY_CORE_ENGINE_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "core/query.h"
#include "protocols/oracle.h"
#include "sim/session.h"
#include "topology/topology.h"

namespace validity::core {

/// Paper §6.3 cost measures for one run.
struct CostReport {
  /// Communication cost: messages sent (wireless transmissions count once).
  uint64_t messages = 0;
  /// Total bytes across those messages.
  uint64_t bytes = 0;
  /// Computation cost: max messages processed by any single host.
  uint64_t max_processed = 0;
  /// Time cost: when hq declared the result.
  SimTime declared_at = 0;
  /// End of the last causal message chain that changed hq's answer (the
  /// §6.3 chain-length time metric; < declared_at for protocols that sit
  /// out a declaration timer, like slotted SPANNINGTREE or WILDFIRE with an
  /// overestimated D-hat).
  SimTime last_update_at = 0;
  /// Messages sent during tick [i, i+1) (Fig. 13(b) series).
  std::vector<uint64_t> sends_per_tick;
  /// processed-message count -> number of hosts (Fig. 12 distribution).
  Histogram computation_histogram;
};

/// The result against the ORACLE's Single-Site Validity interval.
struct ValidityReport {
  double q_low = 0.0;
  double q_high = 0.0;
  uint64_t hc_size = 0;
  uint64_t hu_size = 0;
  /// v in [q_low, q_high] exactly.
  bool within = false;
  /// v in the interval up to the multiplicative sketch slack
  /// (kApproxSlackFactor); meaningful for FM-based answers.
  bool within_slack = false;
};

struct QueryResult {
  double value = 0.0;
  bool declared = false;
  CostReport cost;
  /// Populated only when RunConfig.compute_validity (the default); an
  /// all-zero report otherwise.
  ValidityReport validity;
  /// The exact aggregate over all initially-alive hosts (ground truth for
  /// relative-error reporting). 0 when compute_validity is off.
  double exact_full = 0.0;
  /// D-hat actually used (useful when QuerySpec.d_hat was 0 = auto).
  double d_hat_used = 0.0;
  /// Bytes of per-host protocol state the run materialized. Protocol state
  /// is paged lazily, so this tracks the hosts the query touched, not the
  /// network size.
  size_t resident_state_bytes = 0;
};

/// Multiplicative slack granted to approximate answers in
/// ValidityReport.within_slack.
inline constexpr double kApproxSlackFactor = 2.0;

class QueryEngine {
 public:
  /// `graph` must outlive the engine. `values[h]` is host h's attribute
  /// value (see MakeZipfValues for the paper's workload).
  QueryEngine(const topology::Graph* graph, std::vector<double> values);

  /// Engine over any adjacency provider. Implicit topologies
  /// (topology::Topology::Grid/Ring/Torus) make every simulator this engine
  /// builds O(touched) end to end: no CSR, no liveness tables, an exact
  /// O(1) diameter — the default way to run million-host regular networks.
  /// For kGraph topologies the underlying graph must outlive the engine.
  QueryEngine(topology::Topology topology, std::vector<double> values);

  /// Executes one query. Deterministic in (spec, config, hq), and safe to
  /// call concurrently from multiple threads: each run builds its own
  /// simulator/protocol state, and the engine's only shared mutable state
  /// (the diameter cache) is synchronized. The parallel sweep driver
  /// (core/sweep.h) relies on this.
  StatusOr<QueryResult> Run(const QuerySpec& spec, const RunConfig& config,
                            HostId hq) const;

  /// Session-reusing overload: runs the query on `session`'s cached
  /// simulator instead of building a fresh one — the O(network) build is
  /// paid once per (graph, sim options) and every query after it costs
  /// O(touched) (docs/SESSIONS.md). The session must have been built over
  /// this engine's graph with the same structural sim options as
  /// `config.sim_options` (delta, medium, heartbeat); the per-query knobs
  /// (failure detection, event budget) are retuned here. Resets the session
  /// first, so any prior state on it is discarded. Output is bit-identical
  /// to the fresh overload, field for field (tests/session_test.cc).
  /// Sessions are single-threaded: concurrent engine.Run calls need one
  /// session each (the sweep driver keeps one per worker).
  StatusOr<QueryResult> Run(sim::SimulatorSession* session,
                            const QuerySpec& spec, const RunConfig& config,
                            HostId hq) const;

  /// One query of a concurrent batch (see RunConcurrent).
  struct ConcurrentQuery {
    QuerySpec spec;
    RunConfig config;
    HostId hq = 0;
    /// When this query is issued on the shared timeline. 0 = at the start
    /// (the classic batch); > 0 staggers the query mid-timeline — the
    /// continuous-query shape, where new queries arrive while earlier ones
    /// are still in flight. The query's horizon, deadlines, and validity
    /// window all anchor at this instant.
    SimTime start_at = 0.0;
  };

  /// Issues every query at its start_at on one session and runs them in a
  /// single shared simulated timeline: instance-tagged messages keep the
  /// queries' traffic apart, and each query gets its own metrics lane, so
  /// results[i] is bit-identical to running queries[i] alone at the same
  /// start time (the session/determinism contract, docs/SESSIONS.md).
  /// Because the network dynamics are shared, all queries must agree on the
  /// structural sim options and on the churn schedule: identical churn
  /// fields, and — when churn is active — identical effective D-hat (the
  /// churn window is derived from it) and identical querying host (churn
  /// protects hq). Queries without churn may differ freely in protocol,
  /// spec, hq, and start time.
  StatusOr<std::vector<QueryResult>> RunConcurrent(
      sim::SimulatorSession* session,
      const std::vector<ConcurrentQuery>& queries) const;

  /// Estimated diameter of the topology (cached). Implicit topologies
  /// answer exactly in O(1); graphs run the double-sweep heuristic.
  /// Thread-safe: computed at most once under a std::once_flag.
  uint32_t EstimatedDiameter() const;

  const std::vector<double>& values() const { return values_; }
  const topology::Topology& topology() const { return topo_; }
  /// The materialized graph (kGraph topologies only).
  const topology::Graph& graph() const {
    VALIDITY_CHECK(topo_.graph() != nullptr,
                   "engine over an implicit topology has no graph");
    return *topo_.graph();
  }

 private:
  /// The open query-arrival layer reuses the engine's per-run machinery
  /// (PlanRun validation, churn scheduling, protocol acquisition, result
  /// harvest) so a service lane is bit-identical to a solo run by
  /// construction (core/query_service.h).
  friend class QueryService;

  /// Everything derived from (spec, config, hq) before a run starts.
  struct RunPlan {
    double d_hat = 0.0;
    bool failure_detection = false;
    protocols::QueryContext ctx;
    protocols::ProtocolOptions protocol_options;
  };

  /// Validates the query and fills `plan`; shared by all Run flavors.
  Status PlanRun(const QuerySpec& spec, const RunConfig& config, HostId hq,
                 RunPlan* plan) const;
  /// Session/config compatibility for the session-based flavors.
  Status CheckSession(const sim::SimulatorSession& session,
                      const RunConfig& config) const;
  /// Schedules the configured uniform churn onto `simulator`.
  void ScheduleConfiguredChurn(sim::Simulator* simulator,
                               const RunConfig& config, double d_hat,
                               HostId hq) const;
  /// Re-arms a protocol instance parked on `session` under this kind, or
  /// constructs the first one; either way Start() behaves identically.
  /// Return it with ParkProgram(static_cast<uint32_t>(kind), ...) so its
  /// warm pages and pools carry to the next query.
  std::unique_ptr<protocols::ProtocolBase> AcquireSessionProtocol(
      sim::SimulatorSession* session, protocols::ProtocolKind kind,
      const RunPlan& plan) const;
  /// Collects the §6.3 cost report, validity report, and ground truth after
  /// a completed run. `metrics` is the lane this query's traffic was
  /// charged to; `start_at` anchors the validity window (staggered
  /// concurrent queries observe [start_at, start_at + horizon]).
  QueryResult HarvestResult(const sim::Simulator& simulator,
                            const sim::Metrics& metrics,
                            const protocols::ProtocolBase& protocol,
                            const QuerySpec& spec, const RunConfig& config,
                            double d_hat, HostId hq,
                            SimTime start_at = 0.0) const;

  topology::Topology topo_;
  std::vector<double> values_;
  mutable std::once_flag diameter_once_;
  mutable uint32_t cached_diameter_ = 0;
};

/// The paper's workload (§6.1): Zipfian attribute values in [10, 500].
std::vector<double> MakeZipfValues(uint32_t num_hosts, uint64_t seed,
                                   int64_t low = 10, int64_t high = 500,
                                   double theta = 1.0);

}  // namespace validity::core

#endif  // VALIDITY_CORE_ENGINE_H_
