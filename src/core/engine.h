// QueryEngine: the library's main entry point.
//
// Owns a topology and per-host attribute values, runs one-shot aggregate
// queries under configurable protocols/churn, and returns the declared value
// together with the paper's three cost measures (§6.3) and the ORACLE
// validity interval (§6.2).
//
//   topology::Graph g = *topology::MakeRandom(10'000, 5.0, seed);
//   core::QueryEngine engine(&g, core::MakeZipfValues(10'000, seed));
//   auto result = engine.Run(spec, run_config, /*hq=*/0);
//   // result->value, result->cost.messages, result->validity.within ...

#ifndef VALIDITY_CORE_ENGINE_H_
#define VALIDITY_CORE_ENGINE_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "core/query.h"
#include "protocols/oracle.h"
#include "topology/graph.h"

namespace validity::core {

/// Paper §6.3 cost measures for one run.
struct CostReport {
  /// Communication cost: messages sent (wireless transmissions count once).
  uint64_t messages = 0;
  /// Total bytes across those messages.
  uint64_t bytes = 0;
  /// Computation cost: max messages processed by any single host.
  uint64_t max_processed = 0;
  /// Time cost: when hq declared the result.
  SimTime declared_at = 0;
  /// End of the last causal message chain that changed hq's answer (the
  /// §6.3 chain-length time metric; < declared_at for protocols that sit
  /// out a declaration timer, like slotted SPANNINGTREE or WILDFIRE with an
  /// overestimated D-hat).
  SimTime last_update_at = 0;
  /// Messages sent during tick [i, i+1) (Fig. 13(b) series).
  std::vector<uint64_t> sends_per_tick;
  /// processed-message count -> number of hosts (Fig. 12 distribution).
  Histogram computation_histogram;
};

/// The result against the ORACLE's Single-Site Validity interval.
struct ValidityReport {
  double q_low = 0.0;
  double q_high = 0.0;
  uint64_t hc_size = 0;
  uint64_t hu_size = 0;
  /// v in [q_low, q_high] exactly.
  bool within = false;
  /// v in the interval up to the multiplicative sketch slack
  /// (kApproxSlackFactor); meaningful for FM-based answers.
  bool within_slack = false;
};

struct QueryResult {
  double value = 0.0;
  bool declared = false;
  CostReport cost;
  /// Populated only when RunConfig.compute_validity (the default); an
  /// all-zero report otherwise.
  ValidityReport validity;
  /// The exact aggregate over all initially-alive hosts (ground truth for
  /// relative-error reporting). 0 when compute_validity is off.
  double exact_full = 0.0;
  /// D-hat actually used (useful when QuerySpec.d_hat was 0 = auto).
  double d_hat_used = 0.0;
  /// Bytes of per-host protocol state the run materialized. Protocol state
  /// is paged lazily, so this tracks the hosts the query touched, not the
  /// network size.
  size_t resident_state_bytes = 0;
};

/// Multiplicative slack granted to approximate answers in
/// ValidityReport.within_slack.
inline constexpr double kApproxSlackFactor = 2.0;

class QueryEngine {
 public:
  /// `graph` must outlive the engine. `values[h]` is host h's attribute
  /// value (see MakeZipfValues for the paper's workload).
  QueryEngine(const topology::Graph* graph, std::vector<double> values);

  /// Executes one query. Deterministic in (spec, config, hq), and safe to
  /// call concurrently from multiple threads: each run builds its own
  /// simulator/protocol state, and the engine's only shared mutable state
  /// (the diameter cache) is synchronized. The parallel sweep driver
  /// (core/sweep.h) relies on this.
  StatusOr<QueryResult> Run(const QuerySpec& spec, const RunConfig& config,
                            HostId hq) const;

  /// Estimated diameter of the topology (cached; double-sweep heuristic).
  /// Thread-safe: computed at most once under a std::once_flag.
  uint32_t EstimatedDiameter() const;

  const std::vector<double>& values() const { return values_; }
  const topology::Graph& graph() const { return *graph_; }

 private:
  const topology::Graph* graph_;
  std::vector<double> values_;
  mutable std::once_flag diameter_once_;
  mutable uint32_t cached_diameter_ = 0;
};

/// The paper's workload (§6.1): Zipfian attribute values in [10, 500].
std::vector<double> MakeZipfValues(uint32_t num_hosts, uint64_t seed,
                                   int64_t low = 10, int64_t high = 500,
                                   double theta = 1.0);

}  // namespace validity::core

#endif  // VALIDITY_CORE_ENGINE_H_
