// Parallel sweep driver for embarrassingly-parallel experiment grids.
//
// The paper's figures are averages over (protocol, churn level, trial)
// grids, and QueryEngine::Run is const and self-contained per run — every
// cell of such a grid is an independent task. ParallelFor/ParallelMap run
// those tasks on a small pool of worker threads while keeping results in
// index order, so a driver that (a) derives every cell's RNG seeds
// statelessly from the cell's grid coordinates and (b) merges the
// value-returning cells in the serial iteration order produces output that
// is bit-identical to a serial sweep at any thread count. RunChurnSweep
// (core/experiment.h) and the bench/fig*.cc binaries are built this way.
//
// This is a fork-join helper, not a persistent pool: threads are spawned
// per call and joined before it returns. Sweep cells are milliseconds to
// seconds of simulation each, so the ~10 us per-thread spawn cost is noise.
//
// The (a)+(b) discipline above — slot-indexed writes, serial-order merge —
// is the idiom the determinism lint's float-accumulation rule pins: shared
// FP accumulators inside ParallelFor bodies are rejected at lint time
// because FP addition is not associative across thread interleavings. See
// docs/DETERMINISM.md.

#ifndef VALIDITY_CORE_SWEEP_H_
#define VALIDITY_CORE_SWEEP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

namespace validity::core {

/// std::thread::hardware_concurrency() clamped to >= 1 (the standard allows
/// it to return 0 when undeterminable).
uint32_t HardwareThreads();

/// Hard ceiling on sweep workers. Oversubscription past this point only
/// costs scheduling; it also bounds thread spawns when a caller passes a
/// huge or wrapped-negative --threads value.
inline constexpr uint32_t kMaxSweepThreads = 256;

/// Resolves a user-facing thread-count knob: 0 (the "auto" default of every
/// --threads flag) becomes HardwareThreads(); anything else is clamped to
/// [1, kMaxSweepThreads].
uint32_t ResolveThreads(uint32_t requested);

/// Runs body(i) for every i in [0, n) on ResolveThreads(threads) workers.
/// Indices are claimed dynamically (atomic counter), so uneven cell costs
/// balance across workers. Blocks until every worker joined. The body must
/// not touch shared mutable state except through its own index's slot. A
/// body exception is rethrown here (first one wins) after cancelling
/// unclaimed indices — in-flight bodies on other workers finish before the
/// rethrow, so the caller never unwinds under a running body, but indices
/// nobody started are skipped (fail fast).
///
/// threads == 1 runs inline on the calling thread with no spawns at all —
/// --threads=1 is the exact serial program, not a one-worker pool — and,
/// like any serial loop, propagates a body exception immediately without
/// visiting the remaining indices.
void ParallelFor(size_t n, uint32_t threads,
                 const std::function<void(size_t)>& body);

/// ParallelFor variant whose body also receives the executing worker's
/// index in [0, ResolveThreads(threads)). Lets a caller keep one reusable
/// per-worker context — e.g. a sim::SimulatorSession, which is
/// single-threaded and expensive to build — without sharing it across
/// workers. Which indices land on which worker is nondeterministic (dynamic
/// claiming); per-worker contexts must therefore not influence results —
/// exactly the session determinism contract (docs/SESSIONS.md).
void ParallelForWorker(
    size_t n, uint32_t threads,
    const std::function<void(uint32_t worker, size_t i)>& body);

/// Value-returning form: results[i] = fn(i), computed in parallel, returned
/// in index order. T must be default-constructible and must not be bool:
/// std::vector<bool> packs 8 elements per byte, so concurrent writes to
/// adjacent slots would race (use char or a wrapper struct instead).
template <typename T, typename Fn>
std::vector<T> ParallelMap(size_t n, uint32_t threads, Fn&& fn) {
  static_assert(!std::is_same_v<T, bool>,
                "vector<bool> bit-packing races under parallel writes");
  std::vector<T> results(n);
  ParallelFor(n, threads, [&](size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace validity::core

#endif  // VALIDITY_CORE_SWEEP_H_
