#include "core/experiment.h"

#include "common/rng.h"

namespace validity::core {

std::vector<ProtocolSpec> StandardLineup() {
  std::vector<ProtocolSpec> lineup;
  lineup.push_back({"spanning-tree", protocols::ProtocolKind::kSpanningTree,
                    protocols::ProtocolOptions{}});
  protocols::ProtocolOptions dag2;
  dag2.dag.max_parents = 2;
  lineup.push_back({"dag-k2", protocols::ProtocolKind::kDag, dag2});
  protocols::ProtocolOptions dag3;
  dag3.dag.max_parents = 3;
  lineup.push_back({"dag-k3", protocols::ProtocolKind::kDag, dag3});
  lineup.push_back({"wildfire", protocols::ProtocolKind::kWildfire,
                    protocols::ProtocolOptions{}});
  return lineup;
}

std::vector<SweepCell> RunChurnSweep(const QueryEngine& engine,
                                     const QuerySpec& spec, HostId hq,
                                     const std::vector<ProtocolSpec>& lineup,
                                     const std::vector<uint32_t>& removals,
                                     const ChurnSweepOptions& options) {
  std::vector<SweepCell> cells;
  cells.reserve(removals.size() * lineup.size());
  for (uint32_t r : removals) {
    std::vector<RunningStat> value(lineup.size());
    std::vector<RunningStat> messages(lineup.size());
    std::vector<RunningStat> time_cost(lineup.size());
    std::vector<RunningStat> max_processed(lineup.size());
    std::vector<uint64_t> within(lineup.size(), 0);
    std::vector<uint64_t> within_slack(lineup.size(), 0);
    RunningStat oracle_low;
    RunningStat oracle_high;

    for (uint32_t t = 0; t < options.trials; ++t) {
      // One churn schedule per (level, trial), shared by every protocol.
      uint64_t churn_seed =
          Mix64(options.base_seed ^ (uint64_t{r} << 32) ^ (t + 1));
      uint64_t sketch_seed = Mix64(churn_seed + 0x5851f42d4c957f2dULL);
      bool oracle_recorded = false;
      for (size_t p = 0; p < lineup.size(); ++p) {
        RunConfig config;
        config.protocol = lineup[p].kind;
        config.protocol_options = lineup[p].options;
        config.sim_options = options.sim_options;
        config.churn_removals = r;
        config.churn_seed = churn_seed;
        config.sketch_seed = sketch_seed;
        StatusOr<QueryResult> run = engine.Run(spec, config, hq);
        VALIDITY_CHECK(run.ok(), "sweep run failed: %s",
                       run.status().ToString().c_str());
        value[p].Add(run->value);
        messages[p].Add(static_cast<double>(run->cost.messages));
        time_cost[p].Add(run->cost.declared_at);
        max_processed[p].Add(static_cast<double>(run->cost.max_processed));
        if (run->validity.within) ++within[p];
        if (run->validity.within_slack) ++within_slack[p];
        if (!oracle_recorded) {
          // Identical churn => identical oracle interval across protocols.
          oracle_low.Add(run->validity.q_low);
          oracle_high.Add(run->validity.q_high);
          oracle_recorded = true;
        }
      }
    }

    for (size_t p = 0; p < lineup.size(); ++p) {
      SweepCell cell;
      cell.protocol = lineup[p].label;
      cell.removals = r;
      cell.value = MeanCi{value[p].mean(), value[p].ci95_half_width(),
                          value[p].count()};
      cell.messages = MeanCi{messages[p].mean(),
                             messages[p].ci95_half_width(),
                             messages[p].count()};
      cell.time_cost = MeanCi{time_cost[p].mean(),
                              time_cost[p].ci95_half_width(),
                              time_cost[p].count()};
      cell.max_processed = MeanCi{max_processed[p].mean(),
                                  max_processed[p].ci95_half_width(),
                                  max_processed[p].count()};
      cell.oracle_low = MeanCi{oracle_low.mean(), oracle_low.ci95_half_width(),
                               oracle_low.count()};
      cell.oracle_high = MeanCi{oracle_high.mean(),
                                oracle_high.ci95_half_width(),
                                oracle_high.count()};
      cell.within_fraction = static_cast<double>(within[p]) /
                             static_cast<double>(options.trials);
      cell.within_slack_fraction = static_cast<double>(within_slack[p]) /
                                   static_cast<double>(options.trials);
      cells.push_back(cell);
    }
  }
  return cells;
}

}  // namespace validity::core
