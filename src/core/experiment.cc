#include "core/experiment.h"

#include <memory>

#include "common/rng.h"
#include "core/sweep.h"
#include "sim/session.h"

namespace validity::core {

std::vector<ProtocolSpec> StandardLineup() {
  std::vector<ProtocolSpec> lineup;
  lineup.push_back({"spanning-tree", protocols::ProtocolKind::kSpanningTree,
                    protocols::ProtocolOptions{}});
  protocols::ProtocolOptions dag2;
  dag2.dag.max_parents = 2;
  lineup.push_back({"dag-k2", protocols::ProtocolKind::kDag, dag2});
  protocols::ProtocolOptions dag3;
  dag3.dag.max_parents = 3;
  lineup.push_back({"dag-k3", protocols::ProtocolKind::kDag, dag3});
  lineup.push_back({"wildfire", protocols::ProtocolKind::kWildfire,
                    protocols::ProtocolOptions{}});
  return lineup;
}

namespace {

/// The per-run measurements a sweep cell aggregates over trials. One slot
/// per (level, trial, protocol) grid point, filled by value-returning tasks
/// and merged serially afterwards.
struct CellRun {
  double value = 0.0;
  double messages = 0.0;
  double time_cost = 0.0;
  double max_processed = 0.0;
  double q_low = 0.0;
  double q_high = 0.0;
  bool within = false;
  bool within_slack = false;
};

MeanCi ToMeanCi(const RunningStat& s) {
  return MeanCi{s.mean(), s.ci95_half_width(), s.count()};
}

}  // namespace

std::vector<SweepCell> RunChurnSweep(const QueryEngine& engine,
                                     const QuerySpec& spec, HostId hq,
                                     const std::vector<ProtocolSpec>& lineup,
                                     const std::vector<uint32_t>& removals,
                                     const ChurnSweepOptions& options) {
  const size_t num_protocols = lineup.size();
  const size_t runs_per_level = options.trials * num_protocols;
  // Fault axis: no levels configured means one fault-free level.
  std::vector<sim::FaultSpec> faults = options.fault_levels;
  if (faults.empty()) faults.push_back(sim::FaultSpec{});
  const size_t runs_per_fault = removals.size() * runs_per_level;
  const size_t total_runs = faults.size() * runs_per_fault;

  // Stage 1 (parallel): every (fault, level, trial, protocol) grid point is
  // an independent const run whose seeds derive from its coordinates alone.
  // Flat index = ((fault_index * num_levels + level_index) * trials + trial)
  // * num_protocols + protocol, matching the serial loop nesting below.
  // Each worker keeps one SimulatorSession, so the O(network) simulator
  // build is paid once per worker instead of once per cell; session reuse
  // is bit-identical to fresh construction (docs/SESSIONS.md), so cell
  // results do not depend on which worker ran them.
  std::vector<CellRun> runs(total_runs);
  std::vector<std::unique_ptr<sim::SimulatorSession>> sessions(
      ResolveThreads(options.threads));
  ParallelForWorker(total_runs, options.threads, [&](uint32_t worker,
                                                     size_t i) {
    const size_t f = i / runs_per_fault;
    const size_t ri = (i / runs_per_level) % removals.size();
    const uint32_t t = static_cast<uint32_t>((i / num_protocols) %
                                             options.trials);
    const size_t p = i % num_protocols;
    const uint32_t r = removals[ri];
    // One churn schedule per (level, trial), shared by every protocol and
    // every fault level — degradation at a cell is attributable to its
    // faults, not to a different departure draw.
    uint64_t churn_seed =
        Mix64(options.base_seed ^ (uint64_t{r} << 32) ^ (t + 1));
    uint64_t sketch_seed = Mix64(churn_seed + 0x5851f42d4c957f2dULL);

    RunConfig config;
    config.protocol = lineup[p].kind;
    config.protocol_options = lineup[p].options;
    config.sim_options = options.sim_options;
    config.churn_removals = r;
    config.churn_seed = churn_seed;
    config.sketch_seed = sketch_seed;
    config.fault = faults[f];
    if (config.fault.enabled()) {
      // Stateless per-cell remix: trials draw independent fault schedules,
      // protocols within a (level, trial) share one.
      config.fault.seed = Mix64(faults[f].seed ^ churn_seed);
    }
    if (sessions[worker] == nullptr) {
      sessions[worker] = std::make_unique<sim::SimulatorSession>(
          engine.topology(), options.sim_options);
    }
    StatusOr<QueryResult> run =
        engine.Run(sessions[worker].get(), spec, config, hq);
    VALIDITY_CHECK(run.ok(), "sweep run failed: %s",
                   run.status().ToString().c_str());
    runs[i] = CellRun{run->value,
                      static_cast<double>(run->cost.messages),
                      run->cost.declared_at,
                      static_cast<double>(run->cost.max_processed),
                      run->validity.q_low,
                      run->validity.q_high,
                      run->validity.within,
                      run->validity.within_slack};
  });

  // Stage 2 (serial): merge in the exact serial iteration order —
  // fault-major, then removals, then trial, then protocol — so every
  // RunningStat sees its samples in the same sequence a single-threaded
  // sweep would produce and the means/CIs are bit-identical regardless of
  // thread count.
  std::vector<SweepCell> cells;
  cells.reserve(faults.size() * removals.size() * num_protocols);
  size_t i = 0;
  for (size_t f = 0; f < faults.size(); ++f) {
    const std::string fault_label = sim::FaultSpecLabel(faults[f]);
    for (size_t ri = 0; ri < removals.size(); ++ri) {
      std::vector<RunningStat> value(num_protocols);
      std::vector<RunningStat> messages(num_protocols);
      std::vector<RunningStat> time_cost(num_protocols);
      std::vector<RunningStat> max_processed(num_protocols);
      std::vector<uint64_t> within(num_protocols, 0);
      std::vector<uint64_t> within_slack(num_protocols, 0);
      RunningStat oracle_low;
      RunningStat oracle_high;

      for (uint32_t t = 0; t < options.trials; ++t) {
        for (size_t p = 0; p < num_protocols; ++p, ++i) {
          const CellRun& run = runs[i];
          value[p].Add(run.value);
          messages[p].Add(run.messages);
          time_cost[p].Add(run.time_cost);
          max_processed[p].Add(run.max_processed);
          if (run.within) ++within[p];
          if (run.within_slack) ++within_slack[p];
          if (p == 0) {
            // Identical churn => identical oracle interval across protocols.
            oracle_low.Add(run.q_low);
            oracle_high.Add(run.q_high);
          }
        }
      }

      for (size_t p = 0; p < num_protocols; ++p) {
        SweepCell cell;
        cell.protocol = lineup[p].label;
        cell.fault = fault_label;
        cell.removals = removals[ri];
        cell.value = ToMeanCi(value[p]);
        cell.messages = ToMeanCi(messages[p]);
        cell.time_cost = ToMeanCi(time_cost[p]);
        cell.max_processed = ToMeanCi(max_processed[p]);
        cell.oracle_low = ToMeanCi(oracle_low);
        cell.oracle_high = ToMeanCi(oracle_high);
        cell.within_fraction = static_cast<double>(within[p]) /
                               static_cast<double>(options.trials);
        cell.within_slack_fraction =
            static_cast<double>(within_slack[p]) /
            static_cast<double>(options.trials);
        cells.push_back(cell);
      }
    }
  }
  return cells;
}

}  // namespace validity::core
