// Per-run rigging shared by the engine's Run flavors and the QueryService:
// byzantine interposition and the link-fault install test. Internal to
// core/ — the pieces a lane needs to look exactly like a solo run, factored
// out so the open-arrival service reuses the engine's machinery instead of
// re-deriving it.

#ifndef VALIDITY_CORE_RUN_INTERNAL_H_
#define VALIDITY_CORE_RUN_INTERNAL_H_

#include <memory>

#include "protocols/byzantine.h"
#include "protocols/factory.h"
#include "sim/fault.h"

namespace validity::core::internal {

/// Per-run byzantine interposition state: the mutator + interposer pair
/// wrapping a protocol's HostProgram when the config asks for byzantine
/// hosts. Owned by the run (or the service lane), destroyed after the
/// simulator stops dispatching to it.
struct ByzantineRig {
  std::unique_ptr<protocols::StandardByzantineMutator> mutator;
  std::unique_ptr<sim::ByzantineInterposer> interposer;
};

/// The program the simulator (or the session mux lane) should dispatch to:
/// `inner` directly, or a byzantine interposer wrapping it. `fault` must
/// outlive the run (it lives in the caller's RunConfig).
inline sim::HostProgram* MaybeInterpose(protocols::ProtocolKind kind,
                                        const sim::FaultSpec& fault,
                                        protocols::CombinerKind combiner,
                                        const sketch::FmParams& fm,
                                        uint32_t num_hosts,
                                        sim::HostProgram* inner, HostId hq,
                                        ByzantineRig* rig) {
  if (!fault.HasByzantine()) return inner;
  rig->mutator = std::make_unique<protocols::StandardByzantineMutator>(
      kind, fault, combiner, fm, num_hosts);
  rig->interposer = std::make_unique<sim::ByzantineInterposer>(
      &fault, rig->mutator.get(), inner, hq);
  return rig->interposer.get();
}

/// Link faults install when any rate is live (or a bench explicitly asks
/// for the installed-but-idle path).
inline bool ShouldInstallLinkFaults(const sim::FaultSpec& fault) {
  return fault.HasLinkFaults() || fault.install_idle;
}

}  // namespace validity::core::internal

#endif  // VALIDITY_CORE_RUN_INTERNAL_H_
