// Query and run configuration for the engine: everything needed to execute
// one aggregate query over one dynamic network, reproducibly.

#ifndef VALIDITY_CORE_QUERY_H_
#define VALIDITY_CORE_QUERY_H_

#include <cstdint>

#include "common/aggregate.h"
#include "common/types.h"
#include "protocols/factory.h"
#include "sim/fault.h"
#include "sim/simulator.h"

namespace validity::core {

/// What to compute and how precisely.
struct QuerySpec {
  AggregateKind aggregate = AggregateKind::kCount;
  /// FM repetitions c for count/sum/avg sketches (Fig. 6 studies accuracy
  /// vs c; around 8-16 suffices).
  uint32_t fm_vectors = 16;
  /// Use exact id-union combiners instead of FM sketches (O(|H|)-sized
  /// messages; testing/diagnostics only).
  bool exact_combiners = false;
  /// Overestimate of the stable diameter, in hops. 0 = derive from the
  /// topology (estimated diameter + kDefaultDiameterMargin).
  double d_hat = 0.0;
};

/// How to run it.
struct RunConfig {
  protocols::ProtocolKind protocol = protocols::ProtocolKind::kWildfire;
  protocols::ProtocolOptions protocol_options;
  /// Simulator knobs (medium, delta, heartbeat). failure_detection is
  /// forced on for the tree/DAG baselines, which need child liveness.
  sim::SimOptions sim_options;
  /// Hosts removed at a uniform rate during the query interval (paper §6.2;
  /// R in Figs. 7-9). The querying host is never removed.
  uint32_t churn_removals = 0;
  /// Churn window as fractions of the horizon 2 * d_hat * delta.
  double churn_start_frac = 0.0;
  double churn_end_frac = 1.0;
  /// Seeds: same seeds => bit-identical run.
  uint64_t churn_seed = 1;
  uint64_t sketch_seed = 2;
  /// Deterministic fault plane (sim/fault.h): lossy links and byzantine
  /// hosts. Default-constructed = disabled (the allocation-free hot path).
  /// Like the churn fields, concurrent queries on one session must agree
  /// on it — the faults are part of the shared network timeline.
  sim::FaultSpec fault;
  /// Compute the ORACLE validity interval and the exact full aggregate
  /// after the run. Both are O(network) ground-truth passes; million-host
  /// scenarios that only touch a small disc of the graph turn this off so
  /// query cost stays proportional to the touched fraction.
  bool compute_validity = true;
};

/// D-hat safety margin added to the estimated diameter when QuerySpec.d_hat
/// is 0. The deadline ladder of the tree/DAG baselines needs
/// d_hat >= depth_max + 1 (see spanning_tree.cc); +2 also covers the
/// double-sweep estimate being off by one.
inline constexpr double kDefaultDiameterMargin = 2.0;

}  // namespace validity::core

#endif  // VALIDITY_CORE_QUERY_H_
