// Experiment helpers shared by the bench harnesses: named protocol specs,
// multi-trial churn sweeps with shared churn schedules, and summary rows.

#ifndef VALIDITY_CORE_EXPERIMENT_H_
#define VALIDITY_CORE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "common/stats.h"
#include "core/engine.h"

namespace validity::core {

/// A labeled protocol configuration (e.g. "dag-k2" vs "dag-k3").
struct ProtocolSpec {
  std::string label;
  protocols::ProtocolKind kind;
  protocols::ProtocolOptions options;
};

/// The paper's Figs. 7-9 line-up: SPANNINGTREE, DAG(k=2), DAG(k=3),
/// WILDFIRE.
std::vector<ProtocolSpec> StandardLineup();

/// Aggregated measurements for one (fault level, churn level, protocol)
/// cell.
struct SweepCell {
  std::string protocol;
  /// FaultSpecLabel of the cell's fault level ("none" when the sweep has no
  /// fault axis).
  std::string fault;
  uint32_t removals = 0;
  MeanCi value;
  MeanCi messages;
  MeanCi time_cost;
  MeanCi max_processed;
  MeanCi oracle_low;
  MeanCi oracle_high;
  /// Fraction of trials whose answer fell inside the oracle interval.
  double within_fraction = 0.0;
  /// As above but with the approximate-answer slack.
  double within_slack_fraction = 0.0;
};

struct ChurnSweepOptions {
  uint32_t trials = 10;       // paper: averages of 10 trials with 95% CI
  uint64_t base_seed = 42;    // trial t uses churn seed f(base_seed, t)
  /// Worker threads for the (level, trial, protocol) grid; 0 = all hardware
  /// threads, 1 = serial. Every cell's RNG seeds derive statelessly from
  /// its grid coordinates and cells merge in serial iteration order, so the
  /// returned vector is bit-identical at any thread count.
  uint32_t threads = 0;
  sim::SimOptions sim_options;
  /// Fault-plane sweep axis (sim/fault.h): each entry is one level of the
  /// degradation surface. Empty = a single fault-free level, which keeps
  /// existing callers unchanged. A level's spec.seed is re-mixed with each
  /// cell's churn seed, so trials draw independent fault schedules while
  /// every protocol within one (level, trial) faces the same faults.
  std::vector<sim::FaultSpec> fault_levels;
};

/// Runs every protocol at every (fault level, churn level). Within one
/// (fault, churn, trial) triple all protocols face the *same* departure and
/// fault schedules, as a fair comparison requires. Returns cells in
/// (fault-major, removals-major, protocol-minor) order. Independent grid
/// runs execute concurrently on options.threads workers (see core/sweep.h);
/// output does not depend on the thread count.
std::vector<SweepCell> RunChurnSweep(const QueryEngine& engine,
                                     const QuerySpec& spec, HostId hq,
                                     const std::vector<ProtocolSpec>& lineup,
                                     const std::vector<uint32_t>& removals,
                                     const ChurnSweepOptions& options);

}  // namespace validity::core

#endif  // VALIDITY_CORE_EXPERIMENT_H_
