#include "core/engine.h"

#include <algorithm>
#include <cmath>

#include "common/zipf.h"
#include "core/run_internal.h"
#include "protocols/byzantine.h"
#include "protocols/factory.h"
#include "sim/churn.h"
#include "topology/algorithms.h"

namespace validity::core {

using internal::ByzantineRig;
using internal::MaybeInterpose;
using internal::ShouldInstallLinkFaults;

QueryEngine::QueryEngine(const topology::Graph* graph,
                         std::vector<double> values)
    : QueryEngine(topology::Topology::FromGraph(graph), std::move(values)) {}

QueryEngine::QueryEngine(topology::Topology topology,
                         std::vector<double> values)
    : topo_(topology), values_(std::move(values)) {
  VALIDITY_CHECK(values_.size() >= topo_.num_hosts(),
                 "need one value per host (%zu < %u)", values_.size(),
                 topo_.num_hosts());
}

uint32_t QueryEngine::EstimatedDiameter() const {
  std::call_once(diameter_once_, [this] {
    if (topo_.implicit()) {
      // Regular shapes know their diameter exactly; no sweeps, no O(n).
      cached_diameter_ = topo_.ImplicitDiameter();
    } else {
      Rng rng(0xd1a4e7e5u);
      cached_diameter_ =
          topology::EstimateDiameter(*topo_.graph(), /*sweeps=*/4, &rng);
    }
  });
  return cached_diameter_;
}

Status QueryEngine::PlanRun(const QuerySpec& spec, const RunConfig& config,
                            HostId hq, RunPlan* plan) const {
  if (hq >= topo_.num_hosts()) {
    return Status::OutOfRange("querying host out of range");
  }
  if (spec.fm_vectors == 0) {
    return Status::InvalidArgument("fm_vectors must be >= 1");
  }
  if (config.churn_removals >= topo_.num_hosts()) {
    return Status::InvalidArgument("cannot remove every host");
  }
  if (config.protocol == protocols::ProtocolKind::kRandomizedReport &&
      spec.aggregate != AggregateKind::kCount &&
      spec.aggregate != AggregateKind::kSum) {
    return Status::InvalidArgument(
        "randomized-report answers count/sum queries only");
  }

  plan->d_hat = spec.d_hat;
  if (plan->d_hat <= 0.0) {
    plan->d_hat =
        static_cast<double>(EstimatedDiameter()) + kDefaultDiameterMargin;
  }

  // The tree/DAG baselines track child liveness through heartbeats.
  plan->failure_detection =
      config.sim_options.failure_detection ||
      config.protocol == protocols::ProtocolKind::kSpanningTree ||
      config.protocol == protocols::ProtocolKind::kDag;

  plan->ctx.aggregate = spec.aggregate;
  plan->ctx.combiner =
      protocols::CombinerFor(spec.aggregate, spec.exact_combiners);
  plan->ctx.fm.num_vectors = spec.fm_vectors;
  plan->ctx.d_hat = plan->d_hat;
  plan->ctx.sketch_seed = config.sketch_seed;
  plan->ctx.values = &values_;

  plan->protocol_options = config.protocol_options;
  protocols::RandomizedReportOptions& randomized =
      plan->protocol_options.randomized;
  if (config.protocol == protocols::ProtocolKind::kRandomizedReport &&
      randomized.p_override == 0.0 && randomized.n_estimate <= 1.0) {
    randomized.n_estimate = static_cast<double>(topo_.num_hosts());
  }
  return Status::Ok();
}

void QueryEngine::ScheduleConfiguredChurn(sim::Simulator* simulator,
                                          const RunConfig& config,
                                          double d_hat, HostId hq) const {
  if (config.churn_removals == 0) return;
  SimTime horizon = 2.0 * d_hat * simulator->options().delta;
  Rng churn_rng(config.churn_seed);
  auto events = sim::MakeUniformChurn(
      topo_.num_hosts(), hq, config.churn_removals,
      config.churn_start_frac * horizon, config.churn_end_frac * horizon,
      &churn_rng);
  sim::ScheduleChurn(simulator, events);
}

QueryResult QueryEngine::HarvestResult(const sim::Simulator& simulator,
                                       const sim::Metrics& metrics,
                                       const protocols::ProtocolBase& protocol,
                                       const QuerySpec& spec,
                                       const RunConfig& config, double d_hat,
                                       HostId hq, SimTime start_at) const {
  QueryResult result;
  result.value = protocol.result().value;
  result.declared = protocol.result().declared;
  result.d_hat_used = d_hat;
  result.resident_state_bytes = protocol.ResidentStateBytes();

  result.cost.messages = metrics.messages_sent();
  result.cost.bytes = metrics.bytes_sent();
  result.cost.max_processed = metrics.MaxProcessed();
  result.cost.declared_at = protocol.result().declared_at;
  result.cost.last_update_at = protocol.result().last_update_at;
  result.cost.sends_per_tick = metrics.SendsPerTick();
  result.cost.computation_histogram = metrics.ComputationCostDistribution();

  // The ORACLE and the exact full aggregate read ground truth for the whole
  // network; million-host callers that touch a small disc skip them.
  if (config.compute_validity) {
    SimTime horizon = 2.0 * d_hat * simulator.options().delta;
    protocols::OracleReport oracle = protocols::ComputeOracle(
        simulator, hq, /*t_begin=*/start_at, /*t_end=*/start_at + horizon,
        spec.aggregate, values_);
    result.validity.q_low = oracle.q_low;
    result.validity.q_high = oracle.q_high;
    result.validity.hc_size = oracle.hc.size();
    result.validity.hu_size = oracle.hu.size();
    result.validity.within = result.declared && oracle.Contains(result.value);
    result.validity.within_slack =
        result.declared &&
        oracle.ContainsWithin(result.value, kApproxSlackFactor);

    result.exact_full =
        ExactAggregateOverAll(spec.aggregate, values_, topo_.num_hosts());
  }
  return result;
}

StatusOr<QueryResult> QueryEngine::Run(const QuerySpec& spec,
                                       const RunConfig& config,
                                       HostId hq) const {
  RunPlan plan;
  if (Status status = PlanRun(spec, config, hq, &plan); !status.ok()) {
    return status;
  }

  sim::SimOptions sim_options = config.sim_options;
  sim_options.failure_detection = plan.failure_detection;
  sim::Simulator simulator(topo_, sim_options);
  if (ShouldInstallLinkFaults(config.fault)) {
    simulator.InstallFaults(&config.fault);
  }
  ScheduleConfiguredChurn(&simulator, config, plan.d_hat, hq);

  std::unique_ptr<protocols::ProtocolBase> protocol = protocols::MakeProtocol(
      config.protocol, &simulator, plan.ctx, plan.protocol_options);
  ByzantineRig rig;
  simulator.AttachProgram(MaybeInterpose(config.protocol, config.fault,
                                         plan.ctx.combiner, plan.ctx.fm,
                                         topo_.num_hosts(), protocol.get(),
                                         hq, &rig));
  protocol->Start(hq);
  simulator.Run();

  return HarvestResult(simulator, simulator.metrics(), *protocol, spec,
                       config, plan.d_hat, hq);
}

Status QueryEngine::CheckSession(const sim::SimulatorSession& session,
                                 const RunConfig& config) const {
  if (!session.topology().SameAs(topo_)) {
    return Status::InvalidArgument(
        "session was built over a different topology than this engine");
  }
  const sim::SimOptions& built = session.simulator().options();
  if (built.delta != config.sim_options.delta ||
      built.medium != config.sim_options.medium ||
      built.heartbeat_interval != config.sim_options.heartbeat_interval) {
    return Status::InvalidArgument(
        "session structural sim options (delta, medium, heartbeat) do not "
        "match the run config");
  }
  return Status::Ok();
}

StatusOr<QueryResult> QueryEngine::Run(sim::SimulatorSession* session,
                                       const QuerySpec& spec,
                                       const RunConfig& config,
                                       HostId hq) const {
  VALIDITY_CHECK(session != nullptr);
  if (Status status = CheckSession(*session, config); !status.ok()) {
    return status;
  }
  RunPlan plan;
  if (Status status = PlanRun(spec, config, hq, &plan); !status.ok()) {
    return status;
  }

  session->Reset();
  sim::Simulator& simulator = session->simulator();
  simulator.set_failure_detection(plan.failure_detection);
  simulator.set_max_events(config.sim_options.max_events);
  if (ShouldInstallLinkFaults(config.fault)) {
    simulator.InstallFaults(&config.fault);
  }
  ScheduleConfiguredChurn(&simulator, config, plan.d_hat, hq);

  std::unique_ptr<protocols::ProtocolBase> protocol =
      AcquireSessionProtocol(session, config.protocol, plan);
  ByzantineRig rig;
  simulator.AttachProgram(MaybeInterpose(config.protocol, config.fault,
                                         plan.ctx.combiner, plan.ctx.fm,
                                         topo_.num_hosts(), protocol.get(),
                                         hq, &rig));
  protocol->Start(hq);
  simulator.Run();

  QueryResult result = HarvestResult(simulator, simulator.metrics(),
                                     *protocol, spec, config, plan.d_hat, hq);
  simulator.AttachProgram(nullptr);
  simulator.InstallFaults(nullptr);
  session->ParkProgram(static_cast<uint32_t>(config.protocol),
                       std::move(protocol));
  return result;
}

std::unique_ptr<protocols::ProtocolBase> QueryEngine::AcquireSessionProtocol(
    sim::SimulatorSession* session, protocols::ProtocolKind kind,
    const RunPlan& plan) const {
  if (std::unique_ptr<sim::HostProgram> parked =
          session->TakeParkedProgram(static_cast<uint32_t>(kind))) {
    std::unique_ptr<protocols::ProtocolBase> protocol(
        static_cast<protocols::ProtocolBase*>(parked.release()));
    protocols::ResetProtocol(protocol.get(), kind, plan.ctx,
                             plan.protocol_options);
    return protocol;
  }
  return protocols::MakeProtocol(kind, &session->simulator(), plan.ctx,
                                 plan.protocol_options);
}

StatusOr<std::vector<QueryResult>> QueryEngine::RunConcurrent(
    sim::SimulatorSession* session,
    const std::vector<ConcurrentQuery>& queries) const {
  VALIDITY_CHECK(session != nullptr);
  if (queries.empty()) return std::vector<QueryResult>();

  std::vector<RunPlan> plans(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (Status status = CheckSession(*session, queries[i].config);
        !status.ok()) {
      return status;
    }
    if (!std::isfinite(queries[i].start_at) || queries[i].start_at < 0.0) {
      return Status::InvalidArgument(
          "concurrent query start times must be finite and >= 0");
    }
    if (Status status = PlanRun(queries[i].spec, queries[i].config,
                                queries[i].hq, &plans[i]);
        !status.ok()) {
      return status;
    }
  }

  // One shared timeline: the network dynamics every query observes must be
  // identical, so the churn schedule (and everything it derives from) has
  // to agree across the batch.
  const RunConfig& base = queries[0].config;
  for (size_t i = 1; i < queries.size(); ++i) {
    const RunConfig& config = queries[i].config;
    if (config.churn_removals != base.churn_removals ||
        config.churn_seed != base.churn_seed ||
        config.churn_start_frac != base.churn_start_frac ||
        config.churn_end_frac != base.churn_end_frac) {
      return Status::InvalidArgument(
          "concurrent queries share one network timeline and must agree on "
          "the churn schedule");
    }
    if (!(config.fault == base.fault)) {
      return Status::InvalidArgument(
          "concurrent queries share one network timeline and must agree on "
          "the fault plane");
    }
    if (base.churn_removals > 0 &&
        (plans[i].d_hat != plans[0].d_hat || queries[i].hq != queries[0].hq)) {
      return Status::InvalidArgument(
          "churned concurrent queries must share D-hat and the querying "
          "host (the churn window and the protected host derive from them)");
    }
  }

  session->Reset();
  sim::Simulator& simulator = session->simulator();
  bool failure_detection = false;
  // Event budgets guard a whole timeline, and this timeline carries every
  // query of the batch: take the largest finite budget, but let any
  // query's 0 ("unlimited") win — a finite batch-mate must not abort a
  // query that asked for no limit.
  uint64_t max_events = 0;
  bool unlimited = false;
  for (size_t i = 0; i < queries.size(); ++i) {
    failure_detection = failure_detection || plans[i].failure_detection;
    uint64_t budget = queries[i].config.sim_options.max_events;
    if (budget == 0) unlimited = true;
    max_events = std::max(max_events, budget);
  }
  simulator.set_failure_detection(failure_detection);
  simulator.set_max_events(unlimited ? 0 : max_events);
  if (ShouldInstallLinkFaults(base.fault)) {
    simulator.InstallFaults(&base.fault);
  }
  ScheduleConfiguredChurn(&simulator, base, plans[0].d_hat, queries[0].hq);

  struct Lane {
    std::unique_ptr<protocols::ProtocolBase> protocol;
    uint32_t park_key = 0;
    sim::Metrics* metrics = nullptr;
    // Per-lane byzantine interposition: each lane wraps its own protocol
    // (protecting its own hq, caching its own stale replays), so a lane's
    // behavior is bit-identical to its solo run.
    ByzantineRig rig;
  };
  std::vector<Lane> lanes(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    Lane& lane = lanes[i];
    lane.park_key = static_cast<uint32_t>(queries[i].config.protocol);
    lane.protocol =
        AcquireSessionProtocol(session, queries[i].config.protocol, plans[i]);
    lane.metrics = session->AcquireMetrics();
    session->mux().Register(
        lane.protocol->instance_id(),
        MaybeInterpose(queries[i].config.protocol, queries[i].config.fault,
                       plans[i].ctx.combiner, plans[i].ctx.fm,
                       topo_.num_hosts(), lane.protocol.get(), queries[i].hq,
                       &lane.rig));
    simulator.AttachInstanceMetrics(lane.protocol->instance_id(),
                                    lane.metrics);
  }

  simulator.AttachProgram(&session->mux());
  // Queries at t=0 start immediately, in batch order; staggered queries are
  // scheduled onto the shared timeline and fire at their start_at, again in
  // batch order among equals (deterministic: equal-time events run in
  // schedule order). A staggered protocol anchors its horizon at its own
  // Start instant, so its behavior matches a solo query issued at that
  // time.
  for (size_t i = 0; i < lanes.size(); ++i) {
    if (queries[i].start_at == 0.0) {
      lanes[i].protocol->Start(queries[i].hq);
    } else {
      protocols::ProtocolBase* protocol = lanes[i].protocol.get();
      simulator.ScheduleAt(queries[i].start_at,
                           [protocol, hq = queries[i].hq] {
                             protocol->Start(hq);
                           });
    }
  }
  simulator.Run();

  std::vector<QueryResult> results;
  results.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    results.push_back(HarvestResult(simulator, *lanes[i].metrics,
                                    *lanes[i].protocol, queries[i].spec,
                                    queries[i].config, plans[i].d_hat,
                                    queries[i].hq, queries[i].start_at));
  }

  simulator.AttachProgram(nullptr);
  simulator.InstallFaults(nullptr);
  for (Lane& lane : lanes) {
    simulator.DetachInstanceMetrics(lane.protocol->instance_id());
    session->mux().Unregister(lane.protocol->instance_id());
    session->ReleaseMetrics(lane.metrics);
    session->ParkProgram(lane.park_key, std::move(lane.protocol));
  }
  return results;
}

std::vector<double> MakeZipfValues(uint32_t num_hosts, uint64_t seed,
                                   int64_t low, int64_t high, double theta) {
  auto zipf = ZipfGenerator::Make(low, high, theta);
  VALIDITY_CHECK(zipf.ok(), "bad zipf parameters");
  Rng rng(seed);
  std::vector<double> values(num_hosts);
  for (double& v : values) {
    v = static_cast<double>(zipf->Sample(&rng));
  }
  return values;
}

}  // namespace validity::core
