#include "core/engine.h"

#include <algorithm>
#include <cmath>

#include "common/zipf.h"
#include "sim/churn.h"
#include "topology/algorithms.h"

namespace validity::core {

QueryEngine::QueryEngine(const topology::Graph* graph,
                         std::vector<double> values)
    : graph_(graph), values_(std::move(values)) {
  VALIDITY_CHECK(graph_ != nullptr);
  VALIDITY_CHECK(values_.size() >= graph_->num_hosts(),
                 "need one value per host (%zu < %u)", values_.size(),
                 graph_->num_hosts());
}

uint32_t QueryEngine::EstimatedDiameter() const {
  std::call_once(diameter_once_, [this] {
    Rng rng(0xd1a4e7e5u);
    cached_diameter_ = topology::EstimateDiameter(*graph_, /*sweeps=*/4, &rng);
  });
  return cached_diameter_;
}

StatusOr<QueryResult> QueryEngine::Run(const QuerySpec& spec,
                                       const RunConfig& config,
                                       HostId hq) const {
  if (hq >= graph_->num_hosts()) {
    return Status::OutOfRange("querying host out of range");
  }
  if (spec.fm_vectors == 0) {
    return Status::InvalidArgument("fm_vectors must be >= 1");
  }
  if (config.churn_removals >= graph_->num_hosts()) {
    return Status::InvalidArgument("cannot remove every host");
  }
  if (config.protocol == protocols::ProtocolKind::kRandomizedReport &&
      spec.aggregate != AggregateKind::kCount &&
      spec.aggregate != AggregateKind::kSum) {
    return Status::InvalidArgument(
        "randomized-report answers count/sum queries only");
  }

  double d_hat = spec.d_hat;
  if (d_hat <= 0.0) {
    d_hat = static_cast<double>(EstimatedDiameter()) + kDefaultDiameterMargin;
  }

  sim::SimOptions sim_options = config.sim_options;
  // The tree/DAG baselines track child liveness through heartbeats.
  if (config.protocol == protocols::ProtocolKind::kSpanningTree ||
      config.protocol == protocols::ProtocolKind::kDag) {
    sim_options.failure_detection = true;
  }
  sim::Simulator simulator(*graph_, sim_options);

  SimTime horizon = 2.0 * d_hat * sim_options.delta;
  if (config.churn_removals > 0) {
    Rng churn_rng(config.churn_seed);
    auto events = sim::MakeUniformChurn(
        graph_->num_hosts(), hq, config.churn_removals,
        config.churn_start_frac * horizon, config.churn_end_frac * horizon,
        &churn_rng);
    sim::ScheduleChurn(&simulator, events);
  }

  protocols::QueryContext ctx;
  ctx.aggregate = spec.aggregate;
  ctx.combiner =
      protocols::CombinerFor(spec.aggregate, spec.exact_combiners);
  ctx.fm.num_vectors = spec.fm_vectors;
  ctx.d_hat = d_hat;
  ctx.sketch_seed = config.sketch_seed;
  ctx.values = &values_;

  protocols::RandomizedReportOptions randomized = config.protocol_options.randomized;
  if (config.protocol == protocols::ProtocolKind::kRandomizedReport &&
      randomized.p_override == 0.0 && randomized.n_estimate <= 1.0) {
    randomized.n_estimate = static_cast<double>(graph_->num_hosts());
  }
  protocols::ProtocolOptions protocol_options = config.protocol_options;
  protocol_options.randomized = randomized;

  std::unique_ptr<protocols::ProtocolBase> protocol = protocols::MakeProtocol(
      config.protocol, &simulator, ctx, protocol_options);
  simulator.AttachProgram(protocol.get());
  protocol->Start(hq);
  simulator.Run();

  QueryResult result;
  result.value = protocol->result().value;
  result.declared = protocol->result().declared;
  result.d_hat_used = d_hat;
  result.resident_state_bytes = protocol->ResidentStateBytes();

  const sim::Metrics& metrics = simulator.metrics();
  result.cost.messages = metrics.messages_sent();
  result.cost.bytes = metrics.bytes_sent();
  result.cost.max_processed = metrics.MaxProcessed();
  result.cost.declared_at = protocol->result().declared_at;
  result.cost.last_update_at = protocol->result().last_update_at;
  result.cost.sends_per_tick = metrics.SendsPerTick();
  result.cost.computation_histogram = metrics.ComputationCostDistribution();

  // The ORACLE and the exact full aggregate read ground truth for the whole
  // network; million-host callers that touch a small disc skip them.
  if (config.compute_validity) {
    protocols::OracleReport oracle = protocols::ComputeOracle(
        simulator, hq, /*t_begin=*/0.0, /*t_end=*/horizon, spec.aggregate,
        values_);
    result.validity.q_low = oracle.q_low;
    result.validity.q_high = oracle.q_high;
    result.validity.hc_size = oracle.hc.size();
    result.validity.hu_size = oracle.hu.size();
    result.validity.within = result.declared && oracle.Contains(result.value);
    result.validity.within_slack =
        result.declared && oracle.ContainsWithin(result.value,
                                                 kApproxSlackFactor);

    std::vector<HostId> everyone(graph_->num_hosts());
    for (HostId h = 0; h < graph_->num_hosts(); ++h) everyone[h] = h;
    result.exact_full = ExactAggregate(spec.aggregate, values_, everyone);
  }
  return result;
}

std::vector<double> MakeZipfValues(uint32_t num_hosts, uint64_t seed,
                                   int64_t low, int64_t high, double theta) {
  auto zipf = ZipfGenerator::Make(low, high, theta);
  VALIDITY_CHECK(zipf.ok(), "bad zipf parameters");
  Rng rng(seed);
  std::vector<double> values(num_hosts);
  for (double& v : values) {
    v = static_cast<double>(zipf->Sample(&rng));
  }
  return values;
}

}  // namespace validity::core
