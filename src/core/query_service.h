// QueryService: the open query-arrival layer (ROADMAP item 2).
//
// RunConcurrent serves a closed batch known up front; production traffic is
// an open stream. A QueryService owns one long-lived churning timeline (a
// SimulatorSession) onto which queries are *submitted* at arbitrary
// simulated times, admitted to a bounded set of instance lanes (the
// kInstanceTagShift tagging + per-query Metrics lanes RunConcurrent
// introduced), and completed through a poll/callback API as the timeline
// advances.
//
// Determinism contract (docs/SERVICE.md, tests/query_service_test.cc):
// every completed query's QueryResult is bit-identical, field for field, to
// a solo run of the same query issued at the same start time —
// QueryEngine::Run for queries started at t=0, a single-query staggered
// RunConcurrent otherwise. The recorded ArrivalTrace replayed into a fresh
// service reproduces the live run exactly. This extends the
// fresh == session-reused == concurrent fingerprint matrix with a fourth
// column, `service`.
//
// How a lane stays solo-identical while being recycled:
//
//  - Admission and deferred starts happen *inside scheduled events*, so
//    they are part of the deterministic timeline: an arrival event fires at
//    submit_time; if all lanes are busy the query joins a FIFO queue and
//    starts inside the retirement event that frees a lane. Equal-time
//    events run in schedule order (the calendar queue's per-bucket FIFO),
//    so ties are deterministic too.
//
//  - A lane retires at a conservative, protocol-aware *quiescence bound*
//    computed from the query's plan (horizon 2*D-hat*delta, plus fault
//    delay tails, the heartbeat-detection + eager-convergecast cascade for
//    tree/DAG, and gossip's fixed round ladder). Until that instant the
//    lane's protocol, mux registration, and metrics lane stay attached, so
//    every late delivery is routed and charged exactly as in the solo run.
//    Harvesting at the bound is equivalent to harvesting at end-of-run: the
//    oracle reads only liveness inside [start, start + horizon], which is
//    fully executed by then.
//
//  - The network dynamics are properties of the *timeline*, not of a query:
//    churn schedule and fault plane come from ServiceOptions, are armed
//    once at construction, and every submitted config must agree with them
//    (the same validation RunConcurrent applies to a batch). Failure
//    detection is always on — detect events are uncharged and ignored by
//    protocols that do not subscribe, so solo runs without it still match.
//
// Sessions are single-threaded, and so is a service. For sweep-style
// service benchmarks across worker threads, give each worker its own
// service over a sim::SessionPool lane (sim/session.h).

#ifndef VALIDITY_CORE_QUERY_SERVICE_H_
#define VALIDITY_CORE_QUERY_SERVICE_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "core/run_internal.h"

namespace validity::core {

/// Timeline-level configuration: everything shared by all queries a service
/// will ever run. The churn fields mirror RunConfig's; submitted configs
/// must carry identical values (Submit validates), exactly as concurrent
/// batch members must.
struct ServiceOptions {
  /// Structural simulator knobs (delta, medium, heartbeat). The per-query
  /// fields are owned by the service: failure_detection is forced on for
  /// the timeline's lifetime, max_events below is the event budget.
  sim::SimOptions sim_options;

  /// Admission: at most this many queries in flight at once; later arrivals
  /// wait in a FIFO deferred queue and start when a lane retires.
  uint32_t max_in_flight = 8;

  /// Event budget for the whole timeline (0 = unlimited). Per-query
  /// sim_options.max_events must be 0 or equal to this.
  uint64_t max_events = 0;

  // --- timeline dynamics (the RunConfig churn/fault fields) -------------
  uint32_t churn_removals = 0;
  double churn_start_frac = 0.0;
  double churn_end_frac = 1.0;
  uint64_t churn_seed = 1;
  /// D-hat the churn window derives from (horizon 2 * churn_d_hat * delta).
  /// 0 = the engine's estimated diameter + kDefaultDiameterMargin — the
  /// same resolution PlanRun applies to a query with spec.d_hat == 0.
  /// Churned queries must plan to exactly this value (Submit validates).
  double churn_d_hat = 0.0;
  /// The host churn protects; churned queries must use it as hq.
  HostId churn_hq = 0;
  sim::FaultSpec fault;
};

/// One recorded submission. A trace is the complete input of a service run:
/// replaying it into a fresh service reproduces every result bit-for-bit.
struct Arrival {
  SimTime submit_time = 0.0;
  QuerySpec spec;
  RunConfig config;
  HostId hq = 0;
};

struct ArrivalTrace {
  std::vector<Arrival> arrivals;
};

/// Derives the ServiceOptions under which `config` is admissible: the
/// timeline fields are copied from the query's own config (the common
/// single-profile pattern in tests and benches). churn_d_hat comes from
/// spec.d_hat (0 = auto, matching PlanRun's resolution).
ServiceOptions ServiceOptionsFor(const QuerySpec& spec,
                                 const RunConfig& config, HostId hq);

class QueryService {
 public:
  using QueryId = uint64_t;

  struct Completion {
    QueryId id = 0;
    SimTime submitted_at = 0.0;
    /// When the query was admitted to a lane (== submitted_at unless it
    /// waited in the deferred queue). The solo-equivalence anchor.
    SimTime started_at = 0.0;
    /// When the lane retired (the quiescence bound, not declared_at).
    SimTime retired_at = 0.0;
    QueryResult result;
  };

  /// Service over its own session built from `engine`'s topology and
  /// `options.sim_options`. `engine` must outlive the service.
  QueryService(const QueryEngine* engine, const ServiceOptions& options);

  /// Service over a borrowed session (e.g. a sim::SessionPool lane). The
  /// session must be built over `engine`'s topology with structural options
  /// matching `options.sim_options`; it is Reset() here — the service owns
  /// its epochs until destruction. Both must outlive the service.
  QueryService(const QueryEngine* engine, sim::SimulatorSession* session,
               const ServiceOptions& options);

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;
  ~QueryService();

  /// Submits a query arriving at `submit_time` (simulated; must be >= the
  /// timeline's current time). Validates like RunConcurrent: structural sim
  /// options must match the session, the config's churn/fault fields must
  /// equal the timeline's, and churned queries must plan to the timeline's
  /// D-hat and hq. The query starts at submit_time if a lane is free, else
  /// when one retires (FIFO). Recorded in trace().
  StatusOr<QueryId> Submit(SimTime submit_time, const QuerySpec& spec,
                           const RunConfig& config, HostId hq);

  /// Withdraws a query. Scheduled/deferred queries simply never start. A
  /// running query's lane is detached immediately — its in-flight traffic
  /// is dropped by the mux from now on — but the lane slot frees at the
  /// query's original retirement instant, keeping admission transitions on
  /// scheduled events (deterministic). Cancellation is an external control
  /// action: it is NOT recorded in the ArrivalTrace, so a replayed trace
  /// reproduces submissions, not cancellations. NotFound if the id is
  /// unknown or already completed.
  Status Cancel(QueryId id);

  /// Advances the shared timeline. Completions become pollable (and the
  /// callback fires) as retirement events execute.
  void RunUntil(SimTime t);
  /// Runs the timeline dry: every submitted query completes (or was
  /// cancelled) when this returns.
  void Drain();

  /// Pops the oldest unconsumed completion; false if none. Completions
  /// surface in retirement order.
  bool Poll(Completion* out);
  /// Optional push interface: invoked inside the retirement event, before
  /// the completion becomes pollable. Callbacks may Submit follow-up
  /// queries (at times >= now) but must not re-enter Run/Drain/Reset.
  void set_on_completion(std::function<void(const Completion&)> callback);

  /// Abandons everything — pending arrivals, deferred queue, running lanes,
  /// unconsumed completions, the recorded trace — and rewinds the timeline
  /// to t=0 (a fresh session epoch, O(touched)). Warm protocol instances
  /// and metrics lanes are kept parked for reuse.
  void Reset();

  /// Replays a recorded trace into a fresh service over `engine` and drains
  /// it. Returns the completions in *arrival order* (trace order), each
  /// bit-identical to the corresponding live-run completion.
  static StatusOr<std::vector<Completion>> Replay(const QueryEngine& engine,
                                                  const ServiceOptions& options,
                                                  const ArrivalTrace& trace);

  // --- introspection ----------------------------------------------------

  SimTime Now() const;
  const ServiceOptions& options() const { return options_; }
  const ArrivalTrace& trace() const { return trace_; }
  sim::SimulatorSession& session() { return *session_; }
  /// The resolved churn D-hat (after the 0 = auto resolution).
  double churn_d_hat() const { return churn_d_hat_; }

  /// Lanes currently occupied (includes cancelled lanes until their
  /// retirement instant frees the slot).
  uint32_t in_flight() const { return in_flight_; }
  /// High-water mark of in_flight() — never exceeds max_in_flight.
  uint32_t peak_in_flight() const { return peak_in_flight_; }
  size_t deferred() const { return deferred_.size(); }
  uint64_t submitted() const { return submitted_; }
  uint64_t completed() const { return completed_; }
  uint64_t cancelled() const { return cancelled_; }

 private:
  enum class Phase : uint8_t { kScheduled, kDeferred, kRunning, kCancelled };

  /// Everything the service tracks per submitted query; stable address
  /// (unique_ptr in the map) because the fault interposer and the arrival/
  /// retire closures point into it.
  struct QueryState {
    QueryId id = 0;
    Arrival arrival;
    QueryEngine::RunPlan plan;
    Phase phase = Phase::kScheduled;
    SimTime started_at = 0.0;
    SimTime retire_at = 0.0;
    // Lane machinery, live while running:
    std::unique_ptr<protocols::ProtocolBase> protocol;
    sim::Metrics* metrics = nullptr;
    internal::ByzantineRig rig;
  };

  /// Arms the timeline on a pristine session epoch: failure detection,
  /// event budget, fault plane, churn schedule, mux attachment.
  void ArmTimeline();
  void OnArrival(QueryId id);
  void StartLane(QueryState* q);
  void OnRetire(QueryId id);
  /// Returns the lane's routing and accounting attachments to the session
  /// (metrics released, protocol parked). The slot itself frees in OnRetire.
  void DetachLane(QueryState* q);
  /// The deterministic quiescence bound: no event of this lane can execute
  /// at or after the returned instant.
  SimTime RetireTimeFor(const QueryState& q, SimTime started) const;

  const QueryEngine* engine_;
  std::unique_ptr<sim::SimulatorSession> owned_session_;
  sim::SimulatorSession* session_;
  ServiceOptions options_;
  double churn_d_hat_ = 0.0;
  /// Absolute end of the timeline's churn window (0 without churn).
  SimTime churn_end_time_ = 0.0;

  QueryId next_id_ = 1;
  // NOLINT-DETERMINISM(unordered-container): keyed lookup per arrival/
  // completion; the only iterations are the ~QueryService/Reset teardown
  // walks, which are annotated order-independent at the loop sites.
  std::unordered_map<QueryId, std::unique_ptr<QueryState>> queries_;
  std::deque<QueryId> deferred_;
  std::deque<Completion> completions_;
  std::function<void(const Completion&)> on_completion_;
  ArrivalTrace trace_;
  /// False until the first RunUntil/Drain: t=0 submissions before then
  /// start synchronously, mirroring RunConcurrent's pre-loop Start path.
  bool timeline_started_ = false;

  uint32_t in_flight_ = 0;
  uint32_t peak_in_flight_ = 0;
  uint64_t submitted_ = 0;
  uint64_t completed_ = 0;
  uint64_t cancelled_ = 0;
};

}  // namespace validity::core

#endif  // VALIDITY_CORE_QUERY_SERVICE_H_
