#include "sim/trace.h"

#include <cstdio>

namespace validity::sim {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSend:
      return "send";
    case TraceEventKind::kDeliver:
      return "deliver";
    case TraceEventKind::kDrop:
      return "drop";
    case TraceEventKind::kFail:
      return "fail";
    case TraceEventKind::kJoin:
      return "join";
  }
  return "?";
}

void TraceRecorder::Record(TraceEvent event) {
  if (events_.size() >= capacity_) {
    ++overflowed_;
    return;
  }
  events_.push_back(event);
}

std::vector<TraceEvent> TraceRecorder::Filter(
    const std::function<bool(const TraceEvent&)>& pred) const {
  std::vector<TraceEvent> out;
  for (const TraceEvent& e : events_) {
    if (pred(e)) out.push_back(e);
  }
  return out;
}

size_t TraceRecorder::CountOf(TraceEventKind kind) const {
  size_t n = 0;
  for (const TraceEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

void TraceRecorder::Dump(std::ostream& os) const {
  char line[128];
  for (const TraceEvent& e : events_) {
    std::snprintf(line, sizeof(line), "t=%-8.2f %-8s %u -> %u kind=0x%x\n",
                  e.time, TraceEventKindName(e.kind), e.src, e.dst,
                  e.message_kind);
    os << line;
  }
  if (overflowed_ > 0) {
    os << "(+" << overflowed_ << " events beyond capacity)\n";
  }
}

void TraceRecorder::Clear() {
  events_.clear();
  overflowed_ = 0;
}

}  // namespace validity::sim
