// SimulatorSession: a cached per-graph simulator with O(touched) inter-query
// reset and multi-query routing.
//
// Building a Simulator is O(network): CSR adjacency, liveness tables, and
// per-host metrics all scale with num_hosts. Protocol-side cost has been
// disc-proportional since the state was paged, so on million-host graphs
// the O(n) build dominates every query (BM_MillionHostActivation). A
// session amortizes it: the graph-derived structures are built once, and
// everything mutable per run — pending events, message slab references,
// liveness flags flipped by churn, hosts joined at runtime, metrics —
// resets between queries by draining dirty lists, in time proportional to
// what the previous query touched (see Simulator::Reset).
//
// Each reset starts a new *epoch*. Protocol per-host state participates via
// the epoch counters inside PagedStates (common/paged_state.h): a protocol
// re-armed with ResetForQuery keeps its warm pages and body pools, and the
// second query on a cached 10^6-host session costs ≈disc time instead of
// the ≈0.1 s rebuild (BM_MillionHostSecondQuery).
//
// Multi-query concurrency: message kinds and timer ids carry their protocol
// instance's id in the upper bits (message.h's kInstanceTagShift), so N
// query programs can share one simulator timeline. QueryProgramMux routes
// callbacks to the owning instance, and Simulator::AttachInstanceMetrics
// routes each instance's cost accounting to its own Metrics lane. The
// contract — fresh construction, session reuse, and concurrent execution
// all produce bit-identical per-query results — is documented in
// docs/SESSIONS.md and enforced by tests/session_test.cc.
//
// Sessions are single-threaded objects (one session per thread; the sweep
// driver gives every worker its own). The graph must outlive the session.

#ifndef VALIDITY_SIM_SESSION_H_
#define VALIDITY_SIM_SESSION_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "sim/metrics.h"
#include "sim/simulator.h"
#include "topology/topology.h"

namespace validity::sim {

/// Demultiplexes one simulator's callbacks to N concurrently-running query
/// programs by the instance tag in message kinds / timer ids. Traffic whose
/// tag matches no registered program (stale epochs, detached queries) is
/// dropped, exactly as a lone protocol's DecodeKind would drop it.
class QueryProgramMux : public HostProgram {
 public:
  void Register(uint32_t instance_id, HostProgram* program);
  void Unregister(uint32_t instance_id);
  void Clear() { entries_.clear(); }
  size_t size() const { return entries_.size(); }

  void OnMessage(HostId self, const Message& msg) override;
  void OnTimer(HostId self, uint64_t timer_id) override;
  /// Failure detection is a property of the shared network, not of one
  /// query: every registered program hears about it.
  void OnNeighborFailure(HostId self, HostId failed) override;

 private:
  HostProgram* Lookup(uint32_t instance_id) const;

  struct Entry {
    uint32_t instance_id;
    HostProgram* program;
  };
  std::vector<Entry> entries_;
};

class SimulatorSession {
 public:
  /// Builds the one simulator this session will reuse — O(network) for
  /// graph-backed topologies, O(1)-ish for implicit ones (grid/ring/torus),
  /// which never materialize adjacency or liveness tables at all. For
  /// kGraph topologies the underlying graph must outlive the session.
  /// `options.failure_detection` and `options.max_events` are per-query
  /// knobs the engine retunes on every run; the structural options (delta,
  /// medium, heartbeat_interval, materialize_adjacency) are fixed for the
  /// session's lifetime.
  SimulatorSession(topology::Topology topology, SimOptions options);

  /// Convenience over a materialized graph (must outlive the session).
  SimulatorSession(const topology::Graph* graph, SimOptions options);

  SimulatorSession(const SimulatorSession&) = delete;
  SimulatorSession& operator=(const SimulatorSession&) = delete;

  const topology::Topology& topology() const { return topo_; }
  /// The materialized graph (kGraph topologies only).
  const topology::Graph& graph() const {
    VALIDITY_CHECK(topo_.graph() != nullptr,
                   "session over an implicit topology has no graph");
    return *topo_.graph();
  }
  Simulator& simulator() { return sim_; }
  const Simulator& simulator() const { return sim_; }
  QueryProgramMux& mux() { return mux_; }

  /// Epochs completed so far; bumped by every Reset().
  uint64_t epoch() const { return epoch_; }

  /// Starts a new epoch: the simulator returns to its pristine t=0 state
  /// (Simulator::Reset, O(touched)), and any programs registered with the
  /// mux are dropped. Call before issuing the next query (or batch of
  /// concurrent queries).
  void Reset();

  /// Borrows a per-query metrics lane for concurrent runs. Lanes are
  /// constructed once (O(network)) and reset on acquisition (O(touched)),
  /// so a session settles on one lane per concurrent query slot.
  Metrics* AcquireMetrics();
  void ReleaseMetrics(Metrics* metrics);

  /// Parking lot for reusable per-query objects that must survive between
  /// epochs — the engine parks protocol instances here, keyed by protocol
  /// kind, so their warm state pages and body pools carry to the next query
  /// on this session. Take returns nullptr when nothing is parked under
  /// `key`; several objects may be parked under one key (concurrent queries
  /// of the same protocol).
  std::unique_ptr<HostProgram> TakeParkedProgram(uint32_t key);
  void ParkProgram(uint32_t key, std::unique_ptr<HostProgram> program);

 private:
  topology::Topology topo_;
  Simulator sim_;
  QueryProgramMux mux_;
  uint64_t epoch_ = 0;
  std::vector<std::unique_ptr<Metrics>> metrics_lanes_;
  std::vector<Metrics*> metrics_free_;
  std::vector<std::pair<uint32_t, std::unique_ptr<HostProgram>>> parked_;
};

/// A thread-safe pool of warm session lanes over one shared topology.
///
/// Sessions are single-threaded, so multi-threaded drivers (the sweep
/// runner, service throughput benches) need one session per worker — but
/// the topology handle itself is immutable and shareable, so the pool
/// stores it once. Implicit topologies make each lane O(1)-ish to build;
/// graph-backed ones pay the O(network) build once per lane and then reuse
/// it for every query that worker runs.
///
/// Acquire/Release only hand lanes out and back under a mutex; all actual
/// simulation happens on the acquired lane, single-threaded, with no
/// cross-lane sharing. A released lane keeps its warm state (parked
/// protocols, metrics lanes, paged tables) for the next borrower.
class SessionPool {
 public:
  /// `options` is the structural profile every lane is built with. For
  /// kGraph topologies the underlying graph must outlive the pool.
  SessionPool(topology::Topology topology, SimOptions options);
  SessionPool(const topology::Graph* graph, SimOptions options);

  SessionPool(const SessionPool&) = delete;
  SessionPool& operator=(const SessionPool&) = delete;

  /// Returns a free lane, building a new one if all are out. The caller
  /// owns the lane (single-threaded use) until Release.
  SimulatorSession* Acquire();
  /// Returns a lane to the pool. The lane keeps its warm state; the next
  /// Acquire may hand it to a different thread (Reset() it per query as
  /// usual — the engine's session overloads already do).
  void Release(SimulatorSession* session);

  /// Lanes constructed so far (== high-water mark of concurrent borrowers).
  size_t size() const;
  const topology::Topology& topology() const { return topo_; }
  const SimOptions& options() const { return options_; }

 private:
  topology::Topology topo_;
  SimOptions options_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<SimulatorSession>> lanes_;
  std::vector<SimulatorSession*> free_;
};

/// RAII lease on a pool lane.
class SessionLease {
 public:
  explicit SessionLease(SessionPool* pool)
      : pool_(pool), session_(pool->Acquire()) {}
  ~SessionLease() { pool_->Release(session_); }
  SessionLease(const SessionLease&) = delete;
  SessionLease& operator=(const SessionLease&) = delete;

  SimulatorSession* get() { return session_; }
  SimulatorSession& operator*() { return *session_; }
  SimulatorSession* operator->() { return session_; }

 private:
  SessionPool* pool_;
  SimulatorSession* session_;
};

}  // namespace validity::sim

#endif  // VALIDITY_SIM_SESSION_H_
