// Churn schedules: scripted host departures/arrivals (paper §6.2).
//
// The evaluation removes "a total of R randomly selected hosts from G at a
// uniform rate during [t0, tn]" and does not model joins (hosts joining
// after Broadcast may or may not be counted under SSV, so they add nothing
// to the validity question). Joins are nevertheless supported for the
// continuous-query extensions.

#ifndef VALIDITY_SIM_CHURN_H_
#define VALIDITY_SIM_CHURN_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace validity::sim {

struct ChurnEvent {
  SimTime time;
  HostId host;
};

/// R distinct hosts drawn uniformly from [0, num_hosts) \ {protect}, failed
/// at evenly spaced (fractional) times across [start, end]. Requires
/// removals < num_hosts.
std::vector<ChurnEvent> MakeUniformChurn(uint32_t num_hosts, HostId protect,
                                         uint32_t removals, SimTime start,
                                         SimTime end, Rng* rng);

/// Session-length model: every host except `protect` draws an exponential
/// lifetime with the given mean; failures beyond `horizon` are dropped.
/// Returns the events sorted by time. Prefer
/// ScheduleExponentialLifetimeChurn when the events go straight onto a
/// simulator — it skips this function's O(n log n) sort and O(n) vector.
std::vector<ChurnEvent> MakeExponentialLifetimeChurn(uint32_t num_hosts,
                                                     HostId protect,
                                                     double mean_lifetime,
                                                     SimTime horizon, Rng* rng);

/// Draws the same lifetimes as MakeExponentialLifetimeChurn (identical RNG
/// consumption, so the two are interchangeable under one seed) but feeds
/// each failure directly to the simulator's calendar heap, which orders
/// events itself — no intermediate vector, no up-front sort. Returns the
/// number of failures scheduled.
uint32_t ScheduleExponentialLifetimeChurn(Simulator* sim, HostId protect,
                                          double mean_lifetime,
                                          SimTime horizon, Rng* rng);

/// Installs every event onto the simulator's queue.
void ScheduleChurn(Simulator* sim, const std::vector<ChurnEvent>& events);

}  // namespace validity::sim

#endif  // VALIDITY_SIM_CHURN_H_
