// Deterministic fault plane: lossy links and byzantine hosts.
//
// The paper's guarantees assume links deliver what they carry and hosts
// follow the protocol; this subsystem is the controlled way to break both
// assumptions (ROADMAP item 5) while keeping every run bit-reproducible.
//
// Two independent mechanisms compose:
//
//  - Link faults (drop / duplicate / bounded extra delay) live inside the
//    Simulator's send paths. Each in-flight delivery's fate is a pure
//    function of (FaultSpec.seed, from, to, send_time, channel) — a
//    stateless hash, exactly the seeding discipline core/sweep.h uses for
//    churn. No counter, no RNG stream: the same message on the same link at
//    the same instant meets the same fate whether the run is fresh,
//    session-reused, or multiplexed with concurrent queries, at any sweep
//    thread count. (A per-link message counter would look more natural but
//    breaks exactly that contract: a concurrent lane's extra traffic would
//    advance the counter and change a solo query's fates. Likewise hashing
//    the protocol instance id would break fresh == session-reused, since
//    instance ids are process-global. The cost of statelessness is that
//    messages sharing (link, instant, channel) share a fate — correlated
//    momentary link conditions, which is the model we document.)
//
//  - Byzantine hosts corrupt traffic at the receiver's doorstep: a
//    ByzantineInterposer wraps the protocol's HostProgram and rewrites (or
//    suppresses) messages whose *sender* hashes into the byzantine subset.
//    Protocol internals are untouched; the interposer edits a copy of the
//    message through a protocol-aware ByzantineMutator
//    (protocols/byzantine.h supplies the standard one).
//
// With no FaultSpec installed the simulator's hot send path pays a single
// predicted-not-taken null test (see Simulator::SendTo) and remains
// allocation-free; tests/alloc_free_test.cc and BENCH_micro.json pin this.

#ifndef VALIDITY_SIM_FAULT_H_
#define VALIDITY_SIM_FAULT_H_

#include <cstdint>
#include <string>

#include "sim/simulator.h"

namespace validity::sim {

/// What a deterministic subset of hosts does to the traffic it sends.
enum class ByzantineMode : uint8_t {
  kNone = 0,
  /// Merge phantom contributions into every forwarded aggregate (inflated
  /// FM sketches, extreme scalars, padded exact partials).
  kInflate,
  /// Silently discard reply-channel traffic (convergecast reports, gossip
  /// pushes) while still participating in dissemination.
  kDeadenReplies,
  /// Replay the first payload ever sent per (host, kind) in place of every
  /// later one — stale versions and stale partial aggregates.
  kStaleReplay,
};

const char* ByzantineModeName(ByzantineMode mode);

/// A run's complete fault configuration. Value semantics: RunConfig carries
/// one by value, and concurrent queries on a shared session must agree on it
/// (operator== is the batch-validation hook, like the churn fields).
struct FaultSpec {
  /// Root of every fault decision. Independent of churn_seed/sketch_seed;
  /// sweeps re-mix it per cell (core/experiment.cc) so trials draw
  /// independent fault schedules.
  uint64_t seed = 0;

  // --- link faults ------------------------------------------------------
  /// Probability an in-flight delivery is lost. The send was already
  /// charged — same accounting as a destination dying in flight.
  double drop_rate = 0.0;
  /// Probability a delivery arrives twice (the copy delayed by up to
  /// max_delay_hops extra hops, possibly zero).
  double duplicate_rate = 0.0;
  /// Probability a delivery is late by 1..max_delay_hops extra hops.
  double delay_rate = 0.0;
  /// Extra delay bound, in whole delta hops (0 disables delay faults and
  /// makes duplicates arrive at the original instant).
  uint32_t max_delay_hops = 1;

  // --- byzantine hosts --------------------------------------------------
  ByzantineMode byzantine_mode = ByzantineMode::kNone;
  /// Expected fraction of hosts acting byzantine; membership is a stateless
  /// hash of (seed, host id), so runtime-joined hosts are covered too.
  double byzantine_fraction = 0.0;
  /// kInflate: phantom contributions merged per corrupted message
  /// (0 = one per network host, which roughly doubles a count).
  uint32_t inflate_phantoms = 0;

  /// Testing/benchmarks: hand the fault plane to the simulator even when
  /// every rate is zero, to measure the installed-but-idle path against the
  /// absent path (BM_WildfireCountQueryFaultIdle). An idle spec never arms
  /// the per-delivery fate machinery (Simulator::InstallFaults), so the two
  /// paths must benchmark identically — this knob guards that claim.
  bool install_idle = false;

  bool HasLinkFaults() const {
    return drop_rate > 0 || duplicate_rate > 0 || delay_rate > 0;
  }
  bool HasByzantine() const {
    return byzantine_mode != ByzantineMode::kNone && byzantine_fraction > 0;
  }
  bool enabled() const { return HasLinkFaults() || HasByzantine(); }

  friend bool operator==(const FaultSpec&, const FaultSpec&) = default;
};

/// Human-readable cell label for sweeps and figure tables: "none",
/// "drop=0.10", "drop=0.10+byz-inflate=0.20", ...
std::string FaultSpecLabel(const FaultSpec& spec);

/// The fate of one in-flight delivery.
struct LinkFate {
  bool drop = false;
  bool duplicate = false;
  uint32_t delay_hops = 0;            // extra hops on the primary copy
  uint32_t duplicate_delay_hops = 0;  // extra hops on the duplicate copy
};

/// Pure function of its arguments — see the statelessness discussion above.
/// `channel` is the protocol-local message kind (kind & kLocalKindMask), the
/// per-message discriminator that separates e.g. a broadcast and a reply
/// crossing the same link in the same instant.
LinkFate DecideLinkFate(const FaultSpec& spec, HostId from, HostId to,
                        SimTime send_time, uint32_t channel);

/// Stateless byzantine membership: hash(seed, h) < byzantine_fraction.
bool IsByzantineHost(const FaultSpec& spec, HostId h);

/// Protocol-aware message corruption. Implementations rewrite `msg` in
/// place (it is the interposer's private copy) and return false to suppress
/// the delivery entirely. `msg->body` may be shared with other in-flight
/// deliveries — mutators must install a fresh body, never mutate through
/// the shared reference.
class ByzantineMutator {
 public:
  virtual ~ByzantineMutator() = default;
  virtual bool MutateFromByzantine(HostId src, Message* msg) = 0;
};

/// HostProgram shim slotted between the simulator and a protocol (or a
/// session's QueryProgramMux lane). Messages from byzantine senders are
/// copied, passed through the mutator, and forwarded (or suppressed);
/// everything else is transparent. The query's own hq is always protected:
/// a byzantine headquarters makes every answer trivially invalid, which is
/// not an interesting point on the degradation surface.
class ByzantineInterposer : public HostProgram {
 public:
  /// `spec`, `mutator`, and `inner` must outlive the interposer.
  ByzantineInterposer(const FaultSpec* spec, ByzantineMutator* mutator,
                      HostProgram* inner, HostId protected_host)
      : spec_(spec),
        mutator_(mutator),
        inner_(inner),
        protected_host_(protected_host) {}

  void OnMessage(HostId self, const Message& msg) override;
  void OnTimer(HostId self, uint64_t timer_id) override {
    inner_->OnTimer(self, timer_id);
  }
  void OnNeighborFailure(HostId self, HostId failed) override {
    inner_->OnNeighborFailure(self, failed);
  }

 private:
  const FaultSpec* spec_;
  ByzantineMutator* mutator_;
  HostProgram* inner_;
  HostId protected_host_;
};

}  // namespace validity::sim

#endif  // VALIDITY_SIM_FAULT_H_
