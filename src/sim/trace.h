// Event tracing: an optional recorder that captures sends, deliveries,
// failures, and joins as structured records for debugging, protocol
// visualization, and the walk-through tests (the Example 5.1 trace in the
// test suite is checked against this recorder).

#ifndef VALIDITY_SIM_TRACE_H_
#define VALIDITY_SIM_TRACE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "common/types.h"

namespace validity::sim {

enum class TraceEventKind : uint8_t { kSend, kDeliver, kDrop, kFail, kJoin };

const char* TraceEventKindName(TraceEventKind kind);

struct TraceEvent {
  TraceEventKind kind;
  SimTime time = 0;
  HostId src = kInvalidHost;
  HostId dst = kInvalidHost;
  uint32_t message_kind = 0;
};

/// Bounded in-memory trace. Recording stops silently at `capacity` events
/// (the count of dropped records is reported) so a runaway protocol cannot
/// exhaust memory.
class TraceRecorder {
 public:
  explicit TraceRecorder(size_t capacity = 1 << 20) : capacity_(capacity) {}

  void Record(TraceEvent event);

  const std::vector<TraceEvent>& events() const { return events_; }
  uint64_t overflowed() const { return overflowed_; }

  /// Events matching a predicate (e.g. all deliveries to one host).
  std::vector<TraceEvent> Filter(
      const std::function<bool(const TraceEvent&)>& pred) const;

  /// Number of recorded events of `kind`.
  size_t CountOf(TraceEventKind kind) const;

  /// Human-readable dump: "t=2.0 deliver 1 -> 3 kind=0x201".
  void Dump(std::ostream& os) const;

  void Clear();

 private:
  size_t capacity_;
  std::vector<TraceEvent> events_;
  uint64_t overflowed_ = 0;
};

}  // namespace validity::sim

#endif  // VALIDITY_SIM_TRACE_H_
