#include "sim/churn.h"

#include <algorithm>
#include <cmath>

namespace validity::sim {

std::vector<ChurnEvent> MakeUniformChurn(uint32_t num_hosts, HostId protect,
                                         uint32_t removals, SimTime start,
                                         SimTime end, Rng* rng) {
  VALIDITY_CHECK(removals < num_hosts,
                 "cannot remove %u of %u hosts (querying host survives)",
                 removals, num_hosts);
  VALIDITY_CHECK(end >= start);
  // Draw from [0, num_hosts-1) and shift indices >= protect up by one, so
  // `protect` can never be selected.
  std::vector<uint32_t> raw =
      rng->SampleWithoutReplacement(num_hosts - 1, removals);
  std::vector<ChurnEvent> events;
  events.reserve(removals);
  double span = end - start;
  for (uint32_t i = 0; i < removals; ++i) {
    HostId victim = raw[i] >= protect ? raw[i] + 1 : raw[i];
    // Uniform rate: the i-th departure at the midpoint of its slot. Midpoint
    // times are fractional, so departures never tie with integer-tick
    // message deliveries.
    SimTime t = start + span * (static_cast<double>(i) + 0.5) /
                            static_cast<double>(removals);
    events.push_back(ChurnEvent{t, victim});
  }
  std::sort(events.begin(), events.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              return a.time < b.time;
            });
  return events;
}

namespace {

// The single place that draws session lifetimes: both exponential-churn
// entry points promise identical RNG consumption (churn.h), so they must
// share this loop rather than each copying it.
template <typename Fn>
uint32_t ForEachExponentialFailure(uint32_t num_hosts, HostId protect,
                                   double mean_lifetime, SimTime horizon,
                                   Rng* rng, Fn&& fn) {
  VALIDITY_CHECK(mean_lifetime > 0);
  uint32_t count = 0;
  for (HostId h = 0; h < num_hosts; ++h) {
    if (h == protect) continue;
    double u = rng->NextDouble();
    SimTime lifetime = -mean_lifetime * std::log1p(-u);
    if (lifetime <= horizon) {
      fn(lifetime, h);
      ++count;
    }
  }
  return count;
}

}  // namespace

std::vector<ChurnEvent> MakeExponentialLifetimeChurn(uint32_t num_hosts,
                                                     HostId protect,
                                                     double mean_lifetime,
                                                     SimTime horizon,
                                                     Rng* rng) {
  std::vector<ChurnEvent> events;
  ForEachExponentialFailure(num_hosts, protect, mean_lifetime, horizon, rng,
                            [&](SimTime time, HostId host) {
                              events.push_back(ChurnEvent{time, host});
                            });
  std::sort(events.begin(), events.end(),
            [](const ChurnEvent& a, const ChurnEvent& b) {
              return a.time < b.time;
            });
  return events;
}

uint32_t ScheduleExponentialLifetimeChurn(Simulator* sim, HostId protect,
                                          double mean_lifetime,
                                          SimTime horizon, Rng* rng) {
  return ForEachExponentialFailure(sim->num_hosts(), protect, mean_lifetime,
                                   horizon, rng,
                                   [&](SimTime time, HostId host) {
                                     sim->ScheduleFailure(time, host);
                                   });
}

void ScheduleChurn(Simulator* sim, const std::vector<ChurnEvent>& events) {
  for (const ChurnEvent& e : events) sim->ScheduleFailure(e.time, e.host);
}

}  // namespace validity::sim
