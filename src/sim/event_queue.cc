#include "sim/event_queue.h"

#include <utility>

#include "common/logging.h"

namespace validity::sim {

void EventQueue::ScheduleAt(SimTime t, Action action) {
  VALIDITY_DCHECK(t >= now_, "event scheduled in the past (%f < %f)", t, now_);
  heap_.push(Entry{t, next_seq_++, std::move(action)});
}

bool EventQueue::RunOne() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; the action is moved out via const_cast,
  // which is safe because the entry is popped immediately after.
  Entry entry = std::move(const_cast<Entry&>(heap_.top()));
  heap_.pop();
  now_ = entry.time;
  ++executed_;
  entry.action();
  return true;
}

void EventQueue::RunUntil(SimTime t) {
  while (!heap_.empty() && heap_.top().time <= t) RunOne();
  now_ = std::max(now_, t);
}

void EventQueue::RunAll() {
  while (RunOne()) {
  }
}

}  // namespace validity::sim
