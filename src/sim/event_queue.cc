#include "sim/event_queue.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"

namespace validity::sim {

namespace {

/// Map hash over the timestamp's bit pattern.
uint64_t HashKey(uint64_t key) { return Mix64(key); }

}  // namespace

EventQueue::EventQueue() : map_(64) {
  heap_.reserve(64);
  buckets_.reserve(64);
}

uint64_t EventQueue::TimeKey(SimTime t) {
  uint64_t key;
  static_assert(sizeof(key) == sizeof(t));
  std::memcpy(&key, &t, sizeof(key));
  return key;
}

void EventQueue::MapGrow() {
  std::vector<MapCell> old = std::move(map_);
  map_.assign(old.size() * 2, MapCell{});
  size_t mask = map_.size() - 1;
  for (const MapCell& cell : old) {
    if (cell.bucket == kNil) continue;
    size_t i = HashKey(cell.key) & mask;
    while (map_[i].bucket != kNil) i = (i + 1) & mask;
    map_[i] = cell;
  }
}

uint32_t* EventQueue::MapFindOrInsert(uint64_t key) {
  if ((map_used_ + 1) * 2 > map_.size()) MapGrow();
  size_t mask = map_.size() - 1;
  size_t i = HashKey(key) & mask;
  while (map_[i].bucket != kNil) {
    if (map_[i].key == key) return &map_[i].bucket;
    i = (i + 1) & mask;
  }
  map_[i].key = key;  // bucket stays kNil: caller fills it in
  return &map_[i].bucket;
}

void EventQueue::MapErase(uint64_t key) {
  size_t mask = map_.size() - 1;
  size_t i = HashKey(key) & mask;
  while (map_[i].bucket == kNil || map_[i].key != key) i = (i + 1) & mask;
  // Backward-shift deletion keeps probe chains unbroken without tombstones.
  size_t hole = i;
  size_t j = i;
  for (;;) {
    j = (j + 1) & mask;
    if (map_[j].bucket == kNil) break;
    size_t home = HashKey(map_[j].key) & mask;
    if (((j - home) & mask) >= ((j - hole) & mask)) {
      map_[hole] = map_[j];
      hole = j;
    }
  }
  map_[hole].bucket = kNil;
  --map_used_;
}

uint32_t EventQueue::BucketFor(SimTime t, bool bulk) {
  VALIDITY_DCHECK(t >= now_, "event scheduled in the past (%f < %f)", t, now_);
  t += 0.0;  // normalize -0.0 so bit-pattern keys compare equal
  uint64_t key = TimeKey(t);
  uint32_t* cell = MapFindOrInsert(key);
  if (*cell != kNil) return *cell;
  uint32_t index;
  // Bulk traffic reuses fat storage first; closures take slim buckets and
  // never steal fat ones (a fresh slim bucket is cheaper than parking a
  // busy tick's capacity under a sparse far-future timestamp).
  uint32_t* primary = bulk ? &free_fat_ : &free_slim_;
  if (*primary != kNil) {
    index = *primary;
    *primary = buckets_[index].next_free;
    if (bulk) --free_fat_count_;
  } else if (bulk && free_slim_ != kNil) {
    index = free_slim_;
    free_slim_ = buckets_[index].next_free;
  } else {
    index = static_cast<uint32_t>(buckets_.size());
    buckets_.emplace_back();
  }
  Bucket& bucket = buckets_[index];
  bucket.time = t;
  bucket.head = 0;
  *cell = index;
  ++map_used_;
  HeapPush(index);
  return index;
}

void EventQueue::HeapPush(uint32_t bucket_index) {
  // Implicit 4-ary min-heap over distinct bucket times, hole percolation.
  SimTime t = buckets_[bucket_index].time;
  size_t i = heap_.size();
  heap_.push_back(bucket_index);
  while (i > 0) {
    size_t parent = (i - 1) / kHeapArity;
    if (t >= buckets_[heap_[parent]].time) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = bucket_index;
}

void EventQueue::HeapPopTop() {
  uint32_t moved = heap_.back();
  heap_.pop_back();
  size_t n = heap_.size();
  if (n == 0) return;
  SimTime moved_time = buckets_[moved].time;
  size_t i = 0;
  for (;;) {
    size_t first_child = i * kHeapArity + 1;
    if (first_child >= n) break;
    size_t last_child = std::min(first_child + kHeapArity, n);
    size_t best = first_child;
    SimTime best_time = buckets_[heap_[best]].time;
    for (size_t c = first_child + 1; c < last_child; ++c) {
      SimTime ct = buckets_[heap_[c]].time;
      if (ct < best_time) {
        best = c;
        best_time = ct;
      }
    }
    if (best_time >= moved_time) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = moved;
}

Event EventQueue::PopNext() {
  uint32_t index = heap_[0];
  Bucket& bucket = buckets_[index];
  now_ = bucket.time;
  Event event = bucket.events[bucket.head++];
  if (bucket.head == bucket.events.size()) {
    // Drained: drop out of the calendar but keep the vector capacity for
    // the next timestamp this bucket serves.
    HeapPopTop();
    MapErase(TimeKey(bucket.time));
    RecycleBucket(index);
  }
  --size_;
  return event;
}

void EventQueue::RecycleBucket(uint32_t index) {
  Bucket& bucket = buckets_[index];
  bucket.events.clear();
  bucket.head = 0;
  if (bucket.events.capacity() > kFatBucketCapacity) {
    if (free_fat_count_ < kMaxFatFree) {
      ++free_fat_count_;
      bucket.next_free = free_fat_;
      free_fat_ = index;
      return;
    }
    // Enough fat storage is already parked: release this spike.
    std::vector<Event>().swap(bucket.events);
  }
  bucket.next_free = free_slim_;
  free_slim_ = index;
}

void EventQueue::ScheduleAt(SimTime t, Action action) {
  uint32_t slot;
  if (!generic_free_.empty()) {
    slot = generic_free_.back();
    generic_free_.pop_back();
    generic_pool_[slot] = std::move(action);
  } else {
    slot = static_cast<uint32_t>(generic_pool_.size());
    generic_pool_.push_back(std::move(action));
  }
  uint32_t bucket = BucketFor(t, /*bulk=*/false);
  buckets_[bucket].events.push_back(
      Event{0, kInvalidHost, kInvalidHost, slot, EventTag::kGeneric});
  ++size_;
}

void EventQueue::ScheduleTyped(SimTime t, EventTag tag, HostId a, HostId b,
                               uint32_t slot, uint64_t payload) {
  VALIDITY_DCHECK(tag != EventTag::kGeneric, "use ScheduleAt for closures");
  uint32_t bucket = BucketFor(t, /*bulk=*/true);
  buckets_[bucket].events.push_back(Event{payload, a, b, slot, tag});
  ++size_;
}

void EventQueue::Reserve(size_t events) {
  // Calendar buckets size themselves to the live event population and are
  // recycled; what is worth warming is the bucket/heap/map skeleton (one
  // entry per distinct pending timestamp) and the closure side table.
  size_t distinct = std::min<size_t>(events, 4096);
  buckets_.reserve(distinct);
  heap_.reserve(distinct);
  generic_pool_.reserve(std::min<size_t>(events, 1024));
}

bool EventQueue::RunOne() {
  if (size_ == 0) return false;
  Event event = PopNext();
  ++executed_;
  if (event.tag == EventTag::kGeneric) {
    // Move the closure out before running it: the action may schedule more
    // generic events, which can grow the pool and reuse this slot.
    Action action = std::move(generic_pool_[event.slot]);
    generic_pool_[event.slot] = nullptr;
    generic_free_.push_back(event.slot);
    action();
  } else {
    VALIDITY_DCHECK(handler_ != nullptr, "typed event with no handler");
    handler_(handler_ctx_, event);
  }
  return true;
}

void EventQueue::RunUntil(SimTime t) {
  while (size_ != 0 && buckets_[heap_[0]].time <= t) RunOne();
  now_ = std::max(now_, t);
}

void EventQueue::RunAll() {
  while (RunOne()) {
  }
}

size_t EventQueue::ResidentBytes() const {
  size_t bytes = buckets_.capacity() * sizeof(Bucket) +
                 heap_.capacity() * sizeof(uint32_t) +
                 map_.capacity() * sizeof(MapCell) +
                 generic_pool_.capacity() * sizeof(Action) +
                 generic_free_.capacity() * sizeof(uint32_t);
  for (const Bucket& bucket : buckets_) {
    bytes += bucket.events.capacity() * sizeof(Event);
  }
  return bytes;
}

void EventQueue::Clear(const std::function<void(const Event&)>& on_discard) {
  for (uint32_t index : heap_) {
    Bucket& bucket = buckets_[index];
    for (size_t i = bucket.head; i < bucket.events.size(); ++i) {
      const Event& event = bucket.events[i];
      if (event.tag == EventTag::kGeneric) {
        generic_pool_[event.slot] = nullptr;
        generic_free_.push_back(event.slot);
      } else if (on_discard) {
        on_discard(event);
      }
    }
    MapErase(TimeKey(bucket.time));
    RecycleBucket(index);
  }
  heap_.clear();
  size_ = 0;
  now_ = 0;
  executed_ = 0;
}

}  // namespace validity::sim
