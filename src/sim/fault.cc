#include "sim/fault.h"

#include <cstdio>
#include <cstring>

#include "common/rng.h"

namespace validity::sim {

namespace {

// Distinct stream constants keep the link-fate and byzantine-membership
// hash families independent even under the same spec seed.
constexpr uint64_t kLinkStream = 0x9e3779b97f4a7c15ULL;
constexpr uint64_t kByzantineStream = 0xbf58476d1ce4e5b9ULL;

// 53-bit mantissa uniform in [0, 1) — the same mapping Rng::NextDouble uses,
// applied to a hash word instead of a generator step.
inline double ToUnit(uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

}  // namespace

const char* ByzantineModeName(ByzantineMode mode) {
  switch (mode) {
    case ByzantineMode::kNone:
      return "none";
    case ByzantineMode::kInflate:
      return "inflate";
    case ByzantineMode::kDeadenReplies:
      return "deaden";
    case ByzantineMode::kStaleReplay:
      return "stale-replay";
  }
  return "unknown";
}

std::string FaultSpecLabel(const FaultSpec& spec) {
  if (!spec.enabled()) return "none";
  char buf[32];
  std::string out;
  auto append = [&out, &buf](const char* name, double rate) {
    std::snprintf(buf, sizeof(buf), "%s=%.2f", name, rate);
    if (!out.empty()) out += '+';
    out += buf;
  };
  if (spec.drop_rate > 0) append("drop", spec.drop_rate);
  if (spec.duplicate_rate > 0) append("dup", spec.duplicate_rate);
  if (spec.delay_rate > 0) append("delay", spec.delay_rate);
  if (spec.HasByzantine()) {
    std::snprintf(buf, sizeof(buf), "byz-%s=%.2f",
                  ByzantineModeName(spec.byzantine_mode),
                  spec.byzantine_fraction);
    if (!out.empty()) out += '+';
    out += buf;
  }
  return out;
}

LinkFate DecideLinkFate(const FaultSpec& spec, HostId from, HostId to,
                        SimTime send_time, uint32_t channel) {
  LinkFate fate;
  if (!spec.HasLinkFaults()) return fate;
  // Normalize -0.0 the way EventQueue's time keying does, then hash the
  // exact bit pattern: two sends at the same simulated instant hash alike,
  // sends one ULP apart do not.
  SimTime t = send_time + 0.0;
  uint64_t t_bits;
  std::memcpy(&t_bits, &t, sizeof(t_bits));
  uint64_t h = Mix64(spec.seed ^ kLinkStream);
  h = Mix64(h ^ ((static_cast<uint64_t>(from) << 32) | to));
  h = Mix64(h ^ t_bits);
  h = Mix64(h ^ channel);
  // Fixed draw order regardless of which rates are active, so a given spec
  // maps every (link, instant, channel) to one fate unconditionally.
  uint64_t drop_draw = SplitMix64(&h);
  uint64_t delay_draw = SplitMix64(&h);
  uint64_t delay_hops_draw = SplitMix64(&h);
  uint64_t duplicate_draw = SplitMix64(&h);
  uint64_t duplicate_hops_draw = SplitMix64(&h);
  if (ToUnit(drop_draw) < spec.drop_rate) {
    fate.drop = true;
    return fate;
  }
  if (spec.max_delay_hops > 0 && ToUnit(delay_draw) < spec.delay_rate) {
    fate.delay_hops = 1 + static_cast<uint32_t>(
                              delay_hops_draw % spec.max_delay_hops);
  }
  if (ToUnit(duplicate_draw) < spec.duplicate_rate) {
    fate.duplicate = true;
    fate.duplicate_delay_hops =
        spec.max_delay_hops > 0
            ? static_cast<uint32_t>(duplicate_hops_draw %
                                    (spec.max_delay_hops + 1))
            : 0;
  }
  return fate;
}

bool IsByzantineHost(const FaultSpec& spec, HostId h) {
  if (!spec.HasByzantine()) return false;
  uint64_t w = Mix64(Mix64(spec.seed ^ kByzantineStream) ^ h);
  return ToUnit(w) < spec.byzantine_fraction;
}

void ByzantineInterposer::OnMessage(HostId self, const Message& msg) {
  if (__builtin_expect(
          msg.src != protected_host_ && IsByzantineHost(*spec_, msg.src), 0)) {
    Message corrupted = msg;  // copies the inline payload, shares the body
    if (!mutator_->MutateFromByzantine(msg.src, &corrupted)) return;
    inner_->OnMessage(self, corrupted);
    return;
  }
  inner_->OnMessage(self, msg);
}

}  // namespace validity::sim
