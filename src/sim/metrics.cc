#include "sim/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace validity::sim {

void Metrics::RecordSend(SimTime t, size_t bytes) {
  ++messages_sent_;
  bytes_sent_ += bytes;
  last_send_time_ = std::max(last_send_time_, t);
  VALIDITY_DCHECK(t >= 0);
  size_t tick = static_cast<size_t>(std::floor(t));
  if (sends_per_tick_.size() <= tick) {
    // Generous geometric headroom: the per-tick series must not reallocate
    // once a run is warmed up (the send path is allocation-free).
    if (sends_per_tick_.capacity() <= tick) {
      sends_per_tick_.reserve(std::max<size_t>(128, 2 * (tick + 1)));
    }
    sends_per_tick_.resize(tick + 1, 0);
  }
  ++sends_per_tick_[tick];
}

void Metrics::RecordProcessed(HostId h, SimTime t) {
  VALIDITY_DCHECK(h < num_hosts_);
  uint64_t& count = counts_.Touch(h);
  if (count++ == 0) touched_.push_back(h);
  ++messages_delivered_;
  last_delivery_time_ = std::max(last_delivery_time_, t);
}

uint64_t Metrics::MaxProcessed() const {
  uint64_t max_count = 0;
  for (HostId h : touched_) {
    max_count = std::max(max_count, *counts_.Find(h));
  }
  return max_count;
}

Histogram Metrics::ComputationCostDistribution() const {
  Histogram h;
  int64_t zeros = static_cast<int64_t>(num_hosts_) -
                  static_cast<int64_t>(touched_.size());
  if (zeros > 0) h.Add(0, zeros);
  for (HostId host : touched_) {
    h.Add(static_cast<int64_t>(*counts_.Find(host)));
  }
  return h;
}

void Metrics::Reset(uint32_t num_hosts) {
  num_hosts_ = num_hosts;
  counts_.Reset(num_hosts);
  touched_.clear();
  sends_per_tick_.clear();
  messages_sent_ = 0;
  bytes_sent_ = 0;
  messages_delivered_ = 0;
  last_send_time_ = 0;
  last_delivery_time_ = 0;
}

}  // namespace validity::sim
