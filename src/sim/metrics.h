// Cost accounting for protocol runs (paper §6.3).
//
//  - Communication cost: number of messages sent. Under the wireless medium
//    a transmission to all neighbors counts once; point-to-point counts one
//    per destination.
//  - Computation cost: per-host count of messages processed (received).
//    The protocol-level computation cost is the max over hosts.
//  - Time cost: tracked by the protocols as the result-declaration time;
//    the metrics also record the last delivery time and the per-tick
//    message series used by Fig. 13(b).
//
// Per-host tallies are paged (common/paged_state.h): a host that processed
// nothing occupies no storage, so *constructing* a Metrics for a
// million-host network is O(1) and a query is charged only for the hosts it
// touched. Hosts that processed at least one message are additionally
// tracked in a dirty list, so Reset() — the inter-query session path — and
// the per-host summaries cost O(hosts touched + ticks elapsed), not
// O(network).

#ifndef VALIDITY_SIM_METRICS_H_
#define VALIDITY_SIM_METRICS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "common/paged_state.h"
#include "common/types.h"

namespace validity::sim {

class Metrics {
 public:
  explicit Metrics(uint32_t num_hosts) : num_hosts_(num_hosts) {
    counts_.Reset(num_hosts);
  }

  /// Records a transmission of `bytes` at time `t` (one call per message for
  /// point-to-point; one call per wireless broadcast).
  void RecordSend(SimTime t, size_t bytes);

  /// Records that host `h` processed one delivered message.
  void RecordProcessed(HostId h, SimTime t);

  uint64_t messages_sent() const { return messages_sent_; }
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t messages_delivered() const { return messages_delivered_; }
  SimTime last_send_time() const { return last_send_time_; }
  SimTime last_delivery_time() const { return last_delivery_time_; }

  /// Messages processed by host `h` (0 for hosts whose tally page was never
  /// materialized).
  uint64_t ProcessedBy(HostId h) const {
    const uint64_t* count = counts_.Find(h);
    return count == nullptr ? 0 : *count;
  }

  /// Max messages processed by any single host = protocol computation cost.
  /// O(hosts that processed anything).
  uint64_t MaxProcessed() const;

  /// Histogram: processed-message count -> number of hosts (Fig. 12).
  /// Hosts that processed nothing contribute to the zero bucket.
  Histogram ComputationCostDistribution() const;

  /// Messages sent during tick [i, i+1) (Fig. 13(b)). Index i = floor(t).
  const std::vector<uint64_t>& SendsPerTick() const { return sends_per_tick_; }

  /// Grows the accounted host population when hosts join (tally pages
  /// materialize on demand).
  void OnHostAdded() { ++num_hosts_; }

  /// Zeroes every counter for a fresh run over `num_hosts` hosts (dropping
  /// hosts joined since construction). O(ticks elapsed) plus an O(1) page
  /// epoch bump; storage capacity is retained.
  void Reset(uint32_t num_hosts);

  /// Bytes of tally storage currently resident (the paged counters plus the
  /// dirty list and tick series).
  size_t ResidentBytes() const {
    return counts_.ResidentBytes() + touched_.capacity() * sizeof(HostId) +
           sends_per_tick_.capacity() * sizeof(uint64_t);
  }

 private:
  uint64_t messages_sent_ = 0;
  uint64_t bytes_sent_ = 0;
  uint64_t messages_delivered_ = 0;
  SimTime last_send_time_ = 0;
  SimTime last_delivery_time_ = 0;
  uint32_t num_hosts_ = 0;
  /// Per-host processed tallies, materialized on first touch.
  PagedStates<uint64_t> counts_;
  /// Hosts with a nonzero tally, each exactly once (pushed on the 0 -> 1
  /// transition).
  std::vector<HostId> touched_;
  std::vector<uint64_t> sends_per_tick_;
};

}  // namespace validity::sim

#endif  // VALIDITY_SIM_METRICS_H_
