#include "sim/simulator.h"

#include <algorithm>
#include <utility>

#include "sim/fault.h"

namespace validity::sim {

Simulator::Simulator(const topology::Topology& topology, SimOptions options)
    : options_(options),
      topo_(topology),
      base_hosts_(topology.num_hosts()),
      num_hosts_(topology.num_hosts()),
      metrics_(topology.num_hosts()) {
  VALIDITY_CHECK(options_.delta > 0, "delta must be positive");
  use_csr_ = !topo_.implicit() || options_.materialize_adjacency;
  uint32_t n = base_hosts_;
  if (use_csr_) {
    // Adjacency as CSR, built once: one offset pass, one fill pass. The
    // fill enumerates the topology provider, so a materialized implicit
    // topology stores neighbors in exactly the arithmetic order.
    nbr_offset_.resize(n + 1, 0);
    for (HostId h = 0; h < n; ++h) {
      nbr_offset_[h + 1] = nbr_offset_[h] + topo_.Degree(h);
    }
    nbr_flat_.resize(nbr_offset_[n]);
    for (HostId h = 0; h < n; ++h) {
      topo_.CopyNeighbors(h, nbr_flat_.data() + nbr_offset_[h]);
    }
    queue_.Reserve(std::min<size_t>(2 * static_cast<size_t>(n) + 64, 1 << 20));
  } else {
    // Arithmetic mode: nothing per-host is built here; a query pays only
    // for the hosts it touches. The queue warms itself on demand.
    queue_.Reserve(1024);
  }
  queue_.SetTypedHandler(&Simulator::DispatchThunk, this);
}

void Simulator::Run() {
  while (!queue_.empty()) {
    queue_.RunOne();
    CheckEventBudget();
  }
}

void Simulator::RunUntil(SimTime t) {
  queue_.RunUntil(t);
  CheckEventBudget();
}

void Simulator::CheckEventBudget() const {
  if (options_.max_events > 0) {
    VALIDITY_CHECK(queue_.executed() <= options_.max_events,
                   "event budget exhausted: protocol may not terminate");
  }
}

void Simulator::Reset() {
  // Drop pending events; undelivered fan-out deliveries still hold slab
  // references that must be released for their slots (and pooled bodies) to
  // recycle.
  queue_.Clear([this](const Event& event) {
    if (event.tag == EventTag::kDeliver) {
      MessageSlot& slot = SlotAt(event.slot);
      if (--slot.refs == 0) ReleaseMessageSlot(event.slot);
    }
  });
  // Every slot is free now; rewind the slab to sequential allocation instead
  // of chasing the drained free list's scrambled order (chunk storage stays
  // warm, but the next run's slot accesses are contiguous again, like a
  // fresh simulator's). Payload references must be dropped: a recycled slot
  // is only body-reset when it leaves the free list, and slab_used_ = 0
  // abandons the list.
  for (uint32_t i = 0; i < slab_used_; ++i) {
    // Fault-duplicated and fault-delayed deliveries hold extra refs; the
    // queue drain above must have released every one of them.
    VALIDITY_DCHECK(SlotAt(i).refs == 0);
    SlotAt(i).msg.body.reset();
  }
  slab_used_ = 0;
  free_head_ = kNoFreeSlot;
  // Runtime joins truncate away; liveness rewinds by epoch (failed hosts'
  // records simply stop being current — no per-host revival walk). The
  // reverse-slot index is graph-derived and survives: joined hosts never
  // enter it.
  joined_adj_.clear();
  extra_edges_.Reset(base_hosts_);
  life_.Reset(base_hosts_);
  num_hosts_ = base_hosts_;
  dead_count_ = 0;
  metrics_.Reset(base_hosts_);
  instance_metrics_.clear();
  program_ = nullptr;
  fault_ = nullptr;
  fault_armed_ = false;
}

void Simulator::AttachInstanceMetrics(uint32_t instance_id, Metrics* metrics) {
  VALIDITY_DCHECK(metrics != nullptr);
  instance_metrics_.push_back(InstanceMetrics{instance_id, metrics});
}

void Simulator::DetachInstanceMetrics(uint32_t instance_id) {
  for (auto it = instance_metrics_.begin(); it != instance_metrics_.end();
       ++it) {
    if (it->instance_id == instance_id) {
      instance_metrics_.erase(it);
      return;
    }
  }
}

size_t Simulator::ResidentTableBytes() const {
  size_t bytes = nbr_offset_.capacity() * sizeof(uint32_t) +
                 nbr_flat_.capacity() * sizeof(HostId);
  bytes += life_.ResidentBytes() + extra_edges_.ResidentBytes() +
           slot_index_.ResidentBytes();
  for (const std::vector<HostId>& own : joined_adj_) {
    bytes += sizeof(own) + own.capacity() * sizeof(HostId);
  }
  bytes += slab_.size() * static_cast<size_t>(kSlabChunkSize) *
           sizeof(MessageSlot);
  bytes += metrics_.ResidentBytes();
  bytes += queue_.ResidentBytes();
  return bytes;
}

void Simulator::ScheduleAt(SimTime t, std::function<void()> action) {
  queue_.ScheduleAt(t, std::move(action));
}

void Simulator::ScheduleAfter(SimTime dt, std::function<void()> action) {
  queue_.ScheduleAt(Now() + dt, std::move(action));
}

void Simulator::DispatchEvent(const Event& event) {
  switch (event.tag) {
    case EventTag::kDeliver: {
      MessageSlot& slot = SlotAt(event.slot);
      slot.msg.dst = event.a;
      // Slab chunks have stable addresses, so `slot` stays valid while the
      // program's OnMessage schedules further sends into the slab.
      DeliverTo(event.a, slot.msg);
      if (--slot.refs == 0) ReleaseMessageSlot(event.slot);
      break;
    }
    case EventTag::kTimer:
      if (IsAlive(event.a) && program_ != nullptr) {
        program_->OnTimer(event.a, event.payload);
      }
      break;
    case EventTag::kFailHost:
      FailHost(event.a);
      break;
    case EventTag::kNeighborDetect:
      if (IsAlive(event.a) && program_ != nullptr) {
        program_->OnNeighborFailure(event.a, event.b);
      }
      break;
    case EventTag::kGeneric:
      VALIDITY_CHECK(false, "generic events run inside the queue");
      break;
  }
}

uint32_t Simulator::AcquireMessageSlot(Message&& msg, uint32_t refs) {
  uint32_t index;
  if (free_head_ != kNoFreeSlot) {
    index = free_head_;
    free_head_ = SlotAt(index).next_free;
  } else {
    index = slab_used_++;
    if ((index >> kSlabChunkShift) == slab_.size()) {
      slab_.push_back(std::make_unique<MessageSlot[]>(kSlabChunkSize));
    }
  }
  MessageSlot& slot = SlotAt(index);
  slot.msg = std::move(msg);
  slot.refs = refs;
  return index;
}

void Simulator::ReleaseMessageSlot(uint32_t index) {
  MessageSlot& slot = SlotAt(index);
  slot.msg.body.reset();  // drop the payload reference promptly
  slot.next_free = free_head_;
  free_head_ = index;
}

uint32_t Simulator::NeighborSlotOf(HostId h, HostId nb) const {
  VALIDITY_DCHECK(h < num_hosts_);
  uint32_t base_count = 0;
  if (__builtin_expect(h >= base_hosts_, 0)) {
    // Runtime-joined host: its own list is short and cold.
    const std::vector<HostId>& own = joined_adj_[h - base_hosts_];
    base_count = static_cast<uint32_t>(own.size());
    for (uint32_t i = 0; i < base_count; ++i) {
      if (own[i] == nb) return i;
    }
  } else if (use_csr_) {
    uint32_t begin = nbr_offset_[h];
    base_count = nbr_offset_[h + 1] - begin;
    if (base_count > 0) {
      SlotIndexEntry& entry = slot_index_.Touch(h);
      const HostId* nbrs = nbr_flat_.data() + begin;
      if (entry.order == nullptr) {
        entry.order.reset(new uint32_t[base_count]);
        for (uint32_t i = 0; i < base_count; ++i) entry.order[i] = i;
        std::sort(
            entry.order.get(), entry.order.get() + base_count,
            [nbrs](uint32_t a, uint32_t b) { return nbrs[a] < nbrs[b]; });
      }
      const uint32_t* order = entry.order.get();
      uint32_t lo = 0;
      uint32_t hi = base_count;
      while (lo < hi) {
        uint32_t mid = lo + (hi - lo) / 2;
        if (nbrs[order[mid]] < nb) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo < base_count && nbrs[order[lo]] == nb) return order[lo];
    }
  } else {
    // Arithmetic neighborhoods hold at most 8 ids: a straight scan beats
    // any index.
    HostId buf[topology::Topology::kMaxImplicitDegree];
    base_count = topo_.CopyNeighbors(h, buf);
    for (uint32_t i = 0; i < base_count; ++i) {
      if (buf[i] == nb) return i;
    }
  }
  // Overflow edges appended by runtime joins: a short linear scan.
  if (!joined_adj_.empty()) {
    if (const std::vector<HostId>* extra = extra_edges_.Find(h)) {
      for (uint32_t i = 0; i < extra->size(); ++i) {
        if ((*extra)[i] == nb) return base_count + i;
      }
    }
  }
  VALIDITY_CHECK(false, "host %u is not a neighbor of %u", nb, h);
  return 0;
}

void Simulator::FailHost(HostId h) {
  VALIDITY_DCHECK(h < num_hosts_);
  if (!IsAlive(h)) return;
  Trace(TraceEventKind::kFail, h, h, 0);
  life_.Touch(h).failure_time = Now();
  ++dead_count_;
  if (options_.failure_detection && program_ != nullptr) {
    // Neighbors detect the silence one heartbeat interval plus one delay
    // after the failure.
    SimTime detect_at = Now() + options_.heartbeat_interval + options_.delta;
    for (HostId nb : NeighborsOf(h)) {
      if (!IsAlive(nb)) continue;
      queue_.ScheduleTyped(detect_at, EventTag::kNeighborDetect, nb, h, 0, 0);
    }
  }
}

void Simulator::ScheduleFailure(SimTime t, HostId h) {
  queue_.ScheduleTyped(t, EventTag::kFailHost, h, kInvalidHost, 0, 0);
}

StatusOr<HostId> Simulator::AddHost(const std::vector<HostId>& neighbors) {
  for (HostId nb : neighbors) {
    if (nb >= num_hosts_) return Status::OutOfRange("unknown neighbor");
    if (!IsAlive(nb)) {
      return Status::FailedPrecondition("cannot join a failed neighbor");
    }
  }
  HostId id = num_hosts_++;
  joined_adj_.push_back(neighbors);
  for (HostId nb : neighbors) extra_edges_.Touch(nb).push_back(id);
  LifeRecord& life = life_.Touch(id);
  life.join_time = Now();
  Trace(TraceEventKind::kJoin, id, id, 0);
  metrics_.OnHostAdded();
  // Per-instance lanes must cover the new host too, so tagged traffic
  // delivered to it lands in the right zero-message bucket.
  for (const InstanceMetrics& entry : instance_metrics_) {
    entry.metrics->OnHostAdded();
  }
  return id;
}

void Simulator::DeliverTo(HostId to, const Message& msg) {
  if (!IsAlive(to)) {
    Trace(TraceEventKind::kDrop, msg.src, to, msg.kind);
    return;  // lost: destination failed before delivery
  }
  Trace(TraceEventKind::kDeliver, msg.src, to, msg.kind);
  MetricsFor(msg.kind).RecordProcessed(to, Now());
  if (program_ != nullptr) program_->OnMessage(to, msg);
}

void Simulator::SendTo(HostId from, HostId to, Message msg) {
  VALIDITY_DCHECK(from < num_hosts_ && to < num_hosts_);
  if (!IsAlive(from)) return;  // failed hosts send nothing
  msg.src = from;
  msg.dst = to;
  uint32_t kind = msg.kind;
  Trace(TraceEventKind::kSend, from, to, kind);
  MetricsFor(kind).RecordSend(Now(), msg.SizeBytes());
  if (__builtin_expect(fault_armed_, 0)) {
    uint32_t slot = AcquireMessageSlot(std::move(msg), 2);  // +1 guard ref
    FaultDeliver(Now() + options_.delta, to, from, slot, kind);
    DropSlotRef(slot);
    return;
  }
  uint32_t slot = AcquireMessageSlot(std::move(msg), 1);
  queue_.ScheduleTyped(Now() + options_.delta, EventTag::kDeliver, to, from,
                       slot, 0);
}

void Simulator::SendToNeighbors(HostId from, Message msg) {
  VALIDITY_DCHECK(from < num_hosts_);
  if (!IsAlive(from)) return;
  msg.src = from;
  NeighborSpan nbrs = NeighborsOf(from);
  uint32_t alive_nbrs = 0;
  for (HostId nb : nbrs) {
    if (IsAlive(nb)) ++alive_nbrs;
  }
  SimTime arrive = Now() + options_.delta;
  size_t bytes = msg.SizeBytes();
  Metrics& metrics = MetricsFor(msg.kind);
  // With a fault plane installed, one guard ref keeps the slot alive while
  // per-receiver fates (which may drop mid-fan-out) adjust the count.
  uint32_t guard = fault_armed_ ? 1u : 0u;
  uint32_t kind = msg.kind;
  if (options_.medium == MediumKind::kWireless) {
    // One transmission; every alive neighbor hears it (a per-receiver link
    // fate models each receiver's local reception of the broadcast).
    Trace(TraceEventKind::kSend, from, kInvalidHost, kind);
    metrics.RecordSend(Now(), bytes);
    if (alive_nbrs == 0) return;
    uint32_t slot = AcquireMessageSlot(std::move(msg), alive_nbrs + guard);
    for (HostId nb : nbrs) {
      if (!IsAlive(nb)) continue;
      if (__builtin_expect(fault_armed_, 0)) {
        FaultDeliver(arrive, nb, from, slot, kind);
      } else {
        queue_.ScheduleTyped(arrive, EventTag::kDeliver, nb, from, slot, 0);
      }
    }
    if (guard != 0) DropSlotRef(slot);
    return;
  }
  // Point-to-point: one charged message per alive neighbor, one shared
  // payload slot — zero allocations per neighbor.
  if (alive_nbrs == 0) return;
  uint32_t slot = AcquireMessageSlot(std::move(msg), alive_nbrs + guard);
  for (HostId nb : nbrs) {
    if (!IsAlive(nb)) continue;
    Trace(TraceEventKind::kSend, from, nb, kind);
    metrics.RecordSend(Now(), bytes);
    if (__builtin_expect(fault_armed_, 0)) {
      FaultDeliver(arrive, nb, from, slot, kind);
    } else {
      queue_.ScheduleTyped(arrive, EventTag::kDeliver, nb, from, slot, 0);
    }
  }
  if (guard != 0) DropSlotRef(slot);
}

void Simulator::SendToEach(HostId from, Message msg, const HostId* targets,
                           uint32_t count) {
  VALIDITY_DCHECK(from < num_hosts_);
  if (!IsAlive(from) || count == 0) return;
  msg.src = from;
  SimTime arrive = Now() + options_.delta;
  size_t bytes = msg.SizeBytes();
  uint32_t kind = msg.kind;
  Metrics& metrics = MetricsFor(kind);
  uint32_t guard = fault_armed_ ? 1u : 0u;
  uint32_t slot = AcquireMessageSlot(std::move(msg), count + guard);
  for (uint32_t i = 0; i < count; ++i) {
    HostId to = targets[i];
    VALIDITY_DCHECK(to < num_hosts_ && IsAlive(to));
    Trace(TraceEventKind::kSend, from, to, kind);
    metrics.RecordSend(Now(), bytes);
    if (__builtin_expect(fault_armed_, 0)) {
      FaultDeliver(arrive, to, from, slot, kind);
    } else {
      queue_.ScheduleTyped(arrive, EventTag::kDeliver, to, from, slot, 0);
    }
  }
  if (guard != 0) DropSlotRef(slot);
}

void Simulator::SendDirect(HostId from, HostId to, Message msg) {
  VALIDITY_DCHECK(from < num_hosts_ && to < num_hosts_);
  VALIDITY_CHECK(options_.medium == MediumKind::kPointToPoint,
                 "direct delivery requires a point-to-point underlay");
  if (!IsAlive(from)) return;
  msg.src = from;
  msg.dst = to;
  uint32_t kind = msg.kind;
  Trace(TraceEventKind::kSend, from, to, kind);
  MetricsFor(kind).RecordSend(Now(), msg.SizeBytes());
  if (__builtin_expect(fault_armed_, 0)) {
    uint32_t slot = AcquireMessageSlot(std::move(msg), 2);  // +1 guard ref
    FaultDeliver(Now() + options_.delta, to, from, slot, kind);
    DropSlotRef(slot);
    return;
  }
  uint32_t slot = AcquireMessageSlot(std::move(msg), 1);
  queue_.ScheduleTyped(Now() + options_.delta, EventTag::kDeliver, to, from,
                       slot, 0);
}

void Simulator::InstallFaults(const FaultSpec* spec) {
  fault_ = spec;
  // A spec with all-zero link rates cannot change any delivery's fate
  // (DecideLinkFate draws compare against 0.0), so leave the fate machinery
  // disarmed: installed-but-idle is bit-identical to absent and costs the
  // same single predicted-not-taken test per delivery.
  fault_armed_ = spec != nullptr && spec->HasLinkFaults();
}

void Simulator::FaultDeliver(SimTime arrive, HostId to, HostId from,
                             uint32_t slot, uint32_t kind) {
  LinkFate fate =
      DecideLinkFate(*fault_, from, to, Now(), kind & kLocalKindMask);
  if (fate.drop) {
    Trace(TraceEventKind::kDrop, from, to, kind);
    // The caller's guard ref keeps the slot alive even if this was the last
    // pending target of a fan-out.
    --SlotAt(slot).refs;
    return;
  }
  queue_.ScheduleTyped(arrive + fate.delay_hops * options_.delta,
                       EventTag::kDeliver, to, from, slot, 0);
  if (fate.duplicate) {
    ++SlotAt(slot).refs;
    queue_.ScheduleTyped(arrive + fate.duplicate_delay_hops * options_.delta,
                         EventTag::kDeliver, to, from, slot, 0);
  }
}

void Simulator::ScheduleTimer(HostId h, SimTime t, uint64_t timer_id) {
  queue_.ScheduleTyped(t, EventTag::kTimer, h, kInvalidHost, 0, timer_id);
}

void Simulator::TraceSlow(TraceEventKind kind, HostId src, HostId dst,
                          uint32_t mkind) {
  trace_->Record(TraceEvent{kind, Now(), src, dst, mkind});
}

}  // namespace validity::sim
