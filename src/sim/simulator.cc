#include "sim/simulator.h"

#include <algorithm>

namespace validity::sim {

namespace {
constexpr SimTime kNever = std::numeric_limits<SimTime>::infinity();
}  // namespace

Simulator::Simulator(const topology::Graph& graph, SimOptions options)
    : options_(options),
      alive_(graph.num_hosts(), 1),
      failure_time_(graph.num_hosts(), kNever),
      join_time_(graph.num_hosts(), 0.0),
      alive_count_(graph.num_hosts()),
      metrics_(graph.num_hosts()) {
  VALIDITY_CHECK(options_.delta > 0, "delta must be positive");
  adj_.resize(graph.num_hosts());
  for (HostId h = 0; h < graph.num_hosts(); ++h) {
    auto nbrs = graph.Neighbors(h);
    adj_[h].assign(nbrs.begin(), nbrs.end());
  }
}

void Simulator::Run() {
  while (!queue_.empty()) {
    queue_.RunOne();
    CheckEventBudget();
  }
}

void Simulator::RunUntil(SimTime t) {
  queue_.RunUntil(t);
  CheckEventBudget();
}

void Simulator::CheckEventBudget() const {
  if (options_.max_events > 0) {
    VALIDITY_CHECK(queue_.executed() <= options_.max_events,
                   "event budget exhausted: protocol may not terminate");
  }
}

void Simulator::ScheduleAt(SimTime t, std::function<void()> action) {
  queue_.ScheduleAt(t, std::move(action));
}

void Simulator::ScheduleAfter(SimTime dt, std::function<void()> action) {
  queue_.ScheduleAt(Now() + dt, std::move(action));
}

void Simulator::FailHost(HostId h) {
  VALIDITY_DCHECK(h < alive_.size());
  if (!IsAlive(h)) return;
  Trace(TraceEventKind::kFail, h, h, 0);
  alive_[h] = 0;
  failure_time_[h] = Now();
  --alive_count_;
  if (options_.failure_detection && program_ != nullptr) {
    // Neighbors detect the silence one heartbeat interval plus one delay
    // after the failure.
    SimTime detect_at = Now() + options_.heartbeat_interval + options_.delta;
    for (HostId nb : adj_[h]) {
      if (!IsAlive(nb)) continue;
      queue_.ScheduleAt(detect_at, [this, nb, h] {
        if (IsAlive(nb) && program_ != nullptr) {
          program_->OnNeighborFailure(nb, h);
        }
      });
    }
  }
}

void Simulator::ScheduleFailure(SimTime t, HostId h) {
  queue_.ScheduleAt(t, [this, h] { FailHost(h); });
}

StatusOr<HostId> Simulator::AddHost(const std::vector<HostId>& neighbors) {
  for (HostId nb : neighbors) {
    if (nb >= adj_.size()) return Status::OutOfRange("unknown neighbor");
    if (!IsAlive(nb)) {
      return Status::FailedPrecondition("cannot join a failed neighbor");
    }
  }
  HostId id = static_cast<HostId>(adj_.size());
  adj_.emplace_back(neighbors);
  for (HostId nb : neighbors) adj_[nb].push_back(id);
  alive_.push_back(1);
  failure_time_.push_back(kNever);
  join_time_.push_back(Now());
  Trace(TraceEventKind::kJoin, id, id, 0);
  ++alive_count_;
  metrics_.OnHostAdded();
  return id;
}

void Simulator::DeliverTo(HostId to, const Message& msg) {
  if (!IsAlive(to)) {
    Trace(TraceEventKind::kDrop, msg.src, to, msg.kind);
    return;  // lost: destination failed before delivery
  }
  Trace(TraceEventKind::kDeliver, msg.src, to, msg.kind);
  metrics_.RecordProcessed(to, Now());
  if (program_ != nullptr) program_->OnMessage(to, msg);
}

void Simulator::SendTo(HostId from, HostId to, Message msg) {
  VALIDITY_DCHECK(from < adj_.size() && to < adj_.size());
  if (!IsAlive(from)) return;  // failed hosts send nothing
  msg.src = from;
  msg.dst = to;
  Trace(TraceEventKind::kSend, from, to, msg.kind);
  metrics_.RecordSend(Now(), msg.SizeBytes());
  SimTime arrive = Now() + options_.delta;
  queue_.ScheduleAt(arrive,
                    [this, to, m = std::move(msg)] { DeliverTo(to, m); });
}

void Simulator::SendToNeighbors(HostId from, Message msg) {
  VALIDITY_DCHECK(from < adj_.size());
  if (!IsAlive(from)) return;
  msg.src = from;
  if (options_.medium == MediumKind::kWireless) {
    // One transmission; every alive neighbor hears it.
    Trace(TraceEventKind::kSend, from, kInvalidHost, msg.kind);
    metrics_.RecordSend(Now(), msg.SizeBytes());
    SimTime arrive = Now() + options_.delta;
    for (HostId nb : adj_[from]) {
      if (!IsAlive(nb)) continue;
      Message copy = msg;
      copy.dst = nb;
      queue_.ScheduleAt(arrive,
                        [this, nb, m = std::move(copy)] { DeliverTo(nb, m); });
    }
    return;
  }
  for (HostId nb : adj_[from]) {
    if (!IsAlive(nb)) continue;
    SendTo(from, nb, msg);
  }
}

void Simulator::SendDirect(HostId from, HostId to, Message msg) {
  VALIDITY_DCHECK(from < adj_.size() && to < adj_.size());
  VALIDITY_CHECK(options_.medium == MediumKind::kPointToPoint,
                 "direct delivery requires a point-to-point underlay");
  if (!IsAlive(from)) return;
  msg.src = from;
  msg.dst = to;
  Trace(TraceEventKind::kSend, from, to, msg.kind);
  metrics_.RecordSend(Now(), msg.SizeBytes());
  queue_.ScheduleAt(Now() + options_.delta,
                    [this, to, m = std::move(msg)] { DeliverTo(to, m); });
}

void Simulator::ScheduleTimer(HostId h, SimTime t, uint64_t timer_id) {
  queue_.ScheduleAt(t, [this, h, timer_id] {
    if (IsAlive(h) && program_ != nullptr) program_->OnTimer(h, timer_id);
  });
}

}  // namespace validity::sim
