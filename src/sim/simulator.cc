#include "sim/simulator.h"

#include <algorithm>
#include <utility>

namespace validity::sim {

namespace {
constexpr SimTime kNever = std::numeric_limits<SimTime>::infinity();
}  // namespace

Simulator::Simulator(const topology::Graph& graph, SimOptions options)
    : options_(options),
      alive_(graph.num_hosts(), 1),
      failure_time_(graph.num_hosts(), kNever),
      join_time_(graph.num_hosts(), 0.0),
      base_hosts_(graph.num_hosts()),
      alive_count_(graph.num_hosts()),
      metrics_(graph.num_hosts()) {
  VALIDITY_CHECK(options_.delta > 0, "delta must be positive");
  uint32_t n = graph.num_hosts();
  // Leave headroom so a typical churn/join script never reallocates the
  // per-host tables mid-run.
  size_t slack = static_cast<size_t>(n) + n / 8 + 16;
  alive_.reserve(slack);
  failure_time_.reserve(slack);
  join_time_.reserve(slack);
  nbr_extra_.resize(n);
  nbr_extra_.reserve(slack);
  // Adjacency as CSR, built once: one offset pass, one fill pass.
  nbr_offset_.reserve(slack + 1);
  nbr_offset_.resize(n + 1, 0);
  for (HostId h = 0; h < n; ++h) {
    nbr_offset_[h + 1] =
        nbr_offset_[h] + static_cast<uint32_t>(graph.Neighbors(h).size());
  }
  nbr_flat_.reserve(nbr_offset_[n] + nbr_offset_[n] / 8 + 16);
  nbr_flat_.resize(nbr_offset_[n]);
  for (HostId h = 0; h < n; ++h) {
    auto nbrs = graph.Neighbors(h);
    std::copy(nbrs.begin(), nbrs.end(), nbr_flat_.begin() + nbr_offset_[h]);
  }
  queue_.SetTypedHandler(&Simulator::DispatchThunk, this);
  queue_.Reserve(std::min<size_t>(2 * static_cast<size_t>(n) + 64, 1 << 20));
}

void Simulator::Run() {
  while (!queue_.empty()) {
    queue_.RunOne();
    CheckEventBudget();
  }
}

void Simulator::RunUntil(SimTime t) {
  queue_.RunUntil(t);
  CheckEventBudget();
}

void Simulator::CheckEventBudget() const {
  if (options_.max_events > 0) {
    VALIDITY_CHECK(queue_.executed() <= options_.max_events,
                   "event budget exhausted: protocol may not terminate");
  }
}

void Simulator::Reset() {
  // Drop pending events; undelivered fan-out deliveries still hold slab
  // references that must be released for their slots (and pooled bodies) to
  // recycle.
  queue_.Clear([this](const Event& event) {
    if (event.tag == EventTag::kDeliver) {
      MessageSlot& slot = SlotAt(event.slot);
      if (--slot.refs == 0) ReleaseMessageSlot(event.slot);
    }
  });
  // Every slot is free now; rewind the slab to sequential allocation instead
  // of chasing the drained free list's scrambled order (chunk storage stays
  // warm, but the next run's slot accesses are contiguous again, like a
  // fresh simulator's). Payload references must be dropped: a recycled slot
  // is only body-reset when it leaves the free list, and slab_used_ = 0
  // abandons the list.
  for (uint32_t i = 0; i < slab_used_; ++i) SlotAt(i).msg.body.reset();
  slab_used_ = 0;
  free_head_ = kNoFreeSlot;
  // Hosts joined at runtime: peel their CSR tail segments and the reverse
  // edges they appended to base hosts' overflow lists (reverse join order,
  // so each overflow list pops from its back).
  if (num_hosts() > base_hosts_) {
    for (HostId h = num_hosts(); h-- > base_hosts_;) {
      uint32_t begin = nbr_offset_[h];
      uint32_t end = nbr_offset_[h + 1];
      for (uint32_t i = begin; i < end; ++i) {
        HostId nb = nbr_flat_[i];
        if (nb < base_hosts_) {
          VALIDITY_DCHECK(!nbr_extra_[nb].empty() &&
                          nbr_extra_[nb].back() == h);
          nbr_extra_[nb].pop_back();
        }
      }
    }
    nbr_flat_.resize(nbr_offset_[base_hosts_]);
    nbr_offset_.resize(base_hosts_ + 1);
    nbr_extra_.resize(base_hosts_);
    alive_.resize(base_hosts_);
    failure_time_.resize(base_hosts_);
    join_time_.resize(base_hosts_);
    // Joined hosts may have cached reverse-slot orders; joins are the cold
    // path, so drop the whole index epoch rather than tracking which base
    // pages stayed valid.
    slot_index_.Reset(base_hosts_);
  }
  for (HostId h : failed_hosts_) {
    if (h >= base_hosts_) continue;  // joined-and-failed: truncated above
    alive_[h] = 1;
    failure_time_[h] = kNever;
  }
  failed_hosts_.clear();
  alive_count_ = base_hosts_;
  metrics_.Reset(base_hosts_);
  instance_metrics_.clear();
  program_ = nullptr;
}

void Simulator::AttachInstanceMetrics(uint32_t instance_id, Metrics* metrics) {
  VALIDITY_DCHECK(metrics != nullptr);
  instance_metrics_.push_back(InstanceMetrics{instance_id, metrics});
}

void Simulator::DetachInstanceMetrics(uint32_t instance_id) {
  for (auto it = instance_metrics_.begin(); it != instance_metrics_.end();
       ++it) {
    if (it->instance_id == instance_id) {
      instance_metrics_.erase(it);
      return;
    }
  }
}

void Simulator::ScheduleAt(SimTime t, std::function<void()> action) {
  queue_.ScheduleAt(t, std::move(action));
}

void Simulator::ScheduleAfter(SimTime dt, std::function<void()> action) {
  queue_.ScheduleAt(Now() + dt, std::move(action));
}

void Simulator::DispatchEvent(const Event& event) {
  switch (event.tag) {
    case EventTag::kDeliver: {
      MessageSlot& slot = SlotAt(event.slot);
      slot.msg.dst = event.a;
      // Slab chunks have stable addresses, so `slot` stays valid while the
      // program's OnMessage schedules further sends into the slab.
      DeliverTo(event.a, slot.msg);
      if (--slot.refs == 0) ReleaseMessageSlot(event.slot);
      break;
    }
    case EventTag::kTimer:
      if (IsAlive(event.a) && program_ != nullptr) {
        program_->OnTimer(event.a, event.payload);
      }
      break;
    case EventTag::kFailHost:
      FailHost(event.a);
      break;
    case EventTag::kNeighborDetect:
      if (IsAlive(event.a) && program_ != nullptr) {
        program_->OnNeighborFailure(event.a, event.b);
      }
      break;
    case EventTag::kGeneric:
      VALIDITY_CHECK(false, "generic events run inside the queue");
      break;
  }
}

uint32_t Simulator::AcquireMessageSlot(Message&& msg, uint32_t refs) {
  uint32_t index;
  if (free_head_ != kNoFreeSlot) {
    index = free_head_;
    free_head_ = SlotAt(index).next_free;
  } else {
    index = slab_used_++;
    if ((index >> kSlabChunkShift) == slab_.size()) {
      slab_.push_back(std::make_unique<MessageSlot[]>(kSlabChunkSize));
    }
  }
  MessageSlot& slot = SlotAt(index);
  slot.msg = std::move(msg);
  slot.refs = refs;
  return index;
}

void Simulator::ReleaseMessageSlot(uint32_t index) {
  MessageSlot& slot = SlotAt(index);
  slot.msg.body.reset();  // drop the payload reference promptly
  slot.next_free = free_head_;
  free_head_ = index;
}

uint32_t Simulator::NeighborSlotOf(HostId h, HostId nb) const {
  VALIDITY_DCHECK(h + 1 < nbr_offset_.size());
  uint32_t begin = nbr_offset_[h];
  uint32_t count = nbr_offset_[h + 1] - begin;
  if (count > 0) {
    SlotIndexEntry& entry = slot_index_.Touch(h);
    const HostId* nbrs = nbr_flat_.data() + begin;
    if (entry.order == nullptr) {
      entry.order.reset(new uint32_t[count]);
      for (uint32_t i = 0; i < count; ++i) entry.order[i] = i;
      std::sort(entry.order.get(), entry.order.get() + count,
                [nbrs](uint32_t a, uint32_t b) { return nbrs[a] < nbrs[b]; });
    }
    const uint32_t* order = entry.order.get();
    uint32_t lo = 0;
    uint32_t hi = count;
    while (lo < hi) {
      uint32_t mid = lo + (hi - lo) / 2;
      if (nbrs[order[mid]] < nb) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo < count && nbrs[order[lo]] == nb) return order[lo];
  }
  // Overflow edges appended by runtime joins: a short linear scan.
  if (h < nbr_extra_.size()) {
    const auto& extra = nbr_extra_[h];
    for (uint32_t i = 0; i < extra.size(); ++i) {
      if (extra[i] == nb) return count + i;
    }
  }
  VALIDITY_CHECK(false, "host %u is not a neighbor of %u", nb, h);
  return 0;
}

void Simulator::FailHost(HostId h) {
  VALIDITY_DCHECK(h < alive_.size());
  if (!IsAlive(h)) return;
  Trace(TraceEventKind::kFail, h, h, 0);
  alive_[h] = 0;
  failure_time_[h] = Now();
  failed_hosts_.push_back(h);
  --alive_count_;
  if (options_.failure_detection && program_ != nullptr) {
    // Neighbors detect the silence one heartbeat interval plus one delay
    // after the failure.
    SimTime detect_at = Now() + options_.heartbeat_interval + options_.delta;
    for (HostId nb : NeighborsOf(h)) {
      if (!IsAlive(nb)) continue;
      queue_.ScheduleTyped(detect_at, EventTag::kNeighborDetect, nb, h, 0, 0);
    }
  }
}

void Simulator::ScheduleFailure(SimTime t, HostId h) {
  queue_.ScheduleTyped(t, EventTag::kFailHost, h, kInvalidHost, 0, 0);
}

StatusOr<HostId> Simulator::AddHost(const std::vector<HostId>& neighbors) {
  for (HostId nb : neighbors) {
    if (nb >= num_hosts()) return Status::OutOfRange("unknown neighbor");
    if (!IsAlive(nb)) {
      return Status::FailedPrecondition("cannot join a failed neighbor");
    }
  }
  HostId id = num_hosts();
  // The new host is the last one, so its own list extends the CSR tail;
  // only the reverse edges need the overflow lists.
  nbr_flat_.insert(nbr_flat_.end(), neighbors.begin(), neighbors.end());
  nbr_offset_.push_back(static_cast<uint32_t>(nbr_flat_.size()));
  for (HostId nb : neighbors) nbr_extra_[nb].push_back(id);
  nbr_extra_.emplace_back();
  alive_.push_back(1);
  failure_time_.push_back(kNever);
  join_time_.push_back(Now());
  Trace(TraceEventKind::kJoin, id, id, 0);
  ++alive_count_;
  metrics_.OnHostAdded();
  // Per-instance lanes must cover the new host too, or a tagged message
  // delivered to it would index past the lane's per-host table.
  for (const InstanceMetrics& entry : instance_metrics_) {
    entry.metrics->OnHostAdded();
  }
  return id;
}

void Simulator::DeliverTo(HostId to, const Message& msg) {
  if (!IsAlive(to)) {
    Trace(TraceEventKind::kDrop, msg.src, to, msg.kind);
    return;  // lost: destination failed before delivery
  }
  Trace(TraceEventKind::kDeliver, msg.src, to, msg.kind);
  MetricsFor(msg.kind).RecordProcessed(to, Now());
  if (program_ != nullptr) program_->OnMessage(to, msg);
}

void Simulator::SendTo(HostId from, HostId to, Message msg) {
  VALIDITY_DCHECK(from < num_hosts() && to < num_hosts());
  if (!IsAlive(from)) return;  // failed hosts send nothing
  msg.src = from;
  msg.dst = to;
  Trace(TraceEventKind::kSend, from, to, msg.kind);
  MetricsFor(msg.kind).RecordSend(Now(), msg.SizeBytes());
  uint32_t slot = AcquireMessageSlot(std::move(msg), 1);
  queue_.ScheduleTyped(Now() + options_.delta, EventTag::kDeliver, to, from,
                       slot, 0);
}

void Simulator::SendToNeighbors(HostId from, Message msg) {
  VALIDITY_DCHECK(from < num_hosts());
  if (!IsAlive(from)) return;
  msg.src = from;
  NeighborSpan nbrs = NeighborsOf(from);
  uint32_t alive_nbrs = 0;
  for (HostId nb : nbrs) {
    if (IsAlive(nb)) ++alive_nbrs;
  }
  SimTime arrive = Now() + options_.delta;
  size_t bytes = msg.SizeBytes();
  Metrics& metrics = MetricsFor(msg.kind);
  if (options_.medium == MediumKind::kWireless) {
    // One transmission; every alive neighbor hears it.
    Trace(TraceEventKind::kSend, from, kInvalidHost, msg.kind);
    metrics.RecordSend(Now(), bytes);
    if (alive_nbrs == 0) return;
    uint32_t slot = AcquireMessageSlot(std::move(msg), alive_nbrs);
    for (HostId nb : nbrs) {
      if (!IsAlive(nb)) continue;
      queue_.ScheduleTyped(arrive, EventTag::kDeliver, nb, from, slot, 0);
    }
    return;
  }
  // Point-to-point: one charged message per alive neighbor, one shared
  // payload slot — zero allocations per neighbor.
  if (alive_nbrs == 0) return;
  uint32_t kind = msg.kind;
  uint32_t slot = AcquireMessageSlot(std::move(msg), alive_nbrs);
  for (HostId nb : nbrs) {
    if (!IsAlive(nb)) continue;
    Trace(TraceEventKind::kSend, from, nb, kind);
    metrics.RecordSend(Now(), bytes);
    queue_.ScheduleTyped(arrive, EventTag::kDeliver, nb, from, slot, 0);
  }
}

void Simulator::SendToEach(HostId from, Message msg, const HostId* targets,
                           uint32_t count) {
  VALIDITY_DCHECK(from < num_hosts());
  if (!IsAlive(from) || count == 0) return;
  msg.src = from;
  SimTime arrive = Now() + options_.delta;
  size_t bytes = msg.SizeBytes();
  uint32_t kind = msg.kind;
  Metrics& metrics = MetricsFor(kind);
  uint32_t slot = AcquireMessageSlot(std::move(msg), count);
  for (uint32_t i = 0; i < count; ++i) {
    HostId to = targets[i];
    VALIDITY_DCHECK(to < num_hosts() && IsAlive(to));
    Trace(TraceEventKind::kSend, from, to, kind);
    metrics.RecordSend(Now(), bytes);
    queue_.ScheduleTyped(arrive, EventTag::kDeliver, to, from, slot, 0);
  }
}

void Simulator::SendDirect(HostId from, HostId to, Message msg) {
  VALIDITY_DCHECK(from < num_hosts() && to < num_hosts());
  VALIDITY_CHECK(options_.medium == MediumKind::kPointToPoint,
                 "direct delivery requires a point-to-point underlay");
  if (!IsAlive(from)) return;
  msg.src = from;
  msg.dst = to;
  Trace(TraceEventKind::kSend, from, to, msg.kind);
  MetricsFor(msg.kind).RecordSend(Now(), msg.SizeBytes());
  uint32_t slot = AcquireMessageSlot(std::move(msg), 1);
  queue_.ScheduleTyped(Now() + options_.delta, EventTag::kDeliver, to, from,
                       slot, 0);
}

void Simulator::ScheduleTimer(HostId h, SimTime t, uint64_t timer_id) {
  queue_.ScheduleTyped(t, EventTag::kTimer, h, kInvalidHost, 0, timer_id);
}

void Simulator::TraceSlow(TraceEventKind kind, HostId src, HostId dst,
                          uint32_t mkind) {
  trace_->Record(TraceEvent{kind, Now(), src, dst, mkind});
}

}  // namespace validity::sim
