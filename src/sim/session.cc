#include "sim/session.h"

#include <algorithm>

namespace validity::sim {

void QueryProgramMux::Register(uint32_t instance_id, HostProgram* program) {
  VALIDITY_DCHECK(program != nullptr);
  VALIDITY_DCHECK(Lookup(instance_id) == nullptr,
                  "instance %u registered twice", instance_id);
  entries_.push_back(Entry{instance_id, program});
}

void QueryProgramMux::Unregister(uint32_t instance_id) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->instance_id == instance_id) {
      entries_.erase(it);
      return;
    }
  }
}

HostProgram* QueryProgramMux::Lookup(uint32_t instance_id) const {
  for (const Entry& entry : entries_) {
    if (entry.instance_id == instance_id) return entry.program;
  }
  return nullptr;
}

void QueryProgramMux::OnMessage(HostId self, const Message& msg) {
  HostProgram* program = Lookup(msg.kind >> kInstanceTagShift);
  if (program != nullptr) program->OnMessage(self, msg);
}

void QueryProgramMux::OnTimer(HostId self, uint64_t timer_id) {
  HostProgram* program =
      Lookup(static_cast<uint32_t>(timer_id >> kInstanceTagShift));
  if (program != nullptr) program->OnTimer(self, timer_id);
}

void QueryProgramMux::OnNeighborFailure(HostId self, HostId failed) {
  for (const Entry& entry : entries_) {
    entry.program->OnNeighborFailure(self, failed);
  }
}

SimulatorSession::SimulatorSession(topology::Topology topology,
                                   SimOptions options)
    : topo_(topology), sim_(topo_, options) {}

SimulatorSession::SimulatorSession(const topology::Graph* graph,
                                   SimOptions options)
    : SimulatorSession(topology::Topology::FromGraph(graph), options) {}

void SimulatorSession::Reset() {
  ++epoch_;
  mux_.Clear();
  sim_.Reset();
}

Metrics* SimulatorSession::AcquireMetrics() {
  if (!metrics_free_.empty()) {
    Metrics* lane = metrics_free_.back();
    metrics_free_.pop_back();
    lane->Reset(sim_.num_hosts());
    return lane;
  }
  metrics_lanes_.push_back(std::make_unique<Metrics>(sim_.num_hosts()));
  return metrics_lanes_.back().get();
}

void SimulatorSession::ReleaseMetrics(Metrics* metrics) {
  VALIDITY_DCHECK(metrics != nullptr);
  metrics_free_.push_back(metrics);
}

std::unique_ptr<HostProgram> SimulatorSession::TakeParkedProgram(
    uint32_t key) {
  for (auto it = parked_.begin(); it != parked_.end(); ++it) {
    if (it->first == key) {
      std::unique_ptr<HostProgram> program = std::move(it->second);
      parked_.erase(it);
      return program;
    }
  }
  return nullptr;
}

void SimulatorSession::ParkProgram(uint32_t key,
                                   std::unique_ptr<HostProgram> program) {
  VALIDITY_DCHECK(program != nullptr);
  parked_.emplace_back(key, std::move(program));
}

SessionPool::SessionPool(topology::Topology topology, SimOptions options)
    : topo_(topology), options_(options) {}

SessionPool::SessionPool(const topology::Graph* graph, SimOptions options)
    : SessionPool(topology::Topology::FromGraph(graph), options) {}

SimulatorSession* SessionPool::Acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!free_.empty()) {
    SimulatorSession* lane = free_.back();
    free_.pop_back();
    return lane;
  }
  lanes_.push_back(std::make_unique<SimulatorSession>(topo_, options_));
  return lanes_.back().get();
}

void SessionPool::Release(SimulatorSession* session) {
  VALIDITY_DCHECK(session != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  free_.push_back(session);
}

size_t SessionPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lanes_.size();
}

}  // namespace validity::sim
