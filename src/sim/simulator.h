// The discrete-event network simulator.
//
// Models the paper's relaxed asynchronous system (§3.1-§3.2):
//  - messages between neighbors arrive after the universal delay delta;
//  - a message sent to an alive neighbor is reliably delivered; a message
//    whose destination fails before delivery is lost;
//  - a failed host sends nothing and processes nothing from its failure
//    instant on; its edges disappear with it (partitions emerge naturally);
//  - hosts may join at runtime, attaching to a set of alive neighbors;
//  - neighbor failures can be detected via heartbeats: a neighbor learns of
//    a failure at t_fail + T_hb + delta (§3.1). Heartbeat traffic itself is
//    steady-state background load and is not charged to query cost, matching
//    the paper's accounting.
//
// The simulator is protocol-agnostic. A protocol implements HostProgram and
// receives message/timer/failure callbacks; all state per host lives in the
// protocol object.
//
// Internals are built for million-host runs, with every per-host table
// disc-proportional:
//  - adjacency comes from a topology::Topology. Implicit regular shapes
//    (grid, ring, torus) are served arithmetically — no CSR, no O(n)
//    adjacency storage at all; edge-list graphs build a CSR once in the
//    constructor. Either way NeighborsOf is the single access path.
//  - liveness (failure/join times) and the per-host metrics tallies live in
//    epoch-reset pages materialized on first touch; an untouched host is
//    implicitly "alive since 0, never failed". Constructing a simulator, and
//    Reset() between session queries, are therefore O(touched + pending),
//    not O(network) (ResidentTableBytes() reports the footprint).
//  - message deliveries and timers travel as typed plain-data events (see
//    event_queue.h), and message payloads live in a refcounted slab whose
//    slots are recycled — a point-to-point fan-out to k neighbors performs
//    zero allocations per neighbor in steady state.

#ifndef VALIDITY_SIM_SIMULATOR_H_
#define VALIDITY_SIM_SIMULATOR_H_

#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <memory>
#include <vector>

#include "common/paged_state.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/event_queue.h"
#include "sim/message.h"
#include "sim/metrics.h"
#include "sim/trace.h"
#include "topology/topology.h"

namespace validity::sim {

struct FaultSpec;  // sim/fault.h

/// FailureTime() of a host that never failed.
inline constexpr SimTime kNeverFails = std::numeric_limits<SimTime>::infinity();

/// Physical medium determines message accounting (paper §5.3/§6.6):
/// point-to-point charges one message per destination; wireless charges one
/// transmission reaching every neighbor.
enum class MediumKind { kPointToPoint, kWireless };

struct SimOptions {
  /// Universal per-hop delay delta.
  double delta = 1.0;
  MediumKind medium = MediumKind::kPointToPoint;
  /// Heartbeat interval T_hb; neighbor failure is detectable after
  /// T_hb + delta.
  double heartbeat_interval = 2.0;
  /// Deliver HostProgram::OnNeighborFailure callbacks.
  bool failure_detection = false;
  /// Abort if more than this many events execute (0 = unlimited). Guards
  /// against non-terminating protocols in tests.
  uint64_t max_events = 0;
  /// Build a CSR even for an implicit topology, so the table-driven and
  /// arithmetic neighbor paths can be compared bit-for-bit (tests). Costs
  /// the O(n) adjacency build implicit topologies exist to avoid.
  bool materialize_adjacency = false;
};

/// Protocol callback interface. One program instance serves every host;
/// `self` identifies the host on whose behalf the callback runs.
class HostProgram {
 public:
  virtual ~HostProgram() = default;

  /// A message was delivered to alive host `self` at the current time.
  virtual void OnMessage(HostId self, const Message& msg) = 0;

  /// A timer scheduled via Simulator::ScheduleTimer fired (host still alive).
  virtual void OnTimer(HostId self, uint64_t timer_id) { (void)self, (void)timer_id; }

  /// Heartbeat detector: `failed` (a neighbor of `self`) is now known dead.
  virtual void OnNeighborFailure(HostId self, HostId failed) {
    (void)self, (void)failed;
  }
};

/// A host's neighbor list: either a view into external storage (the CSR
/// segment, or a joined host's own list) or a small inline buffer filled
/// arithmetically from an implicit topology — plus any reverse edges
/// appended when later hosts joined. Cheap to copy (the inline buffer is 8
/// ids); iteration and operator[] present the segments as one contiguous
/// sequence.
class NeighborSpan {
 public:
  static constexpr uint32_t kInlineCapacity =
      topology::Topology::kMaxImplicitDegree;

  NeighborSpan(const HostId* base, uint32_t base_count,
               const std::vector<HostId>* extra)
      : base_(base),
        base_count_(base_count),
        extra_(extra == nullptr || extra->empty() ? nullptr : extra) {}

  /// An inline span: the caller fills inline_data() with up to
  /// kInlineCapacity ids and seals the count with set_inline_count.
  struct InlineTag {};
  NeighborSpan(InlineTag, const std::vector<HostId>* extra)
      : base_(inline_),
        base_count_(0),
        extra_(extra == nullptr || extra->empty() ? nullptr : extra) {}

  NeighborSpan(const NeighborSpan& other) { CopyFrom(other); }
  NeighborSpan& operator=(const NeighborSpan& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }

  HostId* inline_data() { return inline_; }
  void set_inline_count(uint32_t count) {
    VALIDITY_DCHECK(count <= kInlineCapacity);
    base_count_ = count;
  }

  uint32_t size() const {
    return base_count_ +
           (extra_ != nullptr ? static_cast<uint32_t>(extra_->size()) : 0);
  }
  bool empty() const { return size() == 0; }

  HostId operator[](uint32_t i) const {
    return i < base_count_ ? base_[i] : (*extra_)[i - base_count_];
  }

  class Iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = HostId;
    using difference_type = std::ptrdiff_t;
    using pointer = const HostId*;
    using reference = HostId;

    Iterator(const NeighborSpan* span, uint32_t i) : span_(span), i_(i) {}
    HostId operator*() const { return (*span_)[i_]; }
    Iterator& operator++() {
      ++i_;
      return *this;
    }
    bool operator==(const Iterator& o) const { return i_ == o.i_; }
    bool operator!=(const Iterator& o) const { return i_ != o.i_; }

   private:
    const NeighborSpan* span_;
    uint32_t i_;
  };

  Iterator begin() const { return Iterator(this, 0); }
  Iterator end() const { return Iterator(this, size()); }

 private:
  void CopyFrom(const NeighborSpan& other) {
    base_count_ = other.base_count_;
    extra_ = other.extra_;
    if (other.base_ == other.inline_) {
      std::memcpy(inline_, other.inline_, base_count_ * sizeof(HostId));
      base_ = inline_;
    } else {
      base_ = other.base_;
    }
  }

  const HostId* base_;
  uint32_t base_count_;
  const std::vector<HostId>* extra_;
  HostId inline_[kInlineCapacity];
};

class Simulator {
 public:
  /// Builds a simulator over `topology`; all hosts start alive at time 0.
  /// For kGraph topologies the graph (which `topology` points at) must
  /// outlive the simulator. Construction is O(1)-ish for implicit
  /// topologies and O(n + m) (the CSR build) for graphs.
  Simulator(const topology::Topology& topology, SimOptions options);

  /// Convenience over a materialized graph; `graph` must outlive the
  /// simulator.
  Simulator(const topology::Graph& graph, SimOptions options)
      : Simulator(topology::Topology::FromGraph(&graph), options) {}

  // Not movable: the event queue holds a back-pointer to this simulator as
  // its typed-event dispatch context (and protocols hold raw pointers too).
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  // --- time & execution -----------------------------------------------

  SimTime Now() const { return queue_.Now(); }
  const SimOptions& options() const { return options_; }
  const topology::Topology& topology() const { return topo_; }

  /// Per-query knobs a SimulatorSession retunes between runs without
  /// rebuilding the simulator. failure_detection only gates what FailHost
  /// schedules from now on; max_events re-arms the event budget (the
  /// executed() counter itself rewinds in Reset()).
  void set_failure_detection(bool enabled) {
    options_.failure_detection = enabled;
  }
  void set_max_events(uint64_t max_events) { options_.max_events = max_events; }

  /// Restores the simulator to its just-constructed state — every base host
  /// alive at time 0, empty event queue, zeroed metrics, no attached
  /// program — in time proportional to what previous runs touched (failed
  /// hosts, joined hosts, pending events, hosts that processed messages),
  /// not the network size: liveness and metrics pages rewind by epoch
  /// counter (common/paged_state.h), pending events drain through a dirty
  /// walk, and runtime joins truncate away. Graph-derived structures (the
  /// CSR, the NeighborSlotOf index) survive untouched, which is what makes
  /// a cached per-graph simulator worth keeping: see sim/session.h. The
  /// trace recorder, if any, stays attached.
  void Reset();

  /// Runs until the event queue is exhausted.
  void Run();
  /// Runs events with time <= t.
  void RunUntil(SimTime t);
  /// Schedules an arbitrary action (simulation scripting, churn, oracles).
  /// This is the closure escape hatch; protocol hot paths use the typed
  /// SendTo/ScheduleTimer/ScheduleFailure entry points instead.
  void ScheduleAt(SimTime t, std::function<void()> action);
  void ScheduleAfter(SimTime dt, std::function<void()> action);

  // --- hosts ------------------------------------------------------------

  uint32_t num_hosts() const { return num_hosts_; }
  /// Alive now. Hosts are implicitly alive — a host is dead only if a
  /// failure record was materialized for it this epoch, so the failure-free
  /// fast path is a pair of integer tests.
  bool IsAlive(HostId h) const {
    if (h >= num_hosts_) return false;
    if (dead_count_ == 0) return true;
    const LifeRecord* life = life_.Find(h);
    return life == nullptr || life->failure_time == kNeverFails;
  }
  uint32_t alive_count() const { return num_hosts_ - dead_count_; }

  /// Neighbors as built (may include failed hosts; filter with IsAlive or
  /// use ForEachAliveNeighbor).
  NeighborSpan NeighborsOf(HostId h) const {
    VALIDITY_DCHECK(h < num_hosts_);
    const std::vector<HostId>* extra =
        joined_adj_.empty() ? nullptr : extra_edges_.Find(h);
    if (__builtin_expect(h >= base_hosts_, 0)) {
      const std::vector<HostId>& own = joined_adj_[h - base_hosts_];
      return NeighborSpan(own.data(), static_cast<uint32_t>(own.size()),
                          extra);
    }
    if (use_csr_) {
      uint32_t begin = nbr_offset_[h];
      return NeighborSpan(nbr_flat_.data() + begin,
                          nbr_offset_[h + 1] - begin, extra);
    }
    NeighborSpan span{NeighborSpan::InlineTag{}, extra};
    span.set_inline_count(topo_.CopyNeighbors(h, span.inline_data()));
    return span;
  }

  template <typename Fn>
  void ForEachAliveNeighbor(HostId h, Fn&& fn) const {
    for (HostId nb : NeighborsOf(h)) {
      if (IsAlive(nb)) fn(nb);
    }
  }

  /// Slot of `nb` in NeighborsOf(h) — the reverse lookup convergecast
  /// protocols run once per received message. O(log degree) against a
  /// lazily-built per-host sorted index over the CSR segment; implicit
  /// topologies scan their (<= 8-entry) arithmetic neighborhood directly.
  /// O(degree) overflow edges from runtime joins are scanned linearly.
  /// CHECK-fails if `nb` is not a neighbor of `h`.
  uint32_t NeighborSlotOf(HostId h, HostId nb) const;

  /// Fails `h` immediately (no-op if already dead). Triggers failure
  /// detection callbacks when enabled.
  void FailHost(HostId h);
  /// Schedules FailHost(h) at time t.
  void ScheduleFailure(SimTime t, HostId h);

  /// Adds a new host joined to `neighbors` (each must be alive) at Now().
  StatusOr<HostId> AddHost(const std::vector<HostId>& neighbors);

  /// Time at which `h` failed; +infinity while alive.
  SimTime FailureTime(HostId h) const {
    const LifeRecord* life = life_.Find(h);
    return life == nullptr ? kNeverFails : life->failure_time;
  }
  /// Time at which `h` joined; 0 for initial hosts.
  SimTime JoinTime(HostId h) const {
    const LifeRecord* life = life_.Find(h);
    return life == nullptr ? 0.0 : life->join_time;
  }

  /// True if `h` was alive during the whole closed interval [a, b].
  bool AliveThroughout(HostId h, SimTime a, SimTime b) const {
    const LifeRecord* life = life_.Find(h);
    return life == nullptr ||
           (life->join_time <= a && life->failure_time > b);
  }
  /// True if `h` was alive at some instant of [a, b].
  bool AliveSometimeIn(HostId h, SimTime a, SimTime b) const {
    const LifeRecord* life = life_.Find(h);
    return life == nullptr ||
           (life->join_time <= b && life->failure_time > a);
  }

  /// Bytes of per-host simulator tables currently resident: adjacency
  /// (CSR or none), liveness/metrics pages, the reverse-slot index
  /// directory, runtime-join lists, the message slab, and event-queue
  /// storage. The number million-host scenarios watch: with an implicit
  /// topology and a disc-bounded query it tracks the disc, not the network
  /// (examples/million_grid.cpp checks this).
  size_t ResidentTableBytes() const;

  // --- messaging ----------------------------------------------------------

  /// Binds the protocol receiving callbacks. Exactly one program at a time.
  void AttachProgram(HostProgram* program) { program_ = program; }

  /// Installs the deterministic link-fault plane (sim/fault.h): every
  /// subsequent in-flight delivery's fate — drop, duplicate, extra delay —
  /// is decided by a stateless hash of the spec's seed and the delivery's
  /// coordinates. `spec` must outlive the attachment; pass nullptr to
  /// remove. Cleared by Reset(). With no spec installed — or a spec whose
  /// link rates are all zero, which cannot change any delivery's fate — the
  /// send paths pay one predicted-not-taken test and nothing else
  /// (BM_WildfireCountQueryFaultIdle vs BM_WildfireCountQuery pins this).
  void InstallFaults(const FaultSpec* spec);
  const FaultSpec* faults() const { return fault_; }

  /// Sends one message from `from` to `to` (must be neighbors). Dropped
  /// silently (and not charged) if `from` is dead; charged but undelivered
  /// if `to` dies before the delivery instant.
  void SendTo(HostId from, HostId to, Message msg);

  /// Sends to every currently-alive neighbor of `from`. Point-to-point:
  /// one charged message per neighbor. Wireless: one charged transmission,
  /// every alive neighbor receives it. Either way the payload is stored
  /// once; per-neighbor cost is one typed event.
  void SendToNeighbors(HostId from, Message msg);

  /// Point-to-point fan-out to an explicit target list (each must be an
  /// alive neighbor of `from`): one charged message per target, one shared
  /// payload slot — the selective-flood analogue of SendToNeighbors.
  /// Equivalent to SendTo(from, t, msg) for each t, minus the per-target
  /// slot and payload copies.
  void SendToEach(HostId from, Message msg, const HostId* targets,
                  uint32_t count);

  /// Sends directly to an arbitrary host, bypassing overlay edges. Models a
  /// P2P underlay connection (the reporting host knows hq's IP address from
  /// the query and opens a direct connection): one charged message, delta
  /// delay. Not available on wireless sensor media.
  void SendDirect(HostId from, HostId to, Message msg);

  /// Fires HostProgram::OnTimer(h, timer_id) at time t if h is then alive.
  void ScheduleTimer(HostId h, SimTime t, uint64_t timer_id);

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  uint64_t events_executed() const { return queue_.executed(); }

  /// Routes cost accounting for messages whose kind carries `instance_id`
  /// in its upper bits (see kInstanceTagShift) to `metrics` instead of the
  /// shared metrics(). This is how N concurrent queries on one session each
  /// get their own §6.3 cost report; `metrics` must outlive the attachment.
  /// Attachments are cleared by Reset().
  void AttachInstanceMetrics(uint32_t instance_id, Metrics* metrics);
  void DetachInstanceMetrics(uint32_t instance_id);

  /// Optional event tracing; pass nullptr to detach. The recorder must
  /// outlive the simulator (or be detached first).
  void AttachTrace(TraceRecorder* trace) { trace_ = trace; }

 private:
  /// Liveness record, paged and materialized only for hosts that failed or
  /// joined at runtime; every other host reads as the value-initialized
  /// default — joined at 0, never failed.
  struct LifeRecord {
    SimTime failure_time = kNeverFails;
    SimTime join_time = 0.0;
  };

  /// Refcounted slab cell: one stored payload shared by every in-flight
  /// delivery of a fan-out. Slots live in fixed-size chunks so addresses
  /// stay stable while a delivery callback schedules further sends.
  struct MessageSlot {
    Message msg;
    uint32_t refs = 0;
    uint32_t next_free = 0;
  };
  static constexpr uint32_t kSlabChunkShift = 10;
  static constexpr uint32_t kSlabChunkSize = 1u << kSlabChunkShift;
  static constexpr uint32_t kNoFreeSlot = 0xffffffffu;

  static void DispatchThunk(void* ctx, const Event& event) {
    static_cast<Simulator*>(ctx)->DispatchEvent(event);
  }
  void DispatchEvent(const Event& event);

  MessageSlot& SlotAt(uint32_t index) {
    return slab_[index >> kSlabChunkShift][index & (kSlabChunkSize - 1)];
  }
  uint32_t AcquireMessageSlot(Message&& msg, uint32_t refs);
  void ReleaseMessageSlot(uint32_t index);
  void DropSlotRef(uint32_t index) {
    MessageSlot& slot = SlotAt(index);
    if (--slot.refs == 0) ReleaseMessageSlot(index);
  }

  /// Faulted delivery scheduling: consults DecideLinkFate and schedules
  /// zero (drop), one, or two (duplicate) kDeliver events for `slot`,
  /// adjusting slot.refs from its pre-charged one-ref-per-target baseline.
  /// The caller holds a guard ref, so a drop can decrement refs mid-fan-out
  /// without freeing the slot. Cold: only runs with a FaultSpec installed.
  __attribute__((cold, noinline)) void FaultDeliver(SimTime arrive, HostId to,
                                                    HostId from, uint32_t slot,
                                                    uint32_t kind);

  void DeliverTo(HostId to, const Message& msg);
  void CheckEventBudget() const;

  /// The metrics object charged for a message of this kind: the shared
  /// metrics_ unless a per-instance attachment matches. The common
  /// single-query case costs one predicted branch on the empty list.
  Metrics& MetricsFor(uint32_t kind) {
    if (__builtin_expect(!instance_metrics_.empty(), 0)) {
      uint32_t id = kind >> kInstanceTagShift;
      for (const InstanceMetrics& entry : instance_metrics_) {
        if (entry.instance_id == id) return *entry.metrics;
      }
    }
    return metrics_;
  }
  void Trace(TraceEventKind kind, HostId src, HostId dst, uint32_t mkind) {
    // Predicted-not-taken fast path: with no recorder attached this is one
    // well-predicted test against a cold branch.
    if (__builtin_expect(trace_ != nullptr, 0)) {
      TraceSlow(kind, src, dst, mkind);
    }
  }
  __attribute__((cold, noinline)) void TraceSlow(TraceEventKind kind,
                                                 HostId src, HostId dst,
                                                 uint32_t mkind);

  SimOptions options_;
  topology::Topology topo_;
  EventQueue queue_;
  /// CSR adjacency for kGraph topologies (or implicit ones materialized via
  /// SimOptions::materialize_adjacency): base host h's neighbors are
  /// nbr_flat_[nbr_offset_[h] .. nbr_offset_[h+1]). Empty in arithmetic
  /// mode.
  bool use_csr_ = false;
  std::vector<uint32_t> nbr_offset_;
  std::vector<HostId> nbr_flat_;
  /// Hosts joined at runtime: joined_adj_[h - base_hosts_] is the neighbor
  /// list host h attached with. Truncated away by Reset().
  std::vector<std::vector<HostId>> joined_adj_;
  /// Reverse edges runtime joins appended to existing hosts, paged on first
  /// touch and epoch-reset with the rest of the mutable state. Consulted
  /// only while joined hosts exist (joins are the cold path).
  PagedStates<std::vector<HostId>> extra_edges_;
  /// NeighborSlotOf index: per-host permutation of the host's CSR segment,
  /// sorted by neighbor id. Built lazily per host and stored behind the
  /// same paged directory the protocols use for their state, so on a
  /// million-host graph a query touching a small disc only materializes
  /// index storage for that disc. CSR mode only; purely graph-derived, so
  /// it survives Reset().
  struct SlotIndexEntry {
    std::unique_ptr<uint32_t[]> order;  // null until built; degree entries
  };
  mutable PagedStates<SlotIndexEntry> slot_index_;
  /// Liveness, paged: only failed or runtime-joined hosts materialize a
  /// record (see LifeRecord).
  PagedStates<LifeRecord> life_;
  /// Host count at construction; hosts joined at runtime (ids >= this) are
  /// truncated away again by Reset().
  uint32_t base_hosts_ = 0;
  uint32_t num_hosts_ = 0;
  uint32_t dead_count_ = 0;
  struct InstanceMetrics {
    uint32_t instance_id;
    Metrics* metrics;
  };
  std::vector<InstanceMetrics> instance_metrics_;
  /// Message payload slab (stable chunked storage + free list).
  std::vector<std::unique_ptr<MessageSlot[]>> slab_;
  uint32_t slab_used_ = 0;
  uint32_t free_head_ = kNoFreeSlot;
  HostProgram* program_ = nullptr;
  const FaultSpec* fault_ = nullptr;
  // fault_ != nullptr && fault_->HasLinkFaults(), cached at install time so
  // the per-delivery branch is one flag test and an idle spec costs nothing.
  bool fault_armed_ = false;
  TraceRecorder* trace_ = nullptr;
  Metrics metrics_;
};

}  // namespace validity::sim

#endif  // VALIDITY_SIM_SIMULATOR_H_
