// The discrete-event network simulator.
//
// Models the paper's relaxed asynchronous system (§3.1-§3.2):
//  - messages between neighbors arrive after the universal delay delta;
//  - a message sent to an alive neighbor is reliably delivered; a message
//    whose destination fails before delivery is lost;
//  - a failed host sends nothing and processes nothing from its failure
//    instant on; its edges disappear with it (partitions emerge naturally);
//  - hosts may join at runtime, attaching to a set of alive neighbors;
//  - neighbor failures can be detected via heartbeats: a neighbor learns of
//    a failure at t_fail + T_hb + delta (§3.1). Heartbeat traffic itself is
//    steady-state background load and is not charged to query cost, matching
//    the paper's accounting.
//
// The simulator is protocol-agnostic. A protocol implements HostProgram and
// receives message/timer/failure callbacks; all state per host lives in the
// protocol object.

#ifndef VALIDITY_SIM_SIMULATOR_H_
#define VALIDITY_SIM_SIMULATOR_H_

#include <cstdint>
#include <functional>
#include <limits>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "sim/event_queue.h"
#include "sim/message.h"
#include "sim/metrics.h"
#include "sim/trace.h"
#include "topology/graph.h"

namespace validity::sim {

/// Physical medium determines message accounting (paper §5.3/§6.6):
/// point-to-point charges one message per destination; wireless charges one
/// transmission reaching every neighbor.
enum class MediumKind { kPointToPoint, kWireless };

struct SimOptions {
  /// Universal per-hop delay delta.
  double delta = 1.0;
  MediumKind medium = MediumKind::kPointToPoint;
  /// Heartbeat interval T_hb; neighbor failure is detectable after
  /// T_hb + delta.
  double heartbeat_interval = 2.0;
  /// Deliver HostProgram::OnNeighborFailure callbacks.
  bool failure_detection = false;
  /// Abort if more than this many events execute (0 = unlimited). Guards
  /// against non-terminating protocols in tests.
  uint64_t max_events = 0;
};

/// Protocol callback interface. One program instance serves every host;
/// `self` identifies the host on whose behalf the callback runs.
class HostProgram {
 public:
  virtual ~HostProgram() = default;

  /// A message was delivered to alive host `self` at the current time.
  virtual void OnMessage(HostId self, const Message& msg) = 0;

  /// A timer scheduled via Simulator::ScheduleTimer fired (host still alive).
  virtual void OnTimer(HostId self, uint64_t timer_id) { (void)self, (void)timer_id; }

  /// Heartbeat detector: `failed` (a neighbor of `self`) is now known dead.
  virtual void OnNeighborFailure(HostId self, HostId failed) {
    (void)self, (void)failed;
  }
};

class Simulator {
 public:
  /// Builds a simulator over `graph`; all hosts start alive at time 0.
  Simulator(const topology::Graph& graph, SimOptions options);

  // --- time & execution -----------------------------------------------

  SimTime Now() const { return queue_.Now(); }
  const SimOptions& options() const { return options_; }

  /// Runs until the event queue is exhausted.
  void Run();
  /// Runs events with time <= t.
  void RunUntil(SimTime t);
  /// Schedules an arbitrary action (simulation scripting, churn, oracles).
  void ScheduleAt(SimTime t, std::function<void()> action);
  void ScheduleAfter(SimTime dt, std::function<void()> action);

  // --- hosts ------------------------------------------------------------

  uint32_t num_hosts() const { return static_cast<uint32_t>(adj_.size()); }
  bool IsAlive(HostId h) const {
    return h < alive_.size() && alive_[h] != 0;
  }
  uint32_t alive_count() const { return alive_count_; }

  /// Neighbors as built (may include failed hosts; filter with IsAlive or
  /// use ForEachAliveNeighbor).
  const std::vector<HostId>& NeighborsOf(HostId h) const {
    VALIDITY_DCHECK(h < adj_.size());
    return adj_[h];
  }

  template <typename Fn>
  void ForEachAliveNeighbor(HostId h, Fn&& fn) const {
    for (HostId nb : adj_[h]) {
      if (IsAlive(nb)) fn(nb);
    }
  }

  /// Fails `h` immediately (no-op if already dead). Triggers failure
  /// detection callbacks when enabled.
  void FailHost(HostId h);
  /// Schedules FailHost(h) at time t.
  void ScheduleFailure(SimTime t, HostId h);

  /// Adds a new host joined to `neighbors` (each must be alive) at Now().
  StatusOr<HostId> AddHost(const std::vector<HostId>& neighbors);

  /// Time at which `h` failed; +infinity while alive.
  SimTime FailureTime(HostId h) const { return failure_time_[h]; }
  /// Time at which `h` joined; 0 for initial hosts.
  SimTime JoinTime(HostId h) const { return join_time_[h]; }

  /// True if `h` was alive during the whole closed interval [a, b].
  bool AliveThroughout(HostId h, SimTime a, SimTime b) const {
    return join_time_[h] <= a && failure_time_[h] > b;
  }
  /// True if `h` was alive at some instant of [a, b].
  bool AliveSometimeIn(HostId h, SimTime a, SimTime b) const {
    return join_time_[h] <= b && failure_time_[h] > a;
  }

  // --- messaging ----------------------------------------------------------

  /// Binds the protocol receiving callbacks. Exactly one program at a time.
  void AttachProgram(HostProgram* program) { program_ = program; }

  /// Sends one message from `from` to `to` (must be neighbors). Dropped
  /// silently (and not charged) if `from` is dead; charged but undelivered
  /// if `to` dies before the delivery instant.
  void SendTo(HostId from, HostId to, Message msg);

  /// Sends to every currently-alive neighbor of `from`. Point-to-point:
  /// one charged message per neighbor. Wireless: one charged transmission,
  /// every alive neighbor receives it.
  void SendToNeighbors(HostId from, Message msg);

  /// Sends directly to an arbitrary host, bypassing overlay edges. Models a
  /// P2P underlay connection (the reporting host knows hq's IP address from
  /// the query and opens a direct connection): one charged message, delta
  /// delay. Not available on wireless sensor media.
  void SendDirect(HostId from, HostId to, Message msg);

  /// Fires HostProgram::OnTimer(h, timer_id) at time t if h is then alive.
  void ScheduleTimer(HostId h, SimTime t, uint64_t timer_id);

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  uint64_t events_executed() const { return queue_.executed(); }

  /// Optional event tracing; pass nullptr to detach. The recorder must
  /// outlive the simulator (or be detached first).
  void AttachTrace(TraceRecorder* trace) { trace_ = trace; }

 private:
  void DeliverTo(HostId to, const Message& msg);
  void CheckEventBudget() const;
  void Trace(TraceEventKind kind, HostId src, HostId dst, uint32_t mkind) {
    if (trace_ != nullptr) {
      trace_->Record(TraceEvent{kind, Now(), src, dst, mkind});
    }
  }

  SimOptions options_;
  EventQueue queue_;
  std::vector<std::vector<HostId>> adj_;
  std::vector<uint8_t> alive_;
  std::vector<SimTime> failure_time_;
  std::vector<SimTime> join_time_;
  uint32_t alive_count_ = 0;
  HostProgram* program_ = nullptr;
  TraceRecorder* trace_ = nullptr;
  Metrics metrics_;
};

}  // namespace validity::sim

#endif  // VALIDITY_SIM_SIMULATOR_H_
