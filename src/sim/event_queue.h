// Deterministic discrete-event queue over typed, plain-data events.
//
// Events fire in (time, insertion-sequence) order, so simultaneous events
// run in the order they were scheduled and every run is exactly replayable.
//
// The hot path is allocation-free: an event is a tagged POD appended to the
// FIFO bucket of its timestamp, and a small implicit 4-ary min-heap orders
// the *distinct* timestamps only (a calendar heap). Simulated workloads
// concentrate events on very few future instants (everything a host does
// lands at `now` or `now + delta`), so pushes are an O(1) hash-probe +
// vector append and pops are an O(1) bucket read; heap percolation is paid
// once per distinct timestamp instead of once per event. FIFO order inside
// a bucket *is* insertion-sequence order, so the determinism contract holds
// by construction.
//
// Typed events (deliveries, timers, failures, failure detections) carry
// their operands inline and are dispatched through a handler installed by
// the simulator; kGeneric events are the escape hatch for arbitrary
// closures (simulation scripting, churn harnesses, tests) and index into a
// side table of recycled std::function slots.

#ifndef VALIDITY_SIM_EVENT_QUEUE_H_
#define VALIDITY_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/types.h"

namespace validity::sim {

/// Discriminator for the typed event union.
enum class EventTag : uint8_t {
  /// Closure escape hatch; `slot` indexes the queue's side table of actions.
  kGeneric = 0,
  /// Deliver message-slab slot `slot` to host `a` (sent by host `b`).
  kDeliver,
  /// Fire HostProgram::OnTimer(a, payload) if `a` is alive.
  kTimer,
  /// Fail host `a`.
  kFailHost,
  /// Fire HostProgram::OnNeighborFailure(a, b): `a` detects that its
  /// neighbor `b` failed.
  kNeighborDetect,
};

/// One scheduled occurrence. Plain data; the meaning of `a`, `b`, `slot`,
/// and `payload` depends on `tag` (see EventTag).
struct Event {
  uint64_t payload;
  HostId a;
  HostId b;
  uint32_t slot;
  EventTag tag;
};

class EventQueue {
 public:
  using Action = std::function<void()>;
  /// Receives every non-generic event as it fires. Installed once by the
  /// simulator; a plain function pointer keeps dispatch devirtualized.
  using TypedHandler = void (*)(void* ctx, const Event& event);

  EventQueue();

  void SetTypedHandler(TypedHandler handler, void* ctx) {
    handler_ = handler;
    handler_ctx_ = ctx;
  }

  /// Schedules `action` at absolute time `t` (must be >= Now()).
  void ScheduleAt(SimTime t, Action action);

  /// Schedules a typed event at absolute time `t` (must be >= Now()).
  /// Allocation-free once the calendar has warmed up.
  void ScheduleTyped(SimTime t, EventTag tag, HostId a, HostId b,
                     uint32_t slot, uint64_t payload);

  /// Capacity hint for roughly `events` pending entries: warms the
  /// calendar skeleton (bucket/heap slots, one per distinct timestamp,
  /// capped) and the closure side table. Per-bucket event storage grows on
  /// demand and is recycled.
  void Reserve(size_t events);

  /// True if no events remain.
  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  /// Current simulated time: the time of the last popped event (0 before any
  /// event has run).
  SimTime Now() const { return now_; }

  /// Pops and runs the next event. Returns false if the queue was empty.
  bool RunOne();

  /// Runs events while their time is <= `t` (events scheduled at exactly `t`
  /// are included). Advances Now() to at most `t`.
  void RunUntil(SimTime t);

  /// Runs to exhaustion.
  void RunAll();

  /// Discards every pending event without running it and rewinds the clock:
  /// Now() returns to 0 and executed() to 0, as if freshly constructed.
  /// `on_discard` (optional) sees each pending non-generic event so the
  /// owner can release resources it references (the simulator drops message
  /// slab references of undelivered kDeliver events); pending kGeneric
  /// closures are destroyed internally. O(pending events + pending distinct
  /// timestamps); bucket, heap, map, and closure-pool storage is retained
  /// for the next run. This is the session-reset path (sim/session.h).
  void Clear(const std::function<void(const Event&)>& on_discard = nullptr);

  /// Number of events executed so far.
  uint64_t executed() const { return executed_; }

  /// Bytes of queue storage currently held (bucket event vectors, calendar
  /// skeleton, closure side table). Feeds Simulator::ResidentTableBytes.
  size_t ResidentBytes() const;

 private:
  static constexpr size_t kHeapArity = 4;
  static constexpr uint32_t kNil = 0xffffffffu;

  /// FIFO of every event scheduled for one timestamp. Drained buckets keep
  /// their vector capacity and return to a free list, so steady-state
  /// scheduling recycles storage instead of allocating. Free buckets are
  /// segregated by capacity class: bulk traffic (typed deliveries/timers,
  /// thousands per busy tick) reuses fat storage, while sparse closure
  /// timestamps (a service timeline can hold hundreds of pending arrival
  /// and retirement closures at once) get slim buckets — otherwise the fat
  /// storage of drained busy ticks migrates into long-lived sparse buckets
  /// and the queue's resident bytes inflate to O(pending timestamps x
  /// busiest tick) (tests/service_stress_test.cc pins this down).
  struct Bucket {
    SimTime time = 0;
    uint32_t head = 0;       // next event to run
    uint32_t next_free = kNil;
    std::vector<Event> events;
  };

  /// Capacity above which a drained bucket is recycled on the fat list.
  static constexpr size_t kFatBucketCapacity = 256;
  /// Fat buckets kept warm for reuse. A steady simulation only ever builds
  /// a handful of bulk timestamps concurrently (deliveries and timers land
  /// within a few hops of now), so anything beyond this is a one-shot
  /// spike whose storage is released on recycle rather than parked.
  static constexpr size_t kMaxFatFree = 8;

  /// Open-addressed timestamp -> bucket map (linear probing, backward-shift
  /// deletion). `bucket == kNil` marks an empty cell.
  struct MapCell {
    uint64_t key = 0;
    uint32_t bucket = kNil;
  };

  static uint64_t TimeKey(SimTime t);
  uint32_t* MapFindOrInsert(uint64_t key);
  void MapErase(uint64_t key);
  void MapGrow();

  /// `bulk` hints at the expected population: typed events prefer a fat
  /// recycled bucket, closures a slim one (and never steal fat storage).
  uint32_t BucketFor(SimTime t, bool bulk);
  void RecycleBucket(uint32_t index);
  void HeapPush(uint32_t bucket_index);
  void HeapPopTop();
  Event PopNext();

  std::vector<Bucket> buckets_;
  /// Active bucket indices, 4-ary min-heap keyed by bucket time. Times in
  /// the heap are distinct, so the time-only comparison is total.
  std::vector<uint32_t> heap_;
  std::vector<MapCell> map_;
  size_t map_used_ = 0;

  /// Side table of kGeneric closures; freed slots are recycled.
  std::vector<Action> generic_pool_;
  std::vector<uint32_t> generic_free_;

  TypedHandler handler_ = nullptr;
  void* handler_ctx_ = nullptr;
  size_t size_ = 0;
  SimTime now_ = 0;
  uint64_t executed_ = 0;

  /// Drained-bucket free lists, segregated by capacity class (see Bucket).
  /// Cold: touched once per distinct timestamp, never per event.
  uint32_t free_slim_ = kNil;
  uint32_t free_fat_ = kNil;
  size_t free_fat_count_ = 0;
};

}  // namespace validity::sim

#endif  // VALIDITY_SIM_EVENT_QUEUE_H_
