// Deterministic discrete-event queue.
//
// Events fire in (time, insertion-sequence) order, so simultaneous events
// run in the order they were scheduled and every run is exactly replayable.

#ifndef VALIDITY_SIM_EVENT_QUEUE_H_
#define VALIDITY_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace validity::sim {

class EventQueue {
 public:
  using Action = std::function<void()>;

  /// Schedules `action` at absolute time `t` (must be >= Now()).
  void ScheduleAt(SimTime t, Action action);

  /// True if no events remain.
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Current simulated time: the time of the last popped event (0 before any
  /// event has run).
  SimTime Now() const { return now_; }

  /// Pops and runs the next event. Returns false if the queue was empty.
  bool RunOne();

  /// Runs events while their time is <= `t` (events scheduled at exactly `t`
  /// are included). Advances Now() to at most `t`.
  void RunUntil(SimTime t);

  /// Runs to exhaustion.
  void RunAll();

  /// Number of events executed so far.
  uint64_t executed() const { return executed_; }

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace validity::sim

#endif  // VALIDITY_SIM_EVENT_QUEUE_H_
