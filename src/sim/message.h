// Messages exchanged between hosts.
//
// The simulator is protocol-agnostic: a Message carries a protocol-defined
// integer kind plus an immutable, reference-counted body. Bodies are shared
// (never mutated after send), so fanning a message out to many neighbors
// costs one allocation total.

#ifndef VALIDITY_SIM_MESSAGE_H_
#define VALIDITY_SIM_MESSAGE_H_

#include <cstdint>
#include <memory>

#include "common/types.h"

namespace validity::sim {

/// Immutable protocol payload. Implementations report their wire size so the
/// metrics layer can account byte traffic (paper §6.3 notes all protocols
/// use small fixed-size messages; we verify rather than assume).
class MessageBody {
 public:
  virtual ~MessageBody() = default;

  /// Serialized size in bytes (approximate wire footprint).
  virtual size_t SizeBytes() const = 0;
};

/// One point-to-point or broadcast-medium message.
struct Message {
  /// Protocol-defined discriminator (each protocol declares an enum).
  uint32_t kind = 0;
  /// Filled in by the network on send/delivery.
  HostId src = kInvalidHost;
  HostId dst = kInvalidHost;
  /// Optional payload; may be null for signal-only messages.
  std::shared_ptr<const MessageBody> body;

  /// Total approximate size: fixed header + payload.
  size_t SizeBytes() const {
    // kind + src + dst + flags, as a nominal 16-byte header.
    return 16 + (body ? body->SizeBytes() : 0);
  }
};

}  // namespace validity::sim

#endif  // VALIDITY_SIM_MESSAGE_H_
