// Messages exchanged between hosts.
//
// The simulator is protocol-agnostic: a Message carries a protocol-defined
// integer kind plus a payload. Payloads come in two flavours, both
// allocation-free on the steady-state send path:
//
//  - Inline: small trivially-copyable structs (hop counters, scalar
//    aggregates, push-sum mass) are stored directly in the message's
//    40-byte inline area. No body object exists at all.
//  - Pooled: larger payloads (FM sketches, id-union sets) are immutable,
//    reference-counted MessageBody objects acquired from a typed BodyPool.
//    Bodies are shared (never mutated after send), so fanning a message out
//    to many neighbors costs one pool acquire total, and a recycled body
//    keeps its internal buffers — steady-state sends touch no allocator
//    for flat payloads (sketch words, scalar fields). Node-based payloads
//    (the test-only id-union maps) still pay their per-element copy.
//
// Reference counts are plain (non-atomic) integers: one simulator and all
// its protocol instances run on a single thread (the parallel sweep driver
// gives every concurrent QueryEngine::Run its own simulator).

#ifndef VALIDITY_SIM_MESSAGE_H_
#define VALIDITY_SIM_MESSAGE_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/types.h"

namespace validity::sim {

class BodyPoolCore;

/// Immutable protocol payload. Implementations report their wire size so the
/// metrics layer can account byte traffic (paper §6.3 notes all protocols
/// use small fixed-size messages; we verify rather than assume).
class MessageBody {
 public:
  virtual ~MessageBody() = default;

  /// Serialized size in bytes (approximate wire footprint).
  virtual size_t SizeBytes() const = 0;

 private:
  friend class BodyRef;
  friend class BodyPoolCore;
  template <typename T>
  friend class BodyPool;

  mutable uint32_t refs_ = 0;
  /// Owning pool core, or nullptr for plain heap bodies (deleted on last
  /// release instead of recycled).
  BodyPoolCore* pool_ = nullptr;
};

/// Type-erased recycling target shared by a BodyPool handle and the bodies
/// it has handed out. The core outlives the pool handle while messages are
/// still in flight (e.g. a protocol destroyed before its simulator drains),
/// and self-destructs when the last outstanding body is released.
class BodyPoolCore {
 protected:
  BodyPoolCore() = default;
  virtual ~BodyPoolCore() = default;

 private:
  friend class BodyRef;
  template <typename T>
  friend class BodyPool;

  virtual void Recycle(MessageBody* body) = 0;

  void OnLastRelease(MessageBody* body) {
    Recycle(body);
    VALIDITY_DCHECK(outstanding_ > 0);
    --outstanding_;
    if (orphaned_ && outstanding_ == 0) delete this;
  }

  uint32_t outstanding_ = 0;  // acquired bodies not yet recycled
  bool orphaned_ = false;     // owning BodyPool handle destroyed
};

/// Intrusive reference-counted handle to an immutable message body. Cheaper
/// than shared_ptr on the hot path: no control block, no atomics.
class BodyRef {
 public:
  BodyRef() = default;
  /// Adopts `body` (one more reference). The body may come from
  /// BodyPool::Acquire or plain `new` (see MakeHeapBody).
  explicit BodyRef(MessageBody* body) : body_(body) {
    if (body_ != nullptr) ++body_->refs_;
  }
  BodyRef(const BodyRef& other) : body_(other.body_) {
    if (body_ != nullptr) ++body_->refs_;
  }
  BodyRef(BodyRef&& other) noexcept : body_(other.body_) {
    other.body_ = nullptr;
  }
  BodyRef& operator=(BodyRef other) noexcept {
    std::swap(body_, other.body_);
    return *this;
  }
  ~BodyRef() { Release(); }

  void reset() {
    Release();
    body_ = nullptr;
  }

  const MessageBody* get() const { return body_; }
  const MessageBody& operator*() const { return *body_; }
  const MessageBody* operator->() const { return body_; }
  explicit operator bool() const { return body_ != nullptr; }

 private:
  void Release() {
    if (body_ == nullptr || --body_->refs_ != 0) return;
    if (body_->pool_ != nullptr) {
      body_->pool_->OnLastRelease(body_);
    } else {
      delete body_;
    }
  }

  MessageBody* body_ = nullptr;
};

/// Typed free-list pool of message bodies. Acquire() reuses a recycled body
/// when one is available (steady state: always), so its internal buffers —
/// sketch words, parent vectors — keep their capacity and the send path
/// performs no allocation. Usage:
///
///   AggregateBody* body = pool_.Acquire();
///   body->agg = *st->agg;           // overwrite ALL fields: bodies recycle
///   msg.body = sim::BodyRef(body);  // hand ownership to the ref
///
/// Every Acquire() must be wrapped in a BodyRef before the next pool call;
/// the body returns to the free list when the last ref drops. Not
/// thread-safe (one pool per protocol instance per simulator thread).
template <typename T>
class BodyPool {
 public:
  static_assert(std::is_base_of_v<MessageBody, T>,
                "pooled types must derive from sim::MessageBody");

  BodyPool() : core_(new Core) {}
  ~BodyPool() {
    core_->orphaned_ = true;
    if (core_->outstanding_ == 0) delete core_;
  }
  BodyPool(const BodyPool&) = delete;
  BodyPool& operator=(const BodyPool&) = delete;

  /// Returns a recycled or fresh T. Contents are whatever the previous use
  /// left behind — callers must set every field before sending.
  T* Acquire() {
    T* body;
    if (!core_->free_.empty()) {
      body = core_->free_.back();
      core_->free_.pop_back();
    } else {
      body = new T();
      body->pool_ = core_;
      core_->all_.emplace_back(body);
      // Keep the free list able to absorb every body without reallocating:
      // the drain phase at the end of a query returns all in-flight bodies
      // at once, and that must not count as a steady-state allocation.
      if (core_->free_.capacity() < core_->all_.size()) {
        core_->free_.reserve(core_->all_.capacity());
      }
    }
    ++core_->outstanding_;
    return body;
  }

  /// Distinct bodies ever allocated — the pool's high-water mark. In steady
  /// state this stops growing (the zero-allocation-per-send property).
  size_t total_allocated() const { return core_->all_.size(); }

  /// When every body is free (a drained inter-query pool), re-sequences the
  /// free list so Acquire() hands bodies out in first-allocation order
  /// again. A run's drain leaves the free list in release order, and
  /// chasing it scatters the next run's hottest payload accesses across the
  /// heap — restoring allocation order here is what makes a session-reused
  /// protocol *faster* than a freshly constructed one rather than ~10%
  /// slower. No-op while bodies are still in flight.
  void ResetRecycleOrder() {
    if (core_->free_.size() != core_->all_.size()) return;
    core_->free_.clear();
    for (auto it = core_->all_.rbegin(); it != core_->all_.rend(); ++it) {
      core_->free_.push_back(it->get());
    }
  }

 private:
  struct Core final : BodyPoolCore {
    void Recycle(MessageBody* body) override {
      free_.push_back(static_cast<T*>(body));
    }
    std::vector<std::unique_ptr<T>> all_;
    std::vector<T*> free_;
  };

  Core* core_;
};

/// One-off heap body (tests, cold paths): deleted when the last ref drops.
template <typename T, typename... Args>
BodyRef MakeHeapBody(Args&&... args) {
  return BodyRef(new T(std::forward<Args>(args)...));
}

/// Message kinds and timer ids carry the owning protocol instance's id in
/// their upper bits: kind = (instance_id << kInstanceTagShift) | local_kind.
/// Receivers drop traffic tagged for another instance, which is what lets
/// several query instances (continuous windows, concurrent session queries)
/// multiplex one simulator; the session layer (session.h) also routes
/// per-query metrics by this tag.
inline constexpr uint32_t kInstanceTagShift = 8;
inline constexpr uint32_t kLocalKindMask = (1u << kInstanceTagShift) - 1;

/// Capacity of the inline payload area. Sized for the largest inline user
/// (SPANNINGTREE's ScalarPartial report: 3 doubles + count + addressee).
inline constexpr size_t kInlinePayloadBytes = 40;

/// One point-to-point or broadcast-medium message.
struct Message {
  /// Protocol-defined discriminator (each protocol declares an enum).
  uint32_t kind = 0;
  /// Filled in by the network on send/delivery.
  HostId src = kInvalidHost;
  HostId dst = kInvalidHost;
  /// Logical wire size of the inline payload (set by StoreInline); kept
  /// separate from sizeof(T) so byte accounting matches the protocol's wire
  /// format, not C++ struct padding.
  uint32_t inline_bytes = 0;
  /// Inline payload area for small trivially-copyable payload structs.
  alignas(8) unsigned char inline_data[kInlinePayloadBytes] = {};
  /// Optional pooled/heap payload; null for inline-only or signal messages.
  BodyRef body;

  /// Stores `payload` inline; `wire_bytes` is the logical serialized size
  /// charged to the metrics layer.
  template <typename T>
  void StoreInline(const T& payload, uint32_t wire_bytes) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "inline payloads must be trivially copyable");
    static_assert(sizeof(T) <= kInlinePayloadBytes,
                  "payload exceeds the inline area; use a BodyPool");
    std::memcpy(inline_data, &payload, sizeof(T));
    inline_bytes = wire_bytes;
  }

  template <typename T>
  T LoadInline() const {
    static_assert(std::is_trivially_copyable_v<T>);
    static_assert(sizeof(T) <= kInlinePayloadBytes);
    T out;
    std::memcpy(&out, inline_data, sizeof(T));
    return out;
  }

  /// Total approximate size: fixed header + inline payload + body payload.
  size_t SizeBytes() const {
    // kind + src + dst + flags, as a nominal 16-byte header.
    return 16 + inline_bytes + (body ? body->SizeBytes() : 0);
  }
};

}  // namespace validity::sim

#endif  // VALIDITY_SIM_MESSAGE_H_
