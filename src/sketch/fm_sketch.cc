#include "sketch/fm_sketch.h"

#include <bit>
#include <cmath>

// The OR-merge word sweep is the hottest instruction stream inside every
// WILDFIRE receive (the fused combine + same-as-sender pass runs once per
// delivered convergecast). On x86-64 the c-word loops vectorize to AVX2
// OR/ANDNOT with a movemask-free reduction; the portable scalar loops stay
// as the fallback and are bit-identical by construction. Selection happens
// once at startup via cpuid so one binary serves both machines.
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define VALIDITY_SKETCH_X86_SIMD 1
#include <immintrin.h>
#endif

namespace validity::sketch {

namespace {

/// Fused-merge flag words: `gained` is nonzero iff the merge set at least
/// one new bit in `mine`; `excess` is nonzero iff `mine` holds bits beyond
/// `theirs` (i.e. merged != theirs).
struct MergeFlags {
  uint64_t gained;
  uint64_t excess;
};

uint64_t MergeOrWordsScalar(uint64_t* __restrict mine,
                            const uint64_t* __restrict theirs, size_t n) {
  uint64_t gained = 0;
  for (size_t i = 0; i < n; ++i) {
    gained |= theirs[i] & ~mine[i];
    mine[i] |= theirs[i];
  }
  return gained;
}

MergeFlags MergeOrCompareWordsScalar(uint64_t* __restrict mine,
                                     const uint64_t* __restrict theirs,
                                     size_t n) {
  uint64_t gained = 0;  // bits theirs adds to mine
  uint64_t excess = 0;  // bits mine holds beyond theirs
  for (size_t i = 0; i < n; ++i) {
    uint64_t m = mine[i];
    uint64_t t = theirs[i];
    gained |= t & ~m;
    excess |= m & ~t;
    mine[i] = m | t;
  }
  return MergeFlags{gained, excess};
}

#if VALIDITY_SKETCH_X86_SIMD

__attribute__((target("avx2"))) uint64_t MergeOrWordsAvx2(
    uint64_t* __restrict mine, const uint64_t* __restrict theirs, size_t n) {
  __m256i gained = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i m = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mine + i));
    __m256i t =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(theirs + i));
    gained = _mm256_or_si256(gained, _mm256_andnot_si256(m, t));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(mine + i),
                        _mm256_or_si256(m, t));
  }
  uint64_t g = _mm256_testz_si256(gained, gained) ? 0 : 1;
  for (; i < n; ++i) {
    g |= theirs[i] & ~mine[i];
    mine[i] |= theirs[i];
  }
  return g;
}

__attribute__((target("avx2"))) MergeFlags MergeOrCompareWordsAvx2(
    uint64_t* __restrict mine, const uint64_t* __restrict theirs, size_t n) {
  __m256i gained = _mm256_setzero_si256();
  __m256i excess = _mm256_setzero_si256();
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    __m256i m = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(mine + i));
    __m256i t =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(theirs + i));
    gained = _mm256_or_si256(gained, _mm256_andnot_si256(m, t));
    excess = _mm256_or_si256(excess, _mm256_andnot_si256(t, m));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(mine + i),
                        _mm256_or_si256(m, t));
  }
  MergeFlags flags{_mm256_testz_si256(gained, gained) ? 0u : 1u,
                   _mm256_testz_si256(excess, excess) ? 0u : 1u};
  for (; i < n; ++i) {
    uint64_t m = mine[i];
    uint64_t t = theirs[i];
    flags.gained |= t & ~m;
    flags.excess |= m & ~t;
    mine[i] = m | t;
  }
  return flags;
}

#endif  // VALIDITY_SKETCH_X86_SIMD

using MergeOrFn = uint64_t (*)(uint64_t* __restrict,
                               const uint64_t* __restrict, size_t);
using MergeCompareFn = MergeFlags (*)(uint64_t* __restrict,
                                      const uint64_t* __restrict, size_t);

// Constant-initialized to the scalar kernels so any merge running before
// dynamic initialization is still correct; the dynamic initializer below
// upgrades to AVX2 when the CPU has it. These three words are the one
// sanctioned piece of mutable global state in simulation code: written
// once at startup from cpuid (plus the ForceScalarSketchKernels test
// hook), and the AVX2/scalar kernels are bit-identical by contract
// (sketch_test cross-checks full blocks, tails, and empty inputs), so
// which kernel is installed can never change a result.
// NOLINT-DETERMINISM(static-state): cpuid kernel dispatch, written once
// at startup; both kernels are bit-identical (sketch_test cross-check).
MergeOrFn g_merge_or = &MergeOrWordsScalar;
// NOLINT-DETERMINISM(static-state): cpuid kernel dispatch, written once
// at startup; both kernels are bit-identical (sketch_test cross-check).
MergeCompareFn g_merge_compare = &MergeOrCompareWordsScalar;
// NOLINT-DETERMINISM(static-state): diagnostic label tracking the
// installed kernel (ActiveSketchKernel); never feeds simulation state.
const char* g_kernel_name = "scalar";

bool SelectSimdKernels() {
#if VALIDITY_SKETCH_X86_SIMD
  if (__builtin_cpu_supports("avx2")) {
    g_merge_or = &MergeOrWordsAvx2;
    g_merge_compare = &MergeOrCompareWordsAvx2;
    g_kernel_name = "avx2";
    return true;
  }
#endif
  return false;
}

[[maybe_unused]] const bool g_simd_selected = SelectSimdKernels();

/// Binomial(n, 1/2) drawn exactly as the popcount of n fair random bits.
uint64_t BinomialHalf(uint64_t n, Rng* rng) {
  uint64_t successes = 0;
  while (n >= 64) {
    successes += static_cast<uint64_t>(std::popcount(rng->Next()));
    n -= 64;
  }
  if (n > 0) {
    uint64_t mask = (n == 64) ? ~0ULL : ((1ULL << n) - 1);
    successes += static_cast<uint64_t>(std::popcount(rng->Next() & mask));
  }
  return successes;
}

}  // namespace

FmSketch::FmSketch(const FmParams& params) : words_(params.num_vectors, 0) {
  VALIDITY_CHECK(params.Validate().ok(), "bad FmParams");
}

FmSketch FmSketch::ForDistinctElement(const FmParams& params, Rng* rng) {
  FmSketch s(params);
  s.InsertDistinctElement(rng);
  return s;
}

void FmSketch::InsertDistinctElement(Rng* rng) {
  for (uint64_t& word : words_) {
    word |= (1ULL << rng->GeometricBitIndex());
  }
}

FmSketch FmSketch::ForMagnitude(const FmParams& params, uint64_t magnitude,
                                Rng* rng) {
  FmSketch s(params);
  for (uint64_t& word : s.words_) {
    // Successive binomial halving: of the elements that did not land on
    // bits 0..b-1, each lands on bit b with probability exactly 1/2. This
    // reproduces the exact joint distribution of the m-element multinomial
    // over bit positions in O(m/64 + log m) random words.
    uint64_t remaining = magnitude;
    for (int b = 0; b < 63 && remaining > 0; ++b) {
      uint64_t here = BinomialHalf(remaining, rng);
      if (here > 0) word |= (1ULL << b);
      remaining -= here;
    }
    if (remaining > 0) word |= (1ULL << 63);
  }
  return s;
}

bool FmSketch::MergeOr(const FmSketch& other) {
  VALIDITY_CHECK(words_.size() == other.words_.size(),
                 "merging sketches of different shapes (%zu vs %zu vectors)",
                 words_.size(), other.words_.size());
  return g_merge_or(words_.data(), other.words_.data(), words_.size()) != 0;
}

FmSketch::MergeOutcome FmSketch::MergeOrCompare(const FmSketch& other) {
  VALIDITY_CHECK(words_.size() == other.words_.size(),
                 "merging sketches of different shapes (%zu vs %zu vectors)",
                 words_.size(), other.words_.size());
  // changed: other adds at least one bit; same_as_other: other covers every
  // bit already here, i.e. the merged value equals other's. One pass.
  MergeFlags flags =
      g_merge_compare(words_.data(), other.words_.data(), words_.size());
  return MergeOutcome{flags.gained != 0, flags.excess == 0};
}

const char* ActiveSketchKernel() { return g_kernel_name; }

const char* ForceScalarSketchKernels(bool force_scalar) {
  if (force_scalar) {
    g_merge_or = &MergeOrWordsScalar;
    g_merge_compare = &MergeOrCompareWordsScalar;
    g_kernel_name = "scalar";
  } else {
    SelectSimdKernels();
  }
  return g_kernel_name;
}

int FmSketch::LowestZeroBit(uint32_t i) const {
  VALIDITY_DCHECK(i < words_.size());
  return std::countr_one(words_[i]);
}

double FmSketch::Estimate() const {
  double z_total = 0.0;
  for (uint32_t i = 0; i < words_.size(); ++i) {
    z_total += static_cast<double>(LowestZeroBit(i));
  }
  double z_bar = z_total / static_cast<double>(words_.size());
  return std::exp2(z_bar) / kFmPhi;
}

bool FmSketch::IsEmpty() const {
  for (uint64_t word : words_) {
    if (word != 0) return false;
  }
  return true;
}

FmSetEstimate EstimateSet(const FmParams& params,
                          const std::vector<int64_t>& magnitudes, Rng* rng) {
  FmSketch count_sketch(params);
  FmSketch sum_sketch(params);
  for (int64_t m : magnitudes) {
    VALIDITY_CHECK(m >= 0, "sum sketch requires non-negative values");
    count_sketch.InsertDistinctElement(rng);
    sum_sketch.MergeOr(
        FmSketch::ForMagnitude(params, static_cast<uint64_t>(m), rng));
  }
  return FmSetEstimate{count_sketch.Estimate(), sum_sketch.Estimate()};
}

}  // namespace validity::sketch
