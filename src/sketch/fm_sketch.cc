#include "sketch/fm_sketch.h"

#include <bit>
#include <cmath>

namespace validity::sketch {

namespace {

/// Binomial(n, 1/2) drawn exactly as the popcount of n fair random bits.
uint64_t BinomialHalf(uint64_t n, Rng* rng) {
  uint64_t successes = 0;
  while (n >= 64) {
    successes += static_cast<uint64_t>(std::popcount(rng->Next()));
    n -= 64;
  }
  if (n > 0) {
    uint64_t mask = (n == 64) ? ~0ULL : ((1ULL << n) - 1);
    successes += static_cast<uint64_t>(std::popcount(rng->Next() & mask));
  }
  return successes;
}

}  // namespace

FmSketch::FmSketch(const FmParams& params) : words_(params.num_vectors, 0) {
  VALIDITY_CHECK(params.Validate().ok(), "bad FmParams");
}

FmSketch FmSketch::ForDistinctElement(const FmParams& params, Rng* rng) {
  FmSketch s(params);
  s.InsertDistinctElement(rng);
  return s;
}

void FmSketch::InsertDistinctElement(Rng* rng) {
  for (uint64_t& word : words_) {
    word |= (1ULL << rng->GeometricBitIndex());
  }
}

FmSketch FmSketch::ForMagnitude(const FmParams& params, uint64_t magnitude,
                                Rng* rng) {
  FmSketch s(params);
  for (uint64_t& word : s.words_) {
    // Successive binomial halving: of the elements that did not land on
    // bits 0..b-1, each lands on bit b with probability exactly 1/2. This
    // reproduces the exact joint distribution of the m-element multinomial
    // over bit positions in O(m/64 + log m) random words.
    uint64_t remaining = magnitude;
    for (int b = 0; b < 63 && remaining > 0; ++b) {
      uint64_t here = BinomialHalf(remaining, rng);
      if (here > 0) word |= (1ULL << b);
      remaining -= here;
    }
    if (remaining > 0) word |= (1ULL << 63);
  }
  return s;
}

bool FmSketch::MergeOr(const FmSketch& other) {
  VALIDITY_CHECK(words_.size() == other.words_.size(),
                 "merging sketches of different shapes (%zu vs %zu vectors)",
                 words_.size(), other.words_.size());
  // Restrict-qualified pointer loop: the hottest operation in a WILDFIRE
  // run, written so the compiler vectorizes the word sweep.
  uint64_t* __restrict mine = words_.data();
  const uint64_t* __restrict theirs = other.words_.data();
  const size_t n = words_.size();
  uint64_t gained = 0;
  for (size_t i = 0; i < n; ++i) {
    gained |= theirs[i] & ~mine[i];
    mine[i] |= theirs[i];
  }
  return gained != 0;
}

FmSketch::MergeOutcome FmSketch::MergeOrCompare(const FmSketch& other) {
  VALIDITY_CHECK(words_.size() == other.words_.size(),
                 "merging sketches of different shapes (%zu vs %zu vectors)",
                 words_.size(), other.words_.size());
  // changed: other adds at least one bit; same_as_other: other covers every
  // bit already here, i.e. the merged value equals other's. One pass.
  uint64_t* __restrict mine = words_.data();
  const uint64_t* __restrict theirs = other.words_.data();
  const size_t n = words_.size();
  uint64_t gained = 0;  // bits other adds to this
  uint64_t excess = 0;  // bits this holds beyond other
  for (size_t i = 0; i < n; ++i) {
    uint64_t m = mine[i];
    uint64_t t = theirs[i];
    gained |= t & ~m;
    excess |= m & ~t;
    mine[i] = m | t;
  }
  return MergeOutcome{gained != 0, excess == 0};
}

int FmSketch::LowestZeroBit(uint32_t i) const {
  VALIDITY_DCHECK(i < words_.size());
  return std::countr_one(words_[i]);
}

double FmSketch::Estimate() const {
  double z_total = 0.0;
  for (uint32_t i = 0; i < words_.size(); ++i) {
    z_total += static_cast<double>(LowestZeroBit(i));
  }
  double z_bar = z_total / static_cast<double>(words_.size());
  return std::exp2(z_bar) / kFmPhi;
}

bool FmSketch::IsEmpty() const {
  for (uint64_t word : words_) {
    if (word != 0) return false;
  }
  return true;
}

FmSetEstimate EstimateSet(const FmParams& params,
                          const std::vector<int64_t>& magnitudes, Rng* rng) {
  FmSketch count_sketch(params);
  FmSketch sum_sketch(params);
  for (int64_t m : magnitudes) {
    VALIDITY_CHECK(m >= 0, "sum sketch requires non-negative values");
    count_sketch.InsertDistinctElement(rng);
    sum_sketch.MergeOr(
        FmSketch::ForMagnitude(params, static_cast<uint64_t>(m), rng));
  }
  return FmSetEstimate{count_sketch.Estimate(), sum_sketch.Estimate()};
}

}  // namespace validity::sketch
