// Flajolet–Martin probabilistic counting sketches (paper §5.2).
//
// An FmSketch is c bit-vectors of 64 bits each. Inserting one "distinct
// element" sets, in each vector i, bit b_i drawn with the exponential
// distribution P(b_i = k) = 2^-(k+1) (the paper's fair-coin-toss sequence).
// Vectors combine by bitwise OR — the duplicate-insensitive combine function
// that lets WILDFIRE flood partial aggregates along arbitrarily many paths.
//
// Estimation: z_i = index of the lowest 0 bit of vector i,
// z-bar = mean(z_i), estimate = 2^z-bar / 0.77351.
//
// count: each host inserts one element.
// sum:   a host with value m inserts m elements. Initialization is exact but
//        runs in O(c * (m/64 + log m)) rather than O(c * m): the multinomial
//        of m elements over bit positions is sampled by successive binomial
//        halving (bit b receives Binomial(remaining, 1/2) of the remaining
//        elements — popcounts of raw random words).

#ifndef VALIDITY_SKETCH_FM_SKETCH_H_
#define VALIDITY_SKETCH_FM_SKETCH_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace validity::sketch {

/// The Flajolet–Martin bias correction constant phi.
inline constexpr double kFmPhi = 0.77351;

/// Sketch shape: number of repetitions c (paper Lemma 5.1 requires c > 2 for
/// the factor-c guarantee; Fig. 6 shows c ~ 8 suffices in practice).
struct FmParams {
  uint32_t num_vectors = 8;

  Status Validate() const {
    if (num_vectors == 0) {
      return Status::InvalidArgument("FM sketch needs >= 1 vector");
    }
    return Status::Ok();
  }
};

class FmSketch {
 public:
  /// An unset sketch with zero vectors. Allocation-free: the default state
  /// of sketch slots (e.g. inside a scalar PartialAggregate) that are never
  /// merged or estimated.
  FmSketch() = default;

  /// An all-zero sketch with `params.num_vectors` vectors.
  explicit FmSketch(const FmParams& params);

  /// Sketch of a single distinct element (count initialization: the host
  /// "pretends to have an element distinct from other hosts").
  static FmSketch ForDistinctElement(const FmParams& params, Rng* rng);

  /// Sketch of `magnitude` distinct elements (sum initialization: a host
  /// with value m contributes m elements). Exact distribution, O(c log m).
  static FmSketch ForMagnitude(const FmParams& params, uint64_t magnitude,
                               Rng* rng);

  /// Inserts one additional distinct element.
  void InsertDistinctElement(Rng* rng);

  /// Bitwise-OR merge; the duplicate-insensitive combine. Returns true if
  /// any bit of *this changed (WILDFIRE re-floods only on change).
  bool MergeOr(const FmSketch& other);

  /// Outcome of a fused merge+compare pass.
  struct MergeOutcome {
    bool changed = false;        // *this gained at least one bit
    bool same_as_other = false;  // after the merge, *this == other
  };

  /// MergeOr plus the "does the sender already hold the merged value" test
  /// WILDFIRE runs after every combine, in one word-wise pass instead of
  /// two (merged == other iff other covers *this).
  MergeOutcome MergeOrCompare(const FmSketch& other);

  /// Lowest zero-bit index of vector i (the FM "z" statistic).
  int LowestZeroBit(uint32_t i) const;

  /// 2^mean(z) / phi.
  double Estimate() const;

  bool IsEmpty() const;
  uint32_t num_vectors() const { return static_cast<uint32_t>(words_.size()); }
  uint64_t word(uint32_t i) const { return words_[i]; }

  /// Wire size: c 64-bit vectors (paper: "the c B_i values each of size
  /// 32b"; we carry 64-bit vectors).
  size_t SizeBytes() const { return words_.size() * sizeof(uint64_t); }

  bool operator==(const FmSketch& other) const {
    return words_ == other.words_;
  }
  bool operator!=(const FmSketch& other) const { return !(*this == other); }

 private:
  std::vector<uint64_t> words_;  // words_[i] = bit-vector B_i
};

/// Name of the word-kernel implementation currently serving MergeOr /
/// MergeOrCompare: "avx2" on x86-64 hardware that supports it, "scalar"
/// otherwise. Both produce bit-identical sketches (OR/ANDNOT are exact);
/// the kernel is selected once at startup.
const char* ActiveSketchKernel();

/// Test hook: force the portable scalar kernels (true) or restore the
/// runtime-selected ones (false). Returns the kernel name now active.
/// Not thread-safe; tests only.
const char* ForceScalarSketchKernels(bool force_scalar);

/// Convenience for the Fig. 6 standalone evaluation: sketches every value of
/// `magnitudes` as if held by distinct hosts and returns (count_estimate,
/// sum_estimate).
struct FmSetEstimate {
  double count = 0;
  double sum = 0;
};
FmSetEstimate EstimateSet(const FmParams& params,
                          const std::vector<int64_t>& magnitudes, Rng* rng);

}  // namespace validity::sketch

#endif  // VALIDITY_SKETCH_FM_SKETCH_H_
