// Epidemic (gossip) aggregation — the §2.2 eventual-consistency comparator.
//
// The paper positions Single-Site Validity against gossip algorithms
// (Kempe et al. push-sum and friends): gossip tolerates random failures and
// converges to the true aggregate *eventually*, but during churn it offers
// only probabilistic, eventually-consistent semantics — there is no instant
// at which its running answer carries an SSV-style guarantee.
//
// Implemented here: push-sum (Kempe/Dobra/Gehrke FOCS'03) for sum / count /
// avg, and a push max/min variant. Each round (every delta), every active
// host splits its (value, weight) mass in two, keeps half, and pushes half
// to one uniformly chosen alive neighbor; the local estimate is value /
// weight. Mass conservation gives convergence at the rate of the underlying
// Markov chain's mixing time (Boyd et al.); a host crash destroys the mass
// it holds, which is exactly the failure mode that breaks validity.
//
// The protocol runs for a fixed number of rounds and declares hq's local
// estimate; the bench compares its round/message budget and churn error
// against WILDFIRE's guaranteed interval.

#ifndef VALIDITY_PROTOCOLS_GOSSIP_H_
#define VALIDITY_PROTOCOLS_GOSSIP_H_

#include <vector>

#include "protocols/protocol.h"

namespace validity::protocols {

struct GossipOptions {
  /// Gossip rounds to run (paper context: lower-bounded by the mixing time
  /// of the overlay's random walk).
  uint32_t rounds = 50;
  /// Seed of the per-host partner-selection stream.
  uint64_t partner_seed = 11;
};

class GossipProtocol : public ProtocolBase {
 public:
  /// Supports kCount, kSum, kAverage (push-sum) and kMin, kMax (push-max).
  GossipProtocol(sim::Simulator* sim, QueryContext ctx,
                 GossipOptions options = {});

  void Start(HostId hq) override;
  void OnMessage(HostId self, const sim::Message& msg) override;
  /// Session reuse: rebind context + options and re-seed the partner
  /// stream, so a reused instance's partner picks replay a fresh one's
  /// bit-for-bit (see ProtocolBase).
  void ResetForQuery(QueryContext ctx, const GossipOptions& options);
  std::string_view name() const override { return "gossip"; }
  size_t ResidentStateBytes() const override {
    return states_.ResidentBytes();
  }

  /// Local estimate currently held by `h` (value/weight for push-sum).
  double LocalEstimate(HostId h) const;

 private:
  enum LocalKind : uint32_t { kBroadcast = 1, kPush = 2 };
  enum LocalTimer : uint32_t { kTimerRound = 1, kTimerDeclare = 2 };

  void OnLocalTimer(HostId self, uint32_t local_id) override;

  /// Inline wire payload: push-sum mass or the min/max scalar. The
  /// activation broadcast carries an (ignored) zero payload of the same
  /// size, preserving the protocol's fixed 24-byte message format.
  struct PushPayload {
    double value = 0.0;
    double weight = 0.0;
    double scalar = 0.0;  // min/max variant
  };
  static constexpr uint32_t kPushWireBytes = 3 * sizeof(double);

  struct HostState {
    bool active = false;
    uint32_t rounds_left = 0;  // gossip exchanges still to run
    double value = 0.0;   // push-sum numerator mass
    double weight = 0.0;  // push-sum denominator mass
    double scalar = 0.0;  // min/max running extreme
  };

  bool IsExtremum() const {
    return ctx_.aggregate == AggregateKind::kMin ||
           ctx_.aggregate == AggregateKind::kMax;
  }

  void Activate(HostId self, int32_t hop);
  void DoRound(HostId self);

  GossipOptions options_;
  Rng partner_rng_;
  PagedStates<HostState> states_;
};

}  // namespace validity::protocols

#endif  // VALIDITY_PROTOCOLS_GOSSIP_H_
