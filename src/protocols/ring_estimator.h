// Protocol-specific network-size estimation on DHT rings (paper §5.4).
//
// Ring-structured P2P protocols (Chord / Viceroy / Pastry) place hosts at
// random identifiers on a unit ring; each host owns the segment back to its
// clockwise predecessor. A DHT cannot sample *hosts* uniformly — the only
// sampling primitive it has is routing a lookup to a uniformly random
// identifier, which lands on the identifier's successor. The owning segment
// is therefore drawn with probability proportional to its length
// (length-biased sampling, the inspection paradox).
//
// Under that sampling the unbiased size estimator is the mean reciprocal
// segment length: E[1/x] = sum_i P(seg_i) * (1/seg_i) = sum_i 1 = |H|
// exactly, so with s lookups returning segments x_1..x_s the estimate is
// (1/s) * sum_i 1/x_i — the harmonic form of the paper's s/x_s. Feeding
// index-uniform segments into the same estimator is badly biased upward
// (E[1/seg] over uniform segments diverges as the smallest spacing shrinks
// like 1/|H|^2); the statistical test in size_estimation_test.cc pins both
// facts down.
//
// The ring substrate simulates the identifier space: positions are a
// deterministic hash of host id, and segment ownership is recomputed over
// the alive hosts of the moment, exactly as a maintained DHT would.

#ifndef VALIDITY_PROTOCOLS_RING_ESTIMATOR_H_
#define VALIDITY_PROTOCOLS_RING_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace validity::protocols {

class RingSizeEstimator {
 public:
  /// `ring_seed` fixes the identifier hash; estimates draw from `rng`.
  RingSizeEstimator(const sim::Simulator* sim, uint64_t ring_seed);

  /// Ring position of `h` in [0, 1).
  double PositionOf(HostId h) const;

  /// Segment length owned by alive host `h` right now: the clockwise
  /// distance to its alive predecessor. Rebuilds the alive ring (O(n log n)).
  double SegmentOf(HostId h) const;

  /// Routes `s` lookups to uniform ring positions (landing on the position's
  /// owner, i.e. length-biased host sampling — the only sampling a DHT can
  /// perform) and returns the mean-reciprocal estimate of the alive count.
  /// Returns kInvalidArgument if no host is alive or s == 0.
  StatusOr<double> EstimateSize(uint32_t s, Rng* rng) const;

 private:
  /// Alive hosts sorted by ring position, with parallel segment lengths.
  struct AliveRing {
    std::vector<HostId> hosts;
    std::vector<double> positions;  // sorted ascending, parallel to hosts
    std::vector<double> segments;   // segments[i] owned by hosts[i]
  };
  AliveRing BuildAliveRing() const;

  const sim::Simulator* sim_;
  uint64_t ring_seed_;
};

}  // namespace validity::protocols

#endif  // VALIDITY_PROTOCOLS_RING_ESTIMATOR_H_
