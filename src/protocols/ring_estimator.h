// Protocol-specific network-size estimation on DHT rings (paper §5.4).
//
// Ring-structured P2P protocols (Chord / Viceroy / Pastry) place hosts at
// random identifiers on a unit ring; each host owns the segment back to its
// clockwise predecessor. With s sampled hosts whose segments total X_s, the
// estimator s / X_s approximates |H| (segment lengths average 1/|H|).
//
// The ring substrate simulates the identifier space: positions are a
// deterministic hash of host id, and segment ownership is recomputed over
// the alive hosts of the moment, exactly as a maintained DHT would.

#ifndef VALIDITY_PROTOCOLS_RING_ESTIMATOR_H_
#define VALIDITY_PROTOCOLS_RING_ESTIMATOR_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace validity::protocols {

class RingSizeEstimator {
 public:
  /// `ring_seed` fixes the identifier hash; estimates draw from `rng`.
  RingSizeEstimator(const sim::Simulator* sim, uint64_t ring_seed);

  /// Ring position of `h` in [0, 1).
  double PositionOf(HostId h) const;

  /// Segment length owned by alive host `h` right now: the clockwise
  /// distance to its alive predecessor. Rebuilds the alive ring (O(n log n)).
  double SegmentOf(HostId h) const;

  /// s / X_s over a uniform sample of s alive hosts (with replacement).
  /// Returns kInvalidArgument if no host is alive or s == 0.
  StatusOr<double> EstimateSize(uint32_t s, Rng* rng) const;

 private:
  /// Alive hosts sorted by ring position, with parallel segment lengths.
  struct AliveRing {
    std::vector<HostId> hosts;
    std::vector<double> segments;  // segments[i] owned by hosts[i]
  };
  AliveRing BuildAliveRing() const;

  const sim::Simulator* sim_;
  uint64_t ring_seed_;
};

}  // namespace validity::protocols

#endif  // VALIDITY_PROTOCOLS_RING_ESTIMATOR_H_
