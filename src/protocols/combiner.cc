#include "protocols/combiner.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace validity::protocols {

const char* CombinerKindName(CombinerKind kind) {
  switch (kind) {
    case CombinerKind::kMin:
      return "min";
    case CombinerKind::kMax:
      return "max";
    case CombinerKind::kFmCount:
      return "fm-count";
    case CombinerKind::kFmSum:
      return "fm-sum";
    case CombinerKind::kFmAverage:
      return "fm-avg";
    case CombinerKind::kUnionCount:
      return "union-count";
    case CombinerKind::kUnionSum:
      return "union-sum";
    case CombinerKind::kUnionAverage:
      return "union-avg";
  }
  return "?";
}

CombinerKind CombinerFor(AggregateKind kind, bool exact) {
  switch (kind) {
    case AggregateKind::kMin:
      return CombinerKind::kMin;
    case AggregateKind::kMax:
      return CombinerKind::kMax;
    case AggregateKind::kCount:
      return exact ? CombinerKind::kUnionCount : CombinerKind::kFmCount;
    case AggregateKind::kSum:
      return exact ? CombinerKind::kUnionSum : CombinerKind::kFmSum;
    case AggregateKind::kAverage:
      return exact ? CombinerKind::kUnionAverage : CombinerKind::kFmAverage;
  }
  VALIDITY_CHECK(false, "unknown aggregate kind");
  return CombinerKind::kMin;
}

PartialAggregate PartialAggregate::Initial(CombinerKind kind, HostId self,
                                           double value,
                                           const sketch::FmParams& params,
                                           Rng* rng) {
  PartialAggregate a(kind);
  switch (kind) {
    case CombinerKind::kMin:
    case CombinerKind::kMax:
      a.scalar_ = value;
      return a;
    case CombinerKind::kFmCount:
      a.primary_ = sketch::FmSketch::ForDistinctElement(params, rng);
      return a;
    case CombinerKind::kFmSum: {
      VALIDITY_CHECK(value >= 0 && value == std::floor(value),
                     "fm-sum requires non-negative integer values, got %f",
                     value);
      a.primary_ = sketch::FmSketch::ForMagnitude(
          params, static_cast<uint64_t>(value), rng);
      return a;
    }
    case CombinerKind::kFmAverage: {
      VALIDITY_CHECK(value >= 0 && value == std::floor(value),
                     "fm-avg requires non-negative integer values, got %f",
                     value);
      a.primary_ = sketch::FmSketch::ForMagnitude(
          params, static_cast<uint64_t>(value), rng);
      a.secondary_ = sketch::FmSketch::ForDistinctElement(params, rng);
      return a;
    }
    case CombinerKind::kUnionCount:
    case CombinerKind::kUnionSum:
    case CombinerKind::kUnionAverage:
      a.items_.emplace(self, value);
      return a;
  }
  VALIDITY_CHECK(false, "unknown combiner kind");
  return a;
}

PartialAggregate PartialAggregate::Identity(CombinerKind kind,
                                            const sketch::FmParams& params) {
  PartialAggregate a(kind);
  switch (kind) {
    case CombinerKind::kMin:
      a.scalar_ = std::numeric_limits<double>::infinity();
      return a;
    case CombinerKind::kMax:
      a.scalar_ = -std::numeric_limits<double>::infinity();
      return a;
    case CombinerKind::kFmCount:
    case CombinerKind::kFmSum:
      a.primary_ = sketch::FmSketch(params);
      return a;
    case CombinerKind::kFmAverage:
      a.primary_ = sketch::FmSketch(params);
      a.secondary_ = sketch::FmSketch(params);
      return a;
    case CombinerKind::kUnionCount:
    case CombinerKind::kUnionSum:
    case CombinerKind::kUnionAverage:
      return a;
  }
  VALIDITY_CHECK(false, "unknown combiner kind");
  return a;
}

PartialAggregate PartialAggregate::FromScalar(CombinerKind kind,
                                              double value) {
  VALIDITY_DCHECK(kind == CombinerKind::kMin || kind == CombinerKind::kMax,
                  "FromScalar is for scalar combiners");
  PartialAggregate a(kind);
  a.scalar_ = value;
  return a;
}

bool PartialAggregate::CombineFrom(const PartialAggregate& other) {
  VALIDITY_CHECK(kind_ == other.kind_, "combining %s with %s",
                 CombinerKindName(kind_), CombinerKindName(other.kind_));
  switch (kind_) {
    case CombinerKind::kMin:
      if (other.scalar_ < scalar_) {
        scalar_ = other.scalar_;
        return true;
      }
      return false;
    case CombinerKind::kMax:
      if (other.scalar_ > scalar_) {
        scalar_ = other.scalar_;
        return true;
      }
      return false;
    case CombinerKind::kFmCount:
    case CombinerKind::kFmSum:
      return primary_.MergeOr(other.primary_);
    case CombinerKind::kFmAverage: {
      bool changed = primary_.MergeOr(other.primary_);
      changed |= secondary_.MergeOr(other.secondary_);
      return changed;
    }
    case CombinerKind::kUnionCount:
    case CombinerKind::kUnionSum:
    case CombinerKind::kUnionAverage: {
      bool changed = false;
      for (const auto& [id, value] : other.items_) {
        changed |= items_.emplace(id, value).second;
      }
      return changed;
    }
  }
  VALIDITY_CHECK(false, "unknown combiner kind");
  return false;
}

PartialAggregate::CombineOutcome PartialAggregate::CombineCompare(
    const PartialAggregate& other) {
  VALIDITY_CHECK(kind_ == other.kind_, "combining %s with %s",
                 CombinerKindName(kind_), CombinerKindName(other.kind_));
  switch (kind_) {
    case CombinerKind::kMin:
    case CombinerKind::kMax: {
      bool changed = CombineFrom(other);
      return CombineOutcome{changed, scalar_ == other.scalar_};
    }
    case CombinerKind::kFmCount:
    case CombinerKind::kFmSum: {
      auto m = primary_.MergeOrCompare(other.primary_);
      return CombineOutcome{m.changed, m.same_as_other};
    }
    case CombinerKind::kFmAverage: {
      auto p = primary_.MergeOrCompare(other.primary_);
      auto s = secondary_.MergeOrCompare(other.secondary_);
      return CombineOutcome{p.changed || s.changed,
                            p.same_as_other && s.same_as_other};
    }
    case CombinerKind::kUnionCount:
    case CombinerKind::kUnionSum:
    case CombinerKind::kUnionAverage: {
      bool changed = false;
      for (const auto& [id, value] : other.items_) {
        changed |= items_.emplace(id, value).second;
      }
      // The merged set contains other's set, so equality reduces to a size
      // check (a host id always maps to the same value within one query,
      // the invariant every duplicate-insensitive combine relies on).
      return CombineOutcome{changed, items_.size() == other.items_.size()};
    }
  }
  VALIDITY_CHECK(false, "unknown combiner kind");
  return CombineOutcome{};
}

bool PartialAggregate::SameAs(const PartialAggregate& other) const {
  if (kind_ != other.kind_) return false;
  switch (kind_) {
    case CombinerKind::kMin:
    case CombinerKind::kMax:
      return scalar_ == other.scalar_;
    case CombinerKind::kFmCount:
    case CombinerKind::kFmSum:
      return primary_ == other.primary_;
    case CombinerKind::kFmAverage:
      return primary_ == other.primary_ && secondary_ == other.secondary_;
    case CombinerKind::kUnionCount:
    case CombinerKind::kUnionSum:
    case CombinerKind::kUnionAverage:
      return items_ == other.items_;
  }
  return false;
}

double PartialAggregate::Estimate() const {
  switch (kind_) {
    case CombinerKind::kMin:
    case CombinerKind::kMax:
      return scalar_;
    case CombinerKind::kFmCount:
    case CombinerKind::kFmSum:
      return primary_.IsEmpty() ? 0.0 : primary_.Estimate();
    case CombinerKind::kFmAverage: {
      if (secondary_.IsEmpty()) return 0.0;
      return primary_.Estimate() / secondary_.Estimate();
    }
    case CombinerKind::kUnionCount:
      return static_cast<double>(items_.size());
    case CombinerKind::kUnionSum: {
      double total = 0.0;
      for (const auto& [id, value] : items_) total += value;
      return total;
    }
    case CombinerKind::kUnionAverage: {
      if (items_.empty()) return 0.0;
      double total = 0.0;
      for (const auto& [id, value] : items_) total += value;
      return total / static_cast<double>(items_.size());
    }
  }
  VALIDITY_CHECK(false, "unknown combiner kind");
  return 0.0;
}

size_t PartialAggregate::SizeBytes() const {
  switch (kind_) {
    case CombinerKind::kMin:
    case CombinerKind::kMax:
      return sizeof(double);
    case CombinerKind::kFmCount:
    case CombinerKind::kFmSum:
      return primary_.SizeBytes();
    case CombinerKind::kFmAverage:
      return primary_.SizeBytes() + secondary_.SizeBytes();
    case CombinerKind::kUnionCount:
      return items_.size() * sizeof(HostId);
    case CombinerKind::kUnionSum:
    case CombinerKind::kUnionAverage:
      return items_.size() * (sizeof(HostId) + sizeof(double));
  }
  return 0;
}

}  // namespace validity::protocols
