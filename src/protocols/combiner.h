// Partial aggregates and duplicate-insensitive combine functions (§5.1-§5.2).
//
// WILDFIRE floods partial aggregates along every path, so a host's value can
// reach the querying host many times; the combine function must therefore be
// duplicate-insensitive (idempotent, commutative, associative — a join
// semilattice). The library ships three families:
//
//   scalar    min / max            — the query itself is the combine fn;
//   FM sketch count / sum / avg    — Flajolet–Martin bit-vectors, OR-merge
//                                    (the paper's §5.2 operators);
//   id-union  count / sum / avg    — exact duplicate-insensitive combiners
//                                    that carry explicit (host, value) sets.
//                                    Message size is O(|H|) — impractical on
//                                    a real network, but invaluable in tests
//                                    and oracles because they isolate
//                                    protocol behaviour from sketch error.

#ifndef VALIDITY_PROTOCOLS_COMBINER_H_
#define VALIDITY_PROTOCOLS_COMBINER_H_

#include <cstdint>
#include <map>

#include "common/aggregate.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "sketch/fm_sketch.h"

namespace validity::protocols {

enum class CombinerKind : uint8_t {
  kMin,
  kMax,
  kFmCount,
  kFmSum,
  kFmAverage,     // carries a sum sketch and a count sketch
  kUnionCount,    // exact: set of host ids
  kUnionSum,      // exact: host id -> value map
  kUnionAverage,  // exact: host id -> value map
};

const char* CombinerKindName(CombinerKind kind);

/// The duplicate-insensitive combiner matching an aggregate query.
/// `exact` selects the id-union family instead of FM sketches.
CombinerKind CombinerFor(AggregateKind kind, bool exact);

/// A host's running partial aggregate A_h.
///
/// Value semantics; copying is cheap for scalar/FM kinds (FM payload is
/// c 64-bit words). Equality is structural, which WILDFIRE uses for its
/// "did my aggregate change / does my neighbor already know this" tests.
class PartialAggregate {
 public:
  /// An unset aggregate (kind kMin, no payload). Exists so pooled message
  /// bodies can default-construct their aggregate slot without touching the
  /// allocator; overwrite it (copy-assign) before use.
  PartialAggregate() = default;

  /// The initial A_h of host `self` holding attribute `value`. For FM kinds
  /// the host's sketch bits are drawn from `rng` (each host derives its own
  /// deterministic stream). `value` must be a non-negative integer for
  /// kFmSum / kFmAverage (attribute values in the paper are integers in
  /// [10, 500]).
  static PartialAggregate Initial(CombinerKind kind, HostId self, double value,
                                  const sketch::FmParams& params, Rng* rng);

  /// An identity element (combining with it never changes the other side):
  /// +inf for min, -inf for max, empty sketch/sets otherwise. Used by hosts
  /// that participate in forwarding but contribute no value.
  static PartialAggregate Identity(CombinerKind kind,
                                   const sketch::FmParams& params);

  /// A scalar (kMin/kMax) aggregate holding `value`. Allocation-free; the
  /// receive path for inline scalar payloads reconstructs aggregates with
  /// this.
  static PartialAggregate FromScalar(CombinerKind kind, double value);

  CombinerKind kind() const { return kind_; }
  /// The scalar payload of a kMin/kMax aggregate (what FromScalar stores).
  double scalar_value() const { return scalar_; }

  /// A_h := Combine(A_h, other). Returns true iff A_h changed.
  bool CombineFrom(const PartialAggregate& other);

  /// Structural equality (same information content).
  bool SameAs(const PartialAggregate& other) const;

  /// Outcome of a fused combine+compare (see CombineCompare).
  struct CombineOutcome {
    bool changed = false;        // A_h changed
    bool same_as_other = false;  // after combining, A_h == other
  };

  /// CombineFrom fused with the SameAs(other) test WILDFIRE runs after
  /// every combine — one pass over the FM words instead of two.
  CombineOutcome CombineCompare(const PartialAggregate& other);

  /// Final answer extraction at the querying host.
  double Estimate() const;

  /// Approximate wire size of the payload.
  size_t SizeBytes() const;

 private:
  explicit PartialAggregate(CombinerKind kind) : kind_(kind) {}

  CombinerKind kind_ = CombinerKind::kMin;
  double scalar_ = 0.0;                 // min / max
  sketch::FmSketch primary_;            // count or sum sketch
  sketch::FmSketch secondary_;          // count sketch for kFmAverage
  std::map<HostId, double> items_;      // union kinds
};

}  // namespace validity::protocols

#endif  // VALIDITY_PROTOCOLS_COMBINER_H_
