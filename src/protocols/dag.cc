#include "protocols/dag.h"

#include <algorithm>

namespace validity::protocols {

DagProtocol::DagProtocol(sim::Simulator* sim, QueryContext ctx,
                         DagOptions options)
    : ProtocolBase(sim, std::move(ctx)), options_(options) {
  VALIDITY_CHECK(options_.max_parents >= 1, "DAG needs k >= 1");
}

const std::vector<HostId>& DagProtocol::ParentsOf(HostId h) const {
  const HostState* st = states_.Find(h);
  if (st == nullptr || !st->active) return empty_;
  return st->parents;
}

int32_t DagProtocol::DepthOf(HostId h) const {
  const HostState* st = states_.Find(h);
  if (st == nullptr || !st->active) return -1;
  return st->depth;
}

SimTime DagProtocol::SlotTime(int32_t depth, SimTime activation_time) const {
  SimTime delta = sim_->options().delta;
  SimTime slot = start_time_ +
                 (2.0 * ctx_.d_hat - static_cast<double>(depth) - 0.5) * delta;
  return std::max(slot, activation_time + 0.5 * delta);
}

void DagProtocol::Activate(HostId self, HostId first_parent, int32_t depth) {
  HostState& st = states_.Touch(self);
  st.active = true;
  st.depth = depth;
  if (first_parent != kInvalidHost) st.parents.push_back(first_parent);
  st.agg = InitialAggregate(self);

  // Forward the query; the forward registers this host with its first
  // parent (additional parents get explicit registrations in kEager).
  sim::Message out;
  out.kind = MakeKind(kBroadcast);
  out.StoreInline(
      DagBroadcastPayload{
          depth,
          options_.pacing == TreePacing::kEager ? first_parent : kInvalidHost},
      sizeof(int32_t) + sizeof(HostId));
  sim_->SendToNeighbors(self, std::move(out));

  SimTime delta = sim_->options().delta;
  if (options_.pacing == TreePacing::kEager) {
    ScheduleLocalTimer(self, sim_->Now() + kChildDiscoveryDelay * delta,
                       kTimerChildrenKnown);
  }
  // The slot handler requeues at the same instant so reports delivered at
  // exactly the slot time are folded in before SendUp.
  ScheduleLocalTimer(self, SlotTime(depth, sim_->Now()), kTimerSlot);
}

void DagProtocol::OnLocalTimer(HostId self, uint32_t local_id) {
  switch (local_id) {
    case kTimerChildrenKnown:
      states_.Find(self)->children_known = true;
      MaybeCompleteEager(self);
      break;
    case kTimerSlot:
      ScheduleLocalTimer(self, sim_->Now(), kTimerSendUp);
      break;
    case kTimerSendUp:
      SendUp(self);
      break;
    case kTimerDeclare:
      Declare(self);
      break;
  }
}

void DagProtocol::AdoptExtraParent(HostId self, HostId parent) {
  HostState& st = *states_.Find(self);
  st.parents.push_back(parent);
  if (options_.pacing != TreePacing::kEager) return;
  // Tell the extra parent it has a child to wait for.
  sim::Message out;
  out.kind = MakeKind(kRegister);
  out.StoreInline(RegisterPayload{parent}, sizeof(HostId));
  if (sim_->options().medium == sim::MediumKind::kWireless) {
    sim_->SendToNeighbors(self, std::move(out));
  } else {
    sim_->SendTo(self, parent, std::move(out));
  }
}

void DagProtocol::Start(HostId hq) {
  VALIDITY_CHECK(sim_->IsAlive(hq), "querying host must be alive");
  hq_ = hq;
  start_time_ = sim_->Now();
  states_.Reset(sim_->num_hosts());
  Activate(hq, kInvalidHost, 0);
  ScheduleLocalTimer(hq, Horizon(), kTimerDeclare);
}

void DagProtocol::OnMessage(HostId self, const sim::Message& msg) {
  uint32_t local = 0;
  if (!DecodeKind(msg.kind, &local)) return;
  HostState* stp = states_.Find(self);

  if (local == kBroadcast) {
    const auto in = msg.LoadInline<DagBroadcastPayload>();
    if (stp == nullptr || !stp->active) {
      if (sim_->Now() >= Horizon()) return;
      Activate(self, msg.src, in.hop + 1);
      return;
    }
    HostState& st = *stp;
    // Additional parent: a same-wave copy from one level up, adopted until
    // k parents are held (copies from the previous wave all land at this
    // same instant, before any report could have been sent).
    if (!st.sent_up && in.hop == st.depth - 1 &&
        st.parents.size() < options_.max_parents &&
        std::find(st.parents.begin(), st.parents.end(), msg.src) ==
            st.parents.end()) {
      AdoptExtraParent(self, msg.src);
    }
    // Child registration with the first parent (kEager only; kSlotted
    // forwards carry kInvalidHost here).
    if (in.first_parent == self) st.pending_children.push_back(msg.src);
    return;
  }

  if (local == kRegister) {
    if (msg.LoadInline<RegisterPayload>().to_parent != self) return;
    if (stp == nullptr || !stp->active || stp->sent_up) return;
    stp->pending_children.push_back(msg.src);
    return;
  }

  if (local == kReport) {
    const auto& body = static_cast<const DagReportBody&>(*msg.body);
    if (std::find(body.to_parents.begin(), body.to_parents.end(), self) ==
        body.to_parents.end()) {
      return;  // overheard on the wireless medium / not an addressee
    }
    if (stp == nullptr || !stp->active || stp->sent_up) return;
    HostState& st = *stp;
    st.agg->CombineFrom(body.agg);  // duplicate-insensitive merge
    if (self == hq_) result_.last_update_at = sim_->Now();
    auto it = std::find(st.pending_children.begin(), st.pending_children.end(),
                        msg.src);
    if (it != st.pending_children.end()) st.pending_children.erase(it);
    if (options_.pacing == TreePacing::kEager) MaybeCompleteEager(self);
  }
}

void DagProtocol::OnNeighborFailure(HostId self, HostId failed) {
  if (options_.pacing != TreePacing::kEager) return;
  HostState* stp = states_.Find(self);
  if (stp == nullptr) return;
  HostState& st = *stp;
  if (!st.active || st.sent_up) return;
  auto it =
      std::find(st.pending_children.begin(), st.pending_children.end(), failed);
  if (it != st.pending_children.end()) {
    st.pending_children.erase(it);
    MaybeCompleteEager(self);
  }
}

void DagProtocol::MaybeCompleteEager(HostId self) {
  HostState& st = *states_.Find(self);
  if (!st.active || st.sent_up || !st.children_known) return;
  if (!st.pending_children.empty()) return;
  SendUp(self);
}

void DagProtocol::SendUp(HostId self) {
  HostState& st = *states_.Find(self);
  if (!st.active || st.sent_up) return;
  st.sent_up = true;
  if (self == hq_) {
    if (options_.pacing == TreePacing::kEager) Declare(self);
    return;  // kSlotted: the root declares at the horizon
  }
  DagReportBody* body = report_pool_.Acquire();
  body->agg = *st.agg;
  body->to_parents = st.parents;
  sim::Message out;
  out.kind = MakeKind(kReport);
  out.body = sim::BodyRef(body);
  if (sim_->options().medium == sim::MediumKind::kWireless) {
    // One transmission reaches every parent (paper §6.6: on Grid the DAG
    // convergecast costs the same as the tree's, whatever k is).
    sim_->SendToNeighbors(self, std::move(out));
    return;
  }
  for (HostId p : st.parents) {
    if (sim_->IsAlive(p)) sim_->SendTo(self, p, out);
  }
}

void DagProtocol::Declare(HostId self) {
  if (result_.declared) return;
  HostState& st = *states_.Find(self);
  result_.value = st.agg->Estimate();
  result_.declared_at = sim_->Now();
  result_.declared = true;
}

}  // namespace validity::protocols
