// Protocol-aware byzantine message corruption (sim/fault.h's mutator).
//
// The fault plane keeps protocol internals untouched: a byzantine host is an
// ordinary host whose outgoing traffic is rewritten at each receiver's
// doorstep by a ByzantineInterposer. This file supplies the standard
// mutator implementing the three ByzantineMode behaviors against the
// repo's wire formats:
//
//  - kInflate merges phantom contributions into every forwarded aggregate:
//    pooled AggregateBody payloads get a precomputed inflation aggregate
//    OR-merged in (FM sketches are duplicate-insensitive, so the attack
//    must add *new* phantom elements, not replay old ones); inline scalar
//    payloads (wildfire min/max, gossip push-sum mass, spanning-tree exact
//    partials) get extreme values or padded counts.
//  - kDeadenReplies suppresses reply-channel traffic (local kind >= 2 by
//    the repo-wide channel convention: 1 = dissemination, >= 2 = replies /
//    reports / pushes) while letting dissemination through — the host
//    helps spread the query but swallows every answer routed through it.
//  - kStaleReplay remembers the first payload each byzantine host sends
//    per message kind and replays it in place of all later ones — stale
//    version numbers, stale partial aggregates.
//
// Mutation runs on the fault path only, so it may allocate (MakeHeapBody);
// the no-fault hot path never constructs a mutator. Shared message bodies
// are never mutated in place — corrupted aggregates always travel in a
// fresh body, because the original is shared with other in-flight
// deliveries of the same fan-out.

#ifndef VALIDITY_PROTOCOLS_BYZANTINE_H_
#define VALIDITY_PROTOCOLS_BYZANTINE_H_

#include <unordered_map>

#include "protocols/combiner.h"
#include "protocols/factory.h"
#include "sim/fault.h"

namespace validity::protocols {

class StandardByzantineMutator : public sim::ByzantineMutator {
 public:
  /// `protocol` and `combiner` describe the run whose traffic is being
  /// corrupted; `num_hosts` anchors phantom host ids above the real id
  /// range. Construction precomputes the kInflate aggregate (O(phantoms)
  /// sketch insertions); the per-message path is mutation only.
  StandardByzantineMutator(ProtocolKind protocol, const sim::FaultSpec& spec,
                           CombinerKind combiner,
                           const sketch::FmParams& fm, uint32_t num_hosts);

  bool MutateFromByzantine(HostId src, sim::Message* msg) override;

 private:
  void Inflate(sim::Message* msg);
  void StaleReplay(HostId src, sim::Message* msg);

  struct CachedPayload {
    uint32_t inline_bytes = 0;
    unsigned char inline_data[sim::kInlinePayloadBytes] = {};
    sim::BodyRef body;
  };

  ProtocolKind protocol_;
  sim::FaultSpec spec_;
  CombinerKind combiner_;
  uint32_t phantoms_ = 0;
  PartialAggregate inflation_;
  /// kStaleReplay: first payload seen per (kind << 32 | src).
  // NOLINT-DETERMINISM(unordered-container): keyed try_emplace/lookup
  // only (byzantine.cc); the cache is never iterated, so bucket order
  // cannot leak into corrupted payloads.
  std::unordered_map<uint64_t, CachedPayload> stale_cache_;
};

}  // namespace validity::protocols

#endif  // VALIDITY_PROTOCOLS_BYZANTINE_H_
