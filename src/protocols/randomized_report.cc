#include "protocols/randomized_report.h"

#include <algorithm>
#include <cmath>

namespace validity::protocols {

RandomizedReportProtocol::RandomizedReportProtocol(
    sim::Simulator* sim, QueryContext ctx, RandomizedReportOptions options)
    : ProtocolBase(sim, std::move(ctx)) {
  Configure(options);
}

void RandomizedReportProtocol::Configure(
    const RandomizedReportOptions& options) {
  options_ = options;
  VALIDITY_CHECK(ctx_.aggregate == AggregateKind::kCount ||
                     ctx_.aggregate == AggregateKind::kSum,
                 "randomized report estimates count or sum only");
  VALIDITY_CHECK(options_.epsilon > 0 && options_.epsilon < 1);
  VALIDITY_CHECK(options_.zeta > 0 && options_.zeta < 1);
  if (options_.p_override > 0.0) {
    p_ = std::min(1.0, options_.p_override);
  } else {
    VALIDITY_CHECK(options_.n_estimate >= 1.0);
    p_ = std::min(1.0, 4.0 /
                           (options_.epsilon * options_.epsilon *
                            options_.n_estimate) *
                           std::log(2.0 / options_.zeta));
  }
}

void RandomizedReportProtocol::ResetForQuery(
    QueryContext ctx, const RandomizedReportOptions& options) {
  ProtocolBase::ResetForQuery(std::move(ctx));
  Configure(options);
}

void RandomizedReportProtocol::Activate(HostId self, int32_t depth) {
  active_.Touch(self) = 1;

  sim::Message out;
  out.kind = MakeKind(kBroadcast);
  out.StoreInline(FloodPayload{depth, p_}, sizeof(int32_t) + sizeof(double));
  sim_->SendToNeighbors(self, std::move(out));

  // Flip the report coin (deterministic per host and query).
  Rng coin(Mix64(options_.coin_seed ^
                 (0xa0761d6478bd642fULL + static_cast<uint64_t>(self))));
  if (!coin.Bernoulli(p_)) return;
  if (self == hq_) {
    ++reports_collected_;
    sample_sum_ += HostValue(self);
    return;
  }
  sim::Message msg;
  msg.kind = MakeKind(kReport);
  msg.StoreInline(SampleReportPayload{HostValue(self)}, sizeof(double));
  sim_->SendDirect(self, hq_, std::move(msg));
}

void RandomizedReportProtocol::Start(HostId hq) {
  VALIDITY_CHECK(sim_->IsAlive(hq), "querying host must be alive");
  hq_ = hq;
  start_time_ = sim_->Now();
  active_.Reset(sim_->num_hosts());
  reports_collected_ = 0;
  sample_sum_ = 0.0;
  Activate(hq, 0);
  ScheduleLocalTimer(hq, Horizon(), kTimerDeclare);
}

void RandomizedReportProtocol::OnLocalTimer(HostId self, uint32_t local_id) {
  (void)self;
  if (local_id != kTimerDeclare) return;
  double scale = 1.0 / p_;
  result_.value = ctx_.aggregate == AggregateKind::kCount
                      ? static_cast<double>(reports_collected_) * scale
                      : sample_sum_ * scale;
  result_.declared_at = sim_->Now();
  result_.declared = true;
}

void RandomizedReportProtocol::OnMessage(HostId self, const sim::Message& msg) {
  uint32_t local = 0;
  if (!DecodeKind(msg.kind, &local)) return;

  if (local == kBroadcast) {
    const uint8_t* active = active_.Find(self);
    if (active != nullptr && *active) return;
    if (sim_->Now() >= Horizon()) return;
    Activate(self, msg.LoadInline<FloodPayload>().hop + 1);
    return;
  }

  if (local == kReport && self == hq_) {
    if (sim_->Now() > Horizon()) return;
    ++reports_collected_;
    sample_sum_ += msg.LoadInline<SampleReportPayload>().value;
  }
}

}  // namespace validity::protocols
