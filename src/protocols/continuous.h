// Continuous Single-Site Validity (paper §4.2).
//
// A continuous query registered at hq for [0, T_total] must return, at each
// report instant t, a value v_t = q(H) with HC <= H <= HU *defined over the
// recent window [t - W, t]* — the naive whole-history HC degenerates to the
// empty set under churn. No algorithm exists for W < D * delta, so the
// executor validates W >= 2 * D-hat * delta and evaluates one WILDFIRE
// round per window: the round issued at t - W declares at
// t = (t - W) + 2 * D-hat * delta <= window end, and its one-time validity
// interval [t - W, t'] nests inside the window, so windowed Continuous SSV
// follows from Theorem 5.1 round by round.
//
// The executor is the simulator's attached HostProgram and multiplexes
// callbacks to the rounds still in flight (at most the two most recent:
// W >= 2 * D-hat * delta bounds straggler lifetime to one window). Each
// round rejects foreign messages and timers by its per-instance tag, so
// stale traffic from a finished round cannot corrupt the next one.

#ifndef VALIDITY_PROTOCOLS_CONTINUOUS_H_
#define VALIDITY_PROTOCOLS_CONTINUOUS_H_

#include <memory>
#include <vector>

#include "protocols/wildfire.h"

namespace validity::protocols {

struct ContinuousOptions {
  /// Window length W; must be >= 2 * d_hat * delta.
  SimTime window = 0;
  /// Number of windows to evaluate.
  uint32_t num_windows = 1;
};

struct WindowResult {
  SimTime issued_at = 0;
  SimTime declared_at = 0;
  double value = 0;
  bool declared = false;
};

class ContinuousWildfire : public sim::HostProgram {
 public:
  /// `ctx.sketch_seed` seeds window 0; each window derives a fresh stream.
  ContinuousWildfire(sim::Simulator* sim, QueryContext ctx,
                     ContinuousOptions options,
                     WildfireOptions wildfire_options = {});

  /// Registers the continuous query at `hq` at the current time; rounds are
  /// scheduled every `window`. Run the simulator afterwards.
  Status Start(HostId hq);

  /// Per-window declared values (populated as the simulation runs).
  const std::vector<WindowResult>& results() const { return results_; }

  /// The protocol instance of window `w` (for oracle interval computation).
  const WildfireProtocol& RoundProtocol(uint32_t w) const {
    return *rounds_[w];
  }

  // HostProgram: fan callbacks out to the in-flight rounds; per-instance
  // tags inside each round drop whatever is not theirs.
  void OnMessage(HostId self, const sim::Message& msg) override;
  void OnTimer(HostId self, uint64_t timer_id) override;
  void OnNeighborFailure(HostId self, HostId failed) override;

 private:
  void LaunchRound(uint32_t w);

  /// Invokes `fn` on the (at most two) rounds that can still have events in
  /// flight: the current window's and its predecessor's.
  template <typename Fn>
  void ForEachLiveRound(Fn&& fn) {
    uint32_t first = current_round_ > 0 ? current_round_ - 1 : 0;
    for (uint32_t w = first; w <= current_round_ && w < rounds_.size(); ++w) {
      if (rounds_[w] != nullptr) fn(rounds_[w].get());
    }
  }

  sim::Simulator* sim_;
  QueryContext ctx_;
  ContinuousOptions options_;
  WildfireOptions wildfire_options_;
  HostId hq_ = kInvalidHost;
  uint32_t current_round_ = 0;
  std::vector<std::unique_ptr<WildfireProtocol>> rounds_;
  std::vector<WindowResult> results_;
};

}  // namespace validity::protocols

#endif  // VALIDITY_PROTOCOLS_CONTINUOUS_H_
