#include "protocols/capture_recapture.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace validity::protocols {

CaptureRecaptureEstimator::CaptureRecaptureEstimator(
    sim::Simulator* sim, CaptureRecaptureOptions options, uint64_t seed)
    : sim_(sim), options_(options), rng_(seed) {
  VALIDITY_CHECK(sim_ != nullptr);
}

Status CaptureRecaptureEstimator::Start(HostId hq) {
  if (options_.sample_size == 0) {
    return Status::InvalidArgument("sample size must be positive");
  }
  if (options_.interval <= 0) {
    return Status::InvalidArgument("interval must be positive");
  }
  if (!sim_->IsAlive(hq)) {
    return Status::FailedPrecondition("querying host must be alive");
  }
  hq_ = hq;
  SimTime t0 = sim_->Now();
  for (uint32_t k = 0; k < options_.num_intervals; ++k) {
    sim_->ScheduleAt(t0 + static_cast<double>(k + 1) * options_.interval,
                     [this] { TakeSample(); });
  }
  return Status::Ok();
}

HostId CaptureRecaptureEstimator::RandomWalkEndpoint() {
  uint32_t steps = options_.walk_length;
  if (steps == 0) {
    double n = std::max(2.0, static_cast<double>(sim_->alive_count()));
    steps = 2 * static_cast<uint32_t>(std::ceil(std::log2(n)));
  }
  HostId where = hq_;
  for (uint32_t s = 0; s < steps; ++s) {
    // Uniform step over alive neighbors (reservoir pick avoids building a
    // temporary neighbor list).
    HostId next = kInvalidHost;
    uint32_t seen = 0;
    sim_->ForEachAliveNeighbor(where, [&](HostId nb) {
      ++seen;
      if (rng_.NextBelow(seen) == 0) next = nb;
    });
    if (next == kInvalidHost) break;  // isolated: stay put
    where = next;
  }
  return where;
}

std::vector<HostId> CaptureRecaptureEstimator::SampleAlive(uint32_t want) {
  std::vector<HostId> sample;
  sample.reserve(want);
  if (options_.sampler == SamplerKind::kUniform) {
    std::vector<HostId> alive;
    alive.reserve(sim_->alive_count());
    for (HostId h = 0; h < sim_->num_hosts(); ++h) {
      if (sim_->IsAlive(h)) alive.push_back(h);
    }
    if (alive.empty()) return sample;
    for (uint32_t i = 0; i < want; ++i) {
      sample.push_back(alive[rng_.NextBelow(alive.size())]);
    }
    return sample;
  }
  for (uint32_t i = 0; i < want; ++i) {
    sample.push_back(RandomWalkEndpoint());
  }
  return sample;
}

void CaptureRecaptureEstimator::TakeSample() {
  if (!sim_->IsAlive(hq_)) return;
  ++intervals_done_;

  // M_t = alive(M_{t-1} union N_{t-1}), trimmed to the cap.
  for (HostId h : previous_sample_) marked_.insert(h);
  for (auto it = marked_.begin(); it != marked_.end();) {
    it = sim_->IsAlive(*it) ? std::next(it) : marked_.erase(it);
  }
  if (options_.max_marked > 0) {
    while (marked_.size() > options_.max_marked) {
      marked_.erase(marked_.begin());
    }
  }

  // N_t: fresh sample (with replacement, as the scheme assumes independent
  // draws).
  std::vector<HostId> sample = SampleAlive(options_.sample_size);

  if (intervals_done_ >= 2) {
    uint32_t recaptured = 0;
    for (HostId h : sample) {
      if (marked_.count(h) > 0) ++recaptured;
    }
    SizeEstimate est;
    est.time = sim_->Now();
    est.marked = static_cast<uint32_t>(marked_.size());
    est.sampled = static_cast<uint32_t>(sample.size());
    est.recaptured = recaptured;
    est.true_alive = sim_->alive_count();
    est.estimate =
        recaptured == 0
            ? std::numeric_limits<double>::quiet_NaN()
            : static_cast<double>(est.marked) * static_cast<double>(est.sampled) /
                  static_cast<double>(recaptured);
    estimates_.push_back(est);
  }
  previous_sample_ = std::move(sample);
}

}  // namespace validity::protocols
