#include "protocols/protocol.h"

#include <atomic>

namespace validity::protocols {

namespace {
// Instance ids are process-global so that two simulators in one test cannot
// alias. Atomic because the parallel sweep driver constructs protocols from
// concurrent QueryEngine::Run calls; the id's value never influences
// results (it only tags timers/messages within the protocol's own
// simulator), so relaxed ordering suffices.
std::atomic<uint32_t> g_next_instance_id{1};

// A message kind is 32 bits with kInstanceTagShift reserved for the local
// kind, so an id must fit in 24 bits or MakeKind would silently truncate it
// (every message dropped while the 64-bit timer path still matches — a
// query that "succeeds" with only hq's value). Session reuse burns one id
// per query, so long-lived processes can exhaust 2^24; wrap instead of
// truncating. Wrapping cannot alias: ids only need to differ across
// *coexisting* instances and recent in-flight traffic, and a session reset
// drains the queue long before 16M intervening queries.
constexpr uint32_t kInstanceIdLimit =
    (1u << (32 - sim::kInstanceTagShift)) - 1;

uint32_t NextInstanceId() {
  uint32_t raw = g_next_instance_id.fetch_add(1, std::memory_order_relaxed);
  return 1 + (raw - 1) % kInstanceIdLimit;
}

void CheckContext(const sim::Simulator& sim, const QueryContext& ctx) {
  VALIDITY_CHECK(ctx.values != nullptr, "QueryContext.values is required");
  VALIDITY_CHECK(ctx.values->size() >= sim.num_hosts(),
                 "values must cover all %u hosts", sim.num_hosts());
  VALIDITY_CHECK(ctx.d_hat >= 1.0, "d_hat must be >= 1 hop");
  VALIDITY_CHECK(ctx.fm.Validate().ok(), "bad FM params");
}
}  // namespace

ProtocolBase::ProtocolBase(sim::Simulator* sim, QueryContext ctx)
    : sim_(sim), ctx_(std::move(ctx)), instance_id_(NextInstanceId()) {
  VALIDITY_CHECK(sim_ != nullptr);
  CheckContext(*sim_, ctx_);
}

void ProtocolBase::ResetForQuery(QueryContext ctx) {
  CheckContext(*sim_, ctx);
  ctx_ = std::move(ctx);
  hq_ = kInvalidHost;
  start_time_ = 0;
  result_ = ProtocolRunResult();
  instance_id_ = NextInstanceId();
  OnReset();
}

void ProtocolBase::ScheduleProtocolTimer(HostId host, SimTime t,
                                         std::function<void()> fn) {
  sim_->ScheduleAt(t, [this, host, f = std::move(fn)] {
    if (sim_->IsAlive(host)) f();
  });
}

}  // namespace validity::protocols
