#include "protocols/protocol.h"

namespace validity::protocols {

namespace {
// Instance ids are process-global so that two simulators in one test cannot
// alias. Single-threaded by design (the simulator is not thread-safe).
uint32_t g_next_instance_id = 1;
}  // namespace

ProtocolBase::ProtocolBase(sim::Simulator* sim, QueryContext ctx)
    : sim_(sim), ctx_(std::move(ctx)), instance_id_(g_next_instance_id++) {
  VALIDITY_CHECK(sim_ != nullptr);
  VALIDITY_CHECK(ctx_.values != nullptr, "QueryContext.values is required");
  VALIDITY_CHECK(ctx_.values->size() >= sim_->num_hosts(),
                 "values must cover all %u hosts", sim_->num_hosts());
  VALIDITY_CHECK(ctx_.d_hat >= 1.0, "d_hat must be >= 1 hop");
  VALIDITY_CHECK(ctx_.fm.Validate().ok(), "bad FM params");
}

void ProtocolBase::ScheduleProtocolTimer(HostId host, SimTime t,
                                         std::function<void()> fn) {
  sim_->ScheduleAt(t, [this, host, f = std::move(fn)] {
    if (sim_->IsAlive(host)) f();
  });
}

}  // namespace validity::protocols
