#include "protocols/protocol.h"

#include <atomic>

namespace validity::protocols {

namespace {
// Instance ids are process-global so that two simulators in one test cannot
// alias. Atomic because the parallel sweep driver constructs protocols from
// concurrent QueryEngine::Run calls; the id's value never influences
// results (it only tags timers/messages within the protocol's own
// simulator), so relaxed ordering suffices.
std::atomic<uint32_t> g_next_instance_id{1};
}  // namespace

ProtocolBase::ProtocolBase(sim::Simulator* sim, QueryContext ctx)
    : sim_(sim),
      ctx_(std::move(ctx)),
      instance_id_(g_next_instance_id.fetch_add(1,
                                                std::memory_order_relaxed)) {
  VALIDITY_CHECK(sim_ != nullptr);
  VALIDITY_CHECK(ctx_.values != nullptr, "QueryContext.values is required");
  VALIDITY_CHECK(ctx_.values->size() >= sim_->num_hosts(),
                 "values must cover all %u hosts", sim_->num_hosts());
  VALIDITY_CHECK(ctx_.d_hat >= 1.0, "d_hat must be >= 1 hop");
  VALIDITY_CHECK(ctx_.fm.Validate().ok(), "bad FM params");
}

void ProtocolBase::ScheduleProtocolTimer(HostId host, SimTime t,
                                         std::function<void()> fn) {
  sim_->ScheduleAt(t, [this, host, f = std::move(fn)] {
    if (sim_->IsAlive(host)) f();
  });
}

}  // namespace validity::protocols
