#include "protocols/byzantine.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "protocols/scalar_partial.h"

namespace validity::protocols {

namespace {

// Far outside the paper's attribute range [0, 500]: an inflated min/max
// injected by a byzantine host lands the answer outside any honest oracle
// interval.
constexpr double kScalarExtreme = 1e12;
// Phantom "attribute value" merged per phantom host (the attribute range
// maximum, so sum-type aggregates inflate visibly).
constexpr double kPhantomValue = 500.0;
constexpr uint64_t kPhantomStream = 0xc2b2ae3d27d4eb4fULL;

// Reply channels are local kind >= 2 across every protocol in the repo
// (wildfire kConvergecast, gossip kPush, spanning-tree/all-report/dag
// kReport, dag kRegister); local kind 1 is always dissemination.
constexpr uint32_t kReplyChannelFloor = 2;

// Wire replicas of inline payloads the mutator rewrites. Layouts mirror the
// owning protocols' (private) payload structs; static_asserts below pin the
// sizes so a drifting layout fails the build, not the experiment.
struct GossipPushWire {
  double value = 0.0;
  double weight = 0.0;
  double scalar = 0.0;
};
struct TreeReportWire {
  ScalarPartial partial;
  HostId to_parent = kInvalidHost;
};
struct HopScalarWire {
  int32_t hop = 0;
  double scalar = 0.0;
};
static_assert(sizeof(GossipPushWire) == 24);
static_assert(sizeof(TreeReportWire) <= sim::kInlinePayloadBytes);

bool IsExtremumCombiner(CombinerKind kind) {
  return kind == CombinerKind::kMin || kind == CombinerKind::kMax;
}

double ExtremeFor(CombinerKind kind) {
  return kind == CombinerKind::kMin ? -kScalarExtreme : kScalarExtreme;
}

}  // namespace

StandardByzantineMutator::StandardByzantineMutator(
    ProtocolKind protocol, const sim::FaultSpec& spec, CombinerKind combiner,
    const sketch::FmParams& fm, uint32_t num_hosts)
    : protocol_(protocol),
      spec_(spec),
      combiner_(combiner),
      inflation_(PartialAggregate::Identity(combiner, fm)) {
  if (spec_.byzantine_mode != sim::ByzantineMode::kInflate) return;
  phantoms_ = spec_.inflate_phantoms != 0 ? spec_.inflate_phantoms
                                          : std::max(1u, num_hosts);
  if (IsExtremumCombiner(combiner_)) {
    inflation_ = PartialAggregate::FromScalar(combiner_, ExtremeFor(combiner_));
    return;
  }
  // Phantom hosts occupy ids just above the real range; each contributes
  // one deterministic sketch/set element, so the same spec inflates every
  // run identically.
  for (uint32_t i = 0; i < phantoms_; ++i) {
    HostId phantom = num_hosts + i;
    Rng rng(Mix64(spec_.seed ^ (kPhantomStream + phantom)));
    inflation_.CombineFrom(
        PartialAggregate::Initial(combiner_, phantom, kPhantomValue, fm, &rng));
  }
}

bool StandardByzantineMutator::MutateFromByzantine(HostId src,
                                                   sim::Message* msg) {
  switch (spec_.byzantine_mode) {
    case sim::ByzantineMode::kNone:
      return true;
    case sim::ByzantineMode::kDeadenReplies:
      return (msg->kind & sim::kLocalKindMask) < kReplyChannelFloor;
    case sim::ByzantineMode::kInflate:
      Inflate(msg);
      return true;
    case sim::ByzantineMode::kStaleReplay:
      StaleReplay(src, msg);
      return true;
  }
  return true;
}

void StandardByzantineMutator::Inflate(sim::Message* msg) {
  if (msg->body) {
    // Pooled aggregate (wildfire convergecast / piggyback, report bodies):
    // corrupt a copy — the original body is shared with the fan-out's other
    // in-flight deliveries. Protocol-private body layouts (e.g. the DAG's
    // report body) pass through untouched; inflating them would require
    // knowing their layout, and a byzantine host that cannot forge a format
    // simply relays it.
    const auto* aggregate = dynamic_cast<const AggregateBody*>(msg->body.get());
    if (aggregate == nullptr) return;
    PartialAggregate agg = aggregate->agg;
    agg.CombineFrom(inflation_);
    msg->body = sim::MakeHeapBody<AggregateBody>(std::move(agg));
    return;
  }
  uint32_t channel = msg->kind & sim::kLocalKindMask;
  uint32_t wire = msg->inline_bytes;
  if (protocol_ == ProtocolKind::kGossip && channel >= kReplyChannelFloor) {
    GossipPushWire push = msg->LoadInline<GossipPushWire>();
    if (IsExtremumCombiner(combiner_)) {
      push.scalar = ExtremeFor(combiner_);
    } else {
      // Push-sum mass forgery: claim 16x the numerator mass while keeping
      // the weight — conservation is violated and the estimate inflates.
      push.value *= 16.0;
    }
    msg->StoreInline(push, wire);
    return;
  }
  if (protocol_ == ProtocolKind::kSpanningTree &&
      channel >= kReplyChannelFloor) {
    TreeReportWire report = msg->LoadInline<TreeReportWire>();
    report.partial.count += phantoms_;
    report.partial.sum += phantoms_ * kPhantomValue;
    report.partial.min = std::min(report.partial.min, -kScalarExtreme);
    report.partial.max = std::max(report.partial.max, kScalarExtreme);
    msg->StoreInline(report, wire);
    return;
  }
  if (IsExtremumCombiner(combiner_)) {
    // Shared inline scalar formats (protocol.h): the 8-byte reply scalar
    // and the 12-byte broadcast hop+scalar piggyback.
    if (channel >= kReplyChannelFloor &&
        wire == sizeof(ScalarAggregatePayload)) {
      ScalarAggregatePayload scalar = msg->LoadInline<ScalarAggregatePayload>();
      scalar.scalar = ExtremeFor(combiner_);
      msg->StoreInline(scalar, wire);
    } else if (channel < kReplyChannelFloor &&
               wire == sizeof(int32_t) + sizeof(double)) {
      HopScalarWire hop_scalar = msg->LoadInline<HopScalarWire>();
      hop_scalar.scalar = ExtremeFor(combiner_);
      msg->StoreInline(hop_scalar, wire);
    }
  }
  // Anything else (bare hop counters, registration signals) carries no
  // aggregate to inflate; pass through.
}

void StandardByzantineMutator::StaleReplay(HostId src, sim::Message* msg) {
  uint64_t key = (static_cast<uint64_t>(msg->kind) << 32) | src;
  auto [it, inserted] = stale_cache_.try_emplace(key);
  CachedPayload& cached = it->second;
  if (inserted) {
    // First payload this host sends on this kind: remember it verbatim and
    // let it through — later messages replay it.
    cached.inline_bytes = msg->inline_bytes;
    std::memcpy(cached.inline_data, msg->inline_data,
                sim::kInlinePayloadBytes);
    cached.body = msg->body;
    return;
  }
  msg->inline_bytes = cached.inline_bytes;
  std::memcpy(msg->inline_data, cached.inline_data, sim::kInlinePayloadBytes);
  msg->body = cached.body;
}

}  // namespace validity::protocols
