#include "protocols/factory.h"

namespace validity::protocols {

const char* ProtocolKindName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kAllReport:
      return "all-report";
    case ProtocolKind::kRandomizedReport:
      return "randomized-report";
    case ProtocolKind::kSpanningTree:
      return "spanning-tree";
    case ProtocolKind::kDag:
      return "dag";
    case ProtocolKind::kWildfire:
      return "wildfire";
  }
  return "?";
}

std::unique_ptr<ProtocolBase> MakeProtocol(ProtocolKind kind,
                                           sim::Simulator* sim,
                                           QueryContext ctx,
                                           const ProtocolOptions& options) {
  switch (kind) {
    case ProtocolKind::kAllReport:
      return std::make_unique<AllReportProtocol>(sim, std::move(ctx),
                                                 options.all_report);
    case ProtocolKind::kRandomizedReport:
      return std::make_unique<RandomizedReportProtocol>(sim, std::move(ctx),
                                                        options.randomized);
    case ProtocolKind::kSpanningTree:
      return std::make_unique<SpanningTreeProtocol>(sim, std::move(ctx),
                                                    options.spanning_tree);
    case ProtocolKind::kDag:
      return std::make_unique<DagProtocol>(sim, std::move(ctx), options.dag);
    case ProtocolKind::kWildfire:
      return std::make_unique<WildfireProtocol>(sim, std::move(ctx),
                                                options.wildfire);
  }
  VALIDITY_CHECK(false, "unknown protocol kind");
  return nullptr;
}

}  // namespace validity::protocols
