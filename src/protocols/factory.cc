#include "protocols/factory.h"

namespace validity::protocols {

const char* ProtocolKindName(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kAllReport:
      return "all-report";
    case ProtocolKind::kRandomizedReport:
      return "randomized-report";
    case ProtocolKind::kSpanningTree:
      return "spanning-tree";
    case ProtocolKind::kDag:
      return "dag";
    case ProtocolKind::kWildfire:
      return "wildfire";
    case ProtocolKind::kGossip:
      return "gossip";
  }
  return "?";
}

std::unique_ptr<ProtocolBase> MakeProtocol(ProtocolKind kind,
                                           sim::Simulator* sim,
                                           QueryContext ctx,
                                           const ProtocolOptions& options) {
  switch (kind) {
    case ProtocolKind::kAllReport:
      return std::make_unique<AllReportProtocol>(sim, std::move(ctx),
                                                 options.all_report);
    case ProtocolKind::kRandomizedReport:
      return std::make_unique<RandomizedReportProtocol>(sim, std::move(ctx),
                                                        options.randomized);
    case ProtocolKind::kSpanningTree:
      return std::make_unique<SpanningTreeProtocol>(sim, std::move(ctx),
                                                    options.spanning_tree);
    case ProtocolKind::kDag:
      return std::make_unique<DagProtocol>(sim, std::move(ctx), options.dag);
    case ProtocolKind::kWildfire:
      return std::make_unique<WildfireProtocol>(sim, std::move(ctx),
                                                options.wildfire);
    case ProtocolKind::kGossip:
      return std::make_unique<GossipProtocol>(sim, std::move(ctx),
                                              options.gossip);
  }
  VALIDITY_CHECK(false, "unknown protocol kind");
  return nullptr;
}

void ResetProtocol(ProtocolBase* protocol, ProtocolKind kind, QueryContext ctx,
                   const ProtocolOptions& options) {
  VALIDITY_CHECK(protocol != nullptr);
  switch (kind) {
    case ProtocolKind::kAllReport:
      static_cast<AllReportProtocol*>(protocol)->ResetForQuery(
          std::move(ctx), options.all_report);
      return;
    case ProtocolKind::kRandomizedReport:
      static_cast<RandomizedReportProtocol*>(protocol)->ResetForQuery(
          std::move(ctx), options.randomized);
      return;
    case ProtocolKind::kSpanningTree:
      static_cast<SpanningTreeProtocol*>(protocol)->ResetForQuery(
          std::move(ctx), options.spanning_tree);
      return;
    case ProtocolKind::kDag:
      static_cast<DagProtocol*>(protocol)->ResetForQuery(std::move(ctx),
                                                         options.dag);
      return;
    case ProtocolKind::kWildfire:
      static_cast<WildfireProtocol*>(protocol)->ResetForQuery(
          std::move(ctx), options.wildfire);
      return;
    case ProtocolKind::kGossip:
      static_cast<GossipProtocol*>(protocol)->ResetForQuery(std::move(ctx),
                                                            options.gossip);
      return;
  }
  VALIDITY_CHECK(false, "unknown protocol kind");
}

}  // namespace validity::protocols
