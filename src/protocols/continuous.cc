#include "protocols/continuous.h"

namespace validity::protocols {

ContinuousWildfire::ContinuousWildfire(sim::Simulator* sim, QueryContext ctx,
                                       ContinuousOptions options,
                                       WildfireOptions wildfire_options)
    : sim_(sim),
      ctx_(std::move(ctx)),
      options_(options),
      wildfire_options_(wildfire_options) {
  VALIDITY_CHECK(sim_ != nullptr);
}

Status ContinuousWildfire::Start(HostId hq) {
  double round_span = 2.0 * ctx_.d_hat * sim_->options().delta;
  if (options_.window < round_span) {
    return Status::InvalidArgument(
        "continuous window shorter than one WILDFIRE round (need W >= "
        "2*d_hat*delta)");
  }
  if (options_.num_windows == 0) {
    return Status::InvalidArgument("need at least one window");
  }
  hq_ = hq;
  results_.assign(options_.num_windows, WindowResult{});
  rounds_.resize(options_.num_windows);
  SimTime t0 = sim_->Now();
  for (uint32_t w = 0; w < options_.num_windows; ++w) {
    sim_->ScheduleAt(t0 + static_cast<double>(w) * options_.window,
                     [this, w] { LaunchRound(w); });
  }
  return Status::Ok();
}

void ContinuousWildfire::OnMessage(HostId self, const sim::Message& msg) {
  // Stale traffic from a finished round is dropped by the current round's
  // per-instance kind tag, exactly as if the current round were attached
  // directly.
  if (rounds_[current_round_] != nullptr) {
    rounds_[current_round_]->OnMessage(self, msg);
  }
}

void ContinuousWildfire::OnTimer(HostId self, uint64_t timer_id) {
  // A round's declaration timer fires at its horizon — the very instant the
  // next round launches — so the predecessor must still see its timers.
  ForEachLiveRound(
      [&](WildfireProtocol* round) { round->OnTimer(self, timer_id); });
}

void ContinuousWildfire::OnNeighborFailure(HostId self, HostId failed) {
  if (rounds_[current_round_] != nullptr) {
    rounds_[current_round_]->OnNeighborFailure(self, failed);
  }
}

void ContinuousWildfire::LaunchRound(uint32_t w) {
  if (!sim_->IsAlive(hq_)) return;  // the registering host left
  QueryContext round_ctx = ctx_;
  // Fresh sketch bits per round: repeated FM draws must be independent.
  round_ctx.sketch_seed = Mix64(ctx_.sketch_seed + 0x1000003 * (w + 1));
  rounds_[w] = std::make_unique<WildfireProtocol>(sim_, round_ctx,
                                                  wildfire_options_);
  WildfireProtocol* round = rounds_[w].get();
  current_round_ = w;
  sim_->AttachProgram(this);
  results_[w].issued_at = sim_->Now();
  round->Start(hq_);
  // Harvest the declared value just after the round horizon.
  sim_->ScheduleAt(round->Horizon() + 0.25 * sim_->options().delta,
                   [this, w, round] {
                     const ProtocolRunResult& r = round->result();
                     results_[w].value = r.value;
                     results_[w].declared_at = r.declared_at;
                     results_[w].declared = r.declared;
                   });
}

}  // namespace validity::protocols
