// ALLREPORT (paper Fig. 2, Theorem 4.3): the naive Single-Site-Valid
// algorithm. The query floods the network; every host that receives it
// reports its attribute value to hq; hq aggregates the collected set M at
// time T = 2 * D-hat * delta.
//
// Two report-routing models are provided:
//  - kDirect: the reporting host opens a direct underlay connection to hq
//    (P2P model — hq's address rides in the query). One message per report;
//    satisfies Single-Site Validity exactly as in the Theorem 4.3 proof.
//  - kReversePath: the report is relayed hop-by-hop toward hq along
//    broadcast parent pointers (sensor-network "Direct Delivery" of Yao &
//    Gehrke). Costs one message per hop; a relay failure can drop reports
//    of stable hosts, so validity is only guaranteed in the direct model —
//    the relaying variant re-routes around parents it knows are dead but
//    remains best-effort under extreme churn. Tests pin down both.

#ifndef VALIDITY_PROTOCOLS_ALL_REPORT_H_
#define VALIDITY_PROTOCOLS_ALL_REPORT_H_

#include <memory>
#include <vector>

#include "protocols/protocol.h"
#include "protocols/scalar_partial.h"

namespace validity::protocols {

enum class ReportRouting { kDirect, kReversePath };

struct AllReportOptions {
  ReportRouting routing = ReportRouting::kDirect;
};

class AllReportProtocol : public ProtocolBase {
 public:
  AllReportProtocol(sim::Simulator* sim, QueryContext ctx,
                    AllReportOptions options = {});

  void Start(HostId hq) override;
  void OnMessage(HostId self, const sim::Message& msg) override;
  /// Session reuse: rebind context + options and re-arm (see ProtocolBase).
  void ResetForQuery(QueryContext ctx, const AllReportOptions& options) {
    options_ = options;
    ProtocolBase::ResetForQuery(std::move(ctx));
  }
  std::string_view name() const override { return "all-report"; }
  size_t ResidentStateBytes() const override {
    return states_.ResidentBytes();
  }

  /// Number of hosts whose values reached hq (|M|, including hq itself).
  uint64_t reports_collected() const { return reports_collected_; }

 private:
  enum LocalKind : uint32_t { kBroadcast = 1, kReport = 2 };
  enum LocalTimer : uint32_t { kTimerDeclare = 1 };

  void OnLocalTimer(HostId self, uint32_t local_id) override;

  /// Inline wire payloads (this protocol allocates nothing per message).
  struct ValueReportPayload {
    HostId origin = kInvalidHost;
    double value = 0.0;
  };
  static constexpr uint32_t kReportWireBytes =
      sizeof(HostId) + sizeof(double);

  struct HostState {
    bool active = false;
    int32_t depth = 0;
    HostId parent = kInvalidHost;
  };

  void Activate(HostId self, HostId parent, int32_t depth);
  void SendReport(HostId self, const ValueReportPayload& payload);
  void RelayTowardRoot(HostId self, const sim::Message& msg);

  AllReportOptions options_;
  PagedStates<HostState> states_;
  ScalarPartial collected_;
  uint64_t reports_collected_ = 0;
};

}  // namespace validity::protocols

#endif  // VALIDITY_PROTOCOLS_ALL_REPORT_H_
