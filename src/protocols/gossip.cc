#include "protocols/gossip.h"

#include <algorithm>

namespace validity::protocols {

GossipProtocol::GossipProtocol(sim::Simulator* sim, QueryContext ctx,
                               GossipOptions options)
    : ProtocolBase(sim, std::move(ctx)),
      options_(options),
      partner_rng_(Mix64(options.partner_seed)) {
  VALIDITY_CHECK(options_.rounds >= 1, "gossip needs at least one round");
}

void GossipProtocol::ResetForQuery(QueryContext ctx,
                                   const GossipOptions& options) {
  VALIDITY_CHECK(options.rounds >= 1, "gossip needs at least one round");
  options_ = options;
  // Re-seed: a reused instance must draw the exact partner sequence a fresh
  // construction would.
  partner_rng_ = Rng(Mix64(options.partner_seed));
  ProtocolBase::ResetForQuery(std::move(ctx));
}

double GossipProtocol::LocalEstimate(HostId h) const {
  const HostState* st = states_.Find(h);
  if (st == nullptr || !st->active) return 0.0;
  if (IsExtremum()) return st->scalar;
  return st->weight > 0.0 ? st->value / st->weight : 0.0;
}

void GossipProtocol::Activate(HostId self, int32_t hop) {
  HostState& st = states_.Touch(self);
  st.active = true;
  switch (ctx_.aggregate) {
    case AggregateKind::kCount:
      st.value = 1.0;
      st.weight = self == hq_ ? 1.0 : 0.0;
      break;
    case AggregateKind::kSum:
      st.value = HostValue(self);
      st.weight = self == hq_ ? 1.0 : 0.0;
      break;
    case AggregateKind::kAverage:
      st.value = HostValue(self);
      st.weight = 1.0;
      break;
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      st.scalar = HostValue(self);
      break;
  }

  // Forward the activation flood (fixed-size zero payload, no allocation).
  sim::Message out;
  out.kind = MakeKind(kBroadcast);
  out.StoreInline(PushPayload{}, kPushWireBytes);
  sim_->SendToNeighbors(self, std::move(out));

  // One gossip exchange per round, offset off the delivery grid. The timer
  // re-arms itself round by round: only one round bucket is ever pending
  // per host, so the calendar recycles drained buckets instead of growing
  // sixty of them upfront.
  st.rounds_left = options_.rounds;
  ScheduleLocalTimer(self, sim_->Now() + 0.5 * sim_->options().delta,
                     kTimerRound);
  (void)hop;
}

void GossipProtocol::OnLocalTimer(HostId self, uint32_t local_id) {
  if (local_id == kTimerRound) {
    HostState* st = states_.Find(self);
    if (st == nullptr || !st->active || st->rounds_left == 0) return;
    --st->rounds_left;
    DoRound(self);
    if (st->rounds_left > 0) {
      ScheduleLocalTimer(self, sim_->Now() + sim_->options().delta,
                         kTimerRound);
    }
    return;
  }
  if (local_id == kTimerDeclare) {
    result_.value = LocalEstimate(self);
    result_.declared_at = sim_->Now();
    result_.declared = true;
  }
}

void GossipProtocol::Start(HostId hq) {
  VALIDITY_CHECK(sim_->IsAlive(hq), "querying host must be alive");
  hq_ = hq;
  start_time_ = sim_->Now();
  states_.Reset(sim_->num_hosts());
  Activate(hq, 0);
  SimTime delta = sim_->options().delta;
  ScheduleLocalTimer(hq, start_time_ + (options_.rounds + 2) * delta,
                     kTimerDeclare);
}

void GossipProtocol::DoRound(HostId self) {
  HostState* stp = states_.Find(self);
  if (stp == nullptr || !stp->active) return;
  HostState& st = *stp;
  // Uniform alive neighbor (reservoir pick).
  HostId partner = kInvalidHost;
  uint32_t seen = 0;
  sim_->ForEachAliveNeighbor(self, [&](HostId nb) {
    ++seen;
    if (partner_rng_.NextBelow(seen) == 0) partner = nb;
  });
  if (partner == kInvalidHost) return;  // isolated this round

  PushPayload payload;
  if (IsExtremum()) {
    payload.scalar = st.scalar;
  } else {
    // Push-sum: keep half the mass, push half.
    st.value /= 2.0;
    st.weight /= 2.0;
    payload.value = st.value;
    payload.weight = st.weight;
  }
  sim::Message out;
  out.kind = MakeKind(kPush);
  out.StoreInline(payload, kPushWireBytes);
  sim_->SendTo(self, partner, std::move(out));
}

void GossipProtocol::OnMessage(HostId self, const sim::Message& msg) {
  uint32_t local = 0;
  if (!DecodeKind(msg.kind, &local)) return;
  HostState* stp = states_.Find(self);

  if (local == kBroadcast) {
    if (stp != nullptr && stp->active) return;
    if (sim_->Now() >= Horizon()) return;
    Activate(self, 0);
    return;
  }

  if (local == kPush) {
    if (stp == nullptr || !stp->active) {
      // Mass arriving at a host the flood has not reached yet would be
      // destroyed; activate on first contact instead (gossip protocols
      // spread the query epidemically too).
      Activate(self, 0);
    }
    const PushPayload in = msg.LoadInline<PushPayload>();
    HostState& fresh = *states_.Find(self);
    if (IsExtremum()) {
      fresh.scalar = ctx_.aggregate == AggregateKind::kMin
                         ? std::min(fresh.scalar, in.scalar)
                         : std::max(fresh.scalar, in.scalar);
    } else {
      fresh.value += in.value;
      fresh.weight += in.weight;
    }
  }
}

}  // namespace validity::protocols
