#include "protocols/gossip.h"

#include <algorithm>

namespace validity::protocols {

GossipProtocol::GossipProtocol(sim::Simulator* sim, QueryContext ctx,
                               GossipOptions options)
    : ProtocolBase(sim, std::move(ctx)),
      options_(options),
      partner_rng_(Mix64(options.partner_seed)) {
  VALIDITY_CHECK(options_.rounds >= 1, "gossip needs at least one round");
}

double GossipProtocol::LocalEstimate(HostId h) const {
  if (h >= states_.size() || !states_[h].active) return 0.0;
  const HostState& st = states_[h];
  if (IsExtremum()) return st.scalar;
  return st.weight > 0.0 ? st.value / st.weight : 0.0;
}

void GossipProtocol::Activate(HostId self, int32_t hop) {
  if (self >= states_.size()) states_.resize(self + 1);
  HostState& st = states_[self];
  st.active = true;
  switch (ctx_.aggregate) {
    case AggregateKind::kCount:
      st.value = 1.0;
      st.weight = self == hq_ ? 1.0 : 0.0;
      break;
    case AggregateKind::kSum:
      st.value = HostValue(self);
      st.weight = self == hq_ ? 1.0 : 0.0;
      break;
    case AggregateKind::kAverage:
      st.value = HostValue(self);
      st.weight = 1.0;
      break;
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      st.scalar = HostValue(self);
      break;
  }

  // Forward the activation flood.
  auto body = std::make_shared<PushBody>();
  sim::Message out;
  out.kind = MakeKind(kBroadcast);
  out.body = body;
  sim_->SendToNeighbors(self, out);

  // One gossip exchange per round, offset off the delivery grid.
  SimTime delta = sim_->options().delta;
  SimTime first = sim_->Now() + 0.5 * delta;
  for (uint32_t r = 0; r < options_.rounds; ++r) {
    ScheduleLocalTimer(self, first + r * delta, kTimerRound);
  }
  (void)hop;
}

void GossipProtocol::OnLocalTimer(HostId self, uint32_t local_id) {
  if (local_id == kTimerRound) {
    DoRound(self);
    return;
  }
  if (local_id == kTimerDeclare) {
    result_.value = LocalEstimate(self);
    result_.declared_at = sim_->Now();
    result_.declared = true;
  }
}

void GossipProtocol::Start(HostId hq) {
  VALIDITY_CHECK(sim_->IsAlive(hq), "querying host must be alive");
  hq_ = hq;
  start_time_ = sim_->Now();
  states_.assign(sim_->num_hosts(), HostState{});
  Activate(hq, 0);
  SimTime delta = sim_->options().delta;
  ScheduleLocalTimer(hq, start_time_ + (options_.rounds + 2) * delta,
                     kTimerDeclare);
}

void GossipProtocol::DoRound(HostId self) {
  HostState& st = states_[self];
  if (!st.active) return;
  // Uniform alive neighbor (reservoir pick).
  HostId partner = kInvalidHost;
  uint32_t seen = 0;
  sim_->ForEachAliveNeighbor(self, [&](HostId nb) {
    ++seen;
    if (partner_rng_.NextBelow(seen) == 0) partner = nb;
  });
  if (partner == kInvalidHost) return;  // isolated this round

  auto body = std::make_shared<PushBody>();
  if (IsExtremum()) {
    body->scalar = st.scalar;
  } else {
    // Push-sum: keep half the mass, push half.
    st.value /= 2.0;
    st.weight /= 2.0;
    body->value = st.value;
    body->weight = st.weight;
  }
  sim::Message out;
  out.kind = MakeKind(kPush);
  out.body = body;
  sim_->SendTo(self, partner, out);
}

void GossipProtocol::OnMessage(HostId self, const sim::Message& msg) {
  uint32_t local = 0;
  if (!DecodeKind(msg.kind, &local)) return;
  if (self >= states_.size()) states_.resize(self + 1);
  HostState& st = states_[self];

  if (local == kBroadcast) {
    if (st.active) return;
    if (sim_->Now() >= Horizon()) return;
    Activate(self, 0);
    return;
  }

  if (local == kPush) {
    if (!st.active) {
      // Mass arriving at a host the flood has not reached yet would be
      // destroyed; activate on first contact instead (gossip protocols
      // spread the query epidemically too).
      Activate(self, 0);
    }
    const auto& body = static_cast<const PushBody&>(*msg.body);
    HostState& fresh = states_[self];
    if (IsExtremum()) {
      fresh.scalar = ctx_.aggregate == AggregateKind::kMin
                         ? std::min(fresh.scalar, body.scalar)
                         : std::max(fresh.scalar, body.scalar);
    } else {
      fresh.value += body.value;
      fresh.weight += body.weight;
    }
  }
}

}  // namespace validity::protocols
