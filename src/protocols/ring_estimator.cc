#include "protocols/ring_estimator.h"

#include <algorithm>

namespace validity::protocols {

RingSizeEstimator::RingSizeEstimator(const sim::Simulator* sim,
                                     uint64_t ring_seed)
    : sim_(sim), ring_seed_(ring_seed) {
  VALIDITY_CHECK(sim_ != nullptr);
}

double RingSizeEstimator::PositionOf(HostId h) const {
  uint64_t bits = Mix64(ring_seed_ ^ (0x2545f4914f6cdd1dULL +
                                      static_cast<uint64_t>(h)));
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

RingSizeEstimator::AliveRing RingSizeEstimator::BuildAliveRing() const {
  AliveRing ring;
  ring.hosts.reserve(sim_->alive_count());
  for (HostId h = 0; h < sim_->num_hosts(); ++h) {
    if (sim_->IsAlive(h)) ring.hosts.push_back(h);
  }
  std::sort(ring.hosts.begin(), ring.hosts.end(), [this](HostId a, HostId b) {
    return PositionOf(a) < PositionOf(b);
  });
  size_t n = ring.hosts.size();
  ring.positions.resize(n);
  ring.segments.resize(n);
  for (size_t i = 0; i < n; ++i) ring.positions[i] = PositionOf(ring.hosts[i]);
  for (size_t i = 0; i < n; ++i) {
    double here = ring.positions[i];
    double pred = ring.positions[(i + n - 1) % n];
    double seg = here - pred;
    if (seg <= 0.0) seg += 1.0;        // wraps around the ring origin
    if (n == 1) seg = 1.0;             // a lone host owns the whole ring
    ring.segments[i] = seg;
  }
  return ring;
}

double RingSizeEstimator::SegmentOf(HostId h) const {
  VALIDITY_CHECK(sim_->IsAlive(h), "segments are owned by alive hosts");
  AliveRing ring = BuildAliveRing();
  for (size_t i = 0; i < ring.hosts.size(); ++i) {
    if (ring.hosts[i] == h) return ring.segments[i];
  }
  VALIDITY_CHECK(false, "alive host missing from ring");
  return 0.0;
}

StatusOr<double> RingSizeEstimator::EstimateSize(uint32_t s, Rng* rng) const {
  if (s == 0) return Status::InvalidArgument("sample size must be positive");
  AliveRing ring = BuildAliveRing();
  if (ring.hosts.empty()) {
    return Status::FailedPrecondition("no alive hosts on the ring");
  }
  size_t n = ring.hosts.size();
  double inv_sum = 0.0;
  for (uint32_t i = 0; i < s; ++i) {
    // Route a lookup to a uniform identifier u; it lands on u's successor
    // (the first host at or after u; past the last host it wraps to the
    // first), whose segment contains u. The segment is thus hit with
    // probability equal to its length — the sampling a real DHT performs.
    double u = rng->NextDouble();
    size_t owner = std::lower_bound(ring.positions.begin(),
                                    ring.positions.end(), u) -
                   ring.positions.begin();
    if (owner == n) owner = 0;  // wrap: u beyond the last host
    double seg = ring.segments[owner];
    if (seg <= 0.0) return Status::Internal("degenerate segment sample");
    // Length-biased draws make the reciprocal unbiased for the host count:
    // E[1/x] = sum_i seg_i * (1/seg_i) = n.
    inv_sum += 1.0 / seg;
  }
  return inv_sum / static_cast<double>(s);
}

}  // namespace validity::protocols
