#include "protocols/oracle.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "common/logging.h"

namespace validity::protocols {

bool OracleReport::ContainsWithin(double v, double factor) const {
  VALIDITY_DCHECK(factor >= 1.0);
  return q_low <= v * factor && v / factor <= q_high;
}

AvgBounds ExtremeAverages(const std::vector<double>& mandatory,
                          std::vector<double> optional_values) {
  AvgBounds bounds;
  std::sort(optional_values.begin(), optional_values.end());
  if (mandatory.empty() && optional_values.empty()) return bounds;

  double base_sum = 0.0;
  for (double v : mandatory) base_sum += v;
  double base_n = static_cast<double>(mandatory.size());

  // A value moves the running mean toward itself, so the extreme mean is
  // reached by admitting optional values from the helpful end while each
  // still improves the mean. With an empty mandatory set a valid H is any
  // non-empty subset, seeded from the extreme optional value.
  auto extreme = [&](bool maximize) {
    double sum = base_sum;
    double n = base_n;
    size_t lo = 0;
    size_t hi = optional_values.size();  // candidates in [lo, hi)
    if (n == 0.0) {
      size_t seed = maximize ? --hi : lo++;
      sum = optional_values[seed];
      n = 1.0;
    }
    while (lo < hi) {
      double candidate = maximize ? optional_values[hi - 1] : optional_values[lo];
      bool improves = maximize ? candidate > sum / n : candidate < sum / n;
      if (!improves) break;
      sum += candidate;
      n += 1.0;
      if (maximize) {
        --hi;
      } else {
        ++lo;
      }
    }
    return sum / n;
  };
  bounds.high = extreme(/*maximize=*/true);
  bounds.low = extreme(/*maximize=*/false);
  return bounds;
}

OracleReport ComputeOracle(const sim::Simulator& sim, HostId hq,
                           SimTime t_begin, SimTime t_end, AggregateKind kind,
                           const std::vector<double>& values) {
  VALIDITY_CHECK(values.size() >= sim.num_hosts(),
                 "values must cover all hosts");
  VALIDITY_CHECK(sim.AliveThroughout(hq, t_begin, t_end),
                 "oracle requires hq alive throughout the query interval");
  OracleReport report;

  // HU: alive at some instant of the interval.
  for (HostId h = 0; h < sim.num_hosts(); ++h) {
    if (sim.AliveSometimeIn(h, t_begin, t_end)) report.hu.push_back(h);
  }

  // HC: BFS from hq through hosts alive throughout the interval.
  std::vector<uint8_t> visited(sim.num_hosts(), 0);
  std::deque<HostId> frontier;
  visited[hq] = 1;
  frontier.push_back(hq);
  while (!frontier.empty()) {
    HostId u = frontier.front();
    frontier.pop_front();
    report.hc.push_back(u);
    for (HostId v : sim.NeighborsOf(u)) {
      if (!visited[v] && sim.AliveThroughout(v, t_begin, t_end)) {
        visited[v] = 1;
        frontier.push_back(v);
      }
    }
  }
  std::sort(report.hc.begin(), report.hc.end());

  // Numeric interval by aggregate kind.
  switch (kind) {
    case AggregateKind::kCount:
      report.q_low = static_cast<double>(report.hc.size());
      report.q_high = static_cast<double>(report.hu.size());
      break;
    case AggregateKind::kSum: {
      // General values: optional negatives can lower the sum, positives
      // raise it (the paper's workload is positive, but the oracle is not
      // restricted to it).
      double lo = 0.0;
      double hi = 0.0;
      for (HostId h : report.hc) {
        lo += values[h];
        hi += values[h];
      }
      std::vector<uint8_t> in_hc(sim.num_hosts(), 0);
      for (HostId h : report.hc) in_hc[h] = 1;
      for (HostId h : report.hu) {
        if (in_hc[h]) continue;
        if (values[h] < 0.0) {
          lo += values[h];
        } else {
          hi += values[h];
        }
      }
      report.q_low = lo;
      report.q_high = hi;
      break;
    }
    case AggregateKind::kMin: {
      double over_hu = std::numeric_limits<double>::infinity();
      for (HostId h : report.hu) over_hu = std::min(over_hu, values[h]);
      double over_hc = std::numeric_limits<double>::infinity();
      for (HostId h : report.hc) over_hc = std::min(over_hc, values[h]);
      report.q_low = over_hu;   // largest H admits the global minimum
      report.q_high = over_hc;  // smallest H can only do as well as HC
      break;
    }
    case AggregateKind::kMax: {
      double over_hu = -std::numeric_limits<double>::infinity();
      for (HostId h : report.hu) over_hu = std::max(over_hu, values[h]);
      double over_hc = -std::numeric_limits<double>::infinity();
      for (HostId h : report.hc) over_hc = std::max(over_hc, values[h]);
      report.q_low = over_hc;
      report.q_high = over_hu;
      break;
    }
    case AggregateKind::kAverage: {
      std::vector<uint8_t> in_hc(sim.num_hosts(), 0);
      std::vector<double> mandatory;
      mandatory.reserve(report.hc.size());
      for (HostId h : report.hc) {
        in_hc[h] = 1;
        mandatory.push_back(values[h]);
      }
      std::vector<double> optional_values;
      for (HostId h : report.hu) {
        if (!in_hc[h]) optional_values.push_back(values[h]);
      }
      AvgBounds bounds = ExtremeAverages(mandatory, std::move(optional_values));
      report.q_low = bounds.low;
      report.q_high = bounds.high;
      break;
    }
  }
  return report;
}

}  // namespace validity::protocols
