#include "protocols/all_report.h"

namespace validity::protocols {

AllReportProtocol::AllReportProtocol(sim::Simulator* sim, QueryContext ctx,
                                     AllReportOptions options)
    : ProtocolBase(sim, std::move(ctx)), options_(options) {}

void AllReportProtocol::Activate(HostId self, HostId parent, int32_t depth) {
  if (self >= states_.size()) states_.resize(self + 1);
  HostState& st = states_[self];
  st.active = true;
  st.parent = parent;
  st.depth = depth;

  // Fig. 2: forward the query, report own value, terminate.
  auto flood = std::make_shared<FloodBody>();
  flood->hop = depth;
  sim::Message out;
  out.kind = MakeKind(kBroadcast);
  out.body = flood;
  sim_->SendToNeighbors(self, out);

  auto report = std::make_shared<ValueReportBody>();
  report->origin = self;
  report->value = HostValue(self);
  if (self == hq_) {
    collected_.AddHost(report->value);
    ++reports_collected_;
  } else {
    SendReport(self, report);
  }
}

void AllReportProtocol::SendReport(
    HostId self, std::shared_ptr<const ValueReportBody> body) {
  sim::Message msg;
  msg.kind = MakeKind(kReport);
  msg.body = std::move(body);
  if (options_.routing == ReportRouting::kDirect) {
    sim_->SendDirect(self, hq_, msg);
    return;
  }
  RelayTowardRoot(self, msg);
}

void AllReportProtocol::RelayTowardRoot(HostId self, const sim::Message& msg) {
  const HostState& st = states_[self];
  // Prefer the broadcast parent; if it is known dead, fall back to any alive
  // neighbor (the relay still only moves along overlay edges).
  HostId next = st.parent;
  if (next == kInvalidHost || !sim_->IsAlive(next)) {
    next = kInvalidHost;
    sim_->ForEachAliveNeighbor(self, [&](HostId nb) {
      if (next == kInvalidHost) next = nb;
    });
  }
  if (next == kInvalidHost) return;  // isolated: report is lost
  sim_->SendTo(self, next, msg);
}

void AllReportProtocol::Start(HostId hq) {
  VALIDITY_CHECK(sim_->IsAlive(hq), "querying host must be alive");
  hq_ = hq;
  start_time_ = sim_->Now();
  states_.assign(sim_->num_hosts(), HostState{});
  collected_ = ScalarPartial{};
  reports_collected_ = 0;
  Activate(hq, kInvalidHost, 0);
  ScheduleLocalTimer(hq, Horizon(), kTimerDeclare);
}

void AllReportProtocol::OnLocalTimer(HostId self, uint32_t local_id) {
  (void)self;
  if (local_id != kTimerDeclare) return;
  result_.value = collected_.Extract(ctx_.aggregate);
  result_.declared_at = sim_->Now();
  result_.declared = true;
}

void AllReportProtocol::OnMessage(HostId self, const sim::Message& msg) {
  uint32_t local = 0;
  if (!DecodeKind(msg.kind, &local)) return;
  if (self >= states_.size()) states_.resize(self + 1);
  HostState& st = states_[self];

  if (local == kBroadcast) {
    if (st.active) return;
    if (sim_->Now() >= Horizon()) return;
    const auto& body = static_cast<const FloodBody&>(*msg.body);
    Activate(self, msg.src, body.hop + 1);
    return;
  }

  if (local == kReport) {
    if (sim_->Now() > Horizon()) return;  // late reports are discarded
    const auto& body = static_cast<const ValueReportBody&>(*msg.body);
    if (self == hq_) {
      collected_.AddHost(body.value);
      ++reports_collected_;
      return;
    }
    // Relay duty (reverse-path routing only).
    if (!st.active) return;  // cannot route without a parent pointer
    RelayTowardRoot(self, msg);
  }
}

}  // namespace validity::protocols
