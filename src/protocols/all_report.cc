#include "protocols/all_report.h"

namespace validity::protocols {

AllReportProtocol::AllReportProtocol(sim::Simulator* sim, QueryContext ctx,
                                     AllReportOptions options)
    : ProtocolBase(sim, std::move(ctx)), options_(options) {}

void AllReportProtocol::Activate(HostId self, HostId parent, int32_t depth) {
  HostState& st = states_.Touch(self);
  st.active = true;
  st.parent = parent;
  st.depth = depth;

  // Fig. 2: forward the query, report own value, terminate.
  sim::Message out;
  out.kind = MakeKind(kBroadcast);
  out.StoreInline(HopPayload{depth}, sizeof(int32_t));
  sim_->SendToNeighbors(self, std::move(out));

  ValueReportPayload report{self, HostValue(self)};
  if (self == hq_) {
    collected_.AddHost(report.value);
    ++reports_collected_;
  } else {
    SendReport(self, report);
  }
}

void AllReportProtocol::SendReport(HostId self,
                                   const ValueReportPayload& payload) {
  sim::Message msg;
  msg.kind = MakeKind(kReport);
  msg.StoreInline(payload, kReportWireBytes);
  if (options_.routing == ReportRouting::kDirect) {
    sim_->SendDirect(self, hq_, std::move(msg));
    return;
  }
  RelayTowardRoot(self, msg);
}

void AllReportProtocol::RelayTowardRoot(HostId self, const sim::Message& msg) {
  const HostState& st = *states_.Find(self);
  // Prefer the broadcast parent; if it is known dead, fall back to any alive
  // neighbor (the relay still only moves along overlay edges).
  HostId next = st.parent;
  if (next == kInvalidHost || !sim_->IsAlive(next)) {
    next = kInvalidHost;
    sim_->ForEachAliveNeighbor(self, [&](HostId nb) {
      if (next == kInvalidHost) next = nb;
    });
  }
  if (next == kInvalidHost) return;  // isolated: report is lost
  sim_->SendTo(self, next, msg);
}

void AllReportProtocol::Start(HostId hq) {
  VALIDITY_CHECK(sim_->IsAlive(hq), "querying host must be alive");
  hq_ = hq;
  start_time_ = sim_->Now();
  states_.Reset(sim_->num_hosts());
  collected_ = ScalarPartial{};
  reports_collected_ = 0;
  Activate(hq, kInvalidHost, 0);
  ScheduleLocalTimer(hq, Horizon(), kTimerDeclare);
}

void AllReportProtocol::OnLocalTimer(HostId self, uint32_t local_id) {
  (void)self;
  if (local_id != kTimerDeclare) return;
  result_.value = collected_.Extract(ctx_.aggregate);
  result_.declared_at = sim_->Now();
  result_.declared = true;
}

void AllReportProtocol::OnMessage(HostId self, const sim::Message& msg) {
  uint32_t local = 0;
  if (!DecodeKind(msg.kind, &local)) return;
  const HostState* stp = states_.Find(self);

  if (local == kBroadcast) {
    if (stp != nullptr && stp->active) return;
    if (sim_->Now() >= Horizon()) return;
    Activate(self, msg.src, msg.LoadInline<HopPayload>().hop + 1);
    return;
  }

  if (local == kReport) {
    if (sim_->Now() > Horizon()) return;  // late reports are discarded
    if (self == hq_) {
      collected_.AddHost(msg.LoadInline<ValueReportPayload>().value);
      ++reports_collected_;
      return;
    }
    // Relay duty (reverse-path routing only).
    if (stp == nullptr || !stp->active) {
      return;  // cannot route without a parent pointer
    }
    RelayTowardRoot(self, msg);
  }
}

}  // namespace validity::protocols
