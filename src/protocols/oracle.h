// ORACLE (paper §6.2): an omniscient observer of the dynamic network that
// computes the Single-Site Validity bounds.
//
//   HC = hosts with at least one stable path to hq over [t_begin, t_end]
//        (every host on the path alive throughout the interval);
//   HU = hosts alive at some instant of [t_begin, t_end].
//
// Because failures only ever remove hosts, the stable subgraph is the one
// induced by hosts alive throughout the interval, and HC is its
// hq-reachable component. The oracle then derives the numeric interval
// [q_low, q_high] that any Single-Site-Valid answer v = q(H),
// HC <= H <= HU, must fall in — including the non-monotone avg case, where
// the extremes are found greedily over the optional hosts HU \ HC.
//
// "Clearly, such an ORACLE is not feasible in practice" — it reads
// simulator ground truth and sends no messages.
//
// Cost note: the oracle is inherently O(network) — HU ranges over every
// host by definition, and the stable-subgraph BFS allocates dense
// visited/membership arrays. It is the one deliberately-dense pass left in
// the query path, gated by RunConfig::compute_validity so disc-bounded
// million-host runs never pay it (docs/ARCHITECTURE.md, memory model).

#ifndef VALIDITY_PROTOCOLS_ORACLE_H_
#define VALIDITY_PROTOCOLS_ORACLE_H_

#include <vector>

#include "common/aggregate.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace validity::protocols {

struct OracleReport {
  std::vector<HostId> hc;
  std::vector<HostId> hu;
  /// Numeric Single-Site Validity interval for the aggregate: every valid
  /// answer satisfies q_low <= v <= q_high.
  double q_low = 0.0;
  double q_high = 0.0;

  bool Contains(double v) const { return q_low <= v && v <= q_high; }
  /// Contains() with multiplicative slack for approximate (FM) answers:
  /// accepts v if v/factor..v*factor intersects the interval.
  bool ContainsWithin(double v, double factor) const;
};

/// Computes the oracle report for a query issued at `hq` over
/// [t_begin, t_end]. `values[h]` is host h's attribute value. `hq` must be
/// alive throughout the interval.
OracleReport ComputeOracle(const sim::Simulator& sim, HostId hq,
                           SimTime t_begin, SimTime t_end, AggregateKind kind,
                           const std::vector<double>& values);

/// The extreme averages over sets H with HC <= H <= HU (exposed for tests):
/// to maximize, optional values are admitted in descending order while they
/// exceed the running mean; to minimize, ascending while below it. With an
/// empty HC the extremes are taken over non-empty subsets of HU.
struct AvgBounds {
  double low = 0.0;
  double high = 0.0;
};
AvgBounds ExtremeAverages(const std::vector<double>& mandatory,
                          std::vector<double> optional_values);

}  // namespace validity::protocols

#endif  // VALIDITY_PROTOCOLS_ORACLE_H_
