// Protocol construction by kind, used by the QueryEngine and benches.

#ifndef VALIDITY_PROTOCOLS_FACTORY_H_
#define VALIDITY_PROTOCOLS_FACTORY_H_

#include <memory>

#include "protocols/all_report.h"
#include "protocols/dag.h"
#include "protocols/gossip.h"
#include "protocols/protocol.h"
#include "protocols/randomized_report.h"
#include "protocols/spanning_tree.h"
#include "protocols/wildfire.h"

namespace validity::protocols {

enum class ProtocolKind : uint8_t {
  kAllReport,
  kRandomizedReport,
  kSpanningTree,
  kDag,
  kWildfire,
  kGossip,
};

const char* ProtocolKindName(ProtocolKind kind);

/// Per-protocol tuning knobs, bundled so callers can sweep them uniformly.
struct ProtocolOptions {
  WildfireOptions wildfire;
  SpanningTreeOptions spanning_tree;
  DagOptions dag;
  AllReportOptions all_report;
  RandomizedReportOptions randomized;
  GossipOptions gossip;
};

std::unique_ptr<ProtocolBase> MakeProtocol(ProtocolKind kind,
                                           sim::Simulator* sim,
                                           QueryContext ctx,
                                           const ProtocolOptions& options);

/// Re-arms a cached instance for a new query on its simulator — the session
/// reuse path that replaces per-run construction. `protocol`'s dynamic type
/// must be the one MakeProtocol(kind, ...) builds; the context and this
/// kind's option bundle are rebound, the instance id is refreshed, and the
/// next Start() behaves exactly like a freshly constructed protocol while
/// keeping warm storage (state page directories, body pools).
void ResetProtocol(ProtocolBase* protocol, ProtocolKind kind,
                   QueryContext ctx, const ProtocolOptions& options);

}  // namespace validity::protocols

#endif  // VALIDITY_PROTOCOLS_FACTORY_H_
