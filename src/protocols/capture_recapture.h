// Continuous approximate network-size estimation by Capture–Recapture
// (paper §5.4, the Jolly–Seber "evolving ecology" scheme).
//
// At each interval t the estimator holds a set of *marked* hosts
// M_t = alive(M_{t-1} union N_{t-1}), draws a fresh sample N_t of alive
// hosts through a sampling black box, counts the recaptures
// m_t = |M_t intersect N_t|, and estimates |H_t| ~= |M_t| * |N_t| / m_t.
//
// Scheme assumptions (paper): uniform sampling, instantaneous samples,
// memoryless departures. Two black boxes are provided: an idealized uniform
// sampler, and the random-walk sampler the paper suggests for expander-like
// overlays (endpoint of an O(log |H|)-step walk; approximately uniform on
// well-connected graphs, degree-biased in general — the bias is measurable
// with the tests' regular vs. irregular topologies).

#ifndef VALIDITY_PROTOCOLS_CAPTURE_RECAPTURE_H_
#define VALIDITY_PROTOCOLS_CAPTURE_RECAPTURE_H_

#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "sim/simulator.h"

namespace validity::protocols {

enum class SamplerKind { kUniform, kRandomWalk };

struct CaptureRecaptureOptions {
  /// Sample size s = |N_t| per interval.
  uint32_t sample_size = 64;
  /// Time between samples.
  SimTime interval = 10.0;
  /// Number of sampling intervals.
  uint32_t num_intervals = 10;
  /// Cap on |M_t| (0 = unbounded); the paper notes hq may trim the marked
  /// set if it grows beyond what the accuracy target needs.
  uint32_t max_marked = 0;
  SamplerKind sampler = SamplerKind::kRandomWalk;
  /// Random-walk length (0 = auto: 2 * ceil(log2 n) steps).
  uint32_t walk_length = 0;
};

struct SizeEstimate {
  SimTime time = 0;
  /// |M_t| * |N_t| / m_t; NaN when m_t == 0 (no recaptures).
  double estimate = 0;
  uint32_t marked = 0;      // |M_t|
  uint32_t sampled = 0;     // |N_t|
  uint32_t recaptured = 0;  // m_t
  uint32_t true_alive = 0;  // ground truth |H_t| for evaluation
};

class CaptureRecaptureEstimator {
 public:
  CaptureRecaptureEstimator(sim::Simulator* sim,
                            CaptureRecaptureOptions options, uint64_t seed);

  /// Schedules the sampling intervals starting now; hq anchors random walks.
  Status Start(HostId hq);

  /// One estimate per interval from the second onward (M_1 is empty, so
  /// estimation begins at t = 2, as in the paper).
  const std::vector<SizeEstimate>& estimates() const { return estimates_; }

 private:
  void TakeSample();
  std::vector<HostId> SampleAlive(uint32_t want);
  HostId RandomWalkEndpoint();

  sim::Simulator* sim_;
  CaptureRecaptureOptions options_;
  Rng rng_;
  HostId hq_ = kInvalidHost;
  // M_t. Ordered so that the alive-filter walk and the max_marked trim
  // (which evicts the lowest host ids) are deterministic across standard
  // library implementations; an unordered set would trim a bucket-order
  // arbitrary element.
  std::set<HostId> marked_;
  std::vector<HostId> previous_sample_;     // N_{t-1}
  std::vector<SizeEstimate> estimates_;
  uint32_t intervals_done_ = 0;
};

}  // namespace validity::protocols

#endif  // VALIDITY_PROTOCOLS_CAPTURE_RECAPTURE_H_
