#include "protocols/spanning_tree.h"

#include <algorithm>

namespace validity::protocols {

SpanningTreeProtocol::SpanningTreeProtocol(sim::Simulator* sim,
                                           QueryContext ctx,
                                           SpanningTreeOptions options)
    : ProtocolBase(sim, std::move(ctx)), options_(options) {}

HostId SpanningTreeProtocol::ParentOf(HostId h) const {
  const HostState* st = states_.Find(h);
  if (st == nullptr || !st->active) return kInvalidHost;
  return st->parent;
}

int32_t SpanningTreeProtocol::DepthOf(HostId h) const {
  const HostState* st = states_.Find(h);
  if (st == nullptr || !st->active) return -1;
  return st->depth;
}

SimTime SpanningTreeProtocol::SlotTime(int32_t depth,
                                       SimTime activation_time) const {
  SimTime delta = sim_->options().delta;
  // Depth-d slot: child reports (depth d+1, one slot earlier) arrive exactly
  // at this instant; SendUp requeues itself behind them. The ladder is sound
  // for D-hat >= depth_max + 1.
  SimTime slot = start_time_ +
                 (2.0 * ctx_.d_hat - static_cast<double>(depth) - 0.5) * delta;
  // Late activation (churn-stretched paths): never report before having
  // existed for a moment.
  return std::max(slot, activation_time + 0.5 * delta);
}

void SpanningTreeProtocol::Activate(HostId self, HostId parent,
                                    int32_t depth) {
  HostState& st = states_.Touch(self);
  st.active = true;
  st.parent = parent;
  st.depth = depth;
  st.partial.AddHost(HostValue(self));

  // Forward the query to every neighbor (including the parent: the forward
  // doubles as the child-registration announcement used by kEager).
  sim::Message out;
  out.kind = MakeKind(kBroadcast);
  out.StoreInline(TreeBroadcastPayload{depth, parent},
                  sizeof(int32_t) + sizeof(HostId));
  sim_->SendToNeighbors(self, std::move(out));

  SimTime delta = sim_->options().delta;
  if (options_.pacing == TreePacing::kEager) {
    ScheduleLocalTimer(self, sim_->Now() + kChildDiscoveryDelay * delta,
                       kTimerChildrenKnown);
  }
  // The report slot. In kEager it acts as a deadline fallback; in kSlotted
  // it is the only send trigger. The handler requeues at the same instant
  // so that child reports delivered at this exact time are folded in first.
  ScheduleLocalTimer(self, SlotTime(depth, sim_->Now()), kTimerSlot);
}

void SpanningTreeProtocol::OnLocalTimer(HostId self, uint32_t local_id) {
  switch (local_id) {
    case kTimerChildrenKnown:
      states_.Find(self)->children_known = true;
      MaybeCompleteEager(self);
      break;
    case kTimerSlot:
      ScheduleLocalTimer(self, sim_->Now(), kTimerSendUp);
      break;
    case kTimerSendUp:
      SendUp(self);
      break;
    case kTimerDeclare:
      Declare(self);
      break;
  }
}

void SpanningTreeProtocol::Start(HostId hq) {
  VALIDITY_CHECK(sim_->IsAlive(hq), "querying host must be alive");
  hq_ = hq;
  start_time_ = sim_->Now();
  states_.Reset(sim_->num_hosts());
  Activate(hq, kInvalidHost, 0);
  // Root declaration: at the horizon with whatever has been folded in
  // (kEager may declare earlier through MaybeCompleteEager).
  ScheduleLocalTimer(hq, Horizon(), kTimerDeclare);
}

void SpanningTreeProtocol::OnMessage(HostId self, const sim::Message& msg) {
  uint32_t local = 0;
  if (!DecodeKind(msg.kind, &local)) return;
  HostState* stp = states_.Find(self);

  if (local == kBroadcast) {
    const auto in = msg.LoadInline<TreeBroadcastPayload>();
    if (stp == nullptr || !stp->active) {
      if (sim_->Now() >= Horizon()) return;
      Activate(self, msg.src, in.hop + 1);
      return;
    }
    if (in.parent == self && options_.pacing == TreePacing::kEager) {
      stp->pending_children.push_back(msg.src);  // sender registered with us
    }
    return;
  }

  if (local == kReport) {
    const auto in = msg.LoadInline<ReportPayload>();
    if (in.to_parent != self) return;  // overheard on the wireless medium
    if (stp == nullptr || !stp->active || stp->sent_up) return;
    HostState& st = *stp;
    st.partial.Merge(in.partial);
    if (self == hq_) result_.last_update_at = sim_->Now();
    auto it = std::find(st.pending_children.begin(), st.pending_children.end(),
                        msg.src);
    if (it != st.pending_children.end()) st.pending_children.erase(it);
    if (options_.pacing == TreePacing::kEager) MaybeCompleteEager(self);
  }
}

void SpanningTreeProtocol::OnNeighborFailure(HostId self, HostId failed) {
  if (options_.pacing != TreePacing::kEager) return;
  HostState* stp = states_.Find(self);
  if (stp == nullptr) return;
  HostState& st = *stp;
  if (!st.active || st.sent_up) return;
  // A failed child will never report; stop waiting for it. (Its subtree is
  // simply lost — the best-effort behaviour the paper critiques.)
  auto it =
      std::find(st.pending_children.begin(), st.pending_children.end(), failed);
  if (it != st.pending_children.end()) {
    st.pending_children.erase(it);
    MaybeCompleteEager(self);
  }
}

void SpanningTreeProtocol::MaybeCompleteEager(HostId self) {
  HostState& st = *states_.Find(self);
  if (!st.active || st.sent_up || !st.children_known) return;
  if (!st.pending_children.empty()) return;
  SendUp(self);
}

void SpanningTreeProtocol::SendUp(HostId self) {
  HostState& st = *states_.Find(self);
  if (!st.active || st.sent_up) return;
  st.sent_up = true;
  if (self == hq_) {
    if (options_.pacing == TreePacing::kEager) Declare(self);
    return;  // kSlotted: the root declares at the horizon
  }
  sim::Message out;
  out.kind = MakeKind(kReport);
  // Wire size excludes the addressee field, as before: the report payload
  // proper is the fixed 32-byte ScalarPartial record.
  out.StoreInline(ReportPayload{st.partial, st.parent},
                  ScalarPartial::kWireBytes);
  if (sim_->options().medium == sim::MediumKind::kWireless) {
    // One radio transmission; only the addressed parent folds it in.
    sim_->SendToNeighbors(self, std::move(out));
  } else {
    if (!sim_->IsAlive(st.parent)) return;  // orphaned: subtree is lost
    sim_->SendTo(self, st.parent, std::move(out));
  }
}

void SpanningTreeProtocol::Declare(HostId self) {
  if (result_.declared) return;
  HostState& st = *states_.Find(self);
  result_.value = st.partial.Extract(ctx_.aggregate);
  result_.declared_at = sim_->Now();
  result_.declared = true;
}

}  // namespace validity::protocols
