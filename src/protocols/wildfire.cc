#include "protocols/wildfire.h"

#include <algorithm>

namespace validity::protocols {

WildfireProtocol::WildfireProtocol(sim::Simulator* sim, QueryContext ctx,
                                   WildfireOptions options)
    : ProtocolBase(sim, std::move(ctx)), options_(options) {}

int32_t WildfireProtocol::ActivationLevel(HostId h) const {
  if (h >= states_.size() || !states_[h].active) return -1;
  return states_[h].level;
}

SimTime WildfireProtocol::DeadlineFor(const HostState& st) const {
  if (options_.early_termination && st.level > 0) {
    return start_time_ +
           (2.0 * ctx_.d_hat - static_cast<double>(st.level) + 1.0) *
               sim_->options().delta;
  }
  return Horizon();
}

uint32_t WildfireProtocol::NeighborSlot(HostId self, HostId nb) const {
  const auto& nbrs = sim_->NeighborsOf(self);
  for (uint32_t i = 0; i < nbrs.size(); ++i) {
    if (nbrs[i] == nb) return i;
  }
  VALIDITY_CHECK(false, "host %u is not a neighbor of %u", nb, self);
  return 0;
}

void WildfireProtocol::Activate(HostId self, int32_t level) {
  if (self >= states_.size()) states_.resize(self + 1);
  HostState& st = states_[self];
  st.active = true;
  st.level = level;
  st.agg = InitialAggregate(self);
  st.version = 1;
  st.known_version.assign(sim_->NeighborsOf(self).size(), 0);
}

void WildfireProtocol::Start(HostId hq) {
  VALIDITY_CHECK(sim_->IsAlive(hq), "querying host must be alive");
  hq_ = hq;
  start_time_ = sim_->Now();
  states_.assign(sim_->num_hosts(), HostState{});
  Activate(hq, 0);
  HostState& st = states_[hq];

  auto body = std::make_shared<WildfireBody>();
  body->hop = 0;
  if (options_.piggyback_broadcast) body->agg = *st.agg;
  sim::Message bcast;
  bcast.kind = MakeKind(kBroadcast);
  bcast.body = body;
  sim_->SendToNeighbors(hq, bcast);
  if (options_.piggyback_broadcast) {
    for (uint32_t slot = 0; slot < st.known_version.size(); ++slot) {
      MarkKnown(&st, slot);
    }
  } else {
    FloodAggregate(hq, &st, kInvalidHost);
  }

  ScheduleLocalTimer(hq, Horizon(), kTimerDeclare);
}

void WildfireProtocol::OnLocalTimer(HostId self, uint32_t local_id) {
  if (local_id == kTimerDeclare) {
    const HostState& st = states_[self];
    result_.value = st.agg->Estimate();
    result_.declared_at = sim_->Now();
    result_.declared = true;
    return;
  }
  if (local_id == kTimerFlood) {
    HostState& st = states_[self];
    st.flood_pending = false;
    if (sim_->Now() > DeadlineFor(st)) return;
    FloodAggregate(self, &st, kInvalidHost);
  }
}

void WildfireProtocol::FloodAggregate(HostId self, HostState* st,
                                      HostId exclude) {
  auto body = std::make_shared<AggregateBody>(*st->agg);
  sim::Message msg;
  msg.kind = MakeKind(kConvergecast);
  msg.body = body;
  if (sim_->options().medium == sim::MediumKind::kWireless) {
    // A radio transmission reaches every neighbor; send it if anyone is
    // behind, and afterwards everyone alive has heard the current value.
    bool anyone_behind = false;
    const auto& nbrs = sim_->NeighborsOf(self);
    for (uint32_t slot = 0; slot < nbrs.size(); ++slot) {
      if (!sim_->IsAlive(nbrs[slot])) continue;
      if (!options_.skip_known_neighbors ||
          st->known_version[slot] < st->version) {
        anyone_behind = true;
        break;
      }
    }
    if (!anyone_behind) return;
    sim_->SendToNeighbors(self, msg);
    for (uint32_t slot = 0; slot < nbrs.size(); ++slot) {
      if (sim_->IsAlive(nbrs[slot])) MarkKnown(st, slot);
    }
    return;
  }
  const auto& nbrs = sim_->NeighborsOf(self);
  for (uint32_t slot = 0; slot < nbrs.size(); ++slot) {
    HostId nb = nbrs[slot];
    if (nb == exclude || !sim_->IsAlive(nb)) continue;
    if (options_.skip_known_neighbors &&
        st->known_version[slot] >= st->version) {
      continue;
    }
    sim_->SendTo(self, nb, msg);
    MarkKnown(st, slot);
  }
}

void WildfireProtocol::ReplyAggregate(HostId self, HostState* st, HostId to) {
  if (!sim_->IsAlive(to)) return;
  uint32_t slot = NeighborSlot(self, to);
  if (options_.skip_known_neighbors && st->known_version[slot] >= st->version) {
    return;
  }
  auto body = std::make_shared<AggregateBody>(*st->agg);
  sim::Message msg;
  msg.kind = MakeKind(kConvergecast);
  msg.body = body;
  if (sim_->options().medium == sim::MediumKind::kWireless) {
    sim_->SendToNeighbors(self, msg);
    const auto& nbrs = sim_->NeighborsOf(self);
    for (uint32_t s = 0; s < nbrs.size(); ++s) {
      if (sim_->IsAlive(nbrs[s])) MarkKnown(st, s);
    }
    return;
  }
  sim_->SendTo(self, to, msg);
  MarkKnown(st, slot);
}

void WildfireProtocol::ScheduleFlood(HostId self) {
  HostState& st = states_[self];
  if (!options_.coalesce_floods) {
    FloodAggregate(self, &st, kInvalidHost);
    return;
  }
  if (st.flood_pending) return;
  st.flood_pending = true;
  // Same instant, later sequence: fires after every delivery of this tick,
  // so all simultaneous arrivals are folded into a single flood
  // (Example 5.1's hosts batch per tick).
  ScheduleLocalTimer(self, sim_->Now(), kTimerFlood);
}

void WildfireProtocol::HandleAggregate(HostId self, HostId from,
                                       const PartialAggregate& in) {
  HostState& st = states_[self];
  uint32_t from_slot = NeighborSlot(self, from);
  bool changed = st.agg->CombineFrom(in);
  if (changed) {
    ++st.version;
    if (self == hq_) result_.last_update_at = sim_->Now();
    // If the combined value equals the incoming one, the sender already
    // holds it (Example 5.1: y skips sending its new A_y back to w).
    if (st.agg->SameAs(in)) MarkKnown(&st, from_slot);
    ScheduleFlood(self);
    return;
  }
  if (st.agg->SameAs(in)) {
    // Neighbor holds exactly our value: remember, no traffic.
    MarkKnown(&st, from_slot);
    return;
  }
  // Our value strictly dominates the sender's: point it at ours
  // (Example 5.1: x sends A_x = 15 back to w).
  ReplyAggregate(self, &st, from);
}

void WildfireProtocol::OnMessage(HostId self, const sim::Message& msg) {
  uint32_t local = 0;
  if (!DecodeKind(msg.kind, &local)) return;
  if (self >= states_.size()) states_.resize(self + 1);
  HostState& st = states_[self];
  SimTime now = sim_->Now();

  if (local == kBroadcast) {
    const auto& body = static_cast<const WildfireBody&>(*msg.body);
    if (!st.active) {
      if (now >= Horizon()) return;  // Fig. 3: activate only while t < 2*Dh*d
      Activate(self, body.hop + 1);
      HostState& fresh = states_[self];
      if (body.agg && fresh.agg->CombineFrom(*body.agg)) ++fresh.version;

      auto fwd = std::make_shared<WildfireBody>();
      fwd->hop = fresh.level;
      if (options_.piggyback_broadcast) fwd->agg = *fresh.agg;
      sim::Message out;
      out.kind = MakeKind(kBroadcast);
      out.body = fwd;
      if (sim_->options().medium == sim::MediumKind::kWireless) {
        sim_->SendToNeighbors(self, out);
        if (options_.piggyback_broadcast) {
          const auto& nbrs = sim_->NeighborsOf(self);
          for (uint32_t slot = 0; slot < nbrs.size(); ++slot) {
            if (sim_->IsAlive(nbrs[slot])) MarkKnown(&fresh, slot);
          }
        }
      } else {
        const auto& nbrs = sim_->NeighborsOf(self);
        for (uint32_t slot = 0; slot < nbrs.size(); ++slot) {
          HostId nb = nbrs[slot];
          if (nb == msg.src || !sim_->IsAlive(nb)) continue;
          sim_->SendTo(self, nb, out);
          if (options_.piggyback_broadcast) MarkKnown(&fresh, slot);
        }
      }
      if (options_.piggyback_broadcast && body.agg) {
        if (fresh.agg->SameAs(*body.agg)) {
          MarkKnown(&fresh, NeighborSlot(self, msg.src));
        } else {
          ReplyAggregate(self, &fresh, msg.src);
        }
      }
      if (!options_.piggyback_broadcast) {
        // Fig. 4 verbatim: on activation, send the partial aggregate to all
        // neighbors as a separate convergecast message.
        FloodAggregate(self, &fresh, kInvalidHost);
      }
      return;
    }
    // Duplicate broadcast at an active host: the flood itself is dropped,
    // but a piggybacked aggregate is still fresh information.
    if (body.agg) {
      if (now > DeadlineFor(st)) return;
      HandleAggregate(self, msg.src, *body.agg);
    }
    return;
  }

  if (local == kConvergecast) {
    if (!st.active) return;  // inactive hosts do not participate (Fig. 4)
    if (now > DeadlineFor(st)) return;
    const auto& body = static_cast<const AggregateBody&>(*msg.body);
    HandleAggregate(self, msg.src, body.agg);
  }
}

}  // namespace validity::protocols
