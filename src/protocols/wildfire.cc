#include "protocols/wildfire.h"

#include <algorithm>

namespace validity::protocols {

WildfireProtocol::WildfireProtocol(sim::Simulator* sim, QueryContext ctx,
                                   WildfireOptions options)
    : ProtocolBase(sim, std::move(ctx)), options_(options) {}

int32_t WildfireProtocol::ActivationLevel(HostId h) const {
  const HostState* st = states_.Find(h);
  if (st == nullptr || !st->active) return -1;
  return st->level;
}

SimTime WildfireProtocol::DeadlineFor(const HostState& st) const {
  if (options_.early_termination && st.level > 0) {
    return start_time_ +
           (2.0 * ctx_.d_hat - static_cast<double>(st.level) + 1.0) *
               sim_->options().delta;
  }
  return Horizon();
}

sim::Message WildfireProtocol::MakeBroadcast(const HostState& st,
                                             int32_t hop) {
  sim::Message msg;
  msg.kind = MakeKind(kBroadcast);
  if (!options_.piggyback_broadcast) {
    msg.StoreInline(HopPayload{hop}, sizeof(int32_t));
    return msg;
  }
  if (InlineAggregates()) {
    msg.StoreInline(HopScalarPayload{hop, st.agg->scalar_value()},
                    sizeof(int32_t) + sizeof(double));
    return msg;
  }
  msg.StoreInline(HopPayload{hop}, sizeof(int32_t));
  AggregateBody* body = agg_pool_.Acquire();
  body->agg = *st.agg;
  msg.body = sim::BodyRef(body);
  return msg;
}

sim::Message WildfireProtocol::MakeConvergecast(const HostState& st) {
  sim::Message msg;
  msg.kind = MakeKind(kConvergecast);
  if (InlineAggregates()) {
    msg.StoreInline(ScalarAggregatePayload{st.agg->scalar_value()},
                    sizeof(double));
    return msg;
  }
  AggregateBody* body = agg_pool_.Acquire();
  body->agg = *st.agg;
  msg.body = sim::BodyRef(body);
  return msg;
}

void WildfireProtocol::Activate(HostId self, int32_t level) {
  HostState& st = states_.Touch(self);
  st.active = true;
  st.level = level;
  st.agg = InitialAggregate(self);
  st.version = 1;
  st.known_version.Assign(sim_->NeighborsOf(self).size());
}

void WildfireProtocol::Start(HostId hq) {
  VALIDITY_CHECK(sim_->IsAlive(hq), "querying host must be alive");
  hq_ = hq;
  start_time_ = sim_->Now();
  states_.Reset(sim_->num_hosts());
  Activate(hq, 0);
  HostState& st = *states_.Find(hq);

  sim_->SendToNeighbors(hq, MakeBroadcast(st, 0));
  if (options_.piggyback_broadcast) {
    for (uint32_t slot = 0; slot < st.known_version.size(); ++slot) {
      MarkKnown(&st, slot);
    }
  } else {
    FloodAggregate(hq, &st, kInvalidHost);
  }

  ScheduleLocalTimer(hq, Horizon(), kTimerDeclare);
}

void WildfireProtocol::OnLocalTimer(HostId self, uint32_t local_id) {
  if (local_id == kTimerDeclare) {
    const HostState& st = *states_.Find(self);
    result_.value = st.agg->Estimate();
    result_.declared_at = sim_->Now();
    result_.declared = true;
    return;
  }
  if (local_id == kTimerFlood) {
    HostState& st = *states_.Find(self);
    st.flood_pending = false;
    if (sim_->Now() > DeadlineFor(st)) return;
    FloodAggregate(self, &st, kInvalidHost);
  }
}

void WildfireProtocol::FloodAggregate(HostId self, HostState* st,
                                      HostId exclude) {
  sim::Message msg = MakeConvergecast(*st);
  if (sim_->options().medium == sim::MediumKind::kWireless) {
    // A radio transmission reaches every neighbor; send it if anyone is
    // behind, and afterwards everyone alive has heard the current value.
    bool anyone_behind = false;
    const auto& nbrs = sim_->NeighborsOf(self);
    for (uint32_t slot = 0; slot < nbrs.size(); ++slot) {
      if (!sim_->IsAlive(nbrs[slot])) continue;
      if (!options_.skip_known_neighbors || !KnowsCurrent(*st, slot)) {
        anyone_behind = true;
        break;
      }
    }
    if (!anyone_behind) return;
    sim_->SendToNeighbors(self, std::move(msg));
    for (uint32_t slot = 0; slot < nbrs.size(); ++slot) {
      if (sim_->IsAlive(nbrs[slot])) MarkKnown(st, slot);
    }
    return;
  }
  // Collect the targets first, then fan out through one shared payload
  // slot (SendToEach) instead of one slot + message copy per neighbor.
  const auto& nbrs = sim_->NeighborsOf(self);
  flood_targets_.clear();
  for (uint32_t slot = 0; slot < nbrs.size(); ++slot) {
    HostId nb = nbrs[slot];
    if (nb == exclude || !sim_->IsAlive(nb)) continue;
    if (options_.skip_known_neighbors && KnowsCurrent(*st, slot)) continue;
    flood_targets_.push_back(nb);
    MarkKnown(st, slot);
  }
  sim_->SendToEach(self, std::move(msg), flood_targets_.data(),
                   static_cast<uint32_t>(flood_targets_.size()));
}

void WildfireProtocol::ReplyAggregate(HostId self, HostState* st, HostId to) {
  if (!sim_->IsAlive(to)) return;
  uint32_t slot = sim_->NeighborSlotOf(self, to);
  if (options_.skip_known_neighbors && KnowsCurrent(*st, slot)) return;
  sim::Message msg = MakeConvergecast(*st);
  if (sim_->options().medium == sim::MediumKind::kWireless) {
    sim_->SendToNeighbors(self, std::move(msg));
    const auto& nbrs = sim_->NeighborsOf(self);
    for (uint32_t s = 0; s < nbrs.size(); ++s) {
      if (sim_->IsAlive(nbrs[s])) MarkKnown(st, s);
    }
    return;
  }
  sim_->SendTo(self, to, std::move(msg));
  MarkKnown(st, slot);
}

void WildfireProtocol::ScheduleFlood(HostId self) {
  HostState& st = *states_.Find(self);
  if (!options_.coalesce_floods) {
    FloodAggregate(self, &st, kInvalidHost);
    return;
  }
  if (st.flood_pending) return;
  st.flood_pending = true;
  // Same instant, later sequence: fires after every delivery of this tick,
  // so all simultaneous arrivals are folded into a single flood
  // (Example 5.1's hosts batch per tick).
  ScheduleLocalTimer(self, sim_->Now(), kTimerFlood);
}

void WildfireProtocol::HandleAggregate(HostId self, HostId from,
                                       const PartialAggregate& in) {
  HostState& st = *states_.Find(self);
  // Fused combine + "does the sender already hold the merged value" test:
  // one pass over the sketch words instead of two. The reverse slot lookup
  // is deferred to the branches that record per-neighbor knowledge — the
  // common growth-phase outcome (changed, not equal) never needs it.
  PartialAggregate::CombineOutcome outcome = st.agg->CombineCompare(in);
  if (outcome.changed) {
    ++st.version;
    if (self == hq_) result_.last_update_at = sim_->Now();
    // If the combined value equals the incoming one, the sender already
    // holds it (Example 5.1: y skips sending its new A_y back to w).
    if (outcome.same_as_other) {
      MarkKnown(&st, sim_->NeighborSlotOf(self, from));
    }
    ScheduleFlood(self);
    return;
  }
  if (outcome.same_as_other) {
    // Neighbor holds exactly our value: remember, no traffic.
    MarkKnown(&st, sim_->NeighborSlotOf(self, from));
    return;
  }
  // Our value strictly dominates the sender's: point it at ours
  // (Example 5.1: x sends A_x = 15 back to w).
  ReplyAggregate(self, &st, from);
}

void WildfireProtocol::OnMessage(HostId self, const sim::Message& msg) {
  uint32_t local = 0;
  if (!DecodeKind(msg.kind, &local)) return;
  SimTime now = sim_->Now();

  if (local == kBroadcast) {
    // Decode the hop and the (optional) piggybacked aggregate: scalar
    // kinds ride inline, sketch/union kinds in the pooled body. Each
    // branch loads exactly the payload type its sender stored.
    const PartialAggregate* in_agg = nullptr;
    PartialAggregate scalar_in;
    int32_t hop;
    if (options_.piggyback_broadcast && InlineAggregates()) {
      const auto in = msg.LoadInline<HopScalarPayload>();
      hop = in.hop;
      scalar_in = PartialAggregate::FromScalar(ctx_.combiner, in.scalar);
      in_agg = &scalar_in;
    } else {
      hop = msg.LoadInline<HopPayload>().hop;
      if (options_.piggyback_broadcast) {
        in_agg = &static_cast<const AggregateBody&>(*msg.body).agg;
      }
    }

    HostState* stp = states_.Find(self);
    if (stp == nullptr || !stp->active) {
      if (now >= Horizon()) return;  // Fig. 3: activate only while t < 2*Dh*d
      Activate(self, hop + 1);
      HostState& fresh = *states_.Find(self);
      if (in_agg != nullptr && fresh.agg->CombineFrom(*in_agg)) {
        ++fresh.version;
      }

      sim::Message out = MakeBroadcast(fresh, fresh.level);
      if (sim_->options().medium == sim::MediumKind::kWireless) {
        sim_->SendToNeighbors(self, std::move(out));
        if (options_.piggyback_broadcast) {
          const auto& nbrs = sim_->NeighborsOf(self);
          for (uint32_t slot = 0; slot < nbrs.size(); ++slot) {
            if (sim_->IsAlive(nbrs[slot])) MarkKnown(&fresh, slot);
          }
        }
      } else {
        const auto& nbrs = sim_->NeighborsOf(self);
        flood_targets_.clear();
        for (uint32_t slot = 0; slot < nbrs.size(); ++slot) {
          HostId nb = nbrs[slot];
          if (nb == msg.src || !sim_->IsAlive(nb)) continue;
          flood_targets_.push_back(nb);
          if (options_.piggyback_broadcast) MarkKnown(&fresh, slot);
        }
        sim_->SendToEach(self, std::move(out), flood_targets_.data(),
                         static_cast<uint32_t>(flood_targets_.size()));
      }
      if (in_agg != nullptr) {
        if (fresh.agg->SameAs(*in_agg)) {
          MarkKnown(&fresh, sim_->NeighborSlotOf(self, msg.src));
        } else {
          ReplyAggregate(self, &fresh, msg.src);
        }
      }
      if (!options_.piggyback_broadcast) {
        // Fig. 4 verbatim: on activation, send the partial aggregate to all
        // neighbors as a separate convergecast message.
        FloodAggregate(self, &fresh, kInvalidHost);
      }
      return;
    }
    // Duplicate broadcast at an active host: the flood itself is dropped,
    // but a piggybacked aggregate is still fresh information.
    if (in_agg != nullptr) {
      if (now > DeadlineFor(*stp)) return;
      HandleAggregate(self, msg.src, *in_agg);
    }
    return;
  }

  if (local == kConvergecast) {
    const HostState* stp = states_.Find(self);
    if (stp == nullptr || !stp->active) {
      return;  // inactive hosts do not participate (Fig. 4)
    }
    if (now > DeadlineFor(*stp)) return;
    if (InlineAggregates()) {
      PartialAggregate in = PartialAggregate::FromScalar(
          ctx_.combiner, msg.LoadInline<ScalarAggregatePayload>().scalar);
      HandleAggregate(self, msg.src, in);
    } else {
      HandleAggregate(self, msg.src,
                      static_cast<const AggregateBody&>(*msg.body).agg);
    }
  }
}

}  // namespace validity::protocols
