// DIRECTEDACYCLICGRAPH (paper §4.4): the multi-parent best-effort baseline.
//
// Broadcast organizes hosts into a level-DAG: a host at depth d adopts up to
// k parents among its depth-(d-1) neighbors (all of whose query copies
// arrive in the same wave instant). Convergecast propagates partial
// aggregates to *all* adopted parents, so a single parent failure no longer
// severs a subtree. Because a value can now reach hq along multiple routes,
// the combine function must be duplicate-insensitive — the implementation
// follows the paper (§6: "Our implementation of DIRECTEDACYCLICGRAPH uses
// the distributed count and sum operators"), i.e. the same FM sketches that
// WILDFIRE uses (or exact union combiners in tests).
//
// Pacing mirrors SpanningTreeProtocol: kSlotted (default, paper-faithful)
// holds the partial aggregate until the depth slot; kEager (ablation)
// registers children with every adopted parent (one extra tiny message per
// additional parent) and reports as soon as all live children reported.

#ifndef VALIDITY_PROTOCOLS_DAG_H_
#define VALIDITY_PROTOCOLS_DAG_H_

#include <memory>
#include <optional>
#include <vector>

#include "protocols/protocol.h"
#include "protocols/spanning_tree.h"  // TreePacing

namespace validity::protocols {

struct DagOptions {
  /// Maximum number of parents per host (paper evaluates k = 2 and k = 3).
  uint32_t max_parents = 2;
  TreePacing pacing = TreePacing::kSlotted;
};

class DagProtocol : public ProtocolBase {
 public:
  DagProtocol(sim::Simulator* sim, QueryContext ctx, DagOptions options = {});

  void Start(HostId hq) override;
  void OnMessage(HostId self, const sim::Message& msg) override;
  void OnNeighborFailure(HostId self, HostId failed) override;
  /// Session reuse: rebind context + options and re-arm, keeping the warm
  /// state pages and report body pool (see ProtocolBase).
  void ResetForQuery(QueryContext ctx, const DagOptions& options) {
    options_ = options;
    ProtocolBase::ResetForQuery(std::move(ctx));
  }
  std::string_view name() const override { return "dag"; }
  size_t ResidentStateBytes() const override {
    return states_.ResidentBytes();
  }

  /// Parents adopted by `h` (empty if never activated).
  const std::vector<HostId>& ParentsOf(HostId h) const;
  int32_t DepthOf(HostId h) const;

  /// kEager: children known this many delta after activation (forward out
  /// +delta, registrations back +2*delta, +0.5 ordering margin).
  static constexpr double kChildDiscoveryDelay = 2.5;

 private:
  enum LocalKind : uint32_t { kBroadcast = 1, kReport = 2, kRegister = 3 };
  enum LocalTimer : uint32_t {
    kTimerChildrenKnown = 1,
    kTimerSlot = 2,
    kTimerSendUp = 3,
    kTimerDeclare = 4,
  };

  void OnLocalTimer(HostId self, uint32_t local_id) override;
  void OnReset() override { report_pool_.ResetRecycleOrder(); }

  /// Inline wire payloads for the small fixed-size messages.
  struct DagBroadcastPayload {
    int32_t hop = 0;                     // sender's depth
    HostId first_parent = kInvalidHost;  // parent registered by the forward
  };
  struct RegisterPayload {
    HostId to_parent = kInvalidHost;  // addressee (wireless filtering)
  };

  /// Pooled report body: the aggregate plus the addressee list. Recycled
  /// bodies keep the sketch words' and parent vector's capacity, so
  /// steady-state reports allocate nothing.
  struct DagReportBody : sim::MessageBody {
    DagReportBody() = default;
    PartialAggregate agg;
    std::vector<HostId> to_parents;  // addressees (wireless filtering)
    size_t SizeBytes() const override {
      return agg.SizeBytes() + to_parents.size() * sizeof(HostId);
    }
  };

  struct HostState {
    bool active = false;
    bool children_known = false;
    bool sent_up = false;
    int32_t depth = 0;
    std::vector<HostId> parents;
    std::vector<HostId> pending_children;
    std::optional<PartialAggregate> agg;
  };

  SimTime SlotTime(int32_t depth, SimTime activation_time) const;
  void Activate(HostId self, HostId first_parent, int32_t depth);
  void AdoptExtraParent(HostId self, HostId parent);
  void MaybeCompleteEager(HostId self);
  void SendUp(HostId self);
  void Declare(HostId self);

  DagOptions options_;
  PagedStates<HostState> states_;
  sim::BodyPool<DagReportBody> report_pool_;
  std::vector<HostId> empty_;
};

}  // namespace validity::protocols

#endif  // VALIDITY_PROTOCOLS_DAG_H_
