// Conventional (duplicate-sensitive) partial aggregate used by the
// best-effort SPANNINGTREE baseline: each host's contribution is added
// exactly once along its unique tree path, so plain +/min/max suffice.
// One fixed-size record answers all five query kinds.

#ifndef VALIDITY_PROTOCOLS_SCALAR_PARTIAL_H_
#define VALIDITY_PROTOCOLS_SCALAR_PARTIAL_H_

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/aggregate.h"

namespace validity::protocols {

struct ScalarPartial {
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  uint64_t count = 0;

  /// Folds in one host's attribute value.
  void AddHost(double value) {
    sum += value;
    min = std::min(min, value);
    max = std::max(max, value);
    ++count;
  }

  /// Duplicate-sensitive merge of two disjoint sub-aggregates.
  void Merge(const ScalarPartial& other) {
    sum += other.sum;
    min = std::min(min, other.min);
    max = std::max(max, other.max);
    count += other.count;
  }

  double Extract(AggregateKind kind) const {
    switch (kind) {
      case AggregateKind::kMin:
        return min;
      case AggregateKind::kMax:
        return max;
      case AggregateKind::kCount:
        return static_cast<double>(count);
      case AggregateKind::kSum:
        return sum;
      case AggregateKind::kAverage:
        return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }
    return 0.0;
  }

  /// Fixed wire footprint (3 doubles + 1 count).
  static constexpr size_t kWireBytes = 32;
};

}  // namespace validity::protocols

#endif  // VALIDITY_PROTOCOLS_SCALAR_PARTIAL_H_
