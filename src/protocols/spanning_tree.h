// SPANNINGTREE (paper §4.4): the efficient best-effort baseline.
//
// Broadcast organizes hosts into a spanning tree rooted at hq (parent =
// sender of the first query copy received, TAG-style); Convergecast
// propagates duplicate-sensitive partial aggregates from the leaves to the
// root along unique tree paths. A host failure during Convergecast silently
// drops its whole collected subtree — the protocol can be arbitrarily
// invalid (Theorem 4.4), which Figs. 7-9 quantify.
//
// Convergecast pacing (TreePacing):
//  - kSlotted (default, TAG/paper-faithful): a host at depth d holds its
//    partial aggregate until its slot (2*D-hat - d - 0.5) * delta and then
//    reports to its parent; child reports land exactly at the parent's slot
//    and are folded in first. Data therefore sits in interior hosts for
//    most of the query window — exactly the exposure that makes trees
//    collapse under churn in Figs. 7-9.
//  - kEager (ablation): hosts discover their children (each broadcast
//    forward names its parent, costing nothing extra), report as soon as
//    every live child reported (heartbeats prune dead children), and fall
//    back to the slot deadline. Much lower latency and far more
//    churn-robust than the protocol the paper evaluates; the ablation
//    bench quantifies the difference.

#ifndef VALIDITY_PROTOCOLS_SPANNING_TREE_H_
#define VALIDITY_PROTOCOLS_SPANNING_TREE_H_

#include <memory>
#include <vector>

#include "protocols/protocol.h"
#include "protocols/scalar_partial.h"

namespace validity::protocols {

enum class TreePacing { kSlotted, kEager };

struct SpanningTreeOptions {
  TreePacing pacing = TreePacing::kSlotted;
};

class SpanningTreeProtocol : public ProtocolBase {
 public:
  SpanningTreeProtocol(sim::Simulator* sim, QueryContext ctx,
                       SpanningTreeOptions options = {});

  void Start(HostId hq) override;
  void OnMessage(HostId self, const sim::Message& msg) override;
  void OnNeighborFailure(HostId self, HostId failed) override;
  /// Session reuse: rebind context + options and re-arm (see ProtocolBase).
  void ResetForQuery(QueryContext ctx, const SpanningTreeOptions& options) {
    options_ = options;
    ProtocolBase::ResetForQuery(std::move(ctx));
  }
  std::string_view name() const override { return "spanning-tree"; }
  size_t ResidentStateBytes() const override {
    return states_.ResidentBytes();
  }

  /// Tree parent of `h` (kInvalidHost for hq and never-activated hosts).
  HostId ParentOf(HostId h) const;
  /// Tree depth of `h` (-1 if never activated).
  int32_t DepthOf(HostId h) const;

  /// kEager: children become known this many delta after activation (own
  /// forward out: +delta; children's forwards back: +2*delta; +0.5 to order
  /// the timer after same-instant deliveries).
  static constexpr double kChildDiscoveryDelay = 2.5;

 private:
  enum LocalKind : uint32_t { kBroadcast = 1, kReport = 2 };
  enum LocalTimer : uint32_t {
    kTimerChildrenKnown = 1,
    kTimerSlot = 2,
    kTimerSendUp = 3,
    kTimerDeclare = 4,
  };

  void OnLocalTimer(HostId self, uint32_t local_id) override;

  /// Inline wire payloads (no body allocation anywhere in this protocol).
  struct TreeBroadcastPayload {
    int32_t hop = 0;               // sender's depth
    HostId parent = kInvalidHost;  // sender's chosen parent
  };
  struct ReportPayload {
    ScalarPartial partial;
    HostId to_parent = kInvalidHost;  // addressee (wireless filtering)
  };

  struct HostState {
    bool active = false;
    bool children_known = false;
    bool sent_up = false;
    int32_t depth = 0;
    HostId parent = kInvalidHost;
    std::vector<HostId> pending_children;
    ScalarPartial partial;
  };

  /// The slot instant at which a depth-d host reports upward.
  SimTime SlotTime(int32_t depth, SimTime activation_time) const;

  void Activate(HostId self, HostId parent, int32_t depth);
  void MaybeCompleteEager(HostId self);
  void SendUp(HostId self);
  void Declare(HostId self);

  SpanningTreeOptions options_;
  PagedStates<HostState> states_;
};

}  // namespace validity::protocols

#endif  // VALIDITY_PROTOCOLS_SPANNING_TREE_H_
