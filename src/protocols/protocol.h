// Base plumbing shared by all aggregation protocols.
//
// A protocol is a sim::HostProgram plus Start(hq)/result(). Multiple
// protocol instances can run over the lifetime of one simulator (the
// continuous-query executor swaps instances per window); to keep stale
// in-flight messages from a previous instance out of a new one, every
// instance owns a unique id that is packed into the upper bits of
// Message::kind and checked on receipt.

#ifndef VALIDITY_PROTOCOLS_PROTOCOL_H_
#define VALIDITY_PROTOCOLS_PROTOCOL_H_

#include <cmath>
#include <functional>
#include <string_view>
#include <vector>

#include "common/aggregate.h"
#include "common/rng.h"
#include "common/types.h"
#include "protocols/combiner.h"
#include "common/paged_state.h"
#include "sim/message.h"
#include "sim/simulator.h"
#include "sketch/fm_sketch.h"

namespace validity::protocols {

/// Everything a protocol needs to know about the query it is executing.
struct QueryContext {
  AggregateKind aggregate = AggregateKind::kCount;
  /// Combine function for duplicate-insensitive protocols (WILDFIRE, DAG).
  CombinerKind combiner = CombinerKind::kFmCount;
  /// Sketch shape for FM combiners.
  sketch::FmParams fm;
  /// Overestimate D-hat of the stable diameter, in hops. The protocol
  /// horizon is 2 * d_hat * delta.
  double d_hat = 10.0;
  /// Seed from which per-host sketch bit streams are derived. Use a fresh
  /// value per query so repeated queries draw independent sketches.
  uint64_t sketch_seed = 1;
  /// Per-host attribute values; must cover every host id in the simulator.
  const std::vector<double>* values = nullptr;
};

/// Outcome of one protocol run.
struct ProtocolRunResult {
  double value = std::numeric_limits<double>::quiet_NaN();
  /// Time cost: when the querying host declared the result.
  SimTime declared_at = 0;
  /// When the querying host's partial answer last changed — the end of the
  /// longest causal message chain that influenced the result (the paper's
  /// §6.3 time-cost metric for protocols that, like SPANNINGTREE, finish
  /// their information flow before the declaration timer).
  SimTime last_update_at = 0;
  bool declared = false;
};

class ProtocolBase : public sim::HostProgram {
 public:
  ProtocolBase(sim::Simulator* sim, QueryContext ctx);
  ~ProtocolBase() override = default;

  ProtocolBase(const ProtocolBase&) = delete;
  ProtocolBase& operator=(const ProtocolBase&) = delete;

  /// Issues the query at `hq` at the simulator's current time. The caller
  /// must have attached this instance (sim->AttachProgram(this)) and then
  /// runs the simulator; afterwards the answer is in result().
  virtual void Start(HostId hq) = 0;

  const ProtocolRunResult& result() const { return result_; }
  virtual std::string_view name() const = 0;

  /// This instance's id — the tag carried in the upper bits of its message
  /// kinds and timer ids. Sessions route concurrent queries' traffic and
  /// metrics by it (sim/session.h).
  uint32_t instance_id() const { return instance_id_; }

  /// Re-arms a cached instance for a new query on the same simulator,
  /// replacing per-run construction (the session reuse path): rebinds the
  /// query context, clears the run result, and draws a fresh instance id so
  /// stale in-flight traffic from the previous query can never be
  /// mistaken for this one. Warm storage — state page directories, body
  /// pools, scratch vectors — survives; per-run protocol state is reset by
  /// Start() exactly as after fresh construction, keeping the two paths
  /// bit-identical. Subclasses with extra per-run state hook OnReset().
  void ResetForQuery(QueryContext ctx);

  /// Bytes of per-host state currently resident. Protocols page their state
  /// lazily (see PagedStates), so this is proportional to the hosts a query
  /// actually touched, not the network size.
  virtual size_t ResidentStateBytes() const { return 0; }

  /// Routes simulator timers to this instance's OnLocalTimer, discarding
  /// stale timers from other protocol instances (continuous queries swap
  /// instances per window). Final: protocols implement OnLocalTimer.
  void OnTimer(HostId self, uint64_t timer_id) final {
    if ((timer_id >> sim::kInstanceTagShift) != instance_id_) return;
    OnLocalTimer(self,
                 static_cast<uint32_t>(timer_id & sim::kLocalKindMask));
  }

  HostId querying_host() const { return hq_; }
  SimTime start_time() const { return start_time_; }
  /// The protocol horizon T = start + 2 * d_hat * delta.
  SimTime Horizon() const {
    return start_time_ + 2.0 * ctx_.d_hat * sim_->options().delta;
  }

 protected:
  /// Packs a protocol-local message kind with this instance's id.
  uint32_t MakeKind(uint32_t local) const {
    VALIDITY_DCHECK(local <= sim::kLocalKindMask,
                    "local kind %u exceeds the 8-bit tag", local);
    return (instance_id_ << sim::kInstanceTagShift) |
           (local & sim::kLocalKindMask);
  }
  /// Returns true and extracts the local kind if `kind` belongs to this
  /// instance; stale messages from other instances return false.
  bool DecodeKind(uint32_t kind, uint32_t* local) const {
    if ((kind >> sim::kInstanceTagShift) != instance_id_) return false;
    *local = kind & sim::kLocalKindMask;
    return true;
  }

  /// ResetForQuery hook for per-run state not already re-initialized by
  /// Start(). Runs after the context/instance-id swap. Default: nothing —
  /// every engine protocol resets its run state in Start().
  virtual void OnReset() {}

  /// Instance-safe typed timer: fires OnLocalTimer(host, local_id) at time t
  /// iff `host` is then alive. The instance id rides in the upper bits of
  /// the simulator timer id (mirroring MakeKind), so timers never cross
  /// instances — and the schedule is a plain typed event, no allocation.
  void ScheduleLocalTimer(HostId host, SimTime t, uint32_t local_id) {
    VALIDITY_DCHECK(local_id <= sim::kLocalKindMask,
                    "local timer id %u exceeds the 8-bit tag", local_id);
    sim_->ScheduleTimer(
        host, t,
        (static_cast<uint64_t>(instance_id_) << sim::kInstanceTagShift) |
            (local_id & sim::kLocalKindMask));
  }

  /// Typed-timer callback; `local_id` is the value given to
  /// ScheduleLocalTimer. Default: ignore.
  virtual void OnLocalTimer(HostId self, uint32_t local_id) {
    (void)self, (void)local_id;
  }

  /// Closure escape hatch for timers that do not fit the typed path: runs
  /// `fn` at time t iff `host` is then alive. Costs one heap-allocated
  /// closure; prefer ScheduleLocalTimer on hot paths.
  void ScheduleProtocolTimer(HostId host, SimTime t, std::function<void()> fn);

  double HostValue(HostId h) const {
    VALIDITY_DCHECK(ctx_.values != nullptr && h < ctx_.values->size());
    return (*ctx_.values)[h];
  }

  /// Deterministic per-host sketch stream for this query.
  Rng HostSketchRng(HostId h) const {
    return Rng(Mix64(ctx_.sketch_seed ^ (0x9e3779b97f4a7c15ULL +
                                         static_cast<uint64_t>(h))));
  }

  /// The host's initial partial aggregate A_h.
  PartialAggregate InitialAggregate(HostId h) const {
    Rng rng = HostSketchRng(h);
    return PartialAggregate::Initial(ctx_.combiner, h, HostValue(h), ctx_.fm,
                                     &rng);
  }

  sim::Simulator* sim_;
  QueryContext ctx_;
  HostId hq_ = kInvalidHost;
  SimTime start_time_ = 0;
  ProtocolRunResult result_;
  uint32_t instance_id_;
};

/// Message body carrying a partial aggregate (convergecast payload).
/// Pool-friendly: default-constructible without touching the allocator, and
/// copy-assigning `agg` into a recycled body reuses the sketch buffers.
struct AggregateBody : sim::MessageBody {
  AggregateBody() = default;
  explicit AggregateBody(PartialAggregate a) : agg(std::move(a)) {}
  size_t SizeBytes() const override { return agg.SizeBytes(); }

  PartialAggregate agg;
};

/// Small inline payloads shared by the flooding protocols.
struct HopPayload {
  int32_t hop = 0;
};
/// Broadcast forward with a piggybacked scalar aggregate (WILDFIRE kMin /
/// kMax piggyback path).
struct HopScalarPayload {
  int32_t hop = 0;
  double scalar = 0.0;
};
/// Convergecast of a scalar aggregate.
struct ScalarAggregatePayload {
  double scalar = 0.0;
};

}  // namespace validity::protocols

#endif  // VALIDITY_PROTOCOLS_PROTOCOL_H_
