// WILDFIRE (paper §5.1, Figs. 3-4): flooding aggregation with
// duplicate-insensitive combine, guaranteeing Single-Site Validity.
//
// Phase I (Broadcast): the query floods the network; no edge-subset
// structure is built. Phase II (Convergecast): every active host holds a
// partial aggregate A_h; whenever A_h changes it re-floods A_h to its
// neighbors, and when it learns a neighbor holds a strictly different value
// it replies with A_h. Because the combine function is a semilattice join,
// values reach hq along *every* surviving path — a stable path suffices,
// which is exactly the Single-Site Validity requirement (Theorem 5.1).
//
// The two §5.3 engineering optimizations are implemented and toggleable:
//  - piggyback_broadcast: the first convergecast message rides on the
//    broadcast forward;
//  - early_termination: a host at distance l participates until
//    (2*D-hat - l + 1) * delta instead of 2*D-hat*delta.
// A third, implied by Example 5.1's message trace, suppresses sends to
// neighbors already known to hold the current value (skip_known_neighbors).
//
// Send-path engineering: hop counters and scalar (kMin/kMax) aggregates
// travel inline in the message word; FM/union aggregates ride in bodies
// recycled through a typed pool — steady-state sends touch no allocator.
// Per-host state is paged lazily (PagedStates), so a query whose broadcast
// disc covers a fraction of a huge graph only materializes that fraction.

#ifndef VALIDITY_PROTOCOLS_WILDFIRE_H_
#define VALIDITY_PROTOCOLS_WILDFIRE_H_

#include <optional>
#include <vector>

#include "protocols/protocol.h"

namespace validity::protocols {

struct WildfireOptions {
  bool piggyback_broadcast = true;
  bool early_termination = true;
  bool skip_known_neighbors = true;
  /// Batch all deliveries of the same instant before re-flooding (hosts in
  /// Example 5.1 combine every message of tick t and send once). Saves one
  /// flood per extra same-tick arrival; toggleable for the ablation bench.
  bool coalesce_floods = true;
};

class WildfireProtocol : public ProtocolBase {
 public:
  WildfireProtocol(sim::Simulator* sim, QueryContext ctx,
                   WildfireOptions options = {});

  void Start(HostId hq) override;
  void OnMessage(HostId self, const sim::Message& msg) override;
  std::string_view name() const override { return "wildfire"; }
  size_t ResidentStateBytes() const override {
    return states_.ResidentBytes();
  }

  /// Hop distance at which `h` was activated (broadcast level); -1 if the
  /// host never activated. Exposed for tests and the Fig. 13(b) analysis.
  int32_t ActivationLevel(HostId h) const;

  /// Distinct convergecast bodies ever allocated by the pool (its
  /// high-water mark; constant in steady state). Zero for scalar
  /// combiners, which travel inline.
  size_t aggregate_bodies_allocated() const {
    return agg_pool_.total_allocated();
  }

 private:
  enum LocalKind : uint32_t { kBroadcast = 1, kConvergecast = 2 };
  enum LocalTimer : uint32_t { kTimerDeclare = 1, kTimerFlood = 2 };

  void OnLocalTimer(HostId self, uint32_t local_id) override;

  struct HostState {
    bool active = false;
    bool flood_pending = false;  // a coalesced flood is scheduled
    int32_t level = 0;
    uint32_t version = 0;  // bumped on every A_h change
    std::optional<PartialAggregate> agg;
    // version already sent to / known by each neighbor, parallel to the
    // simulator adjacency list of this host.
    std::vector<uint32_t> known_version;
  };

  /// Last instant at which `self` still participates.
  SimTime DeadlineFor(const HostState& st) const;

  /// True when the combiner is a scalar (kMin/kMax) whose aggregate is
  /// carried inline rather than in a pooled body.
  bool InlineAggregates() const {
    return ctx_.combiner == CombinerKind::kMin ||
           ctx_.combiner == CombinerKind::kMax;
  }

  /// Builds a kBroadcast forward carrying `hop` (and, when piggybacking,
  /// the sender's current aggregate).
  sim::Message MakeBroadcast(const HostState& st, int32_t hop);
  /// Builds a kConvergecast message carrying the sender's aggregate.
  sim::Message MakeConvergecast(const HostState& st);

  void Activate(HostId self, int32_t level);
  /// Flood now, or once at the end of the current instant when coalescing.
  void ScheduleFlood(HostId self);
  /// Floods A_h to alive neighbors that are behind; `exclude` (optional)
  /// is skipped, typically the broadcast sender.
  void FloodAggregate(HostId self, HostState* st, HostId exclude);
  /// Points a single neighbor at the current value if it is behind.
  void ReplyAggregate(HostId self, HostState* st, HostId to);
  void HandleAggregate(HostId self, HostId from, const PartialAggregate& in);
  /// Per-neighbor knowledge bookkeeping. known_version is sized at
  /// activation, but runtime joins can grow a host's neighbor list
  /// afterwards — new slots read as version 0 (never known) and the vector
  /// grows on first write.
  void MarkKnown(HostState* st, uint32_t slot) {
    if (slot >= st->known_version.size()) {
      st->known_version.resize(slot + 1, 0);
    }
    st->known_version[slot] = st->version;
  }
  static bool KnowsCurrent(const HostState& st, uint32_t slot) {
    return slot < st.known_version.size() &&
           st.known_version[slot] >= st.version;
  }

  WildfireOptions options_;
  PagedStates<HostState> states_;
  sim::BodyPool<AggregateBody> agg_pool_;
  /// Scratch target list for SendToEach fan-outs (capacity reused).
  std::vector<HostId> flood_targets_;
};

}  // namespace validity::protocols

#endif  // VALIDITY_PROTOCOLS_WILDFIRE_H_
