// WILDFIRE (paper §5.1, Figs. 3-4): flooding aggregation with
// duplicate-insensitive combine, guaranteeing Single-Site Validity.
//
// Phase I (Broadcast): the query floods the network; no edge-subset
// structure is built. Phase II (Convergecast): every active host holds a
// partial aggregate A_h; whenever A_h changes it re-floods A_h to its
// neighbors, and when it learns a neighbor holds a strictly different value
// it replies with A_h. Because the combine function is a semilattice join,
// values reach hq along *every* surviving path — a stable path suffices,
// which is exactly the Single-Site Validity requirement (Theorem 5.1).
//
// The two §5.3 engineering optimizations are implemented and toggleable:
//  - piggyback_broadcast: the first convergecast message rides on the
//    broadcast forward;
//  - early_termination: a host at distance l participates until
//    (2*D-hat - l + 1) * delta instead of 2*D-hat*delta.
// A third, implied by Example 5.1's message trace, suppresses sends to
// neighbors already known to hold the current value (skip_known_neighbors).

#ifndef VALIDITY_PROTOCOLS_WILDFIRE_H_
#define VALIDITY_PROTOCOLS_WILDFIRE_H_

#include <memory>
#include <optional>
#include <vector>

#include "protocols/protocol.h"

namespace validity::protocols {

struct WildfireOptions {
  bool piggyback_broadcast = true;
  bool early_termination = true;
  bool skip_known_neighbors = true;
  /// Batch all deliveries of the same instant before re-flooding (hosts in
  /// Example 5.1 combine every message of tick t and send once). Saves one
  /// flood per extra same-tick arrival; toggleable for the ablation bench.
  bool coalesce_floods = true;
};

class WildfireProtocol : public ProtocolBase {
 public:
  WildfireProtocol(sim::Simulator* sim, QueryContext ctx,
                   WildfireOptions options = {});

  void Start(HostId hq) override;
  void OnMessage(HostId self, const sim::Message& msg) override;
  std::string_view name() const override { return "wildfire"; }

  /// Hop distance at which `h` was activated (broadcast level); -1 if the
  /// host never activated. Exposed for tests and the Fig. 13(b) analysis.
  int32_t ActivationLevel(HostId h) const;

 private:
  enum LocalKind : uint32_t { kBroadcast = 1, kConvergecast = 2 };
  enum LocalTimer : uint32_t { kTimerDeclare = 1, kTimerFlood = 2 };

  void OnLocalTimer(HostId self, uint32_t local_id) override;

  struct WildfireBody : sim::MessageBody {
    int32_t hop = 0;  // sender's level (broadcast only)
    std::optional<PartialAggregate> agg;
    size_t SizeBytes() const override {
      return sizeof(int32_t) + (agg ? agg->SizeBytes() : 0);
    }
  };

  struct HostState {
    bool active = false;
    bool flood_pending = false;  // a coalesced flood is scheduled
    int32_t level = 0;
    uint32_t version = 0;  // bumped on every A_h change
    std::optional<PartialAggregate> agg;
    // version already sent to / known by each neighbor, parallel to the
    // simulator adjacency list of this host.
    std::vector<uint32_t> known_version;
  };

  /// Last instant at which `self` still participates.
  SimTime DeadlineFor(const HostState& st) const;

  void Activate(HostId self, int32_t level);
  /// Flood now, or once at the end of the current instant when coalescing.
  void ScheduleFlood(HostId self);
  /// Floods A_h to alive neighbors that are behind; `exclude` (optional)
  /// is skipped, typically the broadcast sender.
  void FloodAggregate(HostId self, HostState* st, HostId exclude);
  /// Points a single neighbor at the current value if it is behind.
  void ReplyAggregate(HostId self, HostState* st, HostId to);
  void HandleAggregate(HostId self, HostId from, const PartialAggregate& in);
  uint32_t NeighborSlot(HostId self, HostId nb) const;
  void MarkKnown(HostState* st, uint32_t slot) {
    st->known_version[slot] = st->version;
  }

  WildfireOptions options_;
  std::vector<HostState> states_;
};

}  // namespace validity::protocols

#endif  // VALIDITY_PROTOCOLS_WILDFIRE_H_
