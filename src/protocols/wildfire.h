// WILDFIRE (paper §5.1, Figs. 3-4): flooding aggregation with
// duplicate-insensitive combine, guaranteeing Single-Site Validity.
//
// Phase I (Broadcast): the query floods the network; no edge-subset
// structure is built. Phase II (Convergecast): every active host holds a
// partial aggregate A_h; whenever A_h changes it re-floods A_h to its
// neighbors, and when it learns a neighbor holds a strictly different value
// it replies with A_h. Because the combine function is a semilattice join,
// values reach hq along *every* surviving path — a stable path suffices,
// which is exactly the Single-Site Validity requirement (Theorem 5.1).
//
// The two §5.3 engineering optimizations are implemented and toggleable:
//  - piggyback_broadcast: the first convergecast message rides on the
//    broadcast forward;
//  - early_termination: a host at distance l participates until
//    (2*D-hat - l + 1) * delta instead of 2*D-hat*delta.
// A third, implied by Example 5.1's message trace, suppresses sends to
// neighbors already known to hold the current value (skip_known_neighbors).
//
// Send-path engineering: hop counters and scalar (kMin/kMax) aggregates
// travel inline in the message word; FM/union aggregates ride in bodies
// recycled through a typed pool — steady-state sends touch no allocator.
// Per-host state is paged lazily (PagedStates), so a query whose broadcast
// disc covers a fraction of a huge graph only materializes that fraction.

#ifndef VALIDITY_PROTOCOLS_WILDFIRE_H_
#define VALIDITY_PROTOCOLS_WILDFIRE_H_

#include <cstring>
#include <optional>
#include <vector>

#include "protocols/protocol.h"

namespace validity::protocols {

/// Per-neighbor version knowledge for one activated host, sized to the
/// host's CSR degree at activation. Up to kInlineSlots entries live inside
/// the paged HostState record itself; only higher-degree hosts spill to the
/// heap. Moore grids (degree 8) and most P2P topologies fit inline, so
/// activating a host costs no allocation for this table — the per-activation
/// `known_version` vector used to be one heap allocation per activated host.
/// `data_` always points at the live storage so the hot-path accessors are
/// a straight load (a discriminating branch per access cost WILDFIRE ~15%
/// end to end); moves re-aim it. Move-only (paged records are reset by
/// move-assigning a fresh value).
class KnownVersionArray {
 public:
  static constexpr uint32_t kInlineSlots = 8;

  KnownVersionArray() = default;
  ~KnownVersionArray() { FreeHeap(); }
  KnownVersionArray(const KnownVersionArray&) = delete;
  KnownVersionArray& operator=(const KnownVersionArray&) = delete;
  KnownVersionArray(KnownVersionArray&& other) noexcept { MoveFrom(other); }
  KnownVersionArray& operator=(KnownVersionArray&& other) noexcept {
    if (this != &other) {
      FreeHeap();
      MoveFrom(other);
    }
    return *this;
  }

  /// Sizes the array to `count` zeroed slots, reusing a previous heap spill
  /// when it is large enough.
  void Assign(uint32_t count) {
    if (count > capacity_) {
      FreeHeap();
      data_ = new uint32_t[count];
      capacity_ = count;
    }
    size_ = count;
    std::memset(data_, 0, static_cast<size_t>(count) * sizeof(uint32_t));
  }

  /// Extends to `count` slots, preserving existing entries and zeroing the
  /// new ones (runtime joins growing a neighbor list).
  void GrowTo(uint32_t count) {
    if (count <= size_) return;
    if (count > capacity_) {
      uint32_t* grown = new uint32_t[count];
      std::memcpy(grown, data_, static_cast<size_t>(size_) * sizeof(uint32_t));
      FreeHeap();
      data_ = grown;
      capacity_ = count;
    }
    std::memset(data_ + size_, 0,
                static_cast<size_t>(count - size_) * sizeof(uint32_t));
    size_ = count;
  }

  uint32_t size() const { return size_; }
  uint32_t operator[](uint32_t i) const { return data_[i]; }
  uint32_t& operator[](uint32_t i) { return data_[i]; }
  /// True when the entries live inside the record (no heap spill).
  bool inline_storage() const { return data_ == inline_slots_; }

 private:
  void FreeHeap() {
    if (data_ != inline_slots_) delete[] data_;
  }
  void MoveFrom(KnownVersionArray& other) {
    size_ = other.size_;
    capacity_ = other.capacity_;
    if (other.data_ == other.inline_slots_) {
      std::memcpy(inline_slots_, other.inline_slots_, sizeof(inline_slots_));
      data_ = inline_slots_;
    } else {
      data_ = other.data_;
      other.data_ = other.inline_slots_;
      other.capacity_ = kInlineSlots;
    }
    other.size_ = 0;
  }

  uint32_t* data_ = inline_slots_;
  uint32_t size_ = 0;
  uint32_t capacity_ = kInlineSlots;
  uint32_t inline_slots_[kInlineSlots];
};

struct WildfireOptions {
  bool piggyback_broadcast = true;
  bool early_termination = true;
  bool skip_known_neighbors = true;
  /// Batch all deliveries of the same instant before re-flooding (hosts in
  /// Example 5.1 combine every message of tick t and send once). Saves one
  /// flood per extra same-tick arrival; toggleable for the ablation bench.
  bool coalesce_floods = true;
};

class WildfireProtocol : public ProtocolBase {
 public:
  WildfireProtocol(sim::Simulator* sim, QueryContext ctx,
                   WildfireOptions options = {});

  void Start(HostId hq) override;
  void OnMessage(HostId self, const sim::Message& msg) override;
  /// Session reuse: rebind context + options and re-arm, keeping the warm
  /// state pages, body pool, and scratch buffers (see ProtocolBase).
  void ResetForQuery(QueryContext ctx, const WildfireOptions& options) {
    options_ = options;
    ProtocolBase::ResetForQuery(std::move(ctx));
  }
  std::string_view name() const override { return "wildfire"; }
  size_t ResidentStateBytes() const override {
    return states_.ResidentBytes();
  }

  /// Hop distance at which `h` was activated (broadcast level); -1 if the
  /// host never activated. Exposed for tests and the Fig. 13(b) analysis.
  int32_t ActivationLevel(HostId h) const;

  /// Distinct convergecast bodies ever allocated by the pool (its
  /// high-water mark; constant in steady state). Zero for scalar
  /// combiners, which travel inline.
  size_t aggregate_bodies_allocated() const {
    return agg_pool_.total_allocated();
  }

 private:
  enum LocalKind : uint32_t { kBroadcast = 1, kConvergecast = 2 };
  enum LocalTimer : uint32_t { kTimerDeclare = 1, kTimerFlood = 2 };

  void OnLocalTimer(HostId self, uint32_t local_id) override;
  void OnReset() override { agg_pool_.ResetRecycleOrder(); }

  struct HostState {
    bool active = false;
    bool flood_pending = false;  // a coalesced flood is scheduled
    int32_t level = 0;
    uint32_t version = 0;  // bumped on every A_h change
    std::optional<PartialAggregate> agg;
    // version already sent to / known by each neighbor, parallel to the
    // simulator adjacency list of this host. Inline in this record for
    // degree <= KnownVersionArray::kInlineSlots — no allocation per
    // activated host on grid-like topologies.
    KnownVersionArray known_version;
  };

  /// Last instant at which `self` still participates.
  SimTime DeadlineFor(const HostState& st) const;

  /// True when the combiner is a scalar (kMin/kMax) whose aggregate is
  /// carried inline rather than in a pooled body.
  bool InlineAggregates() const {
    return ctx_.combiner == CombinerKind::kMin ||
           ctx_.combiner == CombinerKind::kMax;
  }

  /// Builds a kBroadcast forward carrying `hop` (and, when piggybacking,
  /// the sender's current aggregate).
  sim::Message MakeBroadcast(const HostState& st, int32_t hop);
  /// Builds a kConvergecast message carrying the sender's aggregate.
  sim::Message MakeConvergecast(const HostState& st);

  void Activate(HostId self, int32_t level);
  /// Flood now, or once at the end of the current instant when coalescing.
  void ScheduleFlood(HostId self);
  /// Floods A_h to alive neighbors that are behind; `exclude` (optional)
  /// is skipped, typically the broadcast sender.
  void FloodAggregate(HostId self, HostState* st, HostId exclude);
  /// Points a single neighbor at the current value if it is behind.
  void ReplyAggregate(HostId self, HostState* st, HostId to);
  void HandleAggregate(HostId self, HostId from, const PartialAggregate& in);
  /// Per-neighbor knowledge bookkeeping. known_version is sized at
  /// activation, but runtime joins can grow a host's neighbor list
  /// afterwards — new slots read as version 0 (never known) and the array
  /// grows on first write.
  void MarkKnown(HostState* st, uint32_t slot) {
    if (slot >= st->known_version.size()) {
      st->known_version.GrowTo(slot + 1);
    }
    st->known_version[slot] = st->version;
  }
  static bool KnowsCurrent(const HostState& st, uint32_t slot) {
    return slot < st.known_version.size() &&
           st.known_version[slot] >= st.version;
  }

  WildfireOptions options_;
  PagedStates<HostState> states_;
  sim::BodyPool<AggregateBody> agg_pool_;
  /// Scratch target list for SendToEach fan-outs (capacity reused).
  std::vector<HostId> flood_targets_;
};

}  // namespace validity::protocols

#endif  // VALIDITY_PROTOCOLS_WILDFIRE_H_
