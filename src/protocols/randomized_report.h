// RANDOMIZEDREPORT (paper §4.3): Approximate Single-Site Validity by
// sampling. The query floods the network carrying a report probability p;
// each receiving host reports (directly to hq) with probability p, and hq
// declares |M| / p for count (or the scaled sample sum for sum) at
// T = 2 * D-hat * delta.
//
// With p >= 4 / (eps^2 * n) * ln(2 / zeta), a Chernoff bound puts the count
// estimate within (1 +- eps) * |H| with probability >= 1 - zeta, using about
// p * |H| report messages instead of |H|.

#ifndef VALIDITY_PROTOCOLS_RANDOMIZED_REPORT_H_
#define VALIDITY_PROTOCOLS_RANDOMIZED_REPORT_H_

#include <memory>
#include <vector>

#include "protocols/protocol.h"

namespace validity::protocols {

struct RandomizedReportOptions {
  /// Accuracy target eps in (0,1).
  double epsilon = 0.1;
  /// Failure probability zeta in (0,1).
  double zeta = 0.05;
  /// A-priori network size estimate used to size p (the paper's n in
  /// p >= 4/(eps^2 n) ln(2/zeta)); any overestimate keeps the sample small,
  /// an underestimate only makes the answer more accurate.
  double n_estimate = 1000.0;
  /// If > 0, overrides the derived probability.
  double p_override = 0.0;
  /// Seed of the per-host report coin.
  uint64_t coin_seed = 7;
};

class RandomizedReportProtocol : public ProtocolBase {
 public:
  RandomizedReportProtocol(sim::Simulator* sim, QueryContext ctx,
                           RandomizedReportOptions options);

  void Start(HostId hq) override;
  void OnMessage(HostId self, const sim::Message& msg) override;
  /// Session reuse: rebind context + options, re-deriving the report
  /// probability, and re-arm (see ProtocolBase).
  void ResetForQuery(QueryContext ctx, const RandomizedReportOptions& options);
  std::string_view name() const override { return "randomized-report"; }
  size_t ResidentStateBytes() const override {
    return active_.ResidentBytes();
  }

  /// The report probability actually used.
  double report_probability() const { return p_; }
  uint64_t reports_collected() const { return reports_collected_; }

 private:
  enum LocalKind : uint32_t { kBroadcast = 1, kReport = 2 };
  enum LocalTimer : uint32_t { kTimerDeclare = 1 };

  void OnLocalTimer(HostId self, uint32_t local_id) override;

  /// Inline wire payloads (this protocol allocates nothing per message).
  struct FloodPayload {
    int32_t hop = 0;
    double p = 1.0;
  };
  struct SampleReportPayload {
    double value = 0.0;
  };

  void Activate(HostId self, int32_t depth);
  /// Validates `options` and derives the report probability p_.
  void Configure(const RandomizedReportOptions& options);

  RandomizedReportOptions options_;
  double p_ = 1.0;
  PagedStates<uint8_t> active_;
  uint64_t reports_collected_ = 0;
  double sample_sum_ = 0.0;
};

}  // namespace validity::protocols

#endif  // VALIDITY_PROTOCOLS_RANDOMIZED_REPORT_H_
